package ftbarrier

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// The quickstart flow: goroutines synchronize through the runtime barrier.
func TestRuntimeBarrierQuickstart(t *testing.T) {
	b, err := New(Config{Participants: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				if _, err := b.Await(ctx, id); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// The distributed flow through the public facade: the same barrier over a
// loopback TCP ring transport, including an explicit channel transport for
// comparison.
func TestTCPTransportQuickstart(t *testing.T) {
	run := func(t *testing.T, tr Transport) {
		b, err := New(Config{Participants: 3, Transport: tr})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		var wg sync.WaitGroup
		for id := 0; id < 3; id++ {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				for round := 0; round < 5; round++ {
					if _, err := b.Await(ctx, id); err != nil {
						t.Errorf("worker %d: %v", id, err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	t.Run("tcp-loopback", func(t *testing.T) {
		tr, err := NewLoopbackRing(3)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		run(t, tr)
		if st := tr.Stats(); st.FramesRecv == 0 {
			t.Error("barrier passed without TCP frames — transport unused")
		}
	})
	t.Run("explicit-channel", func(t *testing.T) {
		run(t, NewChanTransport(3))
	})
}

// All four protocol layers construct and run through the facade.
func TestProtocolConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checker := NewSpecChecker(4, 3)

	cbProg, err := NewCB(4, 3, rng, checker.Observe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		cbProg.Guarded().StepRoundRobin()
	}
	if err := checker.Violation(); err != nil {
		t.Fatal(err)
	}

	rbProg, err := NewRB(4, 3, 5, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		rbProg.Guarded().StepRoundRobin()
	}

	tbProg, err := NewTreeBarrier(15, 2, 3, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tbProg.Guarded().StepRoundRobin()
	}

	mbProg, err := NewMB(4, 3, 10, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		mbProg.Guarded().StepRoundRobin()
	}
}

func TestAnalyticalFacade(t *testing.T) {
	m := AnalyticalModel{H: 5, C: 0.01, F: 0}
	if got := m.Overhead(); got < 0.044 || got > 0.046 {
		t.Errorf("paper's 4.5%% overhead spot value: got %.4f", got)
	}
}

func TestSimulationFacade(t *testing.T) {
	res, err := SimulateDetectable(SimConfig{Procs: 16, C: 0.01, F: 0.02, Seed: 1, Phases: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.InstancesPerPhase < 1 {
		t.Errorf("instances per phase %v < 1", res.InstancesPerPhase)
	}
	intol, err := SimulateIntolerant(SimConfig{Procs: 16, C: 0.01, Seed: 1, Phases: 30})
	if err != nil {
		t.Fatal(err)
	}
	if intol.TimePerPhase <= 0 {
		t.Error("intolerant baseline time must be positive")
	}
	rec, err := SimulateRecovery(SimConfig{Procs: 16, C: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Time < 0 {
		t.Error("negative recovery time")
	}
}

func TestFaultCatalogFacade(t *testing.T) {
	if len(FaultCatalog()) == 0 {
		t.Fatal("empty fault catalog")
	}
	if AppropriateTolerance(faults.Eventual, faults.Detectable) != faults.Masking {
		t.Error("Table 1 mapping broken")
	}
}
