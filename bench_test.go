package ftbarrier

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/rbtree"
	"repro/internal/topo"
	"repro/internal/transport"
)

// The benchmarks below regenerate every figure and table of the paper's
// evaluation (Section 6) plus the ablations called out in DESIGN.md. Each
// figure benchmark reports the figure's y-axis value for a representative
// grid point via b.ReportMetric; cmd/experiments prints the full series.

// --- Figure 3: analytical — expected instances per successful phase vs
// fault frequency, for several latencies, 32 processes (h = 5). ---

func BenchmarkFig3AnalyticalInstances(b *testing.B) {
	for _, c := range []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05} {
		for _, f := range []float64{0, 0.001, 0.01, 0.05, 0.1} {
			c, f := c, f
			b.Run(fmt.Sprintf("c=%g/f=%g", c, f), func(b *testing.B) {
				m := AnalyticalModel{H: 5, C: c, F: f}
				var v float64
				for i := 0; i < b.N; i++ {
					v = m.ExpectedInstances()
				}
				b.ReportMetric(v, "instances/phase")
			})
		}
	}
}

// --- Figure 4: analytical — overhead of fault-tolerance vs latency, for
// several fault frequencies (spot values 4.5%, 5.7%, 10.8% at c=0.01). ---

func BenchmarkFig4AnalyticalOverhead(b *testing.B) {
	for _, f := range []float64{0, 0.01, 0.05} {
		for _, c := range []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05} {
			c, f := c, f
			b.Run(fmt.Sprintf("f=%g/c=%g", f, c), func(b *testing.B) {
				m := AnalyticalModel{H: 5, C: c, F: f}
				var v float64
				for i := 0; i < b.N; i++ {
					v = m.Overhead()
				}
				b.ReportMetric(v*100, "overhead-%")
			})
		}
	}
}

// --- Figure 5: simulated — instances per successful phase vs fault
// frequency (tree program under the timed maximal parallel semantics). ---

func BenchmarkFig5SimulatedInstances(b *testing.B) {
	for _, c := range []float64{0, 0.01, 0.05} {
		for _, f := range []float64{0, 0.01, 0.05, 0.1} {
			c, f := c, f
			b.Run(fmt.Sprintf("c=%g/f=%g", c, f), func(b *testing.B) {
				var last SimResult
				for i := 0; i < b.N; i++ {
					res, err := SimulateDetectable(SimConfig{
						Procs: 32, C: c, F: f, Seed: int64(i), Phases: 100,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.InstancesPerPhase, "instances/phase")
			})
		}
	}
}

// --- Figure 6: simulated — overhead of fault-tolerance vs latency
// (relative to the intolerant 1+2hc baseline). ---

func BenchmarkFig6SimulatedOverhead(b *testing.B) {
	for _, f := range []float64{0, 0.01, 0.05} {
		for _, c := range []float64{0.01, 0.03, 0.05} {
			c, f := c, f
			b.Run(fmt.Sprintf("f=%g/c=%g", f, c), func(b *testing.B) {
				var last SimResult
				for i := 0; i < b.N; i++ {
					res, err := SimulateDetectable(SimConfig{
						Procs: 32, C: c, F: f, Seed: int64(i), Phases: 100,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.Overhead*100, "overhead-%")
			})
		}
	}
}

// --- Figure 7: simulated — recovery time from an arbitrary state vs
// latency, for tree heights h = 1..7 (2..128 processes). ---

func BenchmarkFig7Recovery(b *testing.B) {
	for _, procs := range []int{2, 7, 32, 128} {
		for _, c := range []float64{0.01, 0.03, 0.05} {
			procs, c := procs, c
			b.Run(fmt.Sprintf("procs=%d/c=%g", procs, c), func(b *testing.B) {
				sum := 0.0
				for i := 0; i < b.N; i++ {
					r, err := SimulateRecovery(SimConfig{Procs: procs, C: c, Seed: int64(i)})
					if err != nil {
						b.Fatal(err)
					}
					sum += r.Time
				}
				b.ReportMetric(sum/float64(b.N), "recovery-time")
			})
		}
	}
}

// --- Table 1: the cost of each tolerance mechanism on the runtime
// barrier: fault-free pass, masking a detectable reset, stabilizing an
// undetectable scramble. (Fail-safe halt and trivially-masked faults have
// no per-pass protocol cost; they are validated in the test suite.) ---

func benchRuntimePasses(b *testing.B, n int, disturb func(*Barrier, int)) {
	benchRuntimePassesCfg(b, Config{Participants: n, Seed: 1}, disturb)
}

func benchRuntimePassesCfg(b *testing.B, cfg Config, disturb func(*Barrier, int)) {
	n := cfg.Participants
	bar, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer bar.Stop()

	// Workers keep participating until EVERY worker has reached b.N passes:
	// under injected faults (especially undetectable scrambles) individual
	// pass counts may transiently skew, and a worker that stopped arriving
	// at its own target would stall the rest forever.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	passes := make([]atomic.Int64, n)
	allDone := func() bool {
		for i := range passes {
			if passes[i].Load() < int64(b.N) {
				return false
			}
		}
		return true
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if id == 0 && disturb != nil {
					disturb(bar, int(passes[0].Load()))
				}
				_, err := bar.Await(ctx, id)
				switch {
				case err == nil:
					passes[id].Add(1)
					if allDone() {
						cancel()
						return
					}
				case errors.Is(err, ErrReset):
					// redo the phase
				default:
					return // ctx canceled: the collective is done
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkTable1ToleranceCost(b *testing.B) {
	b.Run("masking/fault-free", func(b *testing.B) {
		benchRuntimePasses(b, 4, nil)
	})
	b.Run("masking/detectable-reset-every-8", func(b *testing.B) {
		benchRuntimePasses(b, 4, func(bar *Barrier, i int) {
			if i%8 == 3 {
				bar.Reset(1)
			}
		})
	})
	b.Run("stabilizing/scramble-every-16", func(b *testing.B) {
		benchRuntimePasses(b, 4, func(bar *Barrier, i int) {
			if i%16 == 5 {
				bar.Scramble(2, int64(i))
			}
		})
	})
}

// --- Transport comparison: a full barrier pass over the in-process
// channel transport vs the loopback TCP transport, for both the ring and
// the tree topology. The channel/TCP delta is the cost of real sockets —
// framing, checksums, kernel round trips — for the identical protocol;
// the ring/tree delta is the O(N) vs O(log N) token path. BENCH_runtime.json
// and EXPERIMENTS.md record representative numbers. ---

func BenchmarkAwaitChannel(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			benchRuntimePassesCfg(b, Config{Participants: n, Seed: 1}, nil)
		})
	}
}

func BenchmarkAwaitTree(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			benchRuntimePassesCfg(b, Config{Participants: n, Seed: 1, Topology: TopologyTree}, nil)
		})
	}
}

func BenchmarkAwaitTCPLoopback(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			tr, err := NewLoopbackRing(n)
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			benchRuntimePassesCfg(b, Config{Participants: n, Seed: 1, Transport: tr}, nil)
		})
	}
}

func BenchmarkAwaitTCPLoopbackTree(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			tr, err := NewLoopbackTree(n)
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			benchRuntimePassesCfg(b, Config{
				Participants: n, Seed: 1, Topology: TopologyTree, Transport: tr,
			}, nil)
		})
	}
}

// --- Hybrid topology: members fused two per host, hosts joined in a
// binary tree. In-process the whole cluster fuses onto one scheduler (the
// pure fusion win); over loopback TCP only host roots touch the wire, so
// an n-member barrier pays O(log(n/2)) socket hops instead of the ring's
// O(n) — the deployment shape for multicore hosts in a cluster. ---

// benchPairHosts groups n members two per host ({0,1},{2,3},...).
func benchPairHosts(n int) [][]int {
	var hosts [][]int
	for i := 0; i < n; i += 2 {
		roster := []int{i}
		if i+1 < n {
			roster = append(roster, i+1)
		}
		hosts = append(hosts, roster)
	}
	return hosts
}

func BenchmarkAwaitHybrid(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			benchRuntimePassesCfg(b, Config{
				Participants: n, Seed: 1, Topology: TopologyHybrid, Hosts: benchPairHosts(n),
			}, nil)
		})
	}
}

// benchHybridCluster is benchRuntimePassesCfg for the distributed hybrid
// shape: one Barrier per host sharing the host-tree transport, every
// member of every host looping Await until all have b.N passes.
func benchHybridCluster(b *testing.B, hosts [][]int, tr Transport) {
	n := 0
	for _, roster := range hosts {
		n += len(roster)
	}
	bars := make([]*Barrier, len(hosts))
	for h := range hosts {
		bar, err := New(Config{
			Participants: n, Seed: 1, Topology: TopologyHybrid,
			Hosts: hosts, Transport: tr, Members: hosts[h],
		})
		if err != nil {
			b.Fatal(err)
		}
		defer bar.Stop()
		bars[h] = bar
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	passes := make([]atomic.Int64, n)
	allDone := func() bool {
		for i := range passes {
			if passes[i].Load() < int64(b.N) {
				return false
			}
		}
		return true
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	for h, roster := range hosts {
		for _, id := range roster {
			h, id := h, id
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					_, err := bars[h].Await(ctx, id)
					switch {
					case err == nil:
						passes[id].Add(1)
						if allDone() {
							cancel()
							return
						}
					case errors.Is(err, ErrReset):
					default:
						return
					}
				}
			}()
		}
	}
	wg.Wait()
}

func BenchmarkAwaitTCPLoopbackHybrid(b *testing.B) {
	// n=2 would fuse onto a single host — no wire at all — so the TCP
	// comparison starts at two hosts.
	for _, n := range []int{4, 8} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			hosts := benchPairHosts(n)
			hy, err := NewHybridTopology(hosts, 0)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := NewLoopbackTreeParent(hy.HostTree.Parent)
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			benchHybridCluster(b, hosts, tr)
		})
	}
}

// --- Wave pipelining: Depth outstanding barrier instances per group over
// the multiplexed loopback TCP transport. The lanes share one connection
// per process pair, so overlapped waves batch their frames into single
// writes; one op is still one delivered pass by every participant, and
// ns/op falls as the window hides the per-pass round-trip latency. ---

func BenchmarkAwaitPipelined(b *testing.B) {
	const n = 4
	for _, depth := range []int{1, 2, 4} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			specs := make([]transport.GroupSpec, depth)
			for li := range specs {
				specs[li] = transport.GroupSpec{ID: uint32(li), Name: fmt.Sprintf("lane%d", li)}
			}
			set, err := transport.NewLoopbackMuxes(n, specs)
			if err != nil {
				b.Fatal(err)
			}
			defer set.Close()
			lanes := make([]Transport, depth)
			for li := range lanes {
				lanes[li] = set.Ring(uint32(li))
			}
			benchRuntimePassesCfg(b, Config{
				Participants: n, Seed: 1, Depth: depth, LaneTransports: lanes,
			}, nil)
		})
	}
}

// --- Ablation: ring (O(N)) vs tree (O(h)) synchronization rounds. ---

func BenchmarkAblationRingVsTree(b *testing.B) {
	roundsPerBarrier := func(parent []int) float64 {
		rng := rand.New(rand.NewSource(1))
		n := len(parent)
		checker := core.NewSpecChecker(n, 2)
		p, err := rbtree.New(parent, 2, n+1, rng, checker.Observe)
		if err != nil {
			b.Fatal(err)
		}
		rounds := 0
		for checker.SuccessfulBarriers() < 20 {
			if p.Guarded().StepMaxParallel(nil) == 0 {
				b.Fatal("deadlock")
			}
			rounds++
		}
		return float64(rounds) / 20
	}
	for _, n := range []int{8, 32, 128} {
		n := n
		b.Run(fmt.Sprintf("ring/n=%d", n), func(b *testing.B) {
			parent := make([]int, n)
			parent[0] = -1
			for i := 1; i < n; i++ {
				parent[i] = i - 1
			}
			var v float64
			for i := 0; i < b.N; i++ {
				v = roundsPerBarrier(parent)
			}
			b.ReportMetric(v, "rounds/barrier")
		})
		b.Run(fmt.Sprintf("tree/n=%d", n), func(b *testing.B) {
			tr, err := topo.NewBinaryTree(n)
			if err != nil {
				b.Fatal(err)
			}
			var v float64
			for i := 0; i < b.N; i++ {
				v = roundsPerBarrier(tr.Parent)
			}
			b.ReportMetric(v, "rounds/barrier")
		})
	}
}

// --- Ablation: sequence-number domain size K (K > N required; larger K
// buys nothing — the paper's O(log N) state claim depends on K = N+1). ---

func BenchmarkAblationSequenceDomain(b *testing.B) {
	const n = 32
	for _, k := range []int{n + 1, 2 * n, 4 * n} {
		k := k
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			tr, err := topo.NewBinaryTree(n)
			if err != nil {
				b.Fatal(err)
			}
			var rounds int
			for i := 0; i < b.N; i++ {
				checker := core.NewSpecChecker(n, 2)
				p, err := rbtree.New(tr.Parent, 2, k, rng, checker.Observe)
				if err != nil {
					b.Fatal(err)
				}
				rounds = 0
				for checker.SuccessfulBarriers() < 10 {
					if p.Guarded().StepMaxParallel(nil) == 0 {
						b.Fatal("deadlock")
					}
					rounds++
				}
			}
			b.ReportMetric(float64(rounds)/10, "rounds/barrier")
		})
	}
}

// --- Ablation: the runtime fault-tolerant barrier vs a plain centralized
// (fault-intolerant) barrier built from sync primitives — the cost of
// tolerance in a real goroutine system. ---

// centralBarrier is the classic two-phase counter barrier: no fault
// tolerance whatsoever.
type centralBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
	phase int
	n     int
}

func newCentralBarrier(n int) *centralBarrier {
	cb := &centralBarrier{n: n}
	cb.cond = sync.NewCond(&cb.mu)
	return cb
}

func (c *centralBarrier) await() {
	c.mu.Lock()
	phase := c.phase
	c.count++
	if c.count == c.n {
		c.count = 0
		c.phase++
		c.cond.Broadcast()
	} else {
		for c.phase == phase {
			c.cond.Wait()
		}
	}
	c.mu.Unlock()
}

func BenchmarkAblationRuntimeVsCentral(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("ft-barrier/n=%d", n), func(b *testing.B) {
			benchRuntimePasses(b, n, nil)
		})
		b.Run(fmt.Sprintf("central-intolerant/n=%d", n), func(b *testing.B) {
			cb := newCentralBarrier(n)
			b.ResetTimer()
			var wg sync.WaitGroup
			for id := 0; id < n; id++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						cb.await()
					}
				}()
			}
			wg.Wait()
		})
	}
}

// --- Ablation: guarded-engine scheduler throughput (steps/sec for the
// tree protocol under interleaving vs maximal parallelism). ---

func BenchmarkSchedulerThroughput(b *testing.B) {
	build := func() *rbtree.Program {
		rng := rand.New(rand.NewSource(1))
		tr, _ := topo.NewBinaryTree(32)
		p, err := rbtree.New(tr.Parent, 2, 33, rng, nil)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	b.Run("roundRobin", func(b *testing.B) {
		p := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Guarded().StepRoundRobin()
		}
	})
	b.Run("maxParallel", func(b *testing.B) {
		p := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Guarded().StepMaxParallel(nil)
		}
	})
}

// --- Reference: the intolerant baseline under the timed semantics (used
// by Figure 6's denominator). ---

func BenchmarkIntolerantBaselineSim(b *testing.B) {
	for _, c := range []float64{0, 0.01, 0.05} {
		c := c
		b.Run(fmt.Sprintf("c=%g", c), func(b *testing.B) {
			var last SimResult
			for i := 0; i < b.N; i++ {
				res, err := SimulateIntolerant(SimConfig{Procs: 32, C: c, Seed: 1, Phases: 100})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.TimePerPhase, "time/phase")
			b.ReportMetric(baseline.AnalyticPhaseTime(5, c), "analytic-1+2hc")
		})
	}
}

// --- Ablation: Fig 2(c) leaf→root wires vs Fig 2(d) convergecast — the
// topology trade-off of Section 4.2. ---

func BenchmarkAblationTopologyFig2cVsFig2d(b *testing.B) {
	for _, cfg := range []struct {
		name         string
		convergecast bool
	}{
		{"fig2c-leaf-wires", false},
		{"fig2d-convergecast", true},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var last SimResult
			for i := 0; i < b.N; i++ {
				res, err := SimulateDetectable(SimConfig{
					Procs: 32, C: 0.02, F: 0.01, Seed: int64(i), Phases: 100,
					Convergecast: cfg.convergecast,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.TimePerPhase, "time/phase")
		})
	}
}
