# Developer entry points. CI runs the same commands; keep them in sync
# with .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race vet barriervet fuzz-smoke barrierbench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet is the full static gate: the stock toolchain vet plus barriervet,
# the repo's own invariant analyzers (see internal/analyzers).
vet:
	$(GO) vet ./... && $(GO) run ./cmd/barriervet ./...

barriervet:
	$(GO) run ./cmd/barriervet ./...

fuzz-smoke:
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzTransport$$' -fuzztime 10s

# The CI cluster-load gate: loopback TCP, 16 groups x 8 procs, 30s of
# open-loop traffic under a seed-deterministic chaos schedule; exits
# non-zero unless the SLO verdict is PASS.
barrierbench-smoke:
	$(GO) run ./cmd/barrierbench -profile smoke
