// Command barrierbench drives cluster-scale barrier traffic — hundreds of
// multiplexed groups × thousands of simulated clients — against one of
// three deployments, injects a deterministic chaos schedule, and judges
// the run with pass/fail SLO verdicts computed from /metrics scrapes: the
// live counterparts of the paper's Fig 3/5 (instances per pass), Fig 4/6
// (synchronization overhead), and Fig 7 (recovery time) measurements.
//
// Modes:
//
//   - inproc:   every group a plain runtime barrier (channel transport) —
//     the protocol under load with the network subtracted.
//   - loopback: one transport mux per simulated process over loopback TCP,
//     every group a tenant in every process — the smoke deployment.
//   - daemon:   spawned cmd/barrierd -groups processes, SIGKILLed and
//     SIGSTOPped for real — the deployment the smoke results predict.
//
// The chaos schedule is expressed in the conformance schedule language
// (target "bench") and is a pure function of the seed: the printed
// schedule line is a complete reproduction of the run's fault sequence.
//
// Examples:
//
//	barrierbench -profile smoke
//	barrierbench -profile scale -mode daemon
//	barrierbench -groups 32 -procs 8 -duration 1m -rate 50 -seed 7
//	barrierbench -chaos-schedule 'bench:n=8:ph=4:seed=1:sched=random:ops=20s,k3,3s,R3,20s'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
)

var (
	profileFlag  = flag.String("profile", "", `named profile: "smoke" (16 groups × 8 procs, 30s, chaos on — the CI gate) or "scale" (192 groups × 8 procs, 2m — the nightly envelope)`)
	modeFlag     = flag.String("mode", "", "deployment: inproc, loopback, or daemon (default loopback)")
	groupsFlag   = flag.Int("groups", 0, "number of multiplexed barrier groups (every fifth a tree)")
	procsFlag    = flag.Int("procs", 0, "number of simulated processes (every group spans all of them)")
	durationFlag = flag.Duration("duration", 0, "load window length (default 30s)")
	rateFlag     = flag.Float64("rate", 0, "per-client open-loop arrival rate, passes/second (default 20)")
	seedFlag     = flag.Int64("seed", 1, "seed for the chaos schedule, arrival jitter, and group draws")
	resendFlag   = flag.Duration("resend", 0, "group retransmission period (default 5ms)")
	depthFlag    = flag.Int("depth", 0, "wave-pipelining window per group (default 1; depth>1 overlaps barrier instances)")
	corruptFlag  = flag.Float64("corrupt", 0, "per-message corruption rate injected into every group")
	chaosFlag    = flag.Bool("chaos", true, "inject the seed-derived chaos schedule")
	schedFlag    = flag.String("chaos-schedule", "", "explicit chaos schedule text (overrides the generated one; implies -chaos)")
	barrierdFlag = flag.String("barrierd", "", "prebuilt barrierd binary for daemon mode (default: go build)")
	quietFlag    = flag.Bool("quiet", false, "suppress progress output (the verdict still prints)")
)

func main() {
	flag.Parse()
	p := bench.Profile{
		Mode:         *modeFlag,
		Groups:       *groupsFlag,
		Procs:        *procsFlag,
		Duration:     *durationFlag,
		Rate:         *rateFlag,
		Seed:         *seedFlag,
		Resend:       *resendFlag,
		Corrupt:      *corruptFlag,
		Depth:        *depthFlag,
		Chaos:        *chaosFlag || *schedFlag != "",
		Schedule:     *schedFlag,
		BarrierdPath: *barrierdFlag,
	}
	switch *profileFlag {
	case "":
		if p.Groups == 0 {
			p.Groups = 16
		}
		if p.Procs == 0 {
			p.Procs = 8
		}
	case "smoke":
		// The CI gate: loopback TCP, 16 groups × 8 processes, 30 seconds of
		// open-loop traffic with at least one SIGKILL+rejoin window. Flags
		// still override individual fields.
		applyDefaults(&p, bench.Profile{Mode: "loopback", Groups: 16, Procs: 8,
			Duration: 30 * time.Second, Rate: 20})
	case "scale":
		// The nightly envelope: an order of magnitude more tenants, a longer
		// window, the same verdict machinery.
		applyDefaults(&p, bench.Profile{Mode: "loopback", Groups: 192, Procs: 8,
			Duration: 2 * time.Minute, Rate: 20})
	default:
		fmt.Fprintf(os.Stderr, "barrierbench: unknown profile %q (want smoke or scale)\n", *profileFlag)
		os.Exit(2)
	}
	if !*quietFlag {
		p.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	r, err := bench.Run(ctx, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "barrierbench:", err)
		os.Exit(2)
	}

	fmt.Printf("\nseed %d", *seedFlag)
	if p.Chaos {
		fmt.Printf("  chaos schedule: %s", r.Schedule.String())
	}
	fmt.Println()
	fmt.Printf("chaos applied: kills=%d restarts=%d partitions=%d churns=%d resets=%d skipped=%d\n",
		r.Chaos.Kills, r.Chaos.Restarts, r.Chaos.Partitions, r.Chaos.Churns, r.Chaos.Resets, r.Chaos.Skipped)
	if cs := r.Client; cs != (bench.ClientStats{}) {
		fmt.Printf("clients: passes=%d resets=%d stopped-retries=%d timeouts=%d\n",
			cs.Passes, cs.Resets, cs.StoppedRetries, cs.Timeouts)
	}
	fmt.Printf("cluster: passes=%.0f wasted-instances=%.0f elapsed=%s\n\n", r.Passes, r.Wasted, r.Elapsed.Round(time.Millisecond))

	// The smoke verdict carries the wasted-work-vs-depth curve: the same
	// seeded chaos schedule replayed inproc at window depths 1, 2, and 4,
	// the opening of the Dwork-style scaling curve (see bench.DepthSweep).
	if *profileFlag == "smoke" {
		sweep := bench.Profile{Groups: 8, Procs: p.Procs, Duration: 5 * time.Second,
			Rate: p.Rate, Seed: p.Seed}
		pts, err := bench.DepthSweep(ctx, sweep, []int{1, 2, 4})
		if err != nil {
			fmt.Fprintln(os.Stderr, "barrierbench:", err)
			os.Exit(2)
		}
		fmt.Printf("wasted work per fault vs pipeline window (inproc, %d groups × %d procs, %s each):\n",
			sweep.Groups, sweep.Procs, sweep.Duration)
		for _, pt := range pts {
			fmt.Printf("  %s\n", pt)
		}
		fmt.Println()
	}

	for _, c := range r.Verdict.Checks {
		status := "ok  "
		if !c.OK {
			status = "FAIL"
		}
		fmt.Printf("  %s %-17s %s\n", status, c.Name, c.Detail)
	}
	fmt.Printf("\nSLO verdict: %s\n", r.Verdict.String())
	if !r.Verdict.Pass {
		os.Exit(1)
	}
}

// applyDefaults fills p's zero fields from the named profile's shape, so
// explicit flags always win over the profile.
func applyDefaults(p *bench.Profile, d bench.Profile) {
	if p.Mode == "" {
		p.Mode = d.Mode
	}
	if p.Groups == 0 {
		p.Groups = d.Groups
	}
	if p.Procs == 0 {
		p.Procs = d.Procs
	}
	if p.Duration == 0 {
		p.Duration = d.Duration
	}
	if p.Rate == 0 {
		p.Rate = d.Rate
	}
}
