// Command benchgate fails CI when the barrier hot path regresses.
//
// It reads `go test -bench` output (stdin, or -input), compares each
// BenchmarkAwait* result against the committed baseline
// (BENCH_runtime.json), and exits non-zero if
//
//   - any measured Await benchmark reports allocs/op > 0 (the hot path
//     is allocation-free by design — see DESIGN.md — and must stay so), or
//   - a gated benchmark family (BenchmarkAwaitTree, BenchmarkAwaitChannel,
//     BenchmarkAwaitHybrid) is more than -tolerance slower than baseline
//     after normalization, or
//   - a same-run structural ratio fails: the hybrid topology must beat the
//     flat ring over loopback TCP at n=8 (the crossover the topology
//     exists for), and a depth-4 pipeline window must sustain at least
//     1.5x the depth=1 pass rate over the shared mux connection. Both
//     ratios compare two measurements from the same run on the same
//     machine, so no baseline normalization is involved; each gate is
//     active only when both of its rows are present in the input.
//
// CI runners are not the host the baseline was measured on, so raw
// ns/op comparison would gate on machine speed, not on the code. The
// gate therefore normalizes by the median current/baseline ratio across
// every matched benchmark: a uniformly slower machine moves all ratios
// together and cancels out, while a regression confined to the Await
// path moves its ratio away from the median and trips the gate.
//
// The verdict is per family, on the geometric mean of the normalized
// ratios over the family's sizes (n=2..32): single-size microbenchmarks
// swing several percent run to run even after min-of-N folding, but a
// real hot-path regression moves every size of the family together,
// so the family mean separates signal from scheduler noise.
//
// Run the benchmarks with -count=3 or more: repeated result lines for
// one benchmark are folded to their minimum (ns/op and allocs/op), the
// standard way to strip scheduler noise and one-time amortized costs
// from short runs.
//
//	go test -run '^$' -bench Await -benchtime 2000x -count 3 -benchmem . | benchgate
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	baselineFlag  = flag.String("baseline", "BENCH_runtime.json", "baseline results file")
	inputFlag     = flag.String("input", "-", `bench output to check ("-": stdin)`)
	toleranceFlag = flag.Float64("tolerance", 0.02, "allowed fractional slowdown on gated benchmarks after normalization")
)

// gatedPrefixes are the benchmark families whose normalized ns/op is
// gated; the rest (TCP loopback) only contribute to the median and to
// the allocs check — socket benches are too kernel-noisy to gate at 2%.
var gatedPrefixes = []string{"BenchmarkAwaitTree/", "BenchmarkAwaitChannel/", "BenchmarkAwaitHybrid/"}

type baselineFile struct {
	Results []struct {
		Bench       string  `json:"bench"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp *int64  `json:"allocs_per_op"`
	} `json:"results"`
}

type measurement struct {
	nsPerOp   float64
	allocsSet bool
	allocs    int64
}

// benchLine matches one result line of `go test -bench -benchmem`
// output; the -N GOMAXPROCS suffix is stripped from the name so it
// matches the baseline keys regardless of the runner's CPU count.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)
var allocsField = regexp.MustCompile(`([\d.]+) allocs/op`)

func parseBench(r io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		match := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if match == nil {
			continue
		}
		ns, err := strconv.ParseFloat(match[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
		}
		m := measurement{nsPerOp: ns}
		if a := allocsField.FindStringSubmatch(match[3]); a != nil {
			v, err := strconv.ParseFloat(a[1], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
			m.allocsSet, m.allocs = true, int64(v)
		}
		// -count repeats fold to the minimum: the best run is the one
		// least disturbed by the machine.
		if prev, ok := out[match[1]]; ok {
			if prev.nsPerOp < m.nsPerOp {
				m.nsPerOp = prev.nsPerOp
			}
			if prev.allocsSet && (!m.allocsSet || prev.allocs < m.allocs) {
				m.allocsSet, m.allocs = true, prev.allocs
			}
		}
		out[match[1]] = m
	}
	return out, sc.Err()
}

func gated(name string) bool {
	for _, p := range gatedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run() error {
	raw, err := os.ReadFile(*baselineFlag)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", *baselineFlag, err)
	}
	baseline := map[string]float64{}
	for _, r := range base.Results {
		baseline[r.Bench] = r.NsPerOp
	}

	in := os.Stdin
	if *inputFlag != "-" {
		f, err := os.Open(*inputFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(measured) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}

	// Allocation gate: strict zero on every Await benchmark measured.
	failed := false
	for name, m := range measured {
		if !strings.HasPrefix(name, "BenchmarkAwait") {
			continue
		}
		if !m.allocsSet {
			fmt.Fprintf(os.Stderr, "FAIL %s: no allocs/op field (run with -benchmem)\n", name)
			failed = true
		} else if m.allocs != 0 {
			fmt.Fprintf(os.Stderr, "FAIL %s: %d allocs/op, hot path must be allocation-free\n", name, m.allocs)
			failed = true
		}
	}

	// Speed gate: normalize by the median ratio over every benchmark
	// present in both the run and the baseline.
	type row struct {
		name  string
		ratio float64
	}
	var rows []row
	for name, m := range measured {
		if b, ok := baseline[name]; ok && b > 0 {
			rows = append(rows, row{name, m.nsPerOp / b})
		}
	}
	if len(rows) == 0 {
		return fmt.Errorf("no measured benchmark matches the baseline set")
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	ratios := make([]float64, len(rows))
	for i, r := range rows {
		ratios[i] = r.ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	if median <= 0 {
		return fmt.Errorf("degenerate median ratio %v", median)
	}

	fmt.Printf("benchgate: %d benchmarks matched, median host ratio %.3f, tolerance %.1f%%\n",
		len(rows), median, 100**toleranceFlag)
	famLog, famCount := map[string]float64{}, map[string]int{}
	for _, r := range rows {
		norm := r.ratio / median
		kind := " info "
		if gated(r.name) {
			kind = " gate "
			fam := r.name[:strings.Index(r.name, "/")]
			famLog[fam] += math.Log(norm)
			famCount[fam]++
		}
		fmt.Printf("%s %-34s ns/op %9.0f  vs base x%.3f  normalized x%.3f\n",
			kind, r.name, measured[r.name].nsPerOp, r.ratio, norm)
	}
	fams := make([]string, 0, len(famLog))
	for fam := range famLog {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		geomean := math.Exp(famLog[fam] / float64(famCount[fam]))
		verdict := "ok"
		if geomean > 1+*toleranceFlag {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%-6s %-34s family geomean x%.3f over %d sizes\n", verdict, fam, geomean, famCount[fam])
	}

	if !ratioGates(measured) {
		failed = true
	}

	if failed {
		return fmt.Errorf("gate failed")
	}
	return nil
}

// ratioGates checks the same-run structural ratios. Both sides of each
// ratio come from one run on one machine, so machine speed cancels and
// no baseline normalization is needed; a gate whose rows are absent from
// the input is skipped, so partial bench runs still pass.
func ratioGates(measured map[string]measurement) bool {
	ok := true
	check := func(name, num, den string, maxRatio float64, why string) {
		n, haveNum := measured[num]
		d, haveDen := measured[den]
		if !haveNum || !haveDen {
			return
		}
		ratio := n.nsPerOp / d.nsPerOp
		verdict := "ok"
		if ratio > maxRatio {
			verdict = "FAIL"
			ok = false
		}
		fmt.Printf("%-6s %-34s %s/%s x%.3f (max x%.3f): %s\n",
			verdict, name, num, den, ratio, maxRatio, why)
	}
	check("hybrid-crossover",
		"BenchmarkAwaitTCPLoopbackHybrid/n=8", "BenchmarkAwaitTCPLoopback/n=8",
		1.0, "host fusion must beat the flat ring over the wire")
	check("pipeline-depth",
		"BenchmarkAwaitPipelined/depth=4", "BenchmarkAwaitPipelined/depth=1",
		1.0/1.5, "a depth-4 window must sustain >=1.5x the depth=1 pass rate")
	return ok
}
