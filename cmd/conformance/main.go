// Command conformance soaks the barrier refinements under randomized fault
// schedules and replays failing schedules deterministically.
//
// Soak mode generates -runs schedules per target from consecutive seeds,
// runs each against the shared specification checker, and prints a summary
// table. Any failure is shrunk to a minimal counterexample and printed with
// the replay command that reproduces it.
//
// Examples:
//
//	conformance -target all -runs 200
//	conformance -target tb -runs 1000 -scrambles=false -fault-rate 0.2
//	conformance -target runtime -runs 20 -loss 0.05 -corrupt 0.05
//	conformance -replay 'tb:n=4:ph=3:seed=2:sched=random:ops=r2,r0'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/conformance"
	"repro/internal/stats"
)

var (
	targetFlag    = flag.String("target", "all", "target: cb, rb, tb, dt, mb, runtime, or all")
	procsFlag     = flag.Int("procs", 4, "number of processes")
	nPhasesFlag   = flag.Int("nphases", 3, "phase-counter modulus")
	runsFlag      = flag.Int("runs", 100, "schedules per target")
	seedFlag      = flag.Int64("seed", 1, "first schedule seed (consecutive seeds follow)")
	schedFlag     = flag.String("sched", "random", "scheduler: random, roundrobin, maxparallel, pick")
	opsFlag       = flag.Int("ops", 200, "approximate ops per schedule (runtime target: wall-clock paced)")
	faultRateFlag = flag.Float64("fault-rate", 0.12, "per-op probability of a fault")
	scramblesFlag = flag.Bool("scrambles", true, "include undetectable faults (stabilizing tolerance)")
	crashesFlag   = flag.Bool("crashes", true, "include crash/restart gates (engine targets)")
	spuriousFlag  = flag.Bool("spurious", true, "include spurious messages (runtime target)")
	lossFlag      = flag.Float64("loss", 0.03, "per-message loss rate (runtime target)")
	corruptFlag   = flag.Float64("corrupt", 0.03, "per-message corruption rate (runtime target)")
	replayFlag    = flag.String("replay", "", "replay one schedule string and exit")
	shrinkFlag    = flag.Bool("shrink", true, "shrink failing schedules to minimal counterexamples")
)

func main() {
	flag.Parse()
	if *replayFlag != "" {
		os.Exit(replay(*replayFlag))
	}

	targets := strings.Split(*targetFlag, ",")
	if *targetFlag == "all" {
		targets = conformance.Targets()
	}
	sched, err := conformance.ParseSchedKind(*schedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	table := stats.NewTable("conformance soak",
		"target", "runs", "ok", "fail", "barriers", "steps", "skipped", "stabilized")
	failed := false
	for _, tgt := range targets {
		cfg := conformance.GenConfig{
			Target:    tgt,
			NProcs:    *procsFlag,
			NPhases:   *nPhasesFlag,
			Sched:     sched,
			Ops:       *opsFlag,
			FaultRate: *faultRateFlag,
			Scrambles: *scramblesFlag,
			Crashes:   *crashesFlag,
			Spurious:  *spuriousFlag,
		}
		if conformance.IsRuntimeTarget(tgt) {
			cfg.Loss = *lossFlag
			cfg.Corrupt = *corruptFlag
			// Runtime schedules are wall-clock paced; keep them shorter so a
			// soak finishes in reasonable time.
			if cfg.Ops > 80 {
				cfg.Ops = 80
			}
		}
		var ok, fail, barriers, steps, skipped, stabilized int
		for i := 0; i < *runsFlag; i++ {
			s := conformance.Generate(cfg, *seedFlag+int64(i))
			v := conformance.Run(s)
			barriers += v.Barriers
			steps += v.Steps
			skipped += v.SkippedFaults
			if v.Stabilized {
				stabilized++
			}
			if v.OK {
				ok++
				continue
			}
			fail++
			failed = true
			report(s, v)
		}
		table.AddRow(tgt,
			fmt.Sprint(*runsFlag), fmt.Sprint(ok), fmt.Sprint(fail),
			fmt.Sprint(barriers), fmt.Sprint(steps), fmt.Sprint(skipped),
			fmt.Sprint(stabilized))
	}
	fmt.Println(table)
	if failed {
		os.Exit(1)
	}
}

// report prints a failing schedule and, unless disabled, its shrunk minimal
// counterexample with the command line that replays it.
func report(s conformance.Schedule, v conformance.Verdict) {
	fmt.Printf("FAIL %s\n  %v\n", s.String(), v)
	if !*shrinkFlag {
		return
	}
	m := conformance.Shrink(s, func(c conformance.Schedule) bool { return !conformance.Run(c).OK })
	fmt.Printf("  shrunk (%d -> %d ops): %s\n  replay: go run ./cmd/conformance -replay '%s'\n",
		len(s.Ops), len(m.Ops), m.String(), m.String())
}

func replay(text string) int {
	s, err := conformance.Parse(text)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	v := conformance.Run(s)
	fmt.Printf("%s\n%v\n", s.String(), v)
	if !v.OK {
		if *shrinkFlag {
			report(s, v)
		}
		return 1
	}
	return 0
}
