// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6 and Table 1) and prints paper-vs-measured rows.
//
// Usage:
//
//	experiments            # all figures and tables
//	experiments -fig 5     # just Figure 5
//	experiments -table 1   # just Table 1
//	experiments -phases 500 -trials 50   # heavier sampling
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/analytical"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/rbtree"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

var (
	figFlag       = flag.Int("fig", 0, "figure to regenerate (3-7); 0 = all")
	tableFlag     = flag.Int("table", 0, "table to regenerate (1); 0 = all")
	ablationsFlag = flag.Bool("ablations", false, "run only the design ablations")
	phasesFlag    = flag.Int("phases", 300, "successful phases per simulated grid point")
	trialsFlag    = flag.Int("trials", 40, "trials per recovery grid point (figure 7)")
	seedFlag      = flag.Int64("seed", 1998, "base random seed")
)

func main() {
	flag.Parse()
	if *ablationsFlag {
		if err := ablations(); err != nil {
			fail(err)
		}
		return
	}
	all := *figFlag == 0 && *tableFlag == 0

	runFig := func(n int) bool { return all || *figFlag == n }
	runTable := func(n int) bool { return all || *tableFlag == n }

	if runFig(3) {
		figure3()
	}
	if runFig(4) {
		figure4()
	}
	if runFig(5) {
		if err := figure5(); err != nil {
			fail(err)
		}
	}
	if runFig(6) {
		if err := figure6(); err != nil {
			fail(err)
		}
	}
	if runFig(7) {
		if err := figure7(); err != nil {
			fail(err)
		}
	}
	if runTable(1) {
		table1()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

var (
	latencies   = []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05}
	frequencies = []float64{0, 0.001, 0.01, 0.02, 0.05, 0.1}
)

// figure3 prints the analytical expected-instances series (32 processes,
// h = 5), exactly the curves of the paper's Figure 3.
func figure3() {
	fmt.Println("== Figure 3 — analytical: instances per successful phase (32 procs, h=5) ==")
	fmt.Println("   paper anchors: ≤1.6% re-execution for f ≤ 0.01 at c=0.01;")
	fmt.Println("   ≈1.7% at f=0.01, c=0.05")
	cols := []string{"f \\ c"}
	for _, c := range latencies {
		cols = append(cols, fmt.Sprintf("c=%.2f", c))
	}
	tab := stats.NewTable("", cols...)
	for _, f := range frequencies {
		row := []string{fmt.Sprintf("%.3f", f)}
		for _, c := range latencies {
			m := analytical.Model{H: 5, C: c, F: f}
			row = append(row, fmt.Sprintf("%.4f", m.ExpectedInstances()))
		}
		tab.AddRow(row...)
	}
	fmt.Println(tab)
}

// figure4 prints the analytical overhead series, the paper's Figure 4,
// including its quoted spot values.
func figure4() {
	fmt.Println("== Figure 4 — analytical: overhead of fault-tolerance (32 procs, h=5) ==")
	fmt.Println("   paper anchors at c=0.01: 4.5% (f=0), 5.7% (f=0.01), ≤10.8% (f=0.05)")
	cols := []string{"f \\ c"}
	for _, c := range latencies {
		cols = append(cols, fmt.Sprintf("c=%.2f", c))
	}
	tab := stats.NewTable("", cols...)
	for _, f := range []float64{0, 0.01, 0.05} {
		row := []string{fmt.Sprintf("%.2f", f)}
		for _, c := range latencies {
			m := analytical.Model{H: 5, C: c, F: f}
			row = append(row, fmt.Sprintf("%5.2f%%", 100*m.Overhead()))
		}
		tab.AddRow(row...)
	}
	fmt.Println(tab)
}

// figure5 runs the timed simulation grid for instances per phase and prints
// it against the analytical prediction.
func figure5() error {
	fmt.Println("== Figure 5 — simulated: instances per successful phase (32 procs, h=5) ==")
	fmt.Println("   paper finding: simulation matches the analytical prediction")
	tab := stats.NewTable("", "c", "f", "simulated", "analytical")
	for _, c := range []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05} {
		for _, f := range frequencies {
			res, err := sim.RunDetectable(sim.Config{
				Procs: 32, C: c, F: f, Seed: *seedFlag, Phases: *phasesFlag,
			})
			if err != nil {
				return fmt.Errorf("figure 5 (c=%g, f=%g): %w", c, f, err)
			}
			ana := analytical.Model{H: 5, C: c, F: f}.ExpectedInstances()
			tab.AddRow(
				fmt.Sprintf("%.2f", c),
				fmt.Sprintf("%.3f", f),
				fmt.Sprintf("%.4f", res.InstancesPerPhase),
				fmt.Sprintf("%.4f", ana),
			)
		}
	}
	fmt.Println(tab)
	return nil
}

// figure6 runs the timed simulation grid for fault-tolerance overhead and
// prints it against the analytical worst case and the simulated intolerant
// baseline.
func figure6() error {
	fmt.Println("== Figure 6 — simulated: overhead of fault-tolerance (32 procs, h=5) ==")
	fmt.Println("   paper finding: simulated overhead is below the analytical worst case")
	tab := stats.NewTable("", "c", "f", "sim time/phase", "intol 1+2hc", "sim overhead", "analytical")
	for _, f := range []float64{0, 0.01, 0.05} {
		for _, c := range latencies {
			res, err := sim.RunDetectable(sim.Config{
				Procs: 32, C: c, F: f, Seed: *seedFlag, Phases: *phasesFlag,
			})
			if err != nil {
				return fmt.Errorf("figure 6 (c=%g, f=%g): %w", c, f, err)
			}
			ana := analytical.Model{H: 5, C: c, F: f}.Overhead()
			tab.AddRow(
				fmt.Sprintf("%.2f", c),
				fmt.Sprintf("%.2f", f),
				fmt.Sprintf("%.4f", res.TimePerPhase),
				fmt.Sprintf("%.4f", baseline.AnalyticPhaseTime(5, c)),
				fmt.Sprintf("%5.2f%%", 100*res.Overhead),
				fmt.Sprintf("%5.2f%%", 100*ana),
			)
		}
	}
	fmt.Println(tab)
	return nil
}

// figure7 measures recovery from whole-system undetectable perturbation for
// trees of heights 1..7 (the paper's 2..128 processes).
func figure7() error {
	fmt.Println("== Figure 7 — simulated: recovery from undetectable faults ==")
	fmt.Println("   paper anchors: 32 procs @ c=0.01 ≈ 0.56 units; 128 procs @ c=0.05 < 1 unit;")
	fmt.Println("   analytical bound 5hc (≤1.25 for 2hc ≤ 0.5)")
	tab := stats.NewTable("", "procs", "h", "c", "mean recovery", "p95", "bound 5hc")
	sizes := []int{2, 4, 7, 15, 32, 64, 128} // heights 1..7 as binary trees
	for _, procs := range sizes {
		for _, c := range []float64{0.01, 0.03, 0.05} {
			var s stats.Sample
			h := 0
			for trial := 0; trial < *trialsFlag; trial++ {
				r, err := sim.RunRecovery(sim.Config{
					Procs: procs, C: c, Seed: *seedFlag + int64(trial),
				})
				if err != nil {
					return fmt.Errorf("figure 7 (procs=%d, c=%g): %w", procs, c, err)
				}
				s.Add(r.Time)
				h = r.Height
			}
			tab.AddRow(
				fmt.Sprintf("%d", procs),
				fmt.Sprintf("%d", h),
				fmt.Sprintf("%.2f", c),
				fmt.Sprintf("%.4f", s.Mean()),
				fmt.Sprintf("%.4f", s.Quantile(0.95)),
				fmt.Sprintf("%.4f", 5*float64(h)*c),
			)
		}
	}
	fmt.Println(tab)
	return nil
}

// ablations prints the design-choice ablations DESIGN.md calls out:
// ring vs tree synchronization cost, Fig 2(c) leaf wires vs Fig 2(d)
// convergecast, and the effect of the sequence-number modulus K.
func ablations() error {
	fmt.Println("== Ablation — Fig 2(c) leaf wires vs Fig 2(d) convergecast (32 procs) ==")
	tab := stats.NewTable("", "c", "f", "fig2c time/phase", "fig2d time/phase", "ratio")
	for _, c := range []float64{0.01, 0.03, 0.05} {
		for _, f := range []float64{0, 0.02} {
			r2c, err := sim.RunDetectable(sim.Config{Procs: 32, C: c, F: f, Seed: *seedFlag, Phases: *phasesFlag})
			if err != nil {
				return err
			}
			r2d, err := sim.RunDetectable(sim.Config{Procs: 32, C: c, F: f, Seed: *seedFlag, Phases: *phasesFlag, Convergecast: true})
			if err != nil {
				return err
			}
			tab.AddRow(
				fmt.Sprintf("%.2f", c),
				fmt.Sprintf("%.2f", f),
				fmt.Sprintf("%.4f", r2c.TimePerPhase),
				fmt.Sprintf("%.4f", r2d.TimePerPhase),
				fmt.Sprintf("%.2f", r2d.TimePerPhase/r2c.TimePerPhase),
			)
		}
	}
	fmt.Println(tab)

	fmt.Println("== Ablation — ring O(N) vs binary tree O(log N) (maximal-parallel rounds per barrier) ==")
	rvt := stats.NewTable("", "procs", "ring rounds/barrier", "tree rounds/barrier")
	for _, n := range []int{8, 32, 128} {
		ringRounds, err := roundsPerBarrier(pathParent(n))
		if err != nil {
			return err
		}
		tr, err := topo.NewBinaryTree(n)
		if err != nil {
			return err
		}
		treeRounds, err := roundsPerBarrier(tr.Parent)
		if err != nil {
			return err
		}
		rvt.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", ringRounds),
			fmt.Sprintf("%.1f", treeRounds))
	}
	fmt.Println(rvt)

	fmt.Println("== Ablation — sequence-number modulus K (32 procs, rounds/barrier) ==")
	kt := stats.NewTable("", "K", "rounds/barrier")
	tr, err := topo.NewBinaryTree(32)
	if err != nil {
		return err
	}
	for _, k := range []int{33, 64, 128} {
		r, err := roundsPerBarrierK(tr.Parent, k)
		if err != nil {
			return err
		}
		kt.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.1f", r))
	}
	fmt.Println(kt)
	return nil
}

func pathParent(n int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = i - 1
	}
	return parent
}

func roundsPerBarrier(parent []int) (float64, error) {
	return roundsPerBarrierK(parent, len(parent)+1)
}

func roundsPerBarrierK(parent []int, k int) (float64, error) {
	rng := rand.New(rand.NewSource(*seedFlag))
	n := len(parent)
	checker := core.NewSpecChecker(n, 2)
	p, err := rbtree.New(parent, 2, k, rng, checker.Observe)
	if err != nil {
		return 0, err
	}
	rounds := 0
	for checker.SuccessfulBarriers() < 20 {
		if p.Guarded().StepMaxParallel(nil) == 0 {
			return 0, fmt.Errorf("deadlock")
		}
		rounds++
		if rounds > 10_000_000 {
			return 0, fmt.Errorf("no progress")
		}
	}
	return float64(rounds) / 20, nil
}

// table1 prints the fault-classification table with the tolerance each
// fault kind receives in this implementation.
func table1() {
	fmt.Println("== Table 1 — fault classes and appropriate tolerances ==")
	tab := stats.NewTable("", "correctability", "detectable", "undetectable")
	for _, corr := range []faults.Correctability{faults.Immediate, faults.Eventual, faults.Uncorrectable} {
		tab.AddRow(
			corr.String(),
			faults.AppropriateTolerance(corr, faults.Detectable).String(),
			faults.AppropriateTolerance(corr, faults.Undetectable).String(),
		)
	}
	fmt.Println(tab)

	fmt.Println("Fault catalog (Section 1 fault types, classified per Section 2):")
	cat := stats.NewTable("", "fault", "class", "correctability", "tolerance provided")
	for _, k := range faults.Catalog {
		cat.AddRow(k.Name, k.Class.String(), k.Correctability.String(), k.Tolerance().String())
	}
	fmt.Println(cat)
}
