// Command barrierd hosts one member of a distributed fault-tolerant
// barrier: each member runs as its own OS process, connected to its
// neighbors over TCP (internal/transport). Together the processes realize
// the same protocol instance the in-process runtime runs over channels.
//
// -topology selects the refinement: "ring" (default) is the MB token ring,
// "tree" the double-tree broadcast/convergecast over a binary heap of the
// member indices — O(log N) barrier latency instead of O(N), at the price
// of the root being a hub. "hybrid" is the two-level shape for members
// co-located on hosts: -hosts "0,1|2,3" groups the barrier members by
// host, each process fuses its whole roster onto one local scheduler, and
// -peers lists one address per HOST — only host roots exchange network
// messages, over a binary heap of the host indices. Every member of one
// barrier must agree on the topology.
//
// A four-member loopback ring:
//
//	barrierd -id 0 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 &
//	barrierd -id 1 -peers ... &
//	barrierd -id 2 -peers ... &
//	barrierd -id 3 -peers ... &
//
// Each process loops Await, printing one "pass" line per completed
// barrier and checking its per-member projection of the specification:
// successive passes must cycle through the phases in order. (The full
// specification checker needs a totally ordered event stream, which does
// not exist across processes; the in-process conformance targets provide
// that stronger check.)
//
// After -passes successful passes the process prints "DONE n" but keeps
// participating — a barrier member that simply exits would break the ring
// for everyone else — until SIGTERM/SIGINT, which shuts it down cleanly.
// A member restarted into a live ring should be given -rejoin, which
// starts the protocol in the reset state (sn ⊥), so rejoining is masked
// exactly like a detectable fault (Section 7 of the paper).
//
// -metrics addr serves the live Section 6 measurements: /metrics exposes
// the barrier's and transport's series in the Prometheus text format
// (passes, re-executed instances per pass, pass latency, recovery time,
// reconnects, CRC drops), and /healthz answers 200 while the member is
// live — 503 after a fail-safe halt — so supervisors and tests can probe
// readiness instead of sleeping. -pprof adds /debug/pprof on the same
// address.
//
// -groups FILE switches the daemon to multi-tenant mode: instead of one
// barrier it hosts one member of every group declared in FILE, all
// multiplexed over a single shared TCP connection per peer pair
// (internal/groups). Each line of FILE declares one group:
//
//	name [topology [nphases]] [key=value...]
//	# e.g. "g00 ring 4", "batch tree", "ml hybrid hosts=0,1|2,3",
//	#      "fast ring depth=4"
//
// '#' starts a comment; topology defaults to ring and nphases to
// -nphases. "hosts=0,1|2,3" declares a hybrid group's member rosters
// (one per process, '|'-separated); "depth=K" pipelines up to K barrier
// instances of the group over the shared connections (K wire groups,
// one per in-flight wave). Every process of the deployment must be
// started with an identical file (the handshake digest enforces it).
// Per-pass output is prefixed with the group name ("[g00] pass 3 phase
// 2"; hybrid groups hosting several members add the member, "[ml m3]");
// after every group reaches -passes the daemon prints "ALL-GROUPS DONE
// n" and keeps participating until signalled. /metrics carries each
// group's series labelled {group="name"}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/groups"
	"repro/internal/obsv"
	"repro/internal/runtime"
	"repro/internal/topo"
	"repro/internal/transport"
)

var (
	idFlag       = flag.Int("id", -1, "this member's position (0-based)")
	peersFlag    = flag.String("peers", "", "comma-separated host:port of every member, in member order")
	topologyFlag = flag.String("topology", "ring", `barrier topology: "ring", "tree" (binary heap by member index) or "hybrid" (-hosts groups members by host)`)
	hostsFlag    = flag.String("hosts", "", `hybrid member grouping: '|'-separated per-host rosters, e.g. "0,1|2,3" (host i's members; -peers then lists one address per host and -id is the host index)`)
	passesFlag   = flag.Int("passes", 100, "print DONE after this many successful passes (0: unlimited)")
	nPhasesFlag  = flag.Int("nphases", 4, "phase-counter modulus")
	resendFlag   = flag.Duration("resend", 500*time.Microsecond, "state retransmission period")
	lossFlag     = flag.Float64("loss", 0, "per-message send-loss probability (fault injection)")
	corruptFlag  = flag.Float64("corrupt", 0, "per-message corruption probability (fault injection)")
	seedFlag     = flag.Int64("seed", 1, "random seed for fault injection draws")
	rejoinFlag   = flag.Bool("rejoin", false, "start in the reset protocol state (restarting into a live ring)")
	quietFlag    = flag.Bool("quiet", false, "suppress per-pass output")
	thinkFlag    = flag.Duration("think", 0, "sleep between successive passes (open-loop pacing for load tests)")
	metricsFlag  = flag.String("metrics", "", `serve /metrics and /healthz on this address (e.g. ":9100"; empty: disabled)`)
	pprofFlag    = flag.Bool("pprof", false, "also serve /debug/pprof on the -metrics address")
	groupsFlag   = flag.String("groups", "", "host every barrier group declared in this file over shared connections (multi-tenant mode)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "barrierd:", err)
		os.Exit(1)
	}
}

func run() error {
	peers, id, err := parseMembership(*peersFlag, *idFlag)
	if err != nil {
		return err
	}

	// One registry serves the barrier's and the transport's series; nil
	// (metrics disabled) makes every registration a no-op downstream.
	var reg *obsv.Registry
	if *metricsFlag != "" {
		reg = obsv.NewRegistry()
	}

	if *groupsFlag != "" {
		return runGroups(*groupsFlag, peers, id, reg)
	}

	// The transport must realize the same topology the protocol runs: ring
	// links for MB, tree edges (matching the runtime's default binary-heap
	// shape) for the double-tree refinement, host-tree edges for hybrid.
	var (
		tr       runtime.Transport
		topology runtime.Topology
		hosts    [][]int      // hybrid only
		members  = []int{id}  // the barrier members this process drives
		total    = len(peers) // Participants
	)
	switch *topologyFlag {
	case "ring":
		topology = runtime.TopologyRing
		t, err := transport.NewTCP(transport.TCPConfig{Peers: peers, Registry: reg})
		if err != nil {
			return err
		}
		tr = t
	case "tree":
		topology = runtime.TopologyTree
		shape, err := topo.NewKAryTree(len(peers), 2)
		if err != nil {
			return err
		}
		t, err := transport.NewTCPTree(transport.TCPConfig{Peers: peers, Registry: reg}, shape.Parent)
		if err != nil {
			return err
		}
		tr = t
	case "hybrid":
		topology = runtime.TopologyHybrid
		hosts, err = parseHosts(*hostsFlag)
		if err != nil {
			return err
		}
		if len(hosts) != len(peers) {
			return fmt.Errorf("-hosts declares %d hosts, -peers %d addresses: want one address per host", len(hosts), len(peers))
		}
		hy, err := topo.NewHybridTree(hosts, 2)
		if err != nil {
			return err
		}
		t, err := transport.NewTCPTree(transport.TCPConfig{Peers: peers, Registry: reg}, hy.HostTree.Parent)
		if err != nil {
			return err
		}
		tr = t
		members = hosts[id]
		total = len(hy.HostOf)
	default:
		return fmt.Errorf("-topology %q: want ring, tree or hybrid", *topologyFlag)
	}
	if *hostsFlag != "" && topology != runtime.TopologyHybrid {
		return errors.New("-hosts requires -topology hybrid")
	}
	defer tr.Close()
	b, err := runtime.New(runtime.Config{
		Participants: total,
		NPhases:      *nPhasesFlag,
		Topology:     topology,
		Hosts:        hosts,
		Transport:    tr,
		Members:      members,
		Rejoin:       *rejoinFlag,
		Resend:       *resendFlag,
		LossRate:     *lossFlag,
		CorruptRate:  *corruptFlag,
		Seed:         *seedFlag + int64(id), // decorrelate the members' fault draws
		Metrics:      reg,
	})
	if err != nil {
		return err
	}
	defer b.Stop()

	var passCounter atomic.Int64
	if *metricsFlag != "" {
		srv, err := serveMetrics(*metricsFlag, reg, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			status, code := "ok", http.StatusOK
			if b.Halted() {
				// Fail-safe halt: the member will never pass a barrier again;
				// report unhealthy so a supervisor can restart it with -rejoin.
				status, code = "halted", http.StatusServiceUnavailable
			}
			w.WriteHeader(code)
			fmt.Fprintf(w, `{"status":%q,"member":%d,"topology":%q,"passes":%d}`+"\n",
				status, id, *topologyFlag, passCounter.Load())
		})
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigs
		cancel()
	}()

	// One spec-projection loop per locally-hosted member: one for ring and
	// tree, the whole host roster for hybrid. "DONE n" announces the quota
	// once EVERY local member has reached it; the loops keep participating
	// until signalled — exiting would break the barrier for members still
	// short of their quota.
	var doneCount atomic.Int64
	errs := make(chan error, len(members))
	for _, m := range members {
		m := m
		label := ""
		if len(members) > 1 {
			label = fmt.Sprintf("[m%d] ", m)
		}
		go func() {
			errs <- memberLoop(ctx, b, m, label, *nPhasesFlag, &passCounter, func() {
				if int(doneCount.Add(1)) == len(members) {
					fmt.Printf("DONE %d\n", *passesFlag)
				}
			})
		}()
	}
	for range members {
		if err := <-errs; err != nil {
			return err
		}
	}
	fmt.Printf("EXIT member %d: %d passes, clean\n", id, passCounter.Load())
	return nil
}

// memberLoop is one member's projection of the specification: successive
// passes must cycle through the phases in order. The first pass
// synchronizes the expectation (a -rejoin member comes up mid-cycle).
func memberLoop(ctx context.Context, b *runtime.Barrier, member int, label string, nPhases int, counter *atomic.Int64, onQuota func()) error {
	var (
		passes    int
		expected  = -1
		quotaSaid bool
	)
	for {
		ph, err := b.Await(ctx, member)
		switch {
		case err == nil:
			if expected != -1 && ph != expected {
				fmt.Printf("VIOLATION member %d: pass %d phase %d, expected %d\n", member, passes, ph, expected)
				return fmt.Errorf("phase order violated: got %d, expected %d", ph, expected)
			}
			expected = (ph + 1) % nPhases
			passes++
			counter.Add(1)
			if !*quietFlag {
				fmt.Printf("%spass %d phase %d\n", label, passes, ph)
			}
			if *passesFlag > 0 && passes == *passesFlag && !quotaSaid {
				quotaSaid = true
				onQuota()
			}
			thinkPause(ctx)
		case errors.Is(err, runtime.ErrReset):
			// Detectable fault consumed the phase work: redo. The phase
			// expectation survives — a reset must not skip or repeat a
			// barrier this member already observed.
		case errors.Is(err, context.Canceled):
			return nil
		default:
			return fmt.Errorf("await: %w", err)
		}
	}
}

// thinkPause paces successive passes when -think is set, so a load
// harness can run the daemon open-loop instead of barrier-speed
// closed-loop. Interruptible by shutdown.
func thinkPause(ctx context.Context) {
	if *thinkFlag <= 0 {
		return
	}
	select {
	case <-ctx.Done():
	case <-time.After(*thinkFlag):
	}
}

// parseMembership validates the deployment shape shared by both modes:
// at least two members, every peer address non-empty and unique, and the
// member id in range.
func parseMembership(peersCSV string, id int) ([]string, int, error) {
	peers := strings.Split(peersCSV, ",")
	if peersCSV == "" || len(peers) < 2 {
		return nil, 0, errors.New("-peers must list at least 2 members")
	}
	seen := make(map[string]int, len(peers))
	for j, p := range peers {
		if strings.TrimSpace(p) == "" {
			return nil, 0, fmt.Errorf("-peers entry %d is empty", j)
		}
		if prev, ok := seen[p]; ok {
			return nil, 0, fmt.Errorf("-peers entry %d duplicates entry %d (%s): every member needs its own address", j, prev, p)
		}
		seen[p] = j
	}
	if id < 0 || id >= len(peers) {
		return nil, 0, fmt.Errorf("-id %d out of range: want 0..%d for %d peers", id, len(peers)-1, len(peers))
	}
	return peers, id, nil
}

// parseHosts reads a hybrid member grouping: '|'-separated per-host
// rosters of ','-separated member ids, e.g. "0,1|2,3".
func parseHosts(s string) ([][]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("hybrid needs a host grouping (e.g. \"0,1|2,3\")")
	}
	rosters := strings.Split(s, "|")
	hosts := make([][]int, len(rosters))
	for h, roster := range rosters {
		for _, f := range strings.Split(roster, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("host %d: member %q: %w", h, f, err)
			}
			hosts[h] = append(hosts[h], id)
		}
	}
	return hosts, nil
}

// parseGroupsFile reads the multi-tenant group declarations: one group
// per line, "name [topology [nphases]] [key=value...]", '#' comments.
// Options: "hosts=0,1|2,3" (hybrid rosters), "depth=K" (wave-pipelining
// window), "haltafter=N" (fault injection: force the group fail-safe
// after N local passes, for supervisor drills). The fault-injection
// flags apply to every group; seeds are decorrelated per group.
// haltAfter is aligned with the returned configs; 0 means never.
func parseGroupsFile(path string) (cfgs []groups.Config, haltAfter []int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	for lineNo, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		c := groups.Config{
			Name:        fields[0],
			Topology:    transport.GroupRing,
			NPhases:     *nPhasesFlag,
			Resend:      *resendFlag,
			LossRate:    *lossFlag,
			CorruptRate: *corruptFlag,
			Seed:        *seedFlag + int64(len(cfgs))<<8,
		}
		halt := 0
		positional := 0
		for _, f := range fields[1:] {
			if key, val, isOpt := strings.Cut(f, "="); isOpt {
				switch key {
				case "hosts":
					hosts, err := parseHosts(val)
					if err != nil {
						return nil, nil, fmt.Errorf("%s:%d: hosts: %w", path, lineNo+1, err)
					}
					c.Hosts = hosts
				case "depth":
					d, err := strconv.Atoi(val)
					if err != nil || d < 1 {
						return nil, nil, fmt.Errorf("%s:%d: depth %q: want an integer ≥ 1", path, lineNo+1, val)
					}
					c.Depth = d
				case "haltafter":
					h, err := strconv.Atoi(val)
					if err != nil || h < 1 {
						return nil, nil, fmt.Errorf("%s:%d: haltafter %q: want an integer ≥ 1", path, lineNo+1, val)
					}
					halt = h
				default:
					return nil, nil, fmt.Errorf("%s:%d: unknown option %q (want hosts=, depth= or haltafter=)", path, lineNo+1, key)
				}
				continue
			}
			switch positional {
			case 0:
				c.Topology = f
			case 1:
				n, err := strconv.Atoi(f)
				if err != nil || n < 2 {
					return nil, nil, fmt.Errorf("%s:%d: nphases %q: want an integer ≥ 2", path, lineNo+1, f)
				}
				c.NPhases = n
			default:
				return nil, nil, fmt.Errorf("%s:%d: too many fields (want: name [topology [nphases]] [key=value...])", path, lineNo+1)
			}
			positional++
		}
		cfgs = append(cfgs, c)
		haltAfter = append(haltAfter, halt)
	}
	if len(cfgs) == 0 {
		return nil, nil, fmt.Errorf("%s: no groups declared", path)
	}
	return cfgs, haltAfter, nil
}

// runGroups is the multi-tenant daemon: one member of every declared
// group, all sharing one connection per peer pair.
func runGroups(file string, peers []string, id int, reg *obsv.Registry) error {
	cfgs, haltAfter, err := parseGroupsFile(file)
	if err != nil {
		return err
	}
	r, err := groups.New(groups.Options{
		Self:    id,
		Peers:   peers,
		Rejoin:  *rejoinFlag,
		Metrics: reg,
	}, cfgs)
	if err != nil {
		return err
	}
	defer r.Close()

	var totalPasses atomic.Int64
	if *metricsFlag != "" {
		srv, err := serveMetrics(*metricsFlag, reg, func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			status, code := "ok", http.StatusOK
			for _, g := range r.Groups() {
				if b := g.Barrier(); b != nil && b.Halted() {
					status, code = "halted", http.StatusServiceUnavailable
					break
				}
			}
			w.WriteHeader(code)
			fmt.Fprintf(w, `{"status":%q,"member":%d,"groups":%d,"passes":%d}`+"\n",
				status, id, len(r.Groups()), totalPasses.Load())
		})
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigs
		cancel()
	}()

	// One await loop per locally-hosted member of every group (one for
	// ring/tree groups, the whole roster for hybrid). Every group must
	// bring every local member to the -passes quota; "ALL-GROUPS DONE n"
	// marks the rendezvous. Like the single-group daemon, the loops keep
	// participating after their quota until signalled — a member that
	// exits breaks its groups for the peers.
	var doneGroups atomic.Int64
	var loops int
	errs := make(chan error, 64)
	for i, g := range r.Groups() {
		g, nPhases, halt := g, cfgs[i].NPhases, haltAfter[i]
		members := g.Members()
		doneMembers := new(atomic.Int64)
		for _, m := range members {
			m := m
			loops++
			go func() {
				errs <- groupLoop(ctx, g, m, len(members) > 1, nPhases, halt, &totalPasses, func() {
					if int(doneMembers.Add(1)) != len(members) {
						return
					}
					fmt.Printf("[%s] DONE %d\n", g.Name(), *passesFlag)
					if int(doneGroups.Add(1)) == len(cfgs) {
						fmt.Printf("ALL-GROUPS DONE %d\n", len(cfgs))
					}
				})
			}()
		}
	}
	for i := 0; i < loops; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	fmt.Printf("EXIT member %d: %d passes across %d groups, clean\n", id, totalPasses.Load(), len(cfgs))
	return nil
}

// groupLoop is one group member's projection of the single-group daemon
// loop: Await, check the per-member phase cycle, print "[name] pass N
// phase P" lines (prefixed, so single-group log scrapers never confuse
// tenants; multi-member hybrid groups add the member id, "[name m3]"),
// report the quota and keep going until cancelled.
func groupLoop(ctx context.Context, g *groups.Group, member int, labelMember bool, nPhases, haltAfter int, total *atomic.Int64, onQuota func()) error {
	label := g.Name()
	if labelMember {
		label = fmt.Sprintf("%s m%d", g.Name(), member)
	}
	var (
		passes    int
		expected  = -1
		quotaSaid bool
	)
	for {
		ph, err := g.AwaitMember(ctx, member)
		switch {
		case err == nil:
			if expected != -1 && ph != expected {
				fmt.Printf("VIOLATION group %s member %d: pass %d phase %d, expected %d\n", g.Name(), member, passes, ph, expected)
				return fmt.Errorf("group %s: phase order violated: got %d, expected %d", g.Name(), ph, expected)
			}
			expected = (ph + 1) % nPhases
			passes++
			total.Add(1)
			if !*quietFlag {
				fmt.Printf("[%s] pass %d phase %d\n", label, passes, ph)
			}
			if *passesFlag > 0 && passes == *passesFlag && !quotaSaid {
				quotaSaid = true
				onQuota()
			}
			if haltAfter > 0 && passes == haltAfter {
				// Injected fail-safe (haltafter=N): exercise the halt
				// machinery end to end — the next Await returns ErrHalted
				// and this loop parks below.
				g.Barrier().Halt()
			}
			thinkPause(ctx)
		case errors.Is(err, runtime.ErrReset):
			// Redo the phase; the expectation survives.
		case errors.Is(err, context.Canceled):
			return nil
		case errors.Is(err, runtime.ErrHalted):
			// Fail-safe halt is a verdict on this group, not on the
			// daemon: park instead of exiting so the sibling groups keep
			// passing and the aggregate /healthz turns 503 while the
			// halted group is inspected.
			fmt.Printf("HALTED group %s member %d after %d passes\n", g.Name(), member, passes)
			<-ctx.Done()
			return nil
		default:
			return fmt.Errorf("group %s await: %w", g.Name(), err)
		}
	}
}

// serveMetrics binds addr and serves the observability endpoints:
//
//	/metrics — the registry in Prometheus text format
//	/healthz — the mode-specific health handler (200 while live, 503
//	           once fail-safe halted)
//
// The bound address is printed ("metrics listening on ADDR") so that a
// supervisor — or the e2e test — can probe readiness even with ":0".
func serveMetrics(addr string, reg *obsv.Registry, healthz http.HandlerFunc) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", healthz)
	if *pprofFlag {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Printf("metrics listening on %s\n", ln.Addr())
	return srv, nil
}
