// Command barrierd hosts one member of a distributed fault-tolerant
// barrier: each member runs as its own OS process, connected to its
// neighbors over TCP (internal/transport). Together the processes realize
// the same protocol instance the in-process runtime runs over channels.
//
// -topology selects the refinement: "ring" (default) is the MB token ring,
// "tree" the double-tree broadcast/convergecast over a binary heap of the
// member indices — O(log N) barrier latency instead of O(N), at the price
// of the root being a hub. Every member of one barrier must agree on the
// topology.
//
// A four-member loopback ring:
//
//	barrierd -id 0 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 &
//	barrierd -id 1 -peers ... &
//	barrierd -id 2 -peers ... &
//	barrierd -id 3 -peers ... &
//
// Each process loops Await, printing one "pass" line per completed
// barrier and checking its per-member projection of the specification:
// successive passes must cycle through the phases in order. (The full
// specification checker needs a totally ordered event stream, which does
// not exist across processes; the in-process conformance targets provide
// that stronger check.)
//
// After -passes successful passes the process prints "DONE n" but keeps
// participating — a barrier member that simply exits would break the ring
// for everyone else — until SIGTERM/SIGINT, which shuts it down cleanly.
// A member restarted into a live ring should be given -rejoin, which
// starts the protocol in the reset state (sn ⊥), so rejoining is masked
// exactly like a detectable fault (Section 7 of the paper).
//
// -metrics addr serves the live Section 6 measurements: /metrics exposes
// the barrier's and transport's series in the Prometheus text format
// (passes, re-executed instances per pass, pass latency, recovery time,
// reconnects, CRC drops), and /healthz answers 200 while the member is
// live — 503 after a fail-safe halt — so supervisors and tests can probe
// readiness instead of sleeping. -pprof adds /debug/pprof on the same
// address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obsv"
	"repro/internal/runtime"
	"repro/internal/topo"
	"repro/internal/transport"
)

var (
	idFlag       = flag.Int("id", -1, "this member's position (0-based)")
	peersFlag    = flag.String("peers", "", "comma-separated host:port of every member, in member order")
	topologyFlag = flag.String("topology", "ring", `barrier topology: "ring" or "tree" (binary heap by member index)`)
	passesFlag   = flag.Int("passes", 100, "print DONE after this many successful passes (0: unlimited)")
	nPhasesFlag  = flag.Int("nphases", 4, "phase-counter modulus")
	resendFlag   = flag.Duration("resend", 500*time.Microsecond, "state retransmission period")
	lossFlag     = flag.Float64("loss", 0, "per-message send-loss probability (fault injection)")
	corruptFlag  = flag.Float64("corrupt", 0, "per-message corruption probability (fault injection)")
	seedFlag     = flag.Int64("seed", 1, "random seed for fault injection draws")
	rejoinFlag   = flag.Bool("rejoin", false, "start in the reset protocol state (restarting into a live ring)")
	quietFlag    = flag.Bool("quiet", false, "suppress per-pass output")
	metricsFlag  = flag.String("metrics", "", `serve /metrics and /healthz on this address (e.g. ":9100"; empty: disabled)`)
	pprofFlag    = flag.Bool("pprof", false, "also serve /debug/pprof on the -metrics address")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "barrierd:", err)
		os.Exit(1)
	}
}

func run() error {
	peers := strings.Split(*peersFlag, ",")
	if len(peers) < 2 || (len(peers) == 1 && peers[0] == "") {
		return errors.New("-peers must list at least 2 members")
	}
	id := *idFlag
	if id < 0 || id >= len(peers) {
		return fmt.Errorf("-id %d out of range for %d peers", id, len(peers))
	}

	// One registry serves the barrier's and the transport's series; nil
	// (metrics disabled) makes every registration a no-op downstream.
	var reg *obsv.Registry
	if *metricsFlag != "" {
		reg = obsv.NewRegistry()
	}

	// The transport must realize the same topology the protocol runs: ring
	// links for MB, tree edges (matching the runtime's default binary-heap
	// shape) for the double-tree refinement.
	var (
		tr       runtime.Transport
		topology runtime.Topology
	)
	switch *topologyFlag {
	case "ring":
		topology = runtime.TopologyRing
		t, err := transport.NewTCP(transport.TCPConfig{Peers: peers, Registry: reg})
		if err != nil {
			return err
		}
		tr = t
	case "tree":
		topology = runtime.TopologyTree
		shape, err := topo.NewKAryTree(len(peers), 2)
		if err != nil {
			return err
		}
		t, err := transport.NewTCPTree(transport.TCPConfig{Peers: peers, Registry: reg}, shape.Parent)
		if err != nil {
			return err
		}
		tr = t
	default:
		return fmt.Errorf("-topology %q: want ring or tree", *topologyFlag)
	}
	defer tr.Close()
	b, err := runtime.New(runtime.Config{
		Participants: len(peers),
		NPhases:      *nPhasesFlag,
		Topology:     topology,
		Transport:    tr,
		Members:      []int{id},
		Rejoin:       *rejoinFlag,
		Resend:       *resendFlag,
		LossRate:     *lossFlag,
		CorruptRate:  *corruptFlag,
		Seed:         *seedFlag + int64(id), // decorrelate the members' fault draws
		Metrics:      reg,
	})
	if err != nil {
		return err
	}
	defer b.Stop()

	var passCounter atomic.Int64
	if *metricsFlag != "" {
		srv, err := serveMetrics(*metricsFlag, reg, b, id, &passCounter)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigs
		cancel()
	}()

	// Per-member spec projection: successive passes must cycle through the
	// phases in order. The first pass synchronizes the expectation (a
	// -rejoin member comes up mid-cycle).
	var (
		passes   int
		expected = -1
		doneSaid bool
	)
	for {
		ph, err := b.Await(ctx, id)
		switch {
		case err == nil:
			if expected != -1 && ph != expected {
				fmt.Printf("VIOLATION member %d: pass %d phase %d, expected %d\n", id, passes, ph, expected)
				return fmt.Errorf("phase order violated: got %d, expected %d", ph, expected)
			}
			expected = (ph + 1) % *nPhasesFlag
			passes++
			passCounter.Store(int64(passes))
			if !*quietFlag {
				fmt.Printf("pass %d phase %d\n", passes, ph)
			}
			if *passesFlag > 0 && passes == *passesFlag && !doneSaid {
				// Quota reached: announce it, then keep participating until
				// signalled — exiting here would break the ring for members
				// still short of their quota.
				fmt.Printf("DONE %d\n", passes)
				doneSaid = true
			}
		case errors.Is(err, runtime.ErrReset):
			// Detectable fault consumed the phase work: redo. The phase
			// expectation survives — a reset must not skip or repeat a
			// barrier this member already observed.
		case errors.Is(err, context.Canceled):
			fmt.Printf("EXIT member %d: %d passes, clean\n", id, passes)
			return nil
		default:
			return fmt.Errorf("await: %w", err)
		}
	}
}

// serveMetrics binds addr and serves the observability endpoints:
//
//	/metrics — the registry in Prometheus text format
//	/healthz — 200 with a small JSON body while the member is live,
//	           503 once the barrier is fail-safe halted
//
// The bound address is printed ("metrics listening on ADDR") so that a
// supervisor — or the e2e test — can probe readiness even with ":0".
func serveMetrics(addr string, reg *obsv.Registry, b *runtime.Barrier, id int, passes *atomic.Int64) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		status, code := "ok", http.StatusOK
		if b.Halted() {
			// Fail-safe halt: the member will never pass a barrier again;
			// report unhealthy so a supervisor can restart it with -rejoin.
			status, code = "halted", http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"status":%q,"member":%d,"topology":%q,"passes":%d}`+"\n",
			status, id, *topologyFlag, passes.Load())
	})
	if *pprofFlag {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Printf("metrics listening on %s\n", ln.Addr())
	return srv, nil
}
