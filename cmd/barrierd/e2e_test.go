// End-to-end test of the distributed deployment: a 4-process loopback TCP
// ring of barrierd instances must complete at least 100 barrier phases
// spec-clean — with 1% injected message corruption throughout, and with
// one member SIGKILLed and restarted (-rejoin) mid-run.
package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

const (
	ringSize       = 4
	survivorQuota  = 400 // passes each original member must complete (≥100)
	restartQuota   = 100 // fresh passes the restarted member must complete
	killAfterPass  = 50  // kill once member 0 has logged this many passes
	corruptionRate = "0.01"
)

type member struct {
	id      int
	cmd     *exec.Cmd
	logPath string
}

// start launches one barrierd member writing to its own log file. extra
// flags (e.g. -topology tree) are appended to the common argument set.
func start(t *testing.T, bin, peers string, id, quota int, dir string, rejoin bool, extra ...string) *member {
	t.Helper()
	logPath := filepath.Join(dir, fmt.Sprintf("member%d.run%d.log", id, time.Now().UnixNano()))
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-id", strconv.Itoa(id),
		"-peers", peers,
		"-passes", strconv.Itoa(quota),
		"-corrupt", corruptionRate,
		"-resend", "500us",
	}
	if rejoin {
		args = append(args, "-rejoin")
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	logFile.Close() // the child holds its own descriptor
	return &member{id: id, cmd: cmd, logPath: logPath}
}

var passLine = regexp.MustCompile(`(?m)^pass (\d+) `)

// passCount returns the highest pass number the member has logged.
func passCount(m *member) int {
	data, err := os.ReadFile(m.logPath)
	if err != nil {
		return 0
	}
	matches := passLine.FindAllStringSubmatch(string(data), -1)
	if len(matches) == 0 {
		return 0
	}
	n, _ := strconv.Atoi(matches[len(matches)-1][1])
	return n
}

func logged(m *member, marker string) bool {
	data, err := os.ReadFile(m.logPath)
	return err == nil && strings.Contains(string(data), marker)
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// buildBarrierd compiles the daemon once into dir and returns the binary
// path.
func buildBarrierd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "barrierd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building barrierd: %v\n%s", err, out)
	}
	return bin
}

// reservePeers reserves one loopback port per member by binding and
// releasing ephemeral listeners; barrierd then binds the same addresses
// itself.
func reservePeers(t *testing.T, n int) string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return strings.Join(addrs, ",")
}

func TestLoopbackRingKillRestart(t *testing.T) {
	dir := t.TempDir()
	bin := buildBarrierd(t, dir)
	peers := reservePeers(t, ringSize)

	members := make([]*member, ringSize)
	for id := 0; id < ringSize; id++ {
		members[id] = start(t, bin, peers, id, survivorQuota, dir, false)
	}
	t.Cleanup(func() {
		for _, m := range members {
			if m.cmd.ProcessState == nil {
				m.cmd.Process.Kill()
				m.cmd.Wait()
			}
		}
	})

	// Let the ring make real progress, then fail-stop member 2 mid-run.
	waitFor(t, "initial ring progress", time.Minute, func() bool {
		return passCount(members[0]) >= killAfterPass
	})
	victim := members[2]
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no goodbye
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Logf("killed member 2 at member-0 pass %d", passCount(members[0]))

	// A full barrier cannot complete without it; restart it into the live
	// ring in the reset state (Section 7: rejoin is masked like a
	// detectable fault).
	time.Sleep(50 * time.Millisecond)
	members[2] = start(t, bin, peers, 2, restartQuota, dir, true)

	// Every member — survivors and the rejoined process — must reach its
	// quota of spec-clean passes.
	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("member %d DONE", m.id), 2*time.Minute, func() bool {
			if logged(m, "VIOLATION") {
				data, _ := os.ReadFile(m.logPath)
				lines := strings.Split(strings.TrimSpace(string(data)), "\n")
				t.Fatalf("member %d spec violation: %s", m.id, lines[len(lines)-1])
			}
			return logged(m, "DONE ")
		})
	}

	// Graceful shutdown: SIGTERM each member; all must exit 0 with a clean
	// summary and no violations anywhere in their logs.
	for _, m := range members {
		if err := m.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Errorf("signalling member %d: %v", m.id, err)
		}
	}
	for _, m := range members {
		if err := m.cmd.Wait(); err != nil {
			data, _ := os.ReadFile(m.logPath)
			t.Errorf("member %d exited uncleanly: %v\n%s", m.id, err, tailLines(string(data), 5))
		}
		if logged(m, "VIOLATION") {
			t.Errorf("member %d logged a spec violation", m.id)
		}
		if !logged(m, "EXIT ") {
			t.Errorf("member %d exited without a clean summary", m.id)
		}
	}

	// The acceptance bar: ≥100 phases completed spec-clean around the kill.
	for _, m := range members[:2] {
		if got := passCount(m); got < 100 {
			t.Errorf("member %d completed %d passes, want ≥ 100", m.id, got)
		}
	}
	t.Logf("survivor passes: m0=%d m1=%d m3=%d; rejoined m2=%d",
		passCount(members[0]), passCount(members[1]), passCount(members[3]), passCount(members[2]))
}

// The tree-topology deployment: a 7-process loopback binary-heap tree must
// complete 100+ barrier phases spec-clean with 1% injected corruption,
// with one leaf SIGKILLed mid-run and restarted with -rejoin.
func TestLoopbackTreeKillRestart(t *testing.T) {
	const (
		treeSize   = 7
		treeVictim = 5 // a leaf of the 7-member binary heap (leaves: 3,4,5,6)
	)
	dir := t.TempDir()
	bin := buildBarrierd(t, dir)
	peers := reservePeers(t, treeSize)

	members := make([]*member, treeSize)
	for id := 0; id < treeSize; id++ {
		members[id] = start(t, bin, peers, id, survivorQuota, dir, false, "-topology", "tree")
	}
	t.Cleanup(func() {
		for _, m := range members {
			if m.cmd.ProcessState == nil {
				m.cmd.Process.Kill()
				m.cmd.Wait()
			}
		}
	})

	// Let the tree make real progress, then fail-stop a leaf mid-run.
	waitFor(t, "initial tree progress", time.Minute, func() bool {
		return passCount(members[0]) >= killAfterPass
	})
	victim := members[treeVictim]
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no goodbye
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Logf("killed member %d at root pass %d", treeVictim, passCount(members[0]))

	// The root's convergecast cannot complete without the leaf's subtree
	// acknowledgment; restart it into the live tree in the reset state.
	time.Sleep(50 * time.Millisecond)
	members[treeVictim] = start(t, bin, peers, treeVictim, restartQuota, dir, true, "-topology", "tree")

	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("member %d DONE", m.id), 2*time.Minute, func() bool {
			if logged(m, "VIOLATION") {
				data, _ := os.ReadFile(m.logPath)
				lines := strings.Split(strings.TrimSpace(string(data)), "\n")
				t.Fatalf("member %d spec violation: %s", m.id, lines[len(lines)-1])
			}
			return logged(m, "DONE ")
		})
	}

	// Graceful shutdown: SIGTERM each member; all must exit 0 with a clean
	// summary and no violations anywhere in their logs.
	for _, m := range members {
		if err := m.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Errorf("signalling member %d: %v", m.id, err)
		}
	}
	for _, m := range members {
		if err := m.cmd.Wait(); err != nil {
			data, _ := os.ReadFile(m.logPath)
			t.Errorf("member %d exited uncleanly: %v\n%s", m.id, err, tailLines(string(data), 5))
		}
		if logged(m, "VIOLATION") {
			t.Errorf("member %d logged a spec violation", m.id)
		}
		if !logged(m, "EXIT ") {
			t.Errorf("member %d exited without a clean summary", m.id)
		}
	}

	// The acceptance bar: ≥100 phases completed spec-clean around the kill.
	for _, m := range members {
		if m.id == treeVictim {
			continue
		}
		if got := passCount(m); got < 100 {
			t.Errorf("member %d completed %d passes, want ≥ 100", m.id, got)
		}
	}
	t.Logf("root passes: %d; rejoined leaf m%d passes: %d",
		passCount(members[0]), treeVictim, passCount(members[treeVictim]))
}

func tailLines(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}
