// End-to-end test of the distributed deployment: a 4-process loopback TCP
// ring of barrierd instances must complete at least 100 barrier phases
// spec-clean — with 1% injected message corruption throughout, and with
// one member SIGKILLed and restarted (-rejoin) mid-run.
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

const (
	ringSize       = 4
	survivorQuota  = 400 // passes each original member must complete (≥100)
	restartQuota   = 100 // fresh passes the restarted member must complete
	killAfterPass  = 50  // kill once member 0 has logged this many passes
	corruptionRate = "0.01"
)

type member struct {
	id      int
	cmd     *exec.Cmd
	logPath string
}

// start launches one barrierd member writing to its own log file. Every
// member serves /metrics and /healthz on an ephemeral loopback port (the
// tests probe readiness instead of sleeping). extra flags (e.g.
// -topology tree) are appended to the common argument set.
func start(t *testing.T, bin, peers string, id, quota int, dir string, rejoin bool, extra ...string) *member {
	t.Helper()
	logPath := filepath.Join(dir, fmt.Sprintf("member%d.run%d.log", id, time.Now().UnixNano()))
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-id", strconv.Itoa(id),
		"-peers", peers,
		"-passes", strconv.Itoa(quota),
		"-corrupt", corruptionRate,
		"-resend", "500us",
		"-metrics", "127.0.0.1:0",
	}
	if rejoin {
		args = append(args, "-rejoin")
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	logFile.Close() // the child holds its own descriptor
	return &member{id: id, cmd: cmd, logPath: logPath}
}

var passLine = regexp.MustCompile(`(?m)^pass (\d+) `)

// passCount returns the highest pass number the member has logged.
func passCount(m *member) int {
	data, err := os.ReadFile(m.logPath)
	if err != nil {
		return 0
	}
	matches := passLine.FindAllStringSubmatch(string(data), -1)
	if len(matches) == 0 {
		return 0
	}
	n, _ := strconv.Atoi(matches[len(matches)-1][1])
	return n
}

func logged(m *member, marker string) bool {
	data, err := os.ReadFile(m.logPath)
	return err == nil && strings.Contains(string(data), marker)
}

// waitFor polls cond until it holds or the deadline passes. An optional
// detail func contributes its last observed state to the timeout message,
// so a hung wait reports what it was looking at rather than just its
// name.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool, detail ...func() string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			msg := fmt.Sprintf("timed out waiting for %s", what)
			for _, d := range detail {
				msg += "\nlast state: " + d()
			}
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

var metricsAddrLine = regexp.MustCompile(`(?m)^metrics listening on (\S+)$`)

// metricsAddr returns the member's bound observability address, parsed
// from its "metrics listening on ADDR" log line ("" until it appears).
func metricsAddr(m *member) string {
	data, err := os.ReadFile(m.logPath)
	if err != nil {
		return ""
	}
	match := metricsAddrLine.FindStringSubmatch(string(data))
	if match == nil {
		return ""
	}
	return match[1]
}

var probeClient = &http.Client{Timeout: 500 * time.Millisecond}

// httpBody performs one GET and returns (body, status, ok).
func httpBody(url string) (string, int, bool) {
	resp, err := probeClient.Get(url)
	if err != nil {
		return "", 0, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", resp.StatusCode, false
	}
	return string(body), resp.StatusCode, true
}

// waitHealthy blocks until the member's /healthz answers 200 — the
// readiness probe that replaces sleep-based waits around startup and the
// SIGKILL/rejoin restart. On timeout it reports the last probe outcome
// and the tail of the member's log, the two things a hang diagnosis
// needs.
func waitHealthy(t *testing.T, m *member, timeout time.Duration) {
	t.Helper()
	var lastProbe string
	waitFor(t, fmt.Sprintf("member %d /healthz ready", m.id), timeout, func() bool {
		addr := metricsAddr(m)
		if addr == "" {
			lastProbe = "no metrics address logged yet"
			return false
		}
		body, code, ok := httpBody("http://" + addr + "/healthz")
		lastProbe = fmt.Sprintf("addr=%s ok=%v code=%d body=%q", addr, ok, code, body)
		return ok && code == http.StatusOK
	}, func() string {
		data, _ := os.ReadFile(m.logPath)
		return lastProbe + "\nlog tail:\n" + tailLines(string(data), 10)
	})
}

// scrapeBody fetches the member's /metrics page, retrying transient
// failures (a member mid-rejoin can refuse a connection) until the
// deadline. The error carries the last body and status observed, so a
// failing scrape surfaces what the member actually served.
func scrapeBody(m *member, timeout time.Duration) (string, error) {
	addr := metricsAddr(m)
	if addr == "" {
		return "", fmt.Errorf("member %d never logged its metrics address", m.id)
	}
	deadline := time.Now().Add(timeout)
	for {
		body, code, ok := httpBody("http://" + addr + "/metrics")
		if ok && code == http.StatusOK {
			return body, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("member %d /metrics scrape failed after %s (ok=%v code=%d)\nlast body:\n%s",
				m.id, timeout, ok, code, tailLines(body, 40))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// scrapeMetrics fetches the member's /metrics page and asserts the
// exported accounting reflects a barrier that really ran: passes were
// counted, and the transport moved frames over real dials.
func scrapeMetrics(t *testing.T, m *member) {
	t.Helper()
	body, err := scrapeBody(m, 5*time.Second)
	if err != nil {
		t.Error(err)
		return
	}
	sample := regexp.MustCompile(`(?m)^(\w+)(?:\{[^}]*\})? (\d+(?:\.\d+)?(?:e\+?\d+)?)$`)
	values := map[string]float64{}
	for _, match := range sample.FindAllStringSubmatch(body, -1) {
		v, err := strconv.ParseFloat(match[2], 64)
		if err != nil {
			continue
		}
		values[match[1]] += v // labeled series (e.g. frames by dir) sum per family
	}
	for _, name := range []string{"barrier_passes_total", "transport_frames_total"} {
		if values[name] <= 0 {
			t.Errorf("member %d: %s = %v, want > 0\nscrape:\n%s", m.id, name, values[name], tailLines(body, 40))
		}
	}
	// Every member either dials or accepts (the tree root only accepts:
	// children dial their parents).
	if values["transport_dials_total"]+values["transport_accepts_total"] <= 0 {
		t.Errorf("member %d: no dials and no accepts in scrape\n%s", m.id, tailLines(body, 40))
	}
	if _, present := values["barrier_recovery_seconds_count"]; !present {
		t.Errorf("member %d: barrier_recovery_seconds_count missing from scrape", m.id)
	}
}

// buildBarrierd compiles the daemon once into dir and returns the binary
// path.
func buildBarrierd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "barrierd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building barrierd: %v\n%s", err, out)
	}
	return bin
}

// reservePeers reserves one loopback port per member by binding and
// releasing ephemeral listeners; barrierd then binds the same addresses
// itself.
func reservePeers(t *testing.T, n int) string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return strings.Join(addrs, ",")
}

func TestLoopbackRingKillRestart(t *testing.T) {
	dir := t.TempDir()
	bin := buildBarrierd(t, dir)
	peers := reservePeers(t, ringSize)

	members := make([]*member, ringSize)
	for id := 0; id < ringSize; id++ {
		members[id] = start(t, bin, peers, id, survivorQuota, dir, false)
	}
	t.Cleanup(func() {
		for _, m := range members {
			if m.cmd.ProcessState == nil {
				m.cmd.Process.Kill()
				m.cmd.Wait()
			}
		}
	})

	// All members up and serving before the clock starts: readiness comes
	// from /healthz, not from guessing startup latency.
	for _, m := range members {
		waitHealthy(t, m, time.Minute)
	}

	// Let the ring make real progress, then fail-stop member 2 mid-run.
	waitFor(t, "initial ring progress", time.Minute, func() bool {
		return passCount(members[0]) >= killAfterPass
	})
	victim := members[2]
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no goodbye
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Logf("killed member 2 at member-0 pass %d", passCount(members[0]))

	// A full barrier cannot complete without it; restart it into the live
	// ring in the reset state (Section 7: rejoin is masked like a
	// detectable fault). /healthz confirms the restarted process is up
	// and un-halted before the test waits on its quota.
	members[2] = start(t, bin, peers, 2, restartQuota, dir, true)
	waitHealthy(t, members[2], time.Minute)

	// Every member — survivors and the rejoined process — must reach its
	// quota of spec-clean passes.
	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("member %d DONE", m.id), 2*time.Minute, func() bool {
			if logged(m, "VIOLATION") {
				data, _ := os.ReadFile(m.logPath)
				lines := strings.Split(strings.TrimSpace(string(data)), "\n")
				t.Fatalf("member %d spec violation: %s", m.id, lines[len(lines)-1])
			}
			return logged(m, "DONE ")
		})
	}

	// With every quota met and the ring still live, the exported metrics
	// must show the run: passes counted, transport frames moved.
	for _, m := range members {
		scrapeMetrics(t, m)
	}

	// Graceful shutdown: SIGTERM each member; all must exit 0 with a clean
	// summary and no violations anywhere in their logs.
	for _, m := range members {
		if err := m.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Errorf("signalling member %d: %v", m.id, err)
		}
	}
	for _, m := range members {
		if err := m.cmd.Wait(); err != nil {
			data, _ := os.ReadFile(m.logPath)
			t.Errorf("member %d exited uncleanly: %v\n%s", m.id, err, tailLines(string(data), 5))
		}
		if logged(m, "VIOLATION") {
			t.Errorf("member %d logged a spec violation", m.id)
		}
		if !logged(m, "EXIT ") {
			t.Errorf("member %d exited without a clean summary", m.id)
		}
	}

	// The acceptance bar: ≥100 phases completed spec-clean around the kill.
	for _, m := range members[:2] {
		if got := passCount(m); got < 100 {
			t.Errorf("member %d completed %d passes, want ≥ 100", m.id, got)
		}
	}
	t.Logf("survivor passes: m0=%d m1=%d m3=%d; rejoined m2=%d",
		passCount(members[0]), passCount(members[1]), passCount(members[3]), passCount(members[2]))
}

// The tree-topology deployment: a 7-process loopback binary-heap tree must
// complete 100+ barrier phases spec-clean with 1% injected corruption,
// with one leaf SIGKILLed mid-run and restarted with -rejoin.
func TestLoopbackTreeKillRestart(t *testing.T) {
	const (
		treeSize   = 7
		treeVictim = 5 // a leaf of the 7-member binary heap (leaves: 3,4,5,6)
	)
	dir := t.TempDir()
	bin := buildBarrierd(t, dir)
	peers := reservePeers(t, treeSize)

	members := make([]*member, treeSize)
	for id := 0; id < treeSize; id++ {
		members[id] = start(t, bin, peers, id, survivorQuota, dir, false, "-topology", "tree")
	}
	t.Cleanup(func() {
		for _, m := range members {
			if m.cmd.ProcessState == nil {
				m.cmd.Process.Kill()
				m.cmd.Wait()
			}
		}
	})

	// All members up and serving before the clock starts: readiness comes
	// from /healthz, not from guessing startup latency.
	for _, m := range members {
		waitHealthy(t, m, time.Minute)
	}

	// Let the tree make real progress, then fail-stop a leaf mid-run.
	waitFor(t, "initial tree progress", time.Minute, func() bool {
		return passCount(members[0]) >= killAfterPass
	})
	victim := members[treeVictim]
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no goodbye
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Logf("killed member %d at root pass %d", treeVictim, passCount(members[0]))

	// The root's convergecast cannot complete without the leaf's subtree
	// acknowledgment; restart it into the live tree in the reset state,
	// probing /healthz for the restarted process's readiness.
	members[treeVictim] = start(t, bin, peers, treeVictim, restartQuota, dir, true, "-topology", "tree")
	waitHealthy(t, members[treeVictim], time.Minute)

	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("member %d DONE", m.id), 2*time.Minute, func() bool {
			if logged(m, "VIOLATION") {
				data, _ := os.ReadFile(m.logPath)
				lines := strings.Split(strings.TrimSpace(string(data)), "\n")
				t.Fatalf("member %d spec violation: %s", m.id, lines[len(lines)-1])
			}
			return logged(m, "DONE ")
		})
	}

	// The tree transport's metrics must show the run too — on the root
	// (the broadcast/convergecast hub) and the rejoined leaf alike.
	scrapeMetrics(t, members[0])
	scrapeMetrics(t, members[treeVictim])

	// Graceful shutdown: SIGTERM each member; all must exit 0 with a clean
	// summary and no violations anywhere in their logs.
	for _, m := range members {
		if err := m.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Errorf("signalling member %d: %v", m.id, err)
		}
	}
	for _, m := range members {
		if err := m.cmd.Wait(); err != nil {
			data, _ := os.ReadFile(m.logPath)
			t.Errorf("member %d exited uncleanly: %v\n%s", m.id, err, tailLines(string(data), 5))
		}
		if logged(m, "VIOLATION") {
			t.Errorf("member %d logged a spec violation", m.id)
		}
		if !logged(m, "EXIT ") {
			t.Errorf("member %d exited without a clean summary", m.id)
		}
	}

	// The acceptance bar: ≥100 phases completed spec-clean around the kill.
	for _, m := range members {
		if m.id == treeVictim {
			continue
		}
		if got := passCount(m); got < 100 {
			t.Errorf("member %d completed %d passes, want ≥ 100", m.id, got)
		}
	}
	t.Logf("root passes: %d; rejoined leaf m%d passes: %d",
		passCount(members[0]), treeVictim, passCount(members[treeVictim]))
}

func tailLines(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}

// Multi-tenant deployment: 4 processes host 64 barrier groups (rings and
// trees) over one shared TCP connection per process pair, with 1%
// injected corruption throughout. One process is SIGKILLed mid-run and
// restarted with -rejoin; every group in every process must still reach
// its quota, and /metrics must carry per-group labelled series.
func TestLoopbackMultiGroupKillRestart(t *testing.T) {
	const (
		procs      = 4
		nGroups    = 64
		groupQuota = 25
		killAfter  = 8 // kill once member 0's g00 logged this many passes
	)
	dir := t.TempDir()
	bin := buildBarrierd(t, dir)
	peers := reservePeers(t, procs)

	// The tenant roster: mostly rings, a handful of trees, exercising the
	// comment/default syntax of the config file.
	var sb strings.Builder
	sb.WriteString("# barrierd multi-tenant e2e roster\n\n")
	for i := 0; i < nGroups; i++ {
		switch {
		case i%16 == 15:
			fmt.Fprintf(&sb, "t%02d tree 4\n", i)
		case i%2 == 0:
			fmt.Fprintf(&sb, "g%02d ring 4\n", i)
		default:
			fmt.Fprintf(&sb, "g%02d # ring, -nphases\n", i)
		}
	}
	groupsFile := filepath.Join(dir, "groups.conf")
	if err := os.WriteFile(groupsFile, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	extra := []string{"-groups", groupsFile, "-resend", "1ms"}

	members := make([]*member, procs)
	for id := 0; id < procs; id++ {
		members[id] = start(t, bin, peers, id, groupQuota, dir, false, extra...)
	}
	t.Cleanup(func() {
		for _, m := range members {
			if m.cmd.ProcessState == nil {
				m.cmd.Process.Kill()
				m.cmd.Wait()
			}
		}
	})
	for _, m := range members {
		waitHealthy(t, m, time.Minute)
	}

	// Real progress on a ring group and a tree group, then fail-stop one
	// process — taking its member of all 64 groups down at once.
	g00Line := regexp.MustCompile(`(?m)^\[g00\] pass (\d+) `)
	waitFor(t, "initial multi-group progress", time.Minute, func() bool {
		data, err := os.ReadFile(members[0].logPath)
		if err != nil {
			return false
		}
		matches := g00Line.FindAllStringSubmatch(string(data), -1)
		if len(matches) == 0 {
			return false
		}
		n, _ := strconv.Atoi(matches[len(matches)-1][1])
		return n >= killAfter && strings.Contains(string(data), "[t15] pass ")
	})
	victim := members[2]
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no goodbye
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Log("killed member 2")

	// No group can pass without it; the restarted process rejoins every
	// group in the reset state over fresh shared connections.
	members[2] = start(t, bin, peers, 2, groupQuota, dir, true, extra...)
	waitHealthy(t, members[2], time.Minute)

	// Every process must bring every one of its 64 groups to quota.
	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("member %d ALL-GROUPS DONE", m.id), 3*time.Minute, func() bool {
			if logged(m, "VIOLATION") {
				data, _ := os.ReadFile(m.logPath)
				lines := strings.Split(strings.TrimSpace(string(data)), "\n")
				t.Fatalf("member %d spec violation: %s", m.id, lines[len(lines)-1])
			}
			return logged(m, fmt.Sprintf("ALL-GROUPS DONE %d", nGroups))
		})
	}

	// The scrape must carry per-group labelled series — the tenant view of
	// the paper's Section 6 counters — plus the shared transport's.
	for _, m := range []*member{members[0], members[2]} {
		body, err := scrapeBody(m, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, series := range []string{
			`barrier_passes_total{group="g00"}`,
			`barrier_passes_total{group="g62"}`,
			`barrier_passes_total{group="t63"}`,
			`barrier_passes_total{group="t15"}`,
			`barrier_topology{topology="tree",group="t15"}`,
			`transport_group_frames_total{group="g00",dir="sent"}`,
			"transport_frames_total",
		} {
			if !strings.Contains(body, series) {
				t.Errorf("member %d scrape missing %s\n%s", m.id, series, tailLines(body, 30))
			}
		}
		passSeries := regexp.MustCompile(`(?m)^barrier_passes_total\{group="(g00|t15)"\} (\d+)$`)
		for _, match := range passSeries.FindAllStringSubmatch(body, -1) {
			if n, _ := strconv.Atoi(match[2]); n < groupQuota {
				t.Errorf("member %d: %s passes = %d, want ≥ %d", m.id, match[1], n, groupQuota)
			}
		}
	}

	// Graceful shutdown, spec-clean everywhere.
	for _, m := range members {
		if err := m.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Errorf("signalling member %d: %v", m.id, err)
		}
	}
	for _, m := range members {
		if err := m.cmd.Wait(); err != nil {
			data, _ := os.ReadFile(m.logPath)
			t.Errorf("member %d exited uncleanly: %v\n%s", m.id, err, tailLines(string(data), 5))
		}
		if logged(m, "VIOLATION") {
			t.Errorf("member %d logged a spec violation", m.id)
		}
		if !logged(m, "EXIT ") {
			t.Errorf("member %d exited without a clean summary", m.id)
		}
	}
}

// The hybrid deployment: 2 processes each fuse a 2-member host roster
// onto one local scheduler and bridge the hosts over a single TCP tree
// edge. All 4 members must complete their quota spec-clean with 1%
// injected corruption, with one whole host SIGKILLed mid-run and
// restarted with -rejoin (taking both of its fused members down and back
// at once).
func TestLoopbackHybridKillRestart(t *testing.T) {
	const hybridHosts = 2
	dir := t.TempDir()
	bin := buildBarrierd(t, dir)
	peers := reservePeers(t, hybridHosts)
	extra := []string{"-topology", "hybrid", "-hosts", "0,1|2,3"}

	members := make([]*member, hybridHosts)
	for id := 0; id < hybridHosts; id++ {
		members[id] = start(t, bin, peers, id, survivorQuota, dir, false, extra...)
	}
	t.Cleanup(func() {
		for _, m := range members {
			if m.cmd.ProcessState == nil {
				m.cmd.Process.Kill()
				m.cmd.Wait()
			}
		}
	})
	for _, m := range members {
		waitHealthy(t, m, time.Minute)
	}

	// Real progress on a fused member of the root host, then fail-stop the
	// other host — losing both of its members at once.
	m0Line := regexp.MustCompile(`(?m)^\[m0\] pass (\d+) `)
	waitFor(t, "initial hybrid progress", time.Minute, func() bool {
		data, err := os.ReadFile(members[0].logPath)
		if err != nil {
			return false
		}
		matches := m0Line.FindAllStringSubmatch(string(data), -1)
		if len(matches) == 0 {
			return false
		}
		n, _ := strconv.Atoi(matches[len(matches)-1][1])
		return n >= killAfterPass
	})
	victim := members[1]
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no goodbye
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Log("killed host 1 (members 2,3)")

	// No barrier can complete without the host's subtree contribution;
	// restart it into the live tree in the reset state.
	members[1] = start(t, bin, peers, 1, restartQuota, dir, true, extra...)
	waitHealthy(t, members[1], time.Minute)

	// Both hosts must bring both of their fused members to quota.
	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("host %d DONE", m.id), 2*time.Minute, func() bool {
			if logged(m, "VIOLATION") {
				data, _ := os.ReadFile(m.logPath)
				lines := strings.Split(strings.TrimSpace(string(data)), "\n")
				t.Fatalf("host %d spec violation: %s", m.id, lines[len(lines)-1])
			}
			return logged(m, "DONE ")
		})
	}
	for _, m := range members {
		scrapeMetrics(t, m)
	}

	// Graceful shutdown, spec-clean everywhere, every member loop counted.
	for _, m := range members {
		if err := m.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Errorf("signalling host %d: %v", m.id, err)
		}
	}
	for _, m := range members {
		if err := m.cmd.Wait(); err != nil {
			data, _ := os.ReadFile(m.logPath)
			t.Errorf("host %d exited uncleanly: %v\n%s", m.id, err, tailLines(string(data), 5))
		}
		if logged(m, "VIOLATION") {
			t.Errorf("host %d logged a spec violation", m.id)
		}
		if !logged(m, "EXIT ") {
			t.Errorf("host %d exited without a clean summary", m.id)
		}
	}
	// Both fused members of the surviving root host logged passes of their
	// own — the per-member labels keep the interleaved log attributable.
	for _, label := range []string{"[m0] pass ", "[m1] pass "} {
		if !logged(members[0], label) {
			t.Errorf("host 0 log missing %q lines", label)
		}
	}
}

// Multi-tenant hybrid + pipelined groups: 2 processes host a hybrid
// group (fused 2-member rosters per host), a depth-4 pipelined ring and
// a plain ring over one shared connection, exercising the hosts=/depth=
// groups-file options end to end with 1% injected corruption.
func TestLoopbackGroupsHybridDepth(t *testing.T) {
	const (
		procs      = 2
		groupQuota = 50
	)
	dir := t.TempDir()
	bin := buildBarrierd(t, dir)
	peers := reservePeers(t, procs)

	roster := "# hybrid + pipelined tenants\n" +
		"hy hybrid 3 hosts=0,1|2,3\n" +
		"deep ring 4 depth=4\n" +
		"plain\n"
	groupsFile := filepath.Join(dir, "groups.conf")
	if err := os.WriteFile(groupsFile, []byte(roster), 0o644); err != nil {
		t.Fatal(err)
	}
	extra := []string{"-groups", groupsFile, "-resend", "1ms"}

	members := make([]*member, procs)
	for id := 0; id < procs; id++ {
		members[id] = start(t, bin, peers, id, groupQuota, dir, false, extra...)
	}
	t.Cleanup(func() {
		for _, m := range members {
			if m.cmd.ProcessState == nil {
				m.cmd.Process.Kill()
				m.cmd.Wait()
			}
		}
	})
	for _, m := range members {
		waitHealthy(t, m, time.Minute)
	}

	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("member %d ALL-GROUPS DONE", m.id), 2*time.Minute, func() bool {
			if logged(m, "VIOLATION") {
				data, _ := os.ReadFile(m.logPath)
				lines := strings.Split(strings.TrimSpace(string(data)), "\n")
				t.Fatalf("member %d spec violation: %s", m.id, lines[len(lines)-1])
			}
			return logged(m, "ALL-GROUPS DONE 3")
		})
	}

	// The hybrid group's log lines carry per-member labels; the scrape
	// carries the hybrid topology gauge and per-group counters.
	for id, want := range [][]string{{"[hy m0] pass ", "[hy m1] pass "}, {"[hy m2] pass ", "[hy m3] pass "}} {
		for _, label := range want {
			if !logged(members[id], label) {
				t.Errorf("member %d log missing %q lines", id, label)
			}
		}
	}
	for _, m := range members {
		body, err := scrapeBody(m, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, series := range []string{
			`barrier_topology{topology="hybrid",group="hy"}`,
			`barrier_passes_total{group="hy"}`,
			`barrier_passes_total{group="deep"}`,
			`barrier_passes_total{group="plain"}`,
		} {
			if !strings.Contains(body, series) {
				t.Errorf("member %d scrape missing %s\n%s", m.id, series, tailLines(body, 30))
			}
		}
	}

	// Graceful shutdown, spec-clean everywhere.
	for _, m := range members {
		if err := m.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Errorf("signalling member %d: %v", m.id, err)
		}
	}
	for _, m := range members {
		if err := m.cmd.Wait(); err != nil {
			data, _ := os.ReadFile(m.logPath)
			t.Errorf("member %d exited uncleanly: %v\n%s", m.id, err, tailLines(string(data), 5))
		}
		if logged(m, "VIOLATION") {
			t.Errorf("member %d logged a spec violation", m.id)
		}
	}
}

// A fail-safe halt of one tenant group must flip the aggregate /healthz
// to 503 while the process stays up and its other groups keep passing.
// The haltafter= roster option injects the halt deterministically; the
// daemon used to exit on the first ErrHalted, so the aggregate probe
// could only ever observe whole-process death, never a single halted
// group.
func TestLoopbackGroupHaltHealthz(t *testing.T) {
	const (
		procs      = 2
		groupQuota = 40
		haltAfter  = 5
	)
	dir := t.TempDir()
	bin := buildBarrierd(t, dir)
	peers := reservePeers(t, procs)

	// Only process 0 injects the halt: a halted member goes silent, so its
	// peer's copy of the group stalls in reset-redo and would never reach
	// its own haltafter count. haltafter= is daemon-local (not part of
	// the group fingerprint), so the rosters still match on the wire.
	members := make([]*member, procs)
	for id := 0; id < procs; id++ {
		roster := "live ring 3\ndoomed ring 3"
		if id == 0 {
			roster += fmt.Sprintf(" haltafter=%d", haltAfter)
		}
		roster += "\n"
		groupsFile := filepath.Join(dir, fmt.Sprintf("groups.%d.conf", id))
		if err := os.WriteFile(groupsFile, []byte(roster), 0o644); err != nil {
			t.Fatal(err)
		}
		extra := []string{"-groups", groupsFile, "-resend", "1ms"}
		members[id] = start(t, bin, peers, id, groupQuota, dir, false, extra...)
	}
	t.Cleanup(func() {
		for _, m := range members {
			if m.cmd.ProcessState == nil {
				m.cmd.Process.Kill()
				m.cmd.Wait()
			}
		}
	})
	for _, m := range members {
		waitHealthy(t, m, time.Minute)
	}

	// The doomed group halts itself on process 0 after a few passes; the
	// process must park that group's loop, log the halt, and turn its
	// aggregate /healthz unhealthy — without exiting.
	var lastProbe string
	waitFor(t, "member 0 /healthz 503 after group halt", time.Minute, func() bool {
		body, code, ok := httpBody("http://" + metricsAddr(members[0]) + "/healthz")
		lastProbe = fmt.Sprintf("ok=%v code=%d body=%q", ok, code, body)
		return ok && code == http.StatusServiceUnavailable && strings.Contains(body, `"status":"halted"`)
	}, func() string { return lastProbe })
	if !logged(members[0], "HALTED group doomed") {
		t.Error("member 0 log missing the HALTED line")
	}
	// Process 1 hosts no halted member — only a stalled peer — so its own
	// aggregate probe must stay healthy.
	if body, code, ok := httpBody("http://" + metricsAddr(members[1]) + "/healthz"); !ok || code != http.StatusOK {
		t.Errorf("member 1 /healthz = code %d body %q (ok=%v), want 200", code, body, ok)
	}

	// The sibling group is untouched by the halt: it must still reach its
	// quota on every process.
	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("member %d live-group quota", m.id), 2*time.Minute, func() bool {
			if logged(m, "VIOLATION") {
				data, _ := os.ReadFile(m.logPath)
				lines := strings.Split(strings.TrimSpace(string(data)), "\n")
				t.Fatalf("member %d spec violation: %s", m.id, lines[len(lines)-1])
			}
			return logged(m, fmt.Sprintf("[live] DONE %d", groupQuota))
		})
	}

	// Graceful shutdown: the parked loop must not wedge SIGTERM handling.
	for _, m := range members {
		if err := m.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Errorf("signalling member %d: %v", m.id, err)
		}
	}
	for _, m := range members {
		if err := m.cmd.Wait(); err != nil {
			data, _ := os.ReadFile(m.logPath)
			t.Errorf("member %d exited uncleanly: %v\n%s", m.id, err, tailLines(string(data), 5))
		}
	}
}

// Startup validation: bad membership or group rosters must be rejected
// with a clear error before any socket work.
func TestStartupValidation(t *testing.T) {
	dir := t.TempDir()
	bin := buildBarrierd(t, dir)

	badRoster := filepath.Join(dir, "bad.conf")
	if err := os.WriteFile(badRoster, []byte("a ring 4\na ring 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badPhases := filepath.Join(dir, "phases.conf")
	if err := os.WriteFile(badPhases, []byte("a ring one\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badDepth := filepath.Join(dir, "depth.conf")
	if err := os.WriteFile(badDepth, []byte("a ring depth=0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badHosts := filepath.Join(dir, "hosts.conf")
	if err := os.WriteFile(badHosts, []byte("a hybrid hosts=0,x|1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ringHosts := filepath.Join(dir, "ringhosts.conf")
	if err := os.WriteFile(ringHosts, []byte("a ring hosts=0|1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"duplicate peers", []string{"-id", "0", "-peers", "127.0.0.1:7001,127.0.0.1:7001"}, "duplicates"},
		{"empty peer", []string{"-id", "0", "-peers", "127.0.0.1:7001,,127.0.0.1:7002"}, "empty"},
		{"id out of range", []string{"-id", "2", "-peers", "127.0.0.1:7001,127.0.0.1:7002"}, "out of range"},
		{"negative id", []string{"-id", "-1", "-peers", "127.0.0.1:7001,127.0.0.1:7002"}, "out of range"},
		{"too few peers", []string{"-id", "0", "-peers", "127.0.0.1:7001"}, "at least 2"},
		{"duplicate group", []string{"-id", "0", "-peers", "127.0.0.1:7001,127.0.0.1:7002", "-groups", badRoster}, "duplicate group"},
		{"bad nphases", []string{"-id", "0", "-peers", "127.0.0.1:7001,127.0.0.1:7002", "-groups", badPhases}, "nphases"},
		{"missing groups file", []string{"-id", "0", "-peers", "127.0.0.1:7001,127.0.0.1:7002", "-groups", filepath.Join(dir, "nope.conf")}, "no such file"},
		{"bad group depth", []string{"-id", "0", "-peers", "127.0.0.1:7001,127.0.0.1:7002", "-groups", badDepth}, "depth"},
		{"bad group hosts", []string{"-id", "0", "-peers", "127.0.0.1:7001,127.0.0.1:7002", "-groups", badHosts}, "hosts"},
		{"hosts on ring group", []string{"-id", "0", "-peers", "127.0.0.1:7001,127.0.0.1:7002", "-groups", ringHosts}, "only for hybrid"},
		{"hybrid without hosts", []string{"-id", "0", "-peers", "127.0.0.1:7001,127.0.0.1:7002", "-topology", "hybrid"}, "host grouping"},
		{"hosts without hybrid", []string{"-id", "0", "-peers", "127.0.0.1:7001,127.0.0.1:7002", "-hosts", "0|1"}, "hybrid"},
		{"hosts/peers mismatch", []string{"-id", "0", "-peers", "127.0.0.1:7001,127.0.0.1:7002", "-topology", "hybrid", "-hosts", "0|1|2"}, "host"},
		{"bad hosts member", []string{"-id", "0", "-peers", "127.0.0.1:7001,127.0.0.1:7002", "-topology", "hybrid", "-hosts", "0,x|1"}, "member"},
	}
	for _, tc := range cases {
		out, err := exec.Command(bin, tc.args...).CombinedOutput()
		if err == nil {
			t.Errorf("%s: barrierd accepted the configuration\n%s", tc.name, out)
			continue
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, out, tc.want)
		}
	}
}
