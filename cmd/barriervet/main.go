// Command barriervet runs the repo's invariant analyzers (package
// repro/internal/analyzers) over Go package patterns, go vet style:
//
//	go run ./cmd/barriervet ./...
//	go run ./cmd/barriervet -run 'atomicmix|lockorder' ./internal/runtime
//	go run ./cmd/barriervet -list
//
// It exits 1 if any diagnostic survives the //barriervet:ignore
// directives, and prints the suppression count to stderr so silenced
// findings stay visible in CI logs.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/analyzers"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "only run analyzers whose name matches this regexp")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: barriervet [-list] [-run regexp] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analyzers.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "barriervet: bad -run regexp: %v\n", err)
			os.Exit(2)
		}
		selected = nil
		for _, a := range all {
			if re.MatchString(a.Name) {
				selected = append(selected, a)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "barriervet: -run %q matches no analyzers\n", *run)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "barriervet: %v\n", err)
		os.Exit(2)
	}
	load, err := analyzers.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "barriervet: %v\n", err)
		os.Exit(2)
	}
	res, err := analyzers.RunAnalyzers(load, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "barriervet: %v\n", err)
		os.Exit(2)
	}
	if res.Suppressed > 0 {
		fmt.Fprintf(os.Stderr, "barriervet: %d finding(s) suppressed by //barriervet:ignore\n", res.Suppressed)
	}
	for _, d := range res.Diagnostics {
		fmt.Println(d.String())
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}
