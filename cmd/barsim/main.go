// Command barsim runs any of the paper's barrier-synchronization programs
// (CB, RB, TB-on-a-tree, MB) under a chosen scheduler, with optional fault
// injection, printing the event trace and checking the barrier
// specification throughout.
//
// Examples:
//
//	barsim -program rb -procs 6 -barriers 5 -trace
//	barsim -program cb -procs 4 -fault-rate 0.02 -barriers 20
//	barsim -program tree -procs 32 -scheduler maxparallel -barriers 10
//	barsim -program mb -procs 5 -scramble -barriers 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cb"
	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/faults"
	"repro/internal/guarded"
	"repro/internal/mb"
	"repro/internal/rb"
	"repro/internal/rbtree"
	"repro/internal/topo"
	"repro/internal/trace"
)

var (
	programFlag   = flag.String("program", "rb", "program to run: cb, rb, tree, dtree, mb")
	procsFlag     = flag.Int("procs", 6, "number of processes")
	nPhasesFlag   = flag.Int("nphases", 4, "phase-counter modulus")
	arityFlag     = flag.Int("arity", 2, "tree arity (tree program only)")
	schedulerFlag = flag.String("scheduler", "roundrobin", "scheduler: roundrobin, random, maxparallel")
	barriersFlag  = flag.Int("barriers", 10, "stop after this many successful barriers")
	maxStepsFlag  = flag.Int("maxsteps", 10_000_000, "step budget")
	faultRateFlag = flag.Float64("fault-rate", 0, "per-step probability of a detectable fault")
	scrambleFlag  = flag.Bool("scramble", false, "perturb every process to an arbitrary state first")
	seedFlag      = flag.Int64("seed", 1, "random seed")
	traceFlag     = flag.Bool("trace", false, "print every begin/complete/reset event")
	timelineFlag  = flag.Bool("timeline", false, "render a per-process event timeline at the end")
)

// program is the common surface of the four protocol engines.
type program interface {
	Guarded() *guarded.Program
	N() int
	InjectDetectable(j int)
	InjectUndetectable(j int)
	Corrupted(j int) bool
	InStartState() bool
	String() string
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "barsim:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(*seedFlag))
	checker := core.NewSpecChecker(*procsFlag, *nPhasesFlag)
	recorder := trace.NewRecorder(*procsFlag, 100000)
	events := 0
	sink := func(e core.Event) {
		events++
		recorder.Observe(e)
		if *traceFlag {
			fmt.Printf("  %v\n", e)
		}
		if checker != nil {
			checker.Observe(e)
		}
	}

	var prog program
	var err error
	switch *programFlag {
	case "cb":
		prog, err = cb.New(*procsFlag, *nPhasesFlag, rng, sink)
	case "rb":
		prog, err = rb.New(*procsFlag, *nPhasesFlag, *procsFlag+1, rng, sink)
	case "tree":
		var tr *topo.Tree
		tr, err = topo.NewKAryTree(*procsFlag, *arityFlag)
		if err == nil {
			prog, err = rbtree.New(tr.Parent, *nPhasesFlag, *procsFlag+1, rng, sink)
		}
	case "dtree":
		var tr *topo.Tree
		tr, err = topo.NewKAryTree(*procsFlag, *arityFlag)
		if err == nil {
			prog, err = dtree.New(tr.Parent, *nPhasesFlag, *procsFlag+1, rng, sink)
		}
	case "mb":
		prog, err = mb.New(*procsFlag, *nPhasesFlag, 2**procsFlag+2, rng, sink)
	default:
		return fmt.Errorf("unknown program %q (want cb, rb, tree, dtree or mb)", *programFlag)
	}
	if err != nil {
		return err
	}

	var step func() bool
	switch *schedulerFlag {
	case "roundrobin":
		step = func() bool { _, ok := prog.Guarded().StepRoundRobin(); return ok }
	case "random":
		step = func() bool { _, ok := prog.Guarded().StepRandom(rng); return ok }
	case "maxparallel":
		step = func() bool { return prog.Guarded().StepMaxParallel(rng) > 0 }
	default:
		return fmt.Errorf("unknown scheduler %q", *schedulerFlag)
	}

	fmt.Printf("program=%s procs=%d scheduler=%s fault-rate=%g\n",
		*programFlag, *procsFlag, *schedulerFlag, *faultRateFlag)

	if *scrambleFlag {
		// An undetectable perturbation voids the specification until the
		// program stabilizes; silence the checker, run to a start state,
		// then re-attach a fresh checker and count barriers from there.
		checker = nil
		for j := 0; j < prog.N(); j++ {
			prog.InjectUndetectable(j)
		}
		fmt.Printf("scrambled state: %v\n", prog)
		recoverySteps := 0
		for !prog.InStartState() {
			if recoverySteps >= *maxStepsFlag {
				return fmt.Errorf("no stabilization within %d steps: %v", recoverySteps, prog)
			}
			if !step() {
				return fmt.Errorf("deadlock during recovery in state %v", prog)
			}
			recoverySteps++
		}
		fmt.Printf("stabilized after %d steps: %v\n", recoverySteps, prog)
		checker = core.NewSpecCheckerAt(*procsFlag, *nPhasesFlag, phaseOf(prog))
	}

	injected := 0
	steps := 0
	for steps = 0; steps < *maxStepsFlag; steps++ {
		if err := checker.Violation(); err != nil {
			return fmt.Errorf("after %d steps: %w", steps, err)
		}
		if checker.SuccessfulBarriers() >= *barriersFlag {
			break
		}
		if *faultRateFlag > 0 && rng.Float64() < *faultRateFlag {
			if faults.ApplyDetectableSafe(prog, prog, 1, rng) > 0 {
				injected++
			}
		}
		if !step() {
			return fmt.Errorf("deadlock after %d steps in state %v", steps, prog)
		}
	}

	if *timelineFlag {
		fmt.Println("timeline:")
		fmt.Print(recorder.Timeline())
		fmt.Print(recorder.Summary())
	}
	fmt.Printf("final state: %v\n", prog)
	fmt.Printf("steps=%d events=%d instances=%d successful-barriers=%d detectable-faults=%d\n",
		steps, events, checker.Instances(), checker.SuccessfulBarriers(), injected)
	if err := checker.Violation(); err != nil {
		return err
	}
	if *scrambleFlag {
		fmt.Println("barrier specification: satisfied after stabilization")
	} else {
		fmt.Println("barrier specification: satisfied")
	}
	return nil
}

// phaseOf returns the phase the stabilized program will execute next.
func phaseOf(p program) int {
	switch v := p.(type) {
	case *cb.Program:
		return v.Phase(0)
	case *rb.Program:
		return v.Phase(0)
	case *rbtree.Program:
		return v.Phase(0)
	case *dtree.Program:
		return v.Phase(0)
	case *mb.Program:
		return v.Phase(0)
	}
	return 0
}
