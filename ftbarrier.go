// Package ftbarrier is a fault-tolerant barrier-synchronization library, a
// full reproduction of Kulkarni & Arora, "Low-cost Fault-tolerance in
// Barrier Synchronizations" (ICPP 1998).
//
// The package offers three layers:
//
//  1. A practical runtime barrier for Go programs (New/Barrier.Await): a
//     goroutine-and-channel implementation of the paper's message-passing
//     program MB. Detectable faults — message loss, duplication, detected
//     corruption, process reset — are masked (every barrier executes
//     correctly); undetectable faults — state corruption — are stabilized;
//     uncorrectable faults are handled fail-safe (Halt).
//
//  2. The paper's protocol stack as executable guarded-command programs,
//     for simulation and verification: NewCB (coarse grain, Section 3),
//     NewRB (token ring, Section 4.1), NewTreeBarrier (tree topologies,
//     Section 4.2), NewMB (message passing, Section 5), each with
//     detectable/undetectable fault injection and barrier-specification
//     trace checking.
//
//  3. The Section 6 evaluation: the closed-form analytical model
//     (AnalyticalModel) and the timed maximal-parallel simulator
//     (SimulateDetectable, SimulateIntolerant, SimulateRecovery) that
//     regenerate Figures 3–7; see also cmd/experiments.
package ftbarrier

import (
	"math/rand"

	"repro/internal/analytical"
	"repro/internal/cb"
	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/faults"
	"repro/internal/mb"
	"repro/internal/obsv"
	"repro/internal/rb"
	"repro/internal/rbtree"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/transport"
)

// --- Layer 1: the runtime barrier ---

// Barrier is the fault-tolerant runtime barrier; see internal/runtime for
// the protocol details. Create one with New and synchronize with Await.
type Barrier = runtime.Barrier

// Config parameterizes a runtime Barrier.
type Config = runtime.Config

// Errors returned by Barrier.Await.
var (
	ErrReset   = runtime.ErrReset
	ErrHalted  = runtime.ErrHalted
	ErrStopped = runtime.ErrStopped
)

// New creates and starts a runtime Barrier for cfg.Participants goroutines.
func New(cfg Config) (*Barrier, error) { return runtime.New(cfg) }

// Topology selects the runtime barrier's refinement (Config.Topology): the
// MB token ring (O(N) latency, the default), the double-tree
// broadcast/convergecast of Fig 2(d) (O(log N) latency over a k-ary heap,
// arity Config.TreeArity), or the two-level hybrid (Config.Hosts groups
// members by host; each host's members fuse onto one local scheduler and
// only host roots exchange network messages, so the network diameter is
// O(log #hosts) regardless of members per host).
type Topology = runtime.Topology

// The available topologies.
const (
	TopologyRing   = runtime.TopologyRing
	TopologyTree   = runtime.TopologyTree
	TopologyHybrid = runtime.TopologyHybrid
)

// HybridTopology is the derived shape of a hybrid deployment: the fused
// member tree, the normalized host rosters, and the cross-host tree
// whose node space (host indices) is what a hybrid deployment's network
// transport runs over.
type HybridTopology = topo.Hybrid

// NewHybridTopology derives the hybrid shape for a host grouping
// (Config.Hosts) and host-tree arity (0 defaults to 2). Use
// HostTree.Parent with NewTCPTreeTransport to build the cross-host
// transport each host process passes in Config.Transport.
func NewHybridTopology(hosts [][]int, arity int) (*HybridTopology, error) {
	if arity == 0 {
		arity = 2
	}
	return topo.NewHybridTree(hosts, arity)
}

// --- Layer 1, observability ---

// MetricsRegistry collects the barrier's (and transports') live
// measurements — pass counts, re-executed instances per pass, phase
// latency, recovery time, traffic and fault counters — and renders them
// in the Prometheus text exposition format via WriteText. Pass one
// registry in Config.Metrics and/or TCPConfig.Registry; nil disables
// collection. See DESIGN.md §9 for the metric → paper-quantity mapping.
type MetricsRegistry = obsv.Registry

// NewMetricsRegistry returns an empty registry for Config.Metrics /
// TCPConfig.Registry.
func NewMetricsRegistry() *MetricsRegistry { return obsv.NewRegistry() }

// --- Layer 1, distributed: pluggable ring transports ---

// Transport supplies the barrier's ring links (Config.Transport); Link is
// one member's attachment to its neighbors, and Message is the MB wire
// triple (sn, cp, ph) with its end-to-end checksum. The in-process channel
// transport is the default; NewTCPTransport carries the same protocol
// across OS processes and machines.
type (
	// Transport supplies one Link per ring member.
	Transport = runtime.Transport
	// Link carries state announcements forward and ⊤ markers backward.
	Link = runtime.Link
	// Message is the protocol's wire triple plus checksum.
	Message = runtime.Message
)

// NewChanTransport returns the in-process channel transport for an
// all-local ring of n members — the default when Config.Transport is nil,
// exported for explicit side-by-side configuration with network
// transports.
func NewChanTransport(n int) Transport { return runtime.NewChanTransport(n) }

// NewChanTreeTransport returns the in-process channel transport for the
// tree described by the parent vector (parent[root] == -1) — the default
// for TopologyTree when Config.Transport is nil. The tree must match the
// shape the barrier derives from Config.TreeArity.
func NewChanTreeTransport(parent []int) Transport { return runtime.NewChanTreeTransport(parent) }

// TCPConfig parameterizes a TCP ring transport; TCPTransport implements
// Transport over per-edge TCP connections with automatic reconnect
// (capped exponential backoff with jitter). Every socket failure is
// mapped onto a fault class the protocol already masks — see
// internal/transport for the policy.
type (
	// TCPConfig configures a TCP ring transport.
	TCPConfig = transport.TCPConfig
	// TCPTransport is the TCP implementation of Transport.
	TCPTransport = transport.TCP
)

// NewTCPTransport creates a TCP transport for the ring described by
// cfg.Peers. Each participating process calls Open for the member ids it
// hosts (one per OS process in the usual deployment; cmd/barrierd is the
// ready-made single-member host).
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) { return transport.NewTCP(cfg) }

// NewLoopbackRing binds n ephemeral loopback listeners and returns a TCP
// transport for an all-local ring — the test and benchmark configuration.
func NewLoopbackRing(n int) (*TCPTransport, error) { return transport.NewLoopbackRing(n) }

// TCPTreeTransport is the TCP implementation of the tree topology's
// transport: one connection per tree edge, dialed child → parent, carrying
// convergecast reports up and state broadcasts down.
type TCPTreeTransport = transport.TCPTree

// NewTCPTreeTransport creates a TCP transport for the tree described by
// the parent vector over the members listed in cfg.Peers. Pair it with
// Config.Topology == TopologyTree; the parent vector must match the shape
// the barrier derives from Config.TreeArity (topo.NewKAryTree).
func NewTCPTreeTransport(cfg TCPConfig, parent []int) (*TCPTreeTransport, error) {
	return transport.NewTCPTree(cfg, parent)
}

// NewLoopbackTree binds n ephemeral loopback listeners and returns a TCP
// transport for an all-local binary-heap tree — the test and benchmark
// configuration for TopologyTree.
func NewLoopbackTree(n int) (*TCPTreeTransport, error) { return transport.NewLoopbackTree(n) }

// NewLoopbackTreeParent is NewLoopbackTree for an arbitrary tree shape
// given by the parent vector. With Config.Topology == TopologyHybrid the
// tree nodes are HOST indices (topo: the hybrid host tree), one OS
// process per host; each process passes the same transport and its own
// host's member roster in Config.Members.
func NewLoopbackTreeParent(parent []int) (*TCPTreeTransport, error) {
	return transport.NewLoopbackTreeParent(parent)
}

// --- Layer 2: the protocol stack ---

// Event and EventSink expose the barrier-specification trace events that
// every protocol engine emits; SpecChecker validates a trace against the
// Section 2 specification.
type (
	// Event is one observable protocol step (begin/complete/reset).
	Event = core.Event
	// EventSink consumes protocol events.
	EventSink = core.EventSink
	// SpecChecker validates event traces against the barrier spec.
	SpecChecker = core.SpecChecker
)

// NewSpecChecker returns a checker for n processes and nPhases phases.
func NewSpecChecker(n, nPhases int) *SpecChecker { return core.NewSpecChecker(n, nPhases) }

// NewCB builds the coarse-grain program CB of Section 3.
func NewCB(nProcs, nPhases int, rng *rand.Rand, sink EventSink) (*cb.Program, error) {
	return cb.New(nProcs, nPhases, rng, sink)
}

// NewRB builds the ring program RB of Section 4.1 with sequence numbers
// modulo k (K > N).
func NewRB(nProcs, nPhases, k int, rng *rand.Rand, sink EventSink) (*rb.Program, error) {
	return rb.New(nProcs, nPhases, k, rng, sink)
}

// NewTreeBarrier builds the Section 4.2 tree program over the k-ary tree
// with nProcs processes (Fig 2c) — the program the paper evaluates.
func NewTreeBarrier(nProcs, arity, nPhases int, rng *rand.Rand, sink EventSink) (*rbtree.Program, error) {
	tr, err := topo.NewKAryTree(nProcs, arity)
	if err != nil {
		return nil, err
	}
	return rbtree.New(tr.Parent, nPhases, nProcs+1, rng, sink)
}

// NewDoubleTreeBarrier builds the Figure 2(d) double-tree program over the
// k-ary tree with nProcs processes: dissemination down the tree, detection
// by convergecast back up it — the construction that embeds in arbitrary
// connected graphs.
func NewDoubleTreeBarrier(nProcs, arity, nPhases int, rng *rand.Rand, sink EventSink) (*dtree.Program, error) {
	tr, err := topo.NewKAryTree(nProcs, arity)
	if err != nil {
		return nil, err
	}
	return dtree.New(tr.Parent, nPhases, nProcs+1, rng, sink)
}

// NewMB builds the message-passing program MB of Section 5 with sequence
// numbers modulo l (L > 2N+1).
func NewMB(nProcs, nPhases, l int, rng *rand.Rand, sink EventSink) (*mb.Program, error) {
	return mb.New(nProcs, nPhases, l, rng, sink)
}

// FaultKind and the fault catalog expose the paper's Table 1 taxonomy.
type (
	// FaultKind is a concrete, classified fault type.
	FaultKind = faults.Kind
	// FaultClass is detectable or undetectable.
	FaultClass = faults.Class
	// Tolerance is the appropriate tolerance per Table 1.
	Tolerance = faults.Tolerance
)

// FaultCatalog lists the paper's fault types with their classification.
func FaultCatalog() []FaultKind { return faults.Catalog }

// AppropriateTolerance is Table 1: the tolerance a barrier synchronization
// should provide for a (correctability, class) pair.
func AppropriateTolerance(corr faults.Correctability, class faults.Class) Tolerance {
	return faults.AppropriateTolerance(corr, class)
}

// --- Layer 3: the Section 6 evaluation ---

// AnalyticalModel is the Section 6.1 closed-form model; zero value is not
// useful — set H (tree height), C (latency) and F (fault frequency).
type AnalyticalModel = analytical.Model

// SimConfig parameterizes a timed simulation (Section 6.2).
type SimConfig = sim.Config

// SimResult is a detectable-fault simulation outcome (Figures 5 and 6).
type SimResult = sim.Result

// RecoveryResult is an undetectable-fault recovery outcome (Figure 7).
type RecoveryResult = sim.RecoveryResult

// SimulateDetectable reproduces the Figure 5/6 measurements: the tree
// protocol under detectable faults, with spec checking throughout.
func SimulateDetectable(cfg SimConfig) (SimResult, error) { return sim.RunDetectable(cfg) }

// SimulateIntolerant measures the fault-intolerant combining-tree baseline
// under the same timed semantics.
func SimulateIntolerant(cfg SimConfig) (SimResult, error) { return sim.RunIntolerant(cfg) }

// SimulateRecovery reproduces the Figure 7 measurement: time to recover
// from a whole-system undetectable perturbation.
func SimulateRecovery(cfg SimConfig) (RecoveryResult, error) { return sim.RunRecovery(cfg) }
