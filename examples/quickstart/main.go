// Quickstart: four goroutines synchronize through the fault-tolerant
// barrier while one of them is periodically reset (a detectable fault,
// e.g. a process fail-stop + restart). Every barrier still executes
// correctly: the reset worker redoes its lost phase and nobody races ahead.
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	ftbarrier "repro"
)

const (
	workers = 4
	rounds  = 6
)

func main() {
	b, err := ftbarrier.New(ftbarrier.Config{Participants: workers})
	if err != nil {
		panic(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var mu sync.Mutex
	logf := func(format string, args ...any) {
		mu.Lock()
		fmt.Printf(format+"\n", args...)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; {
				// ... phase work would happen here ...
				logf("worker %d: finished phase work for round %d", id, round)
				_, err := b.Await(ctx, id)
				switch {
				case err == nil:
					logf("worker %d: passed barrier %d", id, round)
					round++
				case errors.Is(err, ftbarrier.ErrReset):
					logf("worker %d: my process was reset — redoing round %d", id, round)
				default:
					logf("worker %d: %v", id, err)
					return
				}
			}
		}()
	}

	// Meanwhile, fail-stop worker 2's protocol process a couple of times.
	for i := 0; i < 2; i++ {
		time.Sleep(3 * time.Millisecond)
		fmt.Println("-- injecting detectable fault: resetting worker 2's process --")
		b.Reset(2)
	}

	wg.Wait()
	fmt.Println("all workers completed every round; every barrier executed correctly")
}
