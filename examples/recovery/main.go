// Recovery: a live demonstration of stabilizing tolerance to undetectable
// faults (Lemma 4.1.3 / Figure 7). The message-passing program MB is
// perturbed to an arbitrary state — every variable of every process,
// including the local copies, is overwritten with garbage — and the demo
// traces the global state as the protocol pulls itself back to a start
// state, after which barriers execute correctly again.
package main

import (
	"fmt"
	"math/rand"

	ftbarrier "repro"
	"repro/internal/core"
)

const (
	procs   = 5
	nPhases = 4
)

func main() {
	rng := rand.New(rand.NewSource(7))
	count := newBarrierCounter(procs)
	prog, err := ftbarrier.NewMB(procs, nPhases, 2*procs+2, rng, count.observe)
	if err != nil {
		panic(err)
	}

	fmt.Println("fault-free warmup (3 barriers):")
	for count.successes < 3 {
		if _, ok := prog.Guarded().StepRoundRobin(); !ok {
			panic("deadlock")
		}
	}
	fmt.Printf("  state: %v\n", prog)

	fmt.Println("\ninjecting an undetectable whole-system fault (state scramble):")
	for j := 0; j < procs; j++ {
		prog.InjectUndetectable(j)
	}
	fmt.Printf("  state: %v\n", prog)

	fmt.Println("\nstabilizing (one line per 5 protocol steps):")
	steps := 0
	for !prog.InStartState() {
		if _, ok := prog.Guarded().StepRoundRobin(); !ok {
			panic("deadlock during recovery")
		}
		steps++
		if steps%5 == 0 {
			fmt.Printf("  step %3d: %v\n", steps, prog)
		}
		if steps > 100000 {
			panic("no convergence")
		}
	}
	fmt.Printf("\nreached a start state after %d steps: %v\n", steps, prog)

	fmt.Println("\nbarriers after stabilization (must satisfy the spec):")
	checker := core.NewSpecCheckerAt(procs, nPhases, prog.Phase(0))
	count.reset(checker)
	for checker.SuccessfulBarriers() < 3 {
		if _, ok := prog.Guarded().StepRoundRobin(); !ok {
			panic("deadlock after stabilization")
		}
	}
	if err := checker.Violation(); err != nil {
		panic(err)
	}
	fmt.Printf("  3 more barriers executed correctly; final state: %v\n", prog)
	fmt.Println("\nstabilizing tolerance demonstrated: arbitrary corruption, bounded recovery.")
}

// barrierCounter counts successful barriers, switchable to a full checker.
type barrierCounter struct {
	n         int
	completed map[int]bool
	successes int
	checker   *core.SpecChecker
}

func newBarrierCounter(n int) *barrierCounter {
	return &barrierCounter{n: n, completed: map[int]bool{}}
}

func (c *barrierCounter) observe(e core.Event) {
	if c.checker != nil {
		c.checker.Observe(e)
		return
	}
	switch e.Kind {
	case core.EvComplete:
		c.completed[e.Proc] = true
		if len(c.completed) == c.n {
			c.successes++
			c.completed = map[int]bool{}
		}
	case core.EvReset:
		delete(c.completed, e.Proc)
	}
}

func (c *barrierCounter) reset(ch *core.SpecChecker) { c.checker = ch }
