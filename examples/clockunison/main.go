// Clock unison: the Section 7 instantiation of the barrier program as a
// self-stabilizing bounded clock. All clocks stay within one tick of each
// other, advance forever, and — after an undetectable corruption of every
// clock — pull themselves back into unison.
package main

import (
	"fmt"

	"repro/internal/apps/unison"
)

const (
	procs   = 6
	modulus = 10
)

func main() {
	clock, err := unison.New(procs, modulus, 42)
	if err != nil {
		panic(err)
	}

	show := func(label string) {
		vals := make([]int, procs)
		for j := range vals {
			vals[j] = clock.Value(j)
		}
		fmt.Printf("%-28s clocks=%v skew=%d\n", label, vals, clock.MaxSkew())
	}

	fmt.Printf("bounded unison clock: %d processes, values modulo %d\n\n", procs, modulus)
	show("initial")
	for tick := 1; tick <= 3; tick++ {
		for i := 0; i < 200; i++ {
			clock.Step()
		}
		show(fmt.Sprintf("after %d more steps", 200))
		if clock.MaxSkew() > 1 {
			panic("unison violated in fault-free run")
		}
	}

	fmt.Println("\nscrambling every clock to an arbitrary value (undetectable fault):")
	clock.Scramble()
	show("scrambled")

	steps := 0
	for !clock.Stabilized() {
		if !clock.Step() {
			panic("clock deadlocked")
		}
		steps++
		if steps > 1_000_000 {
			panic("no stabilization")
		}
	}
	show(fmt.Sprintf("stabilized after %d steps", steps))

	fmt.Println("\nverifying unison holds forever after stabilization:")
	for i := 0; i < 2000; i++ {
		clock.Step()
		if clock.MaxSkew() > 1 {
			panic("unison violated after stabilization")
		}
	}
	show("after 2000 more steps")
	fmt.Println("\nunison maintained: skew ≤ 1 at every step, clocks advancing.")
}
