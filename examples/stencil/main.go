// Stencil: a 1-D Jacobi heat-diffusion iteration partitioned across
// goroutines — the classic phased computation the paper's introduction
// motivates. Each sweep is one barrier phase; workers exchange halo cells
// between sweeps. Detectable faults (worker process resets) are injected
// mid-run: thanks to the barrier's masking tolerance and the double
// buffering of the grid, the final temperatures are bit-identical to a
// fault-free run.
package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	ftbarrier "repro"
)

const (
	workers = 4
	cells   = 64 // grid cells per worker
	sweeps  = 40
)

// jacobi runs the phased computation and returns the final grid. If
// injectFaults is set, worker processes are reset while the computation
// runs.
func jacobi(injectFaults bool) []float64 {
	n := workers * cells
	cur := make([]float64, n+2)  // +2 boundary cells
	next := make([]float64, n+2) // double buffer
	cur[0], cur[n+1] = 100, -100 // fixed boundary temperatures
	next[0], next[n+1] = 100, -100

	b, err := ftbarrier.New(ftbarrier.Config{Participants: workers})
	if err != nil {
		panic(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo, hi := id*cells+1, (id+1)*cells // [lo, hi] in the grid
			// Each worker tracks the double-buffer roles locally; the
			// barrier keeps all workers' views in lockstep.
			src, dst := cur, next
			for sweep := 0; sweep < sweeps; {
				// Phase work: relax our slice from src into dst. Reads
				// touch neighbor slices' halo cells of src — safe because
				// the previous barrier guaranteed everyone finished writing
				// src, and redoing this loop after a reset is idempotent.
				for i := lo; i <= hi; i++ {
					dst[i] = (src[i-1] + src[i+1]) / 2
				}
				_, err := b.Await(ctx, id)
				switch {
				case err == nil:
					sweep++
					src, dst = dst, src
				case errors.Is(err, ftbarrier.ErrReset):
					// Our process restarted: redo this sweep (idempotent).
				default:
					panic(err)
				}
			}
		}()
	}

	if injectFaults {
		for i := 0; i < 6; i++ {
			time.Sleep(2 * time.Millisecond)
			b.Reset(i % workers)
		}
	}
	wg.Wait()
	// Sweep k writes the buffer that started as `next` when k is odd and
	// `cur` when k is even (1-based), so after an even number of sweeps the
	// final temperatures are in `cur`.
	if sweeps%2 == 1 {
		return next
	}
	return cur
}

func main() {
	fmt.Println("running fault-free Jacobi reference...")
	ref := jacobi(false)
	fmt.Println("running Jacobi with injected process resets...")
	faulty := jacobi(true)

	maxDiff := 0.0
	for i := range ref {
		if d := math.Abs(ref[i] - faulty[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |fault-free - faulty| = %g\n", maxDiff)
	if maxDiff != 0 {
		panic("faulty run diverged from the fault-free reference")
	}
	fmt.Printf("grids identical after %d sweeps; sample temps: left=%.3f mid=%.3f right=%.3f\n",
		sweeps, ref[1], ref[len(ref)/2], ref[len(ref)-2])
}
