// Atomic commitment: the Section 7 instantiation of the barrier program.
// Three participants execute a sequence of distributed transactions; a
// transaction commits only if every participant's subtransaction succeeds,
// and failed subtransactions force the whole transaction to be re-executed
// before the next one starts. One participant's subtransactions fail
// intermittently — watch the retries.
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps/commit"
)

const (
	participants = 3
	transactions = 5
)

var errFlaky = errors.New("subtransaction failed (simulated I/O error)")

func main() {
	coord, err := commit.New(participants)
	if err != nil {
		panic(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var mu sync.Mutex
	logf := func(format string, args ...any) {
		mu.Lock()
		fmt.Printf(format+"\n", args...)
		mu.Unlock()
	}

	// Participant 2's first attempt of every even transaction fails.
	var committed atomic.Int32

	var wg sync.WaitGroup
	for id := 0; id < participants; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for txn := 0; txn < transactions; txn++ {
				err := coord.Execute(ctx, id, func(attempt int) error {
					if id == 2 && txn%2 == 0 && attempt == 0 {
						logf("participant %d: txn %d attempt %d → ABORT", id, txn, attempt)
						return errFlaky
					}
					logf("participant %d: txn %d attempt %d → ok", id, txn, attempt)
					return nil
				})
				if err != nil {
					logf("participant %d: txn %d failed: %v", id, txn, err)
					return
				}
				logf("participant %d: txn %d COMMITTED", id, txn)
				committed.Add(1)
			}
		}()
	}
	wg.Wait()

	fmt.Printf("\n%d/%d subtransaction commits; every transaction required all "+
		"participants, and aborted transactions were transparently retried.\n",
		committed.Load(), participants*transactions)
	if committed.Load() != participants*transactions {
		panic("not all transactions committed")
	}
}
