// Fuzzy barriers (the Section 8 extension): Enter marks the end of a
// phase's ordered work (the execute→success transition); Leave blocks
// until the barrier opens (the ready→execute transition). Between the two,
// a participant may do work that needs no ordering — overlapping it with
// slower participants' phases instead of idling at the barrier.
//
// This demo measures the difference: workers with imbalanced phase times
// run once with plain Await (fuzzy work serialized after the barrier) and
// once with Enter/fuzzy-work/Leave (overlapped).
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	ftbarrier "repro"
)

const (
	workers = 4
	rounds  = 12
	// Each round one worker's ordered phase is slow (the straggler role
	// rotates); everyone has unordered bookkeeping (the "fuzzy" work) per
	// round. With a plain barrier the bookkeeping sits on the critical
	// path (straggler period = slow + fuzzy); with a fuzzy barrier last
	// round's straggler does its bookkeeping while this round's straggler
	// computes.
	slowPhase = 4 * time.Millisecond
	fastPhase = 500 * time.Microsecond
	fuzzyWork = 2 * time.Millisecond
)

func run(overlap bool) time.Duration {
	b, err := ftbarrier.New(ftbarrier.Config{Participants: workers})
	if err != nil {
		panic(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Ordered phase work; the straggler role rotates.
				if r%workers == id {
					time.Sleep(slowPhase)
				} else {
					time.Sleep(fastPhase)
				}
				if overlap {
					// Fuzzy barrier: enter, do the unordered work while
					// the slow worker is still in its phase, then leave.
					if err := b.Enter(ctx, id); err != nil {
						panic(err)
					}
					time.Sleep(fuzzyWork)
					if _, err := b.Leave(ctx, id); err != nil {
						panic(err)
					}
				} else {
					// Plain barrier: the unordered work serializes after
					// the barrier.
					if _, err := b.Await(ctx, id); err != nil {
						panic(err)
					}
					time.Sleep(fuzzyWork)
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func main() {
	plain := run(false)
	fuzzy := run(true)
	fmt.Printf("plain  barrier (Await):        %v\n", plain.Round(time.Millisecond))
	fmt.Printf("fuzzy  barrier (Enter/Leave):  %v\n", fuzzy.Round(time.Millisecond))
	fmt.Printf("speedup from overlapping unordered work: %.2fx\n",
		float64(plain)/float64(fuzzy))
	if fuzzy >= plain {
		fmt.Println("note: expected the fuzzy run to be faster; timing noise can mask it on loaded machines")
	}
}
