package analyzers

// All returns every barriervet analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicMix,
		AllocBound,
		CtxCommit,
		MetricPair,
		StepPure,
		LockOrder,
		TicketWindow,
		SeqWindow,
	}
}
