package analyzers

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// ignorePrefix is the suppression directive. It must carry a reason:
//
//	//barriervet:ignore jitter rng is owner-confined to this goroutine
//
// and applies to findings on its own line, or — when the comment stands
// alone — to findings on the line below it.
const ignorePrefix = "//barriervet:ignore"

// A Directive is one //barriervet:ignore occurrence in a loaded file.
type Directive struct {
	Pos    token.Position // of the comment
	Line   int            // line the directive suppresses
	Reason string
	Alone  bool // comment is alone on its line (suppresses the next line)
	used   bool
}

// scanDirectives collects every barriervet directive in f. A directive
// that shares its line with code suppresses that line; a directive alone
// on a line suppresses the following line.
func scanDirectives(fset *token.FileSet, f *ast.File) []*Directive {
	// Record which lines contain any non-comment tokens, so "alone on
	// its line" is decidable.
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		return true
	})

	var ds []*Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			d := &Directive{
				Pos:    pos,
				Reason: strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix)),
				Alone:  !codeLines[pos.Line],
				Line:   pos.Line,
			}
			if d.Alone {
				d.Line = pos.Line + 1
			}
			ds = append(ds, d)
		}
	}
	return ds
}

// Result is the outcome of running a set of analyzers over a load:
// surviving diagnostics (position-sorted, deduplicated) and the number
// of findings suppressed by directives.
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  int
}

// RunAnalyzers runs each analyzer over the loaded packages, applies the
// //barriervet:ignore directives, and reports directive misuse (missing
// reason, suppressing nothing) as findings of a synthetic "barriervet"
// analyzer.
func RunAnalyzers(load *LoadResult, analyzers []*Analyzer) (*Result, error) {
	var raw []Diagnostic
	sink := func(d Diagnostic) { raw = append(raw, d) }

	var passes []*Pass
	for _, lp := range load.Pkgs {
		passes = append(passes, &Pass{
			Fset:      load.Fset,
			Files:     lp.Files,
			Pkg:       lp.Pkg,
			TypesInfo: lp.TypesInfo,
			report:    sink,
		})
	}

	for _, a := range analyzers {
		if a.RunProgram != nil {
			prog := &Program{Fset: load.Fset}
			for _, p := range passes {
				q := *p
				q.Analyzer = a
				prog.Packages = append(prog.Packages, &q)
			}
			if err := a.RunProgram(prog); err != nil {
				return nil, err
			}
			continue
		}
		for _, p := range passes {
			q := *p
			q.Analyzer = a
			if err := a.Run(&q); err != nil {
				return nil, err
			}
		}
	}

	res := &Result{}
	byLine := make(map[string][]*Directive, len(load.Directives))
	for _, d := range load.Directives {
		key := lineKey(d.Pos.Filename, d.Line)
		byLine[key] = append(byLine[key], d)
	}
	seen := make(map[string]bool)
	for _, d := range raw {
		key := d.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		if ds := byLine[lineKey(d.Pos.Filename, d.Pos.Line)]; len(ds) > 0 {
			for _, dir := range ds {
				dir.used = true
			}
			res.Suppressed++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}

	for _, dir := range load.Directives {
		if dir.Reason == "" {
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Analyzer: "barriervet",
				Pos:      dir.Pos,
				Message:  "barriervet:ignore directive needs a reason",
			})
		} else if !dir.used {
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Analyzer: "barriervet",
				Pos:      dir.Pos,
				Message:  "barriervet:ignore directive suppresses nothing; remove it",
			})
		}
	}

	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i].Pos, res.Diagnostics[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return res.Diagnostics[i].Analyzer < res.Diagnostics[j].Analyzer
	})
	return res, nil
}

func lineKey(file string, line int) string {
	return file + "\x00" + strconv.Itoa(line)
}
