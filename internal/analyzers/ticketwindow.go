package analyzers

import (
	"go/ast"
	"go/types"
)

// TicketWindow enforces the pipeline-window commit pairing of the
// runtime barrier's windowed Await (DESIGN.md §12): in any struct that
// carries both a `tickets` counter and an `entered` flag — the gate
// shape — a function that commits a ticket (writes, increments, or
// compound-assigns the tickets field) must also write the entered flag
// in the same function. The ticket is the protocol-side promise that an
// arrival was handed over; the flag is the window's record that the
// lane slot is occupied. Committing one without the other lets Enter
// hand a second arrival to a lane that already owes a completion
// (double-enter) or leaves Leave waiting on a ticket whose slot
// bookkeeping never happened (an orphaned wave). Clearing `entered`
// alone is the release side of the pairing and is legal — reap does
// exactly that.
var TicketWindow = &Analyzer{
	Name: "ticketwindow",
	Doc: "a function that commits an Await ticket (writes the tickets " +
		"field of a gate-shaped struct) must also mark the window slot " +
		"(write the entered flag) in the same function, or the pipeline " +
		"window can double-enter a lane or orphan a wave",
	Run: runTicketWindow,
}

func runTicketWindow(p *Pass) error {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var ticketWrites []*ast.SelectorExpr
			wroteEntered := false
			note := func(sel *ast.SelectorExpr) {
				if !gateShaped(p, sel) {
					return
				}
				switch sel.Sel.Name {
				case "tickets":
					ticketWrites = append(ticketWrites, sel)
				case "entered":
					wroteEntered = true
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if sel, ok := lhs.(*ast.SelectorExpr); ok {
							note(sel)
						}
					}
				case *ast.IncDecStmt:
					if sel, ok := n.X.(*ast.SelectorExpr); ok {
						note(sel)
					}
				}
				return true
			})
			if wroteEntered {
				continue
			}
			for _, sel := range ticketWrites {
				p.Reportf(sel.Pos(), "ticket committed (write to %s.tickets) with no write to the entered flag in %s; the window slot bookkeeping is missing",
					exprText(sel.X), fd.Name.Name)
			}
		}
	}
	return nil
}

// gateShaped reports whether sel selects a field of a struct that has
// both the tickets counter and the entered flag — the window-gate shape
// the pairing rule applies to. Unrelated tickets fields elsewhere are
// left alone.
func gateShaped(p *Pass, sel *ast.SelectorExpr) bool {
	tv, ok := p.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasTickets, hasEntered := false, false
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "tickets":
			hasTickets = true
		case "entered":
			hasEntered = true
		}
	}
	return hasTickets && hasEntered
}

// exprText renders a selector base for a diagnostic ("g", "w.gate").
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.StarExpr:
		return exprText(e.X)
	}
	return "gate"
}
