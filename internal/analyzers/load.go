package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one parsed and type-checked package.
type LoadedPackage struct {
	Path      string // import path
	Dir       string
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// LoadResult is what Load produces: the packages matched by the
// patterns, their shared FileSet, and every barriervet directive found
// in their sources.
type LoadResult struct {
	Fset       *token.FileSet
	Pkgs       []*LoadedPackage
	Directives []*Directive
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, which
// must be inside a module), parses their non-test sources, and
// type-checks them against the toolchain's export data. It shells out to
// `go list -deps -export -json`, so it needs no network and no module
// downloads: dependencies — standard library included — are imported
// from the compiled export data the go command produces locally.
//
// Test files are not loaded: the invariants barriervet encodes guard
// production protocol code, and fixtures for the analyzers themselves
// live under testdata where go list never looks.
func Load(dir string, patterns ...string) (*LoadResult, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analyzers: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analyzers: decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analyzers: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			roots = append(roots, &q)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}

	res := &LoadResult{Fset: fset}
	for _, lp := range roots {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, conf, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		res.Pkgs = append(res.Pkgs, pkg)
		for _, f := range pkg.Files {
			res.Directives = append(res.Directives, scanDirectives(fset, f)...)
		}
	}
	return res, nil
}

// LoadDir parses and type-checks the single package rooted at dir
// (every non-test .go file in it), importing dependencies through the
// same export-data importer as Load — run from moduleDir so in-module
// import paths resolve. This is the fixture loader used by the
// analysistest harness: fixture directories live under testdata, outside
// any go list pattern, but may import both the standard library and this
// module's packages.
func LoadDir(moduleDir, dir, importPath string) (*LoadResult, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analyzers: no Go files in %s", dir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	exp := &lazyExports{dir: moduleDir, exports: make(map[string]string)}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", exp.lookup)}
	pkg, err := checkPackage(fset, conf, importPath, dir, files)
	if err != nil {
		return nil, err
	}
	res := &LoadResult{Fset: fset, Pkgs: []*LoadedPackage{pkg}}
	for _, f := range pkg.Files {
		res.Directives = append(res.Directives, scanDirectives(fset, f)...)
	}
	return res, nil
}

// checkPackage parses files (relative to dir) and type-checks them.
func checkPackage(fset *token.FileSet, conf types.Config, importPath, dir string, files []string) (*LoadedPackage, error) {
	var parsed []*ast.File
	for _, name := range files {
		af, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analyzers: %v", err)
		}
		parsed = append(parsed, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analyzers: type-check %s: %v", importPath, err)
	}
	return &LoadedPackage{
		Path:      importPath,
		Dir:       dir,
		Files:     parsed,
		Pkg:       tpkg,
		TypesInfo: info,
	}, nil
}

// lazyExports resolves export data one import path at a time via
// `go list -export`, caching results. Used by LoadDir, where the needed
// dependency set is not known up front.
type lazyExports struct {
	dir     string
	exports map[string]string
}

func (l *lazyExports) lookup(path string) (io.ReadCloser, error) {
	e, ok := l.exports[path]
	if !ok {
		cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", "--", path)
		cmd.Dir = l.dir
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v", path, err)
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPackage
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
		if e, ok = l.exports[path]; !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(e)
}
