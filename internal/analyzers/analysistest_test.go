package analyzers_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analyzers"
)

// moduleRoot is the repo root, from which fixture type-checking resolves
// both stdlib and repro/... imports.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// wantRe extracts `// want "regex" "regex"...` expectations: one marker
// per line, any number of quoted patterns after it.
var (
	wantRe    = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
	wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hits int
}

// runFixture loads testdata/src/<name>, runs the analyzer over it, and
// checks the diagnostics against the fixture's // want comments: every
// expectation must be matched on its line, and every diagnostic must be
// expected.
func runFixture(t *testing.T, a *analyzers.Analyzer, name string) *analyzers.Result {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	load, err := analyzers.LoadDir(moduleRoot(t), dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	res, err := analyzers.RunAnalyzers(load, []*analyzers.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on fixture %s: %v", a.Name, name, err)
	}

	var wants []*expectation
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for lineno := 1; sc.Scan(); lineno++ {
			if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", path, lineno, arg[1], err)
					}
					wants = append(wants, &expectation{file: path, line: lineno, re: re})
				}
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}

	for _, d := range res.Diagnostics {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hits++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if w.hits == 0 {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return res
}

func TestAtomicMix(t *testing.T)    { runFixture(t, analyzers.AtomicMix, "atomicmix") }
func TestAllocBound(t *testing.T)   { runFixture(t, analyzers.AllocBound, "allocbound") }
func TestCtxCommit(t *testing.T)    { runFixture(t, analyzers.CtxCommit, "ctxcommit") }
func TestMetricPair(t *testing.T)   { runFixture(t, analyzers.MetricPair, "metricpair") }
func TestMetricPairOK(t *testing.T) { runFixture(t, analyzers.MetricPair, "metricpair_ok") }
func TestStepPure(t *testing.T)     { runFixture(t, analyzers.StepPure, "steppure") }
func TestLockOrder(t *testing.T)    { runFixture(t, analyzers.LockOrder, "lockorder") }
func TestTicketWindow(t *testing.T) { runFixture(t, analyzers.TicketWindow, "ticketwindow") }
func TestSeqWindow(t *testing.T)    { runFixture(t, analyzers.SeqWindow, "seqwindow") }

// TestIgnoreDirectives pins the suppression contract: a directive with a
// reason silences the finding on its line (or the line below when it
// stands alone), a bare directive is itself a finding, and a directive
// that suppresses nothing is a finding.
func TestIgnoreDirectives(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "ignores"))
	if err != nil {
		t.Fatal(err)
	}
	load, err := analyzers.LoadDir(moduleRoot(t), dir, "fixture/ignores")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analyzers.RunAnalyzers(load, []*analyzers.Analyzer{analyzers.AtomicMix})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressed != 2 {
		t.Errorf("suppressed = %d, want 2 (inline and standalone directives)", res.Suppressed)
	}
	var got []string
	for _, d := range res.Diagnostics {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	want := []string{
		"barriervet: barriervet:ignore directive needs a reason",
		"barriervet: barriervet:ignore directive suppresses nothing; remove it",
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestBarriervetRepoClean is the smoke test the CI job relies on: the
// full analyzer suite must run clean over the repository itself.
func TestBarriervetRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks every package; skipped in -short")
	}
	load, err := analyzers.Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analyzers.RunAnalyzers(load, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("repo not barriervet-clean: %s", d)
	}
}
