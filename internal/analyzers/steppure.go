package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// StepPure requires that the Guard and Body of every guarded.Action —
// and everything they call inside their package — be deterministic and
// non-blocking: no wall-clock reads or sleeps, no draws from the global
// math/rand generator, no channel operations, no goroutine launches.
//
// Why: the guarded engine's whole value is that a program is a pure
// state machine the scheduler can step, replay, and (in the simulator)
// explore exhaustively. A time.Now inside a Guard makes replays diverge;
// a blocking receive inside a Body deadlocks the scheduler loop, which
// assumes steps complete. Randomness is allowed, but only through an
// owned generator threaded in explicitly (*rand.Rand parameter or the
// internal/prng PRNG), never the global one that other goroutines share.
var StepPure = &Analyzer{
	Name: "steppure",
	Doc: "guarded.Action Guard/Body functions must be deterministic and " +
		"non-blocking: no time reads/sleeps, global math/rand, channel " +
		"ops, selects, or go statements (replayability of engine steps)",
	Run: runStepPure,
}

func runStepPure(p *Pass) error {
	// Find the roots: function literals or same-package functions bound
	// to the Guard/Body fields of guarded.Action composite literals.
	var rootLits []*ast.FuncLit
	rootFuncs := make(map[*types.Func]bool)

	p.Inspect(func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok || !isGuardedAction(p, cl) {
			return true
		}
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || (key.Name != "Guard" && key.Name != "Body") {
				continue
			}
			switch v := ast.Unparen(kv.Value).(type) {
			case *ast.FuncLit:
				rootLits = append(rootLits, v)
			case *ast.Ident:
				if fn, ok := p.TypesInfo.Uses[v].(*types.Func); ok && fn.Pkg() == p.Pkg {
					rootFuncs[fn] = true
				}
			case *ast.SelectorExpr:
				// Method value m.step — only same-package methods are in
				// reach of the source walk.
				if fn, ok := p.TypesInfo.Uses[v.Sel].(*types.Func); ok && fn.Pkg() == p.Pkg {
					rootFuncs[fn] = true
				}
			}
		}
		return true
	})
	if len(rootLits) == 0 && len(rootFuncs) == 0 {
		return nil
	}

	// Map same-package function objects to their declarations so the
	// reachability walk can descend into callees.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	visited := make(map[*types.Func]bool)
	var checkBody func(body ast.Node, where string)
	var checkFunc func(fn *types.Func, where string)

	checkFunc = func(fn *types.Func, where string) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		if fd := decls[fn]; fd != nil {
			checkBody(fd.Body, where)
		}
	}

	checkBody = func(body ast.Node, where string) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.SendStmt:
				p.Reportf(s.Pos(), "channel send in %s; engine steps must not block", where)
			case *ast.UnaryExpr:
				if s.Op.String() == "<-" {
					p.Reportf(s.Pos(), "channel receive in %s; engine steps must not block", where)
				}
			case *ast.SelectStmt:
				p.Reportf(s.Pos(), "select in %s; engine steps must not block", where)
			case *ast.GoStmt:
				p.Reportf(s.Pos(), "go statement in %s; engine steps must not launch goroutines", where)
			case *ast.RangeStmt:
				if t := p.TypesInfo.Types[s.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						p.Reportf(s.Pos(), "range over channel in %s; engine steps must not block", where)
					}
				}
			case *ast.CallExpr:
				checkCallPurity(p, s, where)
				if fn := p.CalleeFunc(s); fn != nil && fn.Pkg() == p.Pkg {
					checkFunc(fn, where)
				}
			}
			return true
		})
	}

	for _, lit := range rootLits {
		checkBody(lit.Body, "a guarded.Action Guard/Body")
	}
	for fn := range rootFuncs {
		checkFunc(fn, "a guarded.Action Guard/Body ("+fn.Name()+")")
	}
	return nil
}

// checkCallPurity reports calls that break step determinism: wall-clock
// and timer functions, and draws from the shared global math/rand state.
func checkCallPurity(p *Pass, call *ast.CallExpr, where string) {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	switch path {
	case "time":
		switch fn.Name() {
		case "Now", "Sleep", "Since", "Until", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
			p.Reportf(call.Pos(), "time.%s in %s; engine steps must be deterministic and non-blocking", fn.Name(), where)
		}
	case "math/rand", "math/rand/v2":
		// Package-level draws share global state across goroutines;
		// methods on an owned *rand.Rand (or constructors) are fine.
		if fn.Type().(*types.Signature).Recv() != nil {
			return
		}
		if fn.Name() == "New" || strings.HasPrefix(fn.Name(), "NewSource") {
			return
		}
		p.Reportf(call.Pos(), "global %s.%s in %s; thread an owned generator through the program state instead", lastPathElem(path), fn.Name(), where)
	}
}

// isGuardedAction reports whether a composite literal constructs the
// guarded.Action type (from a package path ending in internal/guarded).
func isGuardedAction(p *Pass, cl *ast.CompositeLit) bool {
	t := p.TypesInfo.Types[cl].Type
	named := namedOf(t)
	if named == nil || named.Obj().Name() != "Action" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && strings.HasSuffix(pkg.Path(), "internal/guarded")
}

func lastPathElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
