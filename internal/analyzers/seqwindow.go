package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// seqCopyFields are the neighbor-copy cells of the runtime's receive
// paths: the ring's predecessor copies, the tree child's parent copies
// and the tree parent's per-kid copies. Adopting a frame means writing
// one of these.
var seqCopyFields = map[string]bool{
	"snL": true, "cpL": true, "phL": true,
	"pSN": true, "pCP": true, "pPH": true,
	"kidSN": true, "kidCP": true, "kidPH": true,
	"kidAckSN": true, "kidAckCP": true, "kidAckPH": true,
}

// SeqWindow enforces the frame-validation discipline that closed the
// forged-frame hole (DESIGN.md §13): any function that receives a wire
// frame (a Message or UpMessage parameter) and adopts it into a
// neighbor-copy cell of a window-guarded struct (one that carries a
// pending-sighting slot) must run a sequence/phase window check — a
// check*/admit* call — in the same function. Adopting a frame without
// consulting the window reopens the original vulnerability: one
// well-formed forged frame steering a correct member's phase.
var SeqWindow = &Analyzer{
	Name: "seqwindow",
	Doc: "a receive path (Message/UpMessage parameter) that adopts the " +
		"frame into a neighbor-copy field of a pending-slot struct must " +
		"call its sequence-window validation (a check*/admit* method) in " +
		"the same function, or a single forged frame can steer the phase",
	Run: runSeqWindow,
}

func runSeqWindow(p *Pass) error {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasFrameParam(p, fd) {
				continue
			}
			var copyWrites []*ast.SelectorExpr
			validated := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					name := calleeName(n)
					if strings.HasPrefix(name, "check") || strings.HasPrefix(name, "admit") {
						validated = true
					}
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if sel, ok := lhs.(*ast.SelectorExpr); ok {
							if seqCopyFields[sel.Sel.Name] && pendingSlotShaped(p, sel) {
								copyWrites = append(copyWrites, sel)
							}
						}
					}
				}
				return true
			})
			if validated {
				continue
			}
			for _, sel := range copyWrites {
				p.Reportf(sel.Pos(), "frame adopted (write to %s.%s) with no sequence-window check in %s; a forged frame would be adopted unvalidated",
					exprText(sel.X), sel.Sel.Name, fd.Name.Name)
			}
		}
	}
	return nil
}

// hasFrameParam reports whether fd takes a wire-frame parameter: a type
// named Message or UpMessage (possibly through a pointer).
func hasFrameParam(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := p.TypesInfo.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		switch named.Obj().Name() {
		case "Message", "UpMessage":
			return true
		}
	}
	return false
}

// pendingSlotShaped reports whether sel selects a field of a struct that
// also carries a pending-sighting slot (a field whose name contains
// "pend", e.g. pending/havePending, pendDown, kidPend) — the shape of a
// window-guarded receive state. Copy fields on unguarded structs are
// outside the rule.
func pendingSlotShaped(p *Pass, sel *ast.SelectorExpr) bool {
	tv, ok := p.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if strings.Contains(strings.ToLower(st.Field(i).Name()), "pend") {
			return true
		}
	}
	return false
}

// calleeName returns the bare name of a call's callee ("checkDown" for
// tp.checkDown(m), "admitPredState" for p.admitPredState(m)).
func calleeName(c *ast.CallExpr) string {
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
