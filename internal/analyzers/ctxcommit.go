package analyzers

import (
	"go/ast"
	"go/types"
)

// CtxCommit flags state-committing operations — channel sends, mutating
// sync/atomic calls, struct-field writes — inside the ctx.Done() arm of
// a select statement.
//
// Bug class: the PR 4 cancel races — an Await that lost the race to a
// concurrent release would take the ctx.Done() arm and still increment
// the entered-count (or send its ticket), leaving the barrier's
// accounting permanently off by one. The rule the fix established:
// winning ctx.Done() means the operation did NOT happen; the only state
// change allowed there is via a nested non-blocking re-poll of the
// result channel (Leave's last-chance receive), whose receive arm is
// exempt because at that point the result genuinely arrived.
var CtxCommit = &Analyzer{
	Name: "ctxcommit",
	Doc: "no channel send, atomic mutation, or field write may be " +
		"reachable in a select arm that won on ctx.Done() — except under " +
		"a nested receive re-poll (historical: PR 4 cancel accounting races)",
	Run: runCtxCommit,
}

func runCtxCommit(p *Pass) error {
	p.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, s := range sel.Body.List {
			cc := s.(*ast.CommClause)
			if !isCtxDoneRecv(p, cc.Comm) {
				continue
			}
			for _, stmt := range cc.Body {
				checkCancelArm(p, stmt)
			}
		}
		return true
	})
	return nil
}

// isCtxDoneRecv reports whether a select comm is a receive from
// context.Context.Done() (directly, or from a variable of type
// <-chan struct{} named like a done channel).
func isCtxDoneRecv(p *Pass, comm ast.Stmt) bool {
	var recvExpr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if ue, ok := s.X.(*ast.UnaryExpr); ok && ue.Op.String() == "<-" {
			recvExpr = ue.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ue, ok := s.Rhs[0].(*ast.UnaryExpr); ok && ue.Op.String() == "<-" {
				recvExpr = ue.X
			}
		}
	}
	if recvExpr == nil {
		return false
	}
	call, ok := ast.Unparen(recvExpr).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Name() != "Done" {
		return false
	}
	// Method Done() on context.Context, or on anything context-shaped.
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	if named := namedOf(recv.Type()); named != nil {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "context" {
			return true
		}
	}
	// Interface method set (context.Context is an interface; the
	// receiver of its methods is the interface type itself).
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" {
		return true
	}
	return false
}

// checkCancelArm walks one statement of a ctx.Done() arm, reporting
// commits. Nested select receive arms are exempt: they model the
// "last-chance poll" idiom where the canceled waiter re-checks whether
// its result arrived after all, and commits only if it actually did.
func checkCancelArm(p *Pass, stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SelectStmt:
			// Scan each arm ourselves so receive arms can be skipped.
			for _, c := range s.Body.List {
				cc := c.(*ast.CommClause)
				if isRecvComm(cc.Comm) {
					continue // the result really arrived; commits are legitimate
				}
				for _, inner := range cc.Body {
					checkCancelArm(p, inner)
				}
			}
			return false
		case *ast.FuncLit:
			return false // runs later, not on the cancel path
		case *ast.SendStmt:
			p.Reportf(s.Pos(), "channel send on the ctx.Done() cancel path; the operation must not commit after cancellation won")
		case *ast.CallExpr:
			if fn := p.CalleeFunc(s); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && isAtomicMutator(fn.Name()) {
				p.Reportf(s.Pos(), "atomic %s on the ctx.Done() cancel path; the operation must not commit after cancellation won", fn.Name())
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if v := fieldVar(p.TypesInfo, sel); v != nil {
						p.Reportf(s.Pos(), "write to field %s on the ctx.Done() cancel path; the operation must not commit after cancellation won", exprString(sel))
					}
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(s.X).(*ast.SelectorExpr); ok {
				if v := fieldVar(p.TypesInfo, sel); v != nil {
					p.Reportf(s.Pos(), "write to field %s on the ctx.Done() cancel path; the operation must not commit after cancellation won", exprString(sel))
				}
			}
		}
		return true
	})
}

// isRecvComm reports whether a select comm is a receive operation.
func isRecvComm(comm ast.Stmt) bool {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		ue, ok := s.X.(*ast.UnaryExpr)
		return ok && ue.Op.String() == "<-"
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			ue, ok := s.Rhs[0].(*ast.UnaryExpr)
			return ok && ue.Op.String() == "<-"
		}
	}
	return false
}

// isAtomicMutator reports whether a sync/atomic function (or method on
// the atomic wrapper types) mutates its target.
func isAtomicMutator(name string) bool {
	switch name {
	case "AddInt32", "AddInt64", "AddUint32", "AddUint64", "AddUintptr",
		"StoreInt32", "StoreInt64", "StoreUint32", "StoreUint64", "StoreUintptr", "StorePointer",
		"SwapInt32", "SwapInt64", "SwapUint32", "SwapUint64", "SwapUintptr", "SwapPointer",
		"CompareAndSwapInt32", "CompareAndSwapInt64", "CompareAndSwapUint32",
		"CompareAndSwapUint64", "CompareAndSwapUintptr", "CompareAndSwapPointer",
		"Add", "Store", "Swap", "CompareAndSwap":
		return true
	}
	return false
}
