package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricPair flags packages that register metric series on an obsv-style
// Registry, declare a Stop/Close/Shutdown lifecycle, and never call
// Unregister: every registered series in a stoppable component must have
// an unregistration path, or the registry accumulates dead series (and
// collides on names when the component restarts).
//
// Bug class: the PR 5 metrics leak — transports registered a dozen
// transport_* series at construction and removed none of them on Close,
// so a scrape after Close read freed state and a reconstructed transport
// failed with duplicate-name registration errors.
var MetricPair = &Analyzer{
	Name: "metricpair",
	Doc: "a package with Stop/Close lifecycle methods that registers " +
		"metrics must also unregister them (historical: PR 5 series " +
		"leaked past transport Close)",
	Run: runMetricPair,
}

func runMetricPair(p *Pass) error {
	type site struct {
		pos  ast.Node
		name string
	}
	var registers []site
	unregisters := false
	lifecycle := false

	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			// A lifecycle method on a type declared in this package.
			if fd.Recv != nil && isLifecycleName(fd.Name.Name) {
				lifecycle = true
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := p.CalleeFunc(call)
				if fn == nil {
					return true
				}
				switch {
				case isRegistryMethod(fn, "Register", "MustRegister"):
					// Calls from within the registry implementation
					// itself (e.g. MustRegister calling Register) are
					// plumbing, not leak sites.
					if owner := ReceiverNamed(fn); owner != nil && sameNamed(owner, enclosingReceiver(p, fd)) {
						return true
					}
					registers = append(registers, site{pos: call, name: fn.Name()})
				case isRegistryMethod(fn, "Unregister"),
					fn.Name() == "UnregisterMetrics",
					strings.HasPrefix(fn.Name(), "unregister"):
					unregisters = true
				}
				return true
			})
		}
	}

	if !lifecycle || unregisters {
		return nil
	}
	for _, s := range registers {
		p.Reportf(s.pos.Pos(), "%s with no Unregister anywhere in a package that has Stop/Close lifecycle methods; metric series will leak past shutdown", s.name)
	}
	return nil
}

func isLifecycleName(name string) bool {
	switch name {
	case "Stop", "Close", "Shutdown":
		return true
	}
	return false
}

// isRegistryMethod reports whether fn is a method with one of the given
// names on a type named "Registry" (any package — obsv here, but the
// shape generalizes to prometheus-style registries).
func isRegistryMethod(fn *types.Func, names ...string) bool {
	named := ReceiverNamed(fn)
	if named == nil || named.Obj().Name() != "Registry" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// enclosingReceiver returns the named receiver type of the method
// declaration fd, or nil.
func enclosingReceiver(p *Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := p.TypesInfo.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return nil
	}
	return namedOf(t)
}

func sameNamed(a, b *types.Named) bool {
	return a != nil && b != nil && a.Obj() == b.Obj()
}
