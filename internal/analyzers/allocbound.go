package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocBound requires that, inside transport packages, a byte-slice
// allocation whose length comes from a variable is dominated by a
// bounds check on that variable in the same function.
//
// Bug class: the PR 3 oversize-allocation — ReadFrame decoded a length
// word off the wire and passed it straight to make([]byte, n), so a
// corrupt or hostile peer holding one TCP connection could make the
// process allocate gigabytes. The fix compares n against MaxPayload
// before allocating; this analyzer makes that ordering mandatory for
// every future codec path.
var AllocBound = &Analyzer{
	Name: "allocbound",
	Doc: "in transport packages, make([]byte, n) with a variable length " +
		"must be preceded by a bounds check on n (historical: PR 3 " +
		"wire-length oversize allocation)",
	Run: runAllocBound,
}

func runAllocBound(p *Pass) error {
	// Scope: packages named "transport" — the layer that turns untrusted
	// bytes into allocations. Elsewhere lengths are locally computed and
	// the check would be noise.
	if p.Pkg.Name() != "transport" {
		return nil
	}

	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAllocBoundFunc(p, fd)
		}
	}
	return nil
}

func checkAllocBoundFunc(p *Pass, fd *ast.FuncDecl) {
	// Collect guard positions: each if-statement whose condition compares
	// some variable with an ordering operator and whose body bails out
	// (return or panic) guards that variable from its position onward.
	type guard struct {
		vars map[*types.Var]bool
		pos  token.Pos
	}
	var guards []guard
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		vars := comparedVars(p.TypesInfo, ifs.Cond)
		if len(vars) == 0 || !bailsOut(ifs.Body) {
			return true
		}
		guards = append(guards, guard{vars: vars, pos: ifs.Pos()})
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if b, ok := p.Callee(call).(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		if len(call.Args) < 2 || !isByteSlice(p.TypesInfo, call.Args[0]) {
			return true
		}
		size := call.Args[1]
		if p.TypesInfo.Types[size].Value != nil {
			return true // constant size
		}
		sizeVars := sizeExprVars(p.TypesInfo, size)
		if sizeVars == nil {
			return true // size derives from len()/cap() — intrinsically bounded
		}
		for v := range sizeVars {
			guarded := false
			for _, g := range guards {
				if g.pos < call.Pos() && g.vars[v] {
					guarded = true
					break
				}
			}
			if !guarded {
				p.Reportf(call.Pos(), "make([]byte, ...) sized by %s without a preceding bounds check on it", v.Name())
			}
		}
		return true
	})
}

// comparedVars returns the variables that appear as an operand of an
// ordering comparison (< <= > >=) anywhere in cond.
func comparedVars(info *types.Info, cond ast.Expr) map[*types.Var]bool {
	vars := make(map[*types.Var]bool)
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok {
							vars[v] = true
						}
					}
					return true
				})
			}
		}
		return true
	})
	if len(vars) == 0 {
		return nil
	}
	return vars
}

// bailsOut reports whether the block unconditionally leaves the
// function: its last statement is a return, a panic call, or an
// os.Exit-style terminator.
func bailsOut(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// sizeExprVars returns the variables a size expression depends on, or
// nil if every variable in it flows from len()/cap() of local data (a
// size that cannot exceed what is already resident).
func sizeExprVars(info *types.Info, size ast.Expr) map[*types.Var]bool {
	vars := make(map[*types.Var]bool)
	unbounded := false
	ast.Inspect(size, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if b, ok := info.Uses[calleeIdent(e)].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				return false // bounded by existing data; skip its operand
			}
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				vars[v] = true
				unbounded = true
			}
		case *ast.SelectorExpr:
			if v := fieldVar(info, e); v != nil {
				vars[v] = true
				unbounded = true
				return false
			}
		}
		return true
	})
	if !unbounded {
		return nil
	}
	return vars
}

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	return id
}

// isByteSlice reports whether the type expression denotes []byte.
func isByteSlice(info *types.Info, typeExpr ast.Expr) bool {
	t := info.Types[typeExpr].Type
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
