// Fixture: the corrected form of the metricpair leak — same lifecycle,
// same registrations, but Close unregisters what was registered, so the
// analyzer stays quiet.
package metricpairok

import (
	"sync/atomic"

	"repro/internal/obsv"
)

type pump struct {
	frames atomic.Int64
	reg    *obsv.Registry
}

func newPump(r *obsv.Registry) (*pump, error) {
	p := &pump{reg: r}
	if err := r.Register(obsv.NewCounterFunc("pump_frames_total", "Frames pumped.", p.frames.Load)); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *pump) Close() error {
	p.reg.Unregister("pump_frames_total")
	return nil
}
