// Fixture: the PR 3 oversize-allocation pattern. A length word decoded
// off the wire reaches make([]byte, n) without being compared against a
// limit first, so one hostile frame header can demand gigabytes. The
// analyzer only fires in packages named "transport" — this fixture is
// one.
package transport

import "encoding/binary"

const maxPayload = 64

// readFrame is the historical bug verbatim: wire length straight into
// the allocation.
func readFrame(hdr []byte) []byte {
	n := binary.BigEndian.Uint32(hdr)
	return make([]byte, n) // want "make\(\[\]byte, \.\.\.\) sized by n without a preceding bounds check"
}

// readFrameChecked is the fixed form: bail out before allocating.
func readFrameChecked(hdr []byte) []byte {
	n := binary.BigEndian.Uint32(hdr)
	if n > maxPayload {
		return nil
	}
	return make([]byte, n)
}

// readFrameTrailer mirrors the real codec: a checked length plus a
// constant trailer is fine, because the guard dominates the use of n.
func readFrameTrailer(hdr []byte) []byte {
	n := binary.BigEndian.Uint32(hdr)
	if n > maxPayload {
		panic("oversized")
	}
	return make([]byte, int(n)+4)
}

// checkAfterAlloc guards too late — the damage is done by the time the
// comparison runs.
func checkAfterAlloc(hdr []byte) []byte {
	n := binary.BigEndian.Uint32(hdr)
	buf := make([]byte, n) // want "sized by n without a preceding bounds check"
	if n > maxPayload {
		return nil
	}
	return buf
}

// copySized allocations bounded by len() of resident data are
// intrinsically safe and exempt.
func copySized(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// fixedSize constant-size allocations are exempt.
func fixedSize() []byte {
	return make([]byte, maxPayload)
}
