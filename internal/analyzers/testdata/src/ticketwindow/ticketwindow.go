// Fixture: the pipeline-window commit pairing (DESIGN.md §12). A gate
// couples a ticket counter with an entered flag: committing a ticket
// without marking the slot lets the window double-enter a lane or
// orphan a wave, so any function that writes tickets must also write
// entered. Clearing entered alone (the release side) is legal.
package ticketwindow

type gate struct {
	tickets uint64
	entered bool
}

type window struct {
	g gate
}

// enterPaired is the correct commit: ticket and slot move together.
func enterPaired(g *gate) {
	g.tickets++
	g.entered = true
}

// reapRelease is the legal release side: the flag clears, the counter
// (the monotone ticket source) stands.
func reapRelease(g *gate) {
	g.entered = false
}

// enterOrphaned commits a ticket and forgets the slot — the bug class.
func enterOrphaned(g *gate) {
	g.tickets++ // want "ticket committed \(write to g\.tickets\) with no write to the entered flag in enterOrphaned"
}

// enterAssigned is the same bug through a plain assignment.
func enterAssigned(g *gate) {
	g.tickets = g.tickets + 1 // want "ticket committed \(write to g\.tickets\) with no write to the entered flag in enterAssigned"
}

// enterNested reaches the gate through another struct; the shape check
// follows the selector, not the variable name.
func enterNested(w *window) {
	w.g.tickets += 1 // want "ticket committed \(write to w\.g\.tickets\) with no write to the entered flag in enterNested"
}

// loneCounter has a tickets field but no entered flag: not a gate, not
// our business.
type loneCounter struct {
	tickets uint64
}

func sellTickets(c *loneCounter) {
	c.tickets++
}
