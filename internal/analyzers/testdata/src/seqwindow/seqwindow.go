// Fixture: the frame-validation discipline (DESIGN.md §13). A receive
// path — a function handed a wire frame (Message/UpMessage) — that
// adopts the frame into a neighbor-copy cell of a window-guarded struct
// (one carrying a pending-sighting slot) must run its sequence-window
// check (a check*/admit* call) in the same function. Adoption without
// the check is the forged-frame hole: one well-formed lie steering a
// correct member's phase.
package seqwindow

// Message is a wire frame (name-matched, like the runtime's).
type Message struct {
	SN, CP, PH int
}

// UpMessage is the convergecast frame.
type UpMessage struct {
	SN, PH int
}

// node is window-guarded receive state: neighbor copies plus the
// pending-sighting slot.
type node struct {
	snL, cpL, phL        int
	pending              Message
	havePending          bool
	kidSN, kidPH, kidAck int
}

func (n *node) checkWindow(m Message) bool { return m.SN == n.snL || m.SN == n.snL+1 }

func (n *node) admitFrame(m Message) bool { return n.checkWindow(m) }

// onStateChecked is the correct receive path: the window is consulted
// before adoption.
func onStateChecked(n *node, m Message) {
	if !n.admitFrame(m) {
		return
	}
	n.snL, n.cpL, n.phL = m.SN, m.CP, m.PH
}

// onStateUnchecked adopts the frame blind — the forged-frame hole.
func onStateUnchecked(n *node, m Message) {
	n.snL = m.SN // want "frame adopted \(write to n\.snL\) with no sequence-window check in onStateUnchecked"
	n.phL = m.PH // want "frame adopted \(write to n\.phL\) with no sequence-window check in onStateUnchecked"
}

// onUpUnchecked is the same bug on the convergecast side.
func onUpUnchecked(n *node, m UpMessage) {
	n.kidSN = m.SN // want "frame adopted \(write to n\.kidSN\) with no sequence-window check in onUpUnchecked"
}

// onUpChecked consults the per-kid window first.
func (n *node) onUpChecked(m UpMessage) {
	if !n.checkUpWindow(m) {
		return
	}
	n.kidSN, n.kidPH = m.SN, m.PH
}

func (n *node) checkUpWindow(m UpMessage) bool { return m.SN >= n.kidSN }

// plain has the copy-field names but no pending slot: not a
// window-guarded receive state, not our business.
type plain struct {
	snL, phL int
}

func mirror(s *plain, m Message) {
	s.snL, s.phL = m.SN, m.PH
}

// craft builds a frame without adopting one; writes to the frame itself
// are not copy-cell adoptions.
func craft(n *node, m Message) Message {
	m.SN = n.snL
	return m
}
