// Fixture: the PR 5 metrics-leak pattern. A component with a Close
// lifecycle registers series on the obsv registry and never removes
// them, so scrapes after Close read dead state and a rebuilt component
// collides on the series names.
package metricpair

import (
	"sync/atomic"

	"repro/internal/obsv"
)

type pump struct {
	frames atomic.Int64
	closed atomic.Bool
}

func newPump(r *obsv.Registry) (*pump, error) {
	p := &pump{}
	err := r.Register(obsv.NewCounterFunc("pump_frames_total", "Frames pumped.", p.frames.Load)) // want "Register with no Unregister anywhere"
	if err != nil {
		return nil, err
	}
	r.MustRegister(obsv.NewGaugeFunc("pump_up", "Whether the pump is running.", func() int64 { return 1 })) // want "MustRegister with no Unregister anywhere"
	return p, nil
}

// Close tears the pump down but forgets the registry — the bug.
func (p *pump) Close() error {
	p.closed.Store(true)
	return nil
}
