// Fixture: impurity inside guarded.Action steps. The engine schedules
// Guard/Body atomically and replays runs from a seed; wall-clock reads,
// global math/rand draws, and channel operations inside a step all break
// that contract.
package steppure

import (
	"math/rand"
	"time"

	"repro/internal/guarded"
)

type state struct {
	x       int
	pending chan int
}

func build(s *state, rng *rand.Rand) *guarded.Program {
	p := guarded.NewProgram()
	p.Add(guarded.Action{
		Name: "leaky-guard",
		Proc: 0,
		Guard: func() bool {
			return time.Now().Unix()%2 == 0 // want "time\.Now in a guarded\.Action Guard/Body"
		},
		Body: func() func() {
			return func() { s.x++ }
		},
	})
	p.Add(guarded.Action{
		Name:  "leaky-body",
		Proc:  0,
		Guard: func() bool { return s.x > 0 },
		Body: func() func() {
			if rand.Intn(2) == 0 { // want "global rand\.Intn in a guarded\.Action Guard/Body"
				return nil
			}
			v := <-s.pending // want "channel receive in a guarded\.Action Guard/Body"
			return func() { s.x = v }
		},
	})
	p.Add(guarded.Action{
		Name:  "named-step",
		Proc:  1,
		Guard: func() bool { return true },
		Body: func() func() {
			return blockingStep(s) // impurity one call deep is still caught
		},
	})
	p.Add(guarded.Action{
		Name:  "clean",
		Proc:  1,
		Guard: func() bool { return s.x < 10 },
		Body: func() func() {
			// Owned generators threaded in explicitly are fine.
			n := rng.Intn(4)
			return func() { s.x += n }
		},
	})
	return p
}

// blockingStep is reachable from a Body, so its sleep is a finding.
func blockingStep(s *state) func() {
	time.Sleep(time.Millisecond) // want "time\.Sleep in a guarded\.Action Guard/Body"
	return func() { s.x++ }
}
