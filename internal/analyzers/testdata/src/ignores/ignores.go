// Fixture for the //barriervet:ignore directive contract, exercised via
// atomicmix: reasoned directives suppress (inline or standalone above),
// a bare directive is a finding, an unused directive is a finding.
package ignores

import "sync/atomic"

type s struct {
	n uint64
}

func (x *s) inc() {
	atomic.AddUint64(&x.n, 1)
}

func (x *s) readInlineSuppressed() uint64 {
	return x.n //barriervet:ignore test-only reader, no concurrent writer at this point
}

func (x *s) readAboveSuppressed() uint64 {
	//barriervet:ignore snapshot is taken after all writers have joined
	return x.n
}

//barriervet:ignore
func (x *s) bare() {}

//barriervet:ignore this directive suppresses nothing and must be flagged
func (x *s) unused() {}
