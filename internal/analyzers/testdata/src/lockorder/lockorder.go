// Fixture: a classic AB/BA lock inversion across two lock classes,
// including one acquisition hidden behind a call, plus consistent-order
// paths that must stay quiet.
package lockorder

import "sync"

type registry struct {
	mu    sync.Mutex
	items map[string]int
}

type conn struct {
	mu    sync.Mutex
	inUse bool
}

// attach locks registry then conn — this establishes one order.
func attach(r *registry, c *conn) {
	r.mu.Lock()
	c.mu.Lock() // want "lock order inversion"
	c.inUse = true
	r.items["c"]++
	c.mu.Unlock()
	r.mu.Unlock()
}

// detach locks conn then registry — the opposite order: deadlock bait.
func detach(r *registry, c *conn) {
	c.mu.Lock()
	r.mu.Lock()
	delete(r.items, "c")
	c.inUse = false
	r.mu.Unlock()
	c.mu.Unlock()
}

// audit repeats the attach order through a call — consistent, no new
// finding, but exercises the call-graph propagation.
func audit(r *registry, c *conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	touch(c)
}

func touch(c *conn) {
	c.mu.Lock()
	c.inUse = true
	c.mu.Unlock()
}

// solo takes one lock at a time — never part of any edge.
func solo(r *registry) {
	r.mu.Lock()
	r.items["x"] = 1
	r.mu.Unlock()
}
