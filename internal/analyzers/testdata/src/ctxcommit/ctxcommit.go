// Fixture: the PR 4 cancel-race pattern. A waiter that loses to
// cancellation must not commit state — no sends, no atomic adds, no
// field writes — in the ctx.Done() arm. The one exemption is the
// last-chance re-poll: a nested select whose receive arm fires only if
// the result genuinely arrived after all.
package ctxcommit

import (
	"context"
	"sync/atomic"
)

type gate struct {
	tickets int
	entered bool
	wake    chan int
}

// waitLeaky is the historical bug: cancellation wins, yet the waiter
// still zeroes shared accounting and pushes a ticket.
func (g *gate) waitLeaky(ctx context.Context, send chan<- int) error {
	select {
	case send <- 1:
		g.entered = true
	case <-ctx.Done():
		g.tickets = 0 // want "write to field g\.tickets on the ctx\.Done\(\) cancel path"
		send <- 0     // want "channel send on the ctx\.Done\(\) cancel path"
		return ctx.Err()
	}
	return nil
}

// waitAtomicLeaky commits through sync/atomic instead — same bug.
func waitAtomicLeaky(ctx context.Context, n *uint64, ch chan int) error {
	select {
	case ch <- 1:
	case <-ctx.Done():
		atomic.AddUint64(n, 1) // want "atomic AddUint64 on the ctx\.Done\(\) cancel path"
		return ctx.Err()
	}
	return nil
}

// waitLastChance is the sanctioned idiom: on cancellation, re-poll the
// wake channel non-blockingly; if the result arrived, committing is
// correct — the operation did happen.
func (g *gate) waitLastChance(ctx context.Context) (int, error) {
	select {
	case r := <-g.wake:
		g.entered = true
		return r, nil
	case <-ctx.Done():
		select {
		case r := <-g.wake:
			g.entered = true
			return r, nil
		default:
		}
		return 0, ctx.Err()
	}
}

// waitClean only reads and returns on the cancel path — fine.
func (g *gate) waitClean(ctx context.Context) (int, error) {
	select {
	case r := <-g.wake:
		return r, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}
