// Fixture: the PR 4 stats-tearing pattern. Counters written with
// sync/atomic from protocol goroutines, then read plainly in a snapshot
// method — the exact mixed-access bug the seqlock fix removed.
package atomicmix

import "sync/atomic"

type stats struct {
	frames uint64
	drops  uint64
	label  string
}

func (s *stats) onFrame() {
	atomic.AddUint64(&s.frames, 1)
}

func (s *stats) onDrop() {
	atomic.AddUint64(&s.drops, 1)
}

// Snapshot is the historical bug: plain loads of atomically-written
// counters tear on 32-bit platforms and are racy everywhere.
func (s *stats) Snapshot() (uint64, uint64) {
	return s.frames, s.drops // want "plain access of s\.frames" "plain access of s\.drops"
}

// Reset is the write-side variant of the same mistake.
func (s *stats) Reset() {
	s.frames = 0 // want "plain access of s\.frames"
	atomic.StoreUint64(&s.drops, 0)
}

// Label is untouched by sync/atomic and stays unrestricted.
func (s *stats) Label() string {
	return s.label
}

// AtomicSnapshot is the correct form: atomic on both sides.
func (s *stats) AtomicSnapshot() (uint64, uint64) {
	return atomic.LoadUint64(&s.frames), atomic.LoadUint64(&s.drops)
}

// Local variables are covered too, not just struct fields.
func localCounter() uint64 {
	var n uint64
	done := make(chan struct{})
	go func() {
		atomic.AddUint64(&n, 1)
		close(done)
	}()
	<-done
	return n // want "plain access of n"
}
