package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder detects inconsistent mutex acquisition order across the
// whole program: if one code path locks A then B while another locks B
// then A (directly or through calls), the two can deadlock.
//
// Mutexes are identified structurally — by (owning named type, field
// name) for field mutexes and by package-qualified name for variable
// mutexes — so two instances of the same struct count as the same lock
// class, which is exactly the granularity at which ordering rules are
// stated in this codebase (mux before group, runtime before transport).
// The analysis is syntactic and intra-statement-ordered: each function
// body is walked in source order tracking the held set (deferred
// unlocks hold to function end), per-function acquire summaries are
// propagated over the call graph to a fixpoint, and an edge h -> k is
// recorded whenever k is acquired (locally or via a call) with h held.
// A cycle among edges is a potential deadlock.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "mutex acquisition order must be globally consistent: taking " +
		"lock class A while holding B in one path and B while holding A " +
		"in another is a deadlock waiting for the right interleaving",
	RunProgram: runLockOrder,
}

// lockKey names a lock class.
type lockKey string

// lockEdge is "to acquired while from held".
type lockEdge struct{ from, to lockKey }

func runLockOrder(prog *Program) error {
	// Collect every function body in the program, keyed by object, so
	// acquire summaries can flow across package boundaries.
	type funcInfo struct {
		pass *Pass
		decl *ast.FuncDecl
	}
	funcs := make(map[*types.Func]*funcInfo)
	for _, p := range prog.Packages {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					funcs[fn] = &funcInfo{pass: p, decl: fd}
				}
			}
		}
	}

	// Fixpoint: acquires(f) = locks taken directly in f, plus
	// acquires(g) for every g statically called from f.
	acquires := make(map[*types.Func]map[lockKey]bool)
	for fn := range funcs {
		acquires[fn] = make(map[lockKey]bool)
	}
	for changed := true; changed; {
		changed = false
		for fn, fi := range funcs {
			ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if k, locking := lockCallKey(fi.pass, call); k != "" && locking {
					if !acquires[fn][k] {
						acquires[fn][k] = true
						changed = true
					}
				} else if callee := fi.pass.CalleeFunc(call); callee != nil {
					for k := range acquires[callee] {
						if !acquires[fn][k] {
							acquires[fn][k] = true
							changed = true
						}
					}
				}
				return true
			})
		}
	}

	// Edge collection: simulate each body in source order.
	edges := make(map[lockEdge]token.Pos)
	for fn, fi := range funcs {
		_ = fn
		held := make(map[lockKey]int)
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncLit:
				return false // separate goroutine or deferred context; not this path
			case *ast.DeferStmt:
				// defer mu.Unlock() keeps mu held to function end: do
				// not process the unlock. Other deferred calls are
				// skipped too (they run after the body's lock pattern).
				return false
			case *ast.CallExpr:
				if k, locking := lockCallKey(fi.pass, s); k != "" {
					if locking {
						for h := range held {
							if h != k {
								addEdge(edges, lockEdge{from: h, to: k}, s.Pos())
							}
						}
						held[k]++
					} else if held[k] > 0 {
						held[k]--
						if held[k] == 0 {
							delete(held, k)
						}
					}
					return true
				}
				if callee := fi.pass.CalleeFunc(s); callee != nil {
					for k := range acquires[callee] {
						for h := range held {
							if h != k {
								addEdge(edges, lockEdge{from: h, to: k}, s.Pos())
							}
						}
					}
				}
			}
			return true
		}
		ast.Inspect(fi.decl.Body, walk)
	}

	// Cycle detection over the edge graph: report every ordered pair of
	// lock classes reachable from each other.
	adj := make(map[lockKey][]lockKey)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reach := func(from, to lockKey) bool {
		seen := map[lockKey]bool{}
		var dfs func(k lockKey) bool
		dfs = func(k lockKey) bool {
			if k == to {
				return true
			}
			if seen[k] {
				return false
			}
			seen[k] = true
			for _, next := range adj[k] {
				if dfs(next) {
					return true
				}
			}
			return false
		}
		return dfs(from)
	}

	// Report each inverted pair once, at the earliest position among its
	// edges, so the diagnostic site is deterministic.
	type inversion struct {
		pos token.Pos
		e   lockEdge
	}
	byPair := make(map[string]inversion)
	for e, pos := range edges {
		if !reach(e.to, e.from) {
			continue
		}
		a, b := string(e.from), string(e.to)
		pairKey := a + "|" + b
		if a > b {
			pairKey = b + "|" + a
		}
		if prev, ok := byPair[pairKey]; !ok || pos < prev.pos {
			byPair[pairKey] = inversion{pos: pos, e: e}
		}
	}
	var diags []Diagnostic
	for _, inv := range byPair {
		diags = append(diags, Diagnostic{
			Analyzer: "lockorder",
			Pos:      prog.Fset.Position(inv.pos),
			Message: fmt.Sprintf("lock order inversion: %s acquired while holding %s here, but the opposite order exists elsewhere; pick one global order",
				inv.e.to, inv.e.from),
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		return diags[i].Pos.Filename < diags[j].Pos.Filename ||
			diags[i].Pos.Filename == diags[j].Pos.Filename && diags[i].Pos.Line < diags[j].Pos.Line
	})
	if len(prog.Packages) > 0 {
		for _, d := range diags {
			prog.Packages[0].report(d)
		}
	}
	return nil
}

// lockCallKey classifies a call as a mutex Lock/RLock (locking=true) or
// Unlock/RUnlock (locking=false) and returns the lock-class key, or ""
// if the call is not a mutex operation.
func lockCallKey(p *Pass, call *ast.CallExpr) (key lockKey, locking bool) {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
		locking = false
	default:
		return "", false
	}
	recv := ReceiverNamed(fn)
	if recv == nil {
		return "", false
	}
	switch recv.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", false
	}

	// The expression the method is invoked on: call.Fun is a selector
	// mu.Lock / x.mu.Lock / pkgvar.Lock.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	target := ast.Unparen(sel.X)
	switch t := target.(type) {
	case *ast.SelectorExpr:
		// x.mu: key on (type of x, field name).
		if v := fieldVar(p.TypesInfo, t); v != nil {
			if owner := namedOf(p.TypesInfo.Types[t.X].Type); owner != nil {
				return lockKey(qualifiedName(owner) + "." + v.Name()), locking
			}
			return lockKey(p.Pkg.Path() + ".<anon>." + v.Name()), locking
		}
	case *ast.Ident:
		obj := p.TypesInfo.Uses[t]
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				// Package-level mutex variable.
				return lockKey(v.Pkg().Path() + "." + v.Name()), locking
			}
			// Local variable or parameter: usually a *sync.Mutex handed
			// in, or a local guard. Key on the declared type if it is a
			// named wrapper; otherwise skip — a purely local mutex
			// cannot participate in cross-path inversions we can name.
			if owner := namedOf(v.Type()); owner != nil && owner.Obj().Pkg() != nil &&
				owner.Obj().Pkg().Path() != "sync" {
				return lockKey(qualifiedName(owner) + ".(self)"), locking
			}
		}
	}
	return "", false
}

// addEdge records the earliest position at which an edge is observed,
// so diagnostics are stable regardless of traversal order.
func addEdge(edges map[lockEdge]token.Pos, e lockEdge, pos token.Pos) {
	if prev, ok := edges[e]; !ok || pos < prev {
		edges[e] = pos
	}
}

func qualifiedName(n *types.Named) string {
	if pkg := n.Obj().Pkg(); pkg != nil {
		return pkg.Path() + "." + n.Obj().Name()
	}
	return n.Obj().Name()
}
