package analyzers

import (
	"go/ast"
	"go/types"
)

// AtomicMix flags plain (non-atomic) reads or writes of any variable
// that is elsewhere passed by address to a sync/atomic operation.
//
// Bug class: the PR 4 Stats() tearing — counters written with
// atomic.AddUint64 from protocol goroutines were read with plain loads
// in the stats snapshot, producing torn values under -race and, worse,
// silently stale values without it. The fix was a seqlock; this analyzer
// keeps the mixed-access pattern from coming back anywhere. A variable
// is either fully atomic or fully plain.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "a variable accessed via sync/atomic must never also be accessed " +
		"plainly (historical: PR 4 stats counter tearing, fixed by seqlock)",
	Run: runAtomicMix,
}

// atomicFuncs are the sync/atomic package functions whose first argument
// is the address of the guarded variable.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicMix(p *Pass) error {
	// Pass 1: find every variable whose address reaches a sync/atomic
	// call, and remember the exact AST expressions used in those calls
	// so pass 2 does not flag the sanctioned uses themselves.
	atomicVars := make(map[*types.Var]bool)
	sanctioned := make(map[ast.Node]bool)

	p.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFuncs[fn.Name()] {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || addr.Op.String() != "&" {
			return true
		}
		target := ast.Unparen(addr.X)
		if v := exprVar(p.TypesInfo, target); v != nil {
			atomicVars[v] = true
			markSanctioned(sanctioned, target)
		}
		return true
	})

	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: every other appearance of those variables is a plain
	// access — report it. Taking the address for a non-atomic purpose
	// (aliasing) is just as unsafe as a direct load, so &x.f outside an
	// atomic call is flagged too via the selector underneath it.
	p.Inspect(func(n ast.Node) bool {
		if sanctioned[n] {
			return false
		}
		switch e := n.(type) {
		case *ast.Ident:
			if v, ok := p.TypesInfo.Uses[e].(*types.Var); ok && atomicVars[v] && !v.IsField() {
				p.Reportf(e.Pos(), "plain access of %s, which is accessed with sync/atomic elsewhere", e.Name)
			}
		case *ast.SelectorExpr:
			if v := fieldVar(p.TypesInfo, e); v != nil && atomicVars[v] {
				p.Reportf(e.Pos(), "plain access of %s, which is accessed with sync/atomic elsewhere", exprString(e))
				return false // don't double-report the embedded idents
			}
		}
		return true
	})
	return nil
}

// exprVar resolves an lvalue expression to the variable it denotes: a
// plain identifier to its *types.Var, a field selector to the field's
// *types.Var. Index and dereference expressions return nil — element
// aliasing is beyond this analyzer.
func exprVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		return fieldVar(info, e)
	}
	return nil
}

// fieldVar returns the struct-field variable a selector denotes, or nil
// for method selections and package-qualified identifiers.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// markSanctioned marks the expression and its children as a permitted
// appearance of an atomic variable (inside the atomic call itself).
func markSanctioned(m map[ast.Node]bool, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if n != nil {
			m[n] = true
		}
		return true
	})
}

// exprString renders a selector chain for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "<expr>"
}
