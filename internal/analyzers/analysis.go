// Package analyzers is barriervet: a suite of static analyzers encoding
// the protocol and concurrency invariants this codebase depends on, so
// that the bug classes the repo has already paid for once — seqlock
// tearing from mixed atomic/plain access, alloc-before-oversize-check in
// the wire codec, state commits on canceled Await paths, metric series
// leaked past a Stop/Close, nondeterminism inside guarded engine steps,
// inconsistent lock order — are rejected at review time instead of found
// by the fuzzer at soak time.
//
// The package is a deliberately small reimplementation of the
// golang.org/x/tools go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// on top of the standard library alone: packages are enumerated with
// `go list -deps -export -json`, parsed with go/parser, and type-checked
// with go/types against the toolchain's export data, so the suite needs
// no module downloads and runs anywhere the go command does. Each
// analyzer sees one fully type-checked package per Pass; analyzers that
// need a whole-program view (lock ordering across the runtime/transport/
// groups boundary) implement RunProgram instead.
//
// False positives are suppressed in the source with
//
//	//barriervet:ignore <reason>
//
// on the flagged line or alone on the line above it. The reason is
// mandatory — a bare directive is itself a finding — and so is use: a
// directive that suppresses nothing is reported, which keeps stale
// suppressions from outliving the code they excused.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker. Exactly one of Run and
// RunProgram must be set: Run is invoked once per type-checked package,
// RunProgram once with every loaded package (for cross-package
// invariants).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description printed by -list: the
	// invariant, and the historical bug class that motivates it.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
	// RunProgram analyzes the whole loaded program.
	RunProgram func(*Program) error
}

// A Pass provides one analyzer with one type-checked package and a sink
// for its diagnostics — the go/analysis shape, minus facts.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Program is the whole-program view handed to RunProgram analyzers:
// every loaded package, sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Pass
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file of the pass in source order, calling fn as
// ast.Inspect does.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Callee resolves the object a call expression invokes: a *types.Func
// for static function and method calls, a *types.Var for calls through
// function-valued fields or variables, a *types.Builtin for builtins,
// nil for indirect calls through arbitrary expressions.
func (p *Pass) Callee(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return p.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// CalleeFunc is Callee narrowed to *types.Func (nil otherwise).
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	fn, _ := p.Callee(call).(*types.Func)
	return fn
}

// IsPkgCall reports whether call statically invokes a package-level
// function of the package with the given import path whose name is one
// of names.
func (p *Pass) IsPkgCall(call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// ReceiverNamed returns the named type of a method's receiver (through
// one pointer), or nil for functions and methods on unnamed receivers.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// namedOf unwraps pointers down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// enclosingFuncDecl returns the function declaration whose body contains
// pos, or nil.
func enclosingFuncDecl(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}
