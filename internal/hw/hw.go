// Package hw realizes the paper's hardware-implementation claim (Sections
// 1 and 8): "our program is concise and can be implemented as a simple
// table lookup … the state maintained at each process is at most O(log N)."
//
// The package compiles the leader and follower transition functions of
// package core into flat lookup tables indexed by packed control-position
// pairs, and packs a process's entire protocol state — sequence number in
// {0..K−1, ⊥, ⊤}, control position, phase — into a single machine word
// with ⌈log₂(K+2)⌉ + 3 + ⌈log₂ n⌉ bits, exactly the O(log N) the paper
// states. Exhaustive tests check the tables against the reference
// functions over the full input domain.
package hw

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/tokenring"
)

// entry is one row of a transition table: the next control position, how
// the phase is obtained, and the event outcome, packed into one byte:
//
//	bits 0-2: next control position
//	bits 3-4: phase source (0 = keep own, 1 = copy predecessor's, 2 = increment own)
//	bits 5-6: outcome (core.Outcome)
type entry uint8

const (
	phaseKeep = iota
	phaseCopy
	phaseIncrement
)

func pack(cp core.CP, phaseSrc int, out core.Outcome) entry {
	return entry(uint8(cp) | uint8(phaseSrc)<<3 | uint8(out)<<5)
}

func (e entry) cp() core.CP           { return core.CP(e & 0x7) }
func (e entry) phaseSrc() int         { return int(e>>3) & 0x3 }
func (e entry) outcome() core.Outcome { return core.Outcome(e >> 5) }

// Tables is the compiled transition unit. Follower and Leader are indexed
// by own-cp × other-cp (5×5 = 25 entries each — 50 bytes of combinational
// "ROM" in a hardware realization). The leader table additionally needs
// the phase-equality bit, so it is indexed by (own-cp × other-cp × phEq).
type Tables struct {
	Follower [core.NumCP * core.NumCP]entry
	Leader   [core.NumCP * core.NumCP * 2]entry
}

// Compile builds the tables from the reference transition functions by
// probing them with phase values chosen so that every phase source —
// keep own, copy the other's, increment own — is distinguishable: own = 0,
// other = 2, increment = 1, under a probe modulus of 4. The compiled
// tables are modulus-independent (phase arithmetic happens at lookup
// time).
func Compile() *Tables {
	const nPhases = 4
	t := &Tables{}
	const own, other = 0, 2 // probe phases: own, other and own+1 all distinct
	for cp := 0; cp < core.NumCP; cp++ {
		for cpPrev := 0; cpPrev < core.NumCP; cpPrev++ {
			newCP, newPH, out := core.FollowerUpdate(core.CP(cp), own, core.CP(cpPrev), other)
			src := phaseKeep
			switch newPH {
			case other:
				src = phaseCopy
			case own:
				src = phaseKeep
			default:
				panic("hw: follower produced a phase from nowhere")
			}

			t.Follower[cp*core.NumCP+cpPrev] = pack(newCP, src, out)

			for _, phEq := range []bool{false, true} {
				probeN := other
				if phEq {
					probeN = own
				}
				newCP, newPH, out := core.LeaderUpdate(core.CP(cp), own, core.CP(cpPrev), probeN, nPhases)
				src := phaseKeep
				switch newPH {
				case own:
					src = phaseKeep
				case (own + 1) % nPhases:
					src = phaseIncrement
				case probeN:
					src = phaseCopy
				default:
					panic("hw: leader produced a phase from nowhere")
				}
				idx := (cp*core.NumCP+cpPrev)*2 + boolBit(phEq)
				t.Leader[idx] = pack(newCP, src, out)
			}
		}
	}
	return t
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// FollowerStep evaluates the follower transition by table lookup.
func (t *Tables) FollowerStep(cp core.CP, ph int, cpPrev core.CP, phPrev, nPhases int) (core.CP, int, core.Outcome) {
	e := t.Follower[int(cp)*core.NumCP+int(cpPrev)]
	return e.cp(), t.phase(e, ph, phPrev, nPhases), e.outcome()
}

// LeaderStep evaluates the leader transition by table lookup.
func (t *Tables) LeaderStep(cp core.CP, ph int, cpN core.CP, phN, nPhases int) (core.CP, int, core.Outcome) {
	idx := (int(cp)*core.NumCP+int(cpN))*2 + boolBit(ph == phN)
	e := t.Leader[idx]
	return e.cp(), t.phase(e, ph, phN, nPhases), e.outcome()
}

func (t *Tables) phase(e entry, own, other, nPhases int) int {
	switch e.phaseSrc() {
	case phaseCopy:
		return other
	case phaseIncrement:
		return core.NextPhase(own, nPhases)
	default:
		return own
	}
}

// Word is a process's complete protocol state packed into one machine
// word: the paper's O(log N) state claim made concrete.
type Word uint32

// Layout parameterizes the packing for a given K (sequence modulus) and
// phase modulus.
type Layout struct {
	K       int
	NPhases int

	snBits int
	cpBits int
	phBits int
}

// NewLayout computes the bit layout. Total bits must fit a Word.
func NewLayout(k, nPhases int) (Layout, error) {
	l := Layout{
		K:       k,
		NPhases: nPhases,
		snBits:  bits.Len(uint(k + 1)), // values 0..K+1 (⊥ = K, ⊤ = K+1)
		cpBits:  3,                     // 5 control positions
		phBits:  bits.Len(uint(nPhases - 1)),
	}
	if l.phBits == 0 {
		l.phBits = 1
	}
	if total := l.snBits + l.cpBits + l.phBits; total > 32 {
		return Layout{}, fmt.Errorf("hw: state needs %d bits, exceeds the word", total)
	}
	return l, nil
}

// Bits returns the number of state bits per process: ⌈log₂(K+2)⌉ + 3 +
// ⌈log₂ nPhases⌉, which is O(log N) for K = N+1.
func (l Layout) Bits() int { return l.snBits + l.cpBits + l.phBits }

// Pack encodes (sn, cp, ph) into a Word.
func (l Layout) Pack(sn tokenring.SN, cp core.CP, ph int) Word {
	var snIdx uint32
	switch sn {
	case tokenring.Bot:
		snIdx = uint32(l.K)
	case tokenring.Top:
		snIdx = uint32(l.K + 1)
	default:
		snIdx = uint32(sn)
	}
	w := snIdx
	w = w<<l.cpBits | uint32(cp)
	w = w<<l.phBits | uint32(ph)
	return Word(w)
}

// Unpack decodes a Word back into (sn, cp, ph).
func (l Layout) Unpack(w Word) (tokenring.SN, core.CP, int) {
	ph := int(uint32(w) & (1<<l.phBits - 1))
	w >>= Word(l.phBits)
	cp := core.CP(uint32(w) & (1<<l.cpBits - 1))
	w >>= Word(l.cpBits)
	snIdx := int(w)
	var sn tokenring.SN
	switch snIdx {
	case l.K:
		sn = tokenring.Bot
	case l.K + 1:
		sn = tokenring.Top
	default:
		sn = tokenring.SN(snIdx)
	}
	return sn, cp, ph
}
