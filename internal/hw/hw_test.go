package hw

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/tokenring"
)

// The compiled tables must agree with the reference transition functions
// over the entire input domain, for several phase moduli.
func TestTablesMatchReferenceExhaustively(t *testing.T) {
	tables := Compile()
	for _, nPhases := range []int{2, 3, 4, 7, 16} {
		for cp := 0; cp < core.NumCP; cp++ {
			for cpO := 0; cpO < core.NumCP; cpO++ {
				for ph := 0; ph < nPhases; ph++ {
					for phO := 0; phO < nPhases; phO++ {
						wantCP, wantPH, wantOut := core.FollowerUpdate(core.CP(cp), ph, core.CP(cpO), phO)
						gotCP, gotPH, gotOut := tables.FollowerStep(core.CP(cp), ph, core.CP(cpO), phO, nPhases)
						if gotCP != wantCP || gotPH != wantPH || gotOut != wantOut {
							t.Fatalf("follower(%v,%d,%v,%d) table=(%v,%d,%d) ref=(%v,%d,%d)",
								core.CP(cp), ph, core.CP(cpO), phO,
								gotCP, gotPH, gotOut, wantCP, wantPH, wantOut)
						}

						wantCP, wantPH, wantOut = core.LeaderUpdate(core.CP(cp), ph, core.CP(cpO), phO, nPhases)
						gotCP, gotPH, gotOut = tables.LeaderStep(core.CP(cp), ph, core.CP(cpO), phO, nPhases)
						if gotCP != wantCP || gotPH != wantPH || gotOut != wantOut {
							t.Fatalf("leader(%v,%d,%v,%d,%d) table=(%v,%d,%d) ref=(%v,%d,%d)",
								core.CP(cp), ph, core.CP(cpO), phO, nPhases,
								gotCP, gotPH, gotOut, wantCP, wantPH, wantOut)
						}
					}
				}
			}
		}
	}
}

// The table "ROM" is as small as the paper promises: 75 bytes total.
func TestTableSize(t *testing.T) {
	tables := Compile()
	total := len(tables.Follower) + len(tables.Leader)
	if total != 25+50 {
		t.Errorf("table ROM is %d entries, want 75", total)
	}
}

func TestLayoutBits(t *testing.T) {
	// The paper: 32 processes → K = N+1 = 32, a handful of phases.
	l, err := NewLayout(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	// sn ∈ {0..33} → 6 bits; cp → 3 bits; ph ∈ {0..7} → 3 bits.
	if l.Bits() != 12 {
		t.Errorf("state bits = %d, want 12", l.Bits())
	}
	// O(log N): doubling the process count adds one sequence bit.
	l2, err := NewLayout(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Bits() != l.Bits()+1 {
		t.Errorf("64-process layout uses %d bits, want %d", l2.Bits(), l.Bits()+1)
	}
}

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(1<<30, 1<<20); err == nil {
		t.Error("oversized layout should be rejected")
	}
}

// Property: Pack/Unpack round-trips over the full domain.
func TestPackUnpackRoundTrip(t *testing.T) {
	l, err := NewLayout(33, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(snRaw uint8, cpRaw uint8, phRaw uint8) bool {
		var sn tokenring.SN
		switch v := int(snRaw) % 35; v {
		case 33:
			sn = tokenring.Bot
		case 34:
			sn = tokenring.Top
		default:
			sn = tokenring.SN(v)
		}
		cp := core.CP(cpRaw % uint8(core.NumCP))
		ph := int(phRaw % 8)
		gotSN, gotCP, gotPH := l.Unpack(l.Pack(sn, cp, ph))
		return gotSN == sn && gotCP == cp && gotPH == ph
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Exhaustive round-trip, small layout.
func TestPackUnpackExhaustive(t *testing.T) {
	l, err := NewLayout(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	sns := []tokenring.SN{0, 1, 2, 3, 4, tokenring.Bot, tokenring.Top}
	for _, sn := range sns {
		for cp := 0; cp < core.NumCP; cp++ {
			for ph := 0; ph < 3; ph++ {
				g1, g2, g3 := l.Unpack(l.Pack(sn, core.CP(cp), ph))
				if g1 != sn || g2 != core.CP(cp) || g3 != ph {
					t.Fatalf("round trip (%v,%v,%d) → (%v,%v,%d)", sn, core.CP(cp), ph, g1, g2, g3)
				}
			}
		}
	}
}
