package hw

import (
	"testing"

	"repro/internal/core"
)

// The table lookup against the branching reference implementation — the
// "simple table lookup" the paper argues makes hardware realization easy.
func BenchmarkFollowerTableVsReference(b *testing.B) {
	tables := Compile()
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp := core.CP(i % core.NumCP)
			cpO := core.CP((i / core.NumCP) % core.NumCP)
			tables.FollowerStep(cp, i%4, cpO, (i+1)%4, 4)
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp := core.CP(i % core.NumCP)
			cpO := core.CP((i / core.NumCP) % core.NumCP)
			core.FollowerUpdate(cp, i%4, cpO, (i+1)%4)
		}
	})
}

func BenchmarkPackUnpack(b *testing.B) {
	l, err := NewLayout(33, 8)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		w := l.Pack(3, core.Execute, i%8)
		l.Unpack(w)
	}
}
