// Package prng is a tiny splitmix64 generator owned by exactly one
// goroutine.
//
// The runtime's protocol goroutines draw randomness on hot paths
// (loss/corruption decisions, reset/scramble state re-randomization) and
// the transports' dial loops draw reconnect jitter; both need draws that
// are deterministic per seed so conformance schedules replay
// bit-identically, and neither may share a generator across goroutines.
// math/rand.Rand would do, but it is easy to misuse: an *alias* shared
// across per-proc or per-link goroutines races (Rand is not
// concurrency-safe), and the global functions serialize on a lock. Owning
// an 8-byte generator per goroutine makes the single-owner discipline
// structural — there is no lock to contend and nothing to share — and,
// unlike a "this rand.Rand never escapes" comment, the discipline is
// visible to static analysis: the barriervet steppure analyzer bans the
// global math/rand draws outright, and a PRNG value embedded in a
// goroutine-owned struct cannot be the shared-global footgun.
//
// Each owner seeds its PRNG with a distinct function of a configured seed
// and its id, so members' draws are decorrelated.
//
// splitmix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
// generators", OOPSLA 2014) passes BigCrush and recovers from any seed,
// including 0, in one step.
package prng

// PRNG is a splitmix64 pseudo-random number generator. The zero value is
// a valid generator seeded with 0; New gives it an explicit seed. Not
// safe for concurrent use — that is the point: one owner per generator.
type PRNG struct {
	s uint64
}

// New returns a generator seeded with seed.
func New(seed int64) PRNG { return PRNG{s: uint64(seed)} }

// Uint64 returns the next raw 64-bit draw.
func (r *PRNG) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *PRNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("prng.Intn: n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be > 0.
func (r *PRNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("prng.Int63n: n <= 0")
	}
	return int64(r.Uint64()>>1) % n
}
