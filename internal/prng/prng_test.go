package prng

import "testing"

func TestDeterministicPerSeed(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d diverged for identical seeds", i)
		}
	}
	c, d := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/1000 draws collided across distinct seeds", same)
	}
}

func TestZeroSeedRecovers(t *testing.T) {
	// splitmix64 must not get stuck on the all-zero state.
	r := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 0 {
		t.Errorf("%d zero draws from the zero seed", zeros)
	}
}

func TestRanges(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v, want [0,1)", f)
		}
		if n := r.Intn(13); n < 0 || n >= 13 {
			t.Fatalf("Intn(13) = %d, want [0,13)", n)
		}
		if n := r.Int63n(1_000_003); n < 0 || n >= 1_000_003 {
			t.Fatalf("Int63n = %d, want [0,1000003)", n)
		}
	}
}

func TestIntnCoversDomain(t *testing.T) {
	r := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(8)] = true
	}
	if len(seen) != 8 {
		t.Errorf("Intn(8) hit %d/8 values in 1000 draws", len(seen))
	}
}

func TestPanicsOnNonPositive(t *testing.T) {
	for _, f := range []func(){
		func() { r := New(1); r.Intn(0) },
		func() { r := New(1); r.Int63n(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for non-positive bound")
				}
			}()
			f()
		}()
	}
}
