// Package topo provides the process topologies of Section 4 of the paper:
// the ring (Fig 2a), two intersecting rings (Fig 2b), the tree whose leaves
// are connected back to the root (Fig 2c), the double tree (Fig 2d), and
// the embedding of the double-tree construction into an arbitrary connected
// graph via a spanning tree.
package topo

import (
	"errors"
	"fmt"
	"sort"
)

// Ring is the Fig 2(a) topology: processes 0..N organized in a ring, the
// token circulating 0 → 1 → … → N → 0. It has N+1 processes.
type Ring struct {
	N int // highest process id; the ring has N+1 processes
}

// NewRing returns a ring of n processes (ids 0..n-1). n must be at least 2.
func NewRing(n int) (Ring, error) {
	if n < 2 {
		return Ring{}, errors.New("topo: a ring needs at least 2 processes")
	}
	return Ring{N: n - 1}, nil
}

// Size returns the number of processes, N+1.
func (r Ring) Size() int { return r.N + 1 }

// Succ returns the successor of j on the token path.
func (r Ring) Succ(j int) int {
	if j == r.N {
		return 0
	}
	return j + 1
}

// Pred returns the predecessor of j on the token path.
func (r Ring) Pred(j int) int {
	if j == 0 {
		return r.N
	}
	return j - 1
}

// Tree is a rooted tree over processes 0..len(Parent)-1 with process 0 at
// the root. In the Fig 2(c) topology every leaf is additionally connected
// to the root, which closes the detection/dissemination cycle in O(h).
type Tree struct {
	Parent   []int   // Parent[0] == -1
	Children [][]int // Children[v] in increasing order
	Depth    []int   // Depth[0] == 0
	Height   int     // max depth
	order    []int   // BFS order from the root
}

// NewKAryTree builds a complete-as-possible k-ary tree with n processes,
// node i's parent being (i-1)/k. n must be ≥ 1 and k ≥ 2.
func NewKAryTree(n, k int) (*Tree, error) {
	if n < 1 {
		return nil, errors.New("topo: a tree needs at least 1 process")
	}
	if k < 2 {
		return nil, errors.New("topo: tree arity must be at least 2")
	}
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = (i - 1) / k
	}
	return NewTree(parent)
}

// NewBinaryTree builds a complete-as-possible binary tree with n processes.
// A 32-process binary tree built this way has height 5 — hence the paper's
// "32 processors (so h = 5)".
func NewBinaryTree(n int) (*Tree, error) { return NewKAryTree(n, 2) }

// NewTree builds a Tree from a parent vector. parent[0] must be -1 and
// every other entry must point to an earlier node (so the vector describes
// a tree rooted at 0 with no cycles).
func NewTree(parent []int) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, errors.New("topo: empty parent vector")
	}
	if parent[0] != -1 {
		return nil, errors.New("topo: parent[0] must be -1 (process 0 is the root)")
	}
	t := &Tree{
		Parent:   append([]int(nil), parent...),
		Children: make([][]int, n),
		Depth:    make([]int, n),
		order:    make([]int, 0, n),
	}
	for i := 1; i < n; i++ {
		p := parent[i]
		if p < 0 || p >= i {
			return nil, fmt.Errorf("topo: parent[%d] = %d must reference an earlier node", i, p)
		}
		t.Children[p] = append(t.Children[p], i)
		t.Depth[i] = t.Depth[p] + 1
		if t.Depth[i] > t.Height {
			t.Height = t.Depth[i]
		}
	}
	// BFS order (children are already in increasing order).
	t.order = append(t.order, 0)
	for head := 0; head < len(t.order); head++ {
		t.order = append(t.order, t.Children[t.order[head]]...)
	}
	return t, nil
}

// Size returns the number of processes.
func (t *Tree) Size() int { return len(t.Parent) }

// IsLeaf reports whether v has no children.
func (t *Tree) IsLeaf(v int) bool { return len(t.Children[v]) == 0 }

// Leaves returns the leaves in increasing order.
func (t *Tree) Leaves() []int {
	var ls []int
	for v := range t.Parent {
		if t.IsLeaf(v) {
			ls = append(ls, v)
		}
	}
	return ls
}

// BFSOrder returns the nodes in breadth-first order from the root. The
// returned slice is shared; callers must not modify it.
func (t *Tree) BFSOrder() []int { return t.order }

// Hybrid is the two-level hierarchical topology: members co-located on
// one host form a star under that host's root member (zero network hops
// among local siblings — they fuse onto one scheduler), and the host
// roots form a k-ary tree among themselves (O(log #hosts) network hops).
// The member-level Tree runs the unmodified double-tree protocol; the
// Hosts/HostTree views tell a deployment which edges cross hosts.
type Hybrid struct {
	// Tree is the member-level tree the protocol runs over: within each
	// host a star rooted at the host root, host roots wired by HostTree.
	Tree *Tree
	// Hosts is the normalized host partition: hosts ordered by their
	// minimum member, members within a host in increasing order.
	Hosts [][]int
	// HostOf maps a member id to its host index (into Hosts).
	HostOf []int
	// HostRoot maps a host index to its root member (the host's minimum
	// member id — the one node of the host that has cross-host edges).
	HostRoot []int
	// HostTree is the k-ary tree over host indices that the cross-host
	// transport realizes (heap-shaped, like NewKAryTree over hosts).
	HostTree *Tree
}

// NewHybridTree builds the two-level hybrid topology for a partition of
// members 0..n-1 into hosts. hosts must be a partition (every member in
// exactly one non-empty host); arity is the host tree's branching factor
// (≥ 2). The host holding member 0 becomes the root host.
func NewHybridTree(hosts [][]int, arity int) (*Hybrid, error) {
	if len(hosts) == 0 {
		return nil, errors.New("topo: hybrid needs at least one host")
	}
	if arity < 2 {
		return nil, errors.New("topo: tree arity must be at least 2")
	}
	// Normalize: members within a host ascending, hosts by minimum member.
	norm := make([][]int, len(hosts))
	n := 0
	for i, h := range hosts {
		if len(h) == 0 {
			return nil, fmt.Errorf("topo: host %d is empty", i)
		}
		norm[i] = append([]int(nil), h...)
		sort.Ints(norm[i])
		n += len(h)
	}
	sort.Slice(norm, func(a, b int) bool { return norm[a][0] < norm[b][0] })
	hostOf := make([]int, n)
	for i := range hostOf {
		hostOf[i] = -1
	}
	hostRoot := make([]int, len(norm))
	for hi, h := range norm {
		hostRoot[hi] = h[0]
		for _, m := range h {
			if m < 0 || m >= n {
				return nil, fmt.Errorf("topo: member %d out of range [0,%d)", m, n)
			}
			if hostOf[m] != -1 {
				return nil, fmt.Errorf("topo: member %d appears in two hosts", m)
			}
			hostOf[m] = hi
		}
	}
	// Partition check: every member assigned (range+dup checks above make
	// the count argument sufficient, but a hole is still possible).
	for m, hi := range hostOf {
		if hi == -1 {
			return nil, fmt.Errorf("topo: member %d missing from the host partition", m)
		}
	}
	// Host-level k-ary heap. Host roots ascend with host index (hosts are
	// sorted by minimum member), so every member-tree edge below points to
	// a smaller id and NewTree's parent[i] < i invariant holds.
	var hostTree *Tree
	var err error
	if len(norm) == 1 {
		hostTree = &Tree{Parent: []int{-1}, Children: [][]int{nil}, Depth: []int{0}, order: []int{0}}
	} else if hostTree, err = NewKAryTree(len(norm), arity); err != nil {
		return nil, err
	}
	parent := make([]int, n)
	parent[0] = -1
	for hi, h := range norm {
		root := hostRoot[hi]
		if hi > 0 {
			parent[root] = hostRoot[hostTree.Parent[hi]]
		}
		for _, m := range h[1:] {
			parent[m] = root
		}
	}
	tree, err := NewTree(parent)
	if err != nil {
		return nil, err
	}
	return &Hybrid{Tree: tree, Hosts: norm, HostOf: hostOf, HostRoot: hostRoot, HostTree: hostTree}, nil
}

// TwoRings is the Fig 2(b) topology: two rings that intersect in the
// segment 0..J. Ring 1 continues J → A1 → … → N1 → 0 and ring 2 continues
// J → B1 → … → N2 → 0. Process 0 receives the token only when both ring
// ends (N1 and N2) agree.
type TwoRings struct {
	Shared []int // 0..J, in order; Shared[0] == 0
	Arm1   []int // the ring-1-only processes, ending in N1
	Arm2   []int // the ring-2-only processes, ending in N2
}

// NewTwoRings splits n processes (ids 0..n-1) into a shared prefix of
// length sharedLen (≥1, including process 0) and two arms of as equal
// length as possible. Both arms must be non-empty, so n ≥ sharedLen+2.
func NewTwoRings(n, sharedLen int) (*TwoRings, error) {
	if sharedLen < 1 {
		return nil, errors.New("topo: two rings must share at least process 0")
	}
	if n < sharedLen+2 {
		return nil, errors.New("topo: two rings need at least two non-shared processes")
	}
	tr := &TwoRings{}
	for j := 0; j < sharedLen; j++ {
		tr.Shared = append(tr.Shared, j)
	}
	rest := n - sharedLen
	half := (rest + 1) / 2
	for i := 0; i < half; i++ {
		tr.Arm1 = append(tr.Arm1, sharedLen+i)
	}
	for i := half; i < rest; i++ {
		tr.Arm2 = append(tr.Arm2, sharedLen+i)
	}
	return tr, nil
}

// Size returns the number of processes.
func (t *TwoRings) Size() int { return len(t.Shared) + len(t.Arm1) + len(t.Arm2) }

// N1 returns the last process of arm 1 (a ring-end adjacent to 0).
func (t *TwoRings) N1() int { return t.Arm1[len(t.Arm1)-1] }

// N2 returns the last process of arm 2 (a ring-end adjacent to 0).
func (t *TwoRings) N2() int { return t.Arm2[len(t.Arm2)-1] }

// Ring1 returns ring 1's token path: Shared then Arm1.
func (t *TwoRings) Ring1() []int {
	path := append([]int(nil), t.Shared...)
	return append(path, t.Arm1...)
}

// Ring2 returns ring 2's token path: Shared then Arm2.
func (t *TwoRings) Ring2() []int {
	path := append([]int(nil), t.Shared...)
	return append(path, t.Arm2...)
}

// DoubleTree is the Fig 2(d) topology: a top tree used to disseminate from
// the root and a bottom tree used to detect back toward the root. The
// paper notes any connected graph supports this by embedding one spanning
// tree and using it twice — NewDoubleTreeFromGraph does exactly that.
type DoubleTree struct {
	Down *Tree // dissemination: root → leaves
	Up   *Tree // detection: leaves → root
}

// NewDoubleTree pairs a tree with itself (the Fig 2(c) reading: one tree,
// leaves wired back to the root).
func NewDoubleTree(t *Tree) *DoubleTree { return &DoubleTree{Down: t, Up: t} }

// NewDoubleTreeFromGraph embeds the double-tree construction in an
// arbitrary connected graph given by adjacency lists: a BFS spanning tree
// rooted at process 0 is built and used as both the top and bottom tree.
func NewDoubleTreeFromGraph(adj [][]int) (*DoubleTree, error) {
	n := len(adj)
	if n == 0 {
		return nil, errors.New("topo: empty graph")
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[0] = -1
	queue := []int{0}
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if w < 0 || w >= n {
				return nil, fmt.Errorf("topo: edge %d→%d out of range", v, w)
			}
			if parent[w] == -2 {
				parent[w] = v
				visited++
				queue = append(queue, w)
			}
		}
	}
	if visited != n {
		return nil, errors.New("topo: graph is not connected")
	}
	// NewTree requires parents to precede children; relabel in BFS order.
	relabel := make([]int, n) // old id → new id
	order := make([]int, 0, n)
	order = append(order, 0)
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, w := range adj[v] {
			if parent[w] == v && relabel[w] == 0 && w != 0 {
				relabel[w] = len(order)
				order = append(order, w)
			}
		}
	}
	newParent := make([]int, n)
	newParent[0] = -1
	for _, v := range order[1:] {
		newParent[relabel[v]] = relabel[parent[v]]
	}
	t, err := NewTree(newParent)
	if err != nil {
		return nil, err
	}
	return NewDoubleTree(t), nil
}
