package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(1); err == nil {
		t.Error("ring of 1 should be rejected")
	}
	r, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 5 || r.N != 4 {
		t.Errorf("ring size=%d N=%d", r.Size(), r.N)
	}
}

func TestRingSuccPredInverse(t *testing.T) {
	f := func(nRaw, jRaw uint8) bool {
		n := int(nRaw%30) + 2
		j := int(jRaw) % n
		r, err := NewRing(n)
		if err != nil {
			return false
		}
		return r.Pred(r.Succ(j)) == j && r.Succ(r.Pred(j)) == j
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingCirculationVisitsAll(t *testing.T) {
	r, _ := NewRing(7)
	seen := map[int]bool{}
	j := 0
	for i := 0; i < r.Size(); i++ {
		seen[j] = true
		j = r.Succ(j)
	}
	if len(seen) != 7 || j != 0 {
		t.Errorf("circulation covered %d nodes, back at %d", len(seen), j)
	}
}

func TestBinaryTree32HasHeight5(t *testing.T) {
	// The paper: "the number of processors fixed at 32 (so h = 5)".
	tr, err := NewBinaryTree(32)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height != 5 {
		t.Errorf("height of 32-process binary tree = %d, want 5", tr.Height)
	}
	if tr.Size() != 32 {
		t.Errorf("size = %d", tr.Size())
	}
}

func TestBinaryTree128HasHeight7(t *testing.T) {
	// Figure 7 sweeps h = 1..7; 128 processes is the h=7 point.
	tr, err := NewBinaryTree(128)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height != 7 {
		t.Errorf("height of 128-process binary tree = %d, want 7", tr.Height)
	}
}

func TestTreeValidation(t *testing.T) {
	if _, err := NewTree(nil); err == nil {
		t.Error("empty tree should be rejected")
	}
	if _, err := NewTree([]int{0}); err == nil {
		t.Error("parent[0] != -1 should be rejected")
	}
	if _, err := NewTree([]int{-1, 2, 1}); err == nil {
		t.Error("forward parent reference should be rejected")
	}
	if _, err := NewKAryTree(0, 2); err == nil {
		t.Error("empty k-ary tree should be rejected")
	}
	if _, err := NewKAryTree(4, 1); err == nil {
		t.Error("arity 1 should be rejected")
	}
}

// Property: in a k-ary tree every non-root node's depth is its parent's
// depth plus one, and the BFS order is a permutation visiting parents
// before children.
func TestTreeStructureProperties(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw%4) + 2
		tr, err := NewKAryTree(n, k)
		if err != nil {
			return false
		}
		for v := 1; v < n; v++ {
			if tr.Depth[v] != tr.Depth[tr.Parent[v]]+1 {
				return false
			}
		}
		pos := make([]int, n)
		order := tr.BFSOrder()
		if len(order) != n {
			return false
		}
		seen := make([]bool, n)
		for i, v := range order {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
			pos[v] = i
		}
		for v := 1; v < n; v++ {
			if pos[tr.Parent[v]] >= pos[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeaves(t *testing.T) {
	tr, _ := NewBinaryTree(7) // perfect binary tree of height 2
	leaves := tr.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("leaves = %v, want 4 leaves", leaves)
	}
	for _, l := range leaves {
		if !tr.IsLeaf(l) {
			t.Errorf("node %d reported as leaf but has children", l)
		}
	}
	if tr.IsLeaf(0) {
		t.Error("root of a 7-node tree is not a leaf")
	}
}

func TestTwoRings(t *testing.T) {
	tr, err := NewTwoRings(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 10 {
		t.Errorf("size = %d", tr.Size())
	}
	r1, r2 := tr.Ring1(), tr.Ring2()
	if r1[0] != 0 || r2[0] != 0 {
		t.Error("both rings must start at process 0")
	}
	if r1[len(r1)-1] != tr.N1() || r2[len(r2)-1] != tr.N2() {
		t.Error("rings must end at their ring-ends")
	}
	// Every process appears in ring1 ∪ ring2; shared prefix appears in both.
	seen := map[int]int{}
	for _, v := range r1 {
		seen[v]++
	}
	for _, v := range r2 {
		seen[v]++
	}
	for v := 0; v < 10; v++ {
		want := 1
		if v < 2 {
			want = 2
		}
		if seen[v] != want {
			t.Errorf("process %d appears %d times, want %d", v, seen[v], want)
		}
	}
}

func TestTwoRingsValidation(t *testing.T) {
	if _, err := NewTwoRings(2, 1); err == nil {
		t.Error("too-small two-ring should be rejected")
	}
	if _, err := NewTwoRings(5, 0); err == nil {
		t.Error("empty shared segment should be rejected")
	}
}

func TestDoubleTreeFromGraph(t *testing.T) {
	// 3x3 grid graph.
	const w = 3
	adj := make([][]int, w*w)
	at := func(r, c int) int { return r*w + c }
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			v := at(r, c)
			if r > 0 {
				adj[v] = append(adj[v], at(r-1, c))
			}
			if r < w-1 {
				adj[v] = append(adj[v], at(r+1, c))
			}
			if c > 0 {
				adj[v] = append(adj[v], at(r, c-1))
			}
			if c < w-1 {
				adj[v] = append(adj[v], at(r, c+1))
			}
		}
	}
	dt, err := NewDoubleTreeFromGraph(adj)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Down != dt.Up {
		t.Error("graph embedding uses one spanning tree twice")
	}
	if dt.Down.Size() != w*w {
		t.Errorf("spanning tree size = %d, want %d", dt.Down.Size(), w*w)
	}
	// BFS spanning tree of a 3x3 grid from a corner has height 4.
	if dt.Down.Height != 4 {
		t.Errorf("spanning tree height = %d, want 4", dt.Down.Height)
	}
}

func TestDoubleTreeFromDisconnectedGraph(t *testing.T) {
	adj := [][]int{{1}, {0}, {3}, {2}} // two components
	if _, err := NewDoubleTreeFromGraph(adj); err == nil {
		t.Error("disconnected graph should be rejected")
	}
	if _, err := NewDoubleTreeFromGraph(nil); err == nil {
		t.Error("empty graph should be rejected")
	}
	if _, err := NewDoubleTreeFromGraph([][]int{{5}}); err == nil {
		t.Error("out-of-range edge should be rejected")
	}
}

// Property: spanning trees of random connected graphs span all nodes and
// respect parent-before-child numbering.
func TestSpanningTreeOfRandomConnectedGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		adj := make([][]int, n)
		addEdge := func(a, b int) {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		// Random spanning structure guarantees connectivity...
		for v := 1; v < n; v++ {
			addEdge(v, rng.Intn(v))
		}
		// ...plus random extra edges.
		for e := 0; e < n/2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				addEdge(a, b)
			}
		}
		dt, err := NewDoubleTreeFromGraph(adj)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if dt.Down.Size() != n {
			t.Fatalf("trial %d: tree size %d, want %d", trial, dt.Down.Size(), n)
		}
	}
}

func TestNewDoubleTree(t *testing.T) {
	tr, _ := NewBinaryTree(15)
	dt := NewDoubleTree(tr)
	if dt.Down != tr || dt.Up != tr {
		t.Error("NewDoubleTree should pair the tree with itself")
	}
}

func TestNewHybridTreeShape(t *testing.T) {
	// 4 hosts × 2 members, declared out of order and unsorted: the
	// constructor normalizes to min-member order.
	h, err := NewHybridTree([][]int{{3, 2}, {1, 0}, {7, 6}, {4, 5}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantHosts := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	for i, hs := range wantHosts {
		if len(h.Hosts[i]) != len(hs) {
			t.Fatalf("host %d = %v, want %v", i, h.Hosts[i], hs)
		}
		for j, m := range hs {
			if h.Hosts[i][j] != m {
				t.Fatalf("host %d = %v, want %v", i, h.Hosts[i], hs)
			}
		}
	}
	// Host roots are the minima; host tree is the binary heap over hosts.
	wantRoots := []int{0, 2, 4, 6}
	for i, r := range wantRoots {
		if h.HostRoot[i] != r {
			t.Fatalf("HostRoot[%d] = %d, want %d", i, h.HostRoot[i], r)
		}
	}
	if got := h.HostTree.Parent; got[0] != -1 || got[1] != 0 || got[2] != 0 || got[3] != 1 {
		t.Fatalf("host tree parents = %v", got)
	}
	// Member tree: local members star under their host root; host roots
	// follow the host tree.
	wantParent := []int{-1, 0, 0, 2, 0, 4, 2, 6}
	for i, p := range wantParent {
		if h.Tree.Parent[i] != p {
			t.Fatalf("Parent = %v, want %v", h.Tree.Parent, wantParent)
		}
	}
	for m := 0; m < 8; m++ {
		if h.HostOf[m] != m/2 {
			t.Fatalf("HostOf[%d] = %d, want %d", m, h.HostOf[m], m/2)
		}
	}
}

func TestNewHybridTreeSingleHost(t *testing.T) {
	h, err := NewHybridTree([][]int{{0, 1, 2}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.HostTree.Size() != 1 || h.HostTree.Parent[0] != -1 {
		t.Fatalf("single-host host tree = %+v", h.HostTree)
	}
	if h.Tree.Parent[1] != 0 || h.Tree.Parent[2] != 0 {
		t.Fatalf("single-host member tree = %v", h.Tree.Parent)
	}
}

func TestNewHybridTreeValidation(t *testing.T) {
	cases := [][][]int{
		{},                // no hosts
		{{0, 1}, {}},      // empty host
		{{0, 1}, {1, 2}},  // duplicate member
		{{0, 1}, {3, 4}},  // hole (member 2 missing)
		{{0, 1}, {2, 17}}, // out of range
	}
	for i, hosts := range cases {
		if _, err := NewHybridTree(hosts, 2); err == nil {
			t.Errorf("case %d (%v): expected error", i, hosts)
		}
	}
	if _, err := NewHybridTree([][]int{{0}, {1}}, 1); err == nil {
		t.Error("arity 1 should be rejected")
	}
}
