// Package sim is the timed simulator behind the paper's Section 6.2
// experiments (Figures 5, 6 and 7). Like the authors' SIEFAST environment,
// it executes the exact guarded-command protocol (program TB of package
// rbtree, the Fig 2c tree refinement evaluated in the paper) under the
// maximal parallel semantics, with a real-time value attached to execution:
//
//   - every maximal-parallel step in which at least one action executes
//     takes one communication latency, c;
//   - a process that begins a phase works on it for 1 time unit (the
//     paper's unit phase-execution time) and does not take its completion
//     transition before the work is done (the protocol's work gate);
//   - detectable faults arrive with the paper's frequency model — the
//     probability of no fault in a window of length d is (1−f)^d — each
//     hitting a uniformly random process.
//
// The paper's analytical model charges worst-case, non-overlapped wave
// times (1+3hc per instance); the simulator executes the real protocol, in
// which phase work overlaps the execute wave, so simulated times sit below
// the analytical curve — the same relationship the paper reports ("the
// overhead in the simulated program is less than that predicted by the
// analytical results", Section 6.2).
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/faults"
	"repro/internal/guarded"
	"repro/internal/rbtree"
	"repro/internal/topo"
)

// Protocol is the surface the timed driver needs from a barrier program.
// Both rbtree.Program (fault-tolerant) and baseline.Program (intolerant)
// implement it.
type Protocol interface {
	Guarded() *guarded.Program
	N() int
	SetWorkGate(func(j int) bool)
	SetSink(core.EventSink)
}

var (
	_ Protocol = (*rbtree.Program)(nil)
	_ Protocol = (*dtree.Program)(nil)
	_ Protocol = (*baseline.Program)(nil)
)

// Timed drives a Protocol under the timed maximal parallel semantics.
type Timed struct {
	proto Protocol
	prog  *guarded.Program
	c     float64

	now      float64
	working  []bool
	workDone []float64

	extraSink  core.EventSink // metrics sink, after driver bookkeeping
	zeroRounds int            // consecutive zero-latency rounds, runaway guard
}

const eps = 1e-9

// NewTimed wraps proto with the timed driver. The caller's sink (if any)
// should be installed via OnEvent after construction, not via proto
// directly — the driver owns proto's sink.
func NewTimed(proto Protocol, c float64) *Timed {
	t := &Timed{
		proto:    proto,
		prog:     proto.Guarded(),
		c:        c,
		working:  make([]bool, proto.N()),
		workDone: make([]float64, proto.N()),
	}
	proto.SetWorkGate(func(j int) bool {
		return !t.working[j] || t.workDone[j] <= t.now+eps
	})
	proto.SetSink(t.observe)
	return t
}

func (t *Timed) observe(e core.Event) {
	switch e.Kind {
	case core.EvBegin:
		// The begin lands at the end of the current round; the unit of
		// phase work starts then.
		t.working[e.Proc] = true
		t.workDone[e.Proc] = t.now + t.c + 1
	case core.EvComplete, core.EvReset:
		t.working[e.Proc] = false
	}
	if t.extraSink != nil {
		t.extraSink(e)
	}
}

// OnEvent installs a metrics sink that sees every protocol event.
func (t *Timed) OnEvent(sink core.EventSink) { t.extraSink = sink }

// Now returns the current simulated time, in phase-time units.
func (t *Timed) Now() float64 { return t.now }

// ResetClock restarts time at zero (after a warmup) without touching
// protocol state; pending work deadlines are shifted accordingly.
func (t *Timed) ResetClock() {
	for j := range t.workDone {
		if t.working[j] {
			t.workDone[j] -= t.now
		} else {
			t.workDone[j] = 0
		}
	}
	t.now = 0
}

// ClearWork abandons all pending phase work (used when scrambling the state
// for recovery experiments: the perturbed processes have no coherent work
// in progress).
func (t *Timed) ClearWork() {
	for j := range t.working {
		t.working[j] = false
	}
}

// Step executes one timed step: a maximal-parallel round costing c if any
// action executes, or a jump to the earliest pending work deadline if every
// enabled action is gated. It returns false only when the system can make
// no step at all (true quiescence — a deadlock for these protocols).
func (t *Timed) Step(rng *rand.Rand) (bool, error) {
	if t.prog.StepMaxParallel(rng) > 0 {
		t.now += t.c
		if t.c == 0 {
			t.zeroRounds++
			if t.zeroRounds > 10_000_000 {
				return false, errors.New("sim: runaway zero-latency execution (livelock?)")
			}
		} else {
			t.zeroRounds = 0
		}
		return true, nil
	}
	// No action executed: if some process is still mid-work (deadline in
	// the future), advance to the earliest completion and retry. Processes
	// whose work is done but whose completion waits on others contribute no
	// deadline — they will fire once the others catch up.
	earliest := -1.0
	for j, w := range t.working {
		if w && t.workDone[j] > t.now+eps && (earliest < 0 || t.workDone[j] < earliest) {
			earliest = t.workDone[j]
		}
	}
	if earliest < 0 {
		// Nothing executes and no work is pending: genuine deadlock.
		return false, nil
	}
	t.now = earliest
	t.zeroRounds = 0
	return true, nil
}

// Config parameterizes a Section 6.2 simulation run.
type Config struct {
	Procs   int     // number of processes (default 32, the paper's setting)
	Arity   int     // tree arity (default 2: binary tree, h = 5 at 32 procs)
	NPhases int     // cyclic phase count (default 4)
	C       float64 // communication latency in phase-time units
	F       float64 // detectable fault frequency
	Seed    int64
	Phases  int // successful phases to measure over (default 200)
	Warmup  int // successful phases to discard first (default 5)

	// Convergecast selects the Figure 2(d) double-tree program (package
	// dtree, detection up the tree) instead of the default Figure 2(c)
	// program (package rbtree, leaves wired to the root) — an ablation of
	// the topology choice.
	Convergecast bool
}

func (c *Config) fill() {
	if c.Procs == 0 {
		c.Procs = 32
	}
	if c.Arity == 0 {
		c.Arity = 2
	}
	if c.NPhases == 0 {
		c.NPhases = 4
	}
	if c.Phases == 0 {
		c.Phases = 200
	}
	if c.Warmup == 0 {
		c.Warmup = 5
	}
}

// Result summarizes a detectable-fault run (Figures 5 and 6).
type Result struct {
	Height            int     // tree height h
	Phases            int     // successful phases measured
	Instances         int     // instances executed for those phases
	Time              float64 // simulated time for those phases
	InstancesPerPhase float64 // Figure 5's y-axis
	TimePerPhase      float64
	Overhead          float64 // Figure 6's y-axis: vs the intolerant 1+2hc
}

// tree builds the simulation tree for cfg.
func buildTree(cfg Config) (*topo.Tree, error) {
	return topo.NewKAryTree(cfg.Procs, cfg.Arity)
}

// ftProtocol is the full surface of a fault-tolerant tree program; both
// rbtree.Program (Fig 2c) and dtree.Program (Fig 2d) implement it.
type ftProtocol interface {
	Protocol
	InjectDetectable(j int)
	InjectUndetectable(j int)
	Corrupted(j int) bool
	InStartState() bool
}

// buildProtocol constructs the configured fault-tolerant program.
func buildProtocol(cfg Config, tr *topo.Tree, rng *rand.Rand) (ftProtocol, error) {
	if cfg.Convergecast {
		return dtree.New(tr.Parent, cfg.NPhases, cfg.Procs+1, rng, nil)
	}
	return rbtree.New(tr.Parent, cfg.NPhases, cfg.Procs+1, rng, nil)
}

// RunDetectable executes the Figure 5/6 experiment: the fault-tolerant tree
// program under detectable faults of frequency F, measuring instances per
// successful phase and time per successful phase. The run is validated
// against the barrier specification throughout; a violation is returned as
// an error.
func RunDetectable(cfg Config) (Result, error) {
	cfg.fill()
	tr, err := buildTree(cfg)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	prog, err := buildProtocol(cfg, tr, rng)
	if err != nil {
		return Result{}, err
	}
	t := NewTimed(prog, cfg.C)

	checker := core.NewSpecChecker(cfg.Procs, cfg.NPhases)
	instances := 0
	t.OnEvent(func(e core.Event) {
		if e.Kind == core.EvBegin && e.Proc == 0 {
			instances++ // the root begins every instance on this topology
		}
		checker.Observe(e)
	})
	sched := faults.NewFrequency(cfg.F, rng)

	// Warmup.
	for checker.SuccessfulBarriers() < cfg.Warmup {
		if err := stepWithFaults(t, prog, sched, rng); err != nil {
			return Result{}, err
		}
		if err := checker.Violation(); err != nil {
			return Result{}, err
		}
	}
	baseInstances := instances
	baseSuccess := checker.SuccessfulBarriers()
	t.ResetClock()

	for checker.SuccessfulBarriers() < baseSuccess+cfg.Phases {
		if err := stepWithFaults(t, prog, sched, rng); err != nil {
			return Result{}, err
		}
		if err := checker.Violation(); err != nil {
			return Result{}, err
		}
	}

	res := Result{
		Height:    tr.Height,
		Phases:    checker.SuccessfulBarriers() - baseSuccess,
		Instances: instances - baseInstances,
		Time:      t.Now(),
	}
	res.InstancesPerPhase = float64(res.Instances) / float64(res.Phases)
	res.TimePerPhase = res.Time / float64(res.Phases)
	res.Overhead = res.TimePerPhase/baseline.AnalyticPhaseTime(tr.Height, cfg.C) - 1
	return res, nil
}

func stepWithFaults(t *Timed, prog ftProtocol, sched faults.Schedule, rng *rand.Rand) error {
	before := t.Now()
	ok, err := t.Step(rng)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("sim: protocol deadlocked")
	}
	if dt := t.Now() - before; dt > 0 {
		if n := sched.Arrivals(dt); n > 0 {
			faults.ApplyDetectableSafe(prog, prog, n, rng)
		}
	}
	return nil
}

// RunIntolerant executes the fault-intolerant baseline under the same timed
// semantics with no faults, returning its time per phase. It is the
// simulated counterpart of the 1+2hc closed form.
func RunIntolerant(cfg Config) (Result, error) {
	cfg.fill()
	tr, err := buildTree(cfg)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	prog, err := baseline.New(tr.Parent, cfg.NPhases, nil)
	if err != nil {
		return Result{}, err
	}
	t := NewTimed(prog, cfg.C)

	for prog.Barriers() < cfg.Warmup {
		if ok, err := t.Step(rng); err != nil || !ok {
			return Result{}, fmt.Errorf("sim: baseline stalled during warmup: %v", err)
		}
	}
	base := prog.Barriers()
	t.ResetClock()
	for prog.Barriers() < base+cfg.Phases {
		if ok, err := t.Step(rng); err != nil || !ok {
			return Result{}, fmt.Errorf("sim: baseline stalled: %v", err)
		}
	}
	res := Result{
		Height:    tr.Height,
		Phases:    cfg.Phases,
		Instances: cfg.Phases,
		Time:      t.Now(),
	}
	res.InstancesPerPhase = 1
	res.TimePerPhase = res.Time / float64(res.Phases)
	res.Overhead = 0
	return res, nil
}

// RecoveryResult summarizes a Figure 7 run.
type RecoveryResult struct {
	Height int
	Time   float64 // time from the scrambled state to the first start state
}

// RunRecovery executes the Figure 7 experiment: every process is perturbed
// to an arbitrary state (an undetectable whole-system fault) and the
// simulator measures the time until the program reaches a start state, from
// which every subsequent computation satisfies the barrier specification.
func RunRecovery(cfg Config) (RecoveryResult, error) {
	cfg.fill()
	tr, err := buildTree(cfg)
	if err != nil {
		return RecoveryResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	prog, err := buildProtocol(cfg, tr, rng)
	if err != nil {
		return RecoveryResult{}, err
	}
	t := NewTimed(prog, cfg.C)

	// Let the system run a few phases so the scramble hits a "typical"
	// mid-protocol state, then perturb everything.
	warmSteps := 10 * (tr.Height + 1) * 3
	for i := 0; i < warmSteps; i++ {
		if ok, err := t.Step(rng); err != nil || !ok {
			return RecoveryResult{}, fmt.Errorf("sim: stalled during warmup: %v", err)
		}
	}
	for j := 0; j < cfg.Procs; j++ {
		prog.InjectUndetectable(j)
	}
	t.ClearWork()
	t.ResetClock()

	for !prog.InStartState() {
		ok, err := t.Step(rng)
		if err != nil {
			return RecoveryResult{}, err
		}
		if !ok {
			return RecoveryResult{}, errors.New("sim: deadlock during recovery")
		}
		if t.Now() > 1000 {
			return RecoveryResult{}, errors.New("sim: recovery did not converge")
		}
	}
	return RecoveryResult{Height: tr.Height, Time: t.Now()}, nil
}
