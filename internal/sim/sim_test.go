package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/analytical"
	"repro/internal/baseline"
	"repro/internal/topo"
)

func TestFaultFreeInstancesExactlyOne(t *testing.T) {
	res, err := RunDetectable(Config{Procs: 32, C: 0.01, F: 0, Seed: 1, Phases: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Height != 5 {
		t.Errorf("height = %d, want 5 for 32 processes", res.Height)
	}
	if res.InstancesPerPhase != 1 {
		t.Errorf("fault-free instances per phase = %v, want exactly 1", res.InstancesPerPhase)
	}
}

// The simulated fault-free phase time must sit between the intolerant
// closed form (1+2hc, a lower bound: the FT program does strictly more
// communication) and the paper's worst-case analytical time (1+3hc plus the
// root hop, an upper bound).
func TestFaultFreeTimeBounds(t *testing.T) {
	for _, c := range []float64{0, 0.01, 0.03, 0.05} {
		res, err := RunDetectable(Config{Procs: 32, C: c, F: 0, Seed: 2, Phases: 100})
		if err != nil {
			t.Fatal(err)
		}
		lower := baseline.AnalyticPhaseTime(5, c)
		upper := 1 + 3*float64(5+1)*c + 3*c // worst case with per-wave root hop
		if res.TimePerPhase < lower-1e-9 {
			t.Errorf("c=%v: time per phase %.4f below intolerant bound %.4f",
				c, res.TimePerPhase, lower)
		}
		if res.TimePerPhase > upper+1e-9 {
			t.Errorf("c=%v: time per phase %.4f above analytical worst case %.4f",
				c, res.TimePerPhase, upper)
		}
	}
}

// Figure 5's shape: instances per successful phase grow with the fault
// frequency and with the communication latency, and track the analytical
// prediction (the simulated exposure window is slightly shorter than the
// analytical worst case, so simulated ≤ analytical + noise).
func TestInstancesGrowWithFaultFrequency(t *testing.T) {
	prev := 0.0
	for _, f := range []float64{0, 0.02, 0.05, 0.1} {
		res, err := RunDetectable(Config{Procs: 32, C: 0.02, F: f, Seed: 3, Phases: 400})
		if err != nil {
			t.Fatal(err)
		}
		if res.InstancesPerPhase < prev-0.01 {
			t.Errorf("instances per phase decreased: f=%v gives %v after %v",
				f, res.InstancesPerPhase, prev)
		}
		prev = res.InstancesPerPhase
		ana := analytical.Model{H: 5, C: 0.02, F: f}.ExpectedInstances()
		if res.InstancesPerPhase > ana*1.15+0.05 {
			t.Errorf("f=%v: simulated instances %.4f far above analytical %.4f",
				f, res.InstancesPerPhase, ana)
		}
	}
	if prev < 1.05 {
		t.Errorf("instances per phase at f=0.1 = %v, expected visible re-execution", prev)
	}
}

// Figure 6's shape: overhead grows with latency and fault frequency, and
// the simulated overhead is below the analytical worst case (Section 6.2).
func TestOverheadShape(t *testing.T) {
	prevByF := map[float64]float64{}
	for _, c := range []float64{0.01, 0.03, 0.05} {
		for _, f := range []float64{0, 0.05} {
			res, err := RunDetectable(Config{Procs: 32, C: c, F: f, Seed: 4, Phases: 300})
			if err != nil {
				t.Fatal(err)
			}
			if res.Overhead < -0.02 {
				t.Errorf("c=%v f=%v: overhead %.4f negative beyond noise", c, f, res.Overhead)
			}
			ana := analytical.Model{H: 5, C: c, F: f}.Overhead()
			if res.Overhead > ana+0.03 {
				t.Errorf("c=%v f=%v: simulated overhead %.4f exceeds analytical %.4f",
					c, f, res.Overhead, ana)
			}
			if prev, ok := prevByF[f]; ok && res.Overhead < prev-0.02 {
				t.Errorf("f=%v: overhead decreased with latency: c=%v gives %.4f after %.4f",
					f, c, res.Overhead, prev)
			}
			prevByF[f] = res.Overhead
		}
	}
}

// Higher fault frequency must cost more time per phase at fixed latency.
func TestOverheadGrowsWithFaults(t *testing.T) {
	lo, err := RunDetectable(Config{Procs: 32, C: 0.02, F: 0, Seed: 5, Phases: 300})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RunDetectable(Config{Procs: 32, C: 0.02, F: 0.1, Seed: 5, Phases: 300})
	if err != nil {
		t.Fatal(err)
	}
	if hi.TimePerPhase <= lo.TimePerPhase {
		t.Errorf("time per phase with f=0.1 (%.4f) not above f=0 (%.4f)",
			hi.TimePerPhase, lo.TimePerPhase)
	}
}

// The intolerant baseline matches its closed form 1+2hc under the same
// timed semantics, up to the root's release round.
func TestIntolerantBaselineMatchesClosedForm(t *testing.T) {
	for _, c := range []float64{0, 0.01, 0.05} {
		res, err := RunIntolerant(Config{Procs: 32, C: c, Seed: 6, Phases: 100})
		if err != nil {
			t.Fatal(err)
		}
		want := baseline.AnalyticPhaseTime(5, c)
		// Allow the root's own release/report rounds (up to 2 extra hops).
		if res.TimePerPhase < want-1e-9 || res.TimePerPhase > want+2*c+1e-9 {
			t.Errorf("c=%v: intolerant time per phase %.4f, want within [%v, %v]",
				c, res.TimePerPhase, want, want+2*c)
		}
	}
}

// Figure 7's shape: recovery time grows with communication latency and with
// tree height, and stays within the paper's envelope (≈1.25 time units in
// the 2hc ≤ 0.5 operating region, plus at most one unit of abandoned phase
// work).
func TestRecoveryShape(t *testing.T) {
	mean := func(procs int, c float64) float64 {
		sum := 0.0
		const trials = 30
		for s := int64(0); s < trials; s++ {
			r, err := RunRecovery(Config{Procs: procs, C: c, Seed: 100 + s})
			if err != nil {
				t.Fatal(err)
			}
			sum += r.Time
		}
		return sum / trials
	}

	// Growth in c at fixed size.
	t32c001 := mean(32, 0.01)
	t32c005 := mean(32, 0.05)
	if t32c005 <= t32c001 {
		t.Errorf("recovery time did not grow with latency: c=0.05 → %.3f, c=0.01 → %.3f",
			t32c005, t32c001)
	}

	// Growth in height at fixed latency (h=2 → 7 procs, h=5 → 32 procs).
	t7 := mean(7, 0.05)
	if t32c005 <= t7 {
		t.Errorf("recovery time did not grow with height: 32 procs → %.3f, 7 procs → %.3f",
			t32c005, t7)
	}

	// The paper's envelope: with 2hc ≤ 0.5 the protocol recovers in about a
	// time unit; allow one additional unit for abandoned phase work that
	// the analytical model ignores.
	for name, v := range map[string]float64{"32@0.01": t32c001, "32@0.05": t32c005, "7@0.05": t7} {
		if v > 2.25 {
			t.Errorf("mean recovery time %s = %.3f, want ≤ 2.25", name, v)
		}
		if v <= 0 {
			t.Errorf("mean recovery time %s = %.3f, want positive", name, v)
		}
	}
}

func TestRecoveryZeroLatency(t *testing.T) {
	r, err := RunRecovery(Config{Procs: 32, C: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// With free communication, recovery costs at most abandoned phase work.
	if r.Time > 1+1e-9 {
		t.Errorf("recovery at c=0 took %.3f, want ≤ 1", r.Time)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.fill()
	if cfg.Procs != 32 || cfg.Arity != 2 || cfg.NPhases != 4 || cfg.Phases != 200 || cfg.Warmup != 5 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := RunDetectable(Config{Procs: 16, C: 0.02, F: 0.05, Seed: 11, Phases: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDetectable(Config{Procs: 16, C: 0.02, F: 0.05, Seed: 11, Phases: 50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Time-b.Time) > 1e-12 || a.Instances != b.Instances {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
}

// Topology ablation: the Figure 2(d) convergecast program pays roughly one
// extra tree traversal per phase relative to Figure 2(c)'s leaf→root
// wires, and still satisfies the specification under faults.
func TestConvergecastAblation(t *testing.T) {
	fig2c, err := RunDetectable(Config{Procs: 32, C: 0.02, F: 0.02, Seed: 7, Phases: 200})
	if err != nil {
		t.Fatal(err)
	}
	fig2d, err := RunDetectable(Config{Procs: 32, C: 0.02, F: 0.02, Seed: 7, Phases: 200, Convergecast: true})
	if err != nil {
		t.Fatal(err)
	}
	if fig2d.TimePerPhase <= fig2c.TimePerPhase {
		t.Errorf("convergecast time/phase %.4f should exceed leaf-wire %.4f",
			fig2d.TimePerPhase, fig2c.TimePerPhase)
	}
	if fig2d.TimePerPhase > 2*fig2c.TimePerPhase {
		t.Errorf("convergecast time/phase %.4f more than 2x leaf-wire %.4f",
			fig2d.TimePerPhase, fig2c.TimePerPhase)
	}
}

// Recovery also works on the Fig 2(d) topology.
func TestConvergecastRecovery(t *testing.T) {
	for s := int64(0); s < 10; s++ {
		r, err := RunRecovery(Config{Procs: 15, C: 0.02, Seed: s, Convergecast: true})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if r.Time < 0 || r.Time > 3 {
			t.Errorf("seed %d: recovery time %.3f out of envelope", s, r.Time)
		}
	}
}

// The motivation experiment under the timed driver: crash one process of
// the intolerant baseline and the simulation deadlocks (Step reports no
// progress), while the fault-tolerant program with the same crash modeled
// as a detectable reset keeps completing phases.
func TestIntolerantCrashDeadlocksUnderTimedDriver(t *testing.T) {
	tr, err := topo.NewBinaryTree(7)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := baseline.New(tr.Parent, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	tm := NewTimed(prog, 0.01)
	rng := rand.New(rand.NewSource(1))
	for prog.Barriers() < 3 {
		if ok, err := tm.Step(rng); err != nil || !ok {
			t.Fatalf("baseline stalled before the crash: %v", err)
		}
	}
	prog.Crash(5)
	deadlocked := false
	for i := 0; i < 100000; i++ {
		ok, err := tm.Step(rng)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			deadlocked = true
			break
		}
	}
	if !deadlocked {
		t.Fatal("intolerant baseline kept running after a crash")
	}
}
