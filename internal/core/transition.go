package core

// Outcome classifies what a control-position update means for the barrier
// specification, so that engines can emit the corresponding trace events.
type Outcome uint8

const (
	// OutNone: no specification-relevant event.
	OutNone Outcome = iota
	// OutBegin: the process started executing its phase (ready → execute).
	OutBegin
	// OutComplete: the process finished its phase (execute → success).
	OutComplete
	// OutAbandon: the process abandoned a partial execution (execute →
	// repeat, when pulled into a re-execution after a fault elsewhere).
	OutAbandon
)

// LeaderUpdate computes the superposed statement of process 0 in programs
// RB and MB, evaluated when 0 receives the token, given 0's own state and
// the (possibly locally copied) state of its ring predecessor N:
//
//	if cp.0=ready ∧ cp.0=cp.N ∧ ph.0=ph.N then cp.0 := execute
//	elseif cp.0=execute                    then cp.0 := success
//	elseif cp.0=success then
//	    if cp.0=cp.N ∧ ph.0=ph.N then ph.0 := ph.0+1; cp.0 := ready
//	    else                          ph.0 := ph.N;   cp.0 := ready
//	elseif cp.0∈{error,repeat}        then ph.0 := ph.N;   cp.0 := ready
//
// The final branch realizes the recovery noted in the paper's proof of
// Lemma 4.1.2 (a corrupted process 0 changes its control position to ready,
// copying N's phase); repeat is included because an undetectable fault can
// leave cp.0 = repeat, from which the program must stabilize.
func LeaderUpdate(cp0 CP, ph0 int, cpN CP, phN int, nPhases int) (CP, int, Outcome) {
	switch {
	case cp0 == Ready && cpN == Ready && ph0 == phN:
		return Execute, ph0, OutBegin
	case cp0 == Execute:
		return Success, ph0, OutComplete
	case cp0 == Success:
		if cpN == Success && ph0 == phN {
			return Ready, NextPhase(ph0, nPhases), OutNone
		}
		return Ready, phN, OutNone
	case cp0 == Error || cp0 == Repeat:
		return Ready, phN, OutNone
	}
	// cp.0 = ready but N is not ready in the same phase: keep circulating.
	return cp0, ph0, OutNone
}

// FollowerUpdate computes the superposed statement of a process j≠0 in
// programs RB and MB, evaluated when j receives the token, given j's state
// and the (possibly locally copied) state of its ring predecessor:
//
//	ph.j := ph.(j−1)
//	if     cp.j=ready   ∧ cp.(j−1)=execute then cp.j := execute
//	elseif cp.j=execute ∧ cp.(j−1)=success then cp.j := success
//	elseif cp.j≠execute ∧ cp.(j−1)=ready   then cp.j := ready
//	elseif cp.j=error   ∨ cp.(j−1)≠cp.j    then cp.j := repeat
func FollowerUpdate(cp CP, ph int, cpPrev CP, phPrev int) (CP, int, Outcome) {
	switch {
	case cp == Ready && cpPrev == Execute:
		return Execute, phPrev, OutBegin
	case cp == Execute && cpPrev == Success:
		return Success, phPrev, OutComplete
	case cp != Execute && cpPrev == Ready:
		return Ready, phPrev, OutNone
	case cp == Error || cpPrev != cp:
		if cp == Execute {
			return Repeat, phPrev, OutAbandon
		}
		return Repeat, phPrev, OutNone
	}
	// Control position unchanged; the phase still travels with the token.
	return cp, phPrev, OutNone
}
