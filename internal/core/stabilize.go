package core

// This file implements the trace-level formulation of stabilizing
// tolerance (Section 2): a computation with undetectable faults satisfies
// the specification *eventually*, i.e. some suffix of its trace is a legal
// barrier computation. Harnesses that attach to a running system after
// faults (the conformance fuzzer, the runtime barrier's chaos tests) use
// SuffixSatisfying to decide the verdict without knowing the phase the
// system stabilized at: every possible re-alignment is tried mechanically.

// SuffixSatisfying reports whether some suffix of the trace, starting at a
// Begin event, satisfies the barrier specification with at least
// minSuccesses successful instances and no violation. It returns the index
// of the earliest such suffix start, or -1.
//
// The search is quadratic in the trace length in the worst case, but each
// candidate is abandoned at its first violation, so for traces that do
// stabilize the cost is dominated by the one full replay of the stabilized
// suffix.
func SuffixSatisfying(trace []Event, n, nPhases, minSuccesses int) (start int, ok bool) {
	for i, e := range trace {
		if e.Kind != EvBegin || !ValidPhase(e.Phase, nPhases) {
			continue
		}
		checker := NewSpecCheckerAt(n, nPhases, e.Phase)
		good := true
		for _, ev := range trace[i:] {
			checker.Observe(ev)
			if checker.Violation() != nil {
				good = false
				break
			}
		}
		if good && checker.SuccessfulBarriers() >= minSuccesses {
			return i, true
		}
	}
	return -1, false
}

// SuccessPhases replays a trace from the initial condition (first instance
// of phase 0) and returns the phases of the successful instances together
// with any specification violation. It is the cross-program trace
// equivalence probe: two refinements of the barrier specification are
// observably equivalent iff, run fault-free from the initial state, they
// produce the same success-phase history.
func SuccessPhases(trace []Event, n, nPhases int) ([]int, error) {
	checker := NewSpecChecker(n, nPhases)
	for _, e := range trace {
		checker.Observe(e)
	}
	return checker.SuccessPhaseHistory(), checker.Violation()
}
