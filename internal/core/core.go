// Package core defines the shared vocabulary of the barrier-synchronization
// programs from Kulkarni & Arora, "Low-cost Fault-tolerance in Barrier
// Synchronizations" (ICPP 1998): control positions, phase arithmetic, and a
// trace checker for the barrier specification (Safety and Progress) of
// Section 2 of the paper.
package core

import "fmt"

// CP is a control position of a process. Figure 1 of the paper defines the
// fault-free cycle ready → execute → success → ready; Error is entered when
// a detectable fault resets a process, and Repeat is the extra control
// position introduced by the ring refinement RB (Section 4.1) to propagate
// "some process was detectably corrupted" to process 0.
type CP uint8

// Control positions.
const (
	Ready CP = iota
	Execute
	Success
	Error
	Repeat

	numCP
)

// NumCP is the number of distinct control positions, for use by fault
// injectors that pick arbitrary domain values.
const NumCP = int(numCP)

var cpNames = [...]string{"ready", "execute", "success", "error", "repeat"}

// String returns the paper's name for the control position.
func (c CP) String() string {
	if int(c) < len(cpNames) {
		return cpNames[c]
	}
	return fmt.Sprintf("cp(%d)", uint8(c))
}

// Valid reports whether c is one of the defined control positions. Values
// outside the domain can only be produced by buggy fault injectors; the
// protocols themselves treat every in-domain value.
func (c CP) Valid() bool { return c < numCP }

// NextPhase returns phase+1 in modulo-n arithmetic, the "+" of the paper's
// notational remark. n must be positive.
func NextPhase(phase, n int) int {
	if n <= 0 {
		panic("core: NextPhase requires n > 0")
	}
	return (phase + 1) % n
}

// PrevPhase returns phase-1 in modulo-n arithmetic.
func PrevPhase(phase, n int) int {
	if n <= 0 {
		panic("core: PrevPhase requires n > 0")
	}
	return (phase - 1 + n) % n
}

// ValidPhase reports whether phase is in {0..n-1}.
func ValidPhase(phase, n int) bool { return phase >= 0 && phase < n }

// Letter returns a one-character code for compact state rendering:
// r(eady), x(=execute), s(uccess), !(=error), *(=repeat).
func (c CP) Letter() byte {
	switch c {
	case Ready:
		return 'r'
	case Execute:
		return 'x'
	case Success:
		return 's'
	case Error:
		return '!'
	case Repeat:
		return '*'
	}
	return '?'
}
