package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCPString(t *testing.T) {
	cases := map[CP]string{
		Ready:   "ready",
		Execute: "execute",
		Success: "success",
		Error:   "error",
		Repeat:  "repeat",
	}
	for cp, want := range cases {
		if got := cp.String(); got != want {
			t.Errorf("CP(%d).String() = %q, want %q", cp, got, want)
		}
	}
	if got := CP(99).String(); got != "cp(99)" {
		t.Errorf("out-of-domain CP string = %q", got)
	}
}

func TestCPValid(t *testing.T) {
	for cp := CP(0); cp < CP(NumCP); cp++ {
		if !cp.Valid() {
			t.Errorf("CP %v should be valid", cp)
		}
	}
	if CP(NumCP).Valid() {
		t.Error("CP(NumCP) should be invalid")
	}
}

func TestNumCP(t *testing.T) {
	if NumCP != 5 {
		t.Fatalf("NumCP = %d, want 5 (ready, execute, success, error, repeat)", NumCP)
	}
}

func TestNextPrevPhase(t *testing.T) {
	if got := NextPhase(4, 5); got != 0 {
		t.Errorf("NextPhase(4,5) = %d, want 0", got)
	}
	if got := PrevPhase(0, 5); got != 4 {
		t.Errorf("PrevPhase(0,5) = %d, want 4", got)
	}
	if got := NextPhase(2, 5); got != 3 {
		t.Errorf("NextPhase(2,5) = %d, want 3", got)
	}
}

// Property: PrevPhase inverts NextPhase and both stay in range.
func TestPhaseArithmeticProperties(t *testing.T) {
	f := func(phaseRaw, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		phase := int(phaseRaw) % n
		next := NextPhase(phase, n)
		if !ValidPhase(next, n) {
			return false
		}
		return PrevPhase(next, n) == phase && NextPhase(PrevPhase(phase, n), n) == phase
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: iterating NextPhase n times returns to the start (cyclicity).
func TestPhaseCycleProperty(t *testing.T) {
	f := func(phaseRaw, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		p := int(phaseRaw) % n
		q := p
		for i := 0; i < n; i++ {
			q = NextPhase(q, n)
		}
		return q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NextPhase(0, 0) should panic")
		}
	}()
	NextPhase(0, 0)
}

func TestPrevPhasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PrevPhase(0, 0) should panic")
		}
	}()
	PrevPhase(0, 0)
}

// --- Transition function tests (Figure 1 + the RB refinement rules) ---

func TestFollowerUpdateFaultFreeWaves(t *testing.T) {
	// Execute wave: a ready process whose predecessor is executing begins.
	cp, ph, out := FollowerUpdate(Ready, 3, Execute, 3)
	if cp != Execute || ph != 3 || out != OutBegin {
		t.Errorf("ready/execute: got (%v,%d,%v)", cp, ph, out)
	}
	// Success wave: an executing process whose predecessor succeeded completes.
	cp, ph, out = FollowerUpdate(Execute, 3, Success, 3)
	if cp != Success || ph != 3 || out != OutComplete {
		t.Errorf("execute/success: got (%v,%d,%v)", cp, ph, out)
	}
	// Ready wave: a succeeded process whose predecessor is ready follows into
	// the next phase.
	cp, ph, out = FollowerUpdate(Success, 3, Ready, 4)
	if cp != Ready || ph != 4 || out != OutNone {
		t.Errorf("success/ready: got (%v,%d,%v)", cp, ph, out)
	}
	// Stutter: same control position as predecessor keeps state (phase copies).
	for _, c := range []CP{Ready, Execute, Success, Repeat} {
		cp, ph, out = FollowerUpdate(c, 1, c, 2)
		if cp != c || ph != 2 || out != OutNone {
			t.Errorf("stutter %v: got (%v,%d,%v)", c, cp, ph, out)
		}
	}
}

func TestFollowerUpdateFaultPaths(t *testing.T) {
	// A detectably corrupted process turns the token into a repeat marker.
	cp, _, out := FollowerUpdate(Error, 0, Execute, 5)
	if cp != Repeat || out != OutNone {
		t.Errorf("error/execute: got (%v,%v)", cp, out)
	}
	cp, _, out = FollowerUpdate(Error, 0, Success, 5)
	if cp != Repeat || out != OutNone {
		t.Errorf("error/success: got (%v,%v)", cp, out)
	}
	// But an error process whose predecessor is ready rejoins directly.
	cp, ph, out := FollowerUpdate(Error, 0, Ready, 5)
	if cp != Ready || ph != 5 || out != OutNone {
		t.Errorf("error/ready: got (%v,%d,%v)", cp, ph, out)
	}
	// Repeat propagates and aborts executions downstream.
	cp, _, out = FollowerUpdate(Execute, 5, Repeat, 5)
	if cp != Repeat || out != OutAbandon {
		t.Errorf("execute/repeat: got (%v,%v)", cp, out)
	}
	cp, _, out = FollowerUpdate(Success, 5, Repeat, 5)
	if cp != Repeat || out != OutNone {
		t.Errorf("success/repeat: got (%v,%v)", cp, out)
	}
	// A process pulled into a restart while executing abandons its phase.
	cp, _, out = FollowerUpdate(Execute, 5, Ready, 5)
	if cp != Repeat || out != OutAbandon {
		t.Errorf("execute/ready: got (%v,%v)", cp, out)
	}
}

// Property: FollowerUpdate always adopts the predecessor's phase unless it
// keeps executing, and never invents control positions outside the domain.
func TestFollowerUpdateProperties(t *testing.T) {
	f := func(cpRaw, cpPrevRaw, phRaw, phPrevRaw uint8) bool {
		cp := CP(cpRaw % uint8(NumCP))
		cpPrev := CP(cpPrevRaw % uint8(NumCP))
		ph := int(phRaw % 8)
		phPrev := int(phPrevRaw % 8)
		newCP, newPH, out := FollowerUpdate(cp, ph, cpPrev, phPrev)
		if !newCP.Valid() {
			return false
		}
		if out == OutBegin && !(cp == Ready && cpPrev == Execute) {
			return false
		}
		if out == OutComplete && !(cp == Execute && cpPrev == Success) {
			return false
		}
		// The phase travels with the token except while execution continues.
		if newCP == Execute && cp == Execute {
			return newPH == phPrev // stutter case copies phase too
		}
		return newPH == phPrev
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeaderUpdateFaultFree(t *testing.T) {
	const n = 4
	// All ready in one phase: 0 begins.
	cp, ph, out := LeaderUpdate(Ready, 2, Ready, 2, n)
	if cp != Execute || ph != 2 || out != OutBegin {
		t.Errorf("ready/ready same phase: got (%v,%d,%v)", cp, ph, out)
	}
	// Executing 0 completes on its next token receipt.
	cp, ph, out = LeaderUpdate(Execute, 2, Execute, 2, n)
	if cp != Success || ph != 2 || out != OutComplete {
		t.Errorf("execute: got (%v,%d,%v)", cp, ph, out)
	}
	// All succeeded: 0 increments the phase.
	cp, ph, out = LeaderUpdate(Success, 2, Success, 2, n)
	if cp != Ready || ph != 3 || out != OutNone {
		t.Errorf("success/success: got (%v,%d,%v)", cp, ph, out)
	}
	// Phase increment wraps.
	_, ph, _ = LeaderUpdate(Success, n-1, Success, n-1, n)
	if ph != 0 {
		t.Errorf("phase wrap: got %d, want 0", ph)
	}
}

func TestLeaderUpdateFaultPaths(t *testing.T) {
	const n = 4
	// N reported repeat: 0 re-executes the current phase.
	cp, ph, out := LeaderUpdate(Success, 2, Repeat, 2, n)
	if cp != Ready || ph != 2 || out != OutNone {
		t.Errorf("success/repeat: got (%v,%d,%v)", cp, ph, out)
	}
	// 0 itself was detectably corrupted: recover to ready with N's phase.
	cp, ph, out = LeaderUpdate(Error, 0, Success, 2, n)
	if cp != Ready || ph != 2 || out != OutNone {
		t.Errorf("error: got (%v,%d,%v)", cp, ph, out)
	}
	cp, ph, out = LeaderUpdate(Repeat, 0, Execute, 2, n)
	if cp != Ready || ph != 2 || out != OutNone {
		t.Errorf("repeat: got (%v,%d,%v)", cp, ph, out)
	}
	// 0 ready but N not caught up: keep circulating, change nothing.
	cp, ph, out = LeaderUpdate(Ready, 2, Success, 1, n)
	if cp != Ready || ph != 2 || out != OutNone {
		t.Errorf("ready waiting: got (%v,%d,%v)", cp, ph, out)
	}
	cp, ph, out = LeaderUpdate(Ready, 2, Ready, 1, n)
	if cp != Ready || ph != 2 || out != OutNone {
		t.Errorf("ready phase mismatch: got (%v,%d,%v)", cp, ph, out)
	}
}

// Property: LeaderUpdate keeps phases in range and only begins from
// a proper start condition.
func TestLeaderUpdateProperties(t *testing.T) {
	f := func(cpRaw, cpNRaw, phRaw, phNRaw uint8) bool {
		const nPhases = 6
		cp0 := CP(cpRaw % uint8(NumCP))
		cpN := CP(cpNRaw % uint8(NumCP))
		ph0 := int(phRaw % nPhases)
		phN := int(phNRaw % nPhases)
		newCP, newPH, out := LeaderUpdate(cp0, ph0, cpN, phN, nPhases)
		if !newCP.Valid() || !ValidPhase(newPH, nPhases) {
			return false
		}
		if out == OutBegin && !(cp0 == Ready && cpN == Ready && ph0 == phN) {
			return false
		}
		if out == OutComplete && cp0 != Execute {
			return false
		}
		// The leader never ends in error or repeat.
		return newCP != Error && newCP != Repeat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- SpecChecker tests ---

func barrierRound(t *testing.T, s *SpecChecker, n, phase int) {
	t.Helper()
	for j := 0; j < n; j++ {
		s.Observe(Event{Kind: EvBegin, Proc: j, Phase: phase})
	}
	for j := 0; j < n; j++ {
		s.Observe(Event{Kind: EvComplete, Proc: j, Phase: phase})
	}
}

func TestSpecCheckerFaultFree(t *testing.T) {
	const n, nPhases = 4, 3
	s := NewSpecChecker(n, nPhases)
	for r := 0; r < 7; r++ {
		barrierRound(t, s, n, r%nPhases)
	}
	if err := s.Violation(); err != nil {
		t.Fatalf("fault-free trace flagged: %v", err)
	}
	if s.SuccessfulBarriers() != 7 {
		t.Errorf("successes = %d, want 7", s.SuccessfulBarriers())
	}
	if s.Instances() != 7 {
		t.Errorf("instances = %d, want 7", s.Instances())
	}
}

func TestSpecCheckerInterleavedJoin(t *testing.T) {
	s := NewSpecChecker(3, 2)
	// Processes may begin while others are already executing (CB1's second
	// disjunct) and complete in any order.
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvBegin, Proc: 2, Phase: 0})
	s.Observe(Event{Kind: EvComplete, Proc: 2, Phase: 0})
	s.Observe(Event{Kind: EvBegin, Proc: 1, Phase: 0})
	s.Observe(Event{Kind: EvComplete, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvComplete, Proc: 1, Phase: 0})
	if err := s.Violation(); err != nil {
		t.Fatalf("legal interleaving flagged: %v", err)
	}
	if s.SuccessfulBarriers() != 1 {
		t.Errorf("successes = %d, want 1", s.SuccessfulBarriers())
	}
}

func TestSpecCheckerOverlapViolation(t *testing.T) {
	s := NewSpecChecker(2, 3)
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvBegin, Proc: 1, Phase: 0})
	s.Observe(Event{Kind: EvComplete, Proc: 0, Phase: 0})
	// Process 0 starts phase 1 while process 1 is still executing phase 0.
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 1})
	if s.Violation() == nil {
		t.Fatal("overlapping instances not detected")
	}
}

func TestSpecCheckerSkipPhaseViolation(t *testing.T) {
	s := NewSpecChecker(2, 4)
	barrierRound(t, s, 2, 0)
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 2}) // skips phase 1
	if s.Violation() == nil {
		t.Fatal("phase skip not detected")
	}
}

func TestSpecCheckerAdvanceAfterFailedInstance(t *testing.T) {
	s := NewSpecChecker(2, 3)
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvBegin, Proc: 1, Phase: 0})
	s.Observe(Event{Kind: EvComplete, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvReset, Proc: 1, Phase: 0}) // instance fails
	// Advancing to phase 1 without re-executing phase 0 violates Safety.
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 1})
	if s.Violation() == nil {
		t.Fatal("advance past failed instance not detected")
	}
}

func TestSpecCheckerReexecutionAfterFault(t *testing.T) {
	s := NewSpecChecker(2, 3)
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvBegin, Proc: 1, Phase: 0})
	s.Observe(Event{Kind: EvComplete, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvReset, Proc: 1, Phase: 0})
	// Re-executing phase 0 is the required recovery.
	barrierRound(t, s, 2, 0)
	barrierRound(t, s, 2, 1)
	if err := s.Violation(); err != nil {
		t.Fatalf("legal recovery flagged: %v", err)
	}
	if s.SuccessfulBarriers() != 2 {
		t.Errorf("successes = %d, want 2", s.SuccessfulBarriers())
	}
	if s.Instances() != 3 {
		t.Errorf("instances = %d, want 3 (one failed + two successful)", s.Instances())
	}
}

func TestSpecCheckerResetProcessCannotRejoinOpenInstance(t *testing.T) {
	s := NewSpecChecker(3, 2)
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvBegin, Proc: 1, Phase: 0})
	s.Observe(Event{Kind: EvReset, Proc: 1, Phase: 0})
	// Process 1 restarts its execution while process 0 is still executing:
	// a new instance overlapping the previous one.
	s.Observe(Event{Kind: EvBegin, Proc: 1, Phase: 0})
	if s.Violation() == nil {
		t.Fatal("reset process rejoining open instance not detected")
	}
}

func TestSpecCheckerDoubleCompleteViolation(t *testing.T) {
	s := NewSpecChecker(2, 2)
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvBegin, Proc: 1, Phase: 0})
	s.Observe(Event{Kind: EvComplete, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvComplete, Proc: 0, Phase: 0})
	if s.Violation() == nil {
		t.Fatal("double completion not detected")
	}
}

func TestSpecCheckerCompleteWithoutBegin(t *testing.T) {
	s := NewSpecChecker(2, 2)
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvComplete, Proc: 1, Phase: 0})
	if s.Violation() == nil {
		t.Fatal("completion without begin not detected")
	}
}

func TestSpecCheckerCompletedThenResetStaysSuccessful(t *testing.T) {
	s := NewSpecChecker(2, 3)
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvBegin, Proc: 1, Phase: 0})
	s.Observe(Event{Kind: EvComplete, Proc: 0, Phase: 0})
	s.Observe(Event{Kind: EvReset, Proc: 0, Phase: 0}) // state lost after completing
	s.Observe(Event{Kind: EvComplete, Proc: 1, Phase: 0})
	if err := s.Violation(); err != nil {
		t.Fatalf("completed-then-reset flagged: %v", err)
	}
	if s.SuccessfulBarriers() != 1 {
		t.Errorf("successes = %d, want 1 (everyone executed the phase fully)",
			s.SuccessfulBarriers())
	}
	// The conservative protocol may re-execute phase 0; that must be legal.
	barrierRound(t, s, 2, 0)
	if err := s.Violation(); err != nil {
		t.Fatalf("conservative re-execution flagged: %v", err)
	}
}

func TestSpecCheckerRangeErrors(t *testing.T) {
	s := NewSpecChecker(2, 2)
	s.Observe(Event{Kind: EvBegin, Proc: 7, Phase: 0})
	if s.Violation() == nil {
		t.Fatal("out-of-range process not detected")
	}
	s = NewSpecChecker(2, 2)
	s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 5})
	if s.Violation() == nil {
		t.Fatal("out-of-range phase not detected")
	}
}

// Property: randomly generated *legal* traces — barriers with random join
// orders, random completion orders, and occasional faults followed by
// re-execution — never trip the checker.
func TestSpecCheckerRandomLegalTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(5)
		nPhases := 2 + rng.Intn(4)
		s := NewSpecChecker(n, nPhases)
		phase := 0
		for round := 0; round < 10; round++ {
			order := rng.Perm(n)
			faultAt := -1
			if rng.Intn(3) == 0 {
				faultAt = rng.Intn(n) // this process is reset mid-execution
			}
			for _, j := range order {
				s.Observe(Event{Kind: EvBegin, Proc: j, Phase: phase})
			}
			failed := false
			for _, j := range rng.Perm(n) {
				if j == faultAt {
					s.Observe(Event{Kind: EvReset, Proc: j, Phase: phase})
					failed = true
				} else {
					s.Observe(Event{Kind: EvComplete, Proc: j, Phase: phase})
				}
			}
			if !failed {
				phase = NextPhase(phase, nPhases)
			}
			// After a failed instance the same phase is re-executed in the
			// next round.
		}
		if err := s.Violation(); err != nil {
			t.Fatalf("iter %d: legal trace flagged: %v", iter, err)
		}
	}
}

// Fuzz-style property: the checker must never panic and must stay
// internally consistent (successes ≤ instances, executing ≥ 0 implicitly)
// on completely arbitrary event streams.
func TestSpecCheckerArbitraryStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(5)
		nPhases := 1 + rng.Intn(5)
		s := NewSpecChecker(n, nPhases)
		for i := 0; i < 200; i++ {
			e := Event{
				Kind:  EventKind(rng.Intn(4)), // includes one invalid kind
				Proc:  rng.Intn(n+2) - 1,      // includes out-of-range ids
				Phase: rng.Intn(nPhases+2) - 1,
			}
			s.Observe(e)
			if s.SuccessfulBarriers() > s.Instances() {
				t.Fatalf("iter %d: successes %d exceed instances %d",
					iter, s.SuccessfulBarriers(), s.Instances())
			}
		}
		// Violation (if any) must render.
		if err := s.Violation(); err != nil && err.Error() == "" {
			t.Fatal("empty violation message")
		}
	}
}

// Property: feeding the canonical fault-free trace after any prefix that
// did NOT trip the checker keeps it untripped only if the prefix left a
// consistent instance; conversely a tripped checker stays tripped.
func TestSpecCheckerViolationIsSticky(t *testing.T) {
	s := NewSpecChecker(2, 2)
	s.Observe(Event{Kind: EvComplete, Proc: 0, Phase: 0}) // trip it
	if s.Violation() == nil {
		t.Fatal("checker should have tripped")
	}
	first := s.Violation().Error()
	for i := 0; i < 10; i++ {
		s.Observe(Event{Kind: EvBegin, Proc: 0, Phase: 0})
	}
	if got := s.Violation().Error(); got != first {
		t.Fatalf("violation changed from %q to %q", first, got)
	}
}
