package core

import "fmt"

// EventKind classifies the observable events of a barrier-synchronization
// computation that the specification of Section 2 constrains.
type EventKind uint8

const (
	// EvBegin is emitted when a process starts executing its phase
	// (transition ready → execute).
	EvBegin EventKind = iota
	// EvComplete is emitted when a process finishes executing its phase
	// fully (transition execute → success).
	EvComplete
	// EvReset is emitted when a detectable fault resets a process (its
	// control position becomes error), aborting any partial execution.
	EvReset
)

func (k EventKind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvComplete:
		return "complete"
	case EvReset:
		return "reset"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one observable step of a computation, fed to SpecChecker.
type Event struct {
	Kind  EventKind
	Proc  int
	Phase int
}

func (e Event) String() string {
	return fmt.Sprintf("%s(proc=%d, phase=%d)", e.Kind, e.Proc, e.Phase)
}

// SpecViolation describes how a trace violated the barrier specification.
type SpecViolation struct {
	Event  Event
	Reason string
}

func (v *SpecViolation) Error() string {
	return fmt.Sprintf("barrier spec violated at %v: %s", v.Event, v.Reason)
}

// SpecChecker validates a trace of Begin/Complete/Reset events against the
// barrier-synchronization specification of Section 2:
//
//	Safety:   (i) no two instances of a phase overlap — a new instance
//	          begins only when no process is executing in the previous one;
//	          (ii) an instance of phase i+1 begins only after a successful
//	          instance of phase i (one in which all processes executed the
//	          phase fully);
//	          (iii) within one instance each process executes the phase at
//	          most once.
//	Progress: tracked via SuccessfulBarriers; tests assert it increases
//	          once faults stop.
//
// The checker is deliberately operational: protocols under test emit events
// at their ready→execute and execute→success transitions and at detectable
// resets, and the checker maintains the instance structure that the paper's
// definitions induce.
type SpecChecker struct {
	n       int // number of processes
	nPhases int // number of phases in the cyclic sequence

	// Current instance state.
	open      bool
	phase     int // phase of the current (or last) instance
	began     []bool
	completed []bool
	resetHere []bool // reset by a detectable fault during this instance
	executing int    // processes with began && !completed && !reset
	nComplete int
	failed    bool // a reset aborted some execution in this instance

	// Outcome of the last closed instance.
	haveLast    bool
	lastPhase   int
	lastSuccess bool

	successes     int   // number of successful instances observed
	instances     int   // total instances observed (successful or not)
	successPhases []int // phases of the successful instances, in order

	violation *SpecViolation
}

// NewSpecChecker returns a checker for n processes cycling through nPhases
// phases. The initial condition of the specification is that phase
// nPhases-1 has executed successfully, so the first instance must be of
// phase 0.
func NewSpecChecker(n, nPhases int) *SpecChecker {
	return NewSpecCheckerAt(n, nPhases, 0)
}

// NewSpecCheckerAt returns a checker whose first expected instance is of
// phase nextPhase — used when attaching a checker to a computation that has
// already stabilized at an arbitrary phase.
func NewSpecCheckerAt(n, nPhases, nextPhase int) *SpecChecker {
	if n <= 0 || nPhases <= 0 {
		panic("core: SpecChecker requires n > 0 and nPhases > 0")
	}
	if !ValidPhase(nextPhase, nPhases) {
		panic("core: SpecChecker nextPhase out of range")
	}
	return &SpecChecker{
		n:           n,
		nPhases:     nPhases,
		began:       make([]bool, n),
		completed:   make([]bool, n),
		resetHere:   make([]bool, n),
		haveLast:    true,
		lastPhase:   PrevPhase(nextPhase, nPhases),
		lastSuccess: true,
	}
}

// Violation returns the first specification violation observed, or nil.
func (s *SpecChecker) Violation() error {
	if s.violation == nil {
		return nil
	}
	return s.violation
}

// SuccessfulBarriers returns the number of instances in which every process
// completed the phase — i.e., the number of barriers passed correctly.
func (s *SpecChecker) SuccessfulBarriers() int { return s.successes }

// Instances returns the total number of phase instances begun.
func (s *SpecChecker) Instances() int { return s.instances }

// SuccessPhaseHistory returns the phases of the successful instances, in
// the order the barriers were passed. Because the specification admits
// exactly one observable behavior modulo fault-induced repeats — the
// cyclic phase sequence — this history is the canonical trace against
// which the refinements (CB, RB, TB, DT, MB, runtime) are compared for
// trace equivalence. The returned slice is shared; callers must not
// modify it.
func (s *SpecChecker) SuccessPhaseHistory() []int { return s.successPhases }

// CurrentPhase returns the phase of the instance currently open (or most
// recently open) and whether any instance has begun at all.
func (s *SpecChecker) CurrentPhase() (phase int, begun bool) {
	return s.phase, s.instances > 0
}

func (s *SpecChecker) fail(e Event, format string, args ...any) {
	if s.violation == nil {
		s.violation = &SpecViolation{Event: e, Reason: fmt.Sprintf(format, args...)}
	}
}

// Observe feeds one event to the checker. Events arriving after the first
// violation are ignored (the trace is already condemned).
func (s *SpecChecker) Observe(e Event) {
	if s.violation != nil {
		return
	}
	if e.Proc < 0 || e.Proc >= s.n {
		s.fail(e, "process id out of range [0,%d)", s.n)
		return
	}
	switch e.Kind {
	case EvBegin:
		s.observeBegin(e)
	case EvComplete:
		s.observeComplete(e)
	case EvReset:
		s.observeReset(e)
	default:
		s.fail(e, "unknown event kind")
	}
}

// closeInstance records the outcome of the open instance.
func (s *SpecChecker) closeInstance() {
	s.haveLast = true
	s.lastPhase = s.phase
	s.lastSuccess = s.nComplete == s.n && !s.failed
	if s.lastSuccess {
		s.successes++
		s.successPhases = append(s.successPhases, s.phase)
	}
	s.open = false
}

func (s *SpecChecker) observeBegin(e Event) {
	if !ValidPhase(e.Phase, s.nPhases) {
		s.fail(e, "phase out of range [0,%d)", s.nPhases)
		return
	}
	// A process may join the instance in progress if it has not executed in
	// it (partially or fully) and some process is still executing: CB1's
	// second disjunct only lets a ready process join while another is in
	// execute. Once the instance has drained, further begins belong to the
	// next instance.
	join := s.open && e.Phase == s.phase && !s.began[e.Proc] && !s.resetHere[e.Proc] &&
		s.executing > 0
	if join {
		s.began[e.Proc] = true
		s.executing++
		return
	}

	// Otherwise this event starts a new instance.
	if s.open {
		// Safety (i): a new instance may begin only when no process is
		// executing in the current one.
		if s.executing > 0 {
			s.fail(e, "new instance of phase %d while %d process(es) still executing phase %d",
				e.Phase, s.executing, s.phase)
			return
		}
		s.closeInstance()
	}

	// Safety (ii): legality of the new instance's phase.
	switch {
	case !s.haveLast:
		s.fail(e, "internal: no prior instance outcome")
		return
	case s.lastSuccess && e.Phase == NextPhase(s.lastPhase, s.nPhases):
		// Normal progress to the next phase.
	case e.Phase == s.lastPhase:
		// Re-execution of the current phase: required after an
		// unsuccessful instance, and harmless (though wasteful) after a
		// successful one — the last instance in the sequence decides.
	default:
		s.fail(e, "instance of phase %d begun, but last instance was phase %d (success=%v)",
			e.Phase, s.lastPhase, s.lastSuccess)
		return
	}

	s.open = true
	s.phase = e.Phase
	s.failed = false
	s.nComplete = 0
	s.executing = 1
	for i := range s.began {
		s.began[i] = false
		s.completed[i] = false
		s.resetHere[i] = false
	}
	s.began[e.Proc] = true
	s.instances++
}

func (s *SpecChecker) observeComplete(e Event) {
	if !s.open {
		s.fail(e, "complete with no instance open")
		return
	}
	if e.Phase != s.phase {
		s.fail(e, "complete for phase %d but open instance is phase %d", e.Phase, s.phase)
		return
	}
	if !s.began[e.Proc] {
		s.fail(e, "process completed a phase it never began in this instance")
		return
	}
	if s.completed[e.Proc] {
		// Safety (iii): each process executes the phase at most once per
		// instance.
		s.fail(e, "process completed the phase twice in one instance")
		return
	}
	s.completed[e.Proc] = true
	s.executing--
	s.nComplete++
	if s.nComplete == s.n {
		s.closeInstance()
	}
}

func (s *SpecChecker) observeReset(e Event) {
	if !s.open {
		return // a reset between instances aborts nothing
	}
	// Only a process that already executed in this instance (partially or
	// fully) is barred from executing in it again; a process reset while it
	// was still ready may later join the instance for its first and only
	// execution.
	if s.began[e.Proc] {
		s.resetHere[e.Proc] = true
	}
	if s.began[e.Proc] && !s.completed[e.Proc] {
		// The process's partial execution is abandoned; the instance can no
		// longer have all processes execute the phase fully.
		s.executing--
		s.began[e.Proc] = false
		s.failed = true
	}
	// A reset of a process that already completed does not undo its
	// completion: the paper's definition of a successful instance only
	// requires that all processes executed the phase fully in it. The
	// protocol will conservatively re-execute the phase (its state is
	// lost), which the checker permits as a repeat instance.
}

// EventSink consumes trace events; SpecChecker.Observe is the canonical
// implementation.
type EventSink func(Event)
