package guarded

import (
	"math/rand"
	"testing"
)

// counterProgram builds a program where each of n processes increments its
// own counter while it is below limit.
func counterProgram(n, limit int) (*Program, []int) {
	p := NewProgram()
	counts := make([]int, n)
	for j := 0; j < n; j++ {
		j := j
		p.Add(Action{
			Name:  "inc",
			Proc:  j,
			Guard: func() bool { return counts[j] < limit },
			Body: func() func() {
				return func() { counts[j]++ }
			},
		})
	}
	return p, counts
}

func TestAddValidation(t *testing.T) {
	p := NewProgram()
	defer func() {
		if recover() == nil {
			t.Error("Add without Guard/Body should panic")
		}
	}()
	p.Add(Action{Name: "bad"})
}

func TestRoundRobinFairness(t *testing.T) {
	p, counts := counterProgram(5, 10)
	res := p.RunRoundRobin(1000, nil, nil)
	if !res.Quiescent {
		t.Fatalf("expected quiescence, got %v", res)
	}
	if res.Steps != 50 {
		t.Errorf("steps = %d, want 50", res.Steps)
	}
	for j, c := range counts {
		if c != 10 {
			t.Errorf("counter %d = %d, want 10 (round robin is weakly fair)", j, c)
		}
	}
}

func TestRandomSchedulerReachesQuiescence(t *testing.T) {
	p, counts := counterProgram(4, 25)
	rng := rand.New(rand.NewSource(1))
	res := p.RunRandom(rng, 10000, nil, nil)
	if !res.Quiescent {
		t.Fatalf("expected quiescence, got %v", res)
	}
	for j, c := range counts {
		if c != 25 {
			t.Errorf("counter %d = %d, want 25", j, c)
		}
	}
}

func TestMaxParallelExecutesOnePerProcess(t *testing.T) {
	p, counts := counterProgram(8, 3)
	executed := p.StepMaxParallel(nil)
	if executed != 8 {
		t.Fatalf("round executed %d actions, want 8 (one per process)", executed)
	}
	for j, c := range counts {
		if c != 1 {
			t.Errorf("counter %d = %d after one round, want 1", j, c)
		}
	}
	res := p.RunMaxParallel(nil, 100, nil, nil)
	if !res.Quiescent || res.Steps != 2 {
		t.Fatalf("expected quiescence after 2 more rounds, got %v", res)
	}
}

// The defining property of the maximal parallel semantics: all statements
// read the pre-state of the round. Two processes swapping values must end
// up exchanged, not aliased.
func TestMaxParallelReadsPreState(t *testing.T) {
	x, y := 1, 2
	p := NewProgram()
	p.Add(Action{
		Name:  "copyY",
		Proc:  0,
		Guard: func() bool { return x != y },
		Body: func() func() {
			v := y
			return func() { x = v }
		},
	})
	p.Add(Action{
		Name:  "copyX",
		Proc:  1,
		Guard: func() bool { return x != y },
		Body: func() func() {
			v := x
			return func() { y = v }
		},
	})
	if n := p.StepMaxParallel(nil); n != 2 {
		t.Fatalf("executed %d, want 2", n)
	}
	if x != 2 || y != 1 {
		t.Fatalf("after simultaneous swap x=%d y=%d, want x=2 y=1", x, y)
	}
}

func TestMaxParallelPicksOneActionPerProcess(t *testing.T) {
	fired := make([]int, 2)
	total := 0
	p := NewProgram()
	for a := 0; a < 2; a++ {
		a := a
		p.Add(Action{
			Name:  "a",
			Proc:  0,
			Guard: func() bool { return total < 1 },
			Body: func() func() {
				return func() { fired[a]++; total++ }
			},
		})
	}
	if n := p.StepMaxParallel(nil); n != 1 {
		t.Fatalf("executed %d actions for one process, want 1", n)
	}
	// Deterministic selection picks the first in insertion order.
	if fired[0] != 1 || fired[1] != 0 {
		t.Errorf("deterministic pick fired %v, want [1 0]", fired)
	}
}

func TestMaxParallelRandomPick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := make(map[int]bool)
	for trial := 0; trial < 100; trial++ {
		choice := -1
		p := NewProgram()
		for a := 0; a < 3; a++ {
			a := a
			p.Add(Action{
				Name:  "a",
				Proc:  0,
				Guard: func() bool { return choice == -1 },
				Body: func() func() {
					return func() { choice = a }
				},
			})
		}
		p.StepMaxParallel(rng)
		seen[choice] = true
	}
	if len(seen) != 3 {
		t.Errorf("random pick over 100 trials chose %v, want all 3 actions", seen)
	}
}

func TestRunStopPredicate(t *testing.T) {
	p, counts := counterProgram(1, 100)
	res := p.RunRoundRobin(1000, func() bool { return counts[0] >= 7 }, nil)
	if !res.Stopped {
		t.Fatalf("expected stop, got %v", res)
	}
	if counts[0] != 7 {
		t.Errorf("stopped at %d, want 7", counts[0])
	}
}

func TestRunAfterHook(t *testing.T) {
	p, _ := counterProgram(2, 5)
	calls := 0
	res := p.RunRoundRobin(1000, nil, func() { calls++ })
	if calls != res.Steps {
		t.Errorf("after hook called %d times over %d steps", calls, res.Steps)
	}
}

func TestRunBudgetExhausted(t *testing.T) {
	p, _ := counterProgram(1, 1<<30)
	res := p.RunRoundRobin(10, nil, nil)
	if res.Quiescent || res.Stopped || res.Steps != 10 {
		t.Errorf("expected budget exhaustion at 10 steps, got %v", res)
	}
}

func TestEnabledNames(t *testing.T) {
	p, counts := counterProgram(3, 1)
	if got := len(p.Enabled()); got != 3 {
		t.Errorf("enabled = %d, want 3", got)
	}
	counts[0] = 1
	counts[1] = 1
	counts[2] = 1
	if p.AnyEnabled() {
		t.Error("no action should be enabled at the limit")
	}
}

func TestProcesses(t *testing.T) {
	p, _ := counterProgram(4, 1)
	procs := p.Processes()
	if len(procs) != 4 {
		t.Fatalf("processes = %v", procs)
	}
	for i, pr := range procs {
		if pr != i {
			t.Errorf("process order %v, want insertion order", procs)
			break
		}
	}
	if p.NumActions() != 4 {
		t.Errorf("NumActions = %d, want 4", p.NumActions())
	}
}

func TestRunResultString(t *testing.T) {
	for _, r := range []RunResult{
		{Steps: 3, Stopped: true},
		{Steps: 4, Quiescent: true},
		{Steps: 5},
	} {
		if r.String() == "" {
			t.Errorf("empty String for %#v", r)
		}
	}
}

// Property-style test: interleaving and maximal parallel schedulers agree
// on the final state of a confluent program (independent counters).
func TestSchedulerConfluence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		limit := 1 + rng.Intn(20)

		p1, c1 := counterProgram(n, limit)
		p1.RunRandom(rng, 100000, nil, nil)

		p2, c2 := counterProgram(n, limit)
		p2.RunMaxParallel(rng, 100000, nil, nil)

		for j := 0; j < n; j++ {
			if c1[j] != limit || c2[j] != limit {
				t.Fatalf("seed %d: schedulers disagree: %v vs %v", seed, c1, c2)
			}
		}
	}
}
