// Package guarded is an execution engine for guarded-command programs in
// the style used by Kulkarni & Arora (ICPP 1998) and by their SIEFAST
// simulation environment: a program is a finite set of actions
//
//	(name) :: (guard) → (statement)
//
// per process, a computation is a fair interleaving of atomically executed
// enabled actions, and — for performance evaluation — the maximal parallel
// semantics executes, in every step, one enabled action at every process
// that has one.
//
// Statements are represented in two phases (evaluate against the pre-state,
// then commit) so that the maximal parallel semantics can execute all
// selected actions simultaneously: every statement reads the state as it
// was at the start of the step, exactly as the paper's "true concurrency"
// model requires.
package guarded

import (
	"fmt"
	"math/rand"
)

// Action is one guarded command of a process.
//
// Guard is a side-effect-free predicate over the current state. Body is
// evaluated against the pre-state and returns a commit function that
// applies the statement's updates; the commit must only write variables of
// the action's own process (the paper's model: "the statement updates zero
// or more variables of that process"). Body may return nil to indicate that
// re-examination of the state showed nothing to do.
type Action struct {
	Name  string
	Proc  int
	Guard func() bool
	Body  func() func()
}

// Program is a set of actions over externally owned state, plus the
// schedulers that drive them.
type Program struct {
	actions []Action
	byProc  map[int][]int // action indices per process, in insertion order
	procs   []int         // distinct process ids, in first-appearance order

	cursor int // round-robin cursor for deterministic interleaving

	// procGate, when set, must hold for a process before any of its
	// actions is considered enabled — the paper's Section 7 auxiliary
	// variable "up": a crashed process (up = false) executes no actions.
	procGate func(proc int) bool

	// scratch buffers reused across steps
	enabledIdx []int
	commits    []func()
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{byProc: make(map[int][]int)}
}

// Add appends an action to the program. Actions of the same process are
// kept in insertion order, which serves as the deterministic priority used
// when a scheduler must pick one of several enabled actions of a process.
func (p *Program) Add(a Action) {
	if a.Guard == nil || a.Body == nil {
		panic("guarded: action needs both Guard and Body")
	}
	if _, seen := p.byProc[a.Proc]; !seen {
		p.procs = append(p.procs, a.Proc)
	}
	p.byProc[a.Proc] = append(p.byProc[a.Proc], len(p.actions))
	p.actions = append(p.actions, a)
}

// NumActions returns the number of actions in the program.
func (p *Program) NumActions() int { return len(p.actions) }

// SetProcessGate installs a per-process enablement gate, realizing the
// paper's auxiliary-variable modeling of crashes and hangs (Section 7):
// while gate(proc) is false, no action of proc is enabled. A nil gate
// (the default) enables all processes.
func (p *Program) SetProcessGate(gate func(proc int) bool) { p.procGate = gate }

// enabled reports whether action i is enabled, honoring the process gate.
func (p *Program) enabled(i int) bool {
	if p.procGate != nil && !p.procGate(p.actions[i].Proc) {
		return false
	}
	return p.actions[i].Guard()
}

// Processes returns the distinct process ids, in first-appearance order.
// The returned slice is shared; callers must not modify it.
func (p *Program) Processes() []int { return p.procs }

// Enabled returns the names of all currently enabled actions, primarily for
// debugging and tests.
func (p *Program) Enabled() []string {
	var names []string
	for i := range p.actions {
		if p.enabled(i) {
			names = append(names, p.actions[i].Name)
		}
	}
	return names
}

// AnyEnabled reports whether at least one action is enabled.
func (p *Program) AnyEnabled() bool {
	for i := range p.actions {
		if p.enabled(i) {
			return true
		}
	}
	return false
}

// StepRandom executes one enabled action chosen uniformly at random — a
// probabilistically fair interleaving. It reports whether any action was
// enabled, and the name of the executed action.
func (p *Program) StepRandom(rng *rand.Rand) (name string, ok bool) {
	p.enabledIdx = p.enabledIdx[:0]
	for i := range p.actions {
		if p.enabled(i) {
			p.enabledIdx = append(p.enabledIdx, i)
		}
	}
	if len(p.enabledIdx) == 0 {
		return "", false
	}
	i := p.enabledIdx[rng.Intn(len(p.enabledIdx))]
	if commit := p.actions[i].Body(); commit != nil {
		commit()
	}
	return p.actions[i].Name, true
}

// StepRoundRobin executes the first enabled action at or after the internal
// cursor, then advances the cursor past it — a deterministic weakly fair
// interleaving (every continuously enabled action is executed within one
// full sweep). It reports whether any action was enabled.
func (p *Program) StepRoundRobin() (name string, ok bool) {
	n := len(p.actions)
	for off := 0; off < n; off++ {
		i := (p.cursor + off) % n
		if p.enabled(i) {
			if commit := p.actions[i].Body(); commit != nil {
				commit()
			}
			p.cursor = (i + 1) % n
			return p.actions[i].Name, true
		}
	}
	return "", false
}

// StepMaxParallel executes one step of the maximal parallel semantics: for
// every process with at least one enabled action, one enabled action is
// selected (the first in insertion order, or a uniformly random one if rng
// is non-nil) and all selected actions are executed simultaneously — every
// Body is evaluated against the pre-state before any commit is applied.
// It returns the number of actions executed.
func (p *Program) StepMaxParallel(rng *rand.Rand) int {
	p.commits = p.commits[:0]
	for _, proc := range p.procs {
		if p.procGate != nil && !p.procGate(proc) {
			continue
		}
		idxs := p.byProc[proc]
		p.enabledIdx = p.enabledIdx[:0]
		for _, i := range idxs {
			if p.actions[i].Guard() {
				if rng == nil {
					p.enabledIdx = append(p.enabledIdx[:0], i)
					break
				}
				p.enabledIdx = append(p.enabledIdx, i)
			}
		}
		if len(p.enabledIdx) == 0 {
			continue
		}
		pick := p.enabledIdx[0]
		if rng != nil && len(p.enabledIdx) > 1 {
			pick = p.enabledIdx[rng.Intn(len(p.enabledIdx))]
		}
		if commit := p.actions[pick].Body(); commit != nil {
			p.commits = append(p.commits, commit)
		}
	}
	for _, c := range p.commits {
		c()
	}
	return len(p.commits)
}

// StepEnabled executes the (k mod count)-th currently enabled action, in
// insertion order, where count is the number of enabled actions. It is the
// adversarial-scheduling hook used by the conformance fuzzer: an external
// choice sequence (e.g. fuzzer-provided bytes) selects exactly which
// enabled action fires, reaching interleavings that the uniform and
// round-robin schedulers sample only with low probability. It reports
// whether any action was enabled, and the name of the executed action.
func (p *Program) StepEnabled(k int) (name string, ok bool) {
	p.enabledIdx = p.enabledIdx[:0]
	for i := range p.actions {
		if p.enabled(i) {
			p.enabledIdx = append(p.enabledIdx, i)
		}
	}
	if len(p.enabledIdx) == 0 {
		return "", false
	}
	k %= len(p.enabledIdx)
	if k < 0 {
		k += len(p.enabledIdx)
	}
	i := p.enabledIdx[k]
	if commit := p.actions[i].Body(); commit != nil {
		commit()
	}
	return p.actions[i].Name, true
}

// RunResult summarizes a scheduler run.
type RunResult struct {
	Steps     int  // scheduler steps taken (interleaving: actions; maximal parallel: rounds)
	Quiescent bool // the run ended because no action was enabled
	Stopped   bool // the run ended because the stop predicate held
}

func (r RunResult) String() string {
	switch {
	case r.Stopped:
		return fmt.Sprintf("stopped after %d step(s)", r.Steps)
	case r.Quiescent:
		return fmt.Sprintf("quiescent after %d step(s)", r.Steps)
	default:
		return fmt.Sprintf("step budget exhausted after %d step(s)", r.Steps)
	}
}

// Run drives the program with the given single-step function until the stop
// predicate holds (checked before every step), the program is quiescent, or
// maxSteps steps have been taken. step must report whether it executed
// anything. Either stop or after may be nil.
//
//	res := prog.Run(maxSteps, stop, func() bool { _, ok := prog.StepRoundRobin(); return ok }, after)
func (p *Program) Run(maxSteps int, stop func() bool, step func() bool, after func()) RunResult {
	for n := 0; n < maxSteps; n++ {
		if stop != nil && stop() {
			return RunResult{Steps: n, Stopped: true}
		}
		if !step() {
			return RunResult{Steps: n, Quiescent: true}
		}
		if after != nil {
			after()
		}
	}
	return RunResult{Steps: maxSteps, Stopped: stop != nil && stop()}
}

// RunRandom runs the probabilistically fair interleaving scheduler.
func (p *Program) RunRandom(rng *rand.Rand, maxSteps int, stop func() bool, after func()) RunResult {
	return p.Run(maxSteps, stop, func() bool { _, ok := p.StepRandom(rng); return ok }, after)
}

// RunRoundRobin runs the deterministic weakly fair interleaving scheduler.
func (p *Program) RunRoundRobin(maxSteps int, stop func() bool, after func()) RunResult {
	return p.Run(maxSteps, stop, func() bool { _, ok := p.StepRoundRobin(); return ok }, after)
}

// RunMaxParallel runs the maximal parallel scheduler for at most maxRounds
// rounds.
func (p *Program) RunMaxParallel(rng *rand.Rand, maxRounds int, stop func() bool, after func()) RunResult {
	return p.Run(maxRounds, stop, func() bool { return p.StepMaxParallel(rng) > 0 }, after)
}

// StepIndex executes exactly the i-th action (in insertion order) if its
// guard holds, and reports whether it executed. It gives model checkers
// and tests precise control over the transition relation.
func (p *Program) StepIndex(i int) bool {
	if i < 0 || i >= len(p.actions) {
		return false
	}
	if !p.enabled(i) {
		return false
	}
	if commit := p.actions[i].Body(); commit != nil {
		commit()
	}
	return true
}
