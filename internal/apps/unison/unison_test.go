package unison

import (
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(3, 2, 1); err == nil {
		t.Error("modulus 2 should be rejected")
	}
	if _, err := New(1, 4, 1); err == nil {
		t.Error("single process should be rejected")
	}
	c, err := New(4, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 || c.Modulus() != 5 {
		t.Error("accessors wrong")
	}
}

// Unison safety: in the absence of faults, the pairwise cyclic skew never
// exceeds 1.
func TestSkewBoundedFaultFree(t *testing.T) {
	c, err := New(5, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if !c.Step() {
			t.Fatal("clock deadlocked")
		}
		if skew := c.MaxSkew(); skew > 1 {
			t.Fatalf("step %d: skew %d exceeds 1 (values %v)", i, skew, values(c))
		}
	}
}

// Unison liveness: clocks are incremented infinitely often.
func TestClocksAdvance(t *testing.T) {
	c, err := New(4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	increments := 0
	last := c.Value(0)
	for i := 0; i < 50000 && increments < 20; i++ {
		if !c.Step() {
			t.Fatal("clock deadlocked")
		}
		if v := c.Value(0); v != last {
			increments++
			last = v
		}
	}
	if increments < 20 {
		t.Fatalf("clock 0 advanced only %d times", increments)
	}
}

// Stabilization: from arbitrary clock values (undetectable faults) the
// protocol reaches unison and keeps it forever after.
func TestStabilizesFromArbitraryState(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		c, err := New(4, 6, 100+seed)
		if err != nil {
			t.Fatal(err)
		}
		c.Scramble()
		stabilized := false
		for i := 0; i < 50000; i++ {
			if c.Stabilized() {
				stabilized = true
				break
			}
			if !c.Step() {
				t.Fatal("clock deadlocked during stabilization")
			}
		}
		if !stabilized {
			t.Fatalf("seed %d: no stabilization (values %v)", seed, values(c))
		}
		// Closure: unison holds on every subsequent step.
		for i := 0; i < 5000; i++ {
			if !c.Step() {
				t.Fatal("clock deadlocked after stabilization")
			}
			if !c.InUnison() {
				t.Fatalf("seed %d: unison violated after stabilization (values %v)",
					seed, values(c))
			}
		}
	}
}

func values(c *Clock) []int {
	vs := make([]int, c.N())
	for j := range vs {
		vs[j] = c.Value(j)
	}
	return vs
}

// Property over random seeds: unison safety (skew ≤ 1) and liveness hold
// for arbitrary process counts and moduli.
func TestUnisonProperty(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		n := 2 + int(seed%5)
		mod := 3 + int(seed%6)
		c, err := New(n, mod, seed)
		if err != nil {
			t.Fatal(err)
		}
		advanced := 0
		last := c.Value(0)
		for i := 0; i < 5000; i++ {
			if !c.Step() {
				t.Fatalf("seed %d: deadlock", seed)
			}
			if c.MaxSkew() > 1 {
				t.Fatalf("seed %d: skew %d (values %v)", seed, c.MaxSkew(), values(c))
			}
			if v := c.Value(0); v != last {
				advanced++
				last = v
			}
		}
		if advanced == 0 {
			t.Fatalf("seed %d: clock never advanced", seed)
		}
	}
}
