// Package unison instantiates the barrier-synchronization program as a
// self-stabilizing bounded clock-unison protocol, per Section 7 of the
// paper: every process maintains a bounded counter (clock) such that at all
// times the counters of any two processes differ by at most one (cyclically)
// and the counters are incremented infinitely often.
//
// The mapping is the paper's: phase i of the barrier computation is the
// i-th clock value, and since the barrier program keeps all phases within
// one of each other and is stabilizing tolerant to undetectable faults, it
// meets clock unison's requirements.
package unison

import (
	"errors"
	"math/rand"

	"repro/internal/cb"
)

// Clock is a bounded-domain unison clock over n processes.
type Clock struct {
	prog    *cb.Program
	n       int
	modulus int
	rng     *rand.Rand
}

// New creates a unison clock with values in {0..modulus-1}. modulus must be
// at least 3 so that cyclic skew is well defined.
func New(nProcs, modulus int, seed int64) (*Clock, error) {
	if modulus < 3 {
		return nil, errors.New("unison: modulus must be at least 3")
	}
	rng := rand.New(rand.NewSource(seed))
	prog, err := cb.New(nProcs, modulus, rng, nil)
	if err != nil {
		return nil, err
	}
	return &Clock{prog: prog, n: nProcs, modulus: modulus, rng: rng}, nil
}

// N returns the number of processes.
func (c *Clock) N() int { return c.n }

// Modulus returns the clock domain size.
func (c *Clock) Modulus() int { return c.modulus }

// Value returns process j's clock.
func (c *Clock) Value(j int) int { return c.prog.Phase(j) }

// Step executes one protocol step (a fair interleaving step); it reports
// whether any action was enabled.
func (c *Clock) Step() bool {
	_, ok := c.prog.Guarded().StepRandom(c.rng)
	return ok
}

// Scramble perturbs every process to an arbitrary state — the undetectable
// fault model of clock unison. The protocol re-stabilizes: eventually skew
// stays within one and clocks keep advancing.
func (c *Clock) Scramble() {
	for j := 0; j < c.n; j++ {
		c.prog.InjectUndetectable(j)
	}
}

// cyclicDiff returns the cyclic distance between clock values a and b.
func (c *Clock) cyclicDiff(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := c.modulus - d; alt < d {
		d = alt
	}
	return d
}

// MaxSkew returns the maximum pairwise cyclic difference between clocks.
// Unison requires MaxSkew ≤ 1. (During stabilization after undetectable
// faults it may transiently exceed 1.)
func (c *Clock) MaxSkew() int {
	max := 0
	for i := 0; i < c.n; i++ {
		for j := i + 1; j < c.n; j++ {
			if d := c.cyclicDiff(c.prog.Phase(i), c.prog.Phase(j)); d > max {
				max = d
			}
		}
	}
	return max
}

// InUnison reports whether all clocks are within one of each other and the
// underlying program is in a consistent protocol state.
func (c *Clock) InUnison() bool { return c.MaxSkew() <= 1 }

// Stabilized reports whether the program reached a start state (from which
// unison holds forever).
func (c *Clock) Stabilized() bool { return c.prog.InStartState() }
