// Package counting instantiates the live barrier as a synchronous
// counting protocol in the style of Lenzen & Rybicki's "Towards Optimal
// Synchronous Counting": every correct member outputs a bounded counter,
// all correct members agree on its value, and the value increments by one
// each round — while a subset of members behaves Byzantine.
//
// The mapping mirrors the unison app's: the barrier's phase counter is
// the bounded counter (round i outputs i mod the modulus), so agreement
// and increment reduce to the barrier's phase-ordering guarantee. A
// Byzantine member here participates in the protocol (a silent member is
// a crash fault, a different class) but additionally fires one crafted
// forgery — wrong-phase replay, stale-sequence echo or premature ⊤ —
// into its neighborhood every round. The run survives if no correct
// member ever observes an out-of-order counter and every correct member
// keeps counting; the frame-validation layer makes that concrete by
// rejecting each forgery exactly once (Injected vs Rejected below).
package counting

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
)

// Config describes one counting run.
type Config struct {
	// Topology is "ring", "tree" or "hybrid" (hybrid fuses members
	// pairwise onto hosts).
	Topology string
	// N is the member count; Modulus the counter domain (the barrier's
	// phase modulus), at least 3.
	N, Modulus int
	// Byz lists the Byzantine members. Correct members are the rest.
	Byz []int
	// Rounds is how many counter increments every correct member must
	// complete.
	Rounds int
	// Seed drives the forgery-shape draws.
	Seed int64
}

// Result reports what a counting run observed.
type Result struct {
	// Rounds is the smallest number of rounds any correct member
	// completed (≥ Config.Rounds when the run survived).
	Rounds int
	// OrderViolations counts out-of-order counter observations by
	// correct members: any nonzero value means counting failed.
	OrderViolations int
	// Injected is the number of forgeries delivered on behalf of the
	// Byzantine members; Rejected is how many frames the validation
	// windows refused. In a byz-only run they match exactly.
	Injected, Rejected int64
	// Survived reports the counting verdict: every correct member
	// reached Config.Rounds with zero order violations.
	Survived bool
}

// Run executes one counting experiment and reports its verdict.
func Run(cfg Config) (Result, error) {
	if cfg.Modulus < 3 {
		return Result{}, errors.New("counting: modulus must be at least 3")
	}
	if cfg.Rounds < 1 || cfg.N < 2 {
		return Result{}, errors.New("counting: need at least 2 members and 1 round")
	}
	byz := make([]bool, cfg.N)
	for _, j := range cfg.Byz {
		if j < 0 || j >= cfg.N {
			return Result{}, fmt.Errorf("counting: Byzantine member %d out of range", j)
		}
		byz[j] = true
	}
	rcfg := runtime.Config{
		Participants: cfg.N,
		NPhases:      cfg.Modulus,
		Seed:         cfg.Seed,
		Resend:       50 * time.Microsecond,
	}
	switch cfg.Topology {
	case "ring":
	case "tree":
		rcfg.Topology = runtime.TopologyTree
	case "hybrid":
		rcfg.Topology = runtime.TopologyHybrid
		for h := 0; h < cfg.N; h += 2 {
			top := h + 2
			if top > cfg.N {
				top = cfg.N
			}
			host := make([]int, 0, 2)
			for j := h; j < top; j++ {
				host = append(host, j)
			}
			rcfg.Hosts = append(rcfg.Hosts, host)
		}
	default:
		return Result{}, fmt.Errorf("counting: unknown topology %q", cfg.Topology)
	}
	b, err := runtime.New(rcfg)
	if err != nil {
		return Result{}, err
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var (
		wg         sync.WaitGroup
		violations atomic.Int64
		quota      atomic.Int64 // correct members that reached cfg.Rounds
		minRounds  atomic.Int64
		correct    int64
	)
	minRounds.Store(int64(cfg.Rounds))
	for j := 0; j < cfg.N; j++ {
		if !byz[j] {
			correct++
		}
	}
	for j := 0; j < cfg.N; j++ {
		j := j
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(1+j)<<17))
		wg.Add(1)
		go func() {
			defer wg.Done()
			rounds, expected := 0, -1
			for {
				ph, err := b.Await(ctx, j)
				switch {
				case err == nil:
					if !byz[j] {
						// The counter output: round i must read i mod M on
						// every correct member — the barrier hands it to us
						// as the phase, so agreement and increment are one
						// ordering check per member.
						if expected != -1 && ph != expected {
							violations.Add(1)
						}
						expected = (ph + 1) % cfg.Modulus
						rounds++
						if rounds == cfg.Rounds {
							if quota.Add(1) == correct {
								cancel() // every correct member counted to quota
							}
						}
					} else {
						// One forgery per round: the adversary acts at every
						// scheduling opportunity (Section 2's fault model).
						b.Byz(j, rng.Int63())
					}
				case errors.Is(err, runtime.ErrReset):
					// The round is redone; the counter expectation survives.
				default:
					if !byz[j] {
						for {
							cur := minRounds.Load()
							if int64(rounds) >= cur || minRounds.CompareAndSwap(cur, int64(rounds)) {
								break
							}
						}
					}
					return
				}
			}
		}()
	}
	wg.Wait()

	// A forgery fired just before the quota cancel can still sit in its
	// victim's control queue: accepted (counted) but not yet validated.
	// The protocol goroutines run until Stop, so wait for the injection
	// accounting to quiesce before reading the verdict counters.
	tally := func(st runtime.Stats) [3]int64 {
		return [3]int64{st.ByzInjected, st.DroppedInjections,
			st.RejectedSeq + st.RejectedPhase + st.RejectedTop + st.RejectedSender}
	}
	st := b.Stats()
	for deadline := time.Now().Add(time.Second); ; {
		time.Sleep(2 * time.Millisecond)
		next := b.Stats()
		if tally(next) == tally(st) || time.Now().After(deadline) {
			st = next
			break
		}
		st = next
	}
	res := Result{
		Rounds:          int(minRounds.Load()),
		OrderViolations: int(violations.Load()),
		Injected:        st.ByzInjected,
		Rejected:        st.RejectedSeq + st.RejectedPhase + st.RejectedTop + st.RejectedSender,
	}
	res.Survived = res.OrderViolations == 0 && int(quota.Load()) == int(correct)
	return res, nil
}

// SurvivalFraction probes how much Byzantine behavior the topology
// actually absorbs: it runs counting with f = 1, 2, … adversaries (up to
// maxByz) and returns the largest f/n whose run survived, along with the
// per-f results. Adversaries are spread across the member range so that
// hybrid runs do not concentrate them on one host.
func SurvivalFraction(topology string, n, modulus, rounds, maxByz int, seed int64) (float64, []Result, error) {
	frac := 0.0
	var results []Result
	for f := 1; f <= maxByz; f++ {
		adversaries := make([]int, 0, f)
		for k := 0; k < f; k++ {
			adversaries = append(adversaries, (k*n/f+1)%n)
		}
		res, err := Run(Config{
			Topology: topology, N: n, Modulus: modulus,
			Byz: adversaries, Rounds: rounds, Seed: seed + int64(f),
		})
		if err != nil {
			return 0, nil, err
		}
		results = append(results, res)
		if !res.Survived {
			break
		}
		frac = float64(f) / float64(n)
	}
	return frac, results, nil
}
