package counting

import "testing"

// One Byzantine member against every topology: counting must survive —
// correct members agree on the counter and keep incrementing — and the
// validation layer must account for the adversary exactly (every
// delivered forgery rejected once, none adopted).
func TestCountingSurvivesOneByzantine(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	for _, topology := range []string{"ring", "tree", "hybrid"} {
		topology := topology
		t.Run(topology, func(t *testing.T) {
			res, err := Run(Config{
				Topology: topology, N: 4, Modulus: 3,
				Byz: []int{2}, Rounds: 30, Seed: 101,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Survived {
				t.Fatalf("counting failed: %+v", res)
			}
			if res.OrderViolations != 0 {
				t.Errorf("correct members observed %d out-of-order counters", res.OrderViolations)
			}
			if res.Rounds < 30 {
				t.Errorf("slowest correct member counted %d rounds, want ≥ 30", res.Rounds)
			}
			if res.Injected == 0 {
				t.Error("the adversary delivered no forgery; the Byzantine path was not exercised")
			}
			if res.Rejected != res.Injected {
				t.Errorf("rejected %d of %d delivered forgeries, want exact match", res.Rejected, res.Injected)
			}
		})
	}
}

// The survival probe: with 4 members each topology must absorb at least
// one adversary (f/n ≥ 1/4) — the validation windows keep a lone forger
// from steering any correct member — and the probe must report the
// per-f evidence it gathered.
func TestSurvivalFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	for _, topology := range []string{"ring", "tree", "hybrid"} {
		topology := topology
		t.Run(topology, func(t *testing.T) {
			frac, results, err := SurvivalFraction(topology, 4, 3, 20, 2, 7)
			if err != nil {
				t.Fatal(err)
			}
			if frac < 0.25 {
				t.Errorf("survival fraction = %.2f, want ≥ 0.25 (one adversary in four)", frac)
			}
			if len(results) == 0 {
				t.Fatal("no per-f results reported")
			}
			for i, res := range results {
				t.Logf("f=%d: %+v", i+1, res)
			}
		})
	}
}

// Config validation.
func TestCountingValidation(t *testing.T) {
	if _, err := Run(Config{Topology: "ring", N: 4, Modulus: 2, Rounds: 1}); err == nil {
		t.Error("modulus 2 accepted")
	}
	if _, err := Run(Config{Topology: "star", N: 4, Modulus: 3, Rounds: 1}); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := Run(Config{Topology: "ring", N: 4, Modulus: 3, Rounds: 1, Byz: []int{9}}); err == nil {
		t.Error("out-of-range adversary accepted")
	}
}
