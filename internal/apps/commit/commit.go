// Package commit instantiates the barrier-synchronization program as an
// atomic-commitment protocol, per Section 7 of the paper: a transaction
// completes successfully only if all of its subtransactions complete
// successfully, and transaction j+1 is executed only after transaction j
// completes.
//
// The mapping follows the paper exactly: each subtransaction changes its
// control position from execute to success if it completed successfully,
// and to error otherwise — here, a failed subtransaction resets its own
// protocol process (a detectable fault), which forces the whole transaction
// to be re-executed before the system can move on.
package commit

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/runtime"
)

// Coordinator runs transactions over a fault-tolerant barrier: one barrier
// pass per committed transaction.
type Coordinator struct {
	b *runtime.Barrier
}

// New creates a coordinator for the given number of participants.
func New(participants int) (*Coordinator, error) {
	b, err := runtime.New(runtime.Config{Participants: participants})
	if err != nil {
		return nil, err
	}
	return &Coordinator{b: b}, nil
}

// NewWithBarrier wraps an existing barrier (useful for tests that inject
// additional faults).
func NewWithBarrier(b *runtime.Barrier) *Coordinator {
	return &Coordinator{b: b}
}

// Barrier exposes the underlying barrier (e.g. for fault injection).
func (c *Coordinator) Barrier() *runtime.Barrier { return c.b }

// Close shuts the coordinator down.
func (c *Coordinator) Close() { c.b.Stop() }

// Execute runs participant id's subtransaction of the current transaction.
// The subtransaction is retried until an attempt succeeds, and Execute
// returns only once every participant's subtransaction has succeeded — the
// transaction is then committed everywhere. Attempt numbers are passed to
// sub so callers can observe retries.
//
// A subtransaction failure is the paper's error control position: the
// participant resets its own protocol process (aborting the transaction
// instance, which the other participants' processes re-execute with their
// completed votes standing) and withholds its barrier arrival until a
// retry succeeds — so no participant can ever observe a commit of a
// transaction in which some subtransaction's final attempt failed.
func (c *Coordinator) Execute(ctx context.Context, id int, sub func(attempt int) error) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := sub(attempt); err != nil {
			// Vote abort: reset our own process (cp := error) and retry the
			// subtransaction before arriving at the barrier. The commit
			// cannot proceed meanwhile — it needs our arrival.
			c.b.Reset(id)
			continue
		}
		_, err := c.b.Await(ctx, id)
		switch {
		case err == nil:
			return nil // all subtransactions succeeded: committed
		case errors.Is(err, runtime.ErrReset):
			continue // our abort (or an external reset) voided this attempt
		default:
			return fmt.Errorf("commit: %w", err)
		}
	}
}
