package commit

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCommitAllSucceed(t *testing.T) {
	const n = 4
	c, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var committed atomic.Int32
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for txn := 0; txn < 5; txn++ {
				if err := c.Execute(ctx, id, func(int) error { return nil }); err != nil {
					t.Errorf("participant %d txn %d: %v", id, txn, err)
					return
				}
				committed.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := committed.Load(); got != 5*n {
		t.Errorf("committed %d subtransactions, want %d", got, 5*n)
	}
}

// A transaction whose subtransaction fails is retried until every
// subtransaction succeeds; no participant returns before that.
func TestAbortRetriesTransaction(t *testing.T) {
	const n = 3
	c, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var failuresLeft atomic.Int32
	failuresLeft.Store(3) // participant 0's subtransaction fails 3 times

	attempts := make([]int, n)
	var wg sync.WaitGroup
	errFail := context.DeadlineExceeded // any sentinel
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := c.Execute(ctx, id, func(attempt int) error {
				attempts[id] = attempt
				if id == 0 && failuresLeft.Add(-1) >= 0 {
					return errFail
				}
				return nil
			})
			if err != nil {
				t.Errorf("participant %d: %v", id, err)
			}
		}()
	}
	wg.Wait()
	if attempts[0] < 3 {
		t.Errorf("participant 0 retried %d times, want ≥ 3 (one per failure)", attempts[0])
	}
}

// Sequencing: transaction k+1 is executed only after transaction k
// committed everywhere.
func TestTransactionSequencing(t *testing.T) {
	const n, txns = 3, 8
	c, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var mu sync.Mutex
	current := make([]int, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for txn := 0; txn < txns; txn++ {
				err := c.Execute(ctx, id, func(int) error {
					mu.Lock()
					current[id] = txn
					for _, o := range current {
						if o < txn-1 || o > txn+1 {
							t.Errorf("participant %d executing txn %d while another is on %d",
								id, txn, o)
						}
					}
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Errorf("participant %d: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestContextCancellation(t *testing.T) {
	c, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Participant 1 never arrives, so participant 0 blocks until cancel.
		done <- c.Execute(ctx, 0, func(int) error { return nil })
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("Execute should fail after context cancellation")
	}
}

func TestNewWithBarrierAndAccessors(t *testing.T) {
	c, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Barrier() == nil {
		t.Fatal("Barrier() is nil")
	}
	c2 := NewWithBarrier(c.Barrier())
	if c2.Barrier() != c.Barrier() {
		t.Error("NewWithBarrier should wrap the given barrier")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("single participant should be rejected")
	}
}

// External detectable faults (process resets injected by the environment,
// not by subtransaction failures) also just retry transactions: atomicity
// holds and all transactions eventually commit.
func TestCommitUnderExternalResets(t *testing.T) {
	const n, txns = 3, 6
	c, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
				c.Barrier().Reset(i % n)
			}
		}
	}()

	var committed atomic.Int32
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for txn := 0; txn < txns; txn++ {
				if err := c.Execute(ctx, id, func(int) error { return nil }); err != nil {
					t.Errorf("participant %d txn %d: %v", id, txn, err)
					return
				}
				committed.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	injector.Wait()
	if got := committed.Load(); got != n*txns {
		t.Errorf("committed %d, want %d", got, n*txns)
	}
}
