// Package phasesync instantiates the barrier as a phase-synchronization
// primitive, per Section 7 of the paper: each process executes a
// (potentially infinite) sequence of phases and executes phase i only when
// all processes have completed phase i−1. Each application phase maps onto
// an instance of a barrier phase; the barrier's masking tolerance covers
// the detectable corruption of the synchronization variables that the
// phase-synchronization literature traditionally considers.
package phasesync

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/runtime"
)

// Synchronizer runs phased computations over a fault-tolerant barrier.
type Synchronizer struct {
	b *runtime.Barrier
}

// New creates a synchronizer for the given number of participants.
func New(participants int) (*Synchronizer, error) {
	b, err := runtime.New(runtime.Config{Participants: participants})
	if err != nil {
		return nil, err
	}
	return &Synchronizer{b: b}, nil
}

// NewWithBarrier wraps an existing barrier (useful for fault injection).
func NewWithBarrier(b *runtime.Barrier) *Synchronizer { return &Synchronizer{b: b} }

// Barrier exposes the underlying barrier.
func (s *Synchronizer) Barrier() *runtime.Barrier { return s.b }

// Close shuts the synchronizer down.
func (s *Synchronizer) Close() { s.b.Stop() }

// Run executes `phases` phases of work as participant id, synchronizing
// after each phase. work receives the phase index and the attempt number
// (> 0 when the phase is re-executed after a detectable fault reset this
// participant). The phase-synchronization property — no participant starts
// phase i+1 before every participant completed phase i — is inherited from
// the barrier's Safety.
func (s *Synchronizer) Run(ctx context.Context, id, phases int, work func(phase, attempt int) error) error {
	for phase := 0; phase < phases; {
		attempt := 0
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			if work != nil {
				if err := work(phase, attempt); err != nil {
					return fmt.Errorf("phasesync: phase %d failed: %w", phase, err)
				}
			}
			_, err := s.b.Await(ctx, id)
			if err == nil {
				break
			}
			if errors.Is(err, runtime.ErrReset) {
				attempt++ // this participant's work was lost: redo the phase
				continue
			}
			return err
		}
		phase++
	}
	return nil
}
