package phasesync

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("single participant should be rejected")
	}
}

// Phase synchronization: no participant starts phase i+1 before every
// participant completed phase i.
func TestPhaseSynchronization(t *testing.T) {
	const n, phases = 4, 10
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var mu sync.Mutex
	completed := make([]int, n) // highest phase completed per participant
	for i := range completed {
		completed[i] = -1
	}

	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := s.Run(ctx, id, phases, func(phase, attempt int) error {
				mu.Lock()
				defer mu.Unlock()
				// Everyone must have completed phase-1 before we run phase.
				for other, c := range completed {
					if c < phase-1 {
						t.Errorf("participant %d runs phase %d before %d completed %d",
							id, phase, other, phase-1)
					}
				}
				completed[id] = phase
				return nil
			})
			if err != nil {
				t.Errorf("participant %d: %v", id, err)
			}
		}()
	}
	wg.Wait()
}

// Resets re-execute only the lost phase work, and the run still completes.
func TestRunSurvivesResets(t *testing.T) {
	const n, phases = 3, 12
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				s.Barrier().Reset(i % n)
			}
		}
	}()

	var mu sync.Mutex
	executions := 0
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := s.Run(ctx, id, phases, func(phase, attempt int) error {
				mu.Lock()
				executions++
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Errorf("participant %d: %v", id, err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	injector.Wait()

	mu.Lock()
	defer mu.Unlock()
	if executions < n*phases {
		t.Errorf("executed %d phase-works, want ≥ %d", executions, n*phases)
	}
}

func TestWorkErrorPropagates(t *testing.T) {
	s, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	wantErr := context.DeadlineExceeded // arbitrary sentinel
	err = s.Run(ctx, 0, 3, func(phase, attempt int) error { return wantErr })
	if err == nil {
		t.Fatal("work error should propagate")
	}
}
