package bench

import (
	"context"
	"fmt"
)

// DepthPoint is one sample of the wasted-work-vs-window curve: the
// outcome of replaying one seeded chaos run at one pipeline depth.
type DepthPoint struct {
	Depth    int
	Faults   int     // chaos injections applied during the run
	Passes   float64 // cluster-wide barrier_passes_total at quiescence
	Wasted   float64 // cluster-wide barrier_wasted_instances_total
	PerFault float64 // Wasted / Faults (0 when no fault applied)
}

func (pt DepthPoint) String() string {
	return fmt.Sprintf("depth=%d  passes=%.0f wasted=%.0f faults=%d  %.2f wasted instances per fault",
		pt.Depth, pt.Passes, pt.Wasted, pt.Faults, pt.PerFault)
}

// DepthSweep measures wasted work per injected fault as a function of
// the pipeline window — the opening of the Dwork/Halpern/Waarts-style
// wasted-work scaling curve. Every point replays the same profile (same
// seed, so the same chaos schedule) with only Depth varied, against the
// inproc deployment: with the network subtracted, the injected faults —
// not socket noise — set the re-execution count, and the points are
// comparable. A fault landing in a Depth-deep window may force up to
// Depth waves to re-execute, so PerFault is expected to grow with Depth;
// the smoke profile records the measured curve in its verdict output.
func DepthSweep(ctx context.Context, base Profile, depths []int) ([]DepthPoint, error) {
	pts := make([]DepthPoint, 0, len(depths))
	for _, d := range depths {
		p := base
		p.Mode = "inproc"
		p.Depth = d
		p.Chaos = true
		p.SLO = SLO{} // the sweep measures; the main run gates
		r, err := Run(ctx, p)
		if err != nil {
			return nil, fmt.Errorf("bench: depth sweep at depth %d: %w", d, err)
		}
		pt := DepthPoint{Depth: d, Faults: r.Chaos.Faults(), Passes: r.Passes, Wasted: r.Wasted}
		if pt.Faults > 0 {
			pt.PerFault = pt.Wasted / float64(pt.Faults)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}
