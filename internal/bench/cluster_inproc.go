package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/obsv"
	"repro/internal/runtime"
)

// inprocCluster hosts every group as a plain runtime.Barrier with all
// members local (channel transport — rings, fused trees): the protocol
// under load with the network subtracted, the baseline the loopback and
// daemon modes are compared against. Having no processes or sockets, it
// approximates a kill as a simultaneous detectable reset of the victim
// member in every group, and cannot express partitions.
type inprocCluster struct {
	p      *Profile
	reg    *obsv.Registry
	tenant []*inprocGroup
	pool   *clientPool
}

// inprocGroup is one group's barrier slot; churn swaps the barrier out
// under the mutex, exactly like groups.Group does.
type inprocGroup struct {
	cfg runtime.Config

	mu sync.Mutex
	b  *runtime.Barrier
}

func (g *inprocGroup) barrier() *runtime.Barrier {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.b
}

func (g *inprocGroup) await(ctx context.Context, member int) (int, error) {
	b := g.barrier()
	if b == nil {
		return 0, runtime.ErrStopped
	}
	return b.Await(ctx, member)
}

func newInprocCluster(p *Profile) (cluster, error) {
	return &inprocCluster{p: p}, nil
}

func (c *inprocCluster) Start(ctx context.Context) error {
	c.reg = obsv.NewRegistry()
	c.tenant = make([]*inprocGroup, c.p.Groups)
	for i := range c.tenant {
		topo := runtime.TopologyRing
		if i%5 == 4 {
			topo = runtime.TopologyTree
		}
		g := &inprocGroup{cfg: runtime.Config{
			Participants: c.p.Procs,
			Topology:     topo,
			Depth:        c.p.Depth,
			NPhases:      c.p.NPhases,
			Resend:       c.p.Resend,
			CorruptRate:  c.p.Corrupt,
			Seed:         c.p.Seed + int64(i),
			Metrics:      c.reg,
			MetricLabel:  fmt.Sprintf("group=%q", fmt.Sprintf("g%03d", i)),
		}}
		b, err := runtime.New(g.cfg)
		if err != nil {
			return fmt.Errorf("bench: group %d: %w", i, err)
		}
		g.b = b
		c.tenant[i] = g
	}
	c.pool = newClientPool(ctx)
	for j := 0; j < c.p.Procs; j++ {
		for gi, g := range c.tenant {
			j, g := j, g
			c.pool.spawn(func(ctx context.Context) (int, error) {
				return g.await(ctx, j)
			}, clientSeed(c.p.Seed, j, gi), c.p.Rate)
		}
	}
	return nil
}

// Kill approximates process death without processes: member j of every
// group takes a detectable reset at once. Restart is then a no-op — the
// member never left.
func (c *inprocCluster) Kill(j int) error {
	for _, g := range c.tenant {
		if b := g.barrier(); b != nil {
			b.Reset(j)
		}
	}
	return nil
}

func (c *inprocCluster) Restart(int) error { return nil }

func (c *inprocCluster) Partition(int, time.Duration) error {
	return skipError{"partition (no transport in inproc mode)"}
}

func (c *inprocCluster) Churn(gi int) error {
	g := c.tenant[gi]
	g.mu.Lock()
	if b := g.b; b != nil {
		g.b = nil
		g.mu.Unlock()
		b.Stop()
		b.UnregisterMetrics()
		g.mu.Lock()
	}
	b, err := runtime.New(g.cfg)
	if err != nil {
		g.mu.Unlock()
		return err
	}
	g.b = b
	g.mu.Unlock()
	return nil
}

func (c *inprocCluster) Reset(j, gi int) error {
	b := c.tenant[gi].barrier()
	if b == nil {
		return skipError{"reset on a stopped group"}
	}
	b.Reset(j)
	return nil
}

func (c *inprocCluster) Quiesce(ctx context.Context) error {
	if err := c.pool.drain(); err != nil {
		return err
	}
	return waitStable(ctx, 100*time.Millisecond, 10*time.Second, func() (float64, error) {
		snap, err := c.Scrape()
		if err != nil {
			return 0, err
		}
		return snap.Sum("barrier_passes_total"), nil
	})
}

func (c *inprocCluster) Scrape() (*Snapshot, error) {
	var sb strings.Builder
	if err := c.reg.WriteText(&sb); err != nil {
		return nil, err
	}
	snap := NewSnapshot()
	if err := snap.Merge(sb.String()); err != nil {
		return nil, err
	}
	return snap, nil
}

func (c *inprocCluster) ClientStats() ClientStats { return c.pool.stats() }

func (c *inprocCluster) Close() error {
	if c.pool != nil {
		c.pool.stop()
		c.pool.wg.Wait()
	}
	for _, g := range c.tenant {
		if g == nil {
			continue
		}
		if b := g.barrier(); b != nil {
			b.Stop()
			b.UnregisterMetrics()
		}
	}
	return nil
}
