package bench

import (
	"fmt"
	"time"
)

// SLO is the service-level objective a load run is judged against. Every
// threshold maps to a measured quantity of the paper:
//
//   - PassP99 bounds the p99 of barrier_phase_seconds — the Fig 4/6
//     synchronization overhead under sustained traffic and faults.
//   - RecoveryFactor bounds the p99 of barrier_recovery_seconds by a
//     multiple of the live median pass latency, the deployed analogue of
//     the paper's "recovery completes within 5hc" bound (Fig 7): the
//     median fault-free pass is the live stand-in for the hop-time h·c.
//     RecoveryFloor keeps the bound meaningful when the median pass is
//     microseconds (scheduler noise would otherwise dominate).
//   - MaxWastedPerFault and MaxMeanInstances bound the wasted work: the
//     Dwork/Halpern/Waarts per-fault waste and the Fig 3/5 mean
//     instances-per-pass envelope (≈1 under rare faults).
type SLO struct {
	// MinPasses is the least acceptable cluster-wide delivered-pass total
	// (per-member deliveries): a throughput floor, and the guard that a
	// PASS verdict can never come from a run that did no work.
	MinPasses float64
	// PassP99 bounds the 99th percentile of barrier_phase_seconds.
	PassP99 time.Duration
	// RecoveryFactor bounds p99(barrier_recovery_seconds) by
	// RecoveryFactor × p50(barrier_phase_seconds); 5 is the paper's bound
	// with h·c read as one median pass. 0 disables the check.
	RecoveryFactor float64
	// RecoveryFloor is the least recovery bound ever enforced.
	RecoveryFloor time.Duration
	// MaxWastedPerFault bounds barrier_wasted_instances_total divided by
	// the number of injected faults. 0 disables the upper bound; the
	// lower bound (waste must be observed at all when faults were
	// injected) is always enforced.
	MaxWastedPerFault float64
	// MaxMeanInstances bounds 1 + wasted/passes, the exact mean of the
	// barrier_instances_per_pass histogram. 0 disables.
	MaxMeanInstances float64
}

// Check is one named SLO check with its outcome.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Verdict is the judged outcome of a load run.
type Verdict struct {
	Pass   bool
	Checks []Check
}

func (v *Verdict) String() string {
	if v.Pass {
		return "PASS"
	}
	return "FAIL"
}

func (v *Verdict) add(name string, ok bool, format string, args ...any) {
	v.Checks = append(v.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	if !ok {
		v.Pass = false
	}
}

// Evaluate judges a final cluster snapshot against the SLO. faults is the
// number of chaos operations actually applied (kills, partitions, churns,
// resets); stateFaults counts the subset that arms the recovery histogram
// (injected resets/scrambles — a kill tears the victim down instead of
// corrupting it, so it starts no recovery sample).
func (s SLO) Evaluate(snap *Snapshot, faults, stateFaults int) Verdict {
	v := Verdict{Pass: true}

	passes := snap.Sum("barrier_passes_total")
	v.add("passes", passes >= s.MinPasses,
		"%d passes delivered (floor %d)", int64(passes), int64(s.MinPasses))

	if halted := snap.Sum("barrier_halted"); true {
		v.add("halted", halted == 0, "%d members fail-safe halted", int64(halted))
	}

	if p99, ok := snap.Quantile("barrier_phase_seconds", 0.99); !ok {
		v.add("pass-p99", false, "no pass-latency samples recorded")
	} else {
		v.add("pass-p99", p99 <= s.PassP99.Seconds(),
			"p99 pass latency %.1fms (bound %.1fms)", p99*1e3, float64(s.PassP99)/1e6)
	}

	if s.RecoveryFactor > 0 {
		// Means, not quantiles: the histogram's _sum is exact while its
		// buckets clip at the largest finite bound, so a wedged recovery
		// that outlasts every bucket still moves this check.
		switch rec, ok := snap.HistMean("barrier_recovery_seconds"); {
		case !ok && stateFaults > 0:
			v.add("recovery", false,
				"%d state faults injected but no recovery samples recorded", stateFaults)
		case !ok:
			v.add("recovery", true, "no state faults injected; nothing to recover from")
		default:
			pass, _ := snap.HistMean("barrier_phase_seconds")
			bound := s.RecoveryFactor * pass
			if floor := s.RecoveryFloor.Seconds(); bound < floor {
				bound = floor
			}
			v.add("recovery", rec <= bound,
				"mean recovery %.1fms over %d samples (bound %.1fms = max(%g × mean pass %.1fms, floor))",
				rec*1e3, int64(snap.HistCount("barrier_recovery_seconds")), bound*1e3, s.RecoveryFactor, pass*1e3)
		}
	}

	wasted := snap.Sum("barrier_wasted_instances_total")
	if faults > 0 {
		perFault := wasted / float64(faults)
		ok := wasted > 0
		if s.MaxWastedPerFault > 0 && perFault > s.MaxWastedPerFault {
			ok = false
		}
		v.add("wasted-per-fault", ok,
			"%d wasted instances / %d faults = %.2f per fault (> 0, bound %.1f)",
			int64(wasted), faults, perFault, s.MaxWastedPerFault)
	} else {
		// No injected faults: transient re-executions (startup races, lost
		// first messages) are legitimate, so the check is informational and
		// the mean-instances envelope below bounds any runaway.
		v.add("wasted-per-fault", true,
			"%d wasted instances with no injected faults (bounded by the mean-instances envelope)", int64(wasted))
	}

	if s.MaxMeanInstances > 0 && passes > 0 {
		mean := 1 + wasted/passes
		v.add("mean-instances", mean <= s.MaxMeanInstances,
			"%.4f mean instances per pass (Fig 3/5 envelope %.2f)", mean, s.MaxMeanInstances)
	}

	return v
}
