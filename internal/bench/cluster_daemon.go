package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// daemonCluster spawns one real cmd/barrierd process per simulated member,
// all hosting the same multi-tenant group roster over loopback TCP — the
// deployment the smoke profile's results are meant to predict. The daemons
// are their own closed-loop clients (-passes 0 -think 1/rate), so this
// mode has no clientPool; its ClientStats stay zero and the scrape carries
// the truth. Kills are genuine SIGKILLs with -rejoin restarts; partitions
// are SIGSTOP/SIGCONT windows (the process is alive but mute — the
// paper's fail-stop detector sees exactly a partition); churn and resets
// have no external API on a running daemon and are skipped.
type daemonCluster struct {
	p      *Profile
	ctx    context.Context
	dir    string
	bin    string
	peers  string
	roster string

	mu      sync.Mutex
	procs   []*daemonProc
	killed  []bool
	gen     int
	healers map[*time.Timer]struct{}
	healWG  sync.WaitGroup
	closed  bool
}

type daemonProc struct {
	id      int
	cmd     *exec.Cmd
	logPath string
}

func newDaemonCluster(p *Profile) (cluster, error) {
	return &daemonCluster{
		p:       p,
		procs:   make([]*daemonProc, p.Procs),
		killed:  make([]bool, p.Procs),
		healers: make(map[*time.Timer]struct{}),
	}, nil
}

func (c *daemonCluster) Start(ctx context.Context) error {
	c.ctx = ctx
	dir, err := os.MkdirTemp("", "barrierbench-*")
	if err != nil {
		return err
	}
	c.dir = dir

	c.bin = c.p.BarrierdPath
	if c.bin == "" {
		c.bin = filepath.Join(dir, "barrierd")
		build := exec.Command("go", "build", "-o", c.bin, "repro/cmd/barrierd")
		if out, err := build.CombinedOutput(); err != nil {
			return fmt.Errorf("bench: building barrierd: %v\n%s", err, out)
		}
	}

	// The same tenant roster as the loopback mode, in barrierd's -groups
	// file syntax.
	var sb strings.Builder
	sb.WriteString("# barrierbench roster\n")
	for i := 0; i < c.p.Groups; i++ {
		topo := "ring"
		if i%5 == 4 {
			topo = "tree"
		}
		fmt.Fprintf(&sb, "g%03d %s %d", i, topo, c.p.NPhases)
		if c.p.Depth > 1 {
			fmt.Fprintf(&sb, " depth=%d", c.p.Depth)
		}
		sb.WriteByte('\n')
	}
	c.roster = filepath.Join(dir, "groups.conf")
	if err := os.WriteFile(c.roster, []byte(sb.String()), 0o644); err != nil {
		return err
	}

	// Reserve one loopback port per member by binding and releasing
	// ephemeral listeners; the daemons then bind the same addresses.
	addrs := make([]string, c.p.Procs)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	c.peers = strings.Join(addrs, ",")

	for id := 0; id < c.p.Procs; id++ {
		if err := c.spawn(id, false); err != nil {
			return err
		}
	}
	for id := 0; id < c.p.Procs; id++ {
		if err := c.waitHealthy(id, time.Minute); err != nil {
			return err
		}
	}
	return nil
}

// spawn launches member id, writing its output to a fresh per-generation
// log file (the metrics address of a restarted process must not be
// shadowed by its predecessor's line).
func (c *daemonCluster) spawn(id int, rejoin bool) error {
	c.mu.Lock()
	c.gen++
	gen := c.gen
	c.mu.Unlock()
	logPath := filepath.Join(c.dir, fmt.Sprintf("member%d.gen%d.log", id, gen))
	logFile, err := os.Create(logPath)
	if err != nil {
		return err
	}
	args := []string{
		"-id", strconv.Itoa(id),
		"-peers", c.peers,
		"-groups", c.roster,
		"-passes", "0",
		"-quiet",
		"-resend", c.p.Resend.String(),
		"-corrupt", strconv.FormatFloat(c.p.Corrupt, 'g', -1, 64),
		"-seed", strconv.FormatInt(c.p.Seed+int64(id), 10),
		"-think", time.Duration(float64(time.Second) / c.p.Rate).String(),
		"-metrics", "127.0.0.1:0",
	}
	if rejoin {
		args = append(args, "-rejoin")
	}
	cmd := exec.Command(c.bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return err
	}
	logFile.Close() // the child holds its own descriptor
	c.mu.Lock()
	c.procs[id] = &daemonProc{id: id, cmd: cmd, logPath: logPath}
	c.mu.Unlock()
	return nil
}

func (c *daemonCluster) proc(id int) *daemonProc {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.procs[id]
}

var metricsAddrLine = regexp.MustCompile(`(?m)^metrics listening on (\S+)$`)

// metricsAddr parses the member's bound observability address from its
// log ("" until the "metrics listening on ADDR" line appears).
func (p *daemonProc) metricsAddr() string {
	data, err := os.ReadFile(p.logPath)
	if err != nil {
		return ""
	}
	m := metricsAddrLine.FindSubmatch(data)
	if m == nil {
		return ""
	}
	return string(m[1])
}

var daemonClient = &http.Client{Timeout: time.Second}

func httpGet(url string) (string, int, error) {
	resp, err := daemonClient.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", resp.StatusCode, err
	}
	return string(body), resp.StatusCode, nil
}

// waitHealthy blocks until member id's /healthz answers 200 — the same
// deadline-based readiness probe the e2e suite uses instead of sleeps.
func (c *daemonCluster) waitHealthy(id int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if p := c.proc(id); p != nil {
			if addr := p.metricsAddr(); addr != "" {
				if _, code, err := httpGet("http://" + addr + "/healthz"); err == nil && code == http.StatusOK {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: member %d not healthy after %s (log %s)", id, timeout, c.procs[id].logPath)
		}
		select {
		case <-c.ctx.Done():
			return c.ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (c *daemonCluster) Kill(j int) error {
	p := c.proc(j)
	if p == nil {
		return skipError{"kill of an unstarted member"}
	}
	if err := p.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no goodbye
		return err
	}
	p.cmd.Wait()
	c.mu.Lock()
	c.killed[j] = true
	c.mu.Unlock()
	return nil
}

func (c *daemonCluster) Restart(j int) error {
	if err := c.spawn(j, true); err != nil {
		return err
	}
	if err := c.waitHealthy(j, time.Minute); err != nil {
		return err
	}
	c.mu.Lock()
	c.killed[j] = false
	c.mu.Unlock()
	return nil
}

// Partition pauses the process with SIGSTOP for d: its peers see silence
// — timeouts, resends, then the detector — while its own state is frozen
// intact, exactly a network partition's signature. SIGCONT heals it.
func (c *daemonCluster) Partition(j int, d time.Duration) error {
	p := c.proc(j)
	if p == nil {
		return skipError{"partition of an unstarted member"}
	}
	if err := p.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		p.cmd.Process.Signal(syscall.SIGCONT)
		return nil
	}
	c.healWG.Add(1)
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		defer c.healWG.Done()
		// Signal errors (the process was SIGKILLed and reaped mid-window)
		// are fine: a dead process needs no waking.
		p.cmd.Process.Signal(syscall.SIGCONT)
		c.mu.Lock()
		delete(c.healers, t)
		c.mu.Unlock()
	})
	c.healers[t] = struct{}{}
	c.mu.Unlock()
	return nil
}

func (c *daemonCluster) Churn(int) error {
	return skipError{"group churn (a running daemon's roster is fixed)"}
}

func (c *daemonCluster) Reset(int, int) error {
	return skipError{"member reset (no external fault API on a daemon)"}
}

func (c *daemonCluster) healAll() {
	c.mu.Lock()
	timers := make([]*time.Timer, 0, len(c.healers))
	for t := range c.healers {
		timers = append(timers, t)
	}
	c.mu.Unlock()
	for _, t := range timers {
		t.Reset(0)
	}
	c.healWG.Wait()
}

// Quiesce heals outstanding SIGSTOPs and confirms every member is serving
// and violation-free. The daemons are self-driven (-passes 0), so their
// counters never stop moving; unlike the in-binary modes the final scrape
// is a live cut — sound for the SLO checks, which read cumulative
// counters and ratios only.
func (c *daemonCluster) Quiesce(ctx context.Context) error {
	c.healAll()
	for id := 0; id < c.p.Procs; id++ {
		if err := c.waitHealthy(id, 30*time.Second); err != nil {
			return err
		}
		p := c.proc(id)
		data, err := os.ReadFile(p.logPath)
		if err == nil && strings.Contains(string(data), "VIOLATION") {
			lines := strings.Split(strings.TrimSpace(string(data)), "\n")
			return fmt.Errorf("bench: member %d spec violation: %s", id, lines[len(lines)-1])
		}
	}
	return nil
}

// Scrape merges every member's /metrics page. A restarted daemon's
// counters restart from zero with it (its pre-kill passes died with the
// process), which only makes the SLO floors harder to meet — never
// easier.
func (c *daemonCluster) Scrape() (*Snapshot, error) {
	snap := NewSnapshot()
	for id := 0; id < c.p.Procs; id++ {
		p := c.proc(id)
		if p == nil {
			continue
		}
		addr := p.metricsAddr()
		if addr == "" {
			return nil, fmt.Errorf("bench: member %d never logged its metrics address", id)
		}
		var body string
		var lastErr error
		for try := 0; try < 10; try++ {
			b, code, err := httpGet("http://" + addr + "/metrics")
			if err == nil && code == http.StatusOK {
				body, lastErr = b, nil
				break
			}
			lastErr = fmt.Errorf("member %d /metrics: code %d err %v", id, code, err)
			time.Sleep(50 * time.Millisecond)
		}
		if lastErr != nil {
			return nil, lastErr
		}
		if err := snap.Merge(body); err != nil {
			return nil, fmt.Errorf("member %d: %w", id, err)
		}
	}
	return snap, nil
}

// ClientStats is zero in daemon mode: the daemons are their own
// closed-loop clients, and the scrape carries their outcomes.
func (c *daemonCluster) ClientStats() ClientStats { return ClientStats{} }

func (c *daemonCluster) Close() error {
	c.mu.Lock()
	c.closed = true
	procs := append([]*daemonProc(nil), c.procs...)
	c.mu.Unlock()
	c.healAll()
	for _, p := range procs {
		if p == nil || p.cmd.ProcessState != nil {
			continue
		}
		p.cmd.Process.Signal(syscall.SIGCONT)
		p.cmd.Process.Signal(syscall.SIGTERM)
	}
	done := make(chan struct{})
	go func() {
		for _, p := range procs {
			if p != nil {
				p.cmd.Wait()
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		for _, p := range procs {
			if p != nil && p.cmd.ProcessState == nil {
				p.cmd.Process.Kill()
			}
		}
		<-done
	}
	if c.dir != "" {
		os.RemoveAll(c.dir)
	}
	return nil
}
