package bench

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/conformance"
)

// Generated chaos must replay: the schedule is a pure function of
// (shape, seed), and its text form round-trips through the conformance
// parser — the property that makes a printed seed a full repro.
func TestGenerateChaosDeterministicRoundTrip(t *testing.T) {
	a := GenerateChaos(8, 16, 120, 42)
	b := GenerateChaos(8, 16, 120, 42)
	if a.String() != b.String() {
		t.Fatalf("same seed, different schedules:\n%s\n%s", a.String(), b.String())
	}
	parsed, err := conformance.Parse(a.String())
	if err != nil {
		t.Fatalf("Parse(generated): %v", err)
	}
	if parsed.String() != a.String() {
		t.Errorf("round trip changed the schedule:\n%s\n%s", a.String(), parsed.String())
	}
}

// Every generated schedule carries at least one kill+rejoin window (the
// smoke acceptance requires one), and every kill is paired with a
// restart so outages stay bounded.
func TestGenerateChaosGuaranteesKillWindow(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		s := GenerateChaos(4, 8, 40, seed)
		kills := s.CountKind(conformance.OpKill)
		restarts := s.CountKind(conformance.OpRestart)
		if kills < 1 {
			t.Errorf("seed %d: no kill window in %s", seed, s.String())
		}
		if kills != restarts {
			t.Errorf("seed %d: %d kills vs %d restarts", seed, kills, restarts)
		}
	}
}

// fakeCluster records the operations the runner applies, refusing the
// ones a mode might not support.
type fakeCluster struct {
	ops        []string
	skipChurns bool
}

func (f *fakeCluster) Kill(j int) error    { f.ops = append(f.ops, fmt.Sprintf("kill %d", j)); return nil }
func (f *fakeCluster) Restart(j int) error { f.ops = append(f.ops, fmt.Sprintf("restart %d", j)); return nil }
func (f *fakeCluster) Partition(j int, d time.Duration) error {
	f.ops = append(f.ops, fmt.Sprintf("partition %d %s", j, d))
	return nil
}
func (f *fakeCluster) Churn(g int) error {
	if f.skipChurns {
		return skipError{"churn"}
	}
	f.ops = append(f.ops, fmt.Sprintf("churn %d", g))
	return nil
}
func (f *fakeCluster) Reset(j, g int) error {
	f.ops = append(f.ops, fmt.Sprintf("reset %d@%d", j, g))
	return nil
}

func TestRunChaosAppliesSchedule(t *testing.T) {
	s, err := conformance.Parse("bench:n=3:ph=4:seed=1:sched=random:ops=k0,2s,R0,P1:60,g5,r1:2,s")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeCluster{}
	st := runChaos(context.Background(), f, s, 4, time.Millisecond, nil)
	want := []string{"kill 0", "restart 0", "partition 1 60ms", "churn 1", "reset 1@2"}
	if len(f.ops) != len(want) {
		t.Fatalf("applied ops %v, want %v", f.ops, want)
	}
	for i := range want {
		if f.ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, f.ops[i], want[i])
		}
	}
	if st.Kills != 1 || st.Restarts != 1 || st.Partitions != 1 || st.Churns != 1 || st.Resets != 1 {
		t.Errorf("stats %+v, want one of each", st)
	}
	if st.Faults() != 4 || st.StateFaults() != 1 {
		t.Errorf("Faults() = %d StateFaults() = %d, want 4 and 1", st.Faults(), st.StateFaults())
	}
}

// A mode that cannot express an op reports a skip; the runner moves on
// and the op never counts as an injected fault.
func TestRunChaosCountsSkips(t *testing.T) {
	s, err := conformance.Parse("bench:n=2:ph=4:seed=1:sched=random:ops=g0,g1,r0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeCluster{skipChurns: true}
	st := runChaos(context.Background(), f, s, 4, time.Millisecond, nil)
	if st.Skipped != 2 || st.Churns != 0 || st.Resets != 1 {
		t.Errorf("stats %+v, want 2 skips, 0 churns, 1 reset", st)
	}
}

// A kill the schedule (or an early cancel) leaves open is restarted
// before scoring: the runner never hands a dead cluster to quiescence.
func TestRunChaosRestartsLeftoverKills(t *testing.T) {
	s, err := conformance.Parse("bench:n=3:ph=4:seed=1:sched=random:ops=k2,s")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeCluster{}
	st := runChaos(context.Background(), f, s, 4, time.Millisecond, nil)
	want := []string{"kill 2", "restart 2"}
	if len(f.ops) != 2 || f.ops[0] != want[0] || f.ops[1] != want[1] {
		t.Errorf("applied ops %v, want %v", f.ops, want)
	}
	if st.Kills != 1 || st.Restarts != 1 {
		t.Errorf("stats %+v, want the kill closed", st)
	}
}
