package bench

import (
	"context"
	"testing"
	"time"
)

func reportVerdict(t *testing.T, r *Report) {
	t.Helper()
	for _, c := range r.Verdict.Checks {
		t.Logf("%-18s %-4s %s", c.Name, map[bool]string{true: "ok", false: "FAIL"}[c.OK], c.Detail)
	}
	t.Logf("schedule: %s", r.Schedule.String())
	t.Logf("chaos: %+v  clients: %+v  passes: %.0f  wasted: %.0f  elapsed: %s",
		r.Chaos, r.Client, r.Passes, r.Wasted, r.Elapsed)
}

// The in-process mode end to end: a chaos run over plain runtime barriers
// must earn a PASS verdict, and every injected fault must leave its trace
// in the wasted-instances counter.
func TestRunInprocChaos(t *testing.T) {
	r, err := Run(context.Background(), Profile{
		Mode:     "inproc",
		Groups:   5,
		Procs:    3,
		Duration: 2 * time.Second,
		Rate:     50,
		Seed:     42,
		Chaos:    true,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	reportVerdict(t, r)
	if !r.Verdict.Pass {
		t.Error("verdict FAIL, want PASS")
	}
	if r.Chaos.Faults() == 0 {
		t.Error("chaos applied no faults")
	}
	if r.Wasted == 0 {
		t.Error("no wasted instances recorded despite injected faults")
	}
}

// The loopback mode — the smoke profile's deployment, scaled down for the
// unit suite: real mux transport between simulated processes, a generated
// chaos schedule with a guaranteed kill+rejoin window, judged PASS.
func TestRunLoopbackChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback load run in -short mode")
	}
	r, err := Run(context.Background(), Profile{
		Mode:     "loopback",
		Groups:   6,
		Procs:    4,
		Duration: 4 * time.Second,
		Rate:     20,
		Seed:     7,
		Chaos:    true,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	reportVerdict(t, r)
	if !r.Verdict.Pass {
		t.Error("verdict FAIL, want PASS")
	}
	if r.Chaos.Kills == 0 {
		t.Error("generated schedule applied no kill (the window is guaranteed)")
	}
	if r.Wasted == 0 {
		t.Error("no wasted instances recorded despite injected faults")
	}
	if r.Client.Passes == 0 {
		t.Error("clients recorded no successful Awaits")
	}
}

// Determinism: two runs from the same profile must inject the same
// schedule (the printed seed is a full repro of the chaos sequence).
func TestRunScheduleReproducible(t *testing.T) {
	p := Profile{
		Mode:     "inproc",
		Groups:   2,
		Procs:    2,
		Duration: 300 * time.Millisecond,
		Rate:     40,
		Seed:     99,
		Chaos:    true,
	}
	a, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.String() != b.Schedule.String() {
		t.Errorf("same profile, different schedules:\n%s\n%s", a.Schedule.String(), b.Schedule.String())
	}
}

// An explicit schedule overrides the generated one.
func TestRunExplicitSchedule(t *testing.T) {
	r, err := Run(context.Background(), Profile{
		Mode:     "inproc",
		Groups:   2,
		Procs:    2,
		Duration: 500 * time.Millisecond,
		Rate:     40,
		Seed:     3,
		Chaos:    true,
		Schedule: "bench:n=2:ph=4:seed=3:sched=random:ops=2s,r0:1,2s,r1:0,2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	reportVerdict(t, r)
	if r.Chaos.Resets != 2 {
		t.Errorf("applied %d resets, want 2", r.Chaos.Resets)
	}
}

func TestRunRejectsBadProfiles(t *testing.T) {
	for _, p := range []Profile{
		{Mode: "teleport", Groups: 2, Procs: 2},
		{Mode: "inproc", Groups: 0, Procs: 2},
		{Mode: "inproc", Groups: 1, Procs: 1},
		{Mode: "inproc", Groups: 1, Procs: 2, Chaos: true, Schedule: "not a schedule"},
	} {
		if _, err := Run(context.Background(), p); err == nil {
			t.Errorf("profile %+v accepted, want error", p)
		}
	}
}

// The daemon mode spawns real barrierd processes; one SIGKILL+rejoin and
// one SIGSTOP partition window must still end in a live, violation-free
// cluster. (The SLO's waste check is evaluated over the merged scrapes
// exactly as in the other modes.)
func TestRunDaemonChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon spawn run in -short mode")
	}
	r, err := Run(context.Background(), Profile{
		Mode:     "daemon",
		Groups:   4,
		Procs:    3,
		Duration: 4 * time.Second,
		Rate:     50,
		Seed:     11,
		Chaos:    true,
		Schedule: "bench:n=3:ph=4:seed=11:sched=random:ops=10s,k1,3s,R1,5s,P2:150,10s",
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	reportVerdict(t, r)
	if !r.Verdict.Pass {
		t.Error("verdict FAIL, want PASS")
	}
	if r.Chaos.Kills != 1 || r.Chaos.Partitions != 1 {
		t.Errorf("chaos %+v, want 1 kill and 1 partition applied", r.Chaos)
	}
}

// The depth sweep replays one seeded chaos schedule at several pipeline
// depths; every point must apply the same faults and record wasted work,
// and a depth-4 group roster must come up in every deployment mode the
// sweep's numbers are extrapolated to (here: loopback, the smoke mode).
func TestDepthSweep(t *testing.T) {
	pts, err := DepthSweep(context.Background(), Profile{
		Groups:   3,
		Procs:    3,
		Duration: 1500 * time.Millisecond,
		Rate:     50,
		Seed:     21,
	}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Depth != 1 || pts[1].Depth != 4 {
		t.Fatalf("sweep points %v, want depths [1 4]", pts)
	}
	for _, pt := range pts {
		t.Log(pt)
		if pt.Faults == 0 {
			t.Errorf("depth %d: no faults applied", pt.Depth)
		}
		if pt.Faults != pts[0].Faults {
			t.Errorf("depth %d applied %d faults, depth %d applied %d: the schedule is not replaying",
				pt.Depth, pt.Faults, pts[0].Depth, pts[0].Faults)
		}
		if pt.Wasted == 0 {
			t.Errorf("depth %d: faults left no trace in wasted instances", pt.Depth)
		}
	}
}

// A pipelined group roster over the real mux transport: the loopback
// deployment at Depth 2 must survive its chaos schedule and pass.
func TestRunLoopbackDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback load run in -short mode")
	}
	r, err := Run(context.Background(), Profile{
		Mode:     "loopback",
		Groups:   4,
		Procs:    3,
		Depth:    2,
		Duration: 3 * time.Second,
		Rate:     30,
		Seed:     9,
		Chaos:    true,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	reportVerdict(t, r)
	if !r.Verdict.Pass {
		t.Error("verdict FAIL, want PASS")
	}
}
