package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conformance"
	"repro/internal/prng"
	"repro/internal/runtime"
)

// Profile describes one load run: the deployment mode and shape, the
// offered load, the chaos schedule, and the SLO the run is judged by.
type Profile struct {
	// Mode selects the deployment: "inproc" (every group a plain runtime
	// barrier, channel transport), "loopback" (one mux per simulated
	// process over loopback TCP — the smoke configuration), or "daemon"
	// (spawned cmd/barrierd -groups processes).
	Mode string
	// Groups is the number of multiplexed barrier groups; every fifth is
	// a tree group, the rest rings.
	Groups int
	// Procs is the number of simulated processes; every group spans all
	// of them, so the client population is Groups × Procs.
	Procs int
	// NPhases is every group's phase-counter modulus.
	NPhases int
	// Duration is the load window (chaos and arrivals both stop at its
	// end; quiescence and scoring follow).
	Duration time.Duration
	// Rate is each client's open-loop arrival rate in passes/second.
	Rate float64
	// Seed resolves all residual randomness — the chaos schedule, the
	// arrival jitter, and the groups' internal draws. A run is
	// reproducible from (Profile, Seed).
	Seed int64
	// Resend is the groups' retransmission period. The default is 5ms:
	// resend is the liveness fallback, not the fast path, and at cluster
	// scale an aggressive period (hundreds of member-barriers × kHz
	// retransmission) saturates the shared muxes and dominates the very
	// latencies the run is measuring.
	Resend time.Duration
	// Corrupt is a per-message corruption rate injected into every group.
	Corrupt float64
	// Depth is every group's wave-pipelining window (default 1): up to
	// Depth barrier instances overlap per group, and a fault landing in
	// the window can force up to Depth re-executed waves per member —
	// the wasted-work axis DepthSweep measures.
	Depth int

	// Chaos enables the fault schedule; Schedule overrides the generated
	// one with an explicit conformance schedule text (target "bench").
	Chaos       bool
	Schedule    string
	ChaosPacing time.Duration // per-step pacing (default 100ms)
	ChaosOps    int           // schedule length (default Duration/ChaosPacing)

	// SLO judges the final snapshot; zero-valued fields take the
	// DefaultSLO bounds for the profile shape.
	SLO SLO

	// BarrierdPath is a prebuilt cmd/barrierd binary for daemon mode
	// ("" builds one into a temp dir).
	BarrierdPath string

	Logf func(format string, args ...any)
}

// DefaultSLO derives CI-safe bounds from the profile shape. The absolute
// numbers are deliberately loose — a 1-core CI box under -race is not a
// benchmark host — while every check still has teeth: a wedged rejoin, a
// leaked partition, a halt, or runaway re-execution all fail it.
func (p *Profile) DefaultSLO() SLO {
	// barrier_passes_total counts per barrier instance: one per group in
	// inproc mode (a single shared barrier), one per (process, group)
	// member in the loopback and daemon modes.
	instances := p.Groups * p.Procs
	if p.Mode == "inproc" {
		instances = p.Groups
	}
	ideal := p.Rate * p.Duration.Seconds() * float64(instances)
	return SLO{
		// 0.15: kill windows stall every group cluster-wide, and a churned
		// or restarted member's counters restart from zero with it, so the
		// retained cluster total sits well below the offered load even on a
		// healthy run.
		MinPasses:      ideal * 0.15,
		PassP99:        500 * time.Millisecond,
		RecoveryFactor: 5,
		RecoveryFloor:  300 * time.Millisecond,
		// A fault landing in a Depth-deep window can waste up to Depth
		// waves per member, so the per-fault envelope scales with the
		// window.
		MaxWastedPerFault: 4 * float64(p.Groups*p.Procs) * float64(max(p.Depth, 1)),
		MaxMeanInstances:  1.5,
	}
}

func (p *Profile) normalize() error {
	if p.Mode == "" {
		p.Mode = "loopback"
	}
	switch p.Mode {
	case "inproc", "loopback", "daemon":
	default:
		return fmt.Errorf("bench: unknown mode %q", p.Mode)
	}
	if p.Groups < 1 || p.Procs < 2 {
		return fmt.Errorf("bench: need groups ≥ 1 and procs ≥ 2, got %d×%d", p.Groups, p.Procs)
	}
	if p.NPhases == 0 {
		p.NPhases = 4
	}
	if p.Duration <= 0 {
		p.Duration = 30 * time.Second
	}
	if p.Rate <= 0 {
		p.Rate = 20
	}
	if p.Resend == 0 {
		p.Resend = 5 * time.Millisecond
	}
	if p.Depth == 0 {
		p.Depth = 1
	}
	if p.Depth < 1 {
		return fmt.Errorf("bench: need depth ≥ 1, got %d", p.Depth)
	}
	if p.ChaosPacing <= 0 {
		p.ChaosPacing = 100 * time.Millisecond
	}
	if p.ChaosOps <= 0 {
		p.ChaosOps = int(p.Duration / p.ChaosPacing)
	}
	if p.SLO == (SLO{}) {
		p.SLO = p.DefaultSLO()
	}
	if p.Logf == nil {
		p.Logf = func(string, ...any) {}
	}
	return nil
}

// ClientStats tallies the simulated clients' outcomes.
type ClientStats struct {
	Passes         int64 // successful Awaits
	Resets         int64 // ErrReset re-executions observed
	StoppedRetries int64 // Awaits against a stopped (killed/churned) group
	Timeouts       int64 // per-attempt Await deadlines during outages
}

// Report is the full outcome of a run.
type Report struct {
	Schedule conformance.Schedule
	Chaos    ChaosStats
	Client   ClientStats
	Snapshot *Snapshot
	Verdict  Verdict
	Elapsed  time.Duration

	// Headline snapshot numbers, cluster-wide.
	Passes float64
	Wasted float64
}

// cluster is the mode-specific deployment behind a run: the chaos surface
// plus lifecycle, load control, and scraping.
type cluster interface {
	Cluster
	// Start brings the deployment and its client load up.
	Start(ctx context.Context) error
	// Quiesce stops the arrivals, heals outstanding faults, and waits for
	// the cluster counters to go stable (a Safra-style double collection:
	// a snapshot counts as final only after two successive scrapes agree),
	// so scoring reads a drained cluster, not a moving one.
	Quiesce(ctx context.Context) error
	Scrape() (*Snapshot, error)
	ClientStats() ClientStats
	Close() error
}

// Run executes a profile end to end and returns its judged report.
func Run(ctx context.Context, p Profile) (*Report, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	var schedule conformance.Schedule
	if p.Chaos {
		if p.Schedule != "" {
			s, err := conformance.Parse(p.Schedule)
			if err != nil {
				return nil, fmt.Errorf("bench: -chaos schedule: %w", err)
			}
			schedule = s
		} else {
			schedule = GenerateChaos(p.Procs, p.Groups, p.ChaosOps, p.Seed)
		}
	}

	var c cluster
	var err error
	switch p.Mode {
	case "inproc":
		c, err = newInprocCluster(&p)
	case "loopback":
		c, err = newLoopbackCluster(&p)
	case "daemon":
		c, err = newDaemonCluster(&p)
	}
	if err != nil {
		return nil, err
	}
	defer c.Close()

	start := time.Now()
	if err := c.Start(ctx); err != nil {
		return nil, err
	}
	p.Logf("bench: %s cluster up: %d groups × %d procs, rate %g/s/client, seed %d",
		p.Mode, p.Groups, p.Procs, p.Rate, p.Seed)

	loadCtx, loadDone := context.WithTimeout(ctx, p.Duration)
	defer loadDone()
	var chaos ChaosStats
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		if p.Chaos {
			chaos = runChaos(loadCtx, c, schedule, p.Groups, p.ChaosPacing, p.Logf)
		}
	}()
	<-loadCtx.Done()
	<-chaosDone
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.Logf("bench: load window over (%s); chaos applied %+v", p.Duration, chaos)

	if err := c.Quiesce(ctx); err != nil {
		return nil, fmt.Errorf("bench: quiesce: %w", err)
	}
	snap, err := c.Scrape()
	if err != nil {
		return nil, fmt.Errorf("bench: final scrape: %w", err)
	}

	r := &Report{
		Schedule: schedule,
		Chaos:    chaos,
		Client:   c.ClientStats(),
		Snapshot: snap,
		Elapsed:  time.Since(start),
		Passes:   snap.Sum("barrier_passes_total"),
		Wasted:   snap.Sum("barrier_wasted_instances_total"),
	}
	r.Verdict = p.SLO.Evaluate(snap, chaos.Faults(), chaos.StateFaults())
	return r, nil
}

// clientPool runs the simulated clients shared by the inproc and
// loopback modes: one goroutine per (process, group) pair, each pacing
// its arrivals open-loop from its own PRNG. An arrival that finds the
// previous Await still blocked is absorbed by running the loop behind
// schedule (arrival targets are anchored to the schedule, not to
// completions, so a slow barrier does not thin the offered load).
type clientPool struct {
	ctx    context.Context
	stop   context.CancelFunc
	wg     sync.WaitGroup
	passes, resets, stopped, timeouts atomic.Int64
	errMu sync.Mutex
	err   error
}

// awaitTimeout bounds one client attempt, so a client stalled by a kill
// or partition window returns to its arrival schedule instead of
// blocking through it. The abandoned ticket stays outstanding; the next
// attempt collects the pass.
const awaitTimeout = 2 * time.Second

func newClientPool(parent context.Context) *clientPool {
	ctx, stop := context.WithCancel(parent)
	return &clientPool{ctx: ctx, stop: stop}
}

func (cp *clientPool) fail(err error) {
	cp.errMu.Lock()
	if cp.err == nil {
		cp.err = err
	}
	cp.errMu.Unlock()
}

func (cp *clientPool) spawn(aw func(context.Context) (int, error), seed int64, rate float64) {
	interval := time.Duration(float64(time.Second) / rate)
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		rng := prng.New(seed)
		next := time.Now()
		for cp.ctx.Err() == nil {
			// Open-loop arrival: interval with ±25% jitter.
			next = next.Add(time.Duration(float64(interval) * (0.75 + 0.5*rng.Float64())))
			if d := time.Until(next); d > 0 {
				select {
				case <-cp.ctx.Done():
					return
				case <-time.After(d):
				}
			}
			actx, cancel := context.WithTimeout(cp.ctx, awaitTimeout)
			_, err := aw(actx)
			cancel()
			switch {
			case err == nil:
				cp.passes.Add(1)
			case errors.Is(err, runtime.ErrReset):
				cp.resets.Add(1)
			case errors.Is(err, runtime.ErrStopped):
				// The group's local member is down (kill/churn window).
				cp.stopped.Add(1)
				select {
				case <-cp.ctx.Done():
					return
				case <-time.After(2 * time.Millisecond):
				}
			case cp.ctx.Err() != nil:
				return
			case errors.Is(err, context.DeadlineExceeded):
				cp.timeouts.Add(1)
			default:
				cp.fail(err)
				return
			}
		}
	}()
}

// drain stops the arrivals and waits for every client to return.
func (cp *clientPool) drain() error {
	cp.stop()
	cp.wg.Wait()
	cp.errMu.Lock()
	defer cp.errMu.Unlock()
	return cp.err
}

func (cp *clientPool) stats() ClientStats {
	return ClientStats{
		Passes:         cp.passes.Load(),
		Resets:         cp.resets.Load(),
		StoppedRetries: cp.stopped.Load(),
		Timeouts:       cp.timeouts.Load(),
	}
}

// clientSeed decorrelates the per-client PRNGs from the profile seed.
func clientSeed(seed int64, proc, group int) int64 {
	return seed ^ int64(uint64(proc)*0x9e3779b97f4a7c15) ^ int64(uint64(group)*0xbf58476d1ce4e5b9)
}

// waitStable polls total until two successive reads `gap` apart agree —
// the double-collection quiescence check — or the deadline passes.
func waitStable(ctx context.Context, gap time.Duration, timeout time.Duration, total func() (float64, error)) error {
	deadline := time.Now().Add(timeout)
	prev, err := total()
	if err != nil {
		return err
	}
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("counters still moving after %s", timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(gap):
		}
		cur, err := total()
		if err != nil {
			return err
		}
		if cur == prev {
			return nil
		}
		prev = cur
	}
}
