package bench

import (
	"context"
	"time"

	"repro/internal/conformance"
)

// ChaosTarget names the pseudo-target barrierbench schedules declare.
// The conformance engines never run it; it only marks the schedule as a
// cluster-harness schedule in its replayable text form.
const ChaosTarget = "bench"

// Cluster is the chaos runner's handle on a running deployment. A mode
// that cannot express an operation returns errSkip from it; the runner
// counts the skip and moves on, so one schedule drives all three modes.
type Cluster interface {
	// Kill tears down process j's entire stack (SIGKILL in daemon mode).
	Kill(j int) error
	// Restart brings a killed process back with rejoin semantics.
	Restart(j int) error
	// Partition isolates process j from every peer for d, healing
	// automatically.
	Partition(j int, d time.Duration) error
	// Churn stops group g on every process and recreates it.
	Churn(g int) error
	// Reset injects a detectable fault at process j's member of group g.
	Reset(j, g int) error
}

// errSkip marks an operation a cluster mode cannot express.
type skipError struct{ what string }

func (e skipError) Error() string { return "bench: " + e.what + " not supported by this mode" }

// ChaosStats tallies what a chaos schedule actually did to the cluster.
type ChaosStats struct {
	Kills      int
	Restarts   int
	Partitions int
	Churns     int
	Resets     int
	Skipped    int
}

// Faults is the total number of injected faults — the denominator of the
// wasted-work-per-fault SLO. A kill+restart window counts once.
func (c ChaosStats) Faults() int { return c.Kills + c.Partitions + c.Churns + c.Resets }

// StateFaults counts the injections that arm the recovery histogram.
func (c ChaosStats) StateFaults() int { return c.Resets }

// GenerateChaos derives the chaos schedule deterministically from the
// profile seed: kills (with bounded outage windows), timed partitions,
// group churn and detectable resets, mixed over ~ops operations. At least
// one kill+rejoin window is guaranteed — the smoke acceptance — by
// splicing one into the middle when the draw produced none.
func GenerateChaos(procs, groups, ops int, seed int64) conformance.Schedule {
	s := conformance.Generate(conformance.GenConfig{
		Target:  ChaosTarget,
		NProcs:  procs,
		NPhases: 4,
		Ops:     ops,
		// Faults stay rare — the paper's Section 4 failure model, and what
		// keeps a default run's verdict about tolerance rather than about
		// surviving a fault storm: ~5% of paced steps, so a 30s window at
		// the default pacing sees on the order of 15 faults.
		FaultRate: 0.05,
		Kills:      true,
		Partitions: true,
		Churns:     true,
	}, seed)
	// Spread reset targets over the groups too: Generate leaves Arg 0, and
	// the runner reads Arg as the group selector.
	g := int(seed)
	if g < 0 {
		g = -g
	}
	for i := range s.Ops {
		if s.Ops[i].Kind == conformance.OpReset {
			s.Ops[i].Arg = int64((g + i) % maxInt(groups, 1))
		}
	}
	if s.CountKind(conformance.OpKill) == 0 {
		j := g % maxInt(procs, 1)
		window := []conformance.Op{
			{Kind: conformance.OpKill, Proc: j},
			{Kind: conformance.OpStep}, {Kind: conformance.OpStep}, {Kind: conformance.OpStep},
			{Kind: conformance.OpRestart, Proc: j},
		}
		mid := len(s.Ops) / 2
		s.Ops = append(s.Ops[:mid:mid], append(window, s.Ops[mid:]...)...)
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runChaos applies the schedule's operations to the cluster with
// wall-clock pacing: every step sleeps `pacing`, so a schedule of k ops
// spreads over roughly k × pacing of the load window. Kills left open at
// the end are restarted, so the cluster is whole before quiescence. The
// runner is single-threaded by design — fault windows never overlap, as
// in the conformance harness.
func runChaos(ctx context.Context, c Cluster, s conformance.Schedule, groups int, pacing time.Duration, logf func(string, ...any)) ChaosStats {
	var st ChaosStats
	killed := make(map[int]bool)
	clamp := func(j, n int) int {
		j %= n
		if j < 0 {
			j += n
		}
		return j
	}
	apply := func(what string, err error) bool {
		if err == nil {
			return true
		}
		st.Skipped++
		if _, skip := err.(skipError); !skip && logf != nil {
			logf("chaos: %s failed: %v", what, err)
		}
		return false
	}
	for _, op := range s.Ops {
		select {
		case <-ctx.Done():
			break
		default:
		}
		if ctx.Err() != nil {
			break
		}
		switch op.Kind {
		case conformance.OpStep:
			select {
			case <-ctx.Done():
			case <-time.After(pacing):
			}
		case conformance.OpKill:
			j := clamp(op.Proc, s.NProcs)
			if killed[j] {
				continue
			}
			if apply("kill", c.Kill(j)) {
				killed[j] = true
				st.Kills++
			}
		case conformance.OpRestart:
			j := clamp(op.Proc, s.NProcs)
			if !killed[j] {
				continue
			}
			if apply("restart", c.Restart(j)) {
				delete(killed, j)
				st.Restarts++
			}
		case conformance.OpPartition:
			d := time.Duration(op.Arg) * time.Millisecond
			if d <= 0 {
				d = 100 * time.Millisecond
			}
			if apply("partition", c.Partition(clamp(op.Proc, s.NProcs), d)) {
				st.Partitions++
			}
		case conformance.OpChurn:
			if apply("churn", c.Churn(clamp(op.Proc, groups))) {
				st.Churns++
			}
		case conformance.OpReset:
			if apply("reset", c.Reset(clamp(op.Proc, s.NProcs), clamp(int(op.Arg), groups))) {
				st.Resets++
			}
		default:
			// Scrambles/spurious/crash-gate ops have no cluster analogue.
			st.Skipped++
		}
	}
	// Restore every process the schedule (or an early ctx cancel) left
	// dead: scoring judges a whole cluster.
	for j := range killed {
		if apply("final restart", c.Restart(j)) {
			st.Restarts++
		}
	}
	return st
}
