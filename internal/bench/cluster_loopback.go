package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/groups"
	"repro/internal/obsv"
	"repro/internal/transport"
)

// loopbackCluster is the smoke-profile deployment: one mux per simulated
// process, loopback TCP between them, every group a tenant in every
// process's groups.Registry. A kill tears down one process's members and
// connections (the in-binary rendition of SIGKILL), a partition gates its
// sockets, churn cycles one tenant everywhere — all against real wire
// traffic.
type loopbackCluster struct {
	p    *Profile
	cfgs []groups.Config
	mets []*obsv.Registry
	set  *transport.MuxSet
	regs []*groups.Registry
	pool *clientPool

	mu      sync.Mutex
	killed  []bool
	healers map[*time.Timer]struct{}
	healWG  sync.WaitGroup
	closed  bool
}

// groupConfigs declares the tenant mix shared by the loopback and daemon
// modes: every fifth group a tree, the rest rings.
func groupConfigs(p *Profile) []groups.Config {
	cfgs := make([]groups.Config, p.Groups)
	for i := range cfgs {
		topo := transport.GroupRing
		if i%5 == 4 {
			topo = transport.GroupTree
		}
		cfgs[i] = groups.Config{
			Name:        fmt.Sprintf("g%03d", i),
			Topology:    topo,
			Depth:       p.Depth,
			NPhases:     p.NPhases,
			Resend:      p.Resend,
			CorruptRate: p.Corrupt,
			Seed:        p.Seed + int64(i),
		}
	}
	return cfgs
}

func newLoopbackCluster(p *Profile) (cluster, error) {
	return &loopbackCluster{
		p:       p,
		cfgs:    groupConfigs(p),
		killed:  make([]bool, p.Procs),
		healers: make(map[*time.Timer]struct{}),
	}, nil
}

func (c *loopbackCluster) Start(ctx context.Context) error {
	specs, err := groups.Specs(c.cfgs)
	if err != nil {
		return err
	}
	c.mets = make([]*obsv.Registry, c.p.Procs)
	for j := range c.mets {
		c.mets[j] = obsv.NewRegistry()
	}
	// One registry per simulated process, or the per-group labelled series
	// of the processes would collide on names.
	c.set, err = transport.NewLoopbackMuxes(c.p.Procs, specs, func(mc *transport.MuxConfig) {
		mc.Registry = c.mets[mc.Self]
	})
	if err != nil {
		return err
	}
	c.regs = make([]*groups.Registry, c.p.Procs)
	for j := range c.regs {
		r, err := groups.NewWithMux(groups.Options{Self: j, Metrics: c.mets[j]}, c.cfgs, c.set.Muxes[j])
		if err != nil {
			return fmt.Errorf("bench: process %d registry: %w", j, err)
		}
		c.regs[j] = r
	}
	c.pool = newClientPool(ctx)
	for j := 0; j < c.p.Procs; j++ {
		for gi := range c.cfgs {
			g := c.regs[j].Groups()[gi]
			c.pool.spawn(g.Await, clientSeed(c.p.Seed, j, gi), c.p.Rate)
		}
	}
	return nil
}

func (c *loopbackCluster) Kill(j int) error {
	c.mu.Lock()
	c.killed[j] = true
	c.mu.Unlock()
	for _, cfg := range c.cfgs {
		c.regs[j].StopGroup(cfg.Name)
	}
	// The dead process's sockets die with it.
	c.set.Muxes[j].BreakConns()
	return nil
}

func (c *loopbackCluster) Restart(j int) error {
	for _, cfg := range c.cfgs {
		if err := c.regs[j].StartGroup(cfg.Name, true); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.killed[j] = false
	c.mu.Unlock()
	return nil
}

func (c *loopbackCluster) Partition(j int, d time.Duration) error {
	c.set.PartitionProc(j, true)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.set.PartitionProc(j, false)
		return nil
	}
	c.healWG.Add(1)
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		defer c.healWG.Done()
		c.set.PartitionProc(j, false)
		c.mu.Lock()
		delete(c.healers, t)
		c.mu.Unlock()
	})
	c.healers[t] = struct{}{}
	c.mu.Unlock()
	return nil
}

func (c *loopbackCluster) Churn(gi int) error {
	name := c.cfgs[gi].Name
	for j := 0; j < c.p.Procs; j++ {
		c.regs[j].StopGroup(name)
	}
	c.mu.Lock()
	killed := append([]bool(nil), c.killed...)
	c.mu.Unlock()
	for j := 0; j < c.p.Procs; j++ {
		if killed[j] {
			continue // its Restart will bring this member back too
		}
		if err := c.regs[j].StartGroup(name, true); err != nil {
			return err
		}
	}
	return nil
}

func (c *loopbackCluster) Reset(j, gi int) error {
	b := c.regs[j].Groups()[gi].Barrier()
	if b == nil {
		return skipError{"reset on a stopped member"}
	}
	b.Reset(j)
	return nil
}

// healAll fires every outstanding partition heal now.
func (c *loopbackCluster) healAll() {
	c.mu.Lock()
	timers := make([]*time.Timer, 0, len(c.healers))
	for t := range c.healers {
		timers = append(timers, t)
	}
	c.mu.Unlock()
	for _, t := range timers {
		t.Reset(0)
	}
	c.healWG.Wait()
}

func (c *loopbackCluster) Quiesce(ctx context.Context) error {
	err := c.pool.drain()
	c.healAll()
	if err != nil {
		return err
	}
	return waitStable(ctx, 100*time.Millisecond, 10*time.Second, func() (float64, error) {
		snap, err := c.Scrape()
		if err != nil {
			return 0, err
		}
		return snap.Sum("barrier_passes_total"), nil
	})
}

func (c *loopbackCluster) Scrape() (*Snapshot, error) {
	snap := NewSnapshot()
	for j, reg := range c.mets {
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			return nil, fmt.Errorf("process %d: %w", j, err)
		}
		if err := snap.Merge(sb.String()); err != nil {
			return nil, fmt.Errorf("process %d: %w", j, err)
		}
	}
	return snap, nil
}

func (c *loopbackCluster) ClientStats() ClientStats { return c.pool.stats() }

func (c *loopbackCluster) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	if c.pool != nil {
		c.pool.stop()
		c.pool.wg.Wait()
	}
	c.healAll()
	for _, r := range c.regs {
		if r != nil {
			r.Close()
		}
	}
	if c.set != nil {
		return c.set.Close()
	}
	return nil
}
