// Package bench is the cluster-scale load harness behind cmd/barrierbench:
// it drives hundreds of multiplexed barrier groups × thousands of
// simulated clients against a deployment (in-process barriers, a loopback
// TCP mux cluster, or spawned barrierd daemons), injects a deterministic
// chaos schedule expressed in the conformance schedule language, and
// judges the run with pass/fail SLO verdicts computed from /metrics
// scrapes — the live counterparts of the paper's Fig 3/5/7 quantities.
package bench

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is an aggregate of Prometheus-text exposition bodies. Merging
// several scrapes (one per process of a cluster) sums same-named series,
// which is exactly the cluster-wide view the SLO checks need: counters
// add, histogram buckets of identical bounds add, and the per-group
// {group="..."} label fan-out collapses into per-family totals.
type Snapshot struct {
	// fam sums every non-bucket sample by family name (the series name
	// with its label set stripped), so barrier_passes_total{group="a"} and
	// {group="b"} from two processes all land in "barrier_passes_total".
	fam map[string]float64
	// bucket sums cumulative histogram bucket counts: family (without the
	// _bucket suffix) → le label text → count. Cumulative counts of
	// identically-bounded histograms stay cumulative under addition.
	bucket map[string]map[string]float64
}

// NewSnapshot returns an empty aggregate.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		fam:    make(map[string]float64),
		bucket: make(map[string]map[string]float64),
	}
}

// Merge parses one exposition body and adds its samples in.
func (s *Snapshot) Merge(text string) error {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return fmt.Errorf("bench: malformed sample line %q", line)
		}
		series, valText := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			return fmt.Errorf("bench: bad sample value in %q: %v", line, err)
		}
		name := series
		labels := ""
		if br := strings.IndexByte(series, '{'); br >= 0 {
			name = series[:br]
			labels = strings.TrimSuffix(series[br+1:], "}")
		}
		if fam, ok := strings.CutSuffix(name, "_bucket"); ok {
			le := leLabel(labels)
			if le == "" {
				return fmt.Errorf("bench: bucket sample without le label: %q", line)
			}
			m := s.bucket[fam]
			if m == nil {
				m = make(map[string]float64)
				s.bucket[fam] = m
			}
			m[le] += val
			continue
		}
		s.fam[name] += val
	}
	return sc.Err()
}

// leLabel extracts the le="..." value from a rendered label set.
func leLabel(labels string) string {
	for _, part := range strings.Split(labels, ",") {
		if v, ok := strings.CutPrefix(strings.TrimSpace(part), `le="`); ok {
			return strings.TrimSuffix(v, `"`)
		}
	}
	return ""
}

// Sum returns the summed value of every sample of the family (counters
// and gauges; for histograms use the _sum/_count families or Quantile).
func (s *Snapshot) Sum(family string) float64 { return s.fam[family] }

// HistCount returns a histogram family's total observation count.
func (s *Snapshot) HistCount(family string) float64 { return s.fam[family+"_count"] }

// HistMean returns a histogram family's exact mean (sum/count) and
// whether it has any observations. Unlike Quantile it is not clipped by
// the bucket bounds, so it sees stalls past the largest finite bucket.
func (s *Snapshot) HistMean(family string) (float64, bool) {
	count := s.fam[family+"_count"]
	if count == 0 {
		return 0, false
	}
	return s.fam[family+"_sum"] / count, true
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of a histogram family
// from its merged cumulative buckets, interpolating linearly inside the
// bucket the rank falls in — the histogram_quantile estimate. The second
// result is false when the family has no observations. A rank landing in
// the +Inf bucket reports the largest finite bound (a lower bound on the
// true quantile; the SLO checks treat it as "at least this bad").
func (s *Snapshot) Quantile(family string, q float64) (float64, bool) {
	buckets := s.bucket[family]
	if len(buckets) == 0 {
		return 0, false
	}
	type bkt struct {
		le    float64
		count float64
	}
	var bs []bkt
	total := 0.0
	for leText, c := range buckets {
		le := math.Inf(1)
		if leText != "+Inf" {
			v, err := strconv.ParseFloat(leText, 64)
			if err != nil {
				return 0, false
			}
			le = v
		} else {
			total = c
		}
		bs = append(bs, bkt{le, c})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	if total == 0 {
		return 0, false
	}
	rank := q * total
	lower, lowerCount := 0.0, 0.0
	for _, b := range bs {
		if b.count >= rank {
			if math.IsInf(b.le, 1) {
				return lower, true // rank beyond the largest finite bound
			}
			span := b.count - lowerCount
			if span <= 0 {
				return b.le, true
			}
			return lower + (b.le-lower)*(rank-lowerCount)/span, true
		}
		if !math.IsInf(b.le, 1) {
			lower, lowerCount = b.le, b.count
		}
	}
	return lower, true
}
