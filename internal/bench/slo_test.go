package bench

import (
	"strings"
	"testing"
	"time"
)

// testSLO is a fixed bound set the synthetic snapshots below are judged
// against, independent of DefaultSLO's shape-derived numbers.
var testSLO = SLO{
	MinPasses:         100,
	PassP99:           10 * time.Millisecond,
	RecoveryFactor:    5,
	RecoveryFloor:     300 * time.Millisecond,
	MaxWastedPerFault: 10,
	MaxMeanInstances:  1.5,
}

// healthyBody models a run that should pass every check: plenty of
// passes, sub-bound latency, quick recoveries, modest waste.
const healthyBody = `barrier_passes_total 1000
barrier_halted 0
barrier_wasted_instances_total 6
barrier_phase_seconds_bucket{le="0.001"} 900
barrier_phase_seconds_bucket{le="0.004"} 1000
barrier_phase_seconds_bucket{le="+Inf"} 1000
barrier_phase_seconds_sum 1.2
barrier_phase_seconds_count 1000
barrier_recovery_seconds_bucket{le="0.004"} 4
barrier_recovery_seconds_bucket{le="+Inf"} 4
barrier_recovery_seconds_sum 0.012
barrier_recovery_seconds_count 4
`

func failedChecks(v Verdict) []string {
	var names []string
	for _, c := range v.Checks {
		if !c.OK {
			names = append(names, c.Name+" ("+c.Detail+")")
		}
	}
	return names
}

func wantOnlyFailure(t *testing.T, v Verdict, name string) {
	t.Helper()
	if v.Pass {
		t.Fatalf("verdict PASS, want FAIL on %s", name)
	}
	failed := failedChecks(v)
	if len(failed) != 1 || !strings.HasPrefix(failed[0], name) {
		t.Fatalf("failed checks = %v, want exactly [%s ...]", failed, name)
	}
}

func TestEvaluateHealthyRunPasses(t *testing.T) {
	v := testSLO.Evaluate(mergedSnap(t, healthyBody), 3, 2)
	if !v.Pass {
		t.Fatalf("verdict FAIL, failed checks: %v", failedChecks(v))
	}
	if v.String() != "PASS" {
		t.Errorf("String() = %q, want PASS", v.String())
	}
	if len(v.Checks) != 6 {
		t.Errorf("got %d checks, want 6: %+v", len(v.Checks), v.Checks)
	}
}

func TestEvaluateFailureBranches(t *testing.T) {
	cases := []struct {
		name        string
		mutate      func(string) string
		faults      int
		stateFaults int
		check       string
	}{
		{"throughput floor", func(b string) string {
			return strings.Replace(b, "barrier_passes_total 1000", "barrier_passes_total 99", 1)
		}, 3, 2, "passes"},
		{"fail-safe halt", func(b string) string {
			return strings.Replace(b, "barrier_halted 0", "barrier_halted 1", 1)
		}, 3, 2, "halted"},
		{"no latency samples", func(b string) string {
			for _, cut := range []string{
				`barrier_phase_seconds_bucket{le="0.001"} 900` + "\n",
				`barrier_phase_seconds_bucket{le="0.004"} 1000` + "\n",
				`barrier_phase_seconds_bucket{le="+Inf"} 1000` + "\n",
			} {
				b = strings.Replace(b, cut, "", 1)
			}
			return b
		}, 3, 2, "pass-p99"},
		{"state faults but no recovery samples", func(b string) string {
			b = strings.Replace(b, "barrier_recovery_seconds_count 4", "barrier_recovery_seconds_count 0", 1)
			return strings.Replace(b, "barrier_recovery_seconds_sum 0.012", "barrier_recovery_seconds_sum 0", 1)
		}, 3, 2, "recovery"},
		{"slow recovery", func(b string) string {
			// Mean recovery 2s against bound max(5 × 1.2ms, 300ms) = 300ms.
			return strings.Replace(b, "barrier_recovery_seconds_sum 0.012", "barrier_recovery_seconds_sum 8", 1)
		}, 3, 2, "recovery"},
		{"faults without waste", func(b string) string {
			return strings.Replace(b, "barrier_wasted_instances_total 6", "barrier_wasted_instances_total 0", 1)
		}, 3, 2, "wasted-per-fault"},
		{"per-fault bound", func(b string) string {
			return strings.Replace(b, "barrier_wasted_instances_total 6", "barrier_wasted_instances_total 40", 1)
		}, 3, 2, "wasted-per-fault"},
		{"mean instances envelope", func(b string) string {
			return strings.Replace(b, "barrier_wasted_instances_total 6", "barrier_wasted_instances_total 600", 1)
		}, 100, 2, "mean-instances"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := testSLO.Evaluate(mergedSnap(t, tc.mutate(healthyBody)), tc.faults, tc.stateFaults)
			wantOnlyFailure(t, v, tc.check)
		})
	}
}

// A fault-free quiet run: no recovery samples is "nothing to recover
// from", and a few transient re-executions (startup races) are not a
// failure — the mean-instances envelope bounds them instead.
func TestEvaluateFaultFreeRun(t *testing.T) {
	body := strings.Replace(healthyBody, "barrier_recovery_seconds_count 4", "barrier_recovery_seconds_count 0", 1)
	body = strings.Replace(body, "barrier_recovery_seconds_sum 0.012", "barrier_recovery_seconds_sum 0", 1)
	v := testSLO.Evaluate(mergedSnap(t, body), 0, 0)
	if !v.Pass {
		t.Fatalf("fault-free verdict FAIL, failed checks: %v", failedChecks(v))
	}
}
