package bench

import (
	"math"
	"strings"
	"testing"
)

const expoA = `# HELP barrier_passes_total Barrier passes delivered.
# TYPE barrier_passes_total counter
barrier_passes_total{group="g000"} 10
barrier_passes_total{group="g001"} 5
barrier_halted 0
barrier_phase_seconds_bucket{le="0.001"} 5
barrier_phase_seconds_bucket{le="0.01"} 9
barrier_phase_seconds_bucket{le="+Inf"} 10
barrier_phase_seconds_sum 0.05
barrier_phase_seconds_count 10
`

const expoB = `barrier_passes_total{group="g000"} 7
barrier_wasted_instances_total 3
barrier_phase_seconds_bucket{group="x",le="0.001"} 1
barrier_phase_seconds_bucket{group="x",le="0.01"} 1
barrier_phase_seconds_bucket{group="x",le="+Inf"} 2
barrier_phase_seconds_sum 1.0
barrier_phase_seconds_count 2
`

func mergedSnap(t *testing.T, bodies ...string) *Snapshot {
	t.Helper()
	s := NewSnapshot()
	for _, b := range bodies {
		if err := s.Merge(b); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	return s
}

// Merging scrapes must collapse the label fan-out into per-family sums
// and add histogram buckets bound-by-bound — the cluster-wide view.
func TestSnapshotMergeSums(t *testing.T) {
	s := mergedSnap(t, expoA, expoB)
	if got := s.Sum("barrier_passes_total"); got != 22 {
		t.Errorf("passes sum = %v, want 22", got)
	}
	if got := s.Sum("barrier_wasted_instances_total"); got != 3 {
		t.Errorf("wasted sum = %v, want 3", got)
	}
	if got := s.Sum("barrier_halted"); got != 0 {
		t.Errorf("halted sum = %v, want 0", got)
	}
	if got := s.HistCount("barrier_phase_seconds"); got != 12 {
		t.Errorf("phase count = %v, want 12", got)
	}
	mean, ok := s.HistMean("barrier_phase_seconds")
	if !ok || math.Abs(mean-1.05/12) > 1e-12 {
		t.Errorf("phase mean = %v ok=%v, want %v", mean, ok, 1.05/12)
	}
	if _, ok := s.HistMean("barrier_recovery_seconds"); ok {
		t.Error("HistMean reported ok for a family with no samples")
	}
}

func TestSnapshotQuantile(t *testing.T) {
	s := mergedSnap(t, expoA)
	// rank(0.5) = 5 falls exactly at the first bucket's cumulative count:
	// linear interpolation lands on its upper bound.
	if q, ok := s.Quantile("barrier_phase_seconds", 0.5); !ok || math.Abs(q-0.001) > 1e-9 {
		t.Errorf("p50 = %v ok=%v, want 0.001", q, ok)
	}
	// rank(0.99) = 9.9 lands in the +Inf bucket: the estimate clips to the
	// largest finite bound — a lower bound on the true quantile.
	if q, ok := s.Quantile("barrier_phase_seconds", 0.99); !ok || math.Abs(q-0.01) > 1e-9 {
		t.Errorf("p99 = %v ok=%v, want 0.01 (clip)", q, ok)
	}
	if _, ok := s.Quantile("barrier_recovery_seconds", 0.5); ok {
		t.Error("Quantile reported ok for a family with no buckets")
	}
}

func TestSnapshotMergeRejectsMalformed(t *testing.T) {
	for _, body := range []string{
		"barrier_passes_total ten\n",
		"naked_line_without_value\n",
		`barrier_phase_seconds_bucket{group="x"} 3` + "\n", // bucket, no le
	} {
		if err := NewSnapshot().Merge(body); err == nil {
			t.Errorf("Merge(%q) accepted a malformed body", strings.TrimSpace(body))
		}
	}
	// Comments and blank lines are fine.
	if err := NewSnapshot().Merge("\n# HELP x y\n\n"); err != nil {
		t.Errorf("Merge rejected comments/blanks: %v", err)
	}
}
