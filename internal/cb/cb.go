// Package cb implements program CB, the coarse-grain barrier
// synchronization solution of Section 3 of the paper: the process graph is
// fully connected and each action may instantaneously read the state of all
// other processes while updating its own.
//
// Each process j maintains a control position cp.j and a phase number ph.j
// and executes four actions:
//
//	CB1 :: cp.j=ready ∧ ((∀k: cp.k=ready) ∨ (∃k: cp.k=execute))   → cp.j := execute
//	CB2 :: cp.j=execute ∧ ((∀k: cp.k≠ready) ∨ (∃k: cp.k=success)) → cp.j := success
//	CB3 :: cp.j=success ∧ (∀k: cp.k≠execute) →
//	         if ∃k: cp.k=ready        then ph.j := ph.(any ready k)
//	         elseif ∀k: cp.k=success  then ph.j := ph.j+1
//	         cp.j := ready
//	CB4 :: cp.j=error ∧ (∀k: cp.k≠execute) →
//	         if ∃k: cp.k=ready        then ph.j := ph.(any ready k)
//	         elseif ∃k: cp.k=success  then ph.j := ph.(any success k)
//	         else                     ph.j := arbitrary
//	         cp.j := ready
//
// CB is masking tolerant to detectable faults (ph,cp := ?,error) and
// stabilizing tolerant to undetectable faults (ph,cp := ?,?).
package cb

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/guarded"
)

// EventSink receives the Begin/Complete/Reset events of a computation, in
// execution order, e.g. a core.SpecChecker's Observe method.
type EventSink = core.EventSink

// Program is an instance of CB over n processes and nPhases cyclic phases.
type Program struct {
	n       int
	nPhases int
	cp      []core.CP
	ph      []int
	prog    *guarded.Program
	rng     *rand.Rand
	sink    EventSink
}

// New builds a CB instance. rng resolves the protocol's nondeterministic
// choices ("any k", "an arbitrary number") and must not be nil. sink may be
// nil. Following the paper's exposition, nPhases must be at least 2 (see
// the Section 3 remark for the single-phase case, implemented by
// NewSinglePhase via phase replication).
func New(nProcs, nPhases int, rng *rand.Rand, sink EventSink) (*Program, error) {
	if nProcs < 2 {
		return nil, errors.New("cb: need at least 2 processes")
	}
	if nPhases < 2 {
		return nil, errors.New("cb: need at least 2 phases (see NewSinglePhase)")
	}
	if rng == nil {
		return nil, errors.New("cb: rng must not be nil")
	}
	p := &Program{
		n:       nProcs,
		nPhases: nPhases,
		cp:      make([]core.CP, nProcs),
		ph:      make([]int, nProcs),
		rng:     rng,
		sink:    sink,
	}
	p.prog = guarded.NewProgram()
	for j := 0; j < nProcs; j++ {
		p.addActions(j)
	}
	return p, nil
}

// NewSinglePhase maps the single-phase case onto the multi-phase case by
// replicating the phase, per the Section 3 remark.
func NewSinglePhase(nProcs int, rng *rand.Rand, sink EventSink) (*Program, error) {
	return New(nProcs, 2, rng, sink)
}

// Guarded returns the underlying guarded-command program for scheduling.
func (p *Program) Guarded() *guarded.Program { return p.prog }

// N returns the number of processes.
func (p *Program) N() int { return p.n }

// NumPhases returns the length of the cyclic phase sequence.
func (p *Program) NumPhases() int { return p.nPhases }

// CP returns process j's control position.
func (p *Program) CP(j int) core.CP { return p.cp[j] }

// Phase returns process j's phase number.
func (p *Program) Phase(j int) int { return p.ph[j] }

func (p *Program) emit(e core.Event) {
	if p.sink != nil {
		p.sink(e)
	}
}

// quantifiers over the (fully connected) global state

func (p *Program) all(c core.CP) bool {
	for _, v := range p.cp {
		if v != c {
			return false
		}
	}
	return true
}

func (p *Program) none(c core.CP) bool {
	for _, v := range p.cp {
		if v == c {
			return false
		}
	}
	return true
}

func (p *Program) exists(c core.CP) bool { return !p.none(c) }

// anyPhaseWith returns the phase of a process whose control position is c,
// chosen uniformly among candidates, and whether one exists.
func (p *Program) anyPhaseWith(c core.CP) (int, bool) {
	count := 0
	pick := 0
	for k, v := range p.cp {
		if v == c {
			count++
			if p.rng.Intn(count) == 0 {
				pick = k
			}
		}
	}
	if count == 0 {
		return 0, false
	}
	return p.ph[pick], true
}

func (p *Program) addActions(j int) {
	// CB1: ready → execute.
	p.prog.Add(guarded.Action{
		Name: fmt.Sprintf("CB1.%d", j),
		Proc: j,
		Guard: func() bool {
			return p.cp[j] == core.Ready && (p.all(core.Ready) || p.exists(core.Execute))
		},
		Body: func() func() {
			phase := p.ph[j]
			return func() {
				p.cp[j] = core.Execute
				p.emit(core.Event{Kind: core.EvBegin, Proc: j, Phase: phase})
			}
		},
	})

	// CB2: execute → success.
	p.prog.Add(guarded.Action{
		Name: fmt.Sprintf("CB2.%d", j),
		Proc: j,
		Guard: func() bool {
			return p.cp[j] == core.Execute && (p.none(core.Ready) || p.exists(core.Success))
		},
		Body: func() func() {
			phase := p.ph[j]
			return func() {
				p.cp[j] = core.Success
				p.emit(core.Event{Kind: core.EvComplete, Proc: j, Phase: phase})
			}
		},
	})

	// CB3: success → ready, choosing the next phase.
	p.prog.Add(guarded.Action{
		Name: fmt.Sprintf("CB3.%d", j),
		Proc: j,
		Guard: func() bool {
			return p.cp[j] == core.Success && p.none(core.Execute)
		},
		Body: func() func() {
			next := p.ph[j]
			if phR, ok := p.anyPhaseWith(core.Ready); ok {
				next = phR
			} else if p.all(core.Success) {
				next = core.NextPhase(p.ph[j], p.nPhases)
			}
			return func() {
				p.ph[j] = next
				p.cp[j] = core.Ready
			}
		},
	})

	// CB4: error → ready, recovering the phase.
	p.prog.Add(guarded.Action{
		Name: fmt.Sprintf("CB4.%d", j),
		Proc: j,
		Guard: func() bool {
			return p.cp[j] == core.Error && p.none(core.Execute)
		},
		Body: func() func() {
			var next int
			if phR, ok := p.anyPhaseWith(core.Ready); ok {
				next = phR
			} else if phS, ok := p.anyPhaseWith(core.Success); ok {
				next = phS
			} else {
				// The phase of all processes is corrupted: choose arbitrarily.
				next = p.rng.Intn(p.nPhases)
			}
			return func() {
				p.ph[j] = next
				p.cp[j] = core.Ready
			}
		},
	})
}

// InjectDetectable applies the detectable fault action to process j:
// ph.j, cp.j := ?, error.
func (p *Program) InjectDetectable(j int) {
	if j < 0 || j >= p.n {
		return
	}
	p.emit(core.Event{Kind: core.EvReset, Proc: j, Phase: p.ph[j]})
	p.ph[j] = p.rng.Intn(p.nPhases)
	p.cp[j] = core.Error
}

// InjectUndetectable applies the undetectable fault action to process j:
// ph.j, cp.j := ?, ? with values drawn uniformly from the domains. CB does
// not use the Repeat control position, so cp ranges over the other four.
func (p *Program) InjectUndetectable(j int) {
	if j < 0 || j >= p.n {
		return
	}
	p.ph[j] = p.rng.Intn(p.nPhases)
	p.cp[j] = core.CP(p.rng.Intn(4)) // Ready, Execute, Success, Error
}

// InStartState reports whether all processes are ready and in one phase —
// the start states from which the paper's Lemma 3.3 guarantees every
// computation satisfies the specification.
func (p *Program) InStartState() bool {
	for j := 0; j < p.n; j++ {
		if p.cp[j] != core.Ready || p.ph[j] != p.ph[0] {
			return false
		}
	}
	return true
}

// Snapshot returns copies of the cp and ph vectors.
func (p *Program) Snapshot() ([]core.CP, []int) {
	return append([]core.CP(nil), p.cp...), append([]int(nil), p.ph...)
}

// String renders the global state compactly, e.g. "[r0 e0 s1]".
func (p *Program) String() string {
	s := "["
	for j := 0; j < p.n; j++ {
		if j > 0 {
			s += " "
		}
		s += fmt.Sprintf("%c%d", p.cp[j].Letter(), p.ph[j])
	}
	return s + "]"
}

// Corrupted reports whether process j is in a detectably corrupted state.
func (p *Program) Corrupted(j int) bool { return p.cp[j] == core.Error }

// SetSink replaces the event sink (used by harnesses that attach metrics
// or checkers after construction).
func (p *Program) SetSink(sink EventSink) { p.sink = sink }

// SetState overwrites process j's state. It exists for exhaustive
// state-space exploration in tests (model checking); protocol and fault
// actions never use it.
func (p *Program) SetState(j int, cp core.CP, ph int) {
	p.cp[j] = cp
	p.ph[j] = ph
}
