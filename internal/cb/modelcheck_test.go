package cb

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// Exhaustive model checking of program CB on small instances. Unlike the
// distributed programs, CB's actions make nondeterministic choices ("any
// k", "an arbitrary number"), so the transition relation is reconstructed
// here with ALL choices enumerated — and, as a conformance check, every
// transition the implementation takes (with its random resolution) must be
// one of the model's transitions.
//
// Over the FULL state space (every (cp, ph) vector, i.e. any state
// undetectable faults can produce), we verify:
//
//  1. no deadlock;
//  2. stabilization (Lemma 3.3): from every state a start state is
//     reachable;
//  3. Safety structure of the fault-free-reachable set: phases span at most
//     two cyclically adjacent values, and all processes in execute share
//     one phase — also with detectable-fault transitions added, restricted
//     to non-corrupting-everyone per footnote 2 (Lemma 3.2's masking).
func TestModelCheckCB(t *testing.T) {
	const n, nPhases = 3, 3
	cpDomain := 4 // CB uses ready, execute, success, error (no repeat)
	perProc := cpDomain * nPhases
	total := 1
	for j := 0; j < n; j++ {
		total *= perProc
	}

	type state struct {
		cp [n]core.CP
		ph [n]int
	}
	encode := func(s state) int {
		code := 0
		for j := 0; j < n; j++ {
			code = code*perProc + int(s.cp[j])*nPhases + s.ph[j]
		}
		return code
	}
	decode := func(code int) state {
		var s state
		for j := n - 1; j >= 0; j-- {
			pj := code % perProc
			code /= perProc
			s.ph[j] = pj % nPhases
			s.cp[j] = core.CP(pj / nPhases)
		}
		return s
	}

	all := func(s state, c core.CP) bool {
		for j := 0; j < n; j++ {
			if s.cp[j] != c {
				return false
			}
		}
		return true
	}
	exists := func(s state, c core.CP) bool {
		for j := 0; j < n; j++ {
			if s.cp[j] == c {
				return true
			}
		}
		return false
	}
	phasesWith := func(s state, c core.CP) []int {
		seen := map[int]bool{}
		var phs []int
		for j := 0; j < n; j++ {
			if s.cp[j] == c && !seen[s.ph[j]] {
				seen[s.ph[j]] = true
				phs = append(phs, s.ph[j])
			}
		}
		return phs
	}

	// successors enumerates every CB transition from s, resolving all
	// nondeterministic choices.
	successors := func(s state) []state {
		var succ []state
		for j := 0; j < n; j++ {
			switch s.cp[j] {
			case core.Ready: // CB1
				if all(s, core.Ready) || exists(s, core.Execute) {
					ns := s
					ns.cp[j] = core.Execute
					succ = append(succ, ns)
				}
			case core.Execute: // CB2
				if !exists(s, core.Ready) || exists(s, core.Success) {
					ns := s
					ns.cp[j] = core.Success
					succ = append(succ, ns)
				}
			case core.Success: // CB3
				if !exists(s, core.Execute) {
					if phs := phasesWith(s, core.Ready); len(phs) > 0 {
						for _, ph := range phs {
							ns := s
							ns.cp[j] = core.Ready
							ns.ph[j] = ph
							succ = append(succ, ns)
						}
					} else if all(s, core.Success) {
						ns := s
						ns.cp[j] = core.Ready
						ns.ph[j] = core.NextPhase(s.ph[j], nPhases)
						succ = append(succ, ns)
					} else {
						ns := s
						ns.cp[j] = core.Ready
						succ = append(succ, ns)
					}
				}
			case core.Error: // CB4
				if !exists(s, core.Execute) {
					if phs := phasesWith(s, core.Ready); len(phs) > 0 {
						for _, ph := range phs {
							ns := s
							ns.cp[j] = core.Ready
							ns.ph[j] = ph
							succ = append(succ, ns)
						}
					} else if phs := phasesWith(s, core.Success); len(phs) > 0 {
						for _, ph := range phs {
							ns := s
							ns.cp[j] = core.Ready
							ns.ph[j] = ph
							succ = append(succ, ns)
						}
					} else {
						for ph := 0; ph < nPhases; ph++ {
							ns := s
							ns.cp[j] = core.Ready
							ns.ph[j] = ph
							succ = append(succ, ns)
						}
					}
				}
			}
		}
		return succ
	}

	isStart := func(s state) bool {
		for j := 0; j < n; j++ {
			if s.cp[j] != core.Ready || s.ph[j] != s.ph[0] {
				return false
			}
		}
		return true
	}

	// (1) + successor map.
	succs := make([][]int32, total)
	for code := 0; code < total; code++ {
		s := decode(code)
		ss := successors(s)
		if len(ss) == 0 {
			t.Fatalf("deadlock in state %+v", s)
		}
		arr := make([]int32, len(ss))
		for i, ns := range ss {
			arr[i] = int32(encode(ns))
		}
		succs[code] = arr
	}

	// (2) Backward reachability from start states covers everything.
	pred := make([][]int32, total)
	for code := 0; code < total; code++ {
		for _, nxt := range succs[code] {
			pred[nxt] = append(pred[nxt], int32(code))
		}
	}
	canReach := make([]bool, total)
	var queue []int32
	for code := 0; code < total; code++ {
		if isStart(decode(code)) {
			canReach[code] = true
			queue = append(queue, int32(code))
		}
	}
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range pred[cur] {
			if !canReach[p] {
				canReach[p] = true
				queue = append(queue, p)
			}
		}
	}
	for code := 0; code < total; code++ {
		if !canReach[code] {
			t.Fatalf("state %+v cannot reach a start state (Lemma 3.3 violated)", decode(code))
		}
	}

	// (3) Forward closure from start states under protocol + detectable
	// faults that keep at least one process uncorrupted (footnote 2);
	// structural safety invariants must hold throughout, and every state
	// must still be able to recover.
	visited := make([]bool, total)
	queue = queue[:0]
	for code := 0; code < total; code++ {
		if isStart(decode(code)) {
			visited[code] = true
			queue = append(queue, int32(code))
		}
	}
	checked := 0
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		s := decode(int(cur))
		checked++

		// Invariants of the detectable-fault-reachable set.
		if !canReach[cur] {
			t.Fatalf("reachable state %+v cannot recover", s)
		}
		if phs := phasesWith(s, core.Execute); len(phs) > 1 {
			t.Fatalf("state %+v has executing processes in two phases", s)
		}
		// Phases of non-corrupted processes span ≤ 2 adjacent values.
		span := map[int]bool{}
		for j := 0; j < n; j++ {
			if s.cp[j] != core.Error {
				span[s.ph[j]] = true
			}
		}
		if len(span) > 2 {
			t.Fatalf("state %+v has non-corrupted phases %v (span > 2)", s, span)
		}
		if len(span) == 2 {
			var a, b int
			first := true
			for ph := range span {
				if first {
					a, first = ph, false
				} else {
					b = ph
				}
			}
			if core.NextPhase(a, nPhases) != b && core.NextPhase(b, nPhases) != a {
				t.Fatalf("state %+v has non-adjacent phases %d and %d", s, a, b)
			}
		}

		next := append([]int32(nil), succs[cur]...)
		// Detectable faults: any process, any resulting phase, as long as
		// some other process stays uncorrupted.
		for j := 0; j < n; j++ {
			othersAlive := false
			for k := 0; k < n; k++ {
				if k != j && s.cp[k] != core.Error {
					othersAlive = true
				}
			}
			if !othersAlive {
				continue
			}
			for ph := 0; ph < nPhases; ph++ {
				ns := s
				ns.cp[j] = core.Error
				ns.ph[j] = ph
				next = append(next, int32(encode(ns)))
			}
		}
		for _, nxt := range next {
			if !visited[nxt] {
				visited[nxt] = true
				queue = append(queue, nxt)
			}
		}
	}
	t.Logf("verified %d detectable-fault-reachable states of %d total", checked, total)

	// Conformance: the implementation's transitions (with random choice
	// resolution) are always among the model's transitions.
	rng := rand.New(rand.NewSource(99))
	impl, err := New(n, nPhases, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20000; trial++ {
		code := rng.Intn(total)
		s := decode(code)
		for j := 0; j < n; j++ {
			impl.SetState(j, s.cp[j], s.ph[j])
		}
		if _, ok := impl.Guarded().StepRandom(rng); !ok {
			t.Fatalf("implementation deadlocked in %+v where the model does not", s)
		}
		cps, phs := impl.Snapshot()
		var ns state
		copy(ns.cp[:], cps)
		copy(ns.ph[:], phs)
		got := encode(ns)
		found := false
		for _, m := range succs[code] {
			if int(m) == got {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("implementation stepped %+v → %+v, not a model transition", s, ns)
		}
	}
}
