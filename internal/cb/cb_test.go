package cb

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(1, 2, rng, nil); err == nil {
		t.Error("single process should be rejected")
	}
	if _, err := New(3, 1, rng, nil); err == nil {
		t.Error("single phase should be rejected by New (use NewSinglePhase)")
	}
	if _, err := New(3, 2, nil, nil); err == nil {
		t.Error("nil rng should be rejected")
	}
	if _, err := NewSinglePhase(3, rng, nil); err != nil {
		t.Errorf("NewSinglePhase: %v", err)
	}
}

// Lemma 3.1: in the absence of faults CB satisfies the barrier
// specification, under every scheduler.
func TestFaultFreeBarriers(t *testing.T) {
	type stepper func(p *Program, rng *rand.Rand) bool
	steppers := map[string]stepper{
		"roundRobin": func(p *Program, _ *rand.Rand) bool {
			_, ok := p.Guarded().StepRoundRobin()
			return ok
		},
		"random": func(p *Program, rng *rand.Rand) bool {
			_, ok := p.Guarded().StepRandom(rng)
			return ok
		},
		"maxParallel": func(p *Program, rng *rand.Rand) bool {
			return p.Guarded().StepMaxParallel(rng) > 0
		},
	}
	for name, step := range steppers {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			const n, nPhases, wantBarriers = 5, 3, 20
			checker := core.NewSpecChecker(n, nPhases)
			p, err := New(n, nPhases, rng, checker.Observe)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100000 && checker.SuccessfulBarriers() < wantBarriers; i++ {
				if !step(p, rng) {
					t.Fatalf("deadlock in state %v", p)
				}
			}
			if err := checker.Violation(); err != nil {
				t.Fatal(err)
			}
			if got := checker.SuccessfulBarriers(); got < wantBarriers {
				t.Fatalf("only %d successful barriers", got)
			}
			// In the absence of faults every instance is successful: any
			// reasonable implementation executes each phase exactly once.
			if checker.Instances() != checker.SuccessfulBarriers() &&
				checker.Instances() != checker.SuccessfulBarriers()+1 {
				t.Errorf("instances=%d successes=%d: fault-free run re-executed phases",
					checker.Instances(), checker.SuccessfulBarriers())
			}
		})
	}
}

// Lemma 3.2: CB is masking tolerant to detectable faults — Safety holds
// throughout and Progress resumes between faults.
func TestDetectableFaultsMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		nPhases := 2 + rng.Intn(3)
		checker := core.NewSpecChecker(n, nPhases)
		p, err := New(n, nPhases, rng, checker.Observe)
		if err != nil {
			t.Fatal(err)
		}
		// Interleave protocol steps with detectable faults. Footnote 2 of
		// the paper: a fault that detectably corrupts *all* processes is
		// classified as undetectable (the current phase becomes
		// inaccessible), so the detectable-fault model keeps at least one
		// process uncorrupted at all times.
		for i := 0; i < 3000; i++ {
			if rng.Intn(40) == 0 {
				j := rng.Intn(n)
				othersAlive := false
				for k := 0; k < n; k++ {
					if k != j && p.CP(k) != core.Error {
						othersAlive = true
					}
				}
				if othersAlive {
					p.InjectDetectable(j)
				}
			}
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock in state %v", trial, p)
			}
			if err := checker.Violation(); err != nil {
				t.Fatalf("trial %d: safety violated with detectable faults: %v (state %v)",
					trial, err, p)
			}
		}
		// Faults stop; progress must resume.
		before := checker.SuccessfulBarriers()
		for i := 0; i < 20000 && checker.SuccessfulBarriers() < before+3; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock after faults stopped: %v", trial, p)
			}
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if checker.SuccessfulBarriers() < before+3 {
			t.Fatalf("trial %d: no progress after faults stopped (state %v, %d barriers)",
				trial, p, checker.SuccessfulBarriers())
		}
	}
}

// Lemma 3.3: CB is stabilizing tolerant to undetectable faults — from an
// arbitrary state it reaches a start state, after which the specification
// is satisfied.
func TestUndetectableFaultsStabilize(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		nPhases := 2 + rng.Intn(4)
		p, err := New(n, nPhases, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			p.InjectUndetectable(j)
		}
		reached := false
		for i := 0; i < 5000; i++ {
			if p.InStartState() {
				reached = true
				break
			}
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock in state %v", trial, p)
			}
		}
		if !reached {
			t.Fatalf("trial %d: no start state reached from %v", trial, p)
		}
		// From the start state, the specification holds.
		checker := core.NewSpecCheckerAt(n, nPhases, p.Phase(0))
		p.sink = checker.Observe
		for i := 0; i < 20000 && checker.SuccessfulBarriers() < 3; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock after stabilization", trial)
			}
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("trial %d: spec violated after stabilization: %v", trial, err)
		}
		if checker.SuccessfulBarriers() < 3 {
			t.Fatalf("trial %d: no progress after stabilization", trial)
		}
	}
}

// Lemma 3.4: if undetectable faults perturb processes into m distinct
// phases, at most m phases execute incorrectly before correct execution
// resumes. We verify the stronger observable consequence: once a process
// increments into a fresh phase via CB3 (all processes in success), that
// phase executes correctly — so the number of incorrectly executed phases
// is bounded by the number of distinct phases in the perturbed state.
func TestBoundedDamageAfterUndetectableFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(4)
		const nPhases = 8
		p, err := New(n, nPhases, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			p.InjectUndetectable(j)
		}
		distinct := map[int]bool{}
		for j := 0; j < n; j++ {
			distinct[p.Phase(j)] = true
		}
		m := len(distinct)

		// Count phases whose execution (begin..all-complete cycle) could
		// have been incorrect before the first start state: they can only
		// be among the phases present at perturbation time, so at most m.
		seen := map[int]bool{}
		sink := func(e core.Event) {
			if e.Kind == core.EvBegin {
				seen[e.Phase] = true
			}
		}
		p.sink = sink
		for i := 0; i < 5000 && !p.InStartState(); i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock", trial)
			}
		}
		if !p.InStartState() {
			t.Fatalf("trial %d: did not stabilize", trial)
		}
		// Phases begun before stabilization must be among the perturbed
		// phases (no *new* phase gets damaged), giving the ≤ m bound.
		for ph := range seen {
			if !distinct[ph] {
				t.Fatalf("trial %d: phase %d executed during recovery but was not "+
					"among the %d perturbed phases %v", trial, ph, m, distinct)
			}
		}
	}
}

// The transition structure of Figure 1: control positions only move along
// the edges ready→execute→success→ready, error→ready (and faults → error).
func TestFigure1Transitions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, nPhases = 4, 3
	p, err := New(n, nPhases, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	legal := map[core.CP][]core.CP{
		core.Ready:   {core.Ready, core.Execute},
		core.Execute: {core.Execute, core.Success},
		core.Success: {core.Success, core.Ready},
		core.Error:   {core.Error, core.Ready},
	}
	prev, _ := p.Snapshot()
	for i := 0; i < 5000; i++ {
		if rng.Intn(100) == 0 {
			p.InjectDetectable(rng.Intn(n))
			prev, _ = p.Snapshot()
			continue
		}
		if _, ok := p.Guarded().StepRandom(rng); !ok {
			t.Fatal("deadlock")
		}
		cur, _ := p.Snapshot()
		for j := 0; j < n; j++ {
			ok := false
			for _, c := range legal[prev[j]] {
				if cur[j] == c {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("illegal transition %v → %v at process %d", prev[j], cur[j], j)
			}
		}
		prev = cur
	}
}

// Under detectable faults, phases are never skipped: the begun phase only
// repeats or advances by exactly 1 (mod n) across the run.
func TestPhaseMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n, nPhases = 3, 5
	checker := core.NewSpecChecker(n, nPhases)
	p, err := New(n, nPhases, rng, checker.Observe)
	if err != nil {
		t.Fatal(err)
	}
	lastBegun := -1
	for i := 0; i < 20000; i++ {
		if rng.Intn(60) == 0 {
			j := rng.Intn(n)
			othersAlive := false
			for k := 0; k < n; k++ {
				if k != j && p.CP(k) != core.Error {
					othersAlive = true
				}
			}
			if othersAlive {
				p.InjectDetectable(j)
			}
		}
		if _, ok := p.Guarded().StepRandom(rng); !ok {
			t.Fatal("deadlock")
		}
		cur, begun := checker.CurrentPhase()
		if begun {
			if lastBegun >= 0 && cur != lastBegun && cur != core.NextPhase(lastBegun, nPhases) {
				t.Fatalf("phase jumped from %d to %d", lastBegun, cur)
			}
			lastBegun = cur
		}
	}
	if err := checker.Violation(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotAndString(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, _ := New(3, 2, rng, nil)
	cp, ph := p.Snapshot()
	if len(cp) != 3 || len(ph) != 3 {
		t.Fatal("snapshot sizes wrong")
	}
	if p.String() != "[r0 r0 r0]" {
		t.Errorf("start state rendering = %q", p.String())
	}
	if p.N() != 3 || p.NumPhases() != 2 {
		t.Error("accessors wrong")
	}
	if p.CP(0) != core.Ready || p.Phase(0) != 0 {
		t.Error("initial state wrong")
	}
}
