// Package runtime is a working fault-tolerant barrier for Go programs: a
// message-passing implementation of program MB (Section 5 of the paper)
// in which every protocol process is a goroutine and every ring link is a
// channel. It is the library a systems programmer would embed — the
// paper's "third alternative" to MPI's abort-or-error-code fault handling.
//
// Each participant goroutine calls Await after finishing its phase work.
// Await returns when the barrier has been passed and the next phase may
// begin. The tolerance guarantees follow the paper:
//
//   - Detectable faults (message loss, duplication, detected corruption,
//     process reset/restart) are masked: every barrier is executed
//     correctly. A reset that voids a participant's in-flight phase work
//     surfaces as ErrReset (redo the phase); a reset that only destroys
//     protocol state is recovered transparently by re-executing the
//     barrier instance with the participant's completed work standing.
//   - Undetectable faults (state scrambling) are stabilized: after faults
//     stop, the barrier eventually behaves correctly again.
//   - Uncorrectable faults (permanent halt) are handled fail-safe when
//     configured (Table 1): the barrier never reports a completion
//     incorrectly — outstanding and future Awaits return ErrHalted.
//
// The protocol state per process is exactly MB's: own (sn, cp, ph), local
// copies (snL, cpL, phL) of the predecessor's variables, and a local copy
// snR of the successor's sequence number for the whole-ring-corruption
// restart wave. Messages carry the sender's (sn, cp, ph); channels are
// FIFO, and the periodic retransmission of the current state makes loss,
// duplication and detected corruption equivalent to delay.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/prng"
	"repro/internal/tokenring"
)

// Errors returned by Await.
var (
	// ErrReset reports that the participant's process was reset by a
	// detectable fault while its current phase work was still needed: the
	// work is void and must be redone before the next Await.
	ErrReset = errors.New("ftbarrier: process was reset; redo the current phase")
	// ErrHalted reports that the barrier has entered fail-safe mode after
	// an uncorrectable fault: no completion will ever be reported again.
	ErrHalted = errors.New("ftbarrier: barrier halted fail-safe after an uncorrectable fault")
	// ErrStopped reports that the barrier was shut down.
	ErrStopped = errors.New("ftbarrier: barrier stopped")
)

// Topology selects the communication structure of the runtime protocol.
type Topology int

const (
	// TopologyRing is the MB ring of Section 5 (the default): one token
	// circulates, a pass costs O(N) sequential hops.
	TopologyRing Topology = iota
	// TopologyTree is the double-tree refinement of Figure 2(d): waves
	// disseminate down a tree and a convergecast detects completion back
	// up it, so a pass costs O(h) = O(log N) sequential hops.
	TopologyTree
	// TopologyHybrid is the two-level hierarchy: members co-located on
	// one host (Config.Hosts) fuse onto a single local scheduler that
	// presents as one node in a cross-host tree, so network hops cost
	// O(log #hosts) and local siblings exchange no network traffic at
	// all. With a nil Transport every host is local and the whole
	// member tree runs fused in-process; with a TreeTransport over the
	// host indices, each OS process runs one host's members fused and
	// only host-root edges cross the network.
	TopologyHybrid
)

// Config parameterizes a Barrier.
type Config struct {
	// Participants is the number of synchronizing goroutines (≥ 2).
	Participants int
	// Topology selects the protocol's communication structure: the MB
	// ring (default) or the Figure 2(d) double tree. Both provide the
	// same guarantees (masking for detectable faults, stabilization for
	// undetectable ones, fail-safe Halt); the tree trades O(N) for
	// O(log N) sequential hops per pass.
	Topology Topology
	// TreeArity is the branching factor of the TopologyTree tree
	// (default 2; heap-shaped, node i's parent is (i-1)/TreeArity).
	// For TopologyHybrid it is the branching factor of the cross-host
	// tree. Ignored for TopologyRing.
	TreeArity int
	// Hosts groups the participants by host for TopologyHybrid: Hosts[h]
	// lists the member ids co-located on host h. Every participant must
	// appear in exactly one host. Required for (and only used by)
	// TopologyHybrid.
	Hosts [][]int
	// Depth is the wave-pipelining window: up to Depth barrier instances
	// may be outstanding per participant (default 1 — no pipelining).
	// The sequence-number superposition already legalizes K > N
	// coexisting instances, so the lanes of the window are Depth
	// independent protocol instances and Await becomes a windowed ticket
	// pipeline: Enter tops the window up to Depth outstanding arrivals,
	// Leave reaps the oldest. With Depth > 1 the phase returned by
	// Await/Leave is the wave index modulo NPhases (a synthesized
	// counter — the per-lane protocol phases interleave). Depth > 1
	// with an explicit Transport requires LaneTransports instead.
	Depth int
	// LaneTransports supplies one Transport per pipeline lane when
	// Depth > 1 spans processes (e.g. one mux group view per lane, so
	// frames of all in-flight instances coalesce into single writes on
	// the shared connections). len(LaneTransports) must equal Depth and
	// Transport must be nil. Like Transport, the links each lane opens
	// are closed on Stop but the transports themselves belong to the
	// caller.
	LaneTransports []Transport
	// Transport supplies the ring links (nil: the in-process channel
	// transport). A network transport (internal/transport) lets the ring
	// span OS processes; the Barrier closes the links it opens on Stop,
	// but an explicitly supplied Transport is closed by its creator.
	// With Topology == TopologyTree the transport must additionally
	// implement TreeTransport (NewChanTreeTransport, transport.NewTCPTree).
	Transport Transport
	// Members lists the ring members hosted by this process (nil: all of
	// them). A distributed deployment runs one process per member over a
	// network transport; Await and the fault-injection methods accept only
	// local member ids. Members requires an explicit Transport.
	Members []int
	// Rejoin starts the local members in the detectably-reset state (sn ⊥,
	// cp error) instead of the phase-0 start state — the Section 7 restart
	// semantics. Use it when a member process is restarted into a ring
	// that is already running, so the rejoin is masked like any other
	// detectable fault rather than perturbing the ring with a stale
	// phase-0 state.
	Rejoin bool
	// NPhases is the phase-counter modulus (default 8; any value ≥ 2).
	NPhases int
	// L is the sequence-number modulus; the MB refinement requires
	// L > 2N+1. Default 2*Participants + 2.
	L int
	// Resend is the retransmission period that masks message loss
	// (default 200µs).
	Resend time.Duration
	// LossRate drops each protocol message with this probability — a
	// built-in detectable communication fault for tests and demos.
	LossRate float64
	// CorruptRate garbles each protocol message with this probability. A
	// garbled message fails its integrity check at the receiver and is
	// dropped — detectable corruption is equivalent to loss (the paper's
	// classification), and retransmission masks it.
	CorruptRate float64
	// Seed drives the protocol's internal randomness (loss, resets).
	Seed int64
	// EventSink, if non-nil, receives the barrier-specification events of
	// the run (serialized). Intended for tests.
	EventSink core.EventSink
	// Metrics, if non-nil, receives the barrier's metric series
	// (passes, re-executed instances per pass, per-phase latency,
	// recovery time after a fault — the live Section 6 quantities).
	// The internal recording runs either way and is allocation-free;
	// the registry only adds scrape-time visibility. Two barriers must
	// not share one registry (their series names would collide),
	// unless MetricLabel disambiguates them.
	Metrics *obsv.Registry
	// MetricLabel, if non-empty, is a literal label pair (`group="g00"`)
	// merged into every metric series name this barrier exports. It lets
	// many barriers — one per tenant group — share a single registry with
	// per-group series. Empty keeps the historical unlabelled names.
	MetricLabel string
}

type ctrlKind uint8

const (
	ctrlArrive ctrlKind = iota
	ctrlReset
	ctrlScramble
	// ctrlTick is the resend sweeper poking a ring proc whose edge was
	// quiet for a full resend period: retransmit the current state.
	ctrlTick
	// ctrlCrash/ctrlRestart are the crash fault class: a crashed member
	// stops participating (no sends, receives or steps) until Restart
	// revives it in the Section 7 detectably-reset state.
	ctrlCrash
	ctrlRestart
	// ctrlByz* deliver a Byzantine adversary's forgery to the victim's
	// protocol goroutine, which crafts the frame from its own current
	// view (the strongest forgery an adversary on that edge can build)
	// and feeds it through the genuine receive path — so the validation
	// windows see exactly what a wire-level forger could send.
	ctrlByzState // forged ring state announcement
	ctrlByzTop   // forged ring ⊤ marker
	ctrlByzDown  // forged tree parent announcement
	ctrlByzUp    // forged tree convergecast frame
)

type ctrlMsg struct {
	id     int // target member (used by shared control channels)
	from   int // claimed sender (Byzantine adversary injections)
	kind   ctrlKind
	seed   int64
	ticket uint64
}

// closer is the teardown half shared by ring and tree links/transports.
type closer interface{ Close() error }

// lane is one full protocol instance of the barrier. A Depth=1 barrier
// has exactly one; wave pipelining runs Depth independent lanes and wave
// k executes on lane k%Depth, so up to Depth instances are in flight —
// legal because the sequence-number superposition already tolerates
// K > N coexisting instances (the lanes are disjoint instances of it).
type lane struct {
	// procs is indexed by member id; entries for members hosted by other
	// processes (distributed deployments) — or running the tree protocol —
	// are nil.
	procs []*proc
	// tprocs is the tree-topology counterpart of procs.
	tprocs []*treeProc
	// gates is the topology-independent participant interface, indexed by
	// member id (nil for members hosted elsewhere).
	gates []*gate
	// links are the transport links this lane opened, closed on Stop.
	links []closer
	// ownTransport is the internally created default transport, if any;
	// Stop closes it too.
	ownTransport closer
}

// window is one participant's pipeline window: waves [rcur, pcur) are
// outstanding (entered, not yet reaped), with pcur-rcur ≤ Depth. rcur
// and pcur are owned by the participant goroutine; rmirror mirrors rcur
// for the fault-injection paths, which run on other goroutines and need
// the participant's current (primary) lane.
type window struct {
	rcur, pcur uint64
	rmirror    atomic.Uint64
}

// Barrier is a fault-tolerant barrier over a ring or tree of protocol
// goroutines.
type Barrier struct {
	n       int
	nPhases int
	l       int
	depth   int

	// lanes holds the Depth protocol instances (one for Depth=1).
	lanes []*lane
	// windows is the per-participant pipeline window, indexed by member
	// id (meaningful only for locally hosted members).
	windows []window

	haltOnce  sync.Once
	halted    chan struct{}
	stopOnce  sync.Once
	stopped   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	sinkMu sync.Mutex
	sink   core.EventSink

	// Statistics (atomic). statPasses and statResets double as the
	// snapshot version for Stats(): they are bumped exactly at the
	// participant-visible commit points (pass delivered, reset
	// delivered), so a Stats() read that observes them unchanged
	// across the whole snapshot saw no commit mid-read.
	statPasses       atomic.Int64 // barrier passes delivered to participants
	statResets       atomic.Int64 // ErrReset results delivered
	statSends        atomic.Int64 // protocol messages sent
	statDrops        atomic.Int64 // messages lost or detected-corrupt-dropped
	statSpurious     atomic.Int64 // injected spurious messages
	statInjDropped   atomic.Int64 // fault injections discarded (ctrl buffer full)
	statInjResets    atomic.Int64 // Reset injections accepted for delivery
	statInjScrambles atomic.Int64 // Scramble injections accepted for delivery
	statInjCrashes   atomic.Int64 // Crash injections accepted for delivery
	statInjRestarts  atomic.Int64 // Restart injections accepted for delivery
	statInjByz       atomic.Int64 // Byzantine forgeries accepted for delivery
	statWasted       atomic.Int64 // re-executed (wasted) protocol instances

	// Frame rejections by the sequence-and-sender validation windows
	// (see validate.go), exported as barrier_rejected_frames_total{reason}.
	statRejSeq    atomic.Int64 // sequence number outside the legal window
	statRejPhase  atomic.Int64 // phase outside the legal window
	statRejTop    atomic.Int64 // ⊤ marker at a settled receiver
	statRejSender atomic.Int64 // frame from a sender that does not exist on the edge

	// Live-measurement histograms (the Section 6 quantities). Always
	// allocated — Observe is lock- and allocation-free — and exported
	// when Config.Metrics is set.
	mInstances *obsv.Histogram // protocol instances consumed per pass (Fig 3/5)
	mPhase     *obsv.Histogram // pass-to-pass latency, sampled 1-in-8 (Fig 4/6 overhead)
	mRecovery  *obsv.Histogram // fault-injection to next-pass latency (Fig 7)

	// Registry bookkeeping so a bounded-lifetime barrier (a tenant group
	// that may be torn down and recreated) can remove its series again.
	metricsReg  *obsv.Registry
	metricNames []string
}

// gate is the participant-facing half of a protocol process, shared by the
// ring and tree topologies: the work gate (has the participant arrived at
// the barrier?), the outstanding-Await bookkeeping, and the wake channel.
// Only the owning protocol goroutine touches the mutable fields; the
// participant goroutine interacts through ctrl/wake/tickets.
type gate struct {
	b  *Barrier
	id int

	arrived    bool   // an unconsumed participant arrival (the work gate)
	appWaiting bool   // an Await is outstanding
	curTicket  uint64 // ticket of the outstanding Await
	lastDonePh int    // phase of the last completion that consumed an arrival
	pendingErr error  // delivered on the next Await (e.g. ErrReset)

	// Live-measurement bookkeeping, owned by the protocol goroutine
	// like the fields above. beginsSince counts protocol instance
	// begins since the last delivered pass — fault-free it is exactly 1
	// at delivery time, and every extra count is a re-executed instance
	// (Fig 3/5). passSeq drives 1-in-8 sampling of the pass-to-pass
	// latency so the hot path pays for time.Now only on sampled passes.
	// faultAtNs is the wall-clock of the last injected reset/scramble,
	// cleared when the next pass observes the recovery time (Fig 7).
	beginsSince   int64
	passSeq       uint64
	sampleStartNs int64
	faultAtNs     int64

	ctrl chan ctrlMsg
	// signal to a waiting Await: the phase that just began, or an error.
	wake chan awaitResult
	// Await ticket source and the entered flag (is an arrival
	// registered whose pass has not been collected yet?) — accessed
	// only by the participant goroutine.
	tickets uint64
	entered bool
}

func newGate(b *Barrier, id int) *gate {
	return &gate{
		b:          b,
		id:         id,
		lastDonePh: -1,
		ctrl:       make(chan ctrlMsg, b.n+4),
		wake:       make(chan awaitResult, 1),
	}
}

// proc is one MB process: a goroutine owning its protocol state.
type proc struct {
	*gate

	// Protocol state (MB, Section 5).
	sn, snL, snR tokenring.SN
	cp, cpL      core.CP
	ph, phL      int

	link  Link
	state <-chan Message // predecessor's state announcements, via the link
	top   <-chan struct{}

	// crashed marks the crash fault class: the process is down — it
	// neither receives, steps nor announces — until ctrlRestart revives it.
	crashed bool

	// pending holds the last frame rejected by the validation window, for
	// the two-sighting confirmation (validate.go): a bit-identical second
	// sighting is adopted, so stabilization survives genuine out-of-window
	// neighbor states while a single forgery never advances the phase.
	pending     Message
	havePending bool

	lastSent Message
	haveSent bool
	// sentSinceTick records that a send happened since the last resend
	// sweep. The proc stores true on every send; the barrier's sweeper
	// goroutine clears it (CAS true→false) each period and pokes only
	// procs whose flag was already false — a quiet edge that may be
	// masking a lost message. Hot procs are never woken by the timer.
	sentSinceTick atomic.Bool

	// rng is owned by the protocol goroutine (seeded before it starts;
	// the goroutine-start happens-before edge publishes it).
	rng prng.PRNG
}

type awaitResult struct {
	phase  int
	err    error
	ticket uint64
}

// New creates and starts a Barrier.
func New(cfg Config) (*Barrier, error) {
	if cfg.Participants < 2 {
		return nil, errors.New("ftbarrier: need at least 2 participants")
	}
	if cfg.NPhases == 0 {
		cfg.NPhases = 8
	}
	if cfg.NPhases < 2 {
		return nil, errors.New("ftbarrier: need at least 2 phases")
	}
	if cfg.L == 0 {
		cfg.L = 2*cfg.Participants + 2
	}
	if cfg.L < 2*cfg.Participants {
		return nil, fmt.Errorf("ftbarrier: need L > 2N+1, got L=%d with N=%d",
			cfg.L, cfg.Participants-1)
	}
	if cfg.Resend == 0 {
		cfg.Resend = 200 * time.Microsecond
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, errors.New("ftbarrier: loss rate must be in [0, 1)")
	}
	if cfg.CorruptRate < 0 || cfg.CorruptRate >= 1 {
		return nil, errors.New("ftbarrier: corrupt rate must be in [0, 1)")
	}
	if cfg.Depth == 0 {
		cfg.Depth = 1
	}
	if cfg.Depth < 1 {
		return nil, errors.New("ftbarrier: Depth must be >= 1")
	}
	if cfg.LaneTransports != nil {
		if cfg.Transport != nil {
			return nil, errors.New("ftbarrier: Transport and LaneTransports are mutually exclusive")
		}
		if len(cfg.LaneTransports) != cfg.Depth {
			return nil, fmt.Errorf("ftbarrier: need one lane transport per pipeline lane: len(LaneTransports)=%d, Depth=%d",
				len(cfg.LaneTransports), cfg.Depth)
		}
	} else if cfg.Transport != nil && cfg.Depth > 1 {
		return nil, errors.New("ftbarrier: Depth > 1 over an explicit Transport requires LaneTransports (one per lane)")
	}
	if cfg.Members != nil && cfg.Transport == nil && cfg.LaneTransports == nil {
		return nil, errors.New("ftbarrier: Members requires an explicit Transport")
	}
	if cfg.Topology == TopologyHybrid && cfg.Hosts == nil {
		return nil, errors.New("ftbarrier: Topology == TopologyHybrid requires Hosts (the host grouping)")
	}
	if cfg.Topology != TopologyHybrid && cfg.Hosts != nil {
		return nil, errors.New("ftbarrier: Hosts is only meaningful with Topology == TopologyHybrid")
	}
	members := cfg.Members
	if members == nil {
		members = make([]int, cfg.Participants)
		for j := range members {
			members[j] = j
		}
	}
	seen := make(map[int]bool, len(members))
	for _, j := range members {
		if j < 0 || j >= cfg.Participants {
			return nil, fmt.Errorf("ftbarrier: member %d out of range [0,%d)", j, cfg.Participants)
		}
		if seen[j] {
			return nil, fmt.Errorf("ftbarrier: duplicate member %d", j)
		}
		seen[j] = true
	}

	b := &Barrier{
		n:       cfg.Participants,
		nPhases: cfg.NPhases,
		l:       cfg.L,
		depth:   cfg.Depth,
		halted:  make(chan struct{}),
		stopped: make(chan struct{}),
		sink:    cfg.EventSink,
	}
	b.newHistograms(cfg.MetricLabel)
	if cfg.Metrics != nil {
		// Register before the protocol goroutines start, so a name
		// collision (two barriers on one registry) fails cleanly.
		if err := b.registerMetrics(cfg.Metrics, cfg.Topology, cfg.MetricLabel); err != nil {
			return nil, err
		}
	}
	b.windows = make([]window, b.n)
	b.lanes = make([]*lane, b.depth)
	for li := range b.lanes {
		b.lanes[li] = &lane{
			procs:  make([]*proc, b.n),
			tprocs: make([]*treeProc, b.n),
			gates:  make([]*gate, b.n),
		}
	}
	var err error
	for li, ln := range b.lanes {
		laneCfg := cfg
		if li > 0 {
			// Decorrelate the lanes' loss/corruption/reset draws; lane 0
			// keeps the configured seed exactly, so a Depth=1 barrier is
			// bit-for-bit the pre-pipelining one (the conformance harness
			// replays recorded schedules against that).
			laneCfg.Seed = cfg.Seed + int64(li)*104729
		}
		if cfg.LaneTransports != nil {
			laneCfg.Transport = cfg.LaneTransports[li]
		}
		switch cfg.Topology {
		case TopologyTree:
			err = b.startTree(laneCfg, members, ln)
		case TopologyHybrid:
			err = b.startHybrid(laneCfg, members, ln)
		default:
			err = b.startRing(laneCfg, members, ln)
		}
		if err != nil {
			break
		}
	}
	if err != nil {
		// Earlier lanes may already be running: quiesce them before
		// closing the links out from under their goroutines.
		b.stopOnce.Do(func() { close(b.stopped) })
		b.wg.Wait()
		for _, ln := range b.lanes {
			for _, l := range ln.links {
				l.Close()
			}
			if ln.ownTransport != nil {
				ln.ownTransport.Close()
			}
		}
		b.UnregisterMetrics()
		return nil, err
	}
	// One retransmission sweeper serves every ring proc in every lane:
	// a single timer wakes once per resend period and pokes only the
	// procs whose edge went quiet, instead of one ticker per proc waking
	// it unconditionally. On the fault-free hot path no proc takes a
	// timer wakeup at all — at Depth > 1 (Depth×N procs in one process)
	// the per-proc tickers this replaces were the dominant scheduler
	// load. Tree and hybrid lanes pace their own schedulers.
	ringProcs := false
	for _, ln := range b.lanes {
		for _, p := range ln.procs {
			if p != nil {
				ringProcs = true
			}
		}
	}
	if ringProcs {
		b.wg.Add(1)
		go b.sweepRingTicks(cfg.Resend)
	}
	return b, nil
}

// sweepRingTicks is the barrier's shared retransmission pacer (see New).
// A proc that announced since the previous sweep has its flag cleared and
// is left alone; a quiet proc is poked with ctrlTick so it retransmits
// its state, masking a potentially lost message on its edge.
func (b *Barrier) sweepRingTicks(resend time.Duration) {
	defer b.wg.Done()
	ticker := time.NewTicker(resend)
	defer ticker.Stop()
	for {
		select {
		case <-b.stopped:
			return
		case <-b.halted:
			return
		case <-ticker.C:
		}
		for _, ln := range b.lanes {
			for j, p := range ln.procs {
				if p == nil || p.sentSinceTick.CompareAndSwap(true, false) {
					continue // absent, or hot: the recent send stands in for the retransmission
				}
				select {
				case ln.gates[j].ctrl <- ctrlMsg{id: j, kind: ctrlTick}:
				default:
					// Control buffer full: the proc is busy draining work
					// and will announce on its own; the next sweep retries.
				}
			}
		}
	}
}

// startRing wires the MB ring: one proc per hosted member, links from the
// ring transport.
func (b *Barrier) startRing(cfg Config, members []int, ln *lane) error {
	tr := cfg.Transport
	if tr == nil {
		tr = NewChanTransport(b.n)
		ln.ownTransport = tr
	}
	for _, j := range members {
		link, err := tr.Open(j)
		if err != nil {
			return fmt.Errorf("ftbarrier: open link for member %d: %w", j, err)
		}
		ln.links = append(ln.links, link)
		p := &proc{
			gate:  newGate(b, j),
			cp:    core.Execute, // everyone starts executing phase 0
			cpL:   core.Execute,
			link:  link,
			state: link.State(),
			top:   link.Top(),
			rng:   prng.New(cfg.Seed + int64(j)*7919),
		}
		if cfg.Rejoin {
			// The Section 7 restart state: identical to the aftermath of a
			// detectable reset, so the ring masks the (re)join.
			p.sn, p.cp, p.ph = tokenring.Bot, core.Error, p.rng.Intn(b.nPhases)
			p.snL, p.cpL, p.phL = tokenring.Bot, core.Error, p.rng.Intn(b.nPhases)
			p.snR = tokenring.Bot
		}
		ln.procs[j] = p
		ln.gates[j] = p.gate
	}
	if !cfg.Rejoin {
		// Every local process starts out executing phase 0: record the
		// implicit begins so the event trace forms complete instances.
		for _, j := range members {
			b.emit(core.Event{Kind: core.EvBegin, Proc: j, Phase: 0})
		}
	}
	lossRate, corruptRate := cfg.LossRate, cfg.CorruptRate
	for _, p := range ln.procs {
		if p == nil {
			continue
		}
		p := p
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			p.run(lossRate, corruptRate)
		}()
	}
	return nil
}

// Stats is a snapshot of the barrier's internal counters.
type Stats struct {
	Passes   int64 // barrier passes delivered to participants
	Resets   int64 // ErrReset results delivered to participants
	Sends    int64 // protocol messages sent
	Drops    int64 // messages lost, or corrupted and dropped at the receiver
	Spurious int64 // spurious messages injected
	// DroppedInjections counts Reset/Scramble calls discarded because the
	// target process's control buffer was full (injection bursts faster
	// than the process drains them). A dropped injection is equivalent to
	// the fault not occurring; the caller observes the count here instead
	// of blocking.
	DroppedInjections int64
	// ResetsInjected and ScramblesInjected count the Reset/Scramble calls
	// that were accepted for delivery (so ResetsInjected +
	// ScramblesInjected + DroppedInjections equals the calls made — the
	// conformance harness cross-checks exactly this against its replayed
	// schedule).
	ResetsInjected    int64
	ScramblesInjected int64
	// CrashesInjected, RestartsInjected and ByzInjected extend the same
	// accounting to the crash and Byzantine fault classes: together with
	// ResetsInjected, ScramblesInjected and DroppedInjections they equal
	// the injection calls made.
	CrashesInjected  int64
	RestartsInjected int64
	ByzInjected      int64
	// RejectedSeq/RejectedPhase/RejectedTop/RejectedSender count frames
	// refused by the sequence-and-sender validation windows (validate.go):
	// sequence number outside the paper's legal window for the edge, phase
	// outside the window (or a current-wave acknowledgment carrying a
	// foreign phase), a ⊤ marker at a settled receiver, and a frame whose
	// claimed sender does not exist on the edge. In a run whose only
	// faults are Byzantine injections, their sum equals ByzInjected — the
	// conformance harness cross-checks exactly that.
	RejectedSeq    int64
	RejectedPhase  int64
	RejectedTop    int64
	RejectedSender int64
	// WastedInstances counts protocol instances consumed beyond one per
	// delivered pass — the re-executions that faults force. It is the
	// numerator of the wasted-work-per-fault metric (Dwork/Halpern/Waarts)
	// and the exact-sum counterpart of the barrier_instances_per_pass
	// histogram: WastedInstances/Passes + 1 is the live Fig 3/5 mean.
	WastedInstances int64
}

// Stats returns a consistent snapshot of the barrier's counters.
//
// The counters are independent atomics, so reading them one Load at a
// time can tear: a snapshot taken mid-pass could show the pass without
// the sends that produced it. Instead of a lock on the hot path, Stats
// uses the two commit-point counters (statPasses, statResets — bumped
// exactly when a pass or reset is delivered to a participant) as a
// seqlock version: read them, read everything else, read them again,
// and retry if a commit slipped in between. Cross-counter invariants
// (e.g. Sends ≥ Passes in a ring: a pass needs a full token circulation)
// hold on every returned snapshot; monotone read order (Passes before
// Sends, with Go's sequentially consistent atomics) preserves them even
// on the rare bailout after maxStatsRetries mid-commit snapshots.
func (b *Barrier) Stats() Stats {
	const maxStatsRetries = 16
	var s Stats
	for i := 0; i < maxStatsRetries; i++ {
		s = Stats{
			Passes:            b.statPasses.Load(),
			Resets:            b.statResets.Load(),
			Drops:             b.statDrops.Load(),
			Sends:             b.statSends.Load(),
			Spurious:          b.statSpurious.Load(),
			DroppedInjections: b.statInjDropped.Load(),
			ResetsInjected:    b.statInjResets.Load(),
			ScramblesInjected: b.statInjScrambles.Load(),
			CrashesInjected:   b.statInjCrashes.Load(),
			RestartsInjected:  b.statInjRestarts.Load(),
			ByzInjected:       b.statInjByz.Load(),
			RejectedSeq:       b.statRejSeq.Load(),
			RejectedPhase:     b.statRejPhase.Load(),
			RejectedTop:       b.statRejTop.Load(),
			RejectedSender:    b.statRejSender.Load(),
			WastedInstances:   b.statWasted.Load(),
		}
		if b.statPasses.Load() == s.Passes && b.statResets.Load() == s.Resets {
			break
		}
	}
	return s
}

// InjectSpurious delivers an arbitrary, well-formed protocol message to
// participant id's process, as if a stray sender existed — the paper's
// "unexpected message reception" fault. Because the forgery carries a
// valid checksum it is undetectable at the receiver, so the tolerance is
// stabilizing, not masking: a forged state can propagate transiently (even
// completing a barrier at the wrong phase) until the predecessor's next
// genuine (re)transmission overrides it and the ring re-converges.
func (b *Barrier) InjectSpurious(id int, seed int64) {
	if id < 0 || id >= b.n {
		return
	}
	// With a pipeline window the forgery lands in the participant's
	// current (primary) lane — the instance whose outcome it can actually
	// perturb — so Depth=1 behavior is exactly the historical one.
	ln := b.lanes[b.primaryLane(id)]
	if tp := ln.tprocs[id]; tp != nil {
		tp.injectSpurious(seed)
		return
	}
	if ln.procs[id] == nil {
		return
	}
	rng := prng.New(seed)
	m := Message{
		SN: tokenring.SN(rng.Intn(b.l)),
		CP: core.CP(rng.Intn(core.NumCP)),
		PH: rng.Intn(b.nPhases),
	}
	m.Sum = m.Checksum()
	b.statSpurious.Add(1)
	if !ln.procs[id].link.InjectState(m) {
		// The mailbox holds a genuine in-flight announcement. Displacing
		// it would silently void a message already counted as sent; the
		// spurious message loses the race instead, and the discard is
		// accounted as a drop.
		b.statDrops.Add(1)
	}
}

// primaryLane is the lane of participant id's oldest outstanding wave —
// the instance a fault injection is attributed to.
func (b *Barrier) primaryLane(id int) int {
	if b.depth == 1 {
		return 0
	}
	return int(b.windows[id].rmirror.Load() % uint64(b.depth))
}

// laneGate returns participant id's gate in the lane executing wave.
func (b *Barrier) laneGate(wave uint64, id int) *gate {
	return b.lanes[wave%uint64(b.depth)].gates[id]
}

// N returns the number of participants.
func (b *Barrier) N() int { return b.n }

// NumPhases returns the phase-counter modulus.
func (b *Barrier) NumPhases() int { return b.nPhases }

// Depth returns the pipeline window size (1 = no pipelining).
func (b *Barrier) Depth() int { return b.depth }

func (b *Barrier) emit(e core.Event) {
	b.sinkMu.Lock()
	if b.sink != nil {
		b.sink(e)
	}
	b.sinkMu.Unlock()
}

// Await reports that participant id has finished its current phase work and
// blocks until the barrier is passed. Each participant id must be driven by
// at most one goroutine at a time (the usual collective-operation
// contract). Await returns the phase index (modulo NumPhases) that the
// barrier just released, or:
//
//   - ErrReset if the participant's process was reset by a detectable
//     fault: the phase work was lost; redo it and call Await again;
//   - ErrHalted if the barrier is fail-safe halted;
//   - ErrStopped if the barrier was stopped;
//   - ctx.Err() if the context ends first.
func (b *Barrier) Await(ctx context.Context, id int) (int, error) {
	if id < 0 || id >= b.n {
		return 0, fmt.Errorf("ftbarrier: participant %d out of range [0,%d)", id, b.n)
	}
	if err := b.Enter(ctx, id); err != nil {
		return 0, err
	}
	return b.Leave(ctx, id)
}

// Enter is the first half of a fuzzy barrier (the paper's Section 8
// extension of Gupta's fuzzy barriers): it reports that participant id has
// finished the phase work that the barrier orders — the execute→success
// transition — and returns without waiting. The participant may then
// perform work that needs no ordering, and must call Leave before starting
// the next ordered phase.
//
// While an entered barrier is outstanding (Enter returned nil and no
// Leave has collected the result yet — including a Leave that returned
// ctx.Err), Enter is a no-op: the arrival already registered stands. A
// canceled Enter registers nothing, so Enter/Leave pairs compose with
// context cancellation without losing or double-counting a pass.
//
// With Depth > 1, Enter tops the pipeline window up to Depth
// outstanding waves: wave k+1's instance launches before wave k
// completes, so a plain Await loop pipelines transparently. A wave
// whose Leave returned an error stays at the head of the window and is
// re-entered first (on the same lane — its instance still owes the
// participant a completion).
func (b *Barrier) Enter(ctx context.Context, id int) error {
	if id < 0 || id >= b.n {
		return fmt.Errorf("ftbarrier: participant %d out of range [0,%d)", id, b.n)
	}
	if b.lanes[0].gates[id] == nil {
		return fmt.Errorf("ftbarrier: member %d is not hosted by this process", id)
	}
	w := &b.windows[id]
	for {
		if w.rcur < w.pcur {
			// An errored head wave (Leave returned ErrReset and kept rcur):
			// its redone work re-arrives on the same lane before the window
			// grows, or the lane's instance would deadlock on the work gate.
			if g := b.laneGate(w.rcur, id); !g.entered {
				if err := b.enterGate(ctx, g); err != nil {
					return err
				}
				continue
			}
		}
		if w.pcur-w.rcur >= uint64(b.depth) {
			return nil // window full: Depth waves outstanding
		}
		g := b.laneGate(w.pcur, id)
		if err := b.enterGate(ctx, g); err != nil {
			return err
		}
		w.pcur++
	}
}

// enterGate registers one arrival with gate g's protocol instance. The
// ticket is committed only when the arrival is actually handed to the
// protocol: a canceled Enter must leave no trace, or the next Leave
// would wait on a ticket whose arrival never happened.
func (b *Barrier) enterGate(ctx context.Context, g *gate) error {
	t := g.tickets + 1
	select {
	case g.ctrl <- ctrlMsg{id: g.id, kind: ctrlArrive, ticket: t}:
		g.tickets = t
		g.entered = true
		return nil
	case <-b.halted:
		return ErrHalted
	case <-b.stopped:
		return ErrStopped
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Leave is the second half of a fuzzy barrier: it blocks until the barrier
// entered with Enter has been passed — the ready→execute transition — and
// returns the phase now beginning. Leave without a prior Enter blocks
// until the participant's next barrier pass or error; the Await
// documentation describes the error contract.
//
// If ctx ends in the same instant the pass completes, the pass wins: Leave
// returns the phase, not ctx.Err(). If ctx ends first, the entered
// barrier remains outstanding — the pass, when it arrives, is counted
// once and held for the participant, and the next Leave (or Await, whose
// Enter is then a no-op) collects it. A pass is never lost or delivered
// twice around a cancellation.
//
// With Depth > 1, Leave reaps the oldest outstanding wave. On success
// the window slides (the next Enter launches a new wave at its far
// edge) and the returned phase is the wave index modulo NumPhases; on
// ErrReset the wave stays at the head of the window, to be redone on
// the same lane, so waves are never reordered or skipped.
func (b *Barrier) Leave(ctx context.Context, id int) (int, error) {
	if id < 0 || id >= b.n {
		return 0, fmt.Errorf("ftbarrier: participant %d out of range [0,%d)", id, b.n)
	}
	if b.lanes[0].gates[id] == nil {
		return 0, fmt.Errorf("ftbarrier: member %d is not hosted by this process", id)
	}
	w := &b.windows[id]
	g := b.laneGate(w.rcur, id)
	ticket := g.tickets
	for {
		select {
		case r := <-g.wake:
			if r.ticket != ticket {
				continue // stale wake from a superseded Await/Leave
			}
			return b.reap(w, g, r)
		case <-b.halted:
			return 0, ErrHalted
		case <-b.stopped:
			return 0, ErrStopped
		case <-ctx.Done():
			// Last-chance poll: if the result raced the cancellation into
			// the wake buffer, deliver it — otherwise the caller would see
			// ctx.Err() for a pass that was already counted, and a later
			// Leave would see it again.
			select {
			case r := <-g.wake:
				if r.ticket == ticket {
					return b.reap(w, g, r)
				}
				// Stale wake; drop it and report the cancellation.
			default:
			}
			return 0, ctx.Err()
		}
	}
}

// reap consumes the head wave's result and slides the window. An error
// keeps rcur in place: the wave's instance still owes a completion and
// the redone arrival must return to the same lane.
func (b *Barrier) reap(w *window, g *gate, r awaitResult) (int, error) {
	g.entered = false
	if r.err != nil {
		return 0, r.err
	}
	wave := w.rcur
	w.rcur++
	w.rmirror.Store(w.rcur)
	if b.depth == 1 {
		// No pipelining: surface the protocol's own phase counter (the
		// Rejoin path joins mid-sequence, so it is not synthesizable).
		return r.phase, nil
	}
	// Pipelined: the lanes' internal phase counters interleave
	// (lane k%Depth delivers its (k/Depth)-th pass), so the
	// participant-visible phase is the synthesized wave counter.
	return int(wave % uint64(b.nPhases)), nil
}

// Reset injects a detectable fault at participant id's process: its state
// is lost (sn := ⊥, cp := error, copies reset), as if the process
// fail-stopped and restarted. The protocol masks the fault. If the reset
// voids phase work the current barrier instance still needed, the
// participant's next (or pending) Await returns ErrReset and it must redo
// the phase; if the work had already been consumed, the barrier re-executes
// the instance transparently and the participant just passes normally.
func (b *Barrier) Reset(id int) {
	b.inject(id, ctrlMsg{kind: ctrlReset})
}

// Scramble injects an undetectable fault at participant id's process: all
// protocol variables are overwritten with arbitrary domain values. The
// protocol stabilizes once faults stop.
func (b *Barrier) Scramble(id int, seed int64) {
	b.inject(id, ctrlMsg{kind: ctrlScramble, seed: seed})
}

// Crash injects a crash fault at participant id's process: it goes down
// and stays down — no sends, receives or protocol steps — until Restart
// revives it. The rest of the group stalls at the next barrier the
// crashed member owes (the paper's fail-stop behavior); Restart flows the
// revival through the already-masked detectable-reset machinery.
func (b *Barrier) Crash(id int) {
	b.inject(id, ctrlMsg{kind: ctrlCrash})
}

// Restart revives a crashed member in the Section 7 restart state
// (identical to the aftermath of a detectable reset, so the group masks
// the rejoin). Restarting a member that never crashed is equivalent to
// Reset.
func (b *Barrier) Restart(id int) {
	b.inject(id, ctrlMsg{kind: ctrlRestart})
}

// Byz makes member id act as a Byzantine adversary for one frame: a
// well-formed, valid-checksum lie (wrong-phase replay, stale-sequence
// echo, or premature ⊤ marker, chosen by seed) delivered to one of the
// neighbors the adversary can actually speak to on its topology edges.
// The forgery is crafted from the victim's own view — the strongest
// position a real adversary on the edge can reach, since it observes at
// most what the victim announces — and runs through the genuine receive
// path, where the validation windows (validate.go) reject it. The
// injection lands in the adversary's primary lane; an adversary or
// victim hosted by another process cannot be reached from here and the
// injection is discarded into Stats.DroppedInjections.
func (b *Barrier) Byz(id int, seed int64) {
	if id < 0 || id >= b.n {
		return
	}
	rng := prng.New(seed)
	ln := b.lanes[b.primaryLane(id)]
	victim, kind := b.byzRoute(ln, id, &rng)
	if victim < 0 || victim >= b.n || ln.gates[victim] == nil {
		b.statInjDropped.Add(1)
		return
	}
	m := ctrlMsg{id: victim, from: id, kind: kind, seed: rng.Int63n(1 << 62)}
	select {
	case ln.gates[victim].ctrl <- m:
		b.statInjByz.Add(1)
	default:
		b.statInjDropped.Add(1)
	}
}

// byzRoute picks the victim of adversary id's forgery and the frame kind,
// mirroring the edges the adversary can speak on: the ring successor for
// state frames and the predecessor for ⊤ markers, or — on a tree — a
// random child for down frames and the parent for convergecast frames.
func (b *Barrier) byzRoute(ln *lane, id int, rng *prng.PRNG) (victim int, kind ctrlKind) {
	if tp := ln.tprocs[id]; tp != nil {
		if len(tp.kids) > 0 && (tp.parentID < 0 || rng.Intn(2) == 0) {
			return tp.kids[rng.Intn(len(tp.kids))], ctrlByzDown
		}
		return tp.parentID, ctrlByzUp
	}
	if ln.procs[id] == nil {
		return -1, ctrlByzState
	}
	if rng.Intn(3) == 2 {
		return (id - 1 + b.n) % b.n, ctrlByzTop
	}
	return (id + 1) % b.n, ctrlByzState
}

// inject delivers a fault-injection control message without ever blocking
// the caller: a fault injector racing ahead of the process's drain rate
// must not deadlock with it. If the control buffer is full the injection
// is discarded (the fault simply does not occur) and counted in
// Stats.DroppedInjections.
//
// With a pipeline window a process reset/scramble hits every lane — the
// faulted process hosts all Depth instances, so a masked fault in wave k
// voids the in-flight waves k..k+Depth-1 too (their re-executions are
// what barrier_wasted_instances_total counts at depth). The injection is
// tallied once, from the primary lane's acceptance, so accepted+dropped
// still equals the calls made.
func (b *Barrier) inject(id int, m ctrlMsg) {
	if id < 0 || id >= b.n || b.lanes[0].gates[id] == nil {
		return
	}
	m.id = id
	pri := b.primaryLane(id)
	for li, ln := range b.lanes {
		accepted := false
		select {
		case ln.gates[id].ctrl <- m:
			accepted = true
		default:
		}
		if li != pri {
			continue
		}
		if accepted {
			// Count at acceptance, synchronously with the caller: the
			// conformance harness checks accepted + dropped against the
			// number of calls its schedule made, so the tally must be
			// stable the moment the injection call returns.
			switch m.kind {
			case ctrlReset:
				b.statInjResets.Add(1)
			case ctrlScramble:
				b.statInjScrambles.Add(1)
			case ctrlCrash:
				b.statInjCrashes.Add(1)
			case ctrlRestart:
				b.statInjRestarts.Add(1)
			}
		} else {
			b.statInjDropped.Add(1)
		}
	}
}

// Halt puts the barrier into fail-safe mode (Table 1, uncorrectable +
// detectable): no barrier completion will ever be reported again;
// outstanding and future Awaits return ErrHalted. The protocol goroutines
// quiesce — the ring stops circulating and retransmitting — so a halted
// barrier consumes no CPU while it waits to be Stopped.
func (b *Barrier) Halt() {
	b.haltOnce.Do(func() { close(b.halted) })
}

// Halted reports whether the barrier is fail-safe halted.
func (b *Barrier) Halted() bool {
	select {
	case <-b.halted:
		return true
	default:
		return false
	}
}

// Stop shuts the barrier down: the protocol goroutines exit, then the
// transport links they used (dialer and connection goroutines included)
// are closed. Outstanding Awaits and Awaits racing Stop return ErrStopped.
//
// Stop is idempotent and safe to call concurrently — with itself, with
// Halt, and with outstanding Awaits. Every call blocks until the shutdown
// is complete; a second Stop returns once the first finishes, without
// re-closing anything. An internally created default transport is closed
// too; an explicitly supplied Config.Transport is left for its creator.
func (b *Barrier) Stop() {
	b.stopOnce.Do(func() { close(b.stopped) })
	b.wg.Wait()
	b.closeOnce.Do(func() {
		for _, ln := range b.lanes {
			for _, l := range ln.links {
				l.Close()
			}
			if ln.ownTransport != nil {
				ln.ownTransport.Close()
			}
		}
	})
}

// --- the participant gate (topology-independent) ---

// onArrive records a participant arrival (Enter), surfacing a pending
// error from an earlier reset instead if one is stored.
func (g *gate) onArrive(c ctrlMsg) {
	g.appWaiting = true
	g.curTicket = c.ticket
	g.arrived = true
	if g.pendingErr != nil {
		// The process was reset while the participant was working: the
		// work belongs to an aborted instance and must be redone.
		g.deliver(awaitResult{err: g.pendingErr, ticket: g.curTicket})
		g.pendingErr = nil
		g.arrived = false
		g.appWaiting = false
	}
}

// completionBlocked implements the work gate for the completion transition:
// it reports whether the transition must wait for the participant's
// arrival. If the participant is already waiting to be woken while the gate
// shows no work, the two would wait on each other forever — in a fault-free
// computation a second completion never occurs without an intervening
// begin, so this state only arises when a fault teleported the protocol
// back into an executing state, skipping the begin that would have re-armed
// the gate. Reconcile with the redo mechanism: the participant re-executes
// its phase, and its re-arrival unblocks the completion.
func (g *gate) completionBlocked() bool {
	if g.arrived {
		return false
	}
	if g.appWaiting {
		g.failPending(ErrReset)
	}
	return true
}

// applyOutcome performs the begin/complete/abandon bookkeeping after a
// state update changed the control position from (oldPH) to (newPH).
func (g *gate) applyOutcome(out core.Outcome, oldPH, newPH int) {
	switch out {
	case core.OutBegin:
		g.beginsSince++
		g.b.emit(core.Event{Kind: core.EvBegin, Proc: g.id, Phase: newPH})
		if g.appWaiting {
			switch {
			case g.arrived:
				// The participant's work has not been consumed yet: this
				// begin (re)starts an instance that will consume it. Not a
				// pass.
			case newPH == g.lastDonePh:
				// Re-execution of the phase whose work was already consumed
				// (a fault forced a repeat instance): the work stands —
				// re-arm the gate silently instead of waking.
				g.arrived = true
			default:
				// A genuinely new phase begins: the barrier is passed; wake
				// the waiting participant.
				g.appWaiting = false
				g.observePass()
				g.b.statPasses.Add(1)
				g.deliver(awaitResult{phase: newPH, ticket: g.curTicket})
			}
		}
	case core.OutComplete:
		g.arrived = false
		g.lastDonePh = oldPH
		g.b.emit(core.Event{Kind: core.EvComplete, Proc: g.id, Phase: oldPH})
	case core.OutAbandon:
		// Pulled into a re-execution while mid-phase: the instance aborts,
		// but this participant's work (in progress or gated) remains valid
		// for the repeat instance — no error is surfaced.
		g.b.emit(core.Event{Kind: core.EvReset, Proc: g.id, Phase: oldPH})
	}
}

// failPending wakes a waiting participant with err, or stores it for the
// next Await.
func (g *gate) failPending(err error) {
	g.b.statResets.Add(1)
	if g.appWaiting {
		g.appWaiting = false
		g.arrived = false
		g.deliver(awaitResult{err: err, ticket: g.curTicket})
	} else {
		g.pendingErr = err
	}
}

func (g *gate) deliver(r awaitResult) {
	select {
	case g.wake <- r:
	default:
		// The participant abandoned its Await (context cancellation); the
		// stale result is dropped when the buffer is reused.
		select {
		case <-g.wake:
		default:
		}
		g.wake <- r
	}
}

// --- protocol goroutine (ring) ---

func (p *proc) run(lossRate, corruptRate float64) {
	p.announce(lossRate, corruptRate) // prime the ring
	for {
		// Fast path: drain everything already queued with non-blocking
		// single-channel polls before stepping. Polling an empty channel is
		// a lock-free check, where the blocking select below locks every
		// case's channel on entry and exit — with the token hot that
		// difference dominates the cost of a hop.
		busy := false
		for {
			progressed := false
			select {
			case msg := <-p.state:
				p.onPredState(msg)
				progressed = true
			default:
			}
			select {
			case <-p.top:
				p.onTop()
				progressed = true
			default:
			}
			select {
			case c := <-p.ctrl:
				p.onCtrl(c)
				progressed = true
			default:
			}
			if !progressed {
				break
			}
			busy = true
		}
		if busy {
			select {
			case <-p.b.stopped:
				return
			case <-p.b.halted:
				return
			default:
			}
			p.step()
			p.announce(lossRate, corruptRate)
			continue
		}

		// Idle: park until something arrives. Retransmission pacing comes
		// from the barrier's sweeper goroutine, which pokes the proc with
		// ctrlTick only when its edge was quiet for a resend period —
		// hot procs never take timer wakeups.
		select {
		case <-p.b.stopped:
			return
		case <-p.b.halted:
			// Fail-safe halt: quiesce. No completion may ever be reported
			// again, so circulating the token or retransmitting state is
			// pure waste; the goroutine exits and the ring falls silent.
			// Await/Enter/Leave keep returning ErrHalted via b.halted.
			return
		case msg := <-p.state:
			p.onPredState(msg)
		case <-p.top:
			p.onTop()
		case c := <-p.ctrl:
			p.onCtrl(c)
		}
		p.step()
		p.announce(lossRate, corruptRate)
	}
}

// onPredState is action C.j: update the local copies of the predecessor's
// variables. The copy cell evolves by the same follower statement as a real
// process (Section 5: "identical to the superposed action T2").
func (p *proc) onPredState(m Message) {
	if p.crashed {
		return
	}
	if m.Sum != m.Checksum() {
		// Detected corruption: drop; the retransmission masks it.
		p.b.statDrops.Add(1)
		return
	}
	if !m.SN.Ordinary() || p.snL == m.SN {
		return
	}
	if !p.admitPredState(m) {
		return // outside the legal receive window (validate.go)
	}
	newCP, newPH, _ := core.FollowerUpdate(p.cpL, p.phL, m.CP, m.PH)
	p.snL = m.SN
	p.cpL = newCP
	p.phL = newPH
}

// onTop handles the successor's ⊤ marker — the whole-ring restart wave
// propagating backward. A settled process is not in the restart wave, and
// snR is only ever consumed by T4' with sn = ⊥ (every path into which
// clears snR), so a ⊤ arriving while sn is ordinary is either a stale
// marker or a forgery trying to trigger a spurious whole-ring restart:
// reject it. A genuine sender retransmits, and the marker is accepted
// once the receiver itself has entered the wave.
func (p *proc) onTop() {
	if p.crashed {
		return
	}
	if p.sn.Ordinary() {
		p.b.statRejTop.Add(1)
		return
	}
	p.snR = tokenring.Top
}

func (p *proc) onCtrl(c ctrlMsg) {
	switch c.kind {
	case ctrlArrive:
		p.onArrive(c)
	case ctrlTick:
		// Quiet edge at the resend sweep: retransmit the current state —
		// it masks lost, dropped and detectably corrupted messages.
		// Forgetting the last announcement makes the post-ctrl announce
		// resend it. A message lost right after a sweep is retransmitted
		// by the sweep after the next, so the masking delay is at most
		// doubled — the same bound the per-proc tickers gave.
		p.haveSent = false
	case ctrlReset:
		if p.crashed {
			return // a crashed process has no state left to lose
		}
		p.resetMB()
	case ctrlScramble:
		if p.crashed {
			return
		}
		rng := prng.New(c.seed)
		randomSN := func() tokenring.SN {
			v := rng.Intn(p.b.l + 2)
			switch v {
			case p.b.l:
				return tokenring.Bot
			case p.b.l + 1:
				return tokenring.Top
			default:
				return tokenring.SN(v)
			}
		}
		p.sn = randomSN()
		p.snL = randomSN()
		p.snR = randomSN()
		p.cp = core.CP(rng.Intn(core.NumCP))
		p.cpL = core.CP(rng.Intn(core.NumCP))
		p.ph = rng.Intn(p.b.nPhases)
		p.phL = rng.Intn(p.b.nPhases)
		p.havePending = false
		p.noteFault()
	case ctrlCrash:
		// The crash fault class: the process goes down and stays down —
		// no receives, no steps, no announcements — until Restart.
		p.crashed = true
	case ctrlRestart:
		// Section 7 restart semantics: the revived process re-enters in
		// the detectably-reset state, so the ring masks the rejoin like
		// any other detectable fault. Restarting a live process is just
		// a reset.
		p.crashed = false
		p.resetMB()
	case ctrlByzState:
		p.onByzState(c.seed)
	case ctrlByzTop:
		// A forged ⊤ marker carries no payload; it exercises the same
		// settled-receiver rejection the genuine marker path runs.
		p.onByzTop()
	}
}

// resetMB is MB's detectable fault action (shared by ctrlReset and the
// restart half of the crash fault class). The participant is told to redo
// its phase (ErrReset) only if the reset voids work the current instance
// still needed: cp = execute means the completion had not been consumed
// yet (the instance aborts before succeeding, so no participant passes
// and everyone stays aligned), and cp = error means a previous reset's
// redo is still outstanding. A reset that lands after the completion was
// consumed (success/repeat) or between instances (ready) loses only
// protocol state — the protocol re-executes the instance with the
// participant's work standing, and reporting ErrReset then would
// desynchronize the participant's round counter from the collective (it
// would redo a phase whose barrier already passed and fall one pass
// behind).
func (p *proc) resetMB() {
	workVoided := p.cp == core.Execute || p.cp == core.Error
	if p.cp != core.Error {
		p.b.emit(core.Event{Kind: core.EvReset, Proc: p.id, Phase: p.ph})
	}
	p.sn = tokenring.Bot
	p.cp = core.Error
	p.ph = p.rng.Intn(p.b.nPhases)
	p.snL = tokenring.Bot
	p.cpL = core.Error
	p.phL = p.rng.Intn(p.b.nPhases)
	p.snR = tokenring.Bot
	p.havePending = false
	if workVoided {
		p.failPending(ErrReset)
	}
	p.noteFault()
}

// step applies every enabled local action to quiescence: T1'/T2' (token
// receipt, gated on the participant's arrival for the completion
// transition), T3, T4', T5.
func (p *proc) step() {
	if p.crashed {
		return
	}
	for {
		changed := false

		// T1' at 0 / T2' elsewhere.
		if p.snL.Ordinary() {
			enabled := false
			if p.id == 0 {
				enabled = p.sn == p.snL || !p.sn.Ordinary()
			} else {
				enabled = p.sn != p.snL
			}
			if enabled {
				var newCP core.CP
				var newPH int
				var out core.Outcome
				if p.id == 0 {
					newCP, newPH, out = core.LeaderUpdate(p.cp, p.ph, p.cpL, p.phL, p.b.nPhases)
				} else {
					newCP, newPH, out = core.FollowerUpdate(p.cp, p.ph, p.cpL, p.phL)
				}
				// The work gate: the completion transition waits for the
				// participant to arrive at the barrier.
				if out == core.OutComplete && p.completionBlocked() {
					// blocked — nothing else can change until arrival or
					// another message.
				} else {
					oldPH := p.ph
					if p.id == 0 {
						p.sn = tokenring.SN((int(p.snL) + 1) % p.b.l)
					} else {
						p.sn = p.snL
					}
					p.cp = newCP
					p.ph = newPH
					p.applyOutcome(out, oldPH, newPH)
					changed = true
				}
			}
		}

		// T3 at the last process: ⊥ → ⊤.
		if p.id == p.b.n-1 && p.sn == tokenring.Bot {
			p.sn = tokenring.Top
			changed = true
		}
		// T4' elsewhere: propagate ⊤ backward via the local copy snR.
		if p.id != p.b.n-1 && p.sn == tokenring.Bot && p.snR == tokenring.Top {
			p.sn = tokenring.Top
			changed = true
		}
		// T5 at 0: restart a fully corrupted ring.
		if p.id == 0 && p.sn == tokenring.Top {
			p.sn = 0
			changed = true
		}

		if !changed {
			return
		}
	}
}

// announce sends the current state to the successor (and the ⊤ marker to
// the predecessor) if it changed since the last send, subject to the
// configured loss and corruption rates. The fault injection sits above the
// transport so that loss and detected corruption exercise identical
// protocol paths over channels and over sockets.
func (p *proc) announce(lossRate, corruptRate float64) {
	if p.crashed {
		return
	}
	m := Message{SN: p.sn, CP: p.cp, PH: p.ph}
	m.Sum = m.Checksum()
	if p.haveSent && m == p.lastSent {
		return
	}
	p.lastSent = m
	p.haveSent = true
	p.sentSinceTick.Store(true)

	p.b.statSends.Add(1)
	if lossRate > 0 && p.rng.Float64() < lossRate {
		p.b.statDrops.Add(1)
		return // the message is lost; the resend ticker will mask it
	}
	if corruptRate > 0 && p.rng.Float64() < corruptRate {
		// Bit-flip in flight: the receiver's integrity check will reject it.
		m.Sum ^= 0xdeadbeef
	}
	p.link.SendState(m)
	if p.sn == tokenring.Top {
		p.link.SendTop()
	}
}
