// Tree-link abstraction: the double-tree runtime (Config.Topology ==
// TopologyTree) replaces the ring's two edges per member with tree edges —
// state announcements flow DOWN from a parent to each child, and combined
// state+acknowledgment announcements flow UP from each child to its
// parent. The delivery contract is the ring Link contract unchanged:
// best-effort, non-blocking, latest-state-wins, corruption detectable via
// the end-to-end checksum; the periodic per-edge retransmission makes
// loss, duplication and detected corruption equivalent to delay.
package runtime

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/tokenring"
)

// UpMessage is the convergecast wire record a tree node announces to its
// parent: the child's live state (SN, CP, PH) — read by the parent's
// resynchronization and restart actions — and its subtree acknowledgment
// summary (AckSN, AckCP, AckPH) — read by the parent's own convergecast.
// Child tags the sender so siblings can share the parent's up mailbox.
type UpMessage struct {
	Child int
	SN    tokenring.SN
	CP    core.CP
	PH    int

	AckSN tokenring.SN
	AckCP core.CP
	AckPH int

	Sum uint32
}

// Checksum computes the integrity check over every field but Sum itself,
// the same FNV-style mix as Message.Checksum.
func (m UpMessage) Checksum() uint32 {
	h := uint32(2166136261)
	mix := func(v uint32) {
		h ^= v
		h *= 16777619
	}
	mix(uint32(int32(m.Child)))
	mix(uint32(int32(m.SN)))
	mix(uint32(m.CP))
	mix(uint32(int32(m.PH)))
	mix(uint32(int32(m.AckSN)))
	mix(uint32(m.AckCP))
	mix(uint32(int32(m.AckPH)))
	return h
}

// TreeLink is one tree member's attachment to its parent and children.
type TreeLink interface {
	// SendDown announces the member's current (sn, cp, ph) to child
	// (a member id). Best-effort and non-blocking; latest state wins.
	SendDown(child int, m Message)
	// SendUp announces the member's state and subtree acknowledgment to
	// its parent. Best-effort and non-blocking. No-op at the root.
	SendUp(m UpMessage)
	// Down is the channel of announcements received from the parent.
	Down() <-chan Message
	// Up is the channel of announcements received from the children
	// (shared across children; receivers demultiplex by Child).
	Up() <-chan UpMessage
	// InjectDown delivers a forged parent announcement locally — the
	// fault-injection hook for "unexpected message reception". It reports
	// false when the mailbox already holds a genuine in-flight message.
	InjectDown(m Message) bool
	// InjectUp delivers a forged child announcement locally; it reports
	// false when the up mailbox is full of genuine traffic.
	InjectUp(m UpMessage) bool
	// Close tears down any goroutines and connections serving this link.
	// It must not close the Down/Up channels.
	Close() error
}

// TreeTransport supplies the tree links for a TopologyTree barrier. A
// transport is built for a fixed tree (parent vector); OpenTree is called
// once per member hosted by this process.
type TreeTransport interface {
	// OpenTree returns member id's tree link.
	OpenTree(id int) (TreeLink, error)
	// Close tears the whole transport down (see Transport.Close).
	Close() error
}

// treeOnly makes a TreeTransport satisfy the ring Transport interface for
// Config.Transport while rejecting ring use.
type treeOnly struct{}

func (treeOnly) Open(id int) (Link, error) {
	return nil, errors.New("ftbarrier: tree transport requires Config.Topology == TopologyTree")
}

// --- in-process channel tree transport (the TopologyTree default) ---

// chanTreeTransport wires every tree edge as a pair of latest-state-wins
// mailboxes between the members' goroutines.
type chanTreeTransport struct {
	treeOnly
	parent []int
	links  []*chanTreeLink
}

// NewChanTreeTransport returns the in-process channel transport for an
// all-local tree described by the parent vector (parent[0] == -1). It is
// the default a TopologyTree Barrier creates when Config.Transport is nil.
func NewChanTreeTransport(parent []int) Transport {
	t := &chanTreeTransport{parent: append([]int(nil), parent...)}
	kids := make([]int, len(parent))
	for id := 1; id < len(parent); id++ {
		kids[parent[id]]++
	}
	t.links = make([]*chanTreeLink, len(parent))
	for id := range t.links {
		t.links[id] = &chanTreeLink{
			t:    t,
			id:   id,
			down: make(chan Message, 1),
			// The up mailbox is shared by all children; two slots per
			// child absorb a full round of state+ack announcements, and
			// anything beyond that is dropped as loss (masked by the
			// per-edge retransmission).
			up: make(chan UpMessage, 2*kids[id]+2),
		}
	}
	return t
}

func (t *chanTreeTransport) OpenTree(id int) (TreeLink, error) {
	if id < 0 || id >= len(t.links) {
		return nil, fmt.Errorf("ftbarrier: member %d out of range [0,%d)", id, len(t.links))
	}
	return t.links[id], nil
}

func (t *chanTreeTransport) Close() error { return nil }

type chanTreeLink struct {
	t    *chanTreeTransport
	id   int
	down chan Message   // announcements from the parent
	up   chan UpMessage // announcements from the children
}

func (l *chanTreeLink) SendDown(child int, m Message) {
	if child < 0 || child >= len(l.t.links) || l.t.parent[child] != l.id {
		return
	}
	dst := l.t.links[child].down
	// Latest-state-wins mailbox: drain a stale message, then send.
	select {
	case <-dst:
	default:
	}
	select {
	case dst <- m:
	default:
	}
}

func (l *chanTreeLink) SendUp(m UpMessage) {
	p := l.t.parent[l.id]
	if p < 0 {
		return
	}
	dst := l.t.links[p].up
	select {
	case dst <- m:
		return
	default:
	}
	// Full: displace the oldest entry — a stale announcement some sibling
	// has already superseded — and retry; if that race is lost too, the
	// message is dropped as loss and the retransmission masks it.
	select {
	case <-dst:
	default:
	}
	select {
	case dst <- m:
	default:
	}
}

func (l *chanTreeLink) Down() <-chan Message { return l.down }
func (l *chanTreeLink) Up() <-chan UpMessage { return l.up }

func (l *chanTreeLink) InjectDown(m Message) bool {
	select {
	case l.down <- m:
		return true
	default:
		return false
	}
}

func (l *chanTreeLink) InjectUp(m UpMessage) bool {
	select {
	case l.up <- m:
		return true
	default:
		return false
	}
}

func (l *chanTreeLink) Close() error { return nil }
