package runtime

// Tests for the two-level hybrid topology: members grouped by host fuse
// onto one scheduler per host, and only host-root edges carry traffic in
// the cross-host tree.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/topo"
)

func TestHybridValidation(t *testing.T) {
	hosts := [][]int{{0, 1}, {2, 3}}
	if _, err := New(Config{Participants: 4, Topology: TopologyHybrid}); err == nil {
		t.Error("hybrid without Hosts should be rejected")
	}
	if _, err := New(Config{Participants: 4, Hosts: hosts}); err == nil {
		t.Error("Hosts without TopologyHybrid should be rejected")
	}
	if _, err := New(Config{Participants: 6, Topology: TopologyHybrid, Hosts: hosts}); err == nil {
		t.Error("Hosts covering fewer members than Participants should be rejected")
	}
	if _, err := New(Config{Participants: 4, Topology: TopologyHybrid,
		Hosts: [][]int{{0, 1}, {1, 2, 3}}}); err == nil {
		t.Error("duplicate member across hosts should be rejected")
	}
	// Distributed: Members must be exactly one host's roster.
	hy, err := topo.NewHybridTree(hosts, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewChanTreeTransport(hy.HostTree.Parent)
	if _, err := New(Config{Participants: 4, Topology: TopologyHybrid, Hosts: hosts,
		Transport: tr, Members: []int{0, 1, 2}}); err == nil {
		t.Error("Members spanning two hosts should be rejected")
	}
	if _, err := New(Config{Participants: 4, Topology: TopologyHybrid, Hosts: hosts,
		Transport: tr, Members: []int{2}}); err == nil {
		t.Error("Members = a partial host roster should be rejected")
	}
}

// All hosts local (no transport): the hybrid member tree runs fully
// fused and behaves like any barrier.
func TestHybridFusedFaultFree(t *testing.T) {
	const n, rounds = 8, 40
	col := newCollector(n, 8)
	b, err := New(Config{
		Participants: n,
		Topology:     TopologyHybrid,
		Hosts:        [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}},
		EventSink:    col.sink,
		Seed:         21,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	passes := runWorkers(t, b, rounds, nil)
	for id, c := range passes {
		if c != rounds {
			t.Errorf("worker %d passed %d barriers, want %d", id, c, rounds)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatal(err)
	}
	if col.successes() < rounds {
		t.Errorf("checker saw %d successful barriers, want ≥ %d", col.successes(), rounds)
	}
}

// hybridCluster builds one Barrier per host over a shared host-tree
// transport — the distributed deployment shape, in-process.
func hybridCluster(t *testing.T, hosts [][]int, cfg Config) []*Barrier {
	t.Helper()
	hy, err := topo.NewHybridTree(hosts, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewChanTreeTransport(hy.HostTree.Parent)
	bs := make([]*Barrier, len(hosts))
	for h := range hosts {
		c := cfg
		c.Topology = TopologyHybrid
		c.Hosts = hosts
		c.Transport = tr
		c.Members = hosts[h]
		b, err := New(c)
		if err != nil {
			for _, prev := range bs[:h] {
				prev.Stop()
			}
			t.Fatal(err)
		}
		bs[h] = b
	}
	return bs
}

// hostOfMember finds the barrier hosting a member.
func hostOfMember(hosts [][]int, id int) int {
	for h, roster := range hosts {
		for _, j := range roster {
			if j == id {
				return h
			}
		}
	}
	return -1
}

// Distributed hybrid over a shared host-tree transport: every member
// passes every barrier, and cross-host messages flow only on host-root
// edges (there are no other links).
func TestHybridDistributedFaultFree(t *testing.T) {
	hosts := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7}}
	const n, rounds = 8, 40
	bs := hybridCluster(t, hosts, Config{Participants: n, Seed: 7})
	defer func() {
		for _, b := range bs {
			b.Stop()
		}
	}()
	runHybridWorkers(t, bs, hosts, n, rounds)
	var total int64
	for _, b := range bs {
		total += b.Stats().Passes
	}
	if total != int64(n*rounds) {
		t.Errorf("total passes = %d, want %d", total, n*rounds)
	}
}

// runHybridWorkers drives all members of a hybrid cluster through
// `rounds` passes, redoing on ErrReset.
func runHybridWorkers(t *testing.T, bs []*Barrier, hosts [][]int, n, rounds int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for id := 0; id < n; id++ {
		id := id
		b := bs[hostOfMember(hosts, id)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; {
				_, err := b.Await(ctx, id)
				switch {
				case err == nil:
					r++
				case errors.Is(err, ErrReset):
					// redo the phase
				default:
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// Detectable faults at a host root — the member whose edges cross the
// network — are masked like any other reset: after the faults stop,
// every member keeps passing. Workers are free-running (a reset racing
// a completion may leave the victim one delivered pass behind its
// peers permanently — legal masking — so fixed-round loops would wedge
// when the peers finish first).
func TestHybridDistributedResetMasked(t *testing.T) {
	hosts := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	const n = 8
	bs := hybridCluster(t, hosts, Config{Participants: n, Seed: 9})
	defer func() {
		for _, b := range bs {
			b.Stop()
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var passes [n]atomic.Int64
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		b := bs[hostOfMember(hosts, id)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := b.Await(ctx, id)
				if err == nil {
					passes[id].Add(1)
				} else if !errors.Is(err, ErrReset) {
					return
				}
			}
		}()
	}

	// A bounded burst of resets at host 1's root (member 2) — the member
	// whose edges cross the network — and a leaf (member 5).
	for i := 0; i < 40; i++ {
		time.Sleep(200 * time.Microsecond)
		bs[1].Reset(2)
		bs[2].Reset(5)
	}

	// Liveness: every member gains 5 fresh passes after the faults stop.
	var base [n]int64
	for id := range base {
		base[id] = passes[id].Load()
	}
	deadline := time.Now().Add(30 * time.Second)
	for id := 0; id < n; id++ {
		for passes[id].Load() < base[id]+5 {
			if time.Now().After(deadline) {
				t.Fatalf("member %d made no progress after resets stopped", id)
			}
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	wg.Wait()
	if got := bs[1].Stats().ResetsInjected; got == 0 {
		t.Error("no resets were accepted at the host root")
	}
}
