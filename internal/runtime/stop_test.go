package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// Stop is idempotent: a second (and hundredth) Stop returns without
// deadlock or panic, with the transport torn down exactly once.
func TestStopIdempotent(t *testing.T) {
	b, err := New(Config{Participants: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		done := make(chan struct{})
		go func() {
			b.Stop()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("Stop call %d did not return", i)
		}
	}
}

// Concurrent Stops from many goroutines all return; none panics on a
// doubly-closed channel or link.
func TestStopConcurrent(t *testing.T) {
	b, err := New(Config{Participants: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Stop()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent Stops did not all return")
	}
}

// An Await racing Stop returns ErrStopped (or completes a pass that was
// already finishing); it never deadlocks and never reports success for a
// barrier that can no longer complete.
func TestStopRacingAwait(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		b, err := New(Config{Participants: 3, Resend: 50 * time.Microsecond, Seed: int64(43 + trial)})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		errs := make(chan error, 3)
		for id := 0; id < 3; id++ {
			id := id
			go func() {
				for {
					_, err := b.Await(ctx, id)
					if err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		// Let some passes happen, then stop mid-flight.
		time.Sleep(time.Duration(trial%5) * 100 * time.Microsecond)
		b.Stop()
		for i := 0; i < 3; i++ {
			select {
			case err := <-errs:
				if !errors.Is(err, ErrStopped) {
					t.Fatalf("trial %d: Await returned %v, want ErrStopped", trial, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("trial %d: Await deadlocked against Stop", trial)
			}
		}
		cancel()
		b.Stop() // second Stop after the race: still fine
	}
}

// Stop and Halt interleaved from concurrent goroutines: both quiesce the
// ring, neither panics, and subsequent Awaits fail fast with the
// corresponding sentinel.
func TestStopHaltInterleaved(t *testing.T) {
	b, err := New(Config{Participants: 3, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%2 == 0 {
				b.Stop()
			} else {
				b.Halt()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("interleaved Stop/Halt did not all return")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := b.Await(ctx, 0); !errors.Is(err, ErrStopped) && !errors.Is(err, ErrHalted) {
		t.Errorf("Await after Stop+Halt returned %v, want ErrStopped or ErrHalted", err)
	}
}
