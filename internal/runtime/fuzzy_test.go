package runtime

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Fuzzy barriers: after Enter, a participant may perform unordered work
// while slower participants are still in their ordered phase; Leave then
// blocks until the barrier opens. This test proves the overlap actually
// happens: the fast workers' fuzzy work completes while the slow worker
// has not yet entered.
func TestFuzzyBarrierOverlapsWork(t *testing.T) {
	const n = 4
	b, err := New(Config{Participants: n, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var slowEntered atomic.Bool
	var fuzzyBeforeSlow atomic.Int32

	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			if id == 0 {
				// The slow worker: long ordered phase.
				time.Sleep(20 * time.Millisecond)
				slowEntered.Store(true)
				if err := b.Enter(ctx, 0); err != nil {
					t.Errorf("slow enter: %v", err)
					return
				}
			} else {
				if err := b.Enter(ctx, id); err != nil {
					t.Errorf("worker %d enter: %v", id, err)
					return
				}
				// Fuzzy (unordered) work between Enter and Leave.
				if !slowEntered.Load() {
					fuzzyBeforeSlow.Add(1)
				}
			}
			if _, err := b.Leave(ctx, id); err != nil {
				t.Errorf("worker %d leave: %v", id, err)
			}
		}()
	}
	wg.Wait()
	if fuzzyBeforeSlow.Load() != n-1 {
		t.Errorf("only %d/%d fast workers did fuzzy work before the slow worker entered",
			fuzzyBeforeSlow.Load(), n-1)
	}
}

// Leave still provides the full barrier: nobody returns from Leave before
// every participant has entered.
func TestLeaveWaitsForAllEnters(t *testing.T) {
	const n = 3
	b, err := New(Config{Participants: n, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var entered atomic.Int32
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(id) * 3 * time.Millisecond)
			if err := b.Enter(ctx, id); err != nil {
				t.Errorf("enter %d: %v", id, err)
				return
			}
			entered.Add(1)
			if _, err := b.Leave(ctx, id); err != nil {
				t.Errorf("leave %d: %v", id, err)
				return
			}
			if got := entered.Load(); got != n {
				t.Errorf("worker %d left with only %d/%d entered", id, got, n)
			}
		}()
	}
	wg.Wait()
}

// Enter+Leave composes across rounds exactly like Await.
func TestFuzzyRounds(t *testing.T) {
	const n, rounds = 3, 15
	b, err := New(Config{Participants: n, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := b.Enter(ctx, id); err != nil {
					t.Errorf("enter: %v", err)
					return
				}
				if _, err := b.Leave(ctx, id); err != nil {
					t.Errorf("leave: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestFuzzyRangeChecks(t *testing.T) {
	b, err := New(Config{Participants: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if err := b.Enter(context.Background(), 5); err == nil {
		t.Error("out-of-range Enter should fail")
	}
	if _, err := b.Leave(context.Background(), -1); err == nil {
		t.Error("out-of-range Leave should fail")
	}
}

// A reset that lands between Enter and Leave either voids the pending work
// (reset before the completion was consumed → ErrReset, redo) or only
// loses protocol state (reset after → the repeat instance re-uses the work
// and Leave returns a normal pass). Both outcomes must compose into
// continued progress.
func TestResetBetweenEnterAndLeave(t *testing.T) {
	const n = 3
	b, err := New(Config{Participants: n, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Keep the other participants looping so waves flow.
	bg, bgCancel := context.WithCancel(ctx)
	defer bgCancel()
	for id := 1; id < n; id++ {
		id := id
		go func() {
			for {
				if _, err := b.Await(bg, id); err != nil && !errors.Is(err, ErrReset) {
					return
				}
			}
		}()
	}

	if err := b.Enter(ctx, 0); err != nil {
		t.Fatal(err)
	}
	b.Reset(0)
	_, err = b.Leave(ctx, 0)
	switch {
	case err == nil:
		// The completion had been consumed before the reset: the repeat
		// instance re-used the work and the barrier passed normally.
	case errors.Is(err, ErrReset):
		// The reset voided the pending work: redo and pass.
		if _, err := b.Await(ctx, 0); err != nil {
			t.Fatalf("redo failed: %v", err)
		}
	default:
		t.Fatalf("Leave after mid-barrier reset returned %v", err)
	}
	// Either way, further barriers flow.
	if _, err := b.Await(ctx, 0); err != nil && !errors.Is(err, ErrReset) {
		t.Fatalf("follow-up barrier failed: %v", err)
	}
}
