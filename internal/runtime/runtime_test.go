package runtime

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// collector is a thread-safe event recorder feeding a SpecChecker.
type collector struct {
	mu      sync.Mutex
	checker *core.SpecChecker
}

func newCollector(n, nPhases int) *collector {
	return &collector{checker: core.NewSpecChecker(n, nPhases)}
}

func (c *collector) sink(e core.Event) {
	c.mu.Lock()
	c.checker.Observe(e)
	c.mu.Unlock()
}

func (c *collector) violation() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checker.Violation()
}

func (c *collector) successes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checker.SuccessfulBarriers()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Participants: 1}); err == nil {
		t.Error("single participant should be rejected")
	}
	if _, err := New(Config{Participants: 4, NPhases: 1}); err == nil {
		t.Error("single phase should be rejected")
	}
	if _, err := New(Config{Participants: 4, L: 7}); err == nil {
		t.Error("L ≤ 2N+1 should be rejected")
	}
	if _, err := New(Config{Participants: 4, LossRate: 1.5}); err == nil {
		t.Error("loss rate ≥ 1 should be rejected")
	}
	b, err := New(Config{Participants: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if b.N() != 2 || b.NumPhases() != 8 {
		t.Error("defaults wrong")
	}
}

// runWorkers drives nWorkers goroutines through `rounds` barrier passes,
// redoing phases on ErrReset, and returns the per-worker pass counts.
func runWorkers(t *testing.T, b *Barrier, rounds int, work func(id, round int)) []int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	passes := make([]int, b.N())
	var wg sync.WaitGroup
	errs := make(chan error, b.N())
	for id := 0; id < b.N(); id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; {
				if work != nil {
					work(id, round)
				}
				_, err := b.Await(ctx, id)
				switch {
				case err == nil:
					passes[id]++
					round++
				case errors.Is(err, ErrReset):
					// Phase work lost: redo the same round.
				default:
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("worker failed: %v", err)
	default:
	}
	return passes
}

func TestFaultFreeBarriers(t *testing.T) {
	col := newCollector(4, 8)
	b, err := New(Config{Participants: 4, EventSink: col.sink, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	passes := runWorkers(t, b, 25, nil)
	for id, c := range passes {
		if c != 25 {
			t.Errorf("worker %d passed %d barriers, want 25", id, c)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatal(err)
	}
	if col.successes() < 25 {
		t.Errorf("checker saw %d successful barriers, want ≥ 25", col.successes())
	}
}

// The barrier actually synchronizes: no worker may start round r+1 before
// every worker finished round r.
func TestBarrierSemantics(t *testing.T) {
	const n, rounds = 6, 20
	b, err := New(Config{Participants: n, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	var mu sync.Mutex
	inRound := make([]int, n) // the round each worker is currently in
	runWorkers(t, b, rounds, func(id, round int) {
		mu.Lock()
		inRound[id] = round
		for _, r := range inRound {
			if r < round-1 || r > round+1 {
				mu.Unlock()
				t.Errorf("worker %d in round %d while another is in round %d", id, round, r)
				mu.Lock()
			}
		}
		mu.Unlock()
	})
}

// Message loss is a detectable communication fault: with a 20% drop rate
// on every protocol message, every barrier still executes correctly
// (masking), thanks to the retransmission of current state.
func TestMessageLossMasked(t *testing.T) {
	col := newCollector(5, 8)
	b, err := New(Config{
		Participants: 5,
		LossRate:     0.2,
		Resend:       100 * time.Microsecond,
		EventSink:    col.sink,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	passes := runWorkers(t, b, 15, nil)
	for id, c := range passes {
		if c != 15 {
			t.Errorf("worker %d passed %d barriers under message loss, want 15", id, c)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatal(err)
	}
}

// Process resets (fail-stop + restart) are masked: workers redo lost phases
// and the barrier specification holds throughout.
func TestProcessResetMasked(t *testing.T) {
	const n = 4
	col := newCollector(n, 8)
	b, err := New(Config{Participants: n, EventSink: col.sink, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				b.Reset(i % n)
			}
		}
	}()

	passes := runWorkers(t, b, 30, nil)
	close(stop)
	injector.Wait()

	for id, c := range passes {
		if c != 30 {
			t.Errorf("worker %d passed %d barriers under resets, want 30", id, c)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatalf("safety violated under process resets: %v", err)
	}
}

// A reset participant is told exactly what the paper prescribes: the
// current phase must be re-executed.
func TestResetDeliversErrReset(t *testing.T) {
	const n = 3
	b, err := New(Config{Participants: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Workers 1..n-1 loop forever in the background.
	bg, bgCancel := context.WithCancel(ctx)
	defer bgCancel()
	for id := 1; id < n; id++ {
		id := id
		go func() {
			for {
				if _, err := b.Await(bg, id); err != nil && !errors.Is(err, ErrReset) {
					return
				}
			}
		}()
	}

	// Reset worker 0's process while it is "working" (not awaiting).
	b.Reset(0)
	time.Sleep(2 * time.Millisecond)
	if _, err := b.Await(ctx, 0); !errors.Is(err, ErrReset) {
		t.Fatalf("Await after reset returned %v, want ErrReset", err)
	}
	// The redo then passes normally.
	if _, err := b.Await(ctx, 0); err != nil {
		t.Fatalf("redo Await returned %v", err)
	}
}

// Undetectable faults (scrambled state) stabilize: after the scramble,
// workers keep looping and eventually barriers flow correctly again.
func TestScrambleStabilizes(t *testing.T) {
	const n = 4
	b, err := New(Config{Participants: n, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var passed [4]chan struct{}
	for i := range passed {
		passed[i] = make(chan struct{}, 1024)
	}
	bg, bgCancel := context.WithCancel(ctx)
	defer bgCancel()
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := b.Await(bg, id)
				if err == nil {
					select {
					case passed[id] <- struct{}{}:
					default:
					}
				} else if !errors.Is(err, ErrReset) {
					return
				}
			}
		}()
	}

	// Let it run, scramble everyone, then require 5 more passes per worker.
	time.Sleep(5 * time.Millisecond)
	for id := 0; id < n; id++ {
		b.Scramble(id, int64(100+id))
	}
	deadline := time.After(20 * time.Second)
	for id := 0; id < n; id++ {
		for k := 0; k < 5; k++ {
			select {
			case <-passed[id]:
			case <-deadline:
				t.Fatalf("worker %d made no progress after scramble", id)
			}
		}
	}
	bgCancel()
	wg.Wait()
}

// Fail-safe mode (Table 1): after Halt, no completion is ever reported.
func TestHaltIsFailSafe(t *testing.T) {
	const n = 3
	b, err := New(Config{Participants: n, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// One worker reaches the barrier, then the barrier halts.
	done := make(chan error, 1)
	go func() {
		_, err := b.Await(ctx, 0)
		done <- err
	}()
	time.Sleep(time.Millisecond)
	b.Halt()
	if !b.Halted() {
		t.Error("Halted() should report true after Halt")
	}
	if err := <-done; !errors.Is(err, ErrHalted) {
		t.Fatalf("outstanding Await returned %v, want ErrHalted", err)
	}
	if _, err := b.Await(ctx, 1); !errors.Is(err, ErrHalted) {
		t.Fatalf("subsequent Await returned %v, want ErrHalted", err)
	}
}

func TestStopUnblocksAwaits(t *testing.T) {
	b, err := New(Config{Participants: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Await(context.Background(), 0)
		done <- err
	}()
	time.Sleep(time.Millisecond)
	b.Stop()
	if err := <-done; !errors.Is(err, ErrStopped) {
		t.Fatalf("Await returned %v, want ErrStopped", err)
	}
}

func TestContextCancellation(t *testing.T) {
	b, err := New(Config{Participants: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Await(ctx, 0)
		done <- err
	}()
	time.Sleep(time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Await returned %v, want context.Canceled", err)
	}
}

func TestAwaitRange(t *testing.T) {
	b, err := New(Config{Participants: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if _, err := b.Await(context.Background(), -1); err == nil {
		t.Error("negative id should be rejected")
	}
	if _, err := b.Await(context.Background(), 2); err == nil {
		t.Error("out-of-range id should be rejected")
	}
}

// Phases advance modulo NumPhases in sequence.
func TestPhaseSequence(t *testing.T) {
	const n, nPhases = 3, 4
	b, err := New(Config{Participants: n, NPhases: nPhases, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	phases := make([][]int, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				ph, err := b.Await(ctx, id)
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
				phases[id] = append(phases[id], ph)
			}
		}()
	}
	wg.Wait()
	for id := 0; id < n; id++ {
		for k, ph := range phases[id] {
			if want := (k + 1) % nPhases; ph != want {
				t.Fatalf("worker %d pass %d released phase %d, want %d (%v)",
					id, k, ph, want, phases[id])
			}
		}
	}
}

// Stress: combined message loss and resets under the race detector.
func TestStressLossAndResets(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 8
	col := newCollector(n, 8)
	b, err := New(Config{
		Participants: n,
		LossRate:     0.1,
		Resend:       100 * time.Microsecond,
		EventSink:    col.sink,
		Seed:         12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
				b.Reset(i % n)
				i++
			}
		}
	}()

	passes := runWorkers(t, b, 40, nil)
	close(stop)
	injector.Wait()
	for id, c := range passes {
		if c != 40 {
			t.Errorf("worker %d passed %d barriers, want 40", id, c)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatalf("safety violated under stress: %v", err)
	}
}

// Detected message corruption is equivalent to loss: with 15% of messages
// garbled in flight, the integrity check drops them, retransmission masks
// the damage, and every barrier executes correctly.
func TestDetectedCorruptionMasked(t *testing.T) {
	col := newCollector(4, 8)
	b, err := New(Config{
		Participants: 4,
		CorruptRate:  0.15,
		Resend:       100 * time.Microsecond,
		EventSink:    col.sink,
		Seed:         30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	passes := runWorkers(t, b, 15, nil)
	for id, c := range passes {
		if c != 15 {
			t.Errorf("worker %d passed %d barriers under corruption, want 15", id, c)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Drops == 0 {
		t.Error("no corrupted messages were dropped — corruption injection inert?")
	}
	if st.Passes < int64(4*15) {
		t.Errorf("stats recorded %d passes, want ≥ 60", st.Passes)
	}
}

func TestCorruptRateValidation(t *testing.T) {
	if _, err := New(Config{Participants: 2, CorruptRate: 1.5}); err == nil {
		t.Error("corrupt rate ≥ 1 should be rejected")
	}
}

// Spurious messages ("unexpected message reception") are absorbed: the
// receiver's copy cell may be perturbed, but the predecessor's ongoing
// retransmissions override it and barriers keep flowing.
func TestSpuriousMessagesAbsorbed(t *testing.T) {
	const n = 4
	b, err := New(Config{Participants: n, Resend: 100 * time.Microsecond, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	// A deterministic burst up front (so the counter is guaranteed to move
	// even on a fast machine), plus a background sprayer during the run.
	for i := 0; i < 2*n; i++ {
		b.InjectSpurious(i%n, int64(500+i))
	}
	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(500 * time.Microsecond):
				b.InjectSpurious(i%n, int64(1000+i))
			}
		}
	}()

	passes := runWorkers(t, b, 25, nil)
	close(stop)
	injector.Wait()
	for id, c := range passes {
		if c != 25 {
			t.Errorf("worker %d passed %d barriers under spurious messages, want 25", id, c)
		}
	}
	if b.Stats().Spurious == 0 {
		t.Error("no spurious messages recorded")
	}
}

// Stats counters move in the expected directions.
func TestStats(t *testing.T) {
	b, err := New(Config{Participants: 2, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	runWorkers(t, b, 5, nil)
	st := b.Stats()
	if st.Passes != 10 {
		t.Errorf("passes = %d, want 10 (2 workers × 5 rounds)", st.Passes)
	}
	if st.Sends == 0 {
		t.Error("no sends recorded")
	}
	if st.Drops != 0 || st.Spurious != 0 {
		t.Errorf("unexpected drops/spurious: %+v", st)
	}
	b.Reset(0)
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Worker 0 sees the reset on its next Await; worker 1 keeps looping in
	// the background so the ring can drain.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			if _, err := b.Await(ctx, 1); err != nil && !errors.Is(err, ErrReset) {
				return
			}
		}
	}()
	if _, err := b.Await(ctx, 0); !errors.Is(err, ErrReset) {
		t.Fatalf("expected ErrReset, got %v", err)
	}
	if b.Stats().Resets == 0 {
		t.Error("reset not recorded in stats")
	}
	cancel()
	<-done
}

// Chaos soak: every fault class at once — message loss, detected
// corruption, spurious messages, process resets, and occasional scrambles.
// Scrambles void the specification transiently, so the assertion is pure
// liveness: every worker keeps making progress to the end.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	const n = 6
	b, err := New(Config{
		Participants: n,
		LossRate:     0.05,
		CorruptRate:  0.05,
		Resend:       100 * time.Microsecond,
		Seed:         40,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			switch i % 7 {
			case 0, 1, 2:
				b.Reset(i % n)
			case 3, 4:
				b.InjectSpurious((i+1)%n, int64(i))
			case 5:
				b.Scramble((i+2)%n, int64(i))
			case 6:
				// quiet tick: let the ring stabilize
			}
		}
	}()

	// Workers keep participating until everyone reached the target: under
	// scrambles, pass counts may transiently skew, and a worker that left
	// at its personal target could stall the rest.
	const wantPasses = 40
	runCtx, runCancel := context.WithCancel(ctx)
	defer runCancel()
	var passes [n]int64
	allDone := func() bool {
		for i := range passes {
			if atomic.LoadInt64(&passes[i]) < wantPasses {
				return false
			}
		}
		return true
	}
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := b.Await(runCtx, id)
				switch {
				case err == nil:
					atomic.AddInt64(&passes[id], 1)
					if allDone() {
						runCancel()
						return
					}
				case errors.Is(err, ErrReset):
					// redo
				case errors.Is(err, context.Canceled):
					return
				default:
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	injector.Wait()
	for id := range passes {
		if c := atomic.LoadInt64(&passes[id]); c < wantPasses {
			t.Errorf("worker %d only passed %d/%d barriers under chaos", id, c, wantPasses)
		}
	}
	st := b.Stats()
	t.Logf("chaos stats: %+v", st)
	if st.Drops == 0 || st.Spurious == 0 || st.Resets == 0 {
		t.Errorf("chaos did not exercise all fault paths: %+v", st)
	}
}

// The ring protocol scales past toy sizes: 16 participants with faults.
func TestSixteenParticipants(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const n = 16
	col := newCollector(n, 8)
	b, err := New(Config{Participants: n, EventSink: col.sink, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				b.Reset(i % n)
			}
		}
	}()

	passes := runWorkers(t, b, 15, nil)
	close(stop)
	injector.Wait()
	for id, c := range passes {
		if c != 15 {
			t.Errorf("worker %d passed %d barriers, want 15", id, c)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatalf("safety violated at 16 participants: %v", err)
	}
}
