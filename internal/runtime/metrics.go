package runtime

import (
	"time"

	"repro/internal/obsv"
)

// This file is the barrier's observability surface: the live versions of
// the paper's Section 6 measurements, recorded on the protocol goroutines
// without allocating and exported through an obsv.Registry.
//
// The budget is set by the fused tree scheduler — 0 allocs/op at ~58µs
// per 32-member pass — so recording is restricted to plain field updates
// on state the protocol goroutine already owns, plus a histogram Observe
// (a short bounded scan and two atomic adds) on sampled or rare events:
//
//   - barrier_instances_per_pass (Fig 3/5): re-executed instances are
//     always recorded exactly (they only happen under faults, which are
//     rare); the fault-free value 1 is sampled 1-in-8. The exact pass
//     denominator is barrier_passes_total, not the histogram count.
//   - barrier_phase_seconds (Fig 4/6): pass-to-pass latency of one pass
//     in every 8, timed with two time.Now calls per sample.
//   - barrier_recovery_seconds (Fig 7): injected reset/scramble to the
//     next delivered pass, recorded on every fault (faults are cold).

// newHistograms allocates the measurement histograms. They exist whether
// or not a registry is configured, so the recording paths are branch-free.
// label is Config.MetricLabel ("" keeps the unlabelled names).
func (b *Barrier) newHistograms(label string) {
	b.mInstances = obsv.NewHistogram(obsv.WithLabel("barrier_instances_per_pass", label),
		"Protocol instances consumed per delivered pass (Fig 3/5; 1 = fault-free, sampled 1-in-8; >1 = re-executions, recorded exactly).",
		obsv.LinearBuckets(1, 1, 8))
	b.mPhase = obsv.NewHistogram(obsv.WithLabel("barrier_phase_seconds", label),
		"Pass-to-pass barrier latency in seconds, sampled 1-in-8 per member (live Fig 4/6 overhead).",
		obsv.ExpBuckets(16e-6, 2, 16)) // 16µs .. ~0.5s
	b.mRecovery = obsv.NewHistogram(obsv.WithLabel("barrier_recovery_seconds", label),
		"Injected reset/scramble to next delivered pass, seconds (live Fig 7; paper bound ≤ 5hc).",
		obsv.ExpBuckets(16e-6, 2, 16))
}

// registerMetrics installs the exported series. Counter values ride the
// existing atomics via scrape-time funcs, so enabling metrics changes
// nothing on the protocol paths. label, when non-empty, is merged into
// every series name so per-group barriers can share one registry.
func (b *Barrier) registerMetrics(r *obsv.Registry, topology Topology, label string) error {
	topoName := "ring"
	switch topology {
	case TopologyTree:
		topoName = "tree"
	case TopologyHybrid:
		topoName = "hybrid"
	}
	name := func(base string) string { return obsv.WithLabel(base, label) }
	metrics := []obsv.Metric{
		obsv.NewCounterFunc(name("barrier_passes_total"),
			"Barrier passes delivered to participants.", b.statPasses.Load),
		obsv.NewCounterFunc(name("barrier_resets_total"),
			"ErrReset results delivered to participants (phase work voided by a detectable fault).", b.statResets.Load),
		obsv.NewCounterFunc(name("barrier_sends_total"),
			"Protocol messages sent.", b.statSends.Load),
		obsv.NewCounterFunc(name("barrier_drops_total"),
			"Protocol messages lost or dropped as detected-corrupt.", b.statDrops.Load),
		obsv.NewCounterFunc(name("barrier_spurious_total"),
			"Spurious (undetectably forged) messages injected.", b.statSpurious.Load),
		obsv.NewCounterFunc(name("barrier_injected_resets_total"),
			"Reset fault injections accepted for delivery.", b.statInjResets.Load),
		obsv.NewCounterFunc(name("barrier_injected_scrambles_total"),
			"Scramble fault injections accepted for delivery.", b.statInjScrambles.Load),
		obsv.NewCounterFunc(name("barrier_injected_crashes_total"),
			"Crash fault injections accepted for delivery.", b.statInjCrashes.Load),
		obsv.NewCounterFunc(name("barrier_injected_restarts_total"),
			"Restart (crash-recovery) injections accepted for delivery.", b.statInjRestarts.Load),
		obsv.NewCounterFunc(name("barrier_injected_byz_total"),
			"Byzantine forgeries accepted for delivery.", b.statInjByz.Load),
		obsv.NewCounterFunc(name("barrier_injections_dropped_total"),
			"Fault injections discarded because the target's control buffer was full.", b.statInjDropped.Load),
		obsv.NewCounterFunc(name(`barrier_rejected_frames_total{reason="seqwindow"}`),
			"Frames rejected: sequence number outside the edge's legal receive window.", b.statRejSeq.Load),
		obsv.NewCounterFunc(name(`barrier_rejected_frames_total{reason="phasewindow"}`),
			"Frames rejected: phase outside the legal window, or a current-wave acknowledgment with a foreign phase.", b.statRejPhase.Load),
		obsv.NewCounterFunc(name(`barrier_rejected_frames_total{reason="topwindow"}`),
			"Frames rejected: ⊤ restart marker received by a settled process.", b.statRejTop.Load),
		obsv.NewCounterFunc(name(`barrier_rejected_frames_total{reason="sender"}`),
			"Frames rejected: claimed sender does not exist on the receiving edge.", b.statRejSender.Load),
		obsv.NewCounterFunc(name("barrier_wasted_instances_total"),
			"Protocol instances consumed beyond one per delivered pass (re-executions forced by faults; the wasted-work-per-fault numerator).", b.statWasted.Load),
		obsv.NewGaugeFunc(name("barrier_participants"),
			"Configured participant count.", func() int64 { return int64(b.n) }),
		obsv.NewGaugeFunc(name(`barrier_topology{topology="`+topoName+`"}`),
			"Barrier topology in use (value is always 1; the label carries the name).", func() int64 { return 1 }),
		obsv.NewGaugeFunc(name("barrier_halted"),
			"1 if the barrier is fail-safe halted, else 0.", func() int64 {
				if b.Halted() {
					return 1
				}
				return 0
			}),
		b.mInstances,
		b.mPhase,
		b.mRecovery,
	}
	registered := make([]string, 0, len(metrics))
	for _, m := range metrics {
		if err := r.Register(m); err != nil {
			for _, n := range registered {
				r.Unregister(n)
			}
			return err
		}
		registered = append(registered, m.Name())
	}
	b.metricsReg = r
	b.metricNames = registered
	return nil
}

// UnregisterMetrics removes the barrier's series from the registry it was
// created with. Call it after Stop when the registry outlives the barrier
// — a torn-down tenant group whose successor (a rejoin) will register the
// same labelled names. Safe to call on a barrier without a registry, and
// idempotent.
func (b *Barrier) UnregisterMetrics() {
	if b.metricsReg == nil {
		return
	}
	for _, n := range b.metricNames {
		b.metricsReg.Unregister(n)
	}
	b.metricsReg = nil
	b.metricNames = nil
}

// observePass records the per-pass measurements. Called by the owning
// protocol goroutine at the pass commit point, immediately before the
// pass is counted and delivered.
func (g *gate) observePass() {
	n := g.beginsSince
	g.beginsSince = 0
	seq := g.passSeq
	g.passSeq++
	if n > 1 {
		g.b.statWasted.Add(n - 1)
	}
	if n != 1 || seq&7 == 0 {
		g.b.mInstances.Observe(float64(n))
	}
	if g.faultAtNs != 0 {
		g.b.mRecovery.Observe(float64(time.Now().UnixNano()-g.faultAtNs) / 1e9)
		g.faultAtNs = 0
	}
	// Pass-to-pass latency: arm at seq ≡ 7 (mod 8), observe the very next
	// pass. Only sampled passes pay for time.Now.
	switch seq & 7 {
	case 7:
		g.sampleStartNs = time.Now().UnixNano()
	case 0:
		if g.sampleStartNs != 0 {
			g.b.mPhase.Observe(float64(time.Now().UnixNano()-g.sampleStartNs) / 1e9)
			g.sampleStartNs = 0
		}
	}
}

// noteFault timestamps an injected reset/scramble for the recovery
// histogram. Called by the owning protocol goroutine from its control
// handler (cold path: faults are rare by assumption — the paper's
// Section 4 failure model).
func (g *gate) noteFault() {
	g.faultAtNs = time.Now().UnixNano()
}
