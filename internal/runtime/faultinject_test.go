package runtime

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// waitQuiesced waits for every protocol goroutine to exit, so white-box
// tests may touch proc channels without racing the ring.
func waitQuiesced(t *testing.T, b *Barrier) {
	t.Helper()
	done := make(chan struct{})
	go func() { b.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("protocol goroutines did not exit")
	}
}

// Halt quiesces the ring: the protocol goroutines exit instead of
// retransmitting state forever into a barrier that can never complete.
func TestHaltQuiescesRing(t *testing.T) {
	b, err := New(Config{Participants: 3, Resend: 50 * time.Microsecond, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	// Let the ring exchange some traffic, then halt.
	time.Sleep(2 * time.Millisecond)
	b.Halt()
	waitQuiesced(t, b)

	// With the goroutines gone, the send counter must be frozen.
	before := b.Stats().Sends
	time.Sleep(5 * time.Millisecond)
	if after := b.Stats().Sends; after != before {
		t.Errorf("ring still transmitting after Halt: sends %d -> %d", before, after)
	}
	// Fail-safe semantics are preserved.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := b.Await(ctx, 0); !errors.Is(err, ErrHalted) {
		t.Errorf("Await after Halt returned %v, want ErrHalted", err)
	}
}

// A spurious message must not displace a genuine in-flight announcement:
// the mailbox keeps the real message and the spurious one is dropped.
func TestSpuriousDoesNotDisplaceGenuine(t *testing.T) {
	b, err := New(Config{Participants: 3, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	// Freeze the ring so the mailbox can be inspected without racing it.
	b.Halt()
	waitQuiesced(t, b)

	p := b.lanes[0].procs[1]
	for {
		select {
		case <-p.state:
			continue
		default:
		}
		break
	}
	genuine := Message{SN: 2, CP: core.Execute, PH: 1}
	genuine.Sum = genuine.Checksum()
	if !p.link.InjectState(genuine) {
		t.Fatal("drained mailbox rejected the genuine announcement")
	}

	dropsBefore := b.Stats().Drops
	b.InjectSpurious(1, 12345)

	if got := b.Stats().Spurious; got != 1 {
		t.Errorf("Spurious counter = %d, want 1", got)
	}
	if got := b.Stats().Drops; got != dropsBefore+1 {
		t.Errorf("losing spurious message not accounted: drops %d, want %d", got, dropsBefore+1)
	}
	select {
	case m := <-p.state:
		if m != genuine {
			t.Errorf("mailbox holds %+v, want the genuine announcement %+v", m, genuine)
		}
	default:
		t.Error("mailbox empty: genuine announcement was discarded")
	}
}

// Reset and Scramble never block the caller, even when a process's control
// buffer is full; overflow is accounted in DroppedInjections.
func TestInjectionNonBlocking(t *testing.T) {
	const n = 3
	b, err := New(Config{Participants: n, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	// Freeze the ring so the ctrl buffers only fill.
	b.Halt()
	waitQuiesced(t, b)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4*(n+4); i++ {
			b.Reset(1)
			b.Scramble(1, int64(i))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fault injection blocked on a full control buffer")
	}
	if got := b.Stats().DroppedInjections; got == 0 {
		t.Error("overflowing injections were not counted as dropped")
	}
	// Out-of-range injections are ignored, not panics.
	b.Reset(-1)
	b.Reset(n)
	b.Scramble(99, 1)
}

// A fault can teleport a process's protocol state straight into an
// executing control position without the begin that re-arms the work gate;
// the completion transition must then reconcile with the waiting
// participant (via ErrReset) instead of deadlocking against it. Regression
// for a wedge found by the conformance fuzzer:
//
//	runtime:n=4:ph=3:seed=1:sched=random:loss=0.05:corrupt=0.05:ops=s,u0:2050257992909156333
func TestScrambleTeleportWedgeRecovers(t *testing.T) {
	const n = 4
	for attempt := 0; attempt < 10; attempt++ {
		b, err := New(Config{Participants: n, NPhases: 3, Resend: 50 * time.Microsecond,
			LossRate: 0.05, CorruptRate: 0.05, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var passes [n]atomic.Int64
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					_, err := b.Await(ctx, id)
					if err == nil {
						passes[id].Add(1)
					} else if !errors.Is(err, ErrReset) {
						return
					}
				}
			}()
		}
		time.Sleep(200 * time.Microsecond)
		b.Scramble(0, 2050257992909156333)

		deadline := time.Now().Add(20 * time.Second)
		for id := 0; id < n; id++ {
			for passes[id].Load() < 5 {
				if time.Now().After(deadline) {
					t.Fatalf("attempt %d: worker %d wedged after scramble", attempt, id)
				}
				time.Sleep(time.Millisecond)
			}
		}
		cancel()
		wg.Wait()
		b.Stop()
	}
}

// Combined message loss, corruption, detectable resets and undetectable
// scrambles, end-to-end against the specification checker: after the chaos
// stops, the observable event trace must contain a suffix that satisfies
// the barrier specification with fresh successful barriers (stabilizing
// tolerance), and every participant must keep passing. Run with -race.
func TestCombinedFaultChaosAgainstSpec(t *testing.T) {
	const (
		n       = 4
		nPhases = 3
	)
	var (
		mu    sync.Mutex
		trace []core.Event
	)
	b, err := New(Config{
		Participants: n,
		NPhases:      nPhases,
		Resend:       50 * time.Microsecond,
		LossRate:     0.1,
		CorruptRate:  0.1,
		Seed:         34,
		EventSink: func(e core.Event) {
			mu.Lock()
			trace = append(trace, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var passes [n]atomic.Int64
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := b.Await(ctx, id)
				if err == nil {
					passes[id].Add(1)
				} else if !errors.Is(err, ErrReset) {
					return
				}
			}
		}()
	}

	// Chaos: interleave resets, scrambles and spurious messages on top of
	// the configured message loss and corruption.
	for i := 0; i < 40; i++ {
		switch i % 4 {
		case 0:
			b.Reset(i % n)
		case 1:
			b.InjectSpurious((i+1)%n, int64(i))
		case 2:
			b.Scramble((i+2)%n, int64(1000+i))
		case 3:
			// Let the ring breathe between fault bursts.
		}
		time.Sleep(500 * time.Microsecond)
	}

	// Liveness: every participant gains 5 fresh passes after faults stop.
	var base [n]int64
	for id := range base {
		base[id] = passes[id].Load()
	}
	deadline := time.Now().Add(30 * time.Second)
	for id := 0; id < n; id++ {
		for passes[id].Load() < base[id]+5 {
			if time.Now().After(deadline) {
				t.Fatalf("worker %d made no progress after chaos stopped", id)
			}
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	wg.Wait()
	b.Stop()

	// Stabilization: the trace ends in a spec-satisfying suffix.
	mu.Lock()
	defer mu.Unlock()
	start, ok := core.SuffixSatisfying(trace, n, nPhases, 3)
	if !ok {
		t.Fatalf("no stabilizing suffix in %d-event trace after combined faults", len(trace))
	}
	t.Logf("stabilized: suffix of %d/%d events satisfies the spec", len(trace)-start, len(trace))

	// Sanity: the ring actually exercised the fault paths.
	st := b.Stats()
	if st.Drops == 0 || st.Spurious == 0 {
		t.Errorf("chaos did not exercise fault paths: %+v", st)
	}
}
