package runtime

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tokenring"
)

// haltedRing builds a fault-free ring, lets it exchange traffic, then
// freezes it so the test may drive a proc's receive path directly —
// the deterministic replay of what a wire-level forger injects.
func haltedRing(t *testing.T, n, nPhases int, seed int64) *Barrier {
	t.Helper()
	b, err := New(Config{Participants: n, NPhases: nPhases, Resend: 50 * time.Microsecond, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Stop)
	time.Sleep(2 * time.Millisecond)
	b.Halt()
	waitQuiesced(t, b)
	return b
}

// The deterministic regression for the forged-frame hole found by the
// conformance fuzzer: a single well-formed, valid-checksum frame carrying
// an in-window sequence number but a foreign phase used to be adopted by
// the follower update and could complete a barrier at the wrong phase.
// With the receive windows in place the frame is rejected, counted under
// reason="phasewindow", and held as a pending sighting; only a
// bit-identical second sighting — which a single forger by definition is
// not — may confirm it.
func TestForgedWrongPhaseFrameRejected(t *testing.T) {
	b := haltedRing(t, 3, 3, 41)
	p := b.lanes[0].procs[1]
	if !p.settled() {
		t.Fatalf("fault-free ring proc not settled: sn=%v cp=%v cpL=%v", p.sn, p.cp, p.cpL)
	}

	snL, cpL, phL := p.snL, p.cpL, p.phL
	lo, hi := p.stateWindow()
	forged := Message{SN: hi, CP: p.cpL, PH: (p.phL + 2) % b.nPhases}
	if forged.SN == p.snL {
		forged.SN = lo
	}
	forged.Sum = forged.Checksum()

	p.onPredState(forged)
	if p.snL != snL || p.cpL != cpL || p.phL != phL {
		t.Fatalf("forged frame adopted: copy (%v,%v,%d) -> (%v,%v,%d)",
			snL, cpL, phL, p.snL, p.cpL, p.phL)
	}
	st := b.Stats()
	if st.RejectedPhase != 1 {
		t.Fatalf("RejectedPhase = %d, want 1", st.RejectedPhase)
	}
	if !p.havePending || p.pending != forged {
		t.Fatal("rejected frame not held as the pending sighting")
	}

	// A genuine new frame — in-window sequence, in-window phase — is
	// adopted and clears the pending sighting, so a one-shot forgery can
	// never be confirmed by later genuine traffic.
	genuine := Message{SN: forged.SN, CP: p.cpL, PH: p.phL}
	genuine.Sum = genuine.Checksum()
	p.onPredState(genuine)
	if p.snL != genuine.SN {
		t.Fatalf("genuine in-window frame not adopted: snL=%v want %v", p.snL, genuine.SN)
	}
	if p.havePending {
		t.Fatal("pending sighting survived a genuine adoption")
	}
	if got := b.Stats(); got.RejectedPhase != 1 || got.RejectedSeq != 0 {
		t.Fatalf("genuine frame miscounted: RejectedPhase=%d RejectedSeq=%d", got.RejectedPhase, got.RejectedSeq)
	}
}

// A persistent adversary replaying the identical forgery is confirmed by
// the two-sighting rule — the documented degradation to the stabilizing
// tolerance class, no worse than the pre-defense behavior. The first
// sighting is rejected and counted; the bit-identical second is adopted.
func TestForgedFrameSecondSightingAdopted(t *testing.T) {
	b := haltedRing(t, 3, 3, 43)
	p := b.lanes[0].procs[2]
	lo, hi := p.stateWindow()
	forged := Message{SN: hi, CP: p.cpL, PH: (p.phL + 2) % b.nPhases}
	if forged.SN == p.snL {
		forged.SN = lo
	}
	forged.Sum = forged.Checksum()

	p.onPredState(forged)
	if p.snL == forged.SN {
		t.Fatal("first sighting adopted")
	}
	p.onPredState(forged)
	if p.snL != forged.SN || p.phL != forged.PH {
		t.Fatal("bit-identical second sighting not adopted (stabilization would livelock)")
	}
	if st := b.Stats(); st.RejectedPhase != 1 {
		t.Fatalf("RejectedPhase = %d, want exactly 1 (second sighting must not recount)", st.RejectedPhase)
	}
}

// A stale-sequence echo — a well-formed frame whose sequence number lies
// outside the receive window entirely — is rejected under
// reason="seqwindow".
func TestStaleSequenceEchoRejected(t *testing.T) {
	b := haltedRing(t, 3, 3, 44)
	p := b.lanes[0].procs[1]
	if b.l < 4 {
		t.Skipf("ring modulus %d too small to leave the follower window", b.l)
	}
	echo := Message{SN: tokenring.SN((int(p.sn) + 2) % b.l), CP: p.cpL, PH: p.phL}
	echo.Sum = echo.Checksum()
	if echo.SN == p.snL {
		t.Fatalf("test bug: echo SN %v collides with the current copy", echo.SN)
	}
	snL := p.snL
	p.onPredState(echo)
	if p.snL != snL {
		t.Fatal("stale echo adopted")
	}
	if st := b.Stats(); st.RejectedSeq != 1 {
		t.Fatalf("RejectedSeq = %d, want 1", st.RejectedSeq)
	}
}

// A forged premature ⊤ restart marker is rejected by any settled process:
// ⊤ only means something to a process already inside the restart wave.
func TestForgedTopRejected(t *testing.T) {
	b := haltedRing(t, 3, 3, 45)
	p := b.lanes[0].procs[1]
	if !p.sn.Ordinary() {
		t.Fatalf("fault-free proc has non-ordinary sn %v", p.sn)
	}
	snR := p.snR
	p.onTop()
	if p.snR != snR {
		t.Fatalf("premature ⊤ adopted: snR %v -> %v", snR, p.snR)
	}
	if st := b.Stats(); st.RejectedTop != 1 {
		t.Fatalf("RejectedTop = %d, want 1", st.RejectedTop)
	}
}

// The tree edges run the same defense: a wrong-phase parent announcement
// is rejected at the child, a wrong-phase acknowledgment of the parent's
// CURRENT wave is rejected at the parent, and a frame claiming a child
// this node does not have is a sender violation.
func TestTreeForgedFramesRejected(t *testing.T) {
	b, err := New(Config{Participants: 3, NPhases: 3, Topology: TopologyTree,
		Resend: 50 * time.Microsecond, Seed: 46})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	time.Sleep(2 * time.Millisecond)
	b.Halt()
	waitQuiesced(t, b)

	tprocs := b.lanes[0].tprocs
	var root, child *treeProc
	for _, tp := range tprocs {
		if tp == nil {
			continue
		}
		if tp.parentID < 0 {
			root = tp
		} else if child == nil {
			child = tp
		}
	}
	if root == nil || child == nil || len(root.kids) == 0 {
		t.Fatal("tree shape: no root with children")
	}
	if !root.settled() || !child.settled() {
		t.Fatal("fault-free tree procs not settled")
	}

	// Wrong-phase parent announcement at a child.
	down := Message{SN: tokenring.SN((int(child.sn) + 1) % b.l), CP: child.pCP, PH: (child.pPH + 2) % b.nPhases}
	down.Sum = down.Checksum()
	pSN, pPH := child.pSN, child.pPH
	child.onDown(down)
	if child.pSN != pSN || child.pPH != pPH {
		t.Fatal("forged parent announcement adopted at the child")
	}
	if st := b.Stats(); st.RejectedPhase != 1 {
		t.Fatalf("RejectedPhase = %d, want 1", st.RejectedPhase)
	}

	// Wrong-phase acknowledgment of the root's current wave: the exact
	// frame shape the original forgery used to complete a barrier at a
	// foreign phase.
	i := 0
	up := UpMessage{
		Child: root.kids[i],
		SN:    root.sn, CP: root.kidCP[i], PH: root.kidPH[i],
		AckSN: root.sn, AckCP: core.Success, AckPH: (root.ph + 1) % b.nPhases,
	}
	up.Sum = up.Checksum()
	ackSN, ackPH := root.kidAckSN[i], root.kidAckPH[i]
	root.onUp(up)
	if root.kidAckSN[i] != ackSN || root.kidAckPH[i] != ackPH {
		t.Fatal("forged current-wave acknowledgment adopted at the root")
	}
	if st := b.Stats(); st.RejectedPhase != 2 {
		t.Fatalf("RejectedPhase = %d, want 2", st.RejectedPhase)
	}

	// A frame from a child this node does not have.
	alien := up
	alien.Child = 99
	alien.Sum = alien.Checksum()
	root.onUp(alien)
	if st := b.Stats(); st.RejectedSender != 1 {
		t.Fatalf("RejectedSender = %d, want 1", st.RejectedSender)
	}
}

// Crash takes a member down — the ring stalls, as a barrier must when a
// participant is gone — and Restart revives it in the detectably-reset
// state, after which every member makes fresh progress.
func TestCrashRestartLive(t *testing.T) {
	const n = 3
	b, err := New(Config{Participants: n, NPhases: 3, Resend: 50 * time.Microsecond, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var passes [n]atomic.Int64
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := b.Await(ctx, id)
				switch {
				case err == nil:
					passes[id].Add(1)
				case errors.Is(err, ErrReset):
				default:
					return
				}
			}
		}()
	}

	waitForPasses := func(extra int64) {
		t.Helper()
		var base [n]int64
		for id := range base {
			base[id] = passes[id].Load()
		}
		deadline := time.Now().Add(20 * time.Second)
		for id := 0; id < n; id++ {
			for passes[id].Load() < base[id]+extra {
				if time.Now().After(deadline) {
					t.Fatalf("member %d stalled (wanted %d more passes)", id, extra)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	waitForPasses(2)

	b.Crash(1)
	// The crash lands asynchronously; after it does, no wave can complete
	// without member 1, so progress freezes up to the waves already in
	// flight.
	time.Sleep(10 * time.Millisecond)
	frozen := passes[0].Load()
	time.Sleep(20 * time.Millisecond)
	if got := passes[0].Load(); got > frozen+1 {
		t.Errorf("ring progressed %d passes with member 1 crashed", got-frozen)
	}

	b.Restart(1)
	waitForPasses(3)

	cancel()
	wg.Wait()
	st := b.Stats()
	if st.CrashesInjected != 1 || st.RestartsInjected != 1 {
		t.Errorf("injection accounting: crashes=%d restarts=%d, want 1/1", st.CrashesInjected, st.RestartsInjected)
	}
}

// A crashed member ignores everything but Restart: resets and scrambles
// land on a process that has no state left to lose.
func TestCrashedMemberIgnoresStateFaults(t *testing.T) {
	b := haltedRing(t, 3, 3, 48)
	p := b.lanes[0].procs[1]
	p.crashed = true
	sn, cp, ph := p.sn, p.cp, p.ph
	p.onCtrl(ctrlMsg{kind: ctrlReset})
	p.onCtrl(ctrlMsg{kind: ctrlScramble, seed: 7})
	if p.sn != sn || p.cp != cp || p.ph != ph {
		t.Fatal("crashed member's state changed under reset/scramble")
	}
	m := Message{SN: p.sn, CP: p.cpL, PH: p.phL}
	if m.SN == p.snL {
		m.SN = tokenring.SN((int(p.sn) + 1) % b.l)
	}
	m.Sum = m.Checksum()
	snL := p.snL
	p.onPredState(m)
	if p.snL != snL {
		t.Fatal("crashed member adopted a frame")
	}
	p.onCtrl(ctrlMsg{kind: ctrlRestart})
	if p.crashed {
		t.Fatal("Restart did not revive the member")
	}
	if p.sn != tokenring.Bot || p.cp != core.Error {
		t.Fatalf("restart did not reset: sn=%v cp=%v, want ⊥/error", p.sn, p.cp)
	}
}

// The live Byzantine adversary, end to end, on every topology: warmed-up
// rings reject every delivered forgery — the rejected-frames counters
// match the accepted injections exactly — and the specification stays
// clean: no barrier completes at a wrong phase.
func TestByzRejectedExactlyLive(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	const n = 4
	configs := map[string]Config{
		"ring":   {Participants: n, NPhases: 3, Seed: 49},
		"tree":   {Participants: n, NPhases: 3, Topology: TopologyTree, Seed: 49},
		"hybrid": {Participants: n, NPhases: 3, Topology: TopologyHybrid, Seed: 49, Hosts: [][]int{{0, 1}, {2, 3}}},
	}
	for _, name := range []string{"ring", "tree", "hybrid"} {
		cfg := configs[name]
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			checker := core.NewSpecChecker(n, 3)
			cfg.Resend = 50 * time.Microsecond
			cfg.EventSink = func(e core.Event) {
				mu.Lock()
				checker.Observe(e)
				mu.Unlock()
			}
			b, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Stop()

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var passes [n]atomic.Int64
			var wg sync.WaitGroup
			for id := 0; id < n; id++ {
				id := id
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						_, err := b.Await(ctx, id)
						switch {
						case err == nil:
							passes[id].Add(1)
						case errors.Is(err, ErrReset):
						default:
							return
						}
					}
				}()
			}
			waitFor := func(extra int64) {
				t.Helper()
				var base [n]int64
				for id := range base {
					base[id] = passes[id].Load()
				}
				deadline := time.Now().Add(20 * time.Second)
				for id := 0; id < n; id++ {
					for passes[id].Load() < base[id]+extra {
						if time.Now().After(deadline) {
							t.Fatalf("member %d stalled", id)
						}
						time.Sleep(time.Millisecond)
					}
				}
			}
			waitFor(2) // settle

			for k := 0; k < 24; k++ {
				b.Byz(k%n, int64(1000*k+7))
				time.Sleep(300 * time.Microsecond)
			}
			waitFor(3) // the adversary must not stop the barrier
			cancel()
			wg.Wait()
			b.Stop()

			st := b.Stats()
			if st.ByzInjected == 0 {
				t.Fatal("no Byzantine forgery was delivered; the adversary path was not exercised")
			}
			rejected := st.RejectedSeq + st.RejectedPhase + st.RejectedTop + st.RejectedSender
			if rejected != st.ByzInjected {
				t.Errorf("rejected frames = %d (seq=%d phase=%d top=%d sender=%d), accepted forgeries = %d — want exact match",
					rejected, st.RejectedSeq, st.RejectedPhase, st.RejectedTop, st.RejectedSender, st.ByzInjected)
			}
			mu.Lock()
			defer mu.Unlock()
			if err := checker.Violation(); err != nil {
				t.Errorf("spec violated under a Byzantine adversary: %v", err)
			}
		})
	}
}
