package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// treeCfg is the base TopologyTree configuration used by the tests.
func treeCfg(n int, seed int64) Config {
	return Config{Participants: n, Topology: TopologyTree, Seed: seed}
}

func TestTreeValidation(t *testing.T) {
	if _, err := New(Config{Participants: 4, Topology: TopologyTree, TreeArity: 1}); err == nil {
		t.Error("arity 1 should be rejected")
	}
	if _, err := New(Config{Participants: 4, Topology: TopologyTree, Transport: NewChanTransport(4)}); err == nil {
		t.Error("a ring transport should be rejected for TopologyTree")
	}
	if tr := NewChanTreeTransport([]int{-1, 0}); tr != nil {
		if _, err := tr.Open(0); err == nil {
			t.Error("ring Open on a tree transport should be rejected")
		}
	}
	if _, err := New(Config{Participants: 2, Topology: TopologyRing, Transport: NewChanTreeTransport([]int{-1, 0})}); err == nil {
		t.Error("a tree transport should be rejected for TopologyRing")
	}
}

func TestTreeFaultFreeBarriers(t *testing.T) {
	for _, n := range []int{2, 3, 7, 12} {
		col := newCollector(n, 8)
		cfg := treeCfg(n, 60)
		cfg.EventSink = col.sink
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		passes := runWorkers(t, b, 25, nil)
		b.Stop()
		for id, c := range passes {
			if c != 25 {
				t.Errorf("n=%d: worker %d passed %d barriers, want 25", n, id, c)
			}
		}
		if err := col.violation(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if col.successes() < 25 {
			t.Errorf("n=%d: checker saw %d successful barriers, want ≥ 25", n, col.successes())
		}
	}
}

func TestTreeWiderArity(t *testing.T) {
	col := newCollector(9, 8)
	cfg := treeCfg(9, 61)
	cfg.TreeArity = 4
	cfg.EventSink = col.sink
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	passes := runWorkers(t, b, 20, nil)
	for id, c := range passes {
		if c != 20 {
			t.Errorf("worker %d passed %d barriers, want 20", id, c)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatal(err)
	}
}

// The tree barrier actually synchronizes: no worker may start round r+1
// before every worker finished round r.
func TestTreeBarrierSemantics(t *testing.T) {
	const n, rounds = 7, 20
	b, err := New(treeCfg(n, 62))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	var mu sync.Mutex
	inRound := make([]int, n)
	runWorkers(t, b, rounds, func(id, round int) {
		mu.Lock()
		inRound[id] = round
		for _, r := range inRound {
			if r < round-1 || r > round+1 {
				mu.Unlock()
				t.Errorf("worker %d in round %d while another is in round %d", id, round, r)
				mu.Lock()
			}
		}
		mu.Unlock()
	})
}

// Phases advance modulo NumPhases in sequence, same as on the ring.
func TestTreePhaseSequence(t *testing.T) {
	const n, nPhases = 5, 4
	cfg := treeCfg(n, 63)
	cfg.NPhases = nPhases
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	phases := make([][]int, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				ph, err := b.Await(ctx, id)
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
				phases[id] = append(phases[id], ph)
			}
		}()
	}
	wg.Wait()
	for id := 0; id < n; id++ {
		for k, ph := range phases[id] {
			if want := (k + 1) % nPhases; ph != want {
				t.Fatalf("worker %d pass %d released phase %d, want %d (%v)",
					id, k, ph, want, phases[id])
			}
		}
	}
}

// Message loss on tree edges is masked by the per-edge retransmission.
func TestTreeMessageLossMasked(t *testing.T) {
	const n = 7
	col := newCollector(n, 8)
	cfg := treeCfg(n, 64)
	cfg.LossRate = 0.2
	cfg.Resend = 100 * time.Microsecond
	cfg.EventSink = col.sink
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	passes := runWorkers(t, b, 15, nil)
	for id, c := range passes {
		if c != 15 {
			t.Errorf("worker %d passed %d barriers under message loss, want 15", id, c)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatal(err)
	}
}

// Detected corruption is equivalent to loss on the tree too.
func TestTreeDetectedCorruptionMasked(t *testing.T) {
	const n = 7
	col := newCollector(n, 8)
	cfg := treeCfg(n, 65)
	cfg.CorruptRate = 0.15
	cfg.Resend = 100 * time.Microsecond
	cfg.EventSink = col.sink
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	passes := runWorkers(t, b, 15, nil)
	for id, c := range passes {
		if c != 15 {
			t.Errorf("worker %d passed %d barriers under corruption, want 15", id, c)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatal(err)
	}
	if b.Stats().Drops == 0 {
		t.Error("no corrupted messages were dropped — corruption injection inert?")
	}
}

// Process resets are masked at every tree position: root, internal, leaf.
func TestTreeProcessResetMasked(t *testing.T) {
	const n = 7
	col := newCollector(n, 8)
	cfg := treeCfg(n, 66)
	cfg.EventSink = col.sink
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				b.Reset(i % n) // cycles through root, internal nodes, leaves
			}
		}
	}()

	passes := runWorkers(t, b, 30, nil)
	close(stop)
	injector.Wait()
	for id, c := range passes {
		if c != 30 {
			t.Errorf("worker %d passed %d barriers under resets, want 30", id, c)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatalf("safety violated under process resets: %v", err)
	}
}

// A reset tree participant gets ErrReset and its redo passes, at the root
// as well as at a leaf.
func TestTreeResetDeliversErrReset(t *testing.T) {
	const n = 3
	for _, victim := range []int{0, n - 1} {
		b, err := New(treeCfg(n, 67))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)

		bg, bgCancel := context.WithCancel(ctx)
		for id := 0; id < n; id++ {
			if id == victim {
				continue
			}
			id := id
			go func() {
				for {
					if _, err := b.Await(bg, id); err != nil && !errors.Is(err, ErrReset) {
						return
					}
				}
			}()
		}

		// Let the first begin wave roll so the victim is mid-phase (execute):
		// a reset in the pre-begin ready window voids no work, by design.
		time.Sleep(2 * time.Millisecond)
		b.Reset(victim)
		time.Sleep(2 * time.Millisecond)
		if _, err := b.Await(ctx, victim); !errors.Is(err, ErrReset) {
			t.Fatalf("victim %d: Await after reset returned %v, want ErrReset", victim, err)
		}
		if _, err := b.Await(ctx, victim); err != nil {
			t.Fatalf("victim %d: redo Await returned %v", victim, err)
		}
		bgCancel()
		cancel()
		b.Stop()
	}
}

// Undetectable faults stabilize on the tree.
func TestTreeScrambleStabilizes(t *testing.T) {
	const n = 7
	b, err := New(treeCfg(n, 68))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	passed := make([]chan struct{}, n)
	for i := range passed {
		passed[i] = make(chan struct{}, 1024)
	}
	bg, bgCancel := context.WithCancel(ctx)
	defer bgCancel()
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := b.Await(bg, id)
				if err == nil {
					select {
					case passed[id] <- struct{}{}:
					default:
					}
				} else if !errors.Is(err, ErrReset) {
					return
				}
			}
		}()
	}

	time.Sleep(5 * time.Millisecond)
	for id := 0; id < n; id++ {
		b.Scramble(id, int64(200+id))
	}
	deadline := time.After(20 * time.Second)
	for id := 0; id < n; id++ {
		for k := 0; k < 5; k++ {
			select {
			case <-passed[id]:
			case <-deadline:
				t.Fatalf("worker %d made no progress after scramble", id)
			}
		}
	}
	bgCancel()
	wg.Wait()
}

// Spurious messages are absorbed on both edge directions (down at a leaf,
// up at the root). Forgeries are undetectable, so the tolerance is
// stabilizing, not masking: a forgery may deliver a bogus extra pass, so
// every worker keeps participating until all of them reached the target
// (a worker that left at its personal count could starve the rest).
func TestTreeSpuriousMessagesAbsorbed(t *testing.T) {
	const n = 7
	cfg := treeCfg(n, 69)
	cfg.Resend = 100 * time.Microsecond
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	for i := 0; i < 2*n; i++ {
		b.InjectSpurious(i%n, int64(700+i))
	}
	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(500 * time.Microsecond):
				b.InjectSpurious(i%n, int64(1200+i))
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const wantPasses = 25
	runCtx, runCancel := context.WithCancel(ctx)
	defer runCancel()
	passes := make([]int, n)
	var mu sync.Mutex
	allDone := func() bool {
		for i := range passes {
			if passes[i] < wantPasses {
				return false
			}
		}
		return true
	}
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := b.Await(runCtx, id)
				switch {
				case err == nil:
					mu.Lock()
					passes[id]++
					done := allDone()
					mu.Unlock()
					if done {
						runCancel()
						return
					}
				case errors.Is(err, ErrReset):
					// redo
				case errors.Is(err, context.Canceled):
					return
				default:
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	injector.Wait()
	mu.Lock()
	defer mu.Unlock()
	for id := range passes {
		if passes[id] < wantPasses {
			t.Errorf("worker %d passed %d barriers under spurious messages, want ≥ %d", id, passes[id], wantPasses)
		}
	}
	if b.Stats().Spurious == 0 {
		t.Error("no spurious messages recorded")
	}
}

// Fail-safe halt works identically on the tree.
func TestTreeHaltIsFailSafe(t *testing.T) {
	const n = 3
	b, err := New(treeCfg(n, 70))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := b.Await(ctx, 0)
		done <- err
	}()
	time.Sleep(time.Millisecond)
	b.Halt()
	if err := <-done; !errors.Is(err, ErrHalted) {
		t.Fatalf("outstanding Await returned %v, want ErrHalted", err)
	}
	if _, err := b.Await(ctx, 1); !errors.Is(err, ErrHalted) {
		t.Fatalf("subsequent Await returned %v, want ErrHalted", err)
	}
}

// Chaos soak on the tree: every fault class at once; liveness assertion.
func TestTreeChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	const n = 7
	cfg := treeCfg(n, 71)
	cfg.LossRate = 0.05
	cfg.CorruptRate = 0.05
	cfg.Resend = 100 * time.Microsecond
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			switch i % 7 {
			case 0, 1, 2:
				b.Reset(i % n)
			case 3, 4:
				b.InjectSpurious((i+1)%n, int64(i))
			case 5:
				b.Scramble((i+2)%n, int64(i))
			case 6:
				// quiet tick
			}
		}
	}()

	const wantPasses = 40
	runCtx, runCancel := context.WithCancel(ctx)
	defer runCancel()
	passes := make([]int64, n)
	var mu sync.Mutex
	allDone := func() bool {
		for i := range passes {
			if passes[i] < wantPasses {
				return false
			}
		}
		return true
	}
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := b.Await(runCtx, id)
				switch {
				case err == nil:
					mu.Lock()
					passes[id]++
					done := allDone()
					mu.Unlock()
					if done {
						runCancel()
						return
					}
				case errors.Is(err, ErrReset):
					// redo
				case errors.Is(err, context.Canceled):
					return
				default:
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	injector.Wait()
	mu.Lock()
	defer mu.Unlock()
	for id := range passes {
		if passes[id] < wantPasses {
			t.Errorf("worker %d only passed %d/%d barriers under chaos", id, passes[id], wantPasses)
		}
	}
}

// A killed-and-rejoined member is masked: the survivors keep passing and
// the rejoin behaves like any detectable reset. (In-process version of the
// barrierd e2e; the member's goroutines are stopped via a separate Barrier
// instance hosting only that member over a shared transport.)
func TestTreeRejoinStateStartsDetectablyReset(t *testing.T) {
	// Rejoin=true must start every hosted member in the reset state, which
	// the tree masks: the first Await surfaces ErrReset (work voided) or
	// passes — never a wrong phase, never a hang.
	const n = 3
	cfg := treeCfg(n, 72)
	cfg.Rejoin = true
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; {
				_, err := b.Await(ctx, id)
				switch {
				case err == nil:
					k++
				case errors.Is(err, ErrReset):
					// redo
				default:
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Sixteen participants on the tree, with resets — the scale the benchmark
// compares against the ring.
func TestTreeSixteenParticipants(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const n = 16
	col := newCollector(n, 8)
	cfg := treeCfg(n, 73)
	cfg.EventSink = col.sink
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				b.Reset(i % n)
			}
		}
	}()

	passes := runWorkers(t, b, 15, nil)
	close(stop)
	injector.Wait()
	for id, c := range passes {
		if c != 15 {
			t.Errorf("worker %d passed %d barriers, want 15", id, c)
		}
	}
	if err := col.violation(); err != nil {
		t.Fatalf("safety violated at 16 participants: %v", err)
	}
}
