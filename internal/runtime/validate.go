// Frame validation: the sequence-and-sender windows that close the
// forged-frame hole, and the crafting of the Byzantine adversary's
// frames (wrong-phase replays, stale-sequence echoes, premature ⊤).
//
// The conformance fuzzer proved that a single well-formed, valid-checksum
// forged frame could complete a barrier at the wrong phase: the follower
// update copies the phase of whatever the copy cell last adopted, so one
// lie propagates around the ring (or down the tree) before the genuine
// retransmission overrides it. The defense is a receive window derived
// from the token discipline itself. MB's superposition invariant bounds
// the sequence numbers of any two neighbors:
//
//	sn_0 ≥ sn_1 ≥ … ≥ sn_{n-1} ≥ sn_0 − 1   (cyclically, mod L)
//
// so a genuine NEW frame a settled receiver sees can only carry:
//
//   - ring follower (predecessor is ring-order earlier): {sn, sn+1}
//   - ring leader (predecessor is the last process):      {sn−1, sn}
//   - tree child  (frames from the parent, ahead):        {sn, sn+1}
//   - tree parent (frames from a child, behind):          {sn−1, sn}
//
// and, because the phase counter advances at most once per wave, a legal
// phase within {copy, copy+1} (mod NPhases). An acknowledgment of the
// receiver's CURRENT wave must carry the receiver's own phase — that is
// precisely the frame the original forgery used to complete a barrier at
// the wrong phase. The windows only hold in steady state, so they are
// enforced only while the receiver is "settled" (own sequence number
// ordinary, own and copied control positions coherent); during recovery
// the paper's fault branches need to see arbitrary values and validation
// stands aside.
//
// Rejection alone would livelock stabilization: after an undetectable
// fault the GENUINE neighbor state can sit outside the window, and the
// receiver must eventually adopt it. Rejected frames are therefore held
// as a pending sighting: a bit-identical second sighting — which the
// periodic retransmission of a genuine sender supplies within a resend
// period or two, and which a single forged frame by definition is not —
// confirms the frame and is adopted. A single forger therefore cannot
// advance any correct member's phase; a persistent adversary replaying
// the identical forgery every period degrades the tolerance to the
// paper's stabilizing class, no worse than the pre-defense behavior.
//
// Every rejection is counted in barrier_rejected_frames_total{reason}:
// "seqwindow" (sequence number outside the legal window), "phasewindow"
// (sequence legal but phase outside the window, or a current-wave
// acknowledgment with a foreign phase), "topwindow" (a ⊤ marker while
// the receiver's own sequence number is ordinary — ⊤ is only meaningful
// to a process already in the restart wave), and "sender" (a frame whose
// claimed sender does not exist on this edge).
package runtime

import (
	"repro/internal/core"
	"repro/internal/prng"
	"repro/internal/tokenring"
)

// rejectReason labels a frame rejection for the per-reason counter.
type rejectReason uint8

const (
	rejNone rejectReason = iota
	rejSeq
	rejPhase
	rejTop
	rejSender
)

func (b *Barrier) countReject(r rejectReason) {
	switch r {
	case rejSeq:
		b.statRejSeq.Add(1)
	case rejPhase:
		b.statRejPhase.Add(1)
	case rejTop:
		b.statRejTop.Add(1)
	case rejSender:
		b.statRejSender.Add(1)
	}
}

// coherentCP reports whether cp is a steady-state control position (not a
// recovery marker).
func coherentCP(cp core.CP) bool {
	return cp == core.Ready || cp == core.Execute || cp == core.Success
}

// byzSkipped reclassifies an accepted Byzantine injection whose victim
// could not host the forgery — crashed, or mid-recovery where validation
// stands aside — as a dropped injection. Keeping the accepted counter
// equal to the forgeries actually delivered preserves the conformance
// oracle: in a byz-only schedule, rejected frames == accepted injections,
// exactly.
func (b *Barrier) byzSkipped() {
	b.statInjByz.Add(-1)
	b.statInjDropped.Add(1)
}

// --- ring ---

// settled reports whether the ring proc is in the steady state the
// receive windows assume. While unsettled (recovering), validation
// stands aside so the fault branches can observe arbitrary values.
func (p *proc) settled() bool {
	return p.sn.Ordinary() && coherentCP(p.cp) && coherentCP(p.cpL)
}

// stateWindow returns the two sequence numbers a genuine new predecessor
// frame may carry, per the token-discipline invariant (see the package
// comment of this file).
func (p *proc) stateWindow() (lo, hi tokenring.SN) {
	if p.id == 0 {
		return tokenring.SN((int(p.sn) + p.b.l - 1) % p.b.l), p.sn
	}
	return p.sn, tokenring.SN((int(p.sn) + 1) % p.b.l)
}

// checkPredState classifies an ordinary-sequence frame against the legal
// receive window. Caller guarantees m passed the checksum, carries an
// ordinary sequence number, and is not the short-circuited current copy.
func (p *proc) checkPredState(m Message) rejectReason {
	lo, hi := p.stateWindow()
	if m.SN != lo && m.SN != hi {
		return rejSeq
	}
	if m.PH != p.phL && m.PH != (p.phL+1)%p.b.nPhases {
		return rejPhase
	}
	return rejNone
}

// admitPredState runs the settled-state window validation with the
// two-sighting confirmation; it reports whether the frame may be adopted.
func (p *proc) admitPredState(m Message) bool {
	if !p.settled() {
		return true
	}
	if r := p.checkPredState(m); r != rejNone {
		if p.havePending && m == p.pending {
			// A bit-identical second sighting: a genuine sender's
			// retransmission confirms the frame.
			p.havePending = false
			return true
		}
		p.pending = m
		p.havePending = true
		p.b.countReject(r)
		return false
	}
	p.havePending = false
	return true
}

// onByzState delivers a Byzantine state forgery to this ring proc. An
// unsettled or crashed victim is skipped: the forgery would land in a
// recovery already in progress, whose stabilizing tolerance covers
// arbitrary state anyway.
func (p *proc) onByzState(seed int64) {
	if p.crashed || !p.settled() {
		p.b.byzSkipped()
		return
	}
	rng := prng.New(seed)
	m := p.forgeState(&rng)
	if m.SN == p.snL {
		// The receive path ignores frames echoing the already-adopted
		// sequence number before validation runs (onPredState's snL
		// short-circuit). The crafts avoid snL inside the legal window,
		// but a transiently stale snL can collide with a stale-sequence
		// echo; the forgery then lands on deaf ears — reclassify it, or
		// the rejected == accepted identity under-counts.
		p.b.byzSkipped()
		return
	}
	p.onPredState(m)
}

// onByzTop delivers a forged premature ⊤ restart marker. A settled victim
// rejects it through the same topwindow check the genuine marker path
// runs; an unsettled victim is already inside the restart wave, where the
// marker is legitimate, so the injection is reclassified as skipped
// rather than silently accepted.
func (p *proc) onByzTop() {
	if p.crashed || !p.sn.Ordinary() {
		p.b.byzSkipped()
		return
	}
	p.onTop()
}

// forgeState crafts the Byzantine adversary's state forgery from the
// victim's own view — the strongest position an adversary on this edge
// can reach, since a real one observes at most what the victim announces.
// The frame is well-formed (valid checksum) and deliberately differs from
// the pending sighting, so each injection is rejected exactly once.
func (p *proc) forgeState(rng *prng.PRNG) Message {
	if p.b.nPhases >= 3 && p.settled() && rng.Intn(2) == 0 {
		// Wrong-phase replay: the sequence number of the next genuine
		// token, a coherent control position, and a phase at least two
		// off the window — the shape of the original fuzz counterexample.
		lo, hi := p.stateWindow()
		sn := hi
		if sn == p.snL {
			sn = lo
		}
		span := p.b.nPhases - 2
		off := 2 + rng.Intn(span)
		for tries := 0; tries < 2; tries++ {
			m := Message{SN: sn, CP: p.cpL, PH: (p.phL + off) % p.b.nPhases}
			m.Sum = m.Checksum()
			if !(p.havePending && m == p.pending) {
				return m
			}
			off = 2 + (off-1)%span
		}
	}
	// Stale-sequence echo: a well-formed frame whose sequence number lies
	// outside the receive window.
	base := 2 // follower window is {sn, sn+1}
	if p.id == 0 {
		base = 1 // leader window is {sn-1, sn}
	}
	span := p.b.l - 2
	off := base + rng.Intn(span)
	for {
		m := Message{SN: tokenring.SN((int(p.sn) + off) % p.b.l), CP: p.cpL, PH: p.phL}
		m.Sum = m.Checksum()
		if !(p.havePending && m == p.pending) {
			return m
		}
		off = base + (off-base+1)%span
	}
}

// --- tree ---

// settled is the tree counterpart of the ring predicate.
func (tp *treeProc) settled() bool {
	return tp.sn.Ordinary() && coherentCP(tp.cp) && coherentCP(tp.pCP)
}

// checkDown classifies an ordinary-sequence parent frame: the parent runs
// at most one wave ahead, and its phase within one of the copy.
func (tp *treeProc) checkDown(m Message) rejectReason {
	if m.SN != tp.sn && m.SN != tokenring.SN((int(tp.sn)+1)%tp.b.l) {
		return rejSeq
	}
	if m.PH != tp.pPH && m.PH != (tp.pPH+1)%tp.b.nPhases {
		return rejPhase
	}
	return rejNone
}

// upSNInWindow reports whether a child-side sequence number lies in the
// legal window {sn-1, sn}: a child never runs ahead of its parent and
// never lags more than the wave the parent is waiting on.
func (tp *treeProc) upSNInWindow(sn tokenring.SN) bool {
	return sn == tp.sn || sn == tokenring.SN((int(tp.sn)+tp.b.l-1)%tp.b.l)
}

// checkUp classifies a child frame. The live triple and the acknowledgment
// triple are validated independently; non-ordinary halves are legal
// restart markers and are masked at the store instead (see onUp). An
// acknowledgment of the receiver's CURRENT wave must carry the receiver's
// own phase — that is the exact frame a wrong-phase forgery needs to
// complete a barrier at a foreign phase.
func (tp *treeProc) checkUp(i int, m UpMessage) rejectReason {
	if m.SN.Ordinary() {
		if !tp.upSNInWindow(m.SN) {
			return rejSeq
		}
		if m.PH != tp.kidPH[i] && m.PH != (tp.kidPH[i]+1)%tp.b.nPhases {
			return rejPhase
		}
	}
	if m.AckSN.Ordinary() {
		if !tp.upSNInWindow(m.AckSN) {
			return rejSeq
		}
		if m.AckSN == tp.sn && m.AckPH != tp.ph {
			return rejPhase
		}
	}
	return rejNone
}

// onByzDown delivers a Byzantine parent-announcement forgery to this
// node; see onByzState for the unsettled/crashed skip.
func (tp *treeProc) onByzDown(seed int64) {
	if tp.crashed || !tp.settled() {
		tp.b.byzSkipped()
		return
	}
	rng := prng.New(seed)
	tp.onDown(tp.forgeDown(&rng))
}

// onByzUp delivers a Byzantine convergecast forgery claiming to come from
// child `from`. An adversary that is not a child of this node lands in
// the sender rejection, like any unattributable frame.
func (tp *treeProc) onByzUp(from int, seed int64) {
	if tp.crashed || !tp.settled() {
		tp.b.byzSkipped()
		return
	}
	for i, c := range tp.kids {
		if c == from {
			rng := prng.New(seed)
			tp.onUp(tp.forgeUp(i, &rng))
			return
		}
	}
	tp.b.statRejSender.Add(1)
}

// forgeDown crafts the adversary's parent-announcement forgery from the
// victim child's view (see forgeState).
func (tp *treeProc) forgeDown(rng *prng.PRNG) Message {
	if tp.b.nPhases >= 3 && tp.settled() && rng.Intn(2) == 0 {
		span := tp.b.nPhases - 2
		off := 2 + rng.Intn(span)
		sn := tokenring.SN((int(tp.sn) + 1) % tp.b.l)
		for tries := 0; tries < 2; tries++ {
			m := Message{SN: sn, CP: tp.pCP, PH: (tp.pPH + off) % tp.b.nPhases}
			m.Sum = m.Checksum()
			if !(tp.havePendDown && m == tp.pendDown) {
				return m
			}
			off = 2 + (off-1)%span
		}
	}
	span := tp.b.l - 2
	off := 2 + rng.Intn(span)
	for {
		m := Message{SN: tokenring.SN((int(tp.sn) + off) % tp.b.l), CP: tp.pCP, PH: tp.pPH}
		m.Sum = m.Checksum()
		if !(tp.havePendDown && m == tp.pendDown) {
			return m
		}
		off = 2 + (off-2+1)%span
	}
}

// forgeUp crafts the adversary child's convergecast forgery from the
// victim parent's view; i indexes the adversary in the victim's kids.
func (tp *treeProc) forgeUp(i int, rng *prng.PRNG) UpMessage {
	// The live half is kept benign so the rejection is attributed to the
	// forged acknowledgment alone.
	m := UpMessage{
		Child: tp.kids[i],
		SN:    tp.sn, CP: tp.kidCP[i], PH: tp.kidPH[i],
	}
	if tp.settled() && rng.Intn(2) == 0 {
		// Wrong-phase completion: acknowledge the victim's CURRENT wave
		// with a foreign phase — the forged-frame hole's exact shape.
		span := tp.b.nPhases - 1
		off := 1 + rng.Intn(span)
		for {
			m.AckSN, m.AckCP, m.AckPH = tp.sn, core.Success, (tp.ph+off)%tp.b.nPhases
			m.Sum = m.Checksum()
			if !(tp.kidHavePend[i] && m == tp.kidPend[i]) {
				return m
			}
			off = 1 + off%span
		}
	}
	// Stale-sequence echo on the acknowledgment half.
	span := tp.b.l - 2
	off := 1 + rng.Intn(span)
	for {
		m.AckSN, m.AckCP, m.AckPH = tokenring.SN((int(tp.sn)+off)%tp.b.l), tp.kidAckCP[i], tp.kidAckPH[i]
		m.Sum = m.Checksum()
		if !(tp.kidHavePend[i] && m == tp.kidPend[i]) {
			return m
		}
		off = 1 + off%span
	}
}
