package runtime

// prng is a tiny splitmix64 generator owned by exactly one goroutine.
//
// The protocol goroutines draw randomness on hot paths (loss/corruption
// decisions in announce, reset/scramble state re-randomization), and the
// draws must be deterministic per seed so conformance schedules replay
// bit-identically. math/rand.Rand would do, but it is easy to misuse: an
// *alias* shared across per-proc or per-link goroutines races (Rand is
// not concurrency-safe), and the global functions serialize on a lock.
// Owning a 8-byte generator per goroutine makes the single-owner
// discipline structural — there is no lock to contend and nothing to
// share. Each owner seeds its prng with a distinct function of the
// Config seed and its id, so members' draws are decorrelated.
//
// splitmix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
// generators", OOPSLA 2014) passes BigCrush and recovers from any seed,
// including 0, in one step.
type prng struct {
	s uint64
}

func newPRNG(seed int64) prng { return prng{s: uint64(seed)} }

func (r *prng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *prng) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *prng) Intn(n int) int {
	if n <= 0 {
		panic("prng.Intn: n <= 0")
	}
	return int(r.next() % uint64(n))
}
