// The double-tree runtime: a message-passing refinement of program DT
// (Figure 2d; package dtree is the guarded-command original) in the same
// way the ring runtime refines MB from RB. One tree is used twice — down
// it, waves disseminate from the root toward the leaves (action D.j); up
// it, a convergecast detects completion from the leaves back to the root
// (action U.j); the root closes the cycle by advancing the wave when its
// whole tree has acknowledged (action R.0). A barrier pass costs three
// waves of 2h hops each, h = O(log N), against the ring's 3N.
//
// The superposition discipline is MB's: each node keeps local copies of
// its parent's announced (sn, cp, ph) and, per child, of the child's
// announced live state and acknowledgment summary. Copies are refreshed by
// per-edge announcements — retransmitted periodically, so message loss,
// duplication and detected corruption are equivalent to delay — and every
// guarded action reads only the node's own state and its copies. The
// convergecast keeps every copy at most one wave stale in fault-free runs
// (the root cannot advance past a wave its whole tree has not
// acknowledged), and the fault branches (the root and bottom-up
// resynchronizations, the ⊤ restart wave) mark recovery waves repeat so
// the interrupted phase is re-executed, exactly as in DT.
package runtime

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/prng"
	"repro/internal/tokenring"
	"repro/internal/topo"
)

// startTree wires the double-tree topology: one treeProc per hosted
// member, links from the tree transport.
func (b *Barrier) startTree(cfg Config, members []int, ln *lane) error {
	arity := cfg.TreeArity
	if arity == 0 {
		arity = 2
	}
	tree, err := topo.NewKAryTree(b.n, arity)
	if err != nil {
		return fmt.Errorf("ftbarrier: %w", err)
	}
	if cfg.Transport == nil {
		// Every member is local (Members requires an explicit Transport):
		// run the whole collective fused on one scheduler goroutine, with
		// direct in-memory delivery instead of channel hops per edge.
		return b.startFusedTree(cfg, tree, ln)
	}
	tt, ok := cfg.Transport.(TreeTransport)
	if !ok {
		return errors.New("ftbarrier: Topology == TopologyTree requires a tree transport (NewChanTreeTransport, transport.NewTCPTree)")
	}
	for _, j := range members {
		link, err := tt.OpenTree(j)
		if err != nil {
			return fmt.Errorf("ftbarrier: open tree link for member %d: %w", j, err)
		}
		ln.links = append(ln.links, link)
		tp := newTreeProc(b, j, tree.Parent[j], tree.Children[j], link, cfg)
		ln.tprocs[j] = tp
		ln.gates[j] = tp.gate
	}
	// Unlike the ring procs (which start mid-phase, in execute), tree procs
	// start in DT's start state — wave 0 fully acknowledged, everyone ready
	// in phase 0 — so the begins of phase 0 are emitted by the protocol
	// itself when the first wave rolls; no implicit events are needed here.
	lossRate, corruptRate := cfg.LossRate, cfg.CorruptRate
	for _, tp := range ln.tprocs {
		if tp == nil {
			continue
		}
		tp := tp
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			tp.run(cfg.Resend, lossRate, corruptRate)
		}()
	}
	return nil
}

// treeProc is one DT process: a goroutine owning its protocol state.
type treeProc struct {
	*gate

	parentID int   // -1 at the root
	kids     []int // child member ids, increasing

	// Protocol state (DT): own triple and subtree acknowledgment.
	sn tokenring.SN
	cp core.CP
	ph int

	ackSN tokenring.SN
	ackCP core.CP
	ackPH int

	// Local copy of the parent's announced state (meaningless at the root).
	pSN tokenring.SN
	pCP core.CP
	pPH int

	// Local copies of each child's announced live state and summary,
	// indexed like kids.
	kidSN    []tokenring.SN
	kidCP    []core.CP
	kidPH    []int
	kidAckSN []tokenring.SN
	kidAckCP []core.CP
	kidAckPH []int

	// crashed marks the crash fault class: the node is down — it neither
	// receives, steps nor announces — until ctrlRestart revives it.
	crashed bool

	// Pending sightings for the validation windows (validate.go): the
	// last rejected parent frame, and per child the last rejected up
	// frame. Per-kid slots matter — two simultaneously out-of-window
	// children sharing one slot would alternate and never confirm.
	pendDown     Message
	havePendDown bool
	kidPend      []UpMessage
	kidHavePend  []bool

	link TreeLink
	down <-chan Message
	up   <-chan UpMessage

	lastDown      Message
	haveSentDown  bool
	lastUp        UpMessage
	haveSentUp    bool
	sentSinceTick bool

	// rng is owned by the protocol goroutine (the fused scheduler counts
	// as one owner for all its members); seeded before the goroutine
	// starts, published by the goroutine-start happens-before edge.
	rng prng.PRNG
}

func newTreeProc(b *Barrier, id, parentID int, kids []int, link TreeLink, cfg Config) *treeProc {
	tp := &treeProc{
		gate:        newGate(b, id),
		parentID:    parentID,
		kids:        append([]int(nil), kids...),
		kidSN:       make([]tokenring.SN, len(kids)),
		kidCP:       make([]core.CP, len(kids)),
		kidPH:       make([]int, len(kids)),
		kidAckSN:    make([]tokenring.SN, len(kids)),
		kidAckCP:    make([]core.CP, len(kids)),
		kidAckPH:    make([]int, len(kids)),
		kidPend:     make([]UpMessage, len(kids)),
		kidHavePend: make([]bool, len(kids)),
		link:        link,
		down:        link.Down(),
		up:          link.Up(),
		rng:         prng.New(cfg.Seed + int64(id)*7919),
	}
	// DT's start state: wave 0 disseminated and acknowledged, everyone
	// ready in phase 0 — the root's first increment begins phase 0.
	tp.cp, tp.ackCP, tp.pCP = core.Ready, core.Ready, core.Ready
	for i := range tp.kidCP {
		tp.kidCP[i], tp.kidAckCP[i] = core.Ready, core.Ready
	}
	if cfg.Rejoin {
		tp.resetState()
	}
	return tp
}

// resetState puts the proc in the detectably-reset state (DT's detectable
// fault action plus the loss of every local copy): sn ⊥, cp error, phases
// arbitrary. Used for Rejoin and for the Reset fault injection.
func (tp *treeProc) resetState() {
	tp.sn, tp.cp, tp.ph = tokenring.Bot, core.Error, tp.rng.Intn(tp.b.nPhases)
	tp.ackSN, tp.ackCP, tp.ackPH = tokenring.Bot, core.Error, tp.rng.Intn(tp.b.nPhases)
	tp.pSN, tp.pCP, tp.pPH = tokenring.Bot, core.Error, tp.rng.Intn(tp.b.nPhases)
	tp.havePendDown = false
	for i := range tp.kids {
		tp.kidSN[i], tp.kidCP[i], tp.kidPH[i] = tokenring.Bot, core.Error, tp.rng.Intn(tp.b.nPhases)
		tp.kidAckSN[i], tp.kidAckCP[i], tp.kidAckPH[i] = tokenring.Bot, core.Error, tp.rng.Intn(tp.b.nPhases)
		tp.kidHavePend[i] = false
	}
}

func (tp *treeProc) run(resend time.Duration, lossRate, corruptRate float64) {
	ticker := time.NewTicker(resend)
	defer ticker.Stop()

	tp.announce(lossRate, corruptRate) // prime the tree
	for {
		// Fast path: drain everything already queued with non-blocking
		// single-channel polls, then step once on the freshest copies. An
		// empty-channel poll is a lock-free check, where entering the
		// blocking select locks every case's channel — on the hot path
		// (waves rippling with no idle time) that difference dominates the
		// cost of a pass.
		busy := false
		for {
			progressed := false
			select {
			case m := <-tp.down:
				tp.onDown(m)
				progressed = true
			default:
			}
			for drained := false; !drained; {
				select {
				case m := <-tp.up:
					tp.onUp(m)
					progressed = true
				default:
					drained = true
				}
			}
			select {
			case c := <-tp.ctrl:
				tp.onCtrl(c)
				progressed = true
			default:
			}
			if !progressed {
				break
			}
			busy = true
		}
		if busy {
			select {
			case <-tp.b.stopped:
				return
			case <-tp.b.halted:
				return
			default:
			}
			tp.step()
			tp.announce(lossRate, corruptRate)
			continue
		}

		// Idle: park until something arrives or the resend period elapses.
		select {
		case <-tp.b.stopped:
			return
		case <-tp.b.halted:
			return // fail-safe halt: quiesce (see the ring run loop)
		case m := <-tp.down:
			tp.onDown(m)
		case m := <-tp.up:
			tp.onUp(m)
		case c := <-tp.ctrl:
			tp.onCtrl(c)
		case <-ticker.C:
			// Per-edge retransmission with the quiet-edge optimization of
			// the ring loop: only retransmit when nothing went out since
			// the previous tick.
			if tp.sentSinceTick {
				tp.sentSinceTick = false
			} else {
				tp.haveSentDown = false
				tp.haveSentUp = false
			}
		}
		tp.step()
		tp.announce(lossRate, corruptRate)
	}
}

// onDown refreshes the local copy of the parent's state — including ⊥/⊤,
// which the bottom-up resynchronization must observe (while the node is
// itself in the restart wave; a settled node ignores the markers — its
// own reset clears the copy before they matter).
func (tp *treeProc) onDown(m Message) {
	if tp.crashed {
		return
	}
	if m.Sum != m.Checksum() {
		tp.b.statDrops.Add(1) // detected corruption: drop; retransmission masks it
		return
	}
	if tp.settled() {
		if !m.SN.Ordinary() {
			return
		}
		if r := tp.checkDown(m); r != rejNone {
			if tp.havePendDown && m == tp.pendDown {
				// Second sighting: a genuine parent's retransmission.
				tp.havePendDown = false
			} else {
				tp.pendDown = m
				tp.havePendDown = true
				tp.b.countReject(r)
				return
			}
		} else {
			tp.havePendDown = false
		}
	}
	tp.pSN, tp.pCP, tp.pPH = m.SN, m.CP, m.PH
}

// onUp refreshes the local copies of one child's live state and summary.
func (tp *treeProc) onUp(m UpMessage) {
	if tp.crashed {
		return
	}
	if m.Sum != m.Checksum() {
		tp.b.statDrops.Add(1)
		return
	}
	for i, c := range tp.kids {
		if c == m.Child {
			tp.storeUp(i, m)
			return
		}
	}
	// A child id this node does not have: a well-formed frame that cannot
	// be attributed to any edge of this node — a sender violation.
	tp.b.statRejSender.Add(1)
}

// storeUp validates one child's frame against the receive windows
// (validate.go) and stores it. While settled, non-ordinary halves are
// restart markers this node has no use for (T4 reads them only with its
// own sn at ⊥, where validation stands aside) and are left unstored.
func (tp *treeProc) storeUp(i int, m UpMessage) {
	if !tp.settled() {
		tp.kidSN[i], tp.kidCP[i], tp.kidPH[i] = m.SN, m.CP, m.PH
		tp.kidAckSN[i], tp.kidAckCP[i], tp.kidAckPH[i] = m.AckSN, m.AckCP, m.AckPH
		return
	}
	if r := tp.checkUp(i, m); r != rejNone {
		if tp.kidHavePend[i] && m == tp.kidPend[i] {
			tp.kidHavePend[i] = false
		} else {
			tp.kidPend[i] = m
			tp.kidHavePend[i] = true
			tp.b.countReject(r)
			return
		}
	} else {
		tp.kidHavePend[i] = false
	}
	if m.SN.Ordinary() {
		tp.kidSN[i], tp.kidCP[i], tp.kidPH[i] = m.SN, m.CP, m.PH
	}
	if m.AckSN.Ordinary() {
		tp.kidAckSN[i], tp.kidAckCP[i], tp.kidAckPH[i] = m.AckSN, m.AckCP, m.AckPH
	}
}

func (tp *treeProc) onCtrl(c ctrlMsg) {
	switch c.kind {
	case ctrlArrive:
		tp.onArrive(c)
	case ctrlReset:
		if tp.crashed {
			return // a crashed node has no state left to lose
		}
		tp.resetDT()
	case ctrlScramble:
		if tp.crashed {
			return
		}
		rng := prng.New(c.seed)
		randomSN := func() tokenring.SN {
			v := rng.Intn(tp.b.l + 2)
			switch v {
			case tp.b.l:
				return tokenring.Bot
			case tp.b.l + 1:
				return tokenring.Top
			default:
				return tokenring.SN(v)
			}
		}
		randomCP := func() core.CP { return core.CP(rng.Intn(core.NumCP)) }
		randomPH := func() int { return rng.Intn(tp.b.nPhases) }
		tp.sn, tp.cp, tp.ph = randomSN(), randomCP(), randomPH()
		tp.ackSN, tp.ackCP, tp.ackPH = randomSN(), randomCP(), randomPH()
		tp.pSN, tp.pCP, tp.pPH = randomSN(), randomCP(), randomPH()
		for i := range tp.kids {
			tp.kidSN[i], tp.kidCP[i], tp.kidPH[i] = randomSN(), randomCP(), randomPH()
			tp.kidAckSN[i], tp.kidAckCP[i], tp.kidAckPH[i] = randomSN(), randomCP(), randomPH()
			tp.kidHavePend[i] = false
		}
		tp.havePendDown = false
		tp.noteFault()
	case ctrlCrash:
		// The crash fault class: the node goes down and stays down until
		// Restart revives it.
		tp.crashed = true
	case ctrlRestart:
		// Section 7 restart: revive in the detectably-reset state, so the
		// tree masks the rejoin like any other detectable fault.
		tp.crashed = false
		tp.resetDT()
	case ctrlByzDown:
		tp.onByzDown(c.seed)
	case ctrlByzUp:
		tp.onByzUp(c.from, c.seed)
	}
}

// resetDT is DT's detectable fault action (shared by ctrlReset and the
// restart half of the crash fault class); see the ring resetMB for the
// workVoided rationale.
func (tp *treeProc) resetDT() {
	workVoided := tp.cp == core.Execute || tp.cp == core.Error
	if tp.cp != core.Error {
		tp.b.emit(core.Event{Kind: core.EvReset, Proc: tp.id, Phase: tp.ph})
	}
	tp.resetState()
	if workVoided {
		tp.failPending(ErrReset)
	}
	tp.noteFault()
}

// injectSpurious delivers a forged, well-formed announcement to this node:
// a parent announcement for non-roots, a child announcement at the root.
func (tp *treeProc) injectSpurious(seed int64) {
	rng := prng.New(seed)
	randomSN := func() tokenring.SN {
		v := rng.Intn(tp.b.l + 2)
		switch v {
		case tp.b.l:
			return tokenring.Bot
		case tp.b.l + 1:
			return tokenring.Top
		default:
			return tokenring.SN(v)
		}
	}
	tp.b.statSpurious.Add(1)
	if tp.parentID < 0 {
		m := UpMessage{
			Child: tp.kids[rng.Intn(len(tp.kids))],
			SN:    randomSN(),
			CP:    core.CP(rng.Intn(core.NumCP)),
			PH:    rng.Intn(tp.b.nPhases),
			AckSN: randomSN(),
			AckCP: core.CP(rng.Intn(core.NumCP)),
			AckPH: rng.Intn(tp.b.nPhases),
		}
		m.Sum = m.Checksum()
		if !tp.link.InjectUp(m) {
			tp.b.statDrops.Add(1)
		}
		return
	}
	m := Message{
		SN: randomSN(),
		CP: core.CP(rng.Intn(core.NumCP)),
		PH: rng.Intn(tp.b.nPhases),
	}
	m.Sum = m.Checksum()
	if !tp.link.InjectDown(m) {
		// The mailbox holds a genuine in-flight announcement; the forgery
		// loses the race (see the ring InjectSpurious).
		tp.b.statDrops.Add(1)
	}
}

// step applies every enabled DT action to quiescence: D.j/B.j (or R.0 at
// the root), U.j, and the ⊤ restart wave T3/T4/T5.
func (tp *treeProc) step() {
	if tp.crashed {
		return
	}
	for {
		changed := false
		if tp.parentID < 0 {
			changed = tp.stepRoot() || changed
		} else {
			changed = tp.stepDown() || changed
			changed = tp.stepBottomUp() || changed
		}
		changed = tp.stepAck() || changed
		changed = tp.stepRestart() || changed
		if !changed {
			return
		}
	}
}

// stepRoot is action R.0: the root advances the wave when its whole tree
// has acknowledged; a detectably corrupted root resynchronizes from the
// live state of a non-corrupted child (never from an acknowledgment
// summary, which may describe an older wave), the recovery wave marked
// repeat so the current phase is re-executed.
func (tp *treeProc) stepRoot() bool {
	if tp.sn.Ordinary() {
		if tp.ackSN != tp.sn {
			return false
		}
		cpN, phN := tp.foldKidAcks()
		if tp.cp == core.Error || tp.cp == core.Repeat {
			// The root lost its own phase: recover it from a live child's
			// announced state rather than a possibly stale summary.
			for i := range tp.kids {
				if tp.kidSN[i].Ordinary() {
					phN = tp.kidPH[i]
					break
				}
			}
		}
		newCP, newPH, out := core.LeaderUpdate(tp.cp, tp.ph, cpN, phN, tp.b.nPhases)
		// The work gate: the completion transition waits for the root's
		// participant to arrive at the barrier.
		if out == core.OutComplete && tp.completionBlocked() {
			return false
		}
		oldPH := tp.ph
		tp.sn = tokenring.SN((int(tp.sn) + 1) % tp.b.l)
		tp.cp = newCP
		tp.ph = newPH
		tp.applyOutcome(out, oldPH, newPH)
		return true
	}
	if tp.sn == tokenring.Bot {
		for i := range tp.kids {
			if tp.kidSN[i].Ordinary() {
				tp.sn = tokenring.SN((int(tp.kidSN[i]) + 1) % tp.b.l)
				tp.cp = core.Repeat
				tp.ph = tp.kidPH[i]
				return true
			}
		}
	}
	return false
}

// stepDown is action D.j: adopt the parent's wave.
func (tp *treeProc) stepDown() bool {
	if !tp.pSN.Ordinary() || tp.sn == tp.pSN {
		return false
	}
	newCP, newPH, out := core.FollowerUpdate(tp.cp, tp.ph, tp.pCP, tp.pPH)
	// The work gate, as in D.j's guard: the completing wave waits for this
	// node's participant.
	if out == core.OutComplete && tp.completionBlocked() {
		return false
	}
	oldPH := tp.ph
	tp.sn = tp.pSN
	tp.cp = newCP
	tp.ph = newPH
	tp.applyOutcome(out, oldPH, newPH)
	return true
}

// stepBottomUp is action B.j: an internal node whose sequence number was
// corrupted while its parent's is too (so the down wave cannot repair it)
// adopts a live child's wave and phase, marked repeat. Without it a
// simultaneous corruption of a whole root-path would deadlock.
func (tp *treeProc) stepBottomUp() bool {
	if tp.sn.Ordinary() || tp.pSN.Ordinary() {
		return false
	}
	for i := range tp.kids {
		if tp.kidSN[i].Ordinary() {
			tp.sn = tp.kidSN[i]
			tp.cp = core.Repeat
			tp.ph = tp.kidPH[i]
			return true
		}
	}
	return false
}

// stepAck is action U.j: acknowledge the current wave once every child
// has, folding the children's summaries with this node's own state —
// disagreement reads as repeat, forcing the root to re-execute.
func (tp *treeProc) stepAck() bool {
	if !tp.sn.Ordinary() || tp.ackSN == tp.sn {
		return false
	}
	for i := range tp.kids {
		if tp.kidAckSN[i] != tp.sn {
			return false
		}
	}
	cp, ph := tp.cp, tp.ph
	for i := range tp.kids {
		if tp.kidAckCP[i] != cp || tp.kidAckPH[i] != ph {
			cp = core.Repeat
		}
	}
	tp.ackSN, tp.ackCP, tp.ackPH = tp.sn, cp, ph
	return true
}

// stepRestart is the whole-tree-corruption restart wave: T3 (a leaf turns
// ⊥ into ⊤), T4 (an inner node whose children all reached ⊤ follows), T5
// (the root turns ⊤ into wave 0, restarting the tree).
func (tp *treeProc) stepRestart() bool {
	if tp.sn == tokenring.Bot {
		if len(tp.kids) == 0 {
			tp.sn = tokenring.Top // T3
			return true
		}
		for i := range tp.kids {
			if tp.kidSN[i] != tokenring.Top {
				return false
			}
		}
		tp.sn = tokenring.Top // T4
		return true
	}
	if tp.parentID < 0 && tp.sn == tokenring.Top {
		tp.sn = 0 // T5
		return true
	}
	return false
}

// foldKidAcks merges the children's summaries (what R.0 passes to the
// leader update: the state of all non-root processes).
func (tp *treeProc) foldKidAcks() (core.CP, int) {
	cp, ph := tp.kidAckCP[0], tp.kidAckPH[0]
	for i := 1; i < len(tp.kids); i++ {
		if tp.kidAckCP[i] != cp || tp.kidAckPH[i] != ph {
			cp = core.Repeat
		}
	}
	return cp, ph
}

// announce sends the node's current state down every child edge and its
// state+acknowledgment up the parent edge, if they changed since the last
// send, subject to the configured loss and corruption rates (injected
// above the transport, as in the ring).
func (tp *treeProc) announce(lossRate, corruptRate float64) {
	if tp.crashed {
		return
	}
	if len(tp.kids) > 0 {
		m := Message{SN: tp.sn, CP: tp.cp, PH: tp.ph}
		m.Sum = m.Checksum()
		if !tp.haveSentDown || m != tp.lastDown {
			tp.lastDown = m
			tp.haveSentDown = true
			tp.sentSinceTick = true
			for _, c := range tp.kids {
				tp.b.statSends.Add(1)
				if lossRate > 0 && tp.rng.Float64() < lossRate {
					tp.b.statDrops.Add(1)
					continue
				}
				mm := m
				if corruptRate > 0 && tp.rng.Float64() < corruptRate {
					mm.Sum ^= 0xdeadbeef
				}
				tp.link.SendDown(c, mm)
			}
		}
	}
	if tp.parentID >= 0 {
		u := UpMessage{
			Child: tp.id,
			SN:    tp.sn, CP: tp.cp, PH: tp.ph,
			AckSN: tp.ackSN, AckCP: tp.ackCP, AckPH: tp.ackPH,
		}
		u.Sum = u.Checksum()
		if !tp.haveSentUp || tp.upUrgent(u) {
			tp.lastUp = u
			tp.haveSentUp = true
			tp.sentSinceTick = true
			tp.b.statSends.Add(1)
			if lossRate > 0 && tp.rng.Float64() < lossRate {
				tp.b.statDrops.Add(1)
				return
			}
			if corruptRate > 0 && tp.rng.Float64() < corruptRate {
				u.Sum ^= 0xdeadbeef
			}
			tp.link.SendUp(u)
		}
	}
}

// upUrgent decides whether a changed up announcement is sent eagerly or
// left to the periodic retransmission. The parent acts immediately only on
// the acknowledgment summary (its convergecast, action U.j) and on a
// non-ordinary live sequence number (the ⊤ restart wave, T4); the ordinary
// live state is read only by the tick-paced recovery actions, so an
// internal node that just adopted a wave need not wake its parent — the
// acknowledgment it sends moments later carries the same live state. This
// halves an internal node's up traffic per wave.
func (tp *treeProc) upUrgent(u UpMessage) bool {
	if u == tp.lastUp {
		return false
	}
	return u.AckSN != tp.lastUp.AckSN || u.AckCP != tp.lastUp.AckCP ||
		u.AckPH != tp.lastUp.AckPH || !u.SN.Ordinary()
}
