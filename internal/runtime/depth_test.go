package runtime

// Tests for wave pipelining (Config.Depth): the windowed Await must
// overlap up to Depth barrier instances without losing, doubling, or
// reordering passes — under cancellation and under faults.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/topo"
)

func TestDepthValidation(t *testing.T) {
	if _, err := New(Config{Participants: 2, Depth: -1}); err == nil {
		t.Error("negative Depth should be rejected")
	}
	tr := NewChanTransport(2)
	if _, err := New(Config{Participants: 2, Depth: 2, Transport: tr}); err == nil {
		t.Error("Depth > 1 over a single Transport should be rejected")
	}
	if _, err := New(Config{Participants: 2, Depth: 2,
		LaneTransports: []Transport{tr}}); err == nil {
		t.Error("len(LaneTransports) != Depth should be rejected")
	}
	if _, err := New(Config{Participants: 2, Depth: 1, Transport: tr,
		LaneTransports: []Transport{tr}}); err == nil {
		t.Error("Transport and LaneTransports together should be rejected")
	}
}

// depthTopologies enumerates the scheduler shapes under a Depth-4 window.
func depthTopologies(t *testing.T, n int) map[string]Config {
	t.Helper()
	return map[string]Config{
		"ring":  {Participants: n, Depth: 4, Seed: 11},
		"fused": {Participants: n, Depth: 4, Topology: TopologyTree, Seed: 11},
		"hybrid": {Participants: n, Depth: 4, Topology: TopologyHybrid, Seed: 11,
			Hosts: [][]int{{0, 1}, {2, 3}}},
	}
}

// Fault-free pipelined rounds: every worker sees the synthesized phase
// counter advance by exactly one per pass, in every topology.
func TestPipelinedFaultFree(t *testing.T) {
	const n, rounds = 4, 100
	for name, cfg := range depthTopologies(t, n) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			b, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			var wg sync.WaitGroup
			errs := make(chan error, n)
			for id := 0; id < n; id++ {
				id := id
				wg.Add(1)
				go func() {
					defer wg.Done()
					last := -1
					for r := 0; r < rounds; r++ {
						ph, err := b.Await(ctx, id)
						if err != nil {
							errs <- err
							return
						}
						if last != -1 && ph != (last+1)%b.NumPhases() {
							errs <- errors.New("pipelined phase order violated")
							return
						}
						last = ph
					}
				}()
			}
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			// Every reaped wave was counted; the tail of the window (waves
			// entered by the final Awaits but never reaped) may add up to
			// Depth-1 more per participant.
			got := b.Stats().Passes
			if got < int64(n*rounds) || got > int64(n*(rounds+b.Depth()-1)) {
				t.Errorf("Stats.Passes = %d, want in [%d, %d]", got, n*rounds, n*(rounds+b.Depth()-1))
			}
		})
	}
}

// The window actually pipelines: with Depth = 4 a fast worker may run
// ahead of a slow one by more than one round (impossible at Depth 1),
// but never by more than Depth rounds.
func TestPipelinedSkewBound(t *testing.T) {
	const n, rounds, depth = 3, 200, 4
	b, err := New(Config{Participants: n, Depth: depth, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var round [n]atomic.Int64
	var maxSkew atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if id == n-1 {
					time.Sleep(50 * time.Microsecond) // the deliberately slow worker
				}
				if _, err := b.Await(ctx, id); err != nil {
					errs <- err
					return
				}
				mine := round[id].Add(1)
				for other := range round {
					if skew := mine - round[other].Load(); skew > maxSkew.Load() {
						maxSkew.Store(skew)
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := maxSkew.Load(); got > depth {
		t.Errorf("round skew %d exceeds the window depth %d", got, depth)
	}
	if got := maxSkew.Load(); got < 2 {
		t.Errorf("round skew never exceeded 1 (max %d): the window is not pipelining", got)
	}
}

// Resets under a Depth-4 window: ErrReset waves are redone on the same
// lane, the synthesized phase counter never skips or repeats, and the
// forced re-executions show up in WastedInstances. Workers are
// free-running — a reset racing a completion may legally leave the
// victim one delivered pass behind its peers, so fixed-round loops
// would wedge once the peers finish.
func TestPipelinedResetRedo(t *testing.T) {
	const n = 4
	reg := obsv.NewRegistry()
	b, err := New(Config{Participants: n, Depth: 4, Seed: 13, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var passes [n]atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				ph, err := b.Await(ctx, id)
				switch {
				case err == nil:
					if last != -1 && ph != (last+1)%b.NumPhases() {
						errs <- errors.New("phase order violated across reset redo")
						return
					}
					last = ph
					passes[id].Add(1)
				case errors.Is(err, ErrReset):
					// redo the phase work; the wave stays at the window head
				default:
					return // ctx canceled: done
				}
			}
		}()
	}

	// A bounded round-robin burst of resets across all members.
	for i := 0; i < 40; i++ {
		time.Sleep(300 * time.Microsecond)
		b.Reset(i % n)
	}

	// Liveness: every worker gains 5 fresh passes after the faults stop.
	var base [n]int64
	for id := range base {
		base[id] = passes[id].Load()
	}
	deadline := time.Now().Add(30 * time.Second)
	for id := 0; id < n; id++ {
		for passes[id].Load() < base[id]+5 {
			if time.Now().After(deadline) {
				t.Fatalf("worker %d made no progress after resets stopped", id)
			}
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	s := b.Stats()
	if s.ResetsInjected == 0 {
		t.Error("no resets were accepted; the fault path was not exercised")
	}
	if s.WastedInstances == 0 {
		t.Error("resets at depth forced no re-executed instances; WastedInstances not counting")
	}
	// The exported wasted-work numerator must agree with the snapshot now
	// that the protocol goroutines are quiescent.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("barrier_wasted_instances_total %d\n", s.WastedInstances)
	if !strings.Contains(sb.String(), want) {
		t.Errorf("scrape does not carry %q", strings.TrimSpace(want))
	}
}

// The cancel-mid-phase sweep of PR 4, under a Depth-4 window and across
// all four topologies: a context canceled in the instant a wave
// completes must not lose the wave, deliver it twice, or reorder the
// window.
func TestAwaitCancelMidWindow(t *testing.T) {
	const n, rounds, depth = 4, 150, 4
	shape, err := topo.NewKAryTree(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	lanes := make([]Transport, depth)
	for i := range lanes {
		lanes[i] = NewChanTreeTransport(shape.Parent)
	}
	configs := map[string]Config{
		"ring":  {Participants: n, Depth: depth, Seed: 11},
		"fused": {Participants: n, Depth: depth, Topology: TopologyTree, Seed: 11},
		"tree": {Participants: n, Depth: depth, Topology: TopologyTree, Seed: 11,
			LaneTransports: lanes,
			Members:        []int{0, 1, 2, 3}},
		"hybrid": {Participants: n, Depth: depth, Topology: TopologyHybrid, Seed: 11,
			Hosts: [][]int{{0, 1}, {2, 3}}},
	}
	for _, name := range []string{"ring", "fused", "tree", "hybrid"} {
		cfg := configs[name]
		t.Run(name, func(t *testing.T) {
			b, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Stop()

			ctx, cancelAll := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancelAll()
			var wg sync.WaitGroup
			errs := make(chan error, n)

			// Participants 1..n-1: Await loops with a small stagger.
			for id := 1; id < n; id++ {
				id := id
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						time.Sleep(time.Duration(20+10*(r%5)) * time.Microsecond)
						if _, err := b.Await(ctx, id); err != nil {
							errs <- err
							return
						}
					}
				}()
			}

			// Participant 0: cancels mid-window, then retries. The sweep
			// covers cancellations landing inside Enter's top-up loop (some
			// lanes entered, some not) as well as inside Leave.
			wg.Add(1)
			go func() {
				defer wg.Done()
				lastPh, canceled, attempt := -1, 0, 0
				for passes := 0; passes < rounds; {
					attempt++
					timeout := time.Duration(1+attempt%120) * time.Microsecond
					cctx, cancel := context.WithTimeout(ctx, timeout)
					ph, err := b.Await(cctx, 0)
					cancel()
					switch {
					case err == nil:
						if lastPh != -1 {
							if want := (lastPh + 1) % b.NumPhases(); ph != want {
								errs <- errors.New("victim phase order violated: a wave was lost, doubled, or reordered")
								return
							}
						}
						lastPh = ph
						passes++
					case errors.Is(err, context.DeadlineExceeded):
						canceled++
					default:
						errs <- err
						return
					}
				}
				if canceled == 0 {
					t.Error("no cancellation fired mid-window; the race window was not exercised")
				}
			}()

			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			// Every reaped wave is counted exactly once. The window tail —
			// waves the final Awaits entered but never reaped — may complete
			// and add up to Depth-1 counted passes per participant.
			got := b.Stats().Passes
			if got < int64(n*rounds) || got > int64(n*(rounds+depth-1)) {
				t.Errorf("Stats.Passes = %d, want in [%d, %d] (a cancel double-counted or lost a wave)",
					got, n*rounds, n*(rounds+depth-1))
			}
		})
	}
}

// A context canceled while the pipeline window drains during fault
// recovery must not double-count barrier_wasted_instances_total. The
// oracle is the begin/pass/wasted conservation law, counted from the
// event trace: every delivered pass plus every wasted instance consumes a
// recorded begin, up to the implicit phase-0 begins and the window's
// outstanding waves. A cancel that books the same voided instance twice
// inflates the wasted counter past what the begins can cover; a storm of
// cancellations makes any systematic over-count blow through the bounded
// slack. Swept across topologies and window depths.
func TestCancelDuringRecoveryWastedAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	const n = 4
	for _, depth := range []int{1, 2, 4} {
		for _, name := range []string{"ring", "tree", "hybrid"} {
			cfg := Config{Participants: n, Depth: depth, Seed: 17}
			switch name {
			case "tree":
				cfg.Topology = TopologyTree
			case "hybrid":
				cfg.Topology = TopologyHybrid
				cfg.Hosts = [][]int{{0, 1}, {2, 3}}
			}
			t.Run(fmt.Sprintf("%s/depth=%d", name, depth), func(t *testing.T) {
				reg := obsv.NewRegistry()
				var begins atomic.Int64
				cfg.Metrics = reg
				cfg.EventSink = func(e core.Event) {
					if e.Kind == core.EvBegin {
						begins.Add(1)
					}
				}
				b, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer b.Stop()

				ctx, cancelAll := context.WithCancel(context.Background())
				defer cancelAll()
				var passes [n]atomic.Int64
				var wg sync.WaitGroup
				errs := make(chan error, n)

				// Participants 1..n-1: Await loops redoing reset phases.
				for id := 1; id < n; id++ {
					id := id
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							_, err := b.Await(ctx, id)
							switch {
							case err == nil:
								passes[id].Add(1)
							case errors.Is(err, ErrReset):
							default:
								return
							}
						}
					}()
				}
				// Participant 0: a cancel storm — short deadlines landing
				// inside the window drain — interleaved with the redo loop.
				wg.Add(1)
				go func() {
					defer wg.Done()
					canceled, attempt := 0, 0
					for {
						attempt++
						cctx, cancel := context.WithTimeout(ctx, time.Duration(1+attempt%150)*time.Microsecond)
						_, err := b.Await(cctx, 0)
						cancel()
						switch {
						case err == nil:
							passes[0].Add(1)
						case errors.Is(err, context.DeadlineExceeded):
							canceled++
						case errors.Is(err, ErrReset):
						default:
							if ctx.Err() == nil {
								errs <- err
							}
							return
						}
					}
				}()

				// The recovery the cancels land in: a round-robin reset storm.
				for i := 0; i < 40; i++ {
					time.Sleep(300 * time.Microsecond)
					b.Reset(i % n)
				}

				// Liveness tail: every member gains 3 fresh passes.
				var base [n]int64
				for id := range base {
					base[id] = passes[id].Load()
				}
				deadline := time.Now().Add(30 * time.Second)
				for id := 0; id < n; id++ {
					for passes[id].Load() < base[id]+3 {
						if time.Now().After(deadline) {
							t.Fatalf("member %d made no progress after the storm", id)
						}
						time.Sleep(time.Millisecond)
					}
				}
				cancelAll()
				wg.Wait()
				b.Stop()
				select {
				case err := <-errs:
					t.Fatal(err)
				default:
				}

				st := b.Stats()
				if st.ResetsInjected == 0 {
					t.Fatal("no reset was accepted; the recovery path was not exercised")
				}
				residual := begins.Load() - st.Passes - st.WastedInstances
				// Each lane gate's first pass may consume its member's
				// implicit phase-0 begin, so the floor is n - n*depth; any
				// systematic double-count drives the residual far below it.
				low := int64(n) - int64(n*depth)
				// Outstanding waves (begun, never reaped) plus reset redos
				// bound the other side.
				high := int64(n) + int64(n*depth) + st.ResetsInjected*int64(depth+1)
				if residual < low || residual > high {
					t.Errorf("begins(%d) - passes(%d) - wasted(%d) = %d, want in [%d, %d] (wasted instances double-counted or lost)",
						begins.Load(), st.Passes, st.WastedInstances, residual, low, high)
				}
				// The exported series must agree with the snapshot exactly
				// now that the protocol goroutines are quiescent.
				var sb strings.Builder
				if err := reg.WriteText(&sb); err != nil {
					t.Fatal(err)
				}
				want := fmt.Sprintf("barrier_wasted_instances_total %d\n", st.WastedInstances)
				if !strings.Contains(sb.String(), want) {
					t.Errorf("scrape does not carry %q", strings.TrimSpace(want))
				}
			})
		}
	}
}
