// Fused execution of the tree runtime: when a TopologyTree barrier hosts
// every member in this process and no explicit transport was supplied, the
// members do not need a goroutine (and two channel hops) per tree edge —
// the whole collective runs on ONE scheduler goroutine, and an
// announcement is delivered by refreshing the receiver's local copy
// directly and queueing the receiver for its next step. A wave then
// ripples through the entire tree inside a single wakeup instead of
// paying a park/unpark cycle per node, which on the in-process hot path
// is most of the cost of a pass.
//
// The protocol is unchanged: the scheduler runs the same treeProc state
// machines, the same guarded actions (step), and the same announcement
// discipline (announce, including the configured loss/corruption draws
// and the checksum verification at the receiver) as the goroutine-per-
// member mode, which remains in use whenever an explicit transport is
// configured — in particular for every distributed deployment. What the
// fusion changes is only the schedule: actions interleave at step
// granularity under a deterministic work queue, one of the legal
// schedules of the asynchronous protocol (compare the guarded engine's
// maximal-parallel scheduler).
//
// Asynchronous inputs still arrive over channels, because their senders
// are other goroutines: participant arrivals and fault injections on a
// control channel shared by all members, and spurious-message injections
// in per-link mailboxes flagged by a nudge channel.
package runtime

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/topo"
)

// startFusedTree wires the single-goroutine tree: every member is local,
// links deliver by direct copy refresh.
func (b *Barrier) startFusedTree(cfg Config, tree *topo.Tree, ln *lane) error {
	f := newFusedTree(b)
	for id := 0; id < b.n; id++ {
		f.addMember(cfg, ln, id, tree.Parent[id], tree.Children[id])
	}
	f.start(cfg)
	return nil
}

// startHybrid wires the two-level hybrid topology. With no transport
// every host is local and the member-level tree (stars under host roots,
// host roots in the cross-host tree) runs fused in one goroutine. With a
// TreeTransport — opened over HOST indices, one process per host — this
// process runs exactly one host's members fused, and the fused scheduler
// presents that whole subtree as one node on the external host-tree
// edges: down messages from the parent host refresh the local host
// root's parent copy, and the host root's convergecast acknowledgment —
// already the aggregate of its entire local subtree — is the only thing
// that crosses the network upward.
func (b *Barrier) startHybrid(cfg Config, members []int, ln *lane) error {
	arity := cfg.TreeArity
	if arity == 0 {
		arity = 2
	}
	hy, err := topo.NewHybridTree(cfg.Hosts, arity)
	if err != nil {
		return fmt.Errorf("ftbarrier: %w", err)
	}
	if len(hy.HostOf) != b.n {
		return fmt.Errorf("ftbarrier: Hosts cover %d members, Participants = %d", len(hy.HostOf), b.n)
	}
	if cfg.Transport == nil {
		// Every host is local: the hybrid member tree runs fully fused.
		return b.startFusedTree(cfg, hy.Tree, ln)
	}
	tt, ok := cfg.Transport.(TreeTransport)
	if !ok {
		return errors.New("ftbarrier: Topology == TopologyHybrid requires a tree transport over the host indices (transport.NewTCPTree)")
	}
	return b.startFusedHybrid(cfg, hy, members, tt, ln)
}

// startFusedHybrid wires one host's fused subtree into the cross-host
// tree: Members must be exactly one entry of Hosts, and the transport's
// node space is the host indices.
func (b *Barrier) startFusedHybrid(cfg Config, hy *topo.Hybrid, members []int, tt TreeTransport, ln *lane) error {
	if len(members) == 0 || len(members) == b.n {
		return errors.New("ftbarrier: hybrid over a transport needs Members = the roster of exactly one host")
	}
	host := hy.HostOf[members[0]]
	roster := hy.Hosts[host]
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	if len(sorted) != len(roster) {
		return fmt.Errorf("ftbarrier: Members must be exactly host %d's roster %v, got %v", host, roster, members)
	}
	for i, j := range sorted {
		if roster[i] != j {
			return fmt.Errorf("ftbarrier: Members must be exactly host %d's roster %v, got %v", host, roster, members)
		}
	}
	ext, err := tt.OpenTree(host)
	if err != nil {
		return fmt.Errorf("ftbarrier: open host-tree link for host %d: %w", host, err)
	}
	ln.links = append(ln.links, ext)
	f := newFusedTree(b)
	f.ext = ext
	f.extRoot = hy.HostRoot[host]
	f.hostIdx = host
	f.hostOf = hy.HostOf
	f.hostRoot = hy.HostRoot
	for _, id := range roster {
		f.addMember(cfg, ln, id, hy.Tree.Parent[id], hy.Tree.Children[id])
	}
	f.start(cfg)
	return nil
}

// newFusedTree builds an empty scheduler; addMember populates it.
func newFusedTree(b *Barrier) *fusedTree {
	return &fusedTree{
		b:     b,
		procs: make([]*treeProc, b.n),
		// The shared control channel: at most one outstanding arrival per
		// participant, plus headroom for fault-injection bursts (inject
		// drops on overflow, as in the per-member mode).
		ctrl:  make(chan ctrlMsg, 4*b.n+16),
		nudge: make(chan struct{}, 1),
		dirty: make([]bool, b.n),
		queue: make([]int, 0, b.n),
	}
}

// addMember creates the fused proc and link for one local member.
func (f *fusedTree) addMember(cfg Config, ln *lane, id, parent int, kids []int) {
	link := &fusedTreeLink{
		f:       f,
		id:      id,
		injDown: make(chan Message, 1),
		injUp:   make(chan UpMessage, 2),
	}
	ln.links = append(ln.links, link)
	tp := newTreeProc(f.b, id, parent, kids, link, cfg)
	tp.gate.ctrl = f.ctrl // all gates feed the one scheduler
	f.procs[id] = tp
	ln.tprocs[id] = tp
	ln.gates[id] = tp.gate
}

// start launches the scheduler goroutine.
func (f *fusedTree) start(cfg Config) {
	f.b.wg.Add(1)
	go func() {
		defer f.b.wg.Done()
		f.run(cfg.Resend, cfg.LossRate, cfg.CorruptRate)
	}()
}

// fusedTree is the scheduler: a work queue of members with unprocessed
// input or unapplied enabled actions. All proc and gate state is owned by
// the scheduler goroutine; only the channels are shared.
type fusedTree struct {
	b     *Barrier
	procs []*treeProc // indexed by member id; nil for members of other hosts

	ctrl  chan ctrlMsg
	nudge chan struct{}

	dirty []bool
	queue []int
	head  int

	// Hybrid host-tree attachment (nil/zero when every member is local):
	// ext is this host's edge set in the cross-host tree (node space =
	// host indices), extRoot the local host-root member whose remote
	// edges route through it, hostIdx this host's index, hostOf the
	// member→host map for addressing down sends to remote child hosts,
	// hostRoot the host→root-member map for attributing received up
	// summaries.
	ext      TreeLink
	extRoot  int
	hostIdx  int
	hostOf   []int
	hostRoot []int
}

// remapUpChild rewrites an up summary's Child for the member↔host-index
// translation at the external edge, preserving the message's integrity
// status: the checksum covers Child, so a plain rewrite would either
// invalidate a genuine message or — worse — launder a corrupted one into
// validity. A message that arrived corrupted leaves corrupted.
func remapUpChild(m UpMessage, child int) UpMessage {
	valid := m.Sum == m.Checksum()
	m.Child = child
	m.Sum = m.Checksum()
	if !valid {
		m.Sum ^= 0xdeadbeef
	}
	return m
}

// mark queues member id for a step unless it is already queued.
func (f *fusedTree) mark(id int) {
	if !f.dirty[id] {
		f.dirty[id] = true
		f.queue = append(f.queue, id)
	}
}

// drain steps queued members to quiescence. Announcements made during a
// step deliver immediately and re-queue their receivers, so one drain
// carries a wave as far as the protocol allows.
func (f *fusedTree) drain(lossRate, corruptRate float64) {
	for f.head < len(f.queue) {
		id := f.queue[f.head]
		f.head++
		f.dirty[id] = false
		tp := f.procs[id]
		tp.step()
		tp.announce(lossRate, corruptRate)
	}
	f.queue = f.queue[:0]
	f.head = 0
}

// onCtrl dispatches a control message to its target member.
func (f *fusedTree) onCtrl(c ctrlMsg) {
	if c.id < 0 || c.id >= len(f.procs) || f.procs[c.id] == nil {
		return
	}
	f.procs[c.id].onCtrl(c)
	f.mark(c.id)
}

// onExtDown delivers a host-tree announcement from the parent host: it
// refreshes the local host root's parent copy (checksum verification and
// all fault branches are the root's own onDown).
func (f *fusedTree) onExtDown(m Message) {
	f.procs[f.extRoot].onDown(m)
	f.mark(f.extRoot)
}

// onExtUp delivers a child host's convergecast summary to the local host
// root. On the wire Child is the sending HOST index (the TCP transport
// cross-checks it against the hello identity); here it is translated to
// that host's root member — the child the member-level tree lists under
// our root. An out-of-range host index cannot be attributed to any edge:
// a sender violation, rejected and counted like onUp's unknown child.
func (f *fusedTree) onExtUp(m UpMessage) {
	if m.Child < 0 || m.Child >= len(f.hostRoot) {
		f.b.statRejSender.Add(1)
		return
	}
	f.procs[f.extRoot].onUp(remapUpChild(m, f.hostRoot[m.Child]))
	f.mark(f.extRoot)
}

// sweepInjections drains every link's spurious-injection mailboxes.
func (f *fusedTree) sweepInjections() {
	for _, tp := range f.procs {
		if tp == nil {
			continue
		}
		l := tp.link.(*fusedTreeLink)
		for {
			select {
			case m := <-l.injDown:
				tp.onDown(m)
				f.mark(tp.id)
				continue
			default:
			}
			select {
			case m := <-l.injUp:
				tp.onUp(m)
				f.mark(tp.id)
				continue
			default:
			}
			break
		}
	}
}

// onTick applies the quiet-edge retransmission policy to every member
// (see the per-member run loops) and queues them so the resends go out.
func (f *fusedTree) onTick() {
	for _, tp := range f.procs {
		if tp == nil {
			continue
		}
		if tp.sentSinceTick {
			tp.sentSinceTick = false
		} else {
			tp.haveSentDown = false
			tp.haveSentUp = false
		}
		f.mark(tp.id)
	}
}

func (f *fusedTree) run(resend time.Duration, lossRate, corruptRate float64) {
	ticker := time.NewTicker(resend)
	defer ticker.Stop()

	// The external host-tree edges, when this fused subtree is one node
	// of a cross-host hybrid; nil channels (never ready) otherwise.
	var extDown <-chan Message
	var extUp <-chan UpMessage
	if f.ext != nil {
		extDown = f.ext.Down()
		extUp = f.ext.Up()
	}

	for _, tp := range f.procs {
		if tp != nil {
			f.mark(tp.id) // prime the tree
		}
	}
	f.drain(lossRate, corruptRate)
	for {
		// Fast path: consume already-queued input without a blocking
		// select (an empty-channel poll is lock-free).
		busy := false
		for {
			progressed := false
			select {
			case c := <-f.ctrl:
				f.onCtrl(c)
				progressed = true
			default:
			}
			select {
			case <-f.nudge:
				f.sweepInjections()
				progressed = true
			default:
			}
			if f.ext != nil {
				select {
				case m := <-extDown:
					f.onExtDown(m)
					progressed = true
				default:
				}
				for drained := false; !drained; {
					select {
					case m := <-extUp:
						f.onExtUp(m)
						progressed = true
					default:
						drained = true
					}
				}
			}
			if !progressed {
				break
			}
			busy = true
			f.drain(lossRate, corruptRate)
		}
		if busy {
			select {
			case <-f.b.stopped:
				return
			case <-f.b.halted:
				return // fail-safe halt: quiesce
			default:
			}
			continue
		}

		// Idle: the whole collective is quiescent; park.
		select {
		case <-f.b.stopped:
			return
		case <-f.b.halted:
			return
		case c := <-f.ctrl:
			f.onCtrl(c)
		case <-f.nudge:
			f.sweepInjections()
		case m := <-extDown:
			f.onExtDown(m)
		case m := <-extUp:
			f.onExtUp(m)
		case <-ticker.C:
			f.onTick()
		}
		f.drain(lossRate, corruptRate)
	}
}

// fusedTreeLink is a member's tree link in fused mode: sends refresh the
// receiving member's copies directly (the caller is always the scheduler
// goroutine); the channels exist only for spurious-message injection,
// whose senders are participant goroutines.
type fusedTreeLink struct {
	f  *fusedTree
	id int

	injDown chan Message
	injUp   chan UpMessage
}

func (l *fusedTreeLink) SendDown(child int, m Message) {
	if child < 0 || child >= len(l.f.procs) {
		return
	}
	tp := l.f.procs[child]
	if tp == nil {
		// A remote child: in the hybrid, the host root's children of other
		// hosts are reached over the external host-tree edge, addressed by
		// host index. (Only the host root has remote children.)
		if l.f.ext != nil && l.id == l.f.extRoot {
			l.f.ext.SendDown(l.f.hostOf[child], m)
		}
		return
	}
	if tp.parentID != l.id {
		return
	}
	tp.onDown(m)
	l.f.mark(child)
}

func (l *fusedTreeLink) SendUp(m UpMessage) {
	p := l.f.procs[l.id].parentID
	if p < 0 {
		return
	}
	if p >= len(l.f.procs) || l.f.procs[p] == nil {
		// The host root's parent lives on another host: the up summary —
		// the aggregate acknowledgment of this entire fused subtree — is
		// the one message that crosses the network, with Child translated
		// to our host index (the transport's node space).
		if l.f.ext != nil && l.id == l.f.extRoot {
			l.f.ext.SendUp(remapUpChild(m, l.f.hostIdx))
		}
		return
	}
	l.f.procs[p].onUp(m)
	l.f.mark(p)
}

func (l *fusedTreeLink) Down() <-chan Message { return l.injDown }
func (l *fusedTreeLink) Up() <-chan UpMessage { return l.injUp }

func (l *fusedTreeLink) InjectDown(m Message) bool {
	select {
	case l.injDown <- m:
		l.nudgeSched()
		return true
	default:
		return false
	}
}

func (l *fusedTreeLink) InjectUp(m UpMessage) bool {
	select {
	case l.injUp <- m:
		l.nudgeSched()
		return true
	default:
		return false
	}
}

func (l *fusedTreeLink) nudgeSched() {
	select {
	case l.f.nudge <- struct{}{}:
	default:
	}
}

func (l *fusedTreeLink) Close() error { return nil }
