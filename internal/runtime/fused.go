// Fused execution of the tree runtime: when a TopologyTree barrier hosts
// every member in this process and no explicit transport was supplied, the
// members do not need a goroutine (and two channel hops) per tree edge —
// the whole collective runs on ONE scheduler goroutine, and an
// announcement is delivered by refreshing the receiver's local copy
// directly and queueing the receiver for its next step. A wave then
// ripples through the entire tree inside a single wakeup instead of
// paying a park/unpark cycle per node, which on the in-process hot path
// is most of the cost of a pass.
//
// The protocol is unchanged: the scheduler runs the same treeProc state
// machines, the same guarded actions (step), and the same announcement
// discipline (announce, including the configured loss/corruption draws
// and the checksum verification at the receiver) as the goroutine-per-
// member mode, which remains in use whenever an explicit transport is
// configured — in particular for every distributed deployment. What the
// fusion changes is only the schedule: actions interleave at step
// granularity under a deterministic work queue, one of the legal
// schedules of the asynchronous protocol (compare the guarded engine's
// maximal-parallel scheduler).
//
// Asynchronous inputs still arrive over channels, because their senders
// are other goroutines: participant arrivals and fault injections on a
// control channel shared by all members, and spurious-message injections
// in per-link mailboxes flagged by a nudge channel.
package runtime

import (
	"time"

	"repro/internal/topo"
)

// startFusedTree wires the single-goroutine tree: every member is local,
// links deliver by direct copy refresh.
func (b *Barrier) startFusedTree(cfg Config, tree *topo.Tree) error {
	f := &fusedTree{
		b:     b,
		procs: make([]*treeProc, b.n),
		// The shared control channel: at most one outstanding arrival per
		// participant, plus headroom for fault-injection bursts (inject
		// drops on overflow, as in the per-member mode).
		ctrl:  make(chan ctrlMsg, 4*b.n+16),
		nudge: make(chan struct{}, 1),
		dirty: make([]bool, b.n),
		queue: make([]int, 0, b.n),
	}
	for id := 0; id < b.n; id++ {
		link := &fusedTreeLink{
			f:       f,
			id:      id,
			injDown: make(chan Message, 1),
			injUp:   make(chan UpMessage, 2),
		}
		b.links = append(b.links, link)
		tp := newTreeProc(b, id, tree.Parent[id], tree.Children[id], link, cfg)
		tp.gate.ctrl = f.ctrl // all gates feed the one scheduler
		f.procs[id] = tp
		b.tprocs[id] = tp
		b.gates[id] = tp.gate
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		f.run(cfg.Resend, cfg.LossRate, cfg.CorruptRate)
	}()
	return nil
}

// fusedTree is the scheduler: a work queue of members with unprocessed
// input or unapplied enabled actions. All proc and gate state is owned by
// the scheduler goroutine; only the channels are shared.
type fusedTree struct {
	b     *Barrier
	procs []*treeProc

	ctrl  chan ctrlMsg
	nudge chan struct{}

	dirty []bool
	queue []int
	head  int
}

// mark queues member id for a step unless it is already queued.
func (f *fusedTree) mark(id int) {
	if !f.dirty[id] {
		f.dirty[id] = true
		f.queue = append(f.queue, id)
	}
}

// drain steps queued members to quiescence. Announcements made during a
// step deliver immediately and re-queue their receivers, so one drain
// carries a wave as far as the protocol allows.
func (f *fusedTree) drain(lossRate, corruptRate float64) {
	for f.head < len(f.queue) {
		id := f.queue[f.head]
		f.head++
		f.dirty[id] = false
		tp := f.procs[id]
		tp.step()
		tp.announce(lossRate, corruptRate)
	}
	f.queue = f.queue[:0]
	f.head = 0
}

// onCtrl dispatches a control message to its target member.
func (f *fusedTree) onCtrl(c ctrlMsg) {
	if c.id < 0 || c.id >= len(f.procs) {
		return
	}
	f.procs[c.id].onCtrl(c)
	f.mark(c.id)
}

// sweepInjections drains every link's spurious-injection mailboxes.
func (f *fusedTree) sweepInjections() {
	for _, tp := range f.procs {
		l := tp.link.(*fusedTreeLink)
		for {
			select {
			case m := <-l.injDown:
				tp.onDown(m)
				f.mark(tp.id)
				continue
			default:
			}
			select {
			case m := <-l.injUp:
				tp.onUp(m)
				f.mark(tp.id)
				continue
			default:
			}
			break
		}
	}
}

// onTick applies the quiet-edge retransmission policy to every member
// (see the per-member run loops) and queues them so the resends go out.
func (f *fusedTree) onTick() {
	for _, tp := range f.procs {
		if tp.sentSinceTick {
			tp.sentSinceTick = false
		} else {
			tp.haveSentDown = false
			tp.haveSentUp = false
		}
		f.mark(tp.id)
	}
}

func (f *fusedTree) run(resend time.Duration, lossRate, corruptRate float64) {
	ticker := time.NewTicker(resend)
	defer ticker.Stop()

	for _, tp := range f.procs {
		f.mark(tp.id) // prime the tree
	}
	f.drain(lossRate, corruptRate)
	for {
		// Fast path: consume already-queued input without a blocking
		// select (an empty-channel poll is lock-free).
		busy := false
		for {
			progressed := false
			select {
			case c := <-f.ctrl:
				f.onCtrl(c)
				progressed = true
			default:
			}
			select {
			case <-f.nudge:
				f.sweepInjections()
				progressed = true
			default:
			}
			if !progressed {
				break
			}
			busy = true
			f.drain(lossRate, corruptRate)
		}
		if busy {
			select {
			case <-f.b.stopped:
				return
			case <-f.b.halted:
				return // fail-safe halt: quiesce
			default:
			}
			continue
		}

		// Idle: the whole collective is quiescent; park.
		select {
		case <-f.b.stopped:
			return
		case <-f.b.halted:
			return
		case c := <-f.ctrl:
			f.onCtrl(c)
		case <-f.nudge:
			f.sweepInjections()
		case <-ticker.C:
			f.onTick()
		}
		f.drain(lossRate, corruptRate)
	}
}

// fusedTreeLink is a member's tree link in fused mode: sends refresh the
// receiving member's copies directly (the caller is always the scheduler
// goroutine); the channels exist only for spurious-message injection,
// whose senders are participant goroutines.
type fusedTreeLink struct {
	f  *fusedTree
	id int

	injDown chan Message
	injUp   chan UpMessage
}

func (l *fusedTreeLink) SendDown(child int, m Message) {
	if child < 0 || child >= len(l.f.procs) {
		return
	}
	tp := l.f.procs[child]
	if tp.parentID != l.id {
		return
	}
	tp.onDown(m)
	l.f.mark(child)
}

func (l *fusedTreeLink) SendUp(m UpMessage) {
	p := l.f.procs[l.id].parentID
	if p < 0 {
		return
	}
	l.f.procs[p].onUp(m)
	l.f.mark(p)
}

func (l *fusedTreeLink) Down() <-chan Message { return l.injDown }
func (l *fusedTreeLink) Up() <-chan UpMessage { return l.injUp }

func (l *fusedTreeLink) InjectDown(m Message) bool {
	select {
	case l.injDown <- m:
		l.nudgeSched()
		return true
	default:
		return false
	}
}

func (l *fusedTreeLink) InjectUp(m UpMessage) bool {
	select {
	case l.injUp <- m:
		l.nudgeSched()
		return true
	default:
		return false
	}
}

func (l *fusedTreeLink) nudgeSched() {
	select {
	case l.f.nudge <- struct{}{}:
	default:
	}
}

func (l *fusedTreeLink) Close() error { return nil }
