// Ring-link abstraction: the runtime barrier's protocol goroutines talk to
// their neighbors through a Link, and a Transport supplies one Link per
// ring member. The in-process default (NewChanTransport) realizes links as
// latest-state-wins buffered channels — exactly the semantics the protocol
// was originally built on — while internal/transport realizes the same
// contract over TCP sockets, so a barrier can span OS processes and
// machines without any change to the protocol itself.
//
// The contract every Transport must honor is deliberately weak, because
// the protocol already masks the weakness (the paper's Section 5):
//
//   - Delivery is best-effort. A Link may drop, reorder into
//     latest-state-wins, or duplicate messages; the periodic
//     retransmission of current state makes all of that equivalent to
//     delay.
//   - Sends never block. A protocol goroutine must not be wedged by a slow
//     or dead peer; undeliverable state is simply superseded by the next
//     retransmission.
//   - Corruption must be detectable. Messages carry an end-to-end
//     checksum (Message.Sum); a transport may additionally checksum its
//     frames, and must map every transport-level failure — decode error,
//     connection reset, partial write — onto message loss by discarding
//     the damaged data. No transport failure needs new recovery logic.
package runtime

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tokenring"
)

// Message is the MB wire triple (sn, cp, ph) a process announces to its
// successor, plus the end-to-end integrity checksum. A message whose Sum
// does not match Checksum() is detected corruption at the receiver and is
// dropped — equivalent to loss, which retransmission masks.
type Message struct {
	SN tokenring.SN
	CP core.CP
	PH int

	Sum uint32
}

// Checksum computes the message integrity check over (SN, CP, PH) — an
// FNV-style mix; a real deployment would use a CRC, and the TCP transport
// adds a CRC32 per frame on top.
func (m Message) Checksum() uint32 {
	h := uint32(2166136261)
	mix := func(v uint32) {
		h ^= v
		h *= 16777619
	}
	mix(uint32(int32(m.SN)))
	mix(uint32(m.CP))
	mix(uint32(int32(m.PH)))
	return h
}

// Link is one ring member's attachment to its two neighbors: state
// announcements flow forward (to the successor), and the ⊤ whole-ring
// restart marker flows backward (to the predecessor).
type Link interface {
	// SendState announces the member's current (sn, cp, ph) to its
	// successor. Best-effort and non-blocking: the latest state wins, and
	// any failure to deliver is equivalent to message loss.
	SendState(Message)
	// SendTop propagates the ⊤ marker to the predecessor (the T3/T4
	// restart wave for a fully corrupted ring). Best-effort, non-blocking.
	SendTop()
	// State is the channel of announcements received from the predecessor.
	// The channel is never closed; it simply falls silent when the
	// transport is down.
	State() <-chan Message
	// Top is the channel of ⊤ markers received from the successor.
	Top() <-chan struct{}
	// InjectState delivers a forged announcement locally, as if it had
	// been received from the predecessor — the fault-injection hook for
	// "unexpected message reception". It reports false when the receive
	// mailbox already holds a genuine in-flight message.
	InjectState(Message) bool
	// Close tears down any goroutines and connections serving this link.
	// It must not close the State/Top channels (protocol goroutines may
	// still be selecting on them).
	Close() error
}

// Transport supplies the ring links for a barrier. A transport is built
// for a fixed member count; Open is called once per member hosted by this
// process (all of them for the in-process default, exactly one per OS
// process in a distributed deployment).
type Transport interface {
	// Open returns member id's link.
	Open(id int) (Link, error)
	// Close tears the whole transport down. The Barrier closes the links
	// it opened on Stop; the transport itself is closed by whoever created
	// it (Stop closes the internally created default transport).
	Close() error
}

// --- in-process channel transport (the default) ---

// chanTransport is the in-process default: every link is a pair of
// single-slot latest-state-wins mailboxes wired directly between the
// members' goroutines.
type chanTransport struct {
	links []*chanLink
}

// NewChanTransport returns the in-process channel transport for an
// all-local ring of n members. It is the default a Barrier creates when
// Config.Transport is nil; it is exported so a channel-backed barrier can
// be configured explicitly alongside network transports in tests and
// benchmarks.
func NewChanTransport(n int) Transport {
	t := &chanTransport{links: make([]*chanLink, n)}
	for j := range t.links {
		t.links[j] = &chanLink{
			t:     t,
			id:    j,
			state: make(chan Message, 1),
			top:   make(chan struct{}, 1),
		}
	}
	return t
}

func (t *chanTransport) Open(id int) (Link, error) {
	if id < 0 || id >= len(t.links) {
		return nil, fmt.Errorf("ftbarrier: member %d out of range [0,%d)", id, len(t.links))
	}
	return t.links[id], nil
}

func (t *chanTransport) Close() error { return nil }

type chanLink struct {
	t     *chanTransport
	id    int
	state chan Message  // announcements from the predecessor
	top   chan struct{} // ⊤ markers from the successor
}

func (l *chanLink) SendState(m Message) {
	n := len(l.t.links)
	dst := l.t.links[(l.id+1)%n].state
	// Latest-state-wins mailbox: drain a stale message, then send.
	select {
	case <-dst:
	default:
	}
	select {
	case dst <- m:
	default:
	}
}

func (l *chanLink) SendTop() {
	n := len(l.t.links)
	dst := l.t.links[(l.id-1+n)%n].top
	select {
	case dst <- struct{}{}:
	default: // a ⊤ marker is already pending; it is idempotent
	}
}

func (l *chanLink) State() <-chan Message { return l.state }
func (l *chanLink) Top() <-chan struct{}  { return l.top }

func (l *chanLink) InjectState(m Message) bool {
	select {
	case l.state <- m:
		return true
	default:
		return false
	}
}

func (l *chanLink) Close() error { return nil }
