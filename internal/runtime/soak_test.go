// Soak test: the runtime barrier under sustained message loss, corruption,
// detectable resets and (for TCP) periodic connection breaks, checked
// against the barrier specification. Short by default (sub-second chaos
// window); -soak extends it to minutes:
//
//	go test ./internal/runtime -race -run TestRuntimeSoak -soak
//
// Lives in package runtime_test because it drives both transports and
// internal/transport imports internal/runtime.
package runtime_test

import (
	"context"
	"errors"
	"flag"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/transport"
)

var soak = flag.Bool("soak", false, "run the long (minutes) soak; default is a short smoke")

func TestRuntimeSoak(t *testing.T) {
	chaosFor := 300 * time.Millisecond
	if *soak {
		chaosFor = 45 * time.Second
	}
	t.Run("channel", func(t *testing.T) {
		t.Parallel()
		soakOne(t, chaosFor, nil, nil)
	})
	t.Run("tcp", func(t *testing.T) {
		t.Parallel()
		tr, err := transport.NewLoopbackRing(4)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		soakOne(t, chaosFor, tr, func(i int) {
			if i%7 == 3 {
				tr.BreakLinks(i % 4) // periodic connection reset
			}
		})
	})
}

// soakOne runs one barrier under chaos for the given duration, then
// verifies stabilization (a spec-satisfying suffix with fresh barriers)
// and liveness (every participant keeps passing).
func soakOne(t *testing.T, chaosFor time.Duration, tr runtime.Transport, extraFault func(i int)) {
	const (
		n       = 4
		nPhases = 3
	)
	var (
		mu    sync.Mutex
		trace []core.Event
	)
	b, err := runtime.New(runtime.Config{
		Participants: n,
		NPhases:      nPhases,
		Transport:    tr,
		Resend:       100 * time.Microsecond,
		LossRate:     0.05,
		CorruptRate:  0.05,
		Seed:         51,
		EventSink: func(e core.Event) {
			mu.Lock()
			trace = append(trace, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var passes [n]atomic.Int64
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := b.Await(ctx, id)
				if err == nil {
					passes[id].Add(1)
				} else if !errors.Is(err, runtime.ErrReset) {
					return
				}
			}
		}()
	}

	// Chaos loop: resets on a rotating member plus transport-specific
	// faults, layered over the configured loss and corruption, until the
	// soak window elapses.
	end := time.Now().Add(chaosFor)
	for i := 0; time.Now().Before(end); i++ {
		if i%5 == 0 {
			b.Reset(i % n)
		}
		if extraFault != nil {
			extraFault(i)
		}
		time.Sleep(time.Millisecond)
	}

	// Liveness after the chaos stops.
	var base [n]int64
	for id := range base {
		base[id] = passes[id].Load()
	}
	deadline := time.Now().Add(60 * time.Second)
	for id := 0; id < n; id++ {
		for passes[id].Load() < base[id]+5 {
			if time.Now().After(deadline) {
				t.Fatalf("participant %d made no progress after soak chaos stopped (passes=%d)", id, passes[id].Load())
			}
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	wg.Wait()
	b.Stop()

	// Stabilization: the observable trace ends in a spec-satisfying suffix
	// containing fresh successful barriers.
	mu.Lock()
	defer mu.Unlock()
	start, ok := core.SuffixSatisfying(trace, n, nPhases, 3)
	if !ok {
		t.Fatalf("no stabilizing suffix in %d-event soak trace", len(trace))
	}
	var total int64
	for id := range passes {
		total += passes[id].Load()
	}
	t.Logf("soak: %d total passes, stabilized suffix %d/%d events", total, len(trace)-start, len(trace))
}
