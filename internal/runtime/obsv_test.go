package runtime

// Tests for the observability layer and the accounting/race fixes that
// ride with it: consistent Stats snapshots, cancel-safe Await/Leave, and
// race-clean concurrent fault injection.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/topo"
)

// cancelTopologies enumerates the three scheduler shapes: the MB ring
// (one goroutine per proc), the fused tree (every member on one
// scheduler goroutine), and the channel tree (one goroutine per
// treeProc over channel edges).
func cancelTopologies(t *testing.T, n int) map[string]Config {
	t.Helper()
	shape, err := topo.NewKAryTree(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Config{
		"ring":  {Participants: n, Seed: 11},
		"fused": {Participants: n, Topology: TopologyTree, Seed: 11},
		"tree": {Participants: n, Topology: TopologyTree, Seed: 11,
			Transport: NewChanTreeTransport(shape.Parent)},
	}
}

// A context canceled in the same instant a pass completes must not lose
// the pass, deliver it twice, or double-count it: the entered barrier
// stays outstanding across the cancellation and the next Await collects
// exactly the next pass. The victim participant cancels aggressively
// mid-phase; its observed phases must still advance by exactly one per
// pass, and its pass count must match the uncancelled participants'.
func TestAwaitCancelMidPhase(t *testing.T) {
	const n, rounds = 4, 150
	for name, cfg := range cancelTopologies(t, n) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			b, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Stop()

			ctx, cancelAll := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancelAll()
			var wg sync.WaitGroup
			errs := make(chan error, n)

			// Participants 1..n-1: Await loops, with a small stagger so the
			// victim's Leave regularly outlives its deadline mid-phase.
			for id := 1; id < n; id++ {
				id := id
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						time.Sleep(time.Duration(20+10*(r%5)) * time.Microsecond)
						if _, err := b.Await(ctx, id); err != nil {
							errs <- err
							return
						}
					}
				}()
			}

			// Participant 0: cancels mid-phase, then retries. The deadline
			// sweeps from "expires while everyone is still working" through
			// "expires in the instant the result lands" — the race window.
			wg.Add(1)
			go func() {
				defer wg.Done()
				lastPh, canceled, attempt := -1, 0, 0
				for passes := 0; passes < rounds; {
					attempt++
					timeout := time.Duration(1+attempt%120) * time.Microsecond
					cctx, cancel := context.WithTimeout(ctx, timeout)
					ph, err := b.Await(cctx, 0)
					cancel()
					switch {
					case err == nil:
						if lastPh != -1 {
							if want := (lastPh + 1) % b.NumPhases(); ph != want {
								errs <- errors.New("victim phase order violated: a pass was lost or doubled")
								return
							}
						}
						lastPh = ph
						passes++
					case errors.Is(err, context.DeadlineExceeded):
						canceled++
					default:
						errs <- err
						return
					}
				}
				if canceled == 0 {
					t.Error("no cancellation fired mid-phase; the race window was not exercised")
				}
			}()

			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			// Every delivered pass is counted exactly once: n participants
			// times `rounds` passes each, no extras from the cancellations.
			if got := b.Stats().Passes; got != int64(n*rounds) {
				t.Errorf("Stats.Passes = %d, want %d (a cancel double-counted or lost a pass)", got, n*rounds)
			}
		})
	}
}

// A canceled Enter must register nothing: the following Await must see a
// fresh, working barrier rather than waiting on a ticket whose arrival
// never happened.
func TestEnterCanceledRegistersNothing(t *testing.T) {
	b, err := New(Config{Participants: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	// The ctrl buffer is deep, so a single canceled Enter usually wins the
	// send anyway; exhaust the race both ways by alternating many times.
	for i := 0; i < 10; i++ {
		b.Enter(canceled, 0) // ignore result: either outcome must be consistent
	}
	ctx, cancelAll := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelAll()
	done := make(chan error, 1)
	go func() {
		_, err := b.Await(ctx, 1)
		done <- err
	}()
	if _, err := b.Await(ctx, 0); err != nil {
		t.Fatalf("Await(0) after canceled Enters: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Await(1): %v", err)
	}
}

// Stats must never tear across its counters: under load, every snapshot
// obeys the cross-counter invariants. In the ring, one barrier round is
// one full token circulation, so protocol sends ≥ (n−1) per n delivered
// passes; drops can never exceed the messages that existed to drop.
func TestStatsSnapshotInvariants(t *testing.T) {
	const n = 4
	b, err := New(Config{Participants: n, Seed: 7, LossRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	stop := make(chan struct{})
	var snapshots atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := b.Stats()
				snapshots.Add(1)
				if int64(n)*s.Sends < s.Passes*int64(n-1) {
					t.Errorf("torn snapshot: n·Sends=%d < Passes·(n−1)=%d", int64(n)*s.Sends, s.Passes*int64(n-1))
					return
				}
				if s.Drops > s.Sends+s.Spurious {
					t.Errorf("torn snapshot: Drops=%d > Sends+Spurious=%d", s.Drops, s.Sends+s.Spurious)
					return
				}
				if s.Passes < 0 || s.Resets < 0 {
					t.Errorf("negative counter in snapshot: %+v", s)
					return
				}
			}
		}()
	}
	runWorkers(t, b, 200, nil)
	close(stop)
	wg.Wait()
	if snapshots.Load() == 0 {
		t.Fatal("no snapshots taken")
	}
}

// Concurrent fault injection, retransmission traffic, and metric scraping
// must be race-clean (run under -race in CI): injectors hammer every
// member with resets/scrambles/spurious messages while the participants
// keep passing barriers and a scraper renders the registry.
func TestConcurrentInjectHammer(t *testing.T) {
	const n = 4
	reg := obsv.NewRegistry()
	b, err := New(Config{
		Participants: n,
		Seed:         13,
		LossRate:     0.05,
		CorruptRate:  0.05,
		Resend:       100 * time.Microsecond,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Injectors: one per fault class, all members, decorrelated seeds.
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := i % n
				switch w {
				case 0:
					b.Reset(id)
				case 1:
					b.Scramble(id, int64(w*1000+i))
				case 2:
					b.InjectSpurious(id, int64(w*1000+i))
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	// Scraper: exercises the exposition path concurrently with recording.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := reg.WriteText(&sb); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
			b.Stats()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Participants: pass barriers through the storm, redoing on ErrReset.
	var passWG sync.WaitGroup
	for id := 0; id < n; id++ {
		id := id
		passWG.Add(1)
		go func() {
			defer passWG.Done()
			for r := 0; r < 50; {
				_, err := b.Await(ctx, id)
				switch {
				case err == nil:
					r++
				case errors.Is(err, ErrReset):
				default:
					t.Errorf("participant %d: %v", id, err)
					return
				}
			}
		}()
	}
	passWG.Wait()
	close(stop)
	wg.Wait()

	s := b.Stats()
	if s.ResetsInjected == 0 {
		t.Error("no resets were accepted; the hammer did not hammer")
	}
	if got := s.ResetsInjected + s.ScramblesInjected + s.DroppedInjections; got == 0 {
		t.Error("injection accounting empty under sustained injection")
	}
}

// The registry exports every advertised series, and the counter series
// agree with the Stats snapshot once the barrier is quiescent.
func TestBarrierMetricsExposition(t *testing.T) {
	reg := obsv.NewRegistry()
	b, err := New(Config{Participants: 2, Seed: 5, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, b, 10, nil)
	b.Reset(0) // one injected fault so the injection series move
	runWorkers(t, b, 5, nil)
	b.Stop()

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, series := range []string{
		"barrier_passes_total ",
		"barrier_resets_total ",
		"barrier_sends_total ",
		"barrier_drops_total ",
		"barrier_spurious_total ",
		"barrier_injected_resets_total 1",
		"barrier_injected_scrambles_total 0",
		"barrier_injections_dropped_total 0",
		"barrier_wasted_instances_total ",
		"barrier_participants 2",
		`barrier_topology{topology="ring"} 1`,
		"barrier_halted 0",
		"barrier_instances_per_pass_bucket",
		"barrier_phase_seconds_bucket",
		"barrier_recovery_seconds_count 1",
	} {
		if !strings.Contains(got, series) {
			t.Errorf("exposition missing %q", series)
		}
	}

	// Two registries may not share one barrier's names.
	if _, err := New(Config{Participants: 2, Metrics: reg}); err == nil {
		t.Error("second barrier on the same registry should fail registration")
	}
}

// WastedInstances counts exactly the re-executions: zero on a fault-free
// run, and strictly positive once an injected reset forces the current
// instance to re-execute. (The barrierbench SLO "wasted work per fault"
// is built on this counter.)
func TestWastedInstancesCounter(t *testing.T) {
	b, err := New(Config{Participants: 2, Seed: 21, Resend: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	runWorkers(t, b, 20, nil)
	if w := b.Stats().WastedInstances; w != 0 {
		t.Fatalf("fault-free run recorded %d wasted instances", w)
	}

	// A reset lands asynchronously; keep injecting between short bursts of
	// passes until a re-execution is observed.
	deadline := time.Now().Add(15 * time.Second)
	for b.Stats().WastedInstances == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no wasted instance recorded after repeated resets: %+v", b.Stats())
		}
		b.Reset(0)
		runWorkers(t, b, 3, nil)
	}
	s := b.Stats()
	if s.WastedInstances <= 0 || s.ResetsInjected == 0 {
		t.Fatalf("inconsistent accounting after faults: %+v", s)
	}
}
