// Package trace records protocol event streams and renders them as
// per-process timelines — the debugging view used by cmd/barsim's
// -timeline flag. Each process gets a row; columns are events in global
// order:
//
//	proc 0  ──B0────────C0──────B1─…
//	proc 1  ────B0────C0──────────B1─…
//	proc 2  ──────B0!───────B0─C0─…
//
// where Bp = begin(phase p), Cp = complete(phase p), ! = reset/abandon.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Recorder accumulates events.
type Recorder struct {
	n      int
	events []core.Event
	max    int
}

// NewRecorder returns a recorder for n processes keeping at most maxEvents
// (0 = unbounded).
func NewRecorder(n, maxEvents int) *Recorder {
	return &Recorder{n: n, max: maxEvents}
}

// Observe appends an event; it satisfies core.EventSink.
func (r *Recorder) Observe(e core.Event) {
	if r.max > 0 && len(r.events) >= r.max {
		return
	}
	r.events = append(r.events, e)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns the recorded events. The slice is shared; callers must
// not modify it.
func (r *Recorder) Events() []core.Event { return r.events }

// Tee returns a sink that records and forwards to next (which may be nil).
func (r *Recorder) Tee(next core.EventSink) core.EventSink {
	return func(e core.Event) {
		r.Observe(e)
		if next != nil {
			next(e)
		}
	}
}

// cell renders one event's mark.
func cell(e core.Event) string {
	switch e.Kind {
	case core.EvBegin:
		return fmt.Sprintf("B%d", e.Phase)
	case core.EvComplete:
		return fmt.Sprintf("C%d", e.Phase)
	case core.EvReset:
		return fmt.Sprintf("!%d", e.Phase)
	}
	return "??"
}

// Timeline renders the recorded events as one row per process, with each
// event in its global-order column. Events of other processes appear as
// dashes in a process's row, so vertical alignment shows the interleaving.
func (r *Recorder) Timeline() string {
	if len(r.events) == 0 {
		return "(no events)\n"
	}
	// Column widths: the widest mark in that column.
	width := make([]int, len(r.events))
	for i, e := range r.events {
		width[i] = len(cell(e))
	}
	var b strings.Builder
	for proc := 0; proc < r.n; proc++ {
		fmt.Fprintf(&b, "proc %2d  ", proc)
		for i, e := range r.events {
			if e.Proc == proc {
				mark := cell(e)
				b.WriteString(mark)
				b.WriteString(strings.Repeat("─", width[i]-len(mark)+1))
			} else {
				b.WriteString(strings.Repeat("─", width[i]+1))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary renders per-process event counts.
func (r *Recorder) Summary() string {
	begins := make([]int, r.n)
	completes := make([]int, r.n)
	resets := make([]int, r.n)
	for _, e := range r.events {
		if e.Proc < 0 || e.Proc >= r.n {
			continue
		}
		switch e.Kind {
		case core.EvBegin:
			begins[e.Proc]++
		case core.EvComplete:
			completes[e.Proc]++
		case core.EvReset:
			resets[e.Proc]++
		}
	}
	var b strings.Builder
	for proc := 0; proc < r.n; proc++ {
		fmt.Fprintf(&b, "proc %2d: %d begins, %d completes, %d resets\n",
			proc, begins[proc], completes[proc], resets[proc])
	}
	return b.String()
}
