package trace

import (
	"math/rand"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/cb"
	"repro/internal/core"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(2, 0)
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.Observe(core.Event{Kind: core.EvBegin, Proc: 0, Phase: 0})
	r.Observe(core.Event{Kind: core.EvBegin, Proc: 1, Phase: 0})
	r.Observe(core.Event{Kind: core.EvComplete, Proc: 1, Phase: 0})
	r.Observe(core.Event{Kind: core.EvReset, Proc: 0, Phase: 0})
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	if len(r.Events()) != 4 {
		t.Fatal("Events length mismatch")
	}
}

func TestRecorderCap(t *testing.T) {
	r := NewRecorder(1, 2)
	for i := 0; i < 5; i++ {
		r.Observe(core.Event{Kind: core.EvBegin, Proc: 0, Phase: 0})
	}
	if r.Len() != 2 {
		t.Fatalf("capped recorder kept %d events, want 2", r.Len())
	}
}

func TestTimelineRendering(t *testing.T) {
	r := NewRecorder(2, 0)
	if got := r.Timeline(); got != "(no events)\n" {
		t.Errorf("empty timeline = %q", got)
	}
	r.Observe(core.Event{Kind: core.EvBegin, Proc: 0, Phase: 3})
	r.Observe(core.Event{Kind: core.EvBegin, Proc: 1, Phase: 3})
	r.Observe(core.Event{Kind: core.EvComplete, Proc: 0, Phase: 3})
	out := r.Timeline()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("timeline has %d rows, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "B3") || !strings.Contains(lines[0], "C3") {
		t.Errorf("proc 0 row missing marks: %q", lines[0])
	}
	if !strings.Contains(lines[1], "B3") || strings.Contains(lines[1], "C3") {
		t.Errorf("proc 1 row wrong: %q", lines[1])
	}
	// Vertical alignment: both rows render the same display width (the
	// dash is a multi-byte rune, so count runes, not bytes).
	if utf8.RuneCountInString(lines[0]) != utf8.RuneCountInString(lines[1]) {
		t.Errorf("rows misaligned: %d vs %d runes",
			utf8.RuneCountInString(lines[0]), utf8.RuneCountInString(lines[1]))
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder(2, 0)
	r.Observe(core.Event{Kind: core.EvBegin, Proc: 0, Phase: 0})
	r.Observe(core.Event{Kind: core.EvReset, Proc: 0, Phase: 0})
	r.Observe(core.Event{Kind: core.EvBegin, Proc: 7, Phase: 0}) // out of range: ignored
	s := r.Summary()
	if !strings.Contains(s, "proc  0: 1 begins, 0 completes, 1 resets") {
		t.Errorf("summary = %q", s)
	}
}

func TestTeeForwards(t *testing.T) {
	r := NewRecorder(2, 0)
	var forwarded int
	sink := r.Tee(func(core.Event) { forwarded++ })
	sink(core.Event{Kind: core.EvBegin, Proc: 0, Phase: 0})
	if r.Len() != 1 || forwarded != 1 {
		t.Fatalf("tee: recorded %d, forwarded %d", r.Len(), forwarded)
	}
	// Nil next is allowed.
	r.Tee(nil)(core.Event{Kind: core.EvBegin, Proc: 1, Phase: 0})
	if r.Len() != 2 {
		t.Fatal("nil-next tee did not record")
	}
}

// End-to-end: record a real protocol run and render it.
func TestTimelineOfRealRun(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRecorder(3, 0)
	checker := core.NewSpecChecker(3, 2)
	p, err := cb.New(3, 2, rng, r.Tee(checker.Observe))
	if err != nil {
		t.Fatal(err)
	}
	for checker.SuccessfulBarriers() < 3 {
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			t.Fatal("deadlock")
		}
	}
	out := r.Timeline()
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("want 3 rows:\n%s", out)
	}
	if !strings.Contains(out, "B0") || !strings.Contains(out, "C0") ||
		!strings.Contains(out, "B1") {
		t.Errorf("timeline missing expected marks:\n%s", out)
	}
}
