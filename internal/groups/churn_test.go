package groups

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// Lifecycle churn under load: one tenant is stop/started in a tight loop
// on one process while its members elsewhere keep calling Await and the
// sibling tenants keep passing. The siblings must never stall or see the
// victim's faults, the victim must recover to full passes after the last
// rejoin, and the churned group's labelled metrics must unregister and
// re-register cleanly every cycle. Run with -race this doubles as the
// concurrency check on the registry's stop/start paths.
func TestGroupChurnHammer(t *testing.T) {
	const (
		n      = 3
		cycles = 25
		quota  = 40 // sibling passes that must land *during* the churn
	)
	cfgs := []Config{
		{Name: "victim", Resend: time.Millisecond, Seed: 11},
		{Name: "sib0", Resend: time.Millisecond, Seed: 12},
		{Name: "sib1", Topology: transport.GroupTree, Resend: time.Millisecond, Seed: 13},
	}
	specs, err := Specs(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	metrics := make([]*obsv.Registry, n)
	for j := range metrics {
		metrics[j] = obsv.NewRegistry()
	}
	set, err := transport.NewLoopbackMuxes(n, specs, func(c *transport.MuxConfig) {
		c.Registry = metrics[c.Self]
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	regs := make([]*Registry, n)
	for j := 0; j < n; j++ {
		regs[j], err = NewWithMux(Options{Self: j, Metrics: metrics[j]}, cfgs, set.Muxes[j])
		if err != nil {
			t.Fatalf("process %d: %v", j, err)
		}
		defer regs[j].Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// The victim's members on every process spin Await through the churn,
	// tolerating the lifecycle errors (ErrStopped while down, ErrReset
	// around rejoins) but nothing else.
	churnDone := make(chan struct{})
	var victimPasses atomic.Int64
	var wg sync.WaitGroup
	victimErrs := make(chan error, n)
	for j := 0; j < n; j++ {
		g := regs[j].Group("victim")
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for {
				select {
				case <-churnDone:
					return
				default:
				}
				switch _, err := g.Await(ctx); {
				case err == nil:
					victimPasses.Add(1)
				case errors.Is(err, runtime.ErrReset):
				case errors.Is(err, runtime.ErrStopped):
					time.Sleep(200 * time.Microsecond)
				default:
					victimErrs <- fmt.Errorf("victim member %d: %v", j, err)
					return
				}
			}
		}(j)
	}

	// Sibling tenants must reach their quota while the churn is running —
	// the no-cross-tenant-stall assertion. Their members may never see
	// ErrStopped: nobody stops them.
	sibErrs := make(chan error, 2*n)
	for _, name := range []string{"sib0", "sib1"} {
		for j := 0; j < n; j++ {
			g := regs[j].Group(name)
			wg.Add(1)
			go func(name string, j int) {
				defer wg.Done()
				for k := 0; k < quota; k++ {
					if _, err := g.Await(ctx); err != nil {
						if errors.Is(err, runtime.ErrReset) {
							k--
							continue
						}
						sibErrs <- fmt.Errorf("%s member %d pass %d: %w", name, j, k, err)
						return
					}
				}
				sibErrs <- nil
			}(name, j)
		}
	}

	// The hammer: stop/start the victim on process 0, back to back. Every
	// StartGroup re-registers the same labelled series the StopGroup
	// unregistered — a leak on either side fails the restart.
	for i := 0; i < cycles; i++ {
		if !regs[0].StopGroup("victim") {
			t.Fatal("StopGroup(victim) found no group")
		}
		time.Sleep(2 * time.Millisecond)
		if err := regs[0].StartGroup("victim", true); err != nil {
			t.Fatalf("cycle %d: StartGroup(victim): %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Siblings drain first: their quota must be reachable with the churn
	// still fresh in the pipes.
	for i := 0; i < 2*n; i++ {
		if err := <-sibErrs; err != nil {
			t.Fatal(err)
		}
	}

	// The victim must come all the way back: fresh passes after the final
	// rejoin, on every process.
	before := victimPasses.Load()
	deadline := time.Now().Add(30 * time.Second)
	for victimPasses.Load() < before+int64(3*n) {
		select {
		case err := <-victimErrs:
			t.Fatal(err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim stuck at %d passes after final rejoin", victimPasses.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(churnDone)
	cancel() // release any Await still parked
	wg.Wait()

	// Clean metric lifecycle: stopped ⇒ the labelled series are gone;
	// restarted ⇒ back, alongside the siblings' untouched series.
	if !regs[0].StopGroup("victim") {
		t.Fatal("final StopGroup(victim) found no group")
	}
	scrape := func() string {
		var sb strings.Builder
		if err := metrics[0].WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	text := scrape()
	for _, line := range strings.Split(text, "\n") {
		// transport_group_* series are the mux's and persist until mux
		// Close; only the victim's barrier series must be gone.
		if strings.Contains(line, `{group="victim"}`) && !strings.HasPrefix(line, "transport_") {
			t.Errorf("stopped victim's series still registered: %s", line)
		}
	}
	if !strings.Contains(text, `barrier_passes_total{group="sib0"}`) {
		t.Error("sibling series disappeared with the victim's")
	}
	if err := regs[0].StartGroup("victim", true); err != nil {
		t.Fatalf("final StartGroup(victim): %v", err)
	}
	if text := scrape(); !strings.Contains(text, `barrier_passes_total{group="victim"}`) {
		t.Error("restarted victim's series not re-registered")
	}
}
