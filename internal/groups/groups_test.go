package groups

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/runtime"
	"repro/internal/transport"
)

func TestSpecsValidation(t *testing.T) {
	if _, err := Specs(nil); err == nil {
		t.Error("empty declaration succeeded")
	}
	if _, err := Specs([]Config{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate name succeeded")
	}
	if _, err := Specs([]Config{{Name: "a", Topology: "star"}}); err == nil {
		t.Error("unknown topology succeeded")
	}
	specs, err := Specs([]Config{{Name: "a"}, {Name: "b", Topology: transport.GroupTree, TreeArity: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].ID != 0 || specs[1].ID != 1 {
		t.Errorf("ids not assigned by declaration order: %+v", specs)
	}
	if specs[0].Topology != transport.GroupRing {
		t.Errorf("default topology = %q, want ring", specs[0].Topology)
	}
}

// A two-process deployment hosting several groups over one shared mux per
// process: all groups pass concurrently, per-group labelled metrics are
// scraped, one group is torn down and rejoined without disturbing the
// rest.
func TestRegistryLifecycle(t *testing.T) {
	const n = 2
	cfgs := []Config{
		{Name: "alpha", Resend: 200 * time.Microsecond},
		{Name: "beta", Resend: 200 * time.Microsecond, CorruptRate: 0.01, Seed: 3},
		{Name: "gamma", Topology: transport.GroupTree, Resend: 200 * time.Microsecond},
	}
	specs, err := Specs(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	metrics := make([]*obsv.Registry, n)
	for j := range metrics {
		metrics[j] = obsv.NewRegistry()
	}
	set, err := transport.NewLoopbackMuxes(n, specs, func(c *transport.MuxConfig) {
		c.Registry = metrics[c.Self]
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	regs := make([]*Registry, n)
	for j := 0; j < n; j++ {
		regs[j], err = NewWithMux(Options{Self: j, Metrics: metrics[j]}, cfgs, set.Muxes[j])
		if err != nil {
			t.Fatalf("process %d: %v", j, err)
		}
		defer regs[j].Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	pass := func(name string, passes int) error {
		var wg sync.WaitGroup
		errs := make(chan error, n)
		for j := 0; j < n; j++ {
			g := regs[j].Group(name)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < passes; k++ {
					if _, err := g.Await(ctx); err != nil {
						if errors.Is(err, runtime.ErrReset) {
							k--
							continue
						}
						errs <- fmt.Errorf("%s member %d pass %d: %w", name, g.opts.Self, k, err)
						return
					}
				}
				errs <- nil
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(cfgs))
	for _, c := range cfgs {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- pass(c.Name, 5)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every group's passes show up as its own labelled series.
	var sb strings.Builder
	if err := metrics[0].WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, c := range cfgs {
		if !strings.Contains(text, `barrier_passes_total{group="`+c.Name+`"}`) {
			t.Errorf("no labelled passes series for group %s in scrape", c.Name)
		}
	}
	if !strings.Contains(text, "transport_frames_total") {
		t.Error("shared transport counters missing from scrape")
	}

	// Teardown isolation: stop beta on process 0 only; alpha still passes.
	if !regs[0].StopGroup("beta") {
		t.Fatal("StopGroup(beta) found no group")
	}
	if _, err := regs[0].Group("beta").Await(ctx); !errors.Is(err, runtime.ErrStopped) {
		t.Errorf("Await on a stopped group: %v, want ErrStopped", err)
	}
	if err := pass("alpha", 5); err != nil {
		t.Fatalf("alpha stalled after beta teardown: %v", err)
	}

	// The stopped group's labelled series are gone; the others remain.
	sb.Reset()
	if err := metrics[0].WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text = sb.String()
	for _, line := range strings.Split(text, "\n") {
		// The mux's transport_group_* series outlive the group by
		// design (torn-down groups keep counting dropped frames; they
		// unregister at mux Close) — only the group's own barrier
		// series must be gone.
		if strings.Contains(line, `{group="beta"}`) && !strings.HasPrefix(line, "transport_") {
			t.Errorf("stopped group's series still registered: %s", line)
		}
	}
	if !strings.Contains(text, `barrier_passes_total{group="alpha"}`) {
		t.Error("surviving group's series disappeared")
	}

	// Rejoin: beta restarts in the reset state and is masked back in.
	if err := regs[0].StartGroup("beta", true); err != nil {
		t.Fatal(err)
	}
	if err := pass("beta", 5); err != nil {
		t.Fatalf("beta did not recover after rejoin: %v", err)
	}
	if err := regs[0].StartGroup("nope", false); err == nil {
		t.Error("StartGroup on an unknown name succeeded")
	}
	if st := set.Muxes[0].Stats(); st.DecodeErrors != 0 {
		t.Errorf("decode errors on process 0: %d", st.DecodeErrors)
	}
}

// Lane expansion: a Depth > 1 group claims consecutive wire ids with
// ".l<k>" names; Hosts is required for hybrid and rejected elsewhere.
func TestSpecsLanesAndHybrid(t *testing.T) {
	if _, err := Specs([]Config{{Name: "a", Hosts: [][]int{{0}, {1}}}}); err == nil {
		t.Error("Hosts on a ring group succeeded")
	}
	if _, err := Specs([]Config{{Name: "a", Topology: transport.GroupHybrid}}); err == nil {
		t.Error("hybrid without Hosts succeeded")
	}
	if _, err := Specs([]Config{{Name: "a", Depth: -1}}); err == nil {
		t.Error("negative Depth succeeded")
	}
	if _, err := Specs([]Config{{Name: "a", Depth: 2}, {Name: "a.l1"}}); err == nil {
		t.Error("lane-name collision succeeded")
	}
	specs, err := Specs([]Config{
		{Name: "deep", Depth: 3},
		{Name: "hy", Topology: transport.GroupHybrid, Hosts: [][]int{{0, 1}, {2, 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"deep", "deep.l1", "deep.l2", "hy"}
	if len(specs) != len(wantNames) {
		t.Fatalf("got %d specs, want %d", len(specs), len(wantNames))
	}
	for i, want := range wantNames {
		if specs[i].Name != want || specs[i].ID != uint32(i) {
			t.Errorf("spec %d = {ID:%d Name:%q}, want {ID:%d Name:%q}",
				i, specs[i].ID, specs[i].Name, i, want)
		}
	}
	if specs[3].Topology != transport.GroupHybrid || specs[3].Hosts == nil {
		t.Errorf("hybrid spec lost its grouping: %+v", specs[3])
	}
}

// A hybrid group and a Depth-3 pipelined ring group side by side over
// the same shared connections: the hybrid group's processes each drive a
// whole host roster, the pipelined group's Await overlaps waves, and
// both keep their passes.
func TestRegistryHybridAndPipelined(t *testing.T) {
	const n = 2
	hosts := [][]int{{0, 1, 2}, {3, 4}}
	cfgs := []Config{
		{Name: "hy", Topology: transport.GroupHybrid, Hosts: hosts, Resend: 200 * time.Microsecond},
		{Name: "deep", Depth: 3, Resend: 200 * time.Microsecond},
	}
	specs, err := Specs(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	set, err := transport.NewLoopbackMuxes(n, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	regs := make([]*Registry, n)
	for j := 0; j < n; j++ {
		regs[j], err = NewWithMux(Options{Self: j}, cfgs, set.Muxes[j])
		if err != nil {
			t.Fatalf("process %d: %v", j, err)
		}
		defer regs[j].Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const passes = 10
	var wg sync.WaitGroup
	errs := make(chan error, 8)

	// The hybrid group: every process drives its whole roster.
	for j := 0; j < n; j++ {
		g := regs[j].Group("hy")
		if _, err := g.Await(ctx); err == nil {
			t.Error("Await on a multi-member hybrid group succeeded; want an error directing to AwaitMember")
		}
		for _, id := range g.Members() {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < passes; k++ {
					if _, err := g.AwaitMember(ctx, id); err != nil {
						if errors.Is(err, runtime.ErrReset) {
							k--
							continue
						}
						errs <- fmt.Errorf("hy member %d pass %d: %w", id, k, err)
						return
					}
				}
			}()
		}
	}
	// The pipelined group: plain Await, the window overlaps waves below.
	for j := 0; j < n; j++ {
		g := regs[j].Group("deep")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < passes; k++ {
				if _, err := g.Await(ctx); err != nil {
					if errors.Is(err, runtime.ErrReset) {
						k--
						continue
					}
					errs <- fmt.Errorf("deep pass %d: %w", k, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Depth-3 lanes all moved frames over the wire.
	for id := uint32(1); id <= 3; id++ {
		sent, recv, _ := set.Muxes[0].GroupStats(id)
		if sent == 0 && recv == 0 {
			t.Errorf("wire group %d moved no frames", id)
		}
	}
}
