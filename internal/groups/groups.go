// Package groups hosts many independent barrier groups in one process
// over a single shared transport mux: one TCP connection per peer-process
// pair carries every group's frames, demultiplexed by the group id each
// v2 frame is tagged with. Each group is its own runtime.Barrier — its
// own token ring or double tree, its own fault policy, its own labelled
// metric series — so a fault, teardown, or restart in one group never
// perturbs another beyond sharing the socket.
//
// The deployment model matches cmd/barrierd: every group spans all
// processes and member ids are process indices, so group g's member i
// lives in process i. A Registry is one process's slice of that
// deployment: it owns the process's mux and a per-group Barrier hosting
// member Self.
package groups

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obsv"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// Config declares one barrier group. The zero value of each knob defers
// to the runtime default.
type Config struct {
	// Name identifies the group: it keys StopGroup/StartGroup, labels the
	// group's metric series ({group="..."}) and strengthens the handshake
	// digest. Letters, digits, '_', '.', '-'; unique per registry
	// (including the ".l<k>" lane names a Depth > 1 group expands into).
	Name string
	// Topology is transport.GroupRing (default), transport.GroupTree or
	// transport.GroupHybrid.
	Topology string
	// TreeArity is the heap arity for tree groups and for a hybrid
	// group's host tree (default 2).
	TreeArity int
	// Hosts is the hybrid member grouping: Hosts[j] lists the barrier
	// members process j fuses locally (runtime Config.Hosts). Required
	// for hybrid groups — with exactly one roster per process — and
	// forbidden otherwise.
	Hosts [][]int
	// Depth is the wave-pipelining window (default 1). A Depth > 1 group
	// claims Depth consecutive wire group ids — lanes, named
	// "<Name>.l1".."<Name>.l<Depth-1>" after the first — so frames of all
	// in-flight barrier instances batch onto the same shared connections,
	// and the group's Await overlaps up to Depth instances.
	Depth int
	// NPhases is the group's phase-counter modulus (default 8).
	NPhases int
	// Resend is the group's retransmission period (default 200µs).
	Resend time.Duration
	// LossRate / CorruptRate inject detectable communication faults into
	// this group only (tests, demos, soak runs).
	LossRate    float64
	CorruptRate float64
	// Seed drives the group's internal randomness.
	Seed int64
}

// Options configures the process-wide side of a Registry.
type Options struct {
	// Self is this process's index into Peers — and its member id in
	// every group.
	Self int
	// Peers[j] is process j's listen address.
	Peers []string
	// Rejoin starts every group's local member in the detectably-reset
	// state instead of the phase-0 start state. Use it when this process
	// is restarted into a deployment that is already running.
	Rejoin bool
	// Metrics, if non-nil, receives the shared transport counters plus
	// every group's labelled barrier series.
	Metrics *obsv.Registry
	// Logf, if non-nil, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// Group is one barrier group's process-local handle.
type Group struct {
	id   uint32
	cfg  Config
	opts *Options
	mux  *transport.Mux

	mu sync.Mutex
	b  *runtime.Barrier // nil while stopped
}

// Registry is one process's attachment to a multi-group deployment.
type Registry struct {
	opts   Options
	mux    *transport.Mux
	ownMux bool
	groups []*Group
	byName map[string]*Group

	mu     sync.Mutex
	closed bool
}

// Specs translates the group declarations into the mux's wire-level group
// table, assigning ids by declaration order; a Depth > 1 group expands
// into Depth consecutive lane specs. Exposed so tests can build a
// loopback mux set for the same declarations.
func Specs(cfgs []Config) ([]transport.GroupSpec, error) {
	specs := make([]transport.GroupSpec, 0, len(cfgs))
	seen := make(map[string]bool, len(cfgs))
	for _, c := range cfgs {
		topo := c.Topology
		if topo == "" {
			topo = transport.GroupRing
		}
		switch topo {
		case transport.GroupRing, transport.GroupTree:
			if c.Hosts != nil {
				return nil, fmt.Errorf("groups: group %q: Hosts is only for hybrid groups", c.Name)
			}
		case transport.GroupHybrid:
			if c.Hosts == nil {
				return nil, fmt.Errorf("groups: group %q: hybrid needs a Hosts grouping", c.Name)
			}
		default:
			return nil, fmt.Errorf("groups: group %q: unknown topology %q", c.Name, c.Topology)
		}
		if c.Depth < 0 {
			return nil, fmt.Errorf("groups: group %q: negative Depth", c.Name)
		}
		depth := c.Depth
		if depth == 0 {
			depth = 1
		}
		for li := 0; li < depth; li++ {
			name := c.Name
			if li > 0 {
				name = fmt.Sprintf("%s.l%d", c.Name, li)
			}
			if seen[name] {
				return nil, fmt.Errorf("groups: duplicate group name %q", name)
			}
			seen[name] = true
			specs = append(specs, transport.GroupSpec{
				ID:        uint32(len(specs)),
				Name:      name,
				Topology:  topo,
				TreeArity: c.TreeArity,
				Hosts:     c.Hosts,
			})
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("groups: no groups declared")
	}
	return specs, nil
}

// New builds the registry: it validates the declarations, brings up the
// shared mux, and starts every group's local barrier member.
func New(opts Options, cfgs []Config) (*Registry, error) {
	specs, err := Specs(cfgs)
	if err != nil {
		return nil, err
	}
	mux, err := transport.NewMux(transport.MuxConfig{
		Self:     opts.Self,
		Peers:    opts.Peers,
		Groups:   specs,
		Logf:     opts.Logf,
		Registry: opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	r, err := NewWithMux(opts, cfgs, mux)
	if err != nil {
		mux.Close()
		return nil, err
	}
	r.ownMux = true
	return r, nil
}

// NewWithMux is New over an existing mux (a loopback test set). The mux
// must have been created from Specs(cfgs); it stays the caller's to close.
// Only len(opts.Peers) matters here (the member count); nil defers to the
// mux's peer count.
func NewWithMux(opts Options, cfgs []Config, mux *transport.Mux) (*Registry, error) {
	if _, err := Specs(cfgs); err != nil {
		return nil, err
	}
	if opts.Peers == nil {
		opts.Peers = make([]string, mux.PeerCount())
	}
	r := &Registry{
		opts:   opts,
		mux:    mux,
		byName: make(map[string]*Group, len(cfgs)),
	}
	var nextID uint32 // lane-0 wire id; Depth > 1 groups claim Depth ids
	for _, c := range cfgs {
		g := &Group{id: nextID, cfg: c, opts: &r.opts, mux: mux}
		nextID += uint32(max(c.Depth, 1))
		r.groups = append(r.groups, g)
		r.byName[c.Name] = g
	}
	for _, g := range r.groups {
		if err := g.start(opts.Rejoin); err != nil {
			r.Close()
			return nil, fmt.Errorf("groups: start %q: %w", g.cfg.Name, err)
		}
	}
	return r, nil
}

// Groups returns the group handles in declaration order.
func (r *Registry) Groups() []*Group { return r.groups }

// Group returns the named group's handle, or nil.
func (r *Registry) Group(name string) *Group { return r.byName[name] }

// Mux exposes the shared transport (stats, fault injection in tests).
func (r *Registry) Mux() *transport.Mux { return r.mux }

// StopGroup tears down one group's local member without touching the
// shared connections or any other group. Frames still arriving for the
// group are dropped silently. Returns false if the name is unknown.
func (r *Registry) StopGroup(name string) bool {
	g := r.byName[name]
	if g == nil {
		return false
	}
	g.Stop()
	return true
}

// StartGroup restarts a stopped group's local member over the same shared
// connections. rejoin selects the Section 7 restart state, masking the
// restart as a detectable fault in a deployment that kept running.
func (r *Registry) StartGroup(name string, rejoin bool) error {
	g := r.byName[name]
	if g == nil {
		return fmt.Errorf("groups: unknown group %q", name)
	}
	return g.Start(rejoin)
}

// Close stops every group and, when the registry created the mux, closes
// the shared connections. Idempotent.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	for _, g := range r.groups {
		g.Stop()
	}
	if r.ownMux {
		return r.mux.Close()
	}
	return nil
}

// Name returns the group's declared name.
func (g *Group) Name() string { return g.cfg.Name }

// ID returns the group's wire id (its first lane's, when Depth > 1).
func (g *Group) ID() uint32 { return g.id }

// Barrier returns the running barrier, or nil while the group is stopped.
func (g *Group) Barrier() *runtime.Barrier {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.b
}

// Members returns the barrier member ids this process hosts for the
// group: []{Self} for ring and tree groups, the process's whole host
// roster for hybrid groups.
func (g *Group) Members() []int {
	if g.cfg.Topology == transport.GroupHybrid {
		return g.cfg.Hosts[g.opts.Self]
	}
	return []int{g.opts.Self}
}

// Await synchronizes this process's sole member of the group; see
// runtime.Barrier.Await. Returns runtime.ErrStopped while the group is
// stopped. For a hybrid group hosting more than one member, use
// AwaitMember.
func (g *Group) Await(ctx context.Context) (int, error) {
	m := g.Members()
	if len(m) != 1 {
		return 0, fmt.Errorf("groups: group %q hosts members %v; use AwaitMember", g.cfg.Name, m)
	}
	return g.AwaitMember(ctx, m[0])
}

// AwaitMember synchronizes one locally-hosted member of the group.
func (g *Group) AwaitMember(ctx context.Context, id int) (int, error) {
	b := g.Barrier()
	if b == nil {
		return 0, runtime.ErrStopped
	}
	return b.Await(ctx, id)
}

// Stop tears down the local member: the barrier stops, its mux links
// close (frames for the group now drop silently at the demux), and its
// metric series unregister so a successor can claim the names. Idempotent.
func (g *Group) Stop() {
	g.mu.Lock()
	b := g.b
	g.b = nil
	g.mu.Unlock()
	if b != nil {
		b.Stop()
		b.UnregisterMetrics()
	}
}

// Start brings the local member (back) up over the shared connections.
// No-op if already running.
func (g *Group) Start(rejoin bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.b != nil {
		return nil
	}
	return g.startLocked(rejoin)
}

func (g *Group) start(rejoin bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.startLocked(rejoin)
}

func (g *Group) startLocked(rejoin bool) error {
	topology := runtime.TopologyRing
	laneView := g.mux.Ring
	participants := len(g.opts.Peers)
	members := []int{g.opts.Self}
	switch g.cfg.Topology {
	case transport.GroupTree:
		topology = runtime.TopologyTree
		laneView = g.mux.Tree
	case transport.GroupHybrid:
		// This process fuses a whole host's members; the mux carries the
		// host tree, so the lane views' node space is process indices.
		topology = runtime.TopologyHybrid
		laneView = g.mux.Tree
		participants = 0
		for _, roster := range g.cfg.Hosts {
			participants += len(roster)
		}
		members = g.cfg.Hosts[g.opts.Self]
	}
	cfg := runtime.Config{
		Participants: participants,
		Topology:     topology,
		TreeArity:    g.cfg.TreeArity,
		Hosts:        g.cfg.Hosts,
		Depth:        g.cfg.Depth,
		Members:      members,
		Rejoin:       rejoin,
		NPhases:      g.cfg.NPhases,
		Resend:       g.cfg.Resend,
		LossRate:     g.cfg.LossRate,
		CorruptRate:  g.cfg.CorruptRate,
		Seed:         g.cfg.Seed,
		Metrics:      g.opts.Metrics,
		MetricLabel:  `group="` + g.cfg.Name + `"`,
	}
	if g.cfg.Depth > 1 {
		// One mux group per in-flight wave: lane li's frames are tagged
		// with wire id g.id+li, and all lanes batch into the same
		// per-peer writes.
		lanes := make([]runtime.Transport, g.cfg.Depth)
		for li := range lanes {
			lanes[li] = laneView(g.id + uint32(li))
		}
		cfg.LaneTransports = lanes
	} else {
		cfg.Transport = laneView(g.id)
	}
	b, err := runtime.New(cfg)
	if err != nil {
		return err
	}
	g.b = b
	return nil
}
