package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
)

func binParent(t *testing.T, n int) []int {
	t.Helper()
	tr, err := topo.NewBinaryTree(n)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Parent
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]int{-1}, 2, nil); err == nil {
		t.Error("single process should be rejected")
	}
	if _, err := New([]int{0, -1}, 2, nil); err == nil {
		t.Error("parent[0] != -1 should be rejected")
	}
	if _, err := New([]int{-1, 0}, 1, nil); err == nil {
		t.Error("single phase should be rejected")
	}
	if _, err := New([]int{-1, 2, 1}, 2, nil); err == nil {
		t.Error("forward parent reference should be rejected")
	}
}

func TestBarriersAdvanceFaultFree(t *testing.T) {
	p, err := New(binParent(t, 15), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000 && p.Barriers() < 20; i++ {
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			t.Fatal("baseline deadlocked fault-free")
		}
	}
	if p.Barriers() < 20 {
		t.Fatalf("only %d barriers", p.Barriers())
	}
	if p.N() != 15 {
		t.Error("N wrong")
	}
	if p.Phase(0) != p.Barriers()%4 {
		t.Error("Phase should be the announced counter modulo the cycle")
	}
}

// The paper's motivation: without fault-tolerance, one crashed process
// deadlocks the whole computation.
func TestCrashDeadlocksBaseline(t *testing.T) {
	p, err := New(binParent(t, 7), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Run a few barriers, then crash a leaf.
	for p.Barriers() < 3 {
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			t.Fatal("deadlock before crash")
		}
	}
	p.Crash(5)
	before := p.Barriers()
	quiescent := false
	for i := 0; i < 10000; i++ {
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			quiescent = true
			break
		}
	}
	if !quiescent {
		t.Fatal("baseline kept executing forever after a crash")
	}
	if p.Barriers() > before+1 {
		t.Errorf("baseline passed %d more barriers after the crash",
			p.Barriers()-before)
	}
}

// Undetectable corruption of the root's phase counter makes the intolerant
// baseline silently skip a huge range of phases — an undetected Safety
// violation, where the fault-tolerant program stabilizes with bounded
// damage.
func TestCorruptionSkipsPhasesSilently(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, err := New(binParent(t, 7), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for p.Barriers() < 3 {
		p.Guarded().StepRoundRobin()
	}
	p.CorruptPhase(0, rng) // corrupt the root's announced counter
	corrupted := p.Barriers()
	if corrupted < 1000 {
		t.Fatalf("corruption did not perturb the counter: %d", corrupted)
	}
	// The computation continues from the corrupted counter as if nothing
	// happened: every phase between 3 and the corrupted value was skipped,
	// and no process can tell.
	for i := 0; i < 20000 && p.Barriers() < corrupted+3; i++ {
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			break
		}
	}
	if p.Barriers() < corrupted+1 {
		t.Errorf("baseline stopped at %d; expected it to keep running from the "+
			"corrupted counter %d without detecting the skip", p.Barriers(), corrupted)
	}
}

func TestEventsEmitted(t *testing.T) {
	var begins, completes int
	sink := func(e core.Event) {
		switch e.Kind {
		case core.EvBegin:
			begins++
		case core.EvComplete:
			completes++
		}
	}
	p, err := New(binParent(t, 7), 4, sink)
	if err != nil {
		t.Fatal(err)
	}
	p.SetSink(sink)
	for p.Barriers() < 5 {
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			t.Fatal("deadlock")
		}
	}
	if begins == 0 || completes == 0 {
		t.Errorf("no events emitted: begins=%d completes=%d", begins, completes)
	}
}

func TestAnalyticPhaseTime(t *testing.T) {
	if got := AnalyticPhaseTime(5, 0.01); math.Abs(got-1.10) > 1e-12 {
		t.Errorf("1+2hc = %v, want 1.10", got)
	}
	if got := AnalyticPhaseTime(0, 0.05); got != 1 {
		t.Errorf("h=0 should give 1, got %v", got)
	}
}
