// Package baseline implements the fault-intolerant barrier the paper
// compares against in its overhead analysis (Section 6): a classic
// combining-tree barrier that detects completion with one communication
// over the tree and announces the next phase with another, achieving the
// 1 + 2hc phase time of the paper's intolerant model.
//
// The baseline is expressed as a guarded-command program over the same
// tree, driven by the same timed scheduler as the fault-tolerant program,
// so overhead comparisons are apples-to-apples. It has no fault-handling
// actions whatsoever: injecting a fault demonstrates the failure modes that
// motivate the paper (a crashed process deadlocks every other process; a
// corrupted phase counter desynchronizes the computation permanently).
package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/guarded"
)

// EventSink receives Begin/Complete events (the baseline never emits
// resets: it has no notion of faults).
type EventSink = core.EventSink

// Program is a fault-intolerant combining-tree barrier.
//
// Each process j keeps an announced phase ann.j and a finished phase fin.j:
//
//	A.j (j≠0) :: ann.parent ≠ ann.j                 → ann.j := ann.parent   (begin work)
//	F.j       :: ann.j ≠ fin.j ∧ work done ∧
//	             ∀child c: fin.c = ann.j            → fin.j := ann.j        (combine up)
//	R.0       :: fin.0 = ann.0                      → ann.0 := ann.0+1      (release)
type Program struct {
	n       int
	nPhases int

	parent   []int
	children [][]int

	ann []int
	fin []int

	prog *guarded.Program
	sink EventSink
	gate func(j int) bool

	halted []bool // a crashed process executes no actions (up = false)
}

// New builds the baseline over the tree described by parent (parent[0] =
// -1). Phases count modulo nPhases ≥ 2.
func New(parent []int, nPhases int, sink EventSink) (*Program, error) {
	n := len(parent)
	if n < 2 {
		return nil, errors.New("baseline: need at least 2 processes")
	}
	if parent[0] != -1 {
		return nil, errors.New("baseline: parent[0] must be -1")
	}
	if nPhases < 2 {
		return nil, errors.New("baseline: need at least 2 phases")
	}
	p := &Program{
		n:        n,
		nPhases:  nPhases,
		parent:   append([]int(nil), parent...),
		children: make([][]int, n),
		ann:      make([]int, n),
		fin:      make([]int, n),
		halted:   make([]bool, n),
	}
	for j := 1; j < n; j++ {
		pr := parent[j]
		if pr < 0 || pr >= j {
			return nil, fmt.Errorf("baseline: parent[%d] = %d must reference an earlier node", j, pr)
		}
		p.children[pr] = append(p.children[pr], j)
	}
	// ann and fin are monotone counters (exposed modulo nPhases by Phase):
	// initially phase 0 is announced everywhere and not yet finished
	// anywhere, so every process is implicitly executing phase 0.
	for j := range p.fin {
		p.fin[j] = -1
	}
	p.sink = sink
	p.prog = guarded.NewProgram()
	p.addActions()
	return p, nil
}

// Guarded returns the underlying guarded-command program.
func (p *Program) Guarded() *guarded.Program { return p.prog }

// N returns the number of processes.
func (p *Program) N() int { return p.n }

// SetWorkGate installs the phase-execution gate (see rbtree.SetWorkGate).
func (p *Program) SetWorkGate(gate func(j int) bool) { p.gate = gate }

// SetSink replaces the event sink.
func (p *Program) SetSink(sink EventSink) { p.sink = sink }

func (p *Program) workReady(j int) bool { return p.gate == nil || p.gate(j) }

// Phase returns the phase process j is currently in (modulo the cycle).
func (p *Program) Phase(j int) int { return p.ann[j] % p.nPhases }

// Barriers returns the number of completed barriers (phases the root has
// released past).
func (p *Program) Barriers() int { return p.ann[0] }

func (p *Program) emit(e core.Event) {
	if p.sink != nil {
		p.sink(e)
	}
}

func (p *Program) addActions() {
	for j := 0; j < p.n; j++ {
		j := j
		if j != 0 {
			parent := p.parent[j]
			// A.j: adopt the parent's announced phase and begin working.
			p.prog.Add(guarded.Action{
				Name: fmt.Sprintf("A.%d", j),
				Proc: j,
				Guard: func() bool {
					return !p.halted[j] && p.ann[parent] != p.ann[j]
				},
				Body: func() func() {
					v := p.ann[parent]
					return func() {
						p.ann[j] = v
						p.emit(core.Event{Kind: core.EvBegin, Proc: j, Phase: v % p.nPhases})
					}
				},
			})
		}
		kids := p.children[j]
		// F.j: report the phase finished once own work and all children are
		// done.
		p.prog.Add(guarded.Action{
			Name: fmt.Sprintf("F.%d", j),
			Proc: j,
			Guard: func() bool {
				if p.halted[j] || p.fin[j] == p.ann[j] || !p.workReady(j) {
					return false
				}
				for _, c := range kids {
					if p.fin[c] != p.ann[j] {
						return false
					}
				}
				return true
			},
			Body: func() func() {
				v := p.ann[j]
				return func() {
					p.fin[j] = v
					p.emit(core.Event{Kind: core.EvComplete, Proc: j, Phase: v % p.nPhases})
				}
			},
		})
	}
	// R.0: all done — release the next phase.
	p.prog.Add(guarded.Action{
		Name: "R.0",
		Proc: 0,
		Guard: func() bool {
			return !p.halted[0] && p.fin[0] == p.ann[0]
		},
		Body: func() func() {
			v := p.ann[0] + 1
			return func() {
				p.ann[0] = v
				p.emit(core.Event{Kind: core.EvBegin, Proc: 0, Phase: v % p.nPhases})
			}
		},
	})
}

// Crash halts process j permanently (models fail-stop without the
// restart the fault-tolerant program provides). The baseline then
// deadlocks — the behavior the paper's introduction motivates against.
func (p *Program) Crash(j int) { p.halted[j] = true }

// CorruptPhase overwrites process j's announced-phase counter with a random
// value — an undetectable fault. The baseline has no stabilization
// mechanism, so the computation stays desynchronized.
func (p *Program) CorruptPhase(j int, rng *rand.Rand) {
	p.ann[j] = rng.Intn(1 << 20)
	p.fin[j] = p.ann[j] - 1 - rng.Intn(2)
}

// AnalyticPhaseTime is the paper's closed form for the intolerant barrier:
// 1 + 2hc.
func AnalyticPhaseTime(h int, c float64) float64 {
	return 1 + 2*float64(h)*c
}
