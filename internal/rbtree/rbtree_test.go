package rbtree

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/rb"
	"repro/internal/topo"
)

func pathParent(n int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = i - 1
	}
	return parent
}

func binParent(t *testing.T, n int) []int {
	t.Helper()
	tr, err := topo.NewBinaryTree(n)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Parent
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New([]int{-1}, 2, 5, rng, nil); err == nil {
		t.Error("single process should be rejected")
	}
	if _, err := New([]int{0, -1}, 2, 5, rng, nil); err == nil {
		t.Error("parent[0] != -1 should be rejected")
	}
	if _, err := New(pathParent(3), 1, 5, rng, nil); err == nil {
		t.Error("single phase should be rejected")
	}
	if _, err := New(pathParent(3), 2, 2, rng, nil); err == nil {
		t.Error("K ≤ N should be rejected")
	}
	if _, err := New(pathParent(3), 2, 5, nil, nil); err == nil {
		t.Error("nil rng should be rejected")
	}
	if _, err := New([]int{-1, 0, 5}, 2, 7, rng, nil); err == nil {
		t.Error("forward parent reference should be rejected")
	}
}

// TB on a path is exactly RB: identical fault-free event sequences.
func TestPathDegeneratesToRB(t *testing.T) {
	const n, nPhases, events = 6, 3, 150

	var rbEvents []core.Event
	rngRB := rand.New(rand.NewSource(3))
	rbProg, err := rb.New(n, nPhases, n+1, rngRB, func(e core.Event) {
		rbEvents = append(rbEvents, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	for len(rbEvents) < events {
		if _, ok := rbProg.Guarded().StepRoundRobin(); !ok {
			t.Fatal("rb deadlock")
		}
	}

	var tbEvents []core.Event
	rngTB := rand.New(rand.NewSource(4))
	tbProg, err := New(pathParent(n), nPhases, n+1, rngTB, func(e core.Event) {
		tbEvents = append(tbEvents, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	for len(tbEvents) < events {
		if _, ok := tbProg.Guarded().StepRoundRobin(); !ok {
			t.Fatal("tb deadlock")
		}
	}

	for i := 0; i < events; i++ {
		if rbEvents[i] != tbEvents[i] {
			t.Fatalf("event %d differs: RB %v, TB-on-path %v", i, rbEvents[i], tbEvents[i])
		}
	}
}

// Fault-free barriers on a binary tree, an RB′-style two-chain topology,
// and a wide 4-ary tree, under all schedulers.
func TestFaultFreeBarriersOnTrees(t *testing.T) {
	twoChains := []int{-1, 0, 0, 1, 2, 3, 4} // root with two chains (Fig 2b)
	shapes := map[string][]int{
		"binary15":  binParent(t, 15),
		"binary32":  binParent(t, 32),
		"twoChains": twoChains,
		"kary4":     mustParent(t, 21, 4),
	}
	for name, parent := range shapes {
		t.Run(name, func(t *testing.T) {
			for _, sched := range []string{"roundRobin", "maxParallel"} {
				rng := rand.New(rand.NewSource(7))
				n := len(parent)
				const nPhases, wantBarriers = 3, 8
				checker := core.NewSpecChecker(n, nPhases)
				p, err := New(parent, nPhases, n+1, rng, checker.Observe)
				if err != nil {
					t.Fatal(err)
				}
				step := func() bool {
					if sched == "roundRobin" {
						_, ok := p.Guarded().StepRoundRobin()
						return ok
					}
					return p.Guarded().StepMaxParallel(nil) > 0
				}
				for i := 0; i < 500000 && checker.SuccessfulBarriers() < wantBarriers; i++ {
					if !step() {
						t.Fatalf("%s: deadlock in state %v", sched, p)
					}
				}
				if err := checker.Violation(); err != nil {
					t.Fatalf("%s: %v", sched, err)
				}
				if got := checker.SuccessfulBarriers(); got < wantBarriers {
					t.Fatalf("%s: only %d successful barriers", sched, got)
				}
			}
		})
	}
}

func mustParent(t *testing.T, n, k int) []int {
	t.Helper()
	tr, err := topo.NewKAryTree(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Parent
}

// O(h) wave structure: under maximal parallelism, a fault-free barrier on a
// binary tree of 32 processes (h=5) takes Θ(h) rounds per wave, far fewer
// than the Θ(N) a ring would need.
func TestLogarithmicRounds(t *testing.T) {
	countRounds := func(parent []int) int {
		rng := rand.New(rand.NewSource(9))
		n := len(parent)
		checker := core.NewSpecChecker(n, 2)
		p, err := New(parent, 2, n+1, rng, checker.Observe)
		if err != nil {
			t.Fatal(err)
		}
		rounds := 0
		for checker.SuccessfulBarriers() < 10 {
			if p.Guarded().StepMaxParallel(nil) == 0 {
				t.Fatal("deadlock")
			}
			rounds++
			if rounds > 100000 {
				t.Fatal("too slow")
			}
		}
		return rounds
	}
	treeRounds := countRounds(binParent(t, 32))
	ringRounds := countRounds(pathParent(32))
	if treeRounds*2 >= ringRounds {
		t.Errorf("tree rounds %d not significantly below ring rounds %d", treeRounds, ringRounds)
	}
	// 3 waves of ≈(h+1) rounds per barrier on the tree.
	perBarrier := treeRounds / 10
	if perBarrier < 3*5 || perBarrier > 3*(5+2) {
		t.Errorf("tree rounds per barrier = %d, want ≈ 3(h+1) = 18", perBarrier)
	}
}

func injectDetectableIfSafe(p *Program, rng *rand.Rand) {
	j := rng.Intn(p.N())
	for k := 0; k < p.N(); k++ {
		if k != j && p.CP(k) != core.Error {
			p.InjectDetectable(j)
			return
		}
	}
}

// Masking tolerance to detectable faults on trees (Lemma 4.2.1).
func TestDetectableFaultsMaskedOnTree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(12)
		k := 2 + rng.Intn(3)
		parent := mustParent(t, n, k)
		nPhases := 2 + rng.Intn(3)
		checker := core.NewSpecChecker(n, nPhases)
		p, err := New(parent, nPhases, n+1, rng, checker.Observe)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6000; i++ {
			if rng.Intn(70) == 0 {
				injectDetectableIfSafe(p, rng)
			}
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock in state %v", trial, p)
			}
			if err := checker.Violation(); err != nil {
				t.Fatalf("trial %d: safety violated: %v (state %v)", trial, err, p)
			}
		}
		before := checker.SuccessfulBarriers()
		for i := 0; i < 400000 && checker.SuccessfulBarriers() < before+3; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock after faults stopped: %v", trial, p)
			}
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if checker.SuccessfulBarriers() < before+3 {
			t.Fatalf("trial %d: no progress after faults stopped (state %v)", trial, p)
		}
	}
}

// Stabilizing tolerance to undetectable faults on trees (Lemma 4.2.1).
func TestUndetectableFaultsStabilizeOnTree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(12)
		parent := mustParent(t, n, 2)
		nPhases := 2 + rng.Intn(3)
		p, err := New(parent, nPhases, n+2, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			p.InjectUndetectable(j)
		}
		reached := false
		for i := 0; i < 300000; i++ {
			if p.InStartState() {
				reached = true
				break
			}
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock in state %v", trial, p)
			}
		}
		if !reached {
			t.Fatalf("trial %d: no start state reached from %v", trial, p)
		}
		checker := core.NewSpecCheckerAt(n, nPhases, p.Phase(0))
		p.sink = checker.Observe
		for i := 0; i < 500000 && checker.SuccessfulBarriers() < 3; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock after stabilization", trial)
			}
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("trial %d: spec violated after stabilization: %v", trial, err)
		}
		if checker.SuccessfulBarriers() < 3 {
			t.Fatalf("trial %d: no progress after stabilization", trial)
		}
	}
}

// Whole-tree detectable corruption restarts through the ⊤ wave (T3→T4→T5).
func TestWholeTreeCorruptionRestarts(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	parent := binParent(t, 15)
	p, err := New(parent, 2, 16, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < p.N(); j++ {
		p.ph[j] = rng.Intn(2)
		p.cp[j] = core.Error
		p.sn[j] = Bot
	}
	for i := 0; i < 100000; i++ {
		if p.InStartState() {
			return
		}
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			t.Fatalf("deadlock in state %v", p)
		}
	}
	t.Fatalf("no restart from whole-tree corruption: %v", p)
}

func TestAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	parent := binParent(t, 7)
	p, err := New(parent, 3, 8, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 7 || p.NumPhases() != 3 {
		t.Error("accessors wrong")
	}
	if len(p.Leaves()) != 4 {
		t.Errorf("leaves = %v", p.Leaves())
	}
	if p.CP(3) != core.Ready || p.Phase(3) != 0 || p.SN(3) != 0 {
		t.Error("initial state wrong")
	}
	if !p.InStartState() {
		t.Error("fresh program should be in a start state")
	}
	cp, ph := p.Snapshot()
	if len(cp) != 7 || len(ph) != 7 {
		t.Error("snapshot sizes wrong")
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}
