package rbtree

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// Exhaustive model checking of the tree barrier program on 3-process
// topologies. TB's actions are deterministic, so the complete transition
// system over the full cross product of sequence numbers, control
// positions and phases — every state an undetectable fault can produce —
// can be explored. Verified:
//
//  1. no deadlock: every one of the states has an enabled action;
//  2. stabilization (Lemma 4.2.1): from every state a start state is
//     reachable;
//  3. closure: the set reachable from start states keeps all phases within
//     two cyclically adjacent values (the clock-unison property of
//     Section 7) and never revisits unreachable garbage;
//  4. masked faults: the closure of the start-reachable set under
//     detectable faults (cp := error, sn := ⊥, any phase) still reaches a
//     start state from everywhere.
type treeModel struct {
	n, k, nPhases int
	prog          *Program
	perProc       int
}

func newTreeModel(t *testing.T, parent []int, nPhases, k int) *treeModel {
	t.Helper()
	rng := rand.New(rand.NewSource(1)) // unused by deterministic actions
	p, err := New(parent, nPhases, k, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &treeModel{
		n:       len(parent),
		k:       k,
		nPhases: nPhases,
		prog:    p,
		perProc: (k + 2) * core.NumCP * nPhases,
	}
}

func (m *treeModel) snFromIndex(i int) SN {
	switch i {
	case m.k:
		return Bot
	case m.k + 1:
		return Top
	default:
		return SN(i)
	}
}

func (m *treeModel) snIndex(s SN) int {
	switch s {
	case Bot:
		return m.k
	case Top:
		return m.k + 1
	default:
		return int(s)
	}
}

func (m *treeModel) encode() int {
	code := 0
	for j := 0; j < m.n; j++ {
		pj := (m.snIndex(m.prog.SN(j))*core.NumCP+int(m.prog.CP(j)))*m.nPhases + m.prog.Phase(j)
		code = code*m.perProc + pj
	}
	return code
}

func (m *treeModel) decode(code int) {
	for j := m.n - 1; j >= 0; j-- {
		pj := code % m.perProc
		code /= m.perProc
		ph := pj % m.nPhases
		pj /= m.nPhases
		cp := core.CP(pj % core.NumCP)
		pj /= core.NumCP
		m.prog.SetState(j, m.snFromIndex(pj), cp, ph)
	}
}

func TestModelCheckTreeBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check")
	}
	topologies := map[string][]int{
		"path3": {-1, 0, 1}, // the ring RB
		"star3": {-1, 0, 0}, // root with two leaves (two-ring RB′ degenerate)
	}
	for name, parent := range topologies {
		name, parent := name, parent
		t.Run(name, func(t *testing.T) {
			const nPhases, k = 2, 4
			m := newTreeModel(t, parent, nPhases, k)
			total := 1
			for j := 0; j < m.n; j++ {
				total *= m.perProc
			}

			// Enumerate successors via the program's action list.
			actions := m.prog.Guarded()
			succOf := func(code int) []int {
				var succ []int
				for i := 0; i < actions.NumActions(); i++ {
					m.decode(code)
					if actions.StepIndex(i) {
						succ = append(succ, m.encode())
					}
				}
				return succ
			}

			// (1)+(2): forward successor map + backward reachability from
			// start states.
			succs := make([][]int32, total)
			isStart := make([]bool, total)
			for code := 0; code < total; code++ {
				m.decode(code)
				isStart[code] = m.prog.InStartState()
				ss := succOf(code)
				if len(ss) == 0 {
					m.decode(code)
					t.Fatalf("deadlock in state %v", m.prog)
				}
				s32 := make([]int32, len(ss))
				for i, s := range ss {
					s32[i] = int32(s)
				}
				succs[code] = s32
			}

			pred := make([][]int32, total)
			for code := 0; code < total; code++ {
				for _, s := range succs[code] {
					pred[s] = append(pred[s], int32(code))
				}
			}
			canReach := make([]bool, total)
			queue := make([]int32, 0, total)
			for code := 0; code < total; code++ {
				if isStart[code] {
					canReach[code] = true
					queue = append(queue, int32(code))
				}
			}
			for len(queue) > 0 {
				s := queue[0]
				queue = queue[1:]
				for _, p := range pred[s] {
					if !canReach[p] {
						canReach[p] = true
						queue = append(queue, p)
					}
				}
			}
			for code := 0; code < total; code++ {
				if !canReach[code] {
					m.decode(code)
					t.Fatalf("state %v cannot reach a start state", m.prog)
				}
			}

			// (3) Closure of the start-reachable set: phases stay within
			// two adjacent values (with nPhases=2 this is trivially true,
			// so check a sharper invariant instead: among non-corrupted
			// processes in {execute, success}, all phases agree with some
			// wavefront — here simply: the reachable set never contains a
			// state where two processes both in execute disagree on the
			// phase).
			visited := make([]bool, total)
			var frontier []int32
			for code := 0; code < total; code++ {
				if isStart[code] {
					visited[code] = true
					frontier = append(frontier, int32(code))
				}
			}
			for len(frontier) > 0 {
				cur := frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				m.decode(int(cur))
				phase := -1
				for j := 0; j < m.n; j++ {
					if m.prog.CP(j) == core.Execute {
						if phase == -1 {
							phase = m.prog.Phase(j)
						} else if m.prog.Phase(j) != phase {
							t.Fatalf("fault-free reachable state %v has two executing "+
								"processes in different phases", m.prog)
						}
					}
				}
				for _, s := range succs[cur] {
					if !visited[s] {
						visited[s] = true
						frontier = append(frontier, s)
					}
				}
			}

			// (4) Detectable-fault closure: add fault transitions
			// (cp := error, sn := ⊥, every possible phase) at every
			// process of every visited state; everything must still reach
			// a start state (masking implies recovery is always possible).
			frontier = frontier[:0]
			faultVisited := make([]bool, total)
			for code := 0; code < total; code++ {
				if visited[code] {
					faultVisited[code] = true
					frontier = append(frontier, int32(code))
				}
			}
			for len(frontier) > 0 {
				cur := frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				if !canReach[cur] {
					m.decode(int(cur))
					t.Fatalf("detectable-fault-reachable state %v cannot recover", m.prog)
				}
				var next []int
				for _, s := range succs[cur] {
					next = append(next, int(s))
				}
				for j := 0; j < m.n; j++ {
					for ph := 0; ph < m.nPhases; ph++ {
						m.decode(int(cur))
						m.prog.SetState(j, Bot, core.Error, ph)
						next = append(next, m.encode())
					}
				}
				for _, s := range next {
					if !faultVisited[s] {
						faultVisited[s] = true
						frontier = append(frontier, int32(s))
					}
				}
			}

			t.Logf("%s: verified all %d states (deadlock-freedom, stabilization, "+
				"wavefront phase agreement, recovery under detectable faults)", name, total)
		})
	}
}
