// Package rbtree implements program TB, the Section 4.2 refinement of the
// barrier-synchronization program for tree topologies (Figures 2b and 2c of
// the paper): process 0 is the root, every other process updates its state
// from its tree parent, and the leaves are connected back to the root, so
// that detection and dissemination both take O(h) where h is the tree
// height.
//
// A ring is the degenerate tree in which every node has one child (the
// single leaf is the paper's process N), so TB instantiated on a path is
// exactly program RB; instantiated on a root with two chains it is RB′
// (Fig 2b); on a k-ary tree it is the Fig 2c program evaluated in
// Section 6.
//
// The token-ring actions generalize as follows (cf. package tokenring):
//
//	R1.0 :: (sn.0 ordinary ∧ ∀leaf l: sn.l = sn.0)
//	        ∨ (sn.0∈{⊥,⊤} ∧ ∃leaf l: sn.l ordinary)
//	        → sn.0 := sn.l+1 ; leader-update from the combined leaf state
//	T2.j :: sn.parent(j)∉{⊥,⊤} ∧ sn.j ≠ sn.parent(j)
//	        → sn.j := sn.parent(j) ; follower-update from parent state
//	T3.l :: leaf l ∧ sn.l = ⊥            → sn.l := ⊤
//	T4.j :: sn.j = ⊥ ∧ ∀child c: sn.c = ⊤ → sn.j := ⊤
//	T5.0 :: sn.0 = ⊤                      → sn.0 := 0
//
// As in RB′ (paper, Section 4.2 item 1), the root executes its T1
// equivalent only when all its ring-predecessors — the leaves — agree, and
// the re-execution phase is chosen from any leaf.
package rbtree

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/guarded"
	"repro/internal/tokenring"
)

// SN aliases the token-ring sequence-number type.
type SN = tokenring.SN

// Special sequence-number values, re-exported for convenience.
const (
	Bot = tokenring.Bot
	Top = tokenring.Top
)

// EventSink receives the Begin/Complete/Reset events of a computation.
type EventSink = core.EventSink

// Tree is the minimal topology interface TB needs. *topo.Tree satisfies it.
type Tree interface {
	Size() int
	IsLeaf(v int) bool
}

// Program is an instance of TB over a rooted tree.
type Program struct {
	n       int
	nPhases int
	k       int // sequence-number modulus, K > N

	parent   []int
	children [][]int
	leaves   []int

	sn []SN
	cp []core.CP
	ph []int

	prog *guarded.Program
	rng  *rand.Rand
	sink EventSink
	gate func(j int) bool
}

// New builds a TB instance over the tree described by the parent vector
// (parent[0] = -1, parents precede children), with sequence numbers modulo
// k (k > number of processes - 1). rng must not be nil; sink may be nil.
func New(parent []int, nPhases, k int, rng *rand.Rand, sink EventSink) (*Program, error) {
	n := len(parent)
	if n < 2 {
		return nil, errors.New("rbtree: need at least 2 processes")
	}
	if parent[0] != -1 {
		return nil, errors.New("rbtree: parent[0] must be -1")
	}
	if nPhases < 2 {
		return nil, errors.New("rbtree: need at least 2 phases")
	}
	if k < n {
		return nil, fmt.Errorf("rbtree: need K > N, got K=%d with N=%d", k, n-1)
	}
	if rng == nil {
		return nil, errors.New("rbtree: rng must not be nil")
	}
	p := &Program{
		n:        n,
		nPhases:  nPhases,
		k:        k,
		parent:   append([]int(nil), parent...),
		children: make([][]int, n),
		sn:       make([]SN, n),
		cp:       make([]core.CP, n),
		ph:       make([]int, n),
		rng:      rng,
		sink:     sink,
	}
	for j := 1; j < n; j++ {
		pr := parent[j]
		if pr < 0 || pr >= j {
			return nil, fmt.Errorf("rbtree: parent[%d] = %d must reference an earlier node", j, pr)
		}
		p.children[pr] = append(p.children[pr], j)
	}
	for j := 0; j < n; j++ {
		if len(p.children[j]) == 0 {
			p.leaves = append(p.leaves, j)
		}
	}
	p.prog = guarded.NewProgram()
	p.addActions()
	return p, nil
}

// Guarded returns the underlying guarded-command program for scheduling.
func (p *Program) Guarded() *guarded.Program { return p.prog }

// N returns the number of processes.
func (p *Program) N() int { return p.n }

// NumPhases returns the length of the cyclic phase sequence.
func (p *Program) NumPhases() int { return p.nPhases }

// CP returns process j's control position.
func (p *Program) CP(j int) core.CP { return p.cp[j] }

// Phase returns process j's phase number.
func (p *Program) Phase(j int) int { return p.ph[j] }

// SN returns process j's sequence number.
func (p *Program) SN(j int) SN { return p.sn[j] }

// Leaves returns the leaf processes (the root's ring-predecessors).
func (p *Program) Leaves() []int { return p.leaves }

func (p *Program) emit(e core.Event) {
	if p.sink != nil {
		p.sink(e)
	}
}

// SetWorkGate installs a predicate consulted before a process may take its
// completion transition (execute → success): while gate(j) is false,
// process j is still executing its phase and does not consume the success
// wave. Timed simulators use this to charge the paper's unit phase
// execution time; a nil gate (the default) completes immediately.
func (p *Program) SetWorkGate(gate func(j int) bool) { p.gate = gate }

// SetSink replaces the event sink (used by simulators that attach metrics
// after construction).
func (p *Program) SetSink(sink EventSink) { p.sink = sink }

// workReady reports whether process j may take a completion transition.
func (p *Program) workReady(j int) bool { return p.gate == nil || p.gate(j) }

// combinedLeafState merges the leaves into the single "process N" view the
// leader update expects: if the leaves agree on (cp, ph) that is the view;
// any disagreement reads as repeat (forcing a re-execution).
//
// The re-execution phase is taken from the first detectably clean leaf, not
// blindly from the first leaf: the root's recovery branch of R1.0 reads the
// leaves before the token has healed them, and a corrupted leaf (sn = ⊥,
// cp = error) holds an arbitrary phase — adopting it would turn a local
// detectable fault into a global phase skip, violating masking tolerance.
// If no leaf is clean the corruption is whole-system and only stabilizing
// tolerance applies, so any phase serves.
func (p *Program) combinedLeafState() (core.CP, int) {
	first := -1
	for _, l := range p.leaves {
		if p.sn[l].Ordinary() && p.cp[l] != core.Error {
			first = l
			break
		}
	}
	if first == -1 {
		return core.Repeat, p.ph[p.leaves[0]]
	}
	cpN := p.cp[first]
	phN := p.ph[first]
	for _, l := range p.leaves {
		if l != first && (p.cp[l] != cpN || p.ph[l] != phN) {
			return core.Repeat, phN
		}
	}
	return cpN, phN
}

func (p *Program) addActions() {
	// R1.0: the root receives the token when all leaves caught up (or when
	// the root itself is corrupted and can resynchronize from any ordinary
	// leaf).
	p.prog.Add(guarded.Action{
		Name: "R1.0",
		Proc: 0,
		Guard: func() bool {
			if p.sn[0].Ordinary() {
				for _, l := range p.leaves {
					if p.sn[l] != p.sn[0] {
						return false
					}
				}
				// The root may not consume the success wave while still
				// executing its phase.
				if p.cp[0] == core.Execute && !p.workReady(0) {
					return false
				}
				return true
			}
			if p.sn[0] == Bot || p.sn[0] == Top {
				for _, l := range p.leaves {
					if p.sn[l].Ordinary() {
						return true
					}
				}
			}
			return false
		},
		Body: func() func() {
			// Base the increment on an ordinary leaf (they all agree in the
			// normal case).
			base := p.sn[0]
			for _, l := range p.leaves {
				if p.sn[l].Ordinary() {
					base = p.sn[l]
					break
				}
			}
			next := SN((int(base) + 1) % p.k)
			cpN, phN := p.combinedLeafState()
			newCP, newPH, out := core.LeaderUpdate(p.cp[0], p.ph[0], cpN, phN, p.nPhases)
			phase := p.ph[0]
			return func() {
				p.sn[0] = next
				p.cp[0] = newCP
				p.ph[0] = newPH
				p.emitOutcome(0, out, phase, newPH)
			}
		},
	})

	for j := 1; j < p.n; j++ {
		j := j
		parent := p.parent[j]
		// T2.j: copy the token (and the superposed wave) from the parent.
		p.prog.Add(guarded.Action{
			Name: fmt.Sprintf("T2.%d", j),
			Proc: j,
			Guard: func() bool {
				if !p.sn[parent].Ordinary() || p.sn[j] == p.sn[parent] {
					return false
				}
				// A process still executing its phase does not consume the
				// success wave (it completes only once its work is done);
				// being pulled into a repeat/restart is not gated — that
				// abandons the work.
				if p.cp[j] == core.Execute && p.cp[parent] == core.Success && !p.workReady(j) {
					return false
				}
				return true
			},
			Body: func() func() {
				sn := p.sn[parent]
				newCP, newPH, out := core.FollowerUpdate(p.cp[j], p.ph[j], p.cp[parent], p.ph[parent])
				phase := p.ph[j]
				return func() {
					p.sn[j] = sn
					p.cp[j] = newCP
					p.ph[j] = newPH
					p.emitOutcome(j, out, phase, newPH)
				}
			},
		})
	}

	// T3 at leaves, T4 at internal nodes (children must all be ⊤), T5 at
	// the root: the whole-tree-corruption restart wave.
	for j := 0; j < p.n; j++ {
		j := j
		if len(p.children[j]) == 0 {
			if j == 0 {
				continue // degenerate single-node tree is rejected by New
			}
			p.prog.Add(guarded.Action{
				Name:  fmt.Sprintf("T3.%d", j),
				Proc:  j,
				Guard: func() bool { return p.sn[j] == Bot },
				Body:  func() func() { return func() { p.sn[j] = Top } },
			})
			continue
		}
		kids := p.children[j]
		p.prog.Add(guarded.Action{
			Name: fmt.Sprintf("T4.%d", j),
			Proc: j,
			Guard: func() bool {
				if p.sn[j] != Bot {
					return false
				}
				for _, c := range kids {
					if p.sn[c] != Top {
						return false
					}
				}
				return true
			},
			Body: func() func() { return func() { p.sn[j] = Top } },
		})
	}
	p.prog.Add(guarded.Action{
		Name:  "T5.0",
		Proc:  0,
		Guard: func() bool { return p.sn[0] == Top },
		Body:  func() func() { return func() { p.sn[0] = 0 } },
	})
}

func (p *Program) emitOutcome(j int, out core.Outcome, oldPhase, newPhase int) {
	switch out {
	case core.OutBegin:
		p.emit(core.Event{Kind: core.EvBegin, Proc: j, Phase: newPhase})
	case core.OutComplete:
		p.emit(core.Event{Kind: core.EvComplete, Proc: j, Phase: oldPhase})
	case core.OutAbandon:
		p.emit(core.Event{Kind: core.EvReset, Proc: j, Phase: oldPhase})
	}
}

// InjectDetectable applies the detectable fault action to process j:
// ph.j, cp.j, sn.j := ?, error, ⊥.
func (p *Program) InjectDetectable(j int) {
	if j < 0 || j >= p.n {
		return
	}
	if p.cp[j] != core.Error {
		p.emit(core.Event{Kind: core.EvReset, Proc: j, Phase: p.ph[j]})
	}
	p.ph[j] = p.rng.Intn(p.nPhases)
	p.cp[j] = core.Error
	p.sn[j] = Bot
}

// InjectUndetectable applies the undetectable fault action to process j.
func (p *Program) InjectUndetectable(j int) {
	if j < 0 || j >= p.n {
		return
	}
	p.ph[j] = p.rng.Intn(p.nPhases)
	p.cp[j] = core.CP(p.rng.Intn(core.NumCP))
	v := p.rng.Intn(p.k + 2)
	switch v {
	case p.k:
		p.sn[j] = Bot
	case p.k + 1:
		p.sn[j] = Top
	default:
		p.sn[j] = SN(v)
	}
}

// InStartState reports whether the program is in a start state: all
// sequence numbers ordinary and equal (so the root holds the unique token)
// and all processes ready in one phase.
func (p *Program) InStartState() bool {
	for j := 0; j < p.n; j++ {
		if !p.sn[j].Ordinary() || p.sn[j] != p.sn[0] {
			return false
		}
		if p.cp[j] != core.Ready || p.ph[j] != p.ph[0] {
			return false
		}
	}
	return true
}

// Snapshot returns copies of the cp and ph vectors.
func (p *Program) Snapshot() ([]core.CP, []int) {
	return append([]core.CP(nil), p.cp...), append([]int(nil), p.ph...)
}

// String renders the global state compactly.
func (p *Program) String() string {
	s := "["
	for j := 0; j < p.n; j++ {
		if j > 0 {
			s += " "
		}
		s += fmt.Sprintf("%c%d/%v", p.cp[j].Letter(), p.ph[j], p.sn[j])
	}
	return s + "]"
}

// Corrupted reports whether process j is in a detectably corrupted state.
func (p *Program) Corrupted(j int) bool {
	return p.cp[j] == core.Error || !p.sn[j].Ordinary()
}

// SetState overwrites process j's complete protocol state. It exists for
// exhaustive state-space exploration in tests (model checking); protocol
// and fault actions never use it.
func (p *Program) SetState(j int, sn SN, cp core.CP, ph int) {
	p.sn[j] = sn
	p.cp[j] = cp
	p.ph[j] = ph
}
