package obsv

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// Observations past the largest finite bound live only in the implicit
// +Inf bucket, and a bound hit exactly counts as inside it (le
// semantics). The rendered cumulative counts must reflect both.
func TestHistogramOverflowBucketRendering(t *testing.T) {
	h := NewHistogram("h_seconds", "", []float64{1, 2})
	for _, v := range []float64{3, 100, 2} { // two overflows, one exact bound hit
		h.Observe(v)
	}
	r := NewRegistry()
	r.MustRegister(h)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 0`,
		`h_seconds_bucket{le="2"} 1`, // the exact hit: le means ≤
		`h_seconds_bucket{le="+Inf"} 3`,
		"h_seconds_sum 105\n",
		"h_seconds_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
}

// Scraping while observers are running must be race-free (this test is
// the -race probe for WriteText vs Observe) and every individual scrape
// must stay internally consistent: cumulative bucket counts never
// decrease across bounds, and the +Inf bucket never undercounts the
// finite ones.
func TestHistogramObserveDuringScrape(t *testing.T) {
	h := NewHistogram("h_seconds", "", []float64{1, 2, 4})
	r := NewRegistry()
	r.MustRegister(h)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				h.Observe(float64((i + g) % 6))
			}
		}(g)
	}
	for scrapes := 0; scrapes < 200; scrapes++ {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		prev := int64(-1)
		for _, line := range strings.Split(sb.String(), "\n") {
			if !strings.HasPrefix(line, "h_seconds_bucket") {
				continue
			}
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("cumulative bucket count decreased (%d after %d) in:\n%s", v, prev, sb.String())
			}
			prev = v
		}
	}
	stop.Store(true)
	wg.Wait()
}

// A labelled histogram's series unregister exactly once, and only the
// named label set goes — the regression the tenant-group lifecycle
// depends on (StopGroup must free the name for the rejoin's successor
// without touching sibling groups' series).
func TestLabeledHistogramUnregisterOnce(t *testing.T) {
	r := NewRegistry()
	nameA := WithLabel("barrier_phase_seconds", `group="a"`)
	nameB := WithLabel("barrier_phase_seconds", `group="b"`)
	ha := NewHistogram(nameA, "", []float64{1})
	hb := NewHistogram(nameB, "", []float64{1})
	r.MustRegister(ha, hb)
	ha.Observe(0.5)
	hb.Observe(0.5)

	if !r.Unregister(nameA) {
		t.Fatal("first Unregister returned false")
	}
	if r.Unregister(nameA) {
		t.Error("second Unregister of the same series returned true")
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); strings.Contains(got, `group="a"`) {
		t.Errorf("unregistered series still rendered:\n%s", got)
	} else if !strings.Contains(got, `barrier_phase_seconds_bucket{group="b",le="1"} 1`) {
		t.Errorf("sibling label set disappeared with the unregistered one:\n%s", got)
	}

	// The name is free again: a successor (a rejoined group) registers a
	// fresh histogram under it, starting from zero.
	succ := NewHistogram(nameA, "", []float64{1})
	if err := r.Register(succ); err != nil {
		t.Fatalf("re-registering a freed name: %v", err)
	}
	sb.Reset()
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `barrier_phase_seconds_count{group="a"} 0`) {
		t.Errorf("successor series not rendered from zero:\n%s", sb.String())
	}
}
