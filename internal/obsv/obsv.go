// Package obsv is a zero-dependency metrics layer for the runtime
// barrier: pre-registered counters, gauges, and fixed-bucket histograms
// with an allocation-free hot path, rendered in the Prometheus text
// exposition format.
//
// The design constraint comes from the fused tree scheduler, which
// completes a 32-member barrier pass in ~58µs with 0 allocs/op: every
// Add/Set/Observe must be a handful of atomic operations on memory that
// was allocated at registration time. Anything that needs to allocate
// (name formatting, sorting, text rendering) happens at registration or
// scrape time, under the registry mutex, off the protocol goroutines.
//
// Metric names may carry a literal label set in braces, e.g.
//
//	obsv.NewCounter(`transport_frames_total{dir="sent"}`, "...")
//
// The registry treats the whole string as the identity; histograms merge
// their le="..." bucket label into an existing brace group when present.
package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Metric is anything the registry can render. Implementations must be
// safe for concurrent use.
type Metric interface {
	// Name returns the full metric name, including any label set.
	Name() string
	// Help returns the one-line HELP string ("" for none).
	Help() string
	// write renders the metric's sample lines (TYPE/HELP headers are the
	// registry's job, so that several labeled series of one family share
	// one header block).
	write(w io.Writer) error
	// kind is the Prometheus TYPE: "counter", "gauge", "histogram".
	kind() string
}

// Registry holds an ordered set of metrics and renders them. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics []Metric
	byName  map[string]Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Metric)}
}

// Register adds m. Registering two metrics with the same full name
// (including labels) is an error; re-registering the identical Metric
// value is a no-op, so several subsystems can idempotently install
// shared series.
func (r *Registry) Register(m Metric) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[m.Name()]; ok {
		if prev == m {
			return nil
		}
		return fmt.Errorf("obsv: duplicate metric %q", m.Name())
	}
	r.byName[m.Name()] = m
	r.metrics = append(r.metrics, m)
	return nil
}

// MustRegister is Register, panicking on error. Use at wiring time.
func (r *Registry) MustRegister(ms ...Metric) {
	for _, m := range ms {
		if err := r.Register(m); err != nil {
			panic(err)
		}
	}
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, grouped by family so labeled series of one name
// share a single HELP/TYPE header.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]Metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	// Group into families (name sans labels) preserving first-seen order,
	// then emit one header per family followed by its series in
	// registration order.
	type family struct {
		name    string
		help    string
		kind    string
		members []Metric
	}
	var (
		order []string
		fams  = make(map[string]*family)
	)
	for _, m := range metrics {
		base := familyName(m.Name())
		f, ok := fams[base]
		if !ok {
			f = &family{name: base, help: m.Help(), kind: m.kind()}
			fams[base] = f
			order = append(order, base)
		}
		f.members = append(f.members, m)
	}
	for _, base := range order {
		f := fams[base]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, m := range f.members {
			if err := m.write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// familyName strips a trailing {...} label set.
func familyName(full string) string {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i]
	}
	return full
}

// WithLabel merges a literal label pair (`key="value"`) into a metric
// name: a bare name gains a brace group, a name that already carries one
// gets the label appended. An empty label returns the name unchanged, so
// callers can thread an optional label without branching.
func WithLabel(name, label string) string {
	if label == "" {
		return name
	}
	if strings.IndexByte(name, '{') >= 0 {
		return strings.TrimSuffix(name, "}") + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// Unregister removes the metric registered under the given full name
// (including any label set) and reports whether one was removed.
// Subsystems with a bounded lifetime — a torn-down barrier group, say —
// use this so a successor can re-register the same series names.
func (r *Registry) Unregister(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; !ok {
		return false
	}
	delete(r.byName, name)
	for i, m := range r.metrics {
		if m.Name() == name {
			r.metrics = append(r.metrics[:i], r.metrics[i+1:]...)
			break
		}
	}
	return true
}

// ---- Counter ----

// Counter is a monotonically increasing int64. Add is one atomic add.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter returns an unregistered counter.
func NewCounter(name, help string) *Counter { return &Counter{name: name, help: help} }

// Add increments the counter. d must be ≥ 0.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) Name() string { return c.name }
func (c *Counter) Help() string { return c.help }
func (c *Counter) kind() string { return "counter" }
func (c *Counter) write(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
	return err
}

// ---- Gauge ----

// Gauge is a settable int64.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge returns an unregistered gauge.
func NewGauge(name, help string) *Gauge { return &Gauge{name: name, help: help} }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments (or, with d < 0, decrements) the gauge.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) Name() string { return g.name }
func (g *Gauge) Help() string { return g.help }
func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) write(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
	return err
}

// ---- scrape-time funcs ----

// CounterFunc exports an existing int64 source (say, an atomic counter a
// subsystem already maintains) as a counter, evaluated at scrape time.
// The hot path pays nothing beyond what it already did.
type CounterFunc struct {
	name, help string
	fn         func() int64
}

// NewCounterFunc returns an unregistered scrape-time counter.
func NewCounterFunc(name, help string, fn func() int64) *CounterFunc {
	return &CounterFunc{name: name, help: help, fn: fn}
}

func (c *CounterFunc) Name() string { return c.name }
func (c *CounterFunc) Help() string { return c.help }
func (c *CounterFunc) kind() string { return "counter" }
func (c *CounterFunc) write(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.fn())
	return err
}

// GaugeFunc is CounterFunc with gauge semantics.
type GaugeFunc struct {
	name, help string
	fn         func() int64
}

// NewGaugeFunc returns an unregistered scrape-time gauge.
func NewGaugeFunc(name, help string, fn func() int64) *GaugeFunc {
	return &GaugeFunc{name: name, help: help, fn: fn}
}

func (g *GaugeFunc) Name() string { return g.name }
func (g *GaugeFunc) Help() string { return g.help }
func (g *GaugeFunc) kind() string { return "gauge" }
func (g *GaugeFunc) write(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %d\n", g.name, g.fn())
	return err
}

// ---- Histogram ----

// Histogram is a fixed-bucket histogram. Observe is a linear scan over
// the (typically ≤ 16) bucket bounds plus two atomic ops — no
// allocation, no locks — so it is safe on the barrier hot path when
// sampled.
type Histogram struct {
	name, help string
	bounds     []float64      // upper bounds, ascending; +Inf implicit
	counts     []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count      atomic.Int64
	sumBits    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns an unregistered histogram with the given ascending
// upper bounds. Panics if bounds are empty or not strictly ascending.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obsv: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obsv: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		name:   name,
		help:   help,
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) Name() string { return h.name }
func (h *Histogram) Help() string { return h.help }
func (h *Histogram) kind() string { return "histogram" }

func (h *Histogram) write(w io.Writer) error {
	base := familyName(h.name)
	labels := "" // existing label set body, no braces
	if i := strings.IndexByte(h.name, '{'); i >= 0 {
		labels = strings.TrimSuffix(h.name[i+1:], "}")
	}
	series := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`%s_bucket{le="%s"}`, base, le)
		}
		return fmt.Sprintf(`%s_bucket{%s,le="%s"}`, base, labels, le)
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", series(formatBound(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s %d\n", series("+Inf"), cum); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, suffix, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.count.Load())
	return err
}

func formatBound(b float64) string {
	// %g gives "0.001", "1e-06" etc. — both valid le values.
	return fmt.Sprintf("%g", b)
}

// ExpBuckets returns n bounds growing geometrically from start by factor.
// Convenience for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obsv: ExpBuckets wants start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, ...
// Convenience for small-count histograms (instances per pass).
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic("obsv: LinearBuckets wants width > 0, n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Names returns the registered full metric names in registration order.
// Test/debug helper.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.Name()
	}
	return out
}

// Sorted is Names, sorted. Convenience for stable test output.
func (r *Registry) Sorted() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}
