package obsv

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("barrier_passes_total", "Completed barrier passes.")
	g := NewGauge("barrier_participants", "Configured participant count.")
	r.MustRegister(c, g)
	c.Add(3)
	c.Inc()
	g.Set(32)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# HELP barrier_passes_total Completed barrier passes.\n",
		"# TYPE barrier_passes_total counter\n",
		"barrier_passes_total 4\n",
		"# TYPE barrier_participants gauge\n",
		"barrier_participants 32\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
}

func TestLabeledFamiliesShareHeader(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(
		NewCounterFunc(`transport_frames_total{dir="sent"}`, "Frames by direction.", func() int64 { return 7 }),
		NewCounterFunc(`transport_frames_total{dir="recv"}`, "Frames by direction.", func() int64 { return 5 }),
	)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if strings.Count(got, "# TYPE transport_frames_total counter") != 1 {
		t.Errorf("want exactly one TYPE header for the family:\n%s", got)
	}
	if !strings.Contains(got, `transport_frames_total{dir="sent"} 7`) ||
		!strings.Contains(got, `transport_frames_total{dir="recv"} 5`) {
		t.Errorf("missing labeled series:\n%s", got)
	}
}

func TestHistogramExposition(t *testing.T) {
	h := NewHistogram("barrier_instances_per_pass", "Protocol instances consumed per pass.",
		LinearBuckets(1, 1, 4)) // 1,2,3,4
	for _, v := range []float64{1, 1, 1, 2, 5} {
		h.Observe(v)
	}
	r := NewRegistry()
	r.MustRegister(h)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# TYPE barrier_instances_per_pass histogram\n",
		`barrier_instances_per_pass_bucket{le="1"} 3`,
		`barrier_instances_per_pass_bucket{le="2"} 4`,
		`barrier_instances_per_pass_bucket{le="3"} 4`,
		`barrier_instances_per_pass_bucket{le="4"} 4`,
		`barrier_instances_per_pass_bucket{le="+Inf"} 5`,
		"barrier_instances_per_pass_sum 10\n",
		"barrier_instances_per_pass_count 5\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
	if h.Count() != 5 || h.Sum() != 10 {
		t.Errorf("Count/Sum = %d/%g, want 5/10", h.Count(), h.Sum())
	}
}

func TestHistogramLabelMerge(t *testing.T) {
	h := NewHistogram(`barrier_phase_seconds{topology="tree"}`, "", []float64{0.001, 0.01})
	h.Observe(0.0005)
	r := NewRegistry()
	r.MustRegister(h)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`barrier_phase_seconds_bucket{topology="tree",le="0.001"} 1`,
		`barrier_phase_seconds_bucket{topology="tree",le="+Inf"} 1`,
		`barrier_phase_seconds_sum{topology="tree"} 0.0005`,
		`barrier_phase_seconds_count{topology="tree"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
}

func TestDuplicateRegistration(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("x_total", "")
	if err := r.Register(c); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(c); err != nil {
		t.Errorf("re-registering the same metric value: %v, want nil", err)
	}
	if err := r.Register(NewCounter("x_total", "")); err == nil {
		t.Error("registering a different metric under a taken name: want error")
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if err := r.Register(NewCounter("x_total", "")); err != nil {
		t.Errorf("nil registry Register: %v", err)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry WriteText: %v, %q", err, sb.String())
	}
}

// The whole point of the package: recording is allocation-free, so it
// can sit on the fused scheduler's 0 allocs/op barrier hot path.
func TestHotPathAllocs(t *testing.T) {
	c := NewCounter("c_total", "")
	g := NewGauge("g", "")
	h := NewHistogram("h_seconds", "", ExpBuckets(1e-6, 4, 10))
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(9)
		g.Add(-1)
		h.Observe(3.2e-4)
	}); n != 0 {
		t.Errorf("hot-path ops allocate %v allocs/op, want 0", n)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("h", "", []float64{1, 2, 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 6))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
	// Per goroutine, i%6 over 0..999 hits 0..3 167 times and 4..5 166 times.
	want := 8.0 * (167*(0+1+2+3) + 166*(4+5))
	if h.Sum() != want {
		t.Errorf("Sum = %g, want %g", h.Sum(), want)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
