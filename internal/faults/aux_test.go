package faults

import (
	"math/rand"
	"testing"

	"repro/internal/cb"
	"repro/internal/core"
)

// A crashed process blocks Progress but never Safety: the barrier simply
// stops completing — the fail-safe flavor of Table 1's bottom-left cell
// when the crash is permanent.
func TestCrashBlocksProgressSafely(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, nPhases = 4, 3
	checker := core.NewSpecChecker(n, nPhases)
	p, err := cb.New(n, nPhases, rng, checker.Observe)
	if err != nil {
		t.Fatal(err)
	}
	crash := NewCrasher(n)
	p.Guarded().SetProcessGate(crash.Gate)

	// Run a few barriers, then crash process 2.
	for i := 0; i < 100000 && checker.SuccessfulBarriers() < 3; i++ {
		if _, ok := p.Guarded().StepRandom(rng); !ok {
			t.Fatal("deadlock before crash")
		}
	}
	crash.Crash(2)
	before := checker.SuccessfulBarriers()
	for i := 0; i < 20000; i++ {
		if _, ok := p.Guarded().StepRandom(rng); !ok {
			break // quiescence is expected: nothing can proceed
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("safety violated while process crashed: %v", err)
		}
	}
	if got := checker.SuccessfulBarriers(); got > before+1 {
		t.Errorf("barriers advanced from %d to %d despite a crashed participant",
			before, got)
	}
}

// Crash + restart is the paper's fail-stop/repair fault: the restarted
// process comes back with a reset state (a detectable fault), the barrier
// masks it, and progress resumes.
func TestCrashRestartMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, nPhases = 4, 3
	checker := core.NewSpecChecker(n, nPhases)
	p, err := cb.New(n, nPhases, rng, checker.Observe)
	if err != nil {
		t.Fatal(err)
	}
	crash := NewCrasher(n)
	p.Guarded().SetProcessGate(crash.Gate)

	for round := 0; round < 5; round++ {
		// Crash a process mid-computation...
		victim := rng.Intn(n)
		crash.Crash(victim)
		for i := 0; i < 200; i++ {
			p.Guarded().StepRandom(rng)
		}
		// ...then restart it with a reset state.
		crash.Restart(victim)
		p.InjectDetectable(victim)

		before := checker.SuccessfulBarriers()
		for i := 0; i < 100000 && checker.SuccessfulBarriers() < before+2; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("round %d: deadlock after restart", round)
			}
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("round %d: safety violated across crash/restart: %v", round, err)
		}
		if checker.SuccessfulBarriers() < before+2 {
			t.Fatalf("round %d: no progress after restart", round)
		}
	}
}

func TestCrasherAccessors(t *testing.T) {
	c := NewCrasher(3)
	if !c.Up(0) || c.AnyDown() {
		t.Error("all processes should start up")
	}
	c.Crash(1)
	if c.Up(1) || !c.AnyDown() || !c.Gate(0) || c.Gate(1) {
		t.Error("crash bookkeeping wrong")
	}
	c.Restart(1)
	if !c.Up(1) || c.AnyDown() {
		t.Error("restart bookkeeping wrong")
	}
}

// A transiently Byzantine process (good eventually restored) is just a
// source of undetectable faults: the program stabilizes afterwards.
func TestTransientByzantineStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, nPhases = 4, 3
	p, err := cb.New(n, nPhases, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	byz := NewByzantiner(n, rng)
	byz.Corrupt(2)
	if byz.Good(2) {
		t.Fatal("corrupt bookkeeping wrong")
	}

	// Byzantine period: process 2 trashes its state at every opportunity.
	for i := 0; i < 1000; i++ {
		byz.Step(p)
		p.Guarded().StepRandom(rng)
	}
	byz.Repair(2)
	if !byz.Good(2) {
		t.Fatal("repair bookkeeping wrong")
	}

	// Stabilization after the Byzantine behavior stops.
	reached := false
	for i := 0; i < 100000; i++ {
		if p.InStartState() {
			reached = true
			break
		}
		if _, ok := p.Guarded().StepRandom(rng); !ok {
			t.Fatal("deadlock during stabilization")
		}
	}
	if !reached {
		t.Fatalf("no stabilization after Byzantine period (state %v)", p)
	}
	// From the start state, the specification holds again.
	checker := core.NewSpecCheckerAt(n, nPhases, p.Phase(0))
	p.SetSink(checker.Observe)
	for i := 0; i < 100000 && checker.SuccessfulBarriers() < 3; i++ {
		if _, ok := p.Guarded().StepRandom(rng); !ok {
			t.Fatal("deadlock after stabilization")
		}
	}
	if err := checker.Violation(); err != nil {
		t.Fatalf("spec violated after Byzantine repair: %v", err)
	}
	if checker.SuccessfulBarriers() < 3 {
		t.Fatal("no progress after stabilization")
	}
}
