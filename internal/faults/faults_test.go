package faults

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cb"
	"repro/internal/mb"
	"repro/internal/rb"
	"repro/internal/rbtree"
)

// Compile-time checks: every protocol engine implements Injector, and the
// distributed ones implement Corruptible.
var (
	_ Injector    = (*cb.Program)(nil)
	_ Injector    = (*rb.Program)(nil)
	_ Injector    = (*mb.Program)(nil)
	_ Injector    = (*rbtree.Program)(nil)
	_ Corruptible = (*cb.Program)(nil)
	_ Corruptible = (*rb.Program)(nil)
	_ Corruptible = (*mb.Program)(nil)
	_ Corruptible = (*rbtree.Program)(nil)
)

// Table 1 of the paper, cell by cell.
func TestTable1(t *testing.T) {
	cases := []struct {
		corr  Correctability
		class Class
		want  Tolerance
	}{
		{Immediate, Detectable, TriviallyMasking},
		{Immediate, Undetectable, TriviallyMasking},
		{Eventual, Detectable, Masking},
		{Eventual, Undetectable, Stabilizing},
		{Uncorrectable, Detectable, FailSafe},
		{Uncorrectable, Undetectable, Intolerant},
	}
	for _, tc := range cases {
		if got := AppropriateTolerance(tc.corr, tc.class); got != tc.want {
			t.Errorf("AppropriateTolerance(%v, %v) = %v, want %v",
				tc.corr, tc.class, got, tc.want)
		}
	}
}

func TestCatalogClassification(t *testing.T) {
	if len(Catalog) < 20 {
		t.Errorf("catalog has %d kinds; the paper lists more fault types", len(Catalog))
	}
	byName := map[string]Kind{}
	for _, k := range Catalog {
		if k.Name == "" {
			t.Error("unnamed fault kind")
		}
		byName[k.Name] = k
	}
	// Spot-check classifications stated explicitly in the paper.
	checks := []struct {
		name  string
		class Class
		tol   Tolerance
	}{
		{"message loss", Detectable, Masking},
		{"processor fail-stop with restart", Detectable, Masking},
		{"internal/design error", Undetectable, Stabilizing},
		{"hanging process", Undetectable, Stabilizing},
		{"transient memory corruption", Undetectable, Stabilizing},
		{"correctable message corruption (ECC)", Detectable, TriviallyMasking},
		{"permanent processor crash", Detectable, FailSafe},
		{"Byzantine process", Undetectable, Intolerant},
	}
	for _, c := range checks {
		k, ok := byName[c.name]
		if !ok {
			t.Errorf("catalog is missing %q", c.name)
			continue
		}
		if k.Class != c.class || k.Tolerance() != c.tol {
			t.Errorf("%q classified as (%v, %v), want (%v, %v)",
				c.name, k.Class, k.Tolerance(), c.class, c.tol)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []string{
		Detectable.String(), Undetectable.String(),
		Immediate.String(), Eventual.String(), Uncorrectable.String(),
		TriviallyMasking.String(), Masking.String(), Stabilizing.String(),
		FailSafe.String(), Intolerant.String(),
		Catalog[0].String(),
	} {
		if s == "" {
			t.Error("empty string rendering")
		}
	}
}

func TestNoneSchedule(t *testing.T) {
	var s None
	if s.Arrivals(100) != 0 {
		t.Error("None schedule must never fire")
	}
}

func TestFrequencyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("f=%v should panic", f)
				}
			}()
			NewFrequency(f, rng)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil rng should panic")
			}
		}()
		NewFrequency(0.1, nil)
	}()
}

// The Frequency schedule matches the paper's model: P(no fault in d) =
// (1−f)^d, hence the expected arrival count over duration d is −ln(1−f)·d.
func TestFrequencyStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const f, d, windows = 0.05, 0.5, 40000
	s := NewFrequency(f, rng)
	total := 0
	zero := 0
	for i := 0; i < windows; i++ {
		a := s.Arrivals(d)
		total += a
		if a == 0 {
			zero++
		}
	}
	wantMean := -math.Log(1-f) * d
	gotMean := float64(total) / windows
	if math.Abs(gotMean-wantMean) > 0.05*wantMean+0.001 {
		t.Errorf("mean arrivals = %.5f, want ≈ %.5f", gotMean, wantMean)
	}
	wantZero := math.Pow(1-f, d)
	gotZero := float64(zero) / windows
	if math.Abs(gotZero-wantZero) > 0.01 {
		t.Errorf("P(no fault in %.2f) = %.4f, want ≈ %.4f", d, gotZero, wantZero)
	}
}

func TestFrequencyZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewFrequency(0, rng)
	for i := 0; i < 100; i++ {
		if s.Arrivals(10) != 0 {
			t.Fatal("f=0 must never fire")
		}
	}
	if s.Arrivals(0) != 0 || s.Arrivals(-1) != 0 {
		t.Error("empty window must not fire")
	}
}

// Property: arrivals are non-negative and f=0 windows are always empty.
func TestFrequencyProperty(t *testing.T) {
	check := func(seed int64, fRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := float64(fRaw%90) / 100
		d := float64(dRaw%50) / 10
		s := NewFrequency(f, rng)
		a := s.Arrivals(d)
		if a < 0 {
			return false
		}
		if f == 0 && a != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBurst(t *testing.T) {
	b := &Burst{At: 1.0, Count: 3}
	if b.Arrivals(0.5) != 0 {
		t.Error("burst fired early")
	}
	if b.Arrivals(0.6) != 3 {
		t.Error("burst did not fire at its time")
	}
	if b.Arrivals(10) != 0 {
		t.Error("burst fired twice")
	}
}

func TestApply(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := cb.New(4, 2, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	Apply(p, Undetectable, 10, rng)
	// Undetectable faults leave arbitrary values; nothing to assert except
	// no panic and state in domain.
	for j := 0; j < 4; j++ {
		if !p.CP(j).Valid() {
			t.Error("fault left control position outside the domain")
		}
	}
	Apply(p, Detectable, 2, rng)
	corrupted := 0
	for j := 0; j < 4; j++ {
		if p.Corrupted(j) {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Error("detectable faults should corrupt some process")
	}
}

func TestApplyDetectableSafeNeverCorruptsEveryone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		p, err := rb.New(3, 2, 4, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		applied := ApplyDetectableSafe(p, p, 20, rng)
		if applied >= 20 {
			t.Error("safe injection should have skipped some of 20 faults on 3 processes")
		}
		alive := 0
		for j := 0; j < 3; j++ {
			if !p.Corrupted(j) {
				alive++
			}
		}
		if alive == 0 {
			t.Fatal("safe injection corrupted every process")
		}
	}
}
