// Package faults models the paper's fault classification and injection
// machinery: the detectable/undetectable dichotomy of Section 2, the
// correctability dimension and appropriate-tolerance mapping of Table 1
// (Section 7), a catalog of the concrete fault types listed in the
// introduction, and the fault-arrival schedules used by the simulations of
// Section 6.
package faults

import (
	"fmt"
	"math"
	"math/rand"
)

// Class is the paper's primary fault dichotomy.
type Class uint8

const (
	// Detectable: the state of the faulted process can be reset before any
	// process accesses it (message loss, fail-stop, reboot, I/O errors,
	// detected corruption, …).
	Detectable Class = iota
	// Undetectable: the corrupted state may be accessed without detection
	// (design errors, hanging processes, undetected corruption, memory
	// leaks, transient state corruption, …).
	Undetectable
)

func (c Class) String() string {
	if c == Detectable {
		return "detectable"
	}
	return "undetectable"
}

// Correctability is the second dimension of Table 1.
type Correctability uint8

const (
	// Immediate: the fault can be corrected at occurrence (e.g. ECC-style
	// message corruption with enough redundancy to correct).
	Immediate Correctability = iota
	// Eventual: no part of the program is permanently affected; the fault
	// is eventually corrected (the Section 2 assumption).
	Eventual
	// Uncorrectable: some part of the program is permanently affected
	// (permanent crash without restart, persistent Byzantine behavior).
	Uncorrectable
)

func (c Correctability) String() string {
	switch c {
	case Immediate:
		return "immediately correctable"
	case Eventual:
		return "eventually correctable"
	default:
		return "uncorrectable"
	}
}

// Tolerance is the type of tolerance a barrier-synchronization program can
// appropriately provide for a fault class (Table 1).
type Tolerance uint8

const (
	// TriviallyMasking: the fault can be modeled away entirely.
	TriviallyMasking Tolerance = iota
	// Masking: every barrier is executed correctly despite the faults.
	Masking
	// Stabilizing: eventually every barrier is executed correctly, with the
	// number of incorrect phases kept to a minimum.
	Stabilizing
	// FailSafe: the program never reports a barrier completion incorrectly,
	// but may stop reporting completions.
	FailSafe
	// Intolerant: no tolerance whatsoever can be guaranteed.
	Intolerant
)

func (t Tolerance) String() string {
	switch t {
	case TriviallyMasking:
		return "trivially masking"
	case Masking:
		return "masking"
	case Stabilizing:
		return "stabilizing"
	case FailSafe:
		return "fail-safe"
	default:
		return "intolerant"
	}
}

// AppropriateTolerance is Table 1 of the paper: the tolerance a barrier
// synchronization should provide for each (correctability, class) cell.
func AppropriateTolerance(corr Correctability, class Class) Tolerance {
	switch corr {
	case Immediate:
		return TriviallyMasking
	case Eventual:
		if class == Detectable {
			return Masking
		}
		return Stabilizing
	default: // Uncorrectable
		if class == Detectable {
			return FailSafe
		}
		return Intolerant
	}
}

// Kind is a concrete fault type from the paper's introduction, classified.
type Kind struct {
	Name           string
	Class          Class
	Correctability Correctability
}

func (k Kind) String() string {
	return fmt.Sprintf("%s (%s, %s)", k.Name, k.Class, k.Correctability)
}

// Tolerance returns the appropriate tolerance for this fault kind.
func (k Kind) Tolerance() Tolerance {
	return AppropriateTolerance(k.Correctability, k.Class)
}

// Catalog lists the standard fault types enumerated in Section 1 of the
// paper, with the classification Section 2 assigns them.
var Catalog = []Kind{
	// Communication faults.
	{"message loss", Detectable, Eventual},
	{"detectable message corruption", Detectable, Eventual},
	{"correctable message corruption (ECC)", Detectable, Immediate},
	{"message duplication", Detectable, Eventual},
	{"detectable message reorder", Detectable, Eventual},
	{"unexpected message reception", Detectable, Eventual},
	{"undetectable message corruption", Undetectable, Eventual},
	{"undetectable message reorder", Undetectable, Eventual},
	{"channel failure and repair", Detectable, Eventual},
	// Processor faults.
	{"processor fail-stop with restart", Detectable, Eventual},
	{"processor reboot", Detectable, Eventual},
	{"permanent processor crash", Detectable, Uncorrectable},
	// Process faults.
	{"internal/design error", Undetectable, Eventual},
	{"hanging process", Undetectable, Eventual},
	{"Byzantine process", Undetectable, Uncorrectable},
	// System faults.
	{"system reconfiguration", Detectable, Eventual},
	{"memory leak", Undetectable, Eventual},
	{"transient memory corruption", Undetectable, Eventual},
	{"I/O fault", Detectable, Eventual},
	{"buffer exhaustion", Detectable, Eventual},
	// Performance faults.
	{"floating point exception", Detectable, Eventual},
	{"access violation", Detectable, Eventual},
}

// Injector is the fault-application interface every protocol engine in
// this repository implements (programs CB, RB, TB, MB and the runtime
// barrier all satisfy it).
type Injector interface {
	N() int
	InjectDetectable(j int)
	InjectUndetectable(j int)
}

// Schedule decides how many faults arrive in a window of simulated time.
type Schedule interface {
	// Arrivals returns how many faults occur in a window of duration dt
	// (in phase-time units).
	Arrivals(dt float64) int
}

// None is the empty schedule: no faults ever.
type None struct{}

// Arrivals always returns 0.
func (None) Arrivals(float64) int { return 0 }

// Frequency is the paper's fault-frequency model: the probability that no
// fault occurs in a window of duration d is (1−f)^d. Arrival counts are
// drawn from the equivalent Poisson process with rate −ln(1−f).
type Frequency struct {
	F   float64
	Rng *rand.Rand

	rate float64 // cached −ln(1−f)
}

// NewFrequency returns a schedule with fault frequency f ∈ [0, 1).
func NewFrequency(f float64, rng *rand.Rand) *Frequency {
	if f < 0 || f >= 1 {
		panic("faults: frequency must be in [0, 1)")
	}
	if rng == nil {
		panic("faults: rng must not be nil")
	}
	return &Frequency{F: f, Rng: rng, rate: -math.Log(1 - f)}
}

// Arrivals samples the number of faults in a window of duration dt.
func (s *Frequency) Arrivals(dt float64) int {
	if s.F == 0 || dt <= 0 {
		return 0
	}
	// Sample a Poisson(rate·dt) count by multiplying exponentials.
	lambda := s.rate * dt
	limit := math.Exp(-lambda)
	count := 0
	prod := s.Rng.Float64()
	for prod > limit {
		count++
		prod *= s.Rng.Float64()
	}
	return count
}

// Burst fires a fixed number of faults at or after a given time, once.
type Burst struct {
	At    float64
	Count int

	now   float64
	fired bool
}

// Arrivals advances the burst's clock and releases the burst when crossed.
func (b *Burst) Arrivals(dt float64) int {
	b.now += dt
	if !b.fired && b.now >= b.At {
		b.fired = true
		return b.Count
	}
	return 0
}

// Apply injects n faults of the given class at uniformly random processes.
// Per footnote 2 of the paper, a detectable fault is only injected while it
// leaves at least one process uncorrupted is not enforced here — engines or
// callers that need that discipline must arrange it (see ApplyDetectableSafe).
func Apply(inj Injector, class Class, n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		j := rng.Intn(inj.N())
		if class == Detectable {
			inj.InjectDetectable(j)
		} else {
			inj.InjectUndetectable(j)
		}
	}
}

// Corruptible is implemented by engines that can report whether a process
// is currently in a detectably corrupted state.
type Corruptible interface {
	Corrupted(j int) bool
}

// ApplyDetectableSafe injects up to n detectable faults at random
// processes, skipping injections that would leave every process corrupted
// (which the paper reclassifies as an undetectable whole-system fault). It
// returns the number of faults actually injected.
func ApplyDetectableSafe(inj Injector, c Corruptible, n int, rng *rand.Rand) int {
	applied := 0
	for i := 0; i < n; i++ {
		j := rng.Intn(inj.N())
		othersAlive := false
		for k := 0; k < inj.N(); k++ {
			if k != j && !c.Corrupted(k) {
				othersAlive = true
				break
			}
		}
		if othersAlive {
			inj.InjectDetectable(j)
			applied++
		}
	}
	return applied
}
