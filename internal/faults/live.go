package faults

import "math/rand"

// LiveBarrier is the fault-injection surface of the live runtime barrier
// (runtime.Barrier satisfies it). The indirection keeps this package a
// leaf: the abstract engines and the live runtime both plug into the same
// Section 7 aux-variable model without a dependency on either.
type LiveBarrier interface {
	// Crash fail-stops a member; Restart revives it through the
	// detectable-reset machinery (the paper's "restart all fail-stopped
	// processes … albeit with different states").
	Crash(id int)
	Restart(id int)
	// Byz fires one crafted undetectable fault attributed to member id;
	// seed selects the forgery shape deterministically.
	Byz(id int, seed int64)
}

// Live projects the Section 7 auxiliary-variable fault model onto a
// running barrier. The aux variables keep their paper meaning — up.j
// false means member j executes no actions (Table 1's fail-stop row),
// good.j false means member j "executes actions whose behavior is
// nondeterministic" — and every transition is mirrored onto the live
// runtime: up.j := false becomes Barrier.Crash(j), up.j := true becomes
// Barrier.Restart(j) (the mandatory paired detectable fault is built into
// Restart), and each Step of a bad-but-up member becomes one crafted
// forgery via Barrier.Byz. A member that is both bad and down injects
// nothing: per Section 7, "each action of that process is to be executed
// only if up is true", and the crash gate dominates the Byzantine one.
type Live struct {
	up   *Crasher
	good *Byzantiner
	b    LiveBarrier
	rng  *rand.Rand
}

// NewLive returns the model for n members of barrier b, all up and good.
// rng drives the forgery-shape draws of Byzantine steps.
func NewLive(b LiveBarrier, n int, rng *rand.Rand) *Live {
	return &Live{
		up:   NewCrasher(n),
		good: NewByzantiner(n, rng),
		b:    b,
		rng:  rng,
	}
}

// Crash sets up.j := false and fail-stops the live member. Crashing a
// member that is already down is a no-op (the aux variable is already
// corrupted).
func (l *Live) Crash(j int) {
	if !l.up.Up(j) {
		return
	}
	l.up.Crash(j)
	l.b.Crash(j)
}

// Restart sets up.j := true and revives the live member with a reset
// state. Restarting a member that is up is a no-op.
func (l *Live) Restart(j int) {
	if l.up.Up(j) {
		return
	}
	l.up.Restart(j)
	l.b.Restart(j)
}

// Corrupt sets good.j := false: from now on each Step makes member j
// fire one forgery.
func (l *Live) Corrupt(j int) { l.good.Corrupt(j) }

// Repair sets good.j := true (the eventually-correctable case).
func (l *Live) Repair(j int) { l.good.Repair(j) }

// Step fires the nondeterministic behavior of every bad member once:
// one crafted forgery per bad, up member. It returns how many forgeries
// were handed to the barrier, so a caller pacing an experiment can
// cross-check Stats.ByzInjected + Stats.DroppedInjections against the
// running total.
func (l *Live) Step() int {
	fired := 0
	for j := 0; j < l.up.N(); j++ {
		if l.good.Good(j) || !l.up.Up(j) {
			continue
		}
		l.b.Byz(j, l.rng.Int63())
		fired++
	}
	return fired
}

// Up reports aux variable up.j.
func (l *Live) Up(j int) bool { return l.up.Up(j) }

// Good reports aux variable good.j.
func (l *Live) Good(j int) bool { return l.good.Good(j) }

// AnyDown reports whether some member is crashed.
func (l *Live) AnyDown() bool { return l.up.AnyDown() }
