package faults

import "math/rand"

// Crasher realizes the paper's Section 7 auxiliary-variable modeling of
// processor crashes: "the crash of a process can be captured by
// introducing an auxiliary variable up for that process … Each action of
// that process is to be executed only if up is true. The crash itself is
// modeled as the occurrence of a fault that corrupts up, by setting it to
// false."
//
// Install Gate as the guarded program's process gate. Crash(j) halts j;
// Restart(j) brings it back — and, because restarting loses the process's
// state, the caller must apply the detectable fault action (Injector's
// InjectDetectable) at the same time, mirroring the paper's "restart all
// fail-stopped processes … albeit with different states".
type Crasher struct {
	up []bool
}

// NewCrasher returns a controller for n processes, all up.
func NewCrasher(n int) *Crasher {
	up := make([]bool, n)
	for i := range up {
		up[i] = true
	}
	return &Crasher{up: up}
}

// Gate is the process gate: a crashed process executes no actions.
func (c *Crasher) Gate(proc int) bool { return c.up[proc] }

// Crash sets up.j := false.
func (c *Crasher) Crash(j int) { c.up[j] = false }

// Restart sets up.j := true. Combine with InjectDetectable(j): the
// restarted process resumes with a reset (not its pre-crash) state.
func (c *Crasher) Restart(j int) { c.up[j] = true }

// Up reports whether process j is up.
func (c *Crasher) Up(j int) bool { return c.up[j] }

// N returns the number of processes under the model.
func (c *Crasher) N() int { return len(c.up) }

// AnyDown reports whether some process is crashed.
func (c *Crasher) AnyDown() bool {
	for _, u := range c.up {
		if !u {
			return true
		}
	}
	return false
}

// Byzantiner realizes the paper's auxiliary variable good: "If the
// variable good is true, then the process executes its normal actions.
// When a fault action corrupts good to false, the process executes actions
// whose behavior is nondeterministic." The nondeterministic behavior is
// modeled, per Section 2's fault representation, as repeatedly assigning
// arbitrary domain values to the process's variables — i.e. undetectable
// faults fired on every scheduling opportunity.
type Byzantiner struct {
	good []bool
	rng  *rand.Rand
}

// NewByzantiner returns a controller for n processes, all good.
func NewByzantiner(n int, rng *rand.Rand) *Byzantiner {
	good := make([]bool, n)
	for i := range good {
		good[i] = true
	}
	return &Byzantiner{good: good, rng: rng}
}

// Corrupt sets good.j := false.
func (b *Byzantiner) Corrupt(j int) { b.good[j] = false }

// Repair sets good.j := true (the eventually-correctable case; a
// permanently Byzantine process is the paper's intolerant cell).
func (b *Byzantiner) Repair(j int) { b.good[j] = true }

// Good reports whether process j behaves normally.
func (b *Byzantiner) Good(j int) bool { return b.good[j] }

// Step fires the nondeterministic behavior of every bad process once:
// each assigns arbitrary values to its variables via the injector. Call
// between scheduler steps.
func (b *Byzantiner) Step(inj Injector) {
	for j := 0; j < inj.N() && j < len(b.good); j++ {
		if !b.good[j] {
			inj.InjectUndetectable(j)
		}
	}
}
