package faults_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/runtime"
)

// recorder checks the adapter's transition discipline without a live
// barrier: dedup of redundant crashes, the mandatory Restart pairing,
// and the crash gate dominating the Byzantine one.
type recorder struct {
	crashes, restarts, byz []int
}

func (r *recorder) Crash(id int)        { r.crashes = append(r.crashes, id) }
func (r *recorder) Restart(id int)      { r.restarts = append(r.restarts, id) }
func (r *recorder) Byz(id int, _ int64) { r.byz = append(r.byz, id) }

func TestLiveAuxTransitions(t *testing.T) {
	rec := &recorder{}
	l := faults.NewLive(rec, 3, rand.New(rand.NewSource(1)))

	l.Crash(1)
	l.Crash(1) // up.1 already false: no second live action
	if len(rec.crashes) != 1 || rec.crashes[0] != 1 {
		t.Errorf("crashes = %v, want [1]", rec.crashes)
	}
	if l.Up(1) || !l.Up(0) {
		t.Errorf("up = [%v %v %v], want [true false true]", l.Up(0), l.Up(1), l.Up(2))
	}
	if !l.AnyDown() {
		t.Error("AnyDown false with a crashed member")
	}

	// A bad member that is down injects nothing: up gates every action.
	l.Corrupt(1)
	l.Corrupt(2)
	if n := l.Step(); n != 1 {
		t.Errorf("Step fired %d forgeries, want 1 (member 1 is down)", n)
	}
	if len(rec.byz) != 1 || rec.byz[0] != 2 {
		t.Errorf("byz = %v, want [2]", rec.byz)
	}

	l.Restart(0) // up.0 already true: no live action
	l.Restart(1)
	if len(rec.restarts) != 1 || rec.restarts[0] != 1 {
		t.Errorf("restarts = %v, want [1]", rec.restarts)
	}
	if n := l.Step(); n != 2 { // 1 is back up and still bad
		t.Errorf("Step after restart fired %d forgeries, want 2", n)
	}

	l.Repair(1)
	l.Repair(2)
	if n := l.Step(); n != 0 {
		t.Errorf("Step after repair fired %d forgeries, want 0", n)
	}
	if l.AnyDown() {
		t.Error("AnyDown true with every member up")
	}
}

// The model against the real runtime: a crash stalls the ring and a
// restart revives it; a Byzantine member's per-step forgeries are all
// rejected (ByzInjected + DroppedInjections accounts for every Step).
func TestLiveAgainstRuntime(t *testing.T) {
	const (
		n       = 3
		nPhases = 3
	)
	b, err := runtime.New(runtime.Config{
		Participants: n,
		NPhases:      nPhases,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	l := faults.NewLive(b, n, rand.New(rand.NewSource(11)))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	pass := func(passes int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, n)
		for id := 0; id < n; id++ {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < passes; k++ {
					if _, err := b.Await(ctx, id); err != nil {
						if errors.Is(err, runtime.ErrReset) {
							k--
							continue
						}
						errs <- err
						return
					}
				}
				errs <- nil
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	pass(2) // settle

	// One Byzantine member, stepped like Byzantiner.Step between rounds.
	l.Corrupt(2)
	fired := 0
	for k := 0; k < 10; k++ {
		fired += l.Step()
		time.Sleep(500 * time.Microsecond)
	}
	l.Repair(2)
	pass(3) // the correct members still pass

	// The last forgery can still be queued at its victim: wait for the
	// injection accounting to quiesce before the exactness check.
	tally := func(st runtime.Stats) [3]int64 {
		return [3]int64{st.ByzInjected, st.DroppedInjections,
			st.RejectedSeq + st.RejectedPhase + st.RejectedTop + st.RejectedSender}
	}
	st := b.Stats()
	for deadline := time.Now().Add(time.Second); ; {
		time.Sleep(2 * time.Millisecond)
		next := b.Stats()
		if tally(next) == tally(st) || time.Now().After(deadline) {
			st = next
			break
		}
		st = next
	}
	if got := st.ByzInjected + st.DroppedInjections; got != int64(fired) {
		t.Errorf("ByzInjected+DroppedInjections = %d, want %d Steps", got, fired)
	}
	rejected := st.RejectedSeq + st.RejectedPhase + st.RejectedTop + st.RejectedSender
	if rejected != st.ByzInjected {
		t.Errorf("rejected frames = %d, want exactly ByzInjected = %d", rejected, st.ByzInjected)
	}

	// Crash through the model: the ring stalls, Restart revives it.
	l.Crash(1)
	if st := b.Stats(); st.CrashesInjected+st.DroppedInjections == 0 {
		t.Error("model crash not delivered to the runtime")
	}
	l.Restart(1)
	pass(3)
	if !l.Up(1) {
		t.Error("aux up.1 false after Restart")
	}
}
