// Package dtree implements program DT, the Figure 2(d) refinement of the
// barrier-synchronization program: the same tree is used twice — once as
// the top tree, disseminating waves from the root toward the leaves, and
// once as the bottom tree, detecting completion by a convergecast from the
// leaves back to the root. Unlike the Figure 2(c) program (package
// rbtree), the root reads only its children, so the construction embeds in
// any connected graph via a spanning tree (topo.NewDoubleTreeFromGraph)
// with no long leaf-to-root wires; the price is a 2h-hop wave instead of
// h+1.
//
// Each process j maintains the usual (sn.j, cp.j, ph.j) plus an
// acknowledgment triple (ack.j = ackSN, ackCP, ackPH) summarizing its
// entire subtree after processing wave ackSN:
//
//	D.j (j≠0) :: sn.parent∉{⊥,⊤} ∧ sn.j ≠ sn.parent →
//	             sn.j := sn.parent ; follower-update          (down wave)
//	U.j       :: sn.j∉{⊥,⊤} ∧ ackSN.j ≠ sn.j ∧
//	             ∀child c: ackSN.c = sn.j →
//	             ack.j := (sn.j, fold(cp.j, ph.j, ack.c…))    (convergecast)
//	R.0       :: sn.0∉{⊥,⊤} ∧ ackSN.0 = sn.0 →
//	             sn.0 := sn.0+1 ; leader-update from ack-fold of children
//	          ∨  sn.0∈{⊥,⊤} ∧ ∃child: ackSN.c ordinary → resynchronize
//	T3.l, T4.j, T5.0 : the whole-tree-corruption restart wave, as in rbtree.
//
// fold merges subtree summaries: agreement on (cp, ph) is preserved, any
// disagreement reads as repeat (forcing the root to re-execute), exactly as
// a detectably corrupted process on the ring turns the token into repeat.
package dtree

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/guarded"
	"repro/internal/tokenring"
)

// SN aliases the token-ring sequence-number type.
type SN = tokenring.SN

// Special sequence-number values, re-exported for convenience.
const (
	Bot = tokenring.Bot
	Top = tokenring.Top
)

// EventSink receives the Begin/Complete/Reset events of a computation.
type EventSink = core.EventSink

// Program is an instance of DT over a rooted tree.
type Program struct {
	n       int
	nPhases int
	k       int

	parent   []int
	children [][]int

	sn []SN
	cp []core.CP
	ph []int

	ackSN []SN
	ackCP []core.CP
	ackPH []int

	prog *guarded.Program
	rng  *rand.Rand
	sink EventSink
	gate func(j int) bool
}

// New builds a DT instance over the tree described by the parent vector
// (parent[0] = -1, parents precede children), with sequence numbers modulo
// k (k > number of processes − 1).
func New(parent []int, nPhases, k int, rng *rand.Rand, sink EventSink) (*Program, error) {
	n := len(parent)
	if n < 2 {
		return nil, errors.New("dtree: need at least 2 processes")
	}
	if parent[0] != -1 {
		return nil, errors.New("dtree: parent[0] must be -1")
	}
	if nPhases < 2 {
		return nil, errors.New("dtree: need at least 2 phases")
	}
	if k < n {
		return nil, fmt.Errorf("dtree: need K > N, got K=%d with N=%d", k, n-1)
	}
	if rng == nil {
		return nil, errors.New("dtree: rng must not be nil")
	}
	p := &Program{
		n:        n,
		nPhases:  nPhases,
		k:        k,
		parent:   append([]int(nil), parent...),
		children: make([][]int, n),
		sn:       make([]SN, n),
		cp:       make([]core.CP, n),
		ph:       make([]int, n),
		ackSN:    make([]SN, n),
		ackCP:    make([]core.CP, n),
		ackPH:    make([]int, n),
		rng:      rng,
		sink:     sink,
	}
	for j := 1; j < n; j++ {
		pr := parent[j]
		if pr < 0 || pr >= j {
			return nil, fmt.Errorf("dtree: parent[%d] = %d must reference an earlier node", j, pr)
		}
		p.children[pr] = append(p.children[pr], j)
	}
	// Initially wave 0 has been fully disseminated and acknowledged with
	// everyone ready in phase 0, so the root's next increment starts the
	// first execute wave.
	p.prog = guarded.NewProgram()
	p.addActions()
	return p, nil
}

// Guarded returns the underlying guarded-command program for scheduling.
func (p *Program) Guarded() *guarded.Program { return p.prog }

// N returns the number of processes.
func (p *Program) N() int { return p.n }

// NumPhases returns the length of the cyclic phase sequence.
func (p *Program) NumPhases() int { return p.nPhases }

// CP returns process j's control position.
func (p *Program) CP(j int) core.CP { return p.cp[j] }

// Phase returns process j's phase number.
func (p *Program) Phase(j int) int { return p.ph[j] }

// SN returns process j's sequence number.
func (p *Program) SN(j int) SN { return p.sn[j] }

func (p *Program) emit(e core.Event) {
	if p.sink != nil {
		p.sink(e)
	}
}

// SetSink replaces the event sink.
func (p *Program) SetSink(sink EventSink) { p.sink = sink }

// SetWorkGate installs the phase-execution gate (see rbtree.SetWorkGate).
func (p *Program) SetWorkGate(gate func(j int) bool) { p.gate = gate }

func (p *Program) workReady(j int) bool { return p.gate == nil || p.gate(j) }

// foldChildren merges j's own post-wave state with its children's subtree
// summaries.
func (p *Program) foldChildren(j int) (core.CP, int) {
	cp, ph := p.cp[j], p.ph[j]
	for _, c := range p.children[j] {
		if p.ackCP[c] != cp || p.ackPH[c] != ph {
			cp = core.Repeat
		}
	}
	return cp, ph
}

// foldChildrenOnly merges only the children's summaries (what the root
// passes to the leader update: the state of all non-root processes).
func (p *Program) foldChildrenOnly(j int) (core.CP, int) {
	kids := p.children[j]
	cp, ph := p.ackCP[kids[0]], p.ackPH[kids[0]]
	for _, c := range kids[1:] {
		if p.ackCP[c] != cp || p.ackPH[c] != ph {
			cp = core.Repeat
		}
	}
	return cp, ph
}

func (p *Program) addActions() {
	// R.0: the root advances the wave when its whole tree has acknowledged.
	// A detectably corrupted root (sn.0 = ⊥) resynchronizes from the LIVE
	// state of a non-corrupted child — never from an acknowledgment
	// summary, which may describe an older wave. This is the tree analogue
	// of the ring's T1-with-⊥ guarded by sn.N ∉ {⊥,⊤}: the phase must be
	// copied from a neighbor whose state is known to be uncorrupted
	// (Lemma 4.1.2), and the post-recovery wave carries repeat so the
	// current phase is re-executed.
	p.prog.Add(guarded.Action{
		Name: "R.0",
		Proc: 0,
		Guard: func() bool {
			if p.sn[0].Ordinary() {
				if p.ackSN[0] != p.sn[0] {
					return false
				}
				if p.cp[0] == core.Execute && !p.workReady(0) {
					return false
				}
				return true
			}
			if p.sn[0] == Bot {
				for _, c := range p.children[0] {
					if p.sn[c].Ordinary() {
						return true
					}
				}
			}
			return false
		},
		Body: func() func() {
			if !p.sn[0].Ordinary() {
				// Resynchronize: adopt a fresh wave past a live child's,
				// marked repeat, with that child's (valid) phase.
				for _, c := range p.children[0] {
					if p.sn[c].Ordinary() {
						next := SN((int(p.sn[c]) + 1) % p.k)
						ph := p.ph[c]
						return func() {
							p.sn[0] = next
							p.cp[0] = core.Repeat
							p.ph[0] = ph
						}
					}
				}
				return nil
			}
			next := SN((int(p.sn[0]) + 1) % p.k)
			cpN, phN := p.foldChildrenOnly(0)
			if p.cp[0] == core.Error || p.cp[0] == core.Repeat {
				// The root lost its own phase: recover it from a live,
				// non-corrupted neighbor rather than a possibly stale
				// summary.
				for _, c := range p.children[0] {
					if p.sn[c].Ordinary() {
						phN = p.ph[c]
						break
					}
				}
			}
			newCP, newPH, out := core.LeaderUpdate(p.cp[0], p.ph[0], cpN, phN, p.nPhases)
			phase := p.ph[0]
			return func() {
				p.sn[0] = next
				p.cp[0] = newCP
				p.ph[0] = newPH
				p.emitOutcome(0, out, phase, newPH)
			}
		},
	})

	// B.j: bottom-up resynchronization for internal non-root processes
	// whose sequence number was corrupted while their parent is also
	// corrupted (so the down wave cannot repair them): adopt a live child's
	// wave and phase, marked repeat. Without this, a simultaneous
	// detectable corruption of a whole root-path (but not the subtrees
	// below) would deadlock: D needs an ordinary parent and the ⊤ wave
	// needs fully-⊥ subtrees.
	for j := 1; j < p.n; j++ {
		j := j
		kids := p.children[j]
		if len(kids) == 0 {
			continue
		}
		p.prog.Add(guarded.Action{
			Name: fmt.Sprintf("B.%d", j),
			Proc: j,
			Guard: func() bool {
				if p.sn[j].Ordinary() || p.sn[p.parent[j]].Ordinary() {
					return false
				}
				for _, c := range kids {
					if p.sn[c].Ordinary() {
						return true
					}
				}
				return false
			},
			Body: func() func() {
				for _, c := range kids {
					if p.sn[c].Ordinary() {
						sn := p.sn[c]
						ph := p.ph[c]
						return func() {
							p.sn[j] = sn
							p.cp[j] = core.Repeat
							p.ph[j] = ph
						}
					}
				}
				return nil
			},
		})
	}

	for j := 1; j < p.n; j++ {
		j := j
		parent := p.parent[j]
		// D.j: the down wave.
		p.prog.Add(guarded.Action{
			Name: fmt.Sprintf("D.%d", j),
			Proc: j,
			Guard: func() bool {
				if !p.sn[parent].Ordinary() || p.sn[j] == p.sn[parent] {
					return false
				}
				if p.cp[j] == core.Execute && p.cp[parent] == core.Success && !p.workReady(j) {
					return false
				}
				return true
			},
			Body: func() func() {
				sn := p.sn[parent]
				newCP, newPH, out := core.FollowerUpdate(p.cp[j], p.ph[j], p.cp[parent], p.ph[parent])
				phase := p.ph[j]
				return func() {
					p.sn[j] = sn
					p.cp[j] = newCP
					p.ph[j] = newPH
					p.emitOutcome(j, out, phase, newPH)
				}
			},
		})
	}

	// U.j: the convergecast, at every process (at the root it closes the
	// wave; R.0's guard reads ackSN.0).
	for j := 0; j < p.n; j++ {
		j := j
		kids := p.children[j]
		p.prog.Add(guarded.Action{
			Name: fmt.Sprintf("U.%d", j),
			Proc: j,
			Guard: func() bool {
				if !p.sn[j].Ordinary() || p.ackSN[j] == p.sn[j] {
					return false
				}
				for _, c := range kids {
					if p.ackSN[c] != p.sn[j] {
						return false
					}
				}
				// A process still executing must not acknowledge the wave
				// that would complete it — but execution state is folded by
				// cp, so acknowledging an execute wave while in execute is
				// correct; no work gating needed here (completion is gated
				// at D.j/R.0).
				return true
			},
			Body: func() func() {
				sn := p.sn[j]
				cp, ph := p.foldChildren(j)
				return func() {
					p.ackSN[j] = sn
					p.ackCP[j] = cp
					p.ackPH[j] = ph
				}
			},
		})
	}

	// The whole-tree-corruption restart wave.
	for j := 0; j < p.n; j++ {
		j := j
		kids := p.children[j]
		if len(kids) == 0 {
			p.prog.Add(guarded.Action{
				Name:  fmt.Sprintf("T3.%d", j),
				Proc:  j,
				Guard: func() bool { return p.sn[j] == Bot },
				Body:  func() func() { return func() { p.sn[j] = Top } },
			})
			continue
		}
		p.prog.Add(guarded.Action{
			Name: fmt.Sprintf("T4.%d", j),
			Proc: j,
			Guard: func() bool {
				if p.sn[j] != Bot {
					return false
				}
				for _, c := range kids {
					if p.sn[c] != Top {
						return false
					}
				}
				return true
			},
			Body: func() func() { return func() { p.sn[j] = Top } },
		})
	}
	p.prog.Add(guarded.Action{
		Name:  "T5.0",
		Proc:  0,
		Guard: func() bool { return p.sn[0] == Top },
		Body:  func() func() { return func() { p.sn[0] = 0 } },
	})
}

func (p *Program) emitOutcome(j int, out core.Outcome, oldPhase, newPhase int) {
	switch out {
	case core.OutBegin:
		p.emit(core.Event{Kind: core.EvBegin, Proc: j, Phase: newPhase})
	case core.OutComplete:
		p.emit(core.Event{Kind: core.EvComplete, Proc: j, Phase: oldPhase})
	case core.OutAbandon:
		p.emit(core.Event{Kind: core.EvReset, Proc: j, Phase: oldPhase})
	}
}

// InjectDetectable applies the detectable fault action to process j: its
// state and its subtree summary are reset.
func (p *Program) InjectDetectable(j int) {
	if j < 0 || j >= p.n {
		return
	}
	if p.cp[j] != core.Error {
		p.emit(core.Event{Kind: core.EvReset, Proc: j, Phase: p.ph[j]})
	}
	p.ph[j] = p.rng.Intn(p.nPhases)
	p.cp[j] = core.Error
	p.sn[j] = Bot
	p.ackSN[j] = Bot
	p.ackCP[j] = core.Error
	p.ackPH[j] = p.rng.Intn(p.nPhases)
}

// InjectUndetectable applies the undetectable fault action to process j.
func (p *Program) InjectUndetectable(j int) {
	if j < 0 || j >= p.n {
		return
	}
	randomSN := func() SN {
		v := p.rng.Intn(p.k + 2)
		switch v {
		case p.k:
			return Bot
		case p.k + 1:
			return Top
		default:
			return SN(v)
		}
	}
	p.ph[j] = p.rng.Intn(p.nPhases)
	p.cp[j] = core.CP(p.rng.Intn(core.NumCP))
	p.sn[j] = randomSN()
	p.ackSN[j] = randomSN()
	p.ackCP[j] = core.CP(p.rng.Intn(core.NumCP))
	p.ackPH[j] = p.rng.Intn(p.nPhases)
}

// Corrupted reports whether process j is in a detectably corrupted state.
func (p *Program) Corrupted(j int) bool {
	return p.cp[j] == core.Error || !p.sn[j].Ordinary()
}

// InStartState reports whether the program is in a start state: one fully
// acknowledged wave, everyone ready in one phase.
func (p *Program) InStartState() bool {
	for j := 0; j < p.n; j++ {
		if !p.sn[j].Ordinary() || p.sn[j] != p.sn[0] || p.ackSN[j] != p.sn[j] {
			return false
		}
		if p.cp[j] != core.Ready || p.ph[j] != p.ph[0] {
			return false
		}
		if p.ackCP[j] != core.Ready || p.ackPH[j] != p.ph[0] {
			return false
		}
	}
	return true
}

// String renders the global state compactly: own state then ack summary.
func (p *Program) String() string {
	s := "["
	for j := 0; j < p.n; j++ {
		if j > 0 {
			s += " "
		}
		s += fmt.Sprintf("%c%d/%v^%c%d/%v",
			p.cp[j].Letter(), p.ph[j], p.sn[j],
			p.ackCP[j].Letter(), p.ackPH[j], p.ackSN[j])
	}
	return s + "]"
}
