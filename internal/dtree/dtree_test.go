package dtree

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/rbtree"
	"repro/internal/topo"
)

func binParent(t *testing.T, n int) []int {
	t.Helper()
	tr, err := topo.NewBinaryTree(n)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Parent
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New([]int{-1}, 2, 5, rng, nil); err == nil {
		t.Error("single process should be rejected")
	}
	if _, err := New([]int{0, -1}, 2, 5, rng, nil); err == nil {
		t.Error("parent[0] != -1 should be rejected")
	}
	if _, err := New([]int{-1, 0}, 1, 5, rng, nil); err == nil {
		t.Error("single phase should be rejected")
	}
	if _, err := New([]int{-1, 0, 1}, 2, 2, rng, nil); err == nil {
		t.Error("K ≤ N should be rejected")
	}
	if _, err := New([]int{-1, 0}, 2, 5, nil, nil); err == nil {
		t.Error("nil rng should be rejected")
	}
	if _, err := New([]int{-1, 0, 5}, 2, 7, rng, nil); err == nil {
		t.Error("forward parent reference should be rejected")
	}
}

// Fault-free barriers on binary trees under all schedulers, spec-checked.
func TestFaultFreeBarriers(t *testing.T) {
	for _, n := range []int{7, 15, 32} {
		for _, sched := range []string{"roundRobin", "random", "maxParallel"} {
			rng := rand.New(rand.NewSource(5))
			const nPhases, wantBarriers = 3, 8
			checker := core.NewSpecChecker(n, nPhases)
			p, err := New(binParent(t, n), nPhases, n+1, rng, checker.Observe)
			if err != nil {
				t.Fatal(err)
			}
			step := func() bool {
				switch sched {
				case "roundRobin":
					_, ok := p.Guarded().StepRoundRobin()
					return ok
				case "random":
					_, ok := p.Guarded().StepRandom(rng)
					return ok
				default:
					return p.Guarded().StepMaxParallel(nil) > 0
				}
			}
			for i := 0; i < 1000000 && checker.SuccessfulBarriers() < wantBarriers; i++ {
				if !step() {
					t.Fatalf("n=%d %s: deadlock in state %v", n, sched, p)
				}
			}
			if err := checker.Violation(); err != nil {
				t.Fatalf("n=%d %s: %v", n, sched, err)
			}
			if got := checker.SuccessfulBarriers(); got < wantBarriers {
				t.Fatalf("n=%d %s: only %d successful barriers", n, sched, got)
			}
		}
	}
}

func injectDetectableIfSafe(p *Program, rng *rand.Rand) {
	j := rng.Intn(p.N())
	for k := 0; k < p.N(); k++ {
		if k != j && p.CP(k) != core.Error {
			p.InjectDetectable(j)
			return
		}
	}
}

// Masking tolerance to detectable faults.
func TestDetectableFaultsMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(12)
		nPhases := 2 + rng.Intn(3)
		checker := core.NewSpecChecker(n, nPhases)
		p, err := New(binParent(t, n), nPhases, n+1, rng, checker.Observe)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6000; i++ {
			if rng.Intn(80) == 0 {
				injectDetectableIfSafe(p, rng)
			}
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock in state %v", trial, p)
			}
			if err := checker.Violation(); err != nil {
				t.Fatalf("trial %d: safety violated: %v (state %v)", trial, err, p)
			}
		}
		before := checker.SuccessfulBarriers()
		for i := 0; i < 600000 && checker.SuccessfulBarriers() < before+3; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock after faults stopped: %v", trial, p)
			}
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if checker.SuccessfulBarriers() < before+3 {
			t.Fatalf("trial %d: no progress after faults stopped (state %v)", trial, p)
		}
	}
}

// Stabilizing tolerance to undetectable faults, including corrupted
// acknowledgment summaries.
func TestUndetectableFaultsStabilize(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(12)
		nPhases := 2 + rng.Intn(3)
		p, err := New(binParent(t, n), nPhases, n+2, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			p.InjectUndetectable(j)
		}
		reached := false
		for i := 0; i < 500000; i++ {
			if p.InStartState() {
				reached = true
				break
			}
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock in state %v", trial, p)
			}
		}
		if !reached {
			t.Fatalf("trial %d: no start state reached from %v", trial, p)
		}
		checker := core.NewSpecCheckerAt(n, nPhases, p.Phase(0))
		p.SetSink(checker.Observe)
		for i := 0; i < 600000 && checker.SuccessfulBarriers() < 3; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock after stabilization", trial)
			}
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("trial %d: spec violated after stabilization: %v", trial, err)
		}
		if checker.SuccessfulBarriers() < 3 {
			t.Fatalf("trial %d: no progress after stabilization (state %v)", trial, p)
		}
	}
}

// Whole-tree detectable corruption restarts through the ⊤ wave.
func TestWholeTreeCorruptionRestarts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p, err := New(binParent(t, 15), 2, 16, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < p.N(); j++ {
		p.InjectDetectable(j)
	}
	for i := 0; i < 500000; i++ {
		if p.InStartState() {
			return
		}
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			t.Fatalf("deadlock in state %v", p)
		}
	}
	t.Fatalf("no restart from whole-tree corruption: %v", p)
}

// The Fig 2(d) construction pays ≈2h rounds per wave versus Fig 2(c)'s
// ≈h+1 (the leaf→root wires): DT needs more rounds per barrier than TB on
// the same tree, but still far fewer than a ring.
func TestConvergecastCostsMoreThanLeafWires(t *testing.T) {
	const n = 32
	parent := binParent(t, n)
	rounds := func(build func(checker *core.SpecChecker) interface {
		Guarded() interface{ StepMaxParallel(*rand.Rand) int }
	}) int {
		checker := core.NewSpecChecker(n, 2)
		prog := build(checker)
		r := 0
		for checker.SuccessfulBarriers() < 10 {
			if prog.Guarded().StepMaxParallel(nil) == 0 {
				t.Fatal("deadlock")
			}
			r++
			if r > 1000000 {
				t.Fatal("too slow")
			}
		}
		return r
	}

	dtRounds := rounds(func(checker *core.SpecChecker) interface {
		Guarded() interface{ StepMaxParallel(*rand.Rand) int }
	} {
		rng := rand.New(rand.NewSource(1))
		p, err := New(parent, 2, n+1, rng, checker.Observe)
		if err != nil {
			t.Fatal(err)
		}
		return progAdapter{p.Guarded()}
	})
	tbRounds := rounds(func(checker *core.SpecChecker) interface {
		Guarded() interface{ StepMaxParallel(*rand.Rand) int }
	} {
		rng := rand.New(rand.NewSource(1))
		p, err := rbtree.New(parent, 2, n+1, rng, checker.Observe)
		if err != nil {
			t.Fatal(err)
		}
		return progAdapter{p.Guarded()}
	})

	if dtRounds <= tbRounds {
		t.Errorf("convergecast (%d rounds) should cost more than leaf wires (%d rounds)",
			dtRounds, tbRounds)
	}
	if dtRounds > 3*tbRounds {
		t.Errorf("convergecast cost %d rounds vs %d — more than the ≈2x expected",
			dtRounds, tbRounds)
	}
}

type progAdapter struct {
	g interface{ StepMaxParallel(*rand.Rand) int }
}

func (a progAdapter) Guarded() interface{ StepMaxParallel(*rand.Rand) int } { return a.g }

// DT embeds in an arbitrary connected graph via a spanning tree.
func TestGraphEmbedding(t *testing.T) {
	// Random connected graph.
	rng := rand.New(rand.NewSource(23))
	const n = 12
	adj := make([][]int, n)
	addEdge := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for v := 1; v < n; v++ {
		addEdge(v, rng.Intn(v))
	}
	for e := 0; e < n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			addEdge(a, b)
		}
	}
	dt, err := topo.NewDoubleTreeFromGraph(adj)
	if err != nil {
		t.Fatal(err)
	}
	checker := core.NewSpecChecker(n, 2)
	p, err := New(dt.Down.Parent, 2, n+1, rng, checker.Observe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000000 && checker.SuccessfulBarriers() < 5; i++ {
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			t.Fatal("deadlock")
		}
	}
	if err := checker.Violation(); err != nil {
		t.Fatal(err)
	}
	if checker.SuccessfulBarriers() < 5 {
		t.Fatal("no barriers on graph embedding")
	}
}

func TestAccessorsAndString(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := New(binParent(t, 7), 3, 8, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 7 || p.NumPhases() != 3 {
		t.Error("accessors wrong")
	}
	if p.CP(3) != core.Ready || p.Phase(3) != 0 || p.SN(3) != 0 {
		t.Error("initial state wrong")
	}
	if !p.InStartState() {
		t.Error("fresh program should be in a start state")
	}
	if p.Corrupted(1) {
		t.Error("fresh process should not be corrupted")
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}
