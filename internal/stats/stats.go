// Package stats provides the small statistical and tabular-reporting
// utilities used by the experiment drivers and benchmarks: sample
// summaries, and fixed-width ASCII tables matching the series the paper's
// figures plot.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations and summarizes them.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Var returns the unbiased sample variance (0 for fewer than 2 points).
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s *Sample) CI95() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(len(s.xs)))
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table renders labeled rows of float columns as a fixed-width ASCII table,
// in the style of the series the paper's figures plot.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of pre-formatted cells. The cell count must match
// the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns",
			len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, cells)
}

// AddFloats appends a row of floats formatted with the given verb (e.g.
// "%.4f").
func (t *Table) AddFloats(verb string, vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = fmt.Sprintf(verb, v)
	}
	t.AddRow(cells...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
