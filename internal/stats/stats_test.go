package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample should summarize to zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	// Unbiased variance of that classic sample is 32/7.
	if got := s.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("var = %v, want %v", got, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Error("CI95 should be positive for a spread sample")
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 5; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := s.Quantile(q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	var empty Sample
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

// Property: mean is within [min, max]; stddev is non-negative; quantiles
// are monotone.
func TestSampleProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		var s Sample
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64() * 10)
		}
		if s.Mean() < s.Min()-1e-9 || s.Mean() > s.Max()+1e-9 {
			return false
		}
		if s.Stddev() < 0 {
			return false
		}
		last := s.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < last-1e-9 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Figure X", "f", "instances")
	tab.AddFloats("%.3f", 0.01, 1.012)
	tab.AddRow("0.050", "1.061")
	out := tab.String()
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "instances") {
		t.Errorf("table missing header: %q", out)
	}
	if !strings.Contains(out, "1.012") || !strings.Contains(out, "1.061") {
		t.Errorf("table missing rows: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines: %q", len(lines), out)
	}
}

func TestTableCellCountPanics(t *testing.T) {
	tab := NewTable("", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("mismatched cell count should panic")
		}
	}()
	tab.AddRow("only-one")
}
