// Package analytical implements the closed-form performance model of
// Section 6.1 of the paper, for the barrier program running on a tree of
// height h under the maximal parallel semantics.
//
// Conventions (all times in units of the phase execution time):
//
//   - c is the communication latency (e.g. c = 0.01 means a 10µs message
//     latency against a 1ms phase).
//   - f is the fault frequency: the probability that no fault occurs in a
//     window of duration d is (1−f)^d, so f = 0.01 with a 1ms phase time
//     means 10 faults per second.
//   - The fault-tolerant program synchronizes with three waves over the
//     tree, so a successful fault-free phase takes 1 + 3hc.
//   - The fault-intolerant baseline needs only two waves (detect
//     completion, announce the next phase): 1 + 2hc.
package analytical

import (
	"errors"
	"math"
)

// Model is a parameterization of the analytical formulas.
type Model struct {
	H int     // tree height (32 processes in a binary tree → h = 5)
	C float64 // communication latency in phase-time units, c ≥ 0
	F float64 // fault frequency, 0 ≤ f < 1
}

// Validate reports whether the parameters are in the model's domain.
func (m Model) Validate() error {
	if m.H < 0 {
		return errors.New("analytical: h must be non-negative")
	}
	if m.C < 0 {
		return errors.New("analytical: c must be non-negative")
	}
	if m.F < 0 || m.F >= 1 {
		return errors.New("analytical: f must be in [0, 1)")
	}
	return nil
}

// FaultFreePhaseTime returns the maximum time to execute a phase
// successfully in the absence of faults: 1 + 3hc (one wave per control
// position change: execute, success, ready).
func (m Model) FaultFreePhaseTime() float64 {
	return 1 + 3*float64(m.H)*m.C
}

// IntolerantPhaseTime returns the phase time of the fault-intolerant
// baseline: 1 + 2hc (one communication over the tree to detect that all
// processes completed, another to start the next phase).
func (m Model) IntolerantPhaseTime() float64 {
	return 1 + 2*float64(m.H)*m.C
}

// PFaultDuringPhase returns the probability that at least one fault occurs
// during an instance of a phase: 1 − (1−f)^(1+3hc). The paper calls this
// f_freq.
func (m Model) PFaultDuringPhase() float64 {
	return 1 - math.Pow(1-m.F, m.FaultFreePhaseTime())
}

// PExactlyKInstances returns the probability that exactly k instances of a
// phase are executed before one succeeds: faults hit the first k−1
// instances and spare the k-th, i.e. f_freq^(k−1)·(1−f_freq).
func (m Model) PExactlyKInstances(k int) float64 {
	if k < 1 {
		return 0
	}
	ff := m.PFaultDuringPhase()
	return math.Pow(ff, float64(k-1)) * (1 - ff)
}

// ExpectedInstances returns the expected number of instances executed per
// successfully executed phase in the presence of detectable faults:
// 1/(1−f)^(1+3hc) (the mean of the geometric distribution above).
func (m Model) ExpectedInstances() float64 {
	return 1 / math.Pow(1-m.F, m.FaultFreePhaseTime())
}

// PhaseTime returns the expected time to execute a phase successfully in
// the presence of detectable faults: (1+3hc)/(1−f)^(1+3hc). This is the
// paper's worst-case model: a faulty instance is charged the full 1+3hc.
func (m Model) PhaseTime() float64 {
	return m.FaultFreePhaseTime() * m.ExpectedInstances()
}

// Overhead returns the fractional overhead of fault-tolerance relative to
// the fault-intolerant baseline: PhaseTime/IntolerantPhaseTime − 1.
// At h=5, c=0.01 this yields the paper's spot values: 4.5% (f=0),
// 5.7% (f=0.01), 10.8% (f=0.05).
func (m Model) Overhead() float64 {
	return m.PhaseTime()/m.IntolerantPhaseTime() - 1
}

// RecoveryBound returns the Section 6.1 worst-case bound on the time to
// recover from an arbitrary state (undetectable faults): hc to correct the
// sequence numbers, hc for the root to receive the token, and at most 3hc
// to reach a start state — 5hc in total. Under the paper's operating
// assumption 2hc ≤ 0.5 this is at most 1.25 time units.
func (m Model) RecoveryBound() float64 {
	return 5 * float64(m.H) * m.C
}

// SyncAssumptionHolds reports the paper's operating assumption that barrier
// synchronization takes at most half a phase time: 2hc ≤ 0.5.
func (m Model) SyncAssumptionHolds() bool {
	return 2*float64(m.H)*m.C <= 0.5
}
