package analytical

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestValidate(t *testing.T) {
	if err := (Model{H: 5, C: 0.01, F: 0.01}).Validate(); err != nil {
		t.Error(err)
	}
	for _, m := range []Model{
		{H: -1, C: 0, F: 0},
		{H: 1, C: -0.1, F: 0},
		{H: 1, C: 0, F: -0.1},
		{H: 1, C: 0, F: 1},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v should be invalid", m)
		}
	}
}

// Paper, Section 6.1 / Figure 4: at 32 processes (h=5) and c=0.01, the
// overhead of fault-tolerance is 4.5% with no faults, 5.7% at f=0.01
// (10 faults/second) and ≤10.8% at f=0.05 (50 faults/second).
func TestPaperOverheadSpotValues(t *testing.T) {
	cases := []struct {
		f    float64
		want float64
	}{
		{0, 0.045},
		{0.01, 0.057},
		{0.05, 0.108},
	}
	for _, tc := range cases {
		m := Model{H: 5, C: 0.01, F: tc.f}
		got := m.Overhead()
		if !approx(got, tc.want, 0.002) {
			t.Errorf("overhead(h=5,c=0.01,f=%g) = %.4f, want ≈ %.3f", tc.f, got, tc.want)
		}
	}
}

// Paper, Section 6.1 / Figure 3: at high latency c=0.05 and f=0.01 the
// probability of re-execution is as low as ≈1.7%.
func TestPaperReexecutionSpotValue(t *testing.T) {
	m := Model{H: 5, C: 0.05, F: 0.01}
	extra := m.ExpectedInstances() - 1
	if !approx(extra, 0.017, 0.002) {
		t.Errorf("re-execution fraction = %.4f, want ≈ 0.017", extra)
	}
	// And for f ≤ 0.01 at c = 0.01 it stays below 1.6%.
	m = Model{H: 5, C: 0.01, F: 0.01}
	if got := m.ExpectedInstances() - 1; got >= 0.016 {
		t.Errorf("re-execution fraction at c=0.01 = %.4f, want < 0.016", got)
	}
}

func TestFaultFreeTimes(t *testing.T) {
	m := Model{H: 5, C: 0.01, F: 0}
	if got := m.FaultFreePhaseTime(); !approx(got, 1.15, 1e-12) {
		t.Errorf("fault-free phase time = %v, want 1.15", got)
	}
	if got := m.IntolerantPhaseTime(); !approx(got, 1.10, 1e-12) {
		t.Errorf("intolerant phase time = %v, want 1.10", got)
	}
	if got := m.PhaseTime(); !approx(got, 1.15, 1e-12) {
		t.Errorf("phase time at f=0 = %v, want 1.15", got)
	}
	if m.PFaultDuringPhase() != 0 {
		t.Error("no faults means no fault during phase")
	}
}

func TestRecoveryBound(t *testing.T) {
	m := Model{H: 5, C: 0.01}
	if got := m.RecoveryBound(); !approx(got, 0.25, 1e-12) {
		t.Errorf("recovery bound = %v, want 0.25", got)
	}
	// Under the 2hc ≤ 0.5 assumption the bound is at most 1.25.
	m = Model{H: 5, C: 0.05}
	if !m.SyncAssumptionHolds() {
		t.Error("2hc = 0.5 satisfies the assumption")
	}
	if got := m.RecoveryBound(); got > 1.25+1e-12 {
		t.Errorf("recovery bound = %v, want ≤ 1.25", got)
	}
	if (Model{H: 6, C: 0.05}).SyncAssumptionHolds() {
		t.Error("2hc = 0.6 violates the assumption")
	}
}

// Property: the instance-count distribution is a proper geometric
// distribution whose mean matches the closed form.
func TestInstanceDistributionProperties(t *testing.T) {
	f := func(hRaw, cRaw, fRaw uint8) bool {
		m := Model{
			H: int(hRaw % 8),
			C: float64(cRaw%6) / 100,
			F: float64(fRaw%10) / 100,
		}
		sum, mean := 0.0, 0.0
		for k := 1; k < 4000; k++ {
			p := m.PExactlyKInstances(k)
			if p < 0 || p > 1 {
				return false
			}
			sum += p
			mean += float64(k) * p
		}
		if !approx(sum, 1, 1e-6) {
			return false
		}
		return approx(mean, m.ExpectedInstances(), 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: monotonicity — more faults or more latency never speeds the
// program up, and overhead is non-negative.
func TestMonotonicityProperties(t *testing.T) {
	f := func(hRaw, cRaw, fRaw uint8) bool {
		h := int(hRaw%8) + 1
		c := float64(cRaw%6) / 100
		fv := float64(fRaw%20) / 100
		m := Model{H: h, C: c, F: fv}
		mMoreFaults := Model{H: h, C: c, F: fv + 0.05}
		mMoreLatency := Model{H: h, C: c + 0.01, F: fv}
		if m.PhaseTime() > mMoreFaults.PhaseTime()+1e-12 {
			return false
		}
		if m.PhaseTime() > mMoreLatency.PhaseTime()+1e-12 {
			return false
		}
		if m.Overhead() < -1e-12 {
			return false
		}
		return m.ExpectedInstances() >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPExactlyKInstancesEdge(t *testing.T) {
	m := Model{H: 5, C: 0.01, F: 0.1}
	if m.PExactlyKInstances(0) != 0 {
		t.Error("k=0 has probability 0")
	}
	if got := m.PExactlyKInstances(1); !approx(got, 1-m.PFaultDuringPhase(), 1e-12) {
		t.Errorf("P(k=1) = %v", got)
	}
	// With f=0, exactly one instance with probability 1.
	m0 := Model{H: 5, C: 0.01, F: 0}
	if m0.PExactlyKInstances(1) != 1 || m0.PExactlyKInstances(2) != 0 {
		t.Error("f=0 must execute exactly one instance")
	}
}
