package rb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(1, 2, 5, rng, nil); err == nil {
		t.Error("single process should be rejected")
	}
	if _, err := New(3, 1, 5, rng, nil); err == nil {
		t.Error("single phase should be rejected")
	}
	if _, err := New(3, 2, 2, rng, nil); err == nil {
		t.Error("K ≤ N should be rejected")
	}
	if _, err := New(3, 2, 5, nil, nil); err == nil {
		t.Error("nil rng should be rejected")
	}
}

// Lemma 4.1.1: RB satisfies the barrier specification in the absence of
// faults, under interleaving and maximal parallel schedulers.
func TestFaultFreeBarriers(t *testing.T) {
	type stepper func(p *Program, rng *rand.Rand) bool
	steppers := map[string]stepper{
		"roundRobin": func(p *Program, _ *rand.Rand) bool {
			_, ok := p.Guarded().StepRoundRobin()
			return ok
		},
		"random": func(p *Program, rng *rand.Rand) bool {
			_, ok := p.Guarded().StepRandom(rng)
			return ok
		},
		"maxParallel": func(p *Program, rng *rand.Rand) bool {
			return p.Guarded().StepMaxParallel(rng) > 0
		},
	}
	for name, step := range steppers {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			const n, nPhases, wantBarriers = 6, 3, 15
			checker := core.NewSpecChecker(n, nPhases)
			p, err := New(n, nPhases, n+1, rng, checker.Observe)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200000 && checker.SuccessfulBarriers() < wantBarriers; i++ {
				if !step(p, rng) {
					t.Fatalf("deadlock in state %v", p)
				}
			}
			if err := checker.Violation(); err != nil {
				t.Fatal(err)
			}
			if got := checker.SuccessfulBarriers(); got < wantBarriers {
				t.Fatalf("only %d successful barriers (state %v)", got, p)
			}
			if checker.Instances() > checker.SuccessfulBarriers()+1 {
				t.Errorf("instances=%d successes=%d: fault-free run re-executed phases",
					checker.Instances(), checker.SuccessfulBarriers())
			}
		})
	}
}

// In the absence of faults the wave structure holds: one successful barrier
// per three token circulations (execute, success, ready waves).
func TestThreeCirculationsPerBarrier(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 5
	checker := core.NewSpecChecker(n, 2)
	p, err := New(n, 2, n+1, rng, checker.Observe)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for checker.SuccessfulBarriers() < 10 {
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			t.Fatal("deadlock")
		}
		steps++
		if steps > 100000 {
			t.Fatal("too slow")
		}
	}
	// Each circulation is n token receipts; 3 circulations per barrier.
	// Round-robin also wastes sweeps on disabled actions, so we only check
	// the receipt count via a fresh run with an explicit counter.
	receipts := 0
	p2, _ := New(n, 2, n+1, rng, nil)
	base := p2.Guarded()
	done := 0
	checker2 := core.NewSpecChecker(n, 2)
	p2.sink = func(e core.Event) {
		checker2.Observe(e)
		done = checker2.SuccessfulBarriers()
	}
	for done < 10 {
		name, ok := base.StepRoundRobin()
		if !ok {
			t.Fatal("deadlock")
		}
		if strings.HasPrefix(name, "T1") || strings.HasPrefix(name, "T2") {
			receipts++
		}
	}
	perBarrier := float64(receipts) / 10
	if perBarrier < 3*float64(n)-1 || perBarrier > 3*float64(n)+1 {
		t.Errorf("token receipts per barrier = %.1f, want ≈ %d (3 circulations of %d)",
			perBarrier, 3*n, n)
	}
}

func injectDetectableIfSafe(p *Program, rng *rand.Rand) {
	// Footnote 2 / appendix fault model: some process stays uncorrupted.
	j := rng.Intn(p.N())
	for k := 0; k < p.N(); k++ {
		if k != j && p.CP(k) != core.Error {
			p.InjectDetectable(j)
			return
		}
	}
}

// Lemma 4.1.2: RB is masking tolerant to detectable faults.
func TestDetectableFaultsMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		nPhases := 2 + rng.Intn(3)
		checker := core.NewSpecChecker(n, nPhases)
		p, err := New(n, nPhases, n+1+rng.Intn(3), rng, checker.Observe)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4000; i++ {
			if rng.Intn(50) == 0 {
				injectDetectableIfSafe(p, rng)
			}
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock in state %v", trial, p)
			}
			if err := checker.Violation(); err != nil {
				t.Fatalf("trial %d: safety violated with detectable faults: %v (state %v)",
					trial, err, p)
			}
			if c := p.Ring().TokenCount(); c > 1 {
				t.Fatalf("trial %d: %d tokens under detectable faults", trial, c)
			}
		}
		// Faults stop; progress must resume (Progress part of Lemma 4.1.2).
		before := checker.SuccessfulBarriers()
		for i := 0; i < 100000 && checker.SuccessfulBarriers() < before+3; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock after faults stopped: %v", trial, p)
			}
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if checker.SuccessfulBarriers() < before+3 {
			t.Fatalf("trial %d: no progress after faults stopped (state %v)", trial, p)
		}
	}
}

// Lemma 4.1.3: RB is stabilizing tolerant to undetectable faults.
func TestUndetectableFaultsStabilize(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		nPhases := 2 + rng.Intn(4)
		p, err := New(n, nPhases, n+2, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			p.InjectUndetectable(j)
		}
		reached := false
		for i := 0; i < 50000; i++ {
			if p.InStartState() {
				reached = true
				break
			}
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock in state %v", trial, p)
			}
		}
		if !reached {
			t.Fatalf("trial %d: no start state reached from %v", trial, p)
		}
		checker := core.NewSpecCheckerAt(n, nPhases, p.Phase(0))
		p.sink = checker.Observe
		for i := 0; i < 200000 && checker.SuccessfulBarriers() < 3; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock after stabilization", trial)
			}
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("trial %d: spec violated after stabilization: %v", trial, err)
		}
		if checker.SuccessfulBarriers() < 3 {
			t.Fatalf("trial %d: no progress after stabilization (state %v)", trial, p)
		}
	}
}

// Lemma 4.1.4 analogue: during recovery from an undetectable perturbation,
// only phases present in the perturbed state (or the one phase process 0
// legitimately increments into) are begun before the first start state.
func TestBoundedDamageAfterUndetectableFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		const nPhases = 16
		p, err := New(n, nPhases, n+2, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			p.InjectUndetectable(j)
		}
		perturbed := map[int]bool{}
		for j := 0; j < n; j++ {
			perturbed[p.Phase(j)] = true
			perturbed[core.NextPhase(p.Phase(j), nPhases)] = true
		}
		begun := map[int]bool{}
		p.sink = func(e core.Event) {
			if e.Kind == core.EvBegin {
				begun[e.Phase] = true
			}
		}
		for i := 0; i < 50000 && !p.InStartState(); i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock", trial)
			}
		}
		if !p.InStartState() {
			t.Fatalf("trial %d: did not stabilize", trial)
		}
		for ph := range begun {
			if !perturbed[ph] {
				t.Fatalf("trial %d: phase %d begun during recovery, outside the "+
					"perturbed set %v", trial, ph, perturbed)
			}
		}
	}
}

// Process 0 drives every phase change: no other process ever increments its
// phase on its own (non-0 processes only copy their predecessor's phase).
func TestProcessZeroLeads(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const n, nPhases = 5, 4
	var beginOrder []int
	p, err := New(n, nPhases, n+1, rng, func(e core.Event) {
		if e.Kind == core.EvBegin {
			beginOrder = append(beginOrder, e.Proc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			t.Fatal("deadlock")
		}
	}
	if len(beginOrder) < 2*n {
		t.Fatal("too few begins")
	}
	for i, proc := range beginOrder {
		if proc != i%n {
			t.Fatalf("begin order %v: process 0 starts each instance and the ring follows",
				beginOrder[:i+1])
		}
	}
}

func TestSnapshotAndAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := New(4, 3, 5, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, ph := p.Snapshot()
	if len(cp) != 4 || len(ph) != 4 {
		t.Fatal("snapshot sizes wrong")
	}
	if p.N() != 4 || p.NumPhases() != 3 {
		t.Error("accessors wrong")
	}
	if !p.InStartState() {
		t.Error("fresh program should be in a start state")
	}
	if p.String() == "" {
		t.Error("empty String")
	}
	if p.CP(2) != core.Ready || p.Phase(2) != 0 {
		t.Error("initial state wrong")
	}
}

// Property over random seeds (testing/quick): short fault-free prefixes of
// RB runs never violate the specification and always make progress, for
// arbitrary ring sizes, phase counts and sequence moduli.
func TestFaultFreePrefixProperty(t *testing.T) {
	f := func(seed int64, nRaw, phRaw, kRaw uint8) bool {
		n := 2 + int(nRaw%6)
		nPhases := 2 + int(phRaw%4)
		k := n + 1 + int(kRaw%4)
		rng := rand.New(rand.NewSource(seed))
		checker := core.NewSpecChecker(n, nPhases)
		p, err := New(n, nPhases, k, rng, checker.Observe)
		if err != nil {
			return false
		}
		for i := 0; i < 50*n && checker.SuccessfulBarriers() < 3; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				return false
			}
		}
		return checker.Violation() == nil && checker.SuccessfulBarriers() >= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
