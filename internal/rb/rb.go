// Package rb implements program RB, the Section 4.1 refinement of CB for a
// ring of processes 0..N: a multitolerant token ring (package tokenring)
// circulates a token, and each process updates its phase ph.j and control
// position cp.j exactly when it receives the token (actions T1 at process 0
// and T2 elsewhere), so that every action communicates with one neighbor
// only.
//
// Process 0 detects the global conditions of CB locally, using one full
// token circulation per control-position wave; the control position repeat
// (propagated towards N) tells 0 that some process was detectably corrupted
// during the current phase, in which case 0 re-executes the current phase
// instead of incrementing.
package rb

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/guarded"
	"repro/internal/tokenring"
)

// EventSink receives the Begin/Complete/Reset events of a computation.
type EventSink = core.EventSink

// Program is an instance of RB over a ring of n processes.
type Program struct {
	n       int // number of processes (ids 0..n-1; the paper's N is n-1)
	nPhases int
	cp      []core.CP
	ph      []int
	ring    *tokenring.Ring
	prog    *guarded.Program
	rng     *rand.Rand
	sink    EventSink
}

// New builds an RB instance with sequence numbers modulo k (k > nProcs-1,
// i.e. K > N). rng must not be nil; sink may be nil.
func New(nProcs, nPhases, k int, rng *rand.Rand, sink EventSink) (*Program, error) {
	if nProcs < 2 {
		return nil, errors.New("rb: need at least 2 processes")
	}
	if nPhases < 2 {
		return nil, errors.New("rb: need at least 2 phases")
	}
	if rng == nil {
		return nil, errors.New("rb: rng must not be nil")
	}
	ring, err := tokenring.New(nProcs, k)
	if err != nil {
		return nil, err
	}
	p := &Program{
		n:       nProcs,
		nPhases: nPhases,
		cp:      make([]core.CP, nProcs),
		ph:      make([]int, nProcs),
		ring:    ring,
		rng:     rng,
		sink:    sink,
	}
	p.prog = guarded.NewProgram()
	for _, a := range ring.Actions(p.onToken) {
		p.prog.Add(a)
	}
	return p, nil
}

// Guarded returns the underlying guarded-command program for scheduling.
func (p *Program) Guarded() *guarded.Program { return p.prog }

// Ring exposes the underlying token ring (for invariant checks in tests).
func (p *Program) Ring() *tokenring.Ring { return p.ring }

// N returns the number of processes.
func (p *Program) N() int { return p.n }

// NumPhases returns the length of the cyclic phase sequence.
func (p *Program) NumPhases() int { return p.nPhases }

// CP returns process j's control position.
func (p *Program) CP(j int) core.CP { return p.cp[j] }

// Phase returns process j's phase number.
func (p *Program) Phase(j int) int { return p.ph[j] }

func (p *Program) emit(e core.Event) {
	if p.sink != nil {
		p.sink(e)
	}
}

// onToken is the superposition hook: it is invoked against the pre-state
// when process j is about to receive the token, and returns the commit that
// updates ph.j and cp.j atomically with the sequence-number update.
func (p *Program) onToken(j int) func() {
	if j == 0 {
		return p.updateZero()
	}
	return p.updateNonZero(j)
}

// updateZero implements the superposed statement of process 0 (executed in
// parallel with T1); see core.LeaderUpdate.
func (p *Program) updateZero() func() {
	last := p.n - 1
	newCP, newPH, out := core.LeaderUpdate(p.cp[0], p.ph[0], p.cp[last], p.ph[last], p.nPhases)
	phase := p.ph[0]
	return func() {
		p.cp[0] = newCP
		p.ph[0] = newPH
		p.emitOutcome(0, out, phase, newPH)
	}
}

// updateNonZero implements the superposed statement of process j≠0
// (executed in parallel with T2); see core.FollowerUpdate.
func (p *Program) updateNonZero(j int) func() {
	newCP, newPH, out := core.FollowerUpdate(p.cp[j], p.ph[j], p.cp[j-1], p.ph[j-1])
	phase := p.ph[j]
	return func() {
		p.cp[j] = newCP
		p.ph[j] = newPH
		p.emitOutcome(j, out, phase, newPH)
	}
}

// emitOutcome translates a transition outcome into a trace event. Begin
// events carry the phase being entered; Complete and Abandon events carry
// the phase that was being executed.
func (p *Program) emitOutcome(j int, out core.Outcome, oldPhase, newPhase int) {
	switch out {
	case core.OutBegin:
		p.emit(core.Event{Kind: core.EvBegin, Proc: j, Phase: newPhase})
	case core.OutComplete:
		p.emit(core.Event{Kind: core.EvComplete, Proc: j, Phase: oldPhase})
	case core.OutAbandon:
		// An executing process pulled into repeat abandons its partial
		// execution; the instance will be re-executed.
		p.emit(core.Event{Kind: core.EvReset, Proc: j, Phase: oldPhase})
	}
}

// InjectDetectable applies the detectable fault action to process j:
// ph.j, cp.j, sn.j := ?, error, ⊥.
func (p *Program) InjectDetectable(j int) {
	if j < 0 || j >= p.n {
		return
	}
	if p.cp[j] != core.Error { // a second hit on an already-reset process aborts nothing new
		p.emit(core.Event{Kind: core.EvReset, Proc: j, Phase: p.ph[j]})
	}
	p.ph[j] = p.rng.Intn(p.nPhases)
	p.cp[j] = core.Error
	p.ring.SetSN(j, tokenring.Bot)
}

// InjectUndetectable applies the undetectable fault action to process j:
// ph.j, cp.j, sn.j := ?, ?, ? with values drawn uniformly from the domains.
func (p *Program) InjectUndetectable(j int) {
	if j < 0 || j >= p.n {
		return
	}
	p.ph[j] = p.rng.Intn(p.nPhases)
	p.cp[j] = core.CP(p.rng.Intn(core.NumCP))
	p.ring.SetSN(j, p.ring.RandomSN(p.rng))
}

// InStartState reports whether the program is in a start state: the ring is
// legitimate and all processes are ready in one phase.
func (p *Program) InStartState() bool {
	if !p.ring.Legitimate() {
		return false
	}
	for j := 0; j < p.n; j++ {
		if p.cp[j] != core.Ready || p.ph[j] != p.ph[0] {
			return false
		}
	}
	return true
}

// Snapshot returns copies of the cp and ph vectors.
func (p *Program) Snapshot() ([]core.CP, []int) {
	return append([]core.CP(nil), p.cp...), append([]int(nil), p.ph...)
}

// String renders the global state compactly, e.g. "[r0/3 e0/3 s1/4]" where
// each entry is cp, ph and sn.
func (p *Program) String() string {
	s := "["
	for j := 0; j < p.n; j++ {
		if j > 0 {
			s += " "
		}
		s += fmt.Sprintf("%c%d/%v", p.cp[j].Letter(), p.ph[j], p.ring.SN(j))
	}
	return s + "]"
}

// Corrupted reports whether process j is in a detectably corrupted state.
// Property (b) of the token ring: the control position of a process is
// error iff its sequence number is ⊥ or ⊤.
func (p *Program) Corrupted(j int) bool {
	return p.cp[j] == core.Error || !p.ring.SN(j).Ordinary()
}

// SetSink replaces the event sink (used by harnesses that attach metrics
// or checkers after construction).
func (p *Program) SetSink(sink EventSink) { p.sink = sink }
