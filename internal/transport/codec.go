// Wire codec: length-prefixed, CRC-checksummed frames. The framing is
// deliberately rigid — fixed magic, bounded payload, trailing CRC32 — and
// every violation is handled the same way: the frame is rejected and the
// connection dropped, which the protocol layer experiences as message
// loss. Resynchronizing a desynchronized byte stream is never attempted;
// the dialer's reconnect and the barrier's retransmission are the repair.
//
// Wire format v2: every protocol frame (state, ⊤, up) carries a group id
// so one connection per peer pair can multiplex many barrier groups, and
// the hello carries a config digest so two clusters with different peer
// lists, topologies or group sets cannot cross-connect just because a
// member id happens to match.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/tokenring"
)

// Frame layout:
//
//	magic(1) | type(1) | payload len uint16 BE (2) | payload | crc32 IEEE BE (4)
//
// The CRC covers magic through payload.
const (
	magicByte    = 0xB7
	helloVersion = 2

	headerLen  = 4
	trailerLen = 4

	// MaxPayload bounds a frame payload. An advertised length beyond it is
	// a codec error — a reader never allocates attacker-controlled sizes.
	MaxPayload = 64
)

// Frame types.
const (
	// FrameHello opens a connection: payload = version(1) | member id
	// uint32 BE | config digest uint64 BE. The acceptor verifies the
	// dialer's identity for the edge and that the digest matches its own
	// configuration (peer list, topology, group set).
	FrameHello byte = 1
	// FrameState carries the MB triple forward (dialer → acceptor):
	// payload = group uint32 BE | sn int32 BE | cp(1) | ph int32 BE |
	// sum uint32 BE.
	FrameState byte = 2
	// FrameTop carries the ⊤ restart marker backward (acceptor → dialer):
	// payload = group uint32 BE.
	FrameTop byte = 3
	// FrameUp carries a tree convergecast announcement (child → parent):
	// payload = group uint32 BE | child int32 BE | sn int32 BE | cp(1) |
	// ph int32 BE | ackSN int32 BE | ackCP(1) | ackPH int32 BE |
	// sum uint32 BE.
	FrameUp byte = 4
)

// ErrCodec is wrapped by every framing and payload decode error; a codec
// error is permanent for its connection.
var ErrCodec = errors.New("transport: codec error")

// errOversizedPayload rejects an advertised length beyond MaxPayload. It
// is a static error so the rejection allocates nothing: the length field
// is attacker-controlled, and the reject path must not pay for it — not
// with the body allocation (checked before any is made) and not with an
// error allocation either.
var errOversizedPayload = fmt.Errorf("%w: payload length exceeds MaxPayload", ErrCodec)

const (
	helloPayloadLen = 13
	statePayloadLen = 17
	topPayloadLen   = 4
	upPayloadLen    = 30
)

// ConfigDigest hashes an ordered list of configuration strings (topology
// descriptor, peer addresses, group set) into the fingerprint carried by
// the hello frame. FNV-1a 64 with a separator after each part, so the
// digest distinguishes ["ab","c"] from ["a","bc"]. Every member of a
// cluster must derive the digest from identical parts.
func ConfigDigest(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0xff // separator, not a valid string byte boundary marker
		h *= prime64
	}
	return h
}

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. The payload must fit MaxPayload (internal callers only ever
// encode fixed, small payloads).
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	if len(payload) > MaxPayload {
		panic(fmt.Sprintf("transport: payload %d exceeds MaxPayload", len(payload)))
	}
	start := len(dst)
	dst = append(dst, magicByte, typ, byte(len(payload)>>8), byte(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.BigEndian.AppendUint32(dst, crc)
}

// ReadFrame reads one frame from br and returns its type and payload (a
// fresh slice). Any violation — bad magic, oversized length, truncated
// frame, CRC mismatch — is a codec error wrapping ErrCodec; the caller
// must drop the connection, mapping the failure onto message loss.
func ReadFrame(br *bufio.Reader) (typ byte, payload []byte, err error) {
	// Peek instead of reading into a local array: the peeked slice is
	// bufio's own buffer, so the header costs no allocation (a local array
	// would escape through the io.Reader interface call).
	hdr, err := br.Peek(headerLen)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err // connection-level error (EOF, reset, timeout)
	}
	if hdr[0] != magicByte {
		return 0, nil, fmt.Errorf("%w: bad magic 0x%02x", ErrCodec, hdr[0])
	}
	typ = hdr[1]
	n := int(hdr[2])<<8 | int(hdr[3])
	if n > MaxPayload {
		return 0, nil, errOversizedPayload
	}
	crc := crc32.ChecksumIEEE(hdr)
	br.Discard(headerLen)
	body := make([]byte, n+trailerLen)
	if _, err := io.ReadFull(br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("%w: truncated frame: %v", ErrCodec, err)
	}
	crc = crc32.Update(crc, crc32.IEEETable, body[:n])
	if got := binary.BigEndian.Uint32(body[n:]); got != crc {
		return 0, nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrCodec, got, crc)
	}
	return typ, body[:n:n], nil
}

// FrameReader is the hot-path frame reader: it owns its buffered reader
// and a single inline payload buffer that every frame is decoded into, so
// a connection's read loop allocates nothing per frame (ReadFrame's fresh
// payload slice is the convenience path; a per-reader buffer beats a
// sync.Pool here — no contention, no interface boxing, and the payload is
// consumed before the next read anyway).
type FrameReader struct {
	br  *bufio.Reader
	buf [MaxPayload + trailerLen]byte
}

// NewFrameReader returns a FrameReader over r with an internal buffer of
// the given size.
func NewFrameReader(r io.Reader, size int) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, size)}
}

// Read reads one frame. The returned payload aliases the reader's internal
// buffer and is valid only until the next Read; the error contract is
// ReadFrame's.
func (fr *FrameReader) Read() (typ byte, payload []byte, err error) {
	hdr, err := fr.br.Peek(headerLen)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err // connection-level error (EOF, reset, timeout)
	}
	if hdr[0] != magicByte {
		return 0, nil, fmt.Errorf("%w: bad magic 0x%02x", ErrCodec, hdr[0])
	}
	typ = hdr[1]
	n := int(hdr[2])<<8 | int(hdr[3])
	if n > MaxPayload {
		return 0, nil, errOversizedPayload
	}
	crc := crc32.ChecksumIEEE(hdr)
	fr.br.Discard(headerLen)
	body := fr.buf[:n+trailerLen]
	if _, err := io.ReadFull(fr.br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("%w: truncated frame: %v", ErrCodec, err)
	}
	crc = crc32.Update(crc, crc32.IEEETable, body[:n])
	if got := binary.BigEndian.Uint32(body[n:]); got != crc {
		return 0, nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrCodec, got, crc)
	}
	return typ, body[:n:n], nil
}

// FrameBuffered reports whether a complete frame is already buffered, so a
// read loop can drain a burst — keeping only the newest state, which is
// all the protocol wants — without risking a block. A buffered frame whose
// advertised length is invalid also reports true: the next Read will
// surface the violation.
func (fr *FrameReader) FrameBuffered() bool {
	if fr.br.Buffered() < headerLen {
		return false
	}
	hdr, err := fr.br.Peek(headerLen)
	if err != nil {
		return false
	}
	n := int(hdr[2])<<8 | int(hdr[3])
	if n > MaxPayload {
		return true
	}
	return fr.br.Buffered() >= headerLen+n+trailerLen
}

// AppendState appends a FrameState carrying m for the given group.
func AppendState(dst []byte, group uint32, m runtime.Message) []byte {
	var p [statePayloadLen]byte
	binary.BigEndian.PutUint32(p[0:4], group)
	binary.BigEndian.PutUint32(p[4:8], uint32(int32(m.SN)))
	p[8] = byte(m.CP)
	binary.BigEndian.PutUint32(p[9:13], uint32(int32(m.PH)))
	binary.BigEndian.PutUint32(p[13:17], m.Sum)
	return AppendFrame(dst, FrameState, p[:])
}

// DecodeState decodes a FrameState payload. The control position is
// range-checked here (a malformed cp could confuse the protocol engine);
// the end-to-end Message.Sum is verified by the receiver's protocol layer,
// not here, so that injected corruption travels the wire like real damage.
func DecodeState(payload []byte) (group uint32, m runtime.Message, err error) {
	if len(payload) != statePayloadLen {
		return 0, runtime.Message{}, fmt.Errorf("%w: state payload length %d, want %d", ErrCodec, len(payload), statePayloadLen)
	}
	group = binary.BigEndian.Uint32(payload[0:4])
	m = runtime.Message{
		SN:  tokenring.SN(int32(binary.BigEndian.Uint32(payload[4:8]))),
		CP:  core.CP(payload[8]),
		PH:  int(int32(binary.BigEndian.Uint32(payload[9:13]))),
		Sum: binary.BigEndian.Uint32(payload[13:17]),
	}
	if int(m.CP) >= core.NumCP {
		return 0, runtime.Message{}, fmt.Errorf("%w: control position %d out of range", ErrCodec, m.CP)
	}
	return group, m, nil
}

// AppendTop appends a FrameTop (the ⊤ restart marker) for the given group.
func AppendTop(dst []byte, group uint32) []byte {
	var p [topPayloadLen]byte
	binary.BigEndian.PutUint32(p[0:4], group)
	return AppendFrame(dst, FrameTop, p[:])
}

// DecodeTop decodes a FrameTop payload into its group id.
func DecodeTop(payload []byte) (group uint32, err error) {
	if len(payload) != topPayloadLen {
		return 0, fmt.Errorf("%w: top payload length %d, want %d", ErrCodec, len(payload), topPayloadLen)
	}
	return binary.BigEndian.Uint32(payload[0:4]), nil
}

// AppendUp appends a FrameUp carrying m for the given group.
func AppendUp(dst []byte, group uint32, m runtime.UpMessage) []byte {
	var p [upPayloadLen]byte
	binary.BigEndian.PutUint32(p[0:4], group)
	binary.BigEndian.PutUint32(p[4:8], uint32(int32(m.Child)))
	binary.BigEndian.PutUint32(p[8:12], uint32(int32(m.SN)))
	p[12] = byte(m.CP)
	binary.BigEndian.PutUint32(p[13:17], uint32(int32(m.PH)))
	binary.BigEndian.PutUint32(p[17:21], uint32(int32(m.AckSN)))
	p[21] = byte(m.AckCP)
	binary.BigEndian.PutUint32(p[22:26], uint32(int32(m.AckPH)))
	binary.BigEndian.PutUint32(p[26:30], m.Sum)
	return AppendFrame(dst, FrameUp, p[:])
}

// DecodeUp decodes a FrameUp payload. Like DecodeState it range-checks the
// control positions but leaves the end-to-end Sum to the protocol layer.
func DecodeUp(payload []byte) (group uint32, m runtime.UpMessage, err error) {
	if len(payload) != upPayloadLen {
		return 0, runtime.UpMessage{}, fmt.Errorf("%w: up payload length %d, want %d", ErrCodec, len(payload), upPayloadLen)
	}
	group = binary.BigEndian.Uint32(payload[0:4])
	m = runtime.UpMessage{
		Child: int(int32(binary.BigEndian.Uint32(payload[4:8]))),
		SN:    tokenring.SN(int32(binary.BigEndian.Uint32(payload[8:12]))),
		CP:    core.CP(payload[12]),
		PH:    int(int32(binary.BigEndian.Uint32(payload[13:17]))),
		AckSN: tokenring.SN(int32(binary.BigEndian.Uint32(payload[17:21]))),
		AckCP: core.CP(payload[21]),
		AckPH: int(int32(binary.BigEndian.Uint32(payload[22:26]))),
		Sum:   binary.BigEndian.Uint32(payload[26:30]),
	}
	if int(m.CP) >= core.NumCP {
		return 0, runtime.UpMessage{}, fmt.Errorf("%w: control position %d out of range", ErrCodec, m.CP)
	}
	if int(m.AckCP) >= core.NumCP {
		return 0, runtime.UpMessage{}, fmt.Errorf("%w: ack control position %d out of range", ErrCodec, m.AckCP)
	}
	return group, m, nil
}

// AppendHello appends a FrameHello announcing the dialer's member id and
// its configuration digest.
func AppendHello(dst []byte, id int, digest uint64) []byte {
	var p [helloPayloadLen]byte
	p[0] = helloVersion
	binary.BigEndian.PutUint32(p[1:5], uint32(id))
	binary.BigEndian.PutUint64(p[5:13], digest)
	return AppendFrame(dst, FrameHello, p[:])
}

// errHelloVersion rejects a hello from a peer speaking a different wire
// format version. Distinct from errDigestMismatch so operators can tell a
// version skew from a topology/group-set misconfiguration.
var errHelloVersion = fmt.Errorf("%w: hello version mismatch", ErrCodec)

// DecodeHello decodes a FrameHello payload into the dialer's member id and
// config digest.
func DecodeHello(payload []byte) (id int, digest uint64, err error) {
	if len(payload) != helloPayloadLen {
		// A v1 hello was 5 bytes; report length mismatches (the usual
		// symptom of version skew) via the version error for a clear reject
		// reason, keeping genuinely malformed payloads on the generic path.
		if len(payload) == 5 {
			return 0, 0, fmt.Errorf("%w (got v%d frame)", errHelloVersion, payload[0])
		}
		return 0, 0, fmt.Errorf("%w: hello payload length %d, want %d", ErrCodec, len(payload), helloPayloadLen)
	}
	if payload[0] != helloVersion {
		return 0, 0, fmt.Errorf("%w (got %d, want %d)", errHelloVersion, payload[0], helloVersion)
	}
	return int(binary.BigEndian.Uint32(payload[1:5])), binary.BigEndian.Uint64(payload[5:13]), nil
}
