// Wire codec: length-prefixed, CRC-checksummed frames. The framing is
// deliberately rigid — fixed magic, bounded payload, trailing CRC32 — and
// every violation is handled the same way: the frame is rejected and the
// connection dropped, which the protocol layer experiences as message
// loss. Resynchronizing a desynchronized byte stream is never attempted;
// the dialer's reconnect and the barrier's retransmission are the repair.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/tokenring"
)

// Frame layout:
//
//	magic(1) | type(1) | payload len uint16 BE (2) | payload | crc32 IEEE BE (4)
//
// The CRC covers magic through payload.
const (
	magicByte    = 0xB7
	helloVersion = 1

	headerLen  = 4
	trailerLen = 4

	// MaxPayload bounds a frame payload. An advertised length beyond it is
	// a codec error — a reader never allocates attacker-controlled sizes.
	MaxPayload = 64
)

// Frame types.
const (
	// FrameHello opens a connection: payload = version(1) | member id
	// uint32 BE. The acceptor verifies the dialer is its ring predecessor.
	FrameHello byte = 1
	// FrameState carries the MB triple forward (dialer → acceptor):
	// payload = sn int32 BE | cp(1) | ph int32 BE | sum uint32 BE.
	FrameState byte = 2
	// FrameTop carries the ⊤ restart marker backward (acceptor → dialer);
	// empty payload.
	FrameTop byte = 3
	// FrameUp carries a tree convergecast announcement (child → parent):
	// payload = child int32 BE | sn int32 BE | cp(1) | ph int32 BE |
	// ackSN int32 BE | ackCP(1) | ackPH int32 BE | sum uint32 BE.
	FrameUp byte = 4
)

// ErrCodec is wrapped by every framing and payload decode error; a codec
// error is permanent for its connection.
var ErrCodec = errors.New("transport: codec error")

// errOversizedPayload rejects an advertised length beyond MaxPayload. It
// is a static error so the rejection allocates nothing: the length field
// is attacker-controlled, and the reject path must not pay for it — not
// with the body allocation (checked before any is made) and not with an
// error allocation either.
var errOversizedPayload = fmt.Errorf("%w: payload length exceeds MaxPayload", ErrCodec)

const (
	statePayloadLen = 13
	upPayloadLen    = 26
)

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. The payload must fit MaxPayload (internal callers only ever
// encode fixed, small payloads).
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	if len(payload) > MaxPayload {
		panic(fmt.Sprintf("transport: payload %d exceeds MaxPayload", len(payload)))
	}
	start := len(dst)
	dst = append(dst, magicByte, typ, byte(len(payload)>>8), byte(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.BigEndian.AppendUint32(dst, crc)
}

// ReadFrame reads one frame from br and returns its type and payload (a
// fresh slice). Any violation — bad magic, oversized length, truncated
// frame, CRC mismatch — is a codec error wrapping ErrCodec; the caller
// must drop the connection, mapping the failure onto message loss.
func ReadFrame(br *bufio.Reader) (typ byte, payload []byte, err error) {
	// Peek instead of reading into a local array: the peeked slice is
	// bufio's own buffer, so the header costs no allocation (a local array
	// would escape through the io.Reader interface call).
	hdr, err := br.Peek(headerLen)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err // connection-level error (EOF, reset, timeout)
	}
	if hdr[0] != magicByte {
		return 0, nil, fmt.Errorf("%w: bad magic 0x%02x", ErrCodec, hdr[0])
	}
	typ = hdr[1]
	n := int(hdr[2])<<8 | int(hdr[3])
	if n > MaxPayload {
		return 0, nil, errOversizedPayload
	}
	crc := crc32.ChecksumIEEE(hdr)
	br.Discard(headerLen)
	body := make([]byte, n+trailerLen)
	if _, err := io.ReadFull(br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("%w: truncated frame: %v", ErrCodec, err)
	}
	crc = crc32.Update(crc, crc32.IEEETable, body[:n])
	if got := binary.BigEndian.Uint32(body[n:]); got != crc {
		return 0, nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrCodec, got, crc)
	}
	return typ, body[:n:n], nil
}

// FrameReader is the hot-path frame reader: it owns its buffered reader
// and a single inline payload buffer that every frame is decoded into, so
// a connection's read loop allocates nothing per frame (ReadFrame's fresh
// payload slice is the convenience path; a per-reader buffer beats a
// sync.Pool here — no contention, no interface boxing, and the payload is
// consumed before the next read anyway).
type FrameReader struct {
	br  *bufio.Reader
	buf [MaxPayload + trailerLen]byte
}

// NewFrameReader returns a FrameReader over r with an internal buffer of
// the given size.
func NewFrameReader(r io.Reader, size int) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, size)}
}

// Read reads one frame. The returned payload aliases the reader's internal
// buffer and is valid only until the next Read; the error contract is
// ReadFrame's.
func (fr *FrameReader) Read() (typ byte, payload []byte, err error) {
	hdr, err := fr.br.Peek(headerLen)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err // connection-level error (EOF, reset, timeout)
	}
	if hdr[0] != magicByte {
		return 0, nil, fmt.Errorf("%w: bad magic 0x%02x", ErrCodec, hdr[0])
	}
	typ = hdr[1]
	n := int(hdr[2])<<8 | int(hdr[3])
	if n > MaxPayload {
		return 0, nil, errOversizedPayload
	}
	crc := crc32.ChecksumIEEE(hdr)
	fr.br.Discard(headerLen)
	body := fr.buf[:n+trailerLen]
	if _, err := io.ReadFull(fr.br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("%w: truncated frame: %v", ErrCodec, err)
	}
	crc = crc32.Update(crc, crc32.IEEETable, body[:n])
	if got := binary.BigEndian.Uint32(body[n:]); got != crc {
		return 0, nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrCodec, got, crc)
	}
	return typ, body[:n:n], nil
}

// FrameBuffered reports whether a complete frame is already buffered, so a
// read loop can drain a burst — keeping only the newest state, which is
// all the protocol wants — without risking a block. A buffered frame whose
// advertised length is invalid also reports true: the next Read will
// surface the violation.
func (fr *FrameReader) FrameBuffered() bool {
	if fr.br.Buffered() < headerLen {
		return false
	}
	hdr, err := fr.br.Peek(headerLen)
	if err != nil {
		return false
	}
	n := int(hdr[2])<<8 | int(hdr[3])
	if n > MaxPayload {
		return true
	}
	return fr.br.Buffered() >= headerLen+n+trailerLen
}

// AppendState appends a FrameState carrying m.
func AppendState(dst []byte, m runtime.Message) []byte {
	var p [statePayloadLen]byte
	binary.BigEndian.PutUint32(p[0:4], uint32(int32(m.SN)))
	p[4] = byte(m.CP)
	binary.BigEndian.PutUint32(p[5:9], uint32(int32(m.PH)))
	binary.BigEndian.PutUint32(p[9:13], m.Sum)
	return AppendFrame(dst, FrameState, p[:])
}

// DecodeState decodes a FrameState payload. The control position is
// range-checked here (a malformed cp could confuse the protocol engine);
// the end-to-end Message.Sum is verified by the receiver's protocol layer,
// not here, so that injected corruption travels the wire like real damage.
func DecodeState(payload []byte) (runtime.Message, error) {
	if len(payload) != statePayloadLen {
		return runtime.Message{}, fmt.Errorf("%w: state payload length %d, want %d", ErrCodec, len(payload), statePayloadLen)
	}
	m := runtime.Message{
		SN:  tokenring.SN(int32(binary.BigEndian.Uint32(payload[0:4]))),
		CP:  core.CP(payload[4]),
		PH:  int(int32(binary.BigEndian.Uint32(payload[5:9]))),
		Sum: binary.BigEndian.Uint32(payload[9:13]),
	}
	if int(m.CP) >= core.NumCP {
		return runtime.Message{}, fmt.Errorf("%w: control position %d out of range", ErrCodec, m.CP)
	}
	return m, nil
}

// AppendUp appends a FrameUp carrying m.
func AppendUp(dst []byte, m runtime.UpMessage) []byte {
	var p [upPayloadLen]byte
	binary.BigEndian.PutUint32(p[0:4], uint32(int32(m.Child)))
	binary.BigEndian.PutUint32(p[4:8], uint32(int32(m.SN)))
	p[8] = byte(m.CP)
	binary.BigEndian.PutUint32(p[9:13], uint32(int32(m.PH)))
	binary.BigEndian.PutUint32(p[13:17], uint32(int32(m.AckSN)))
	p[17] = byte(m.AckCP)
	binary.BigEndian.PutUint32(p[18:22], uint32(int32(m.AckPH)))
	binary.BigEndian.PutUint32(p[22:26], m.Sum)
	return AppendFrame(dst, FrameUp, p[:])
}

// DecodeUp decodes a FrameUp payload. Like DecodeState it range-checks the
// control positions but leaves the end-to-end Sum to the protocol layer.
func DecodeUp(payload []byte) (runtime.UpMessage, error) {
	if len(payload) != upPayloadLen {
		return runtime.UpMessage{}, fmt.Errorf("%w: up payload length %d, want %d", ErrCodec, len(payload), upPayloadLen)
	}
	m := runtime.UpMessage{
		Child: int(int32(binary.BigEndian.Uint32(payload[0:4]))),
		SN:    tokenring.SN(int32(binary.BigEndian.Uint32(payload[4:8]))),
		CP:    core.CP(payload[8]),
		PH:    int(int32(binary.BigEndian.Uint32(payload[9:13]))),
		AckSN: tokenring.SN(int32(binary.BigEndian.Uint32(payload[13:17]))),
		AckCP: core.CP(payload[17]),
		AckPH: int(int32(binary.BigEndian.Uint32(payload[18:22]))),
		Sum:   binary.BigEndian.Uint32(payload[22:26]),
	}
	if int(m.CP) >= core.NumCP {
		return runtime.UpMessage{}, fmt.Errorf("%w: control position %d out of range", ErrCodec, m.CP)
	}
	if int(m.AckCP) >= core.NumCP {
		return runtime.UpMessage{}, fmt.Errorf("%w: ack control position %d out of range", ErrCodec, m.AckCP)
	}
	return m, nil
}

// AppendHello appends a FrameHello announcing the dialer's member id.
func AppendHello(dst []byte, id int) []byte {
	var p [5]byte
	p[0] = helloVersion
	binary.BigEndian.PutUint32(p[1:5], uint32(id))
	return AppendFrame(dst, FrameHello, p[:])
}

// DecodeHello decodes a FrameHello payload into the dialer's member id.
func DecodeHello(payload []byte) (int, error) {
	if len(payload) != 5 {
		return 0, fmt.Errorf("%w: hello payload length %d, want 5", ErrCodec, len(payload))
	}
	if payload[0] != helloVersion {
		return 0, fmt.Errorf("%w: hello version %d, want %d", ErrCodec, payload[0], helloVersion)
	}
	return int(binary.BigEndian.Uint32(payload[1:5])), nil
}
