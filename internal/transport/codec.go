// Wire codec: length-prefixed, CRC-checksummed frames. The framing is
// deliberately rigid — fixed magic, bounded payload, trailing CRC32 — and
// every violation is handled the same way: the frame is rejected and the
// connection dropped, which the protocol layer experiences as message
// loss. Resynchronizing a desynchronized byte stream is never attempted;
// the dialer's reconnect and the barrier's retransmission are the repair.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/tokenring"
)

// Frame layout:
//
//	magic(1) | type(1) | payload len uint16 BE (2) | payload | crc32 IEEE BE (4)
//
// The CRC covers magic through payload.
const (
	magicByte    = 0xB7
	helloVersion = 1

	headerLen  = 4
	trailerLen = 4

	// MaxPayload bounds a frame payload. An advertised length beyond it is
	// a codec error — a reader never allocates attacker-controlled sizes.
	MaxPayload = 64
)

// Frame types.
const (
	// FrameHello opens a connection: payload = version(1) | member id
	// uint32 BE. The acceptor verifies the dialer is its ring predecessor.
	FrameHello byte = 1
	// FrameState carries the MB triple forward (dialer → acceptor):
	// payload = sn int32 BE | cp(1) | ph int32 BE | sum uint32 BE.
	FrameState byte = 2
	// FrameTop carries the ⊤ restart marker backward (acceptor → dialer);
	// empty payload.
	FrameTop byte = 3
)

// ErrCodec is wrapped by every framing and payload decode error; a codec
// error is permanent for its connection.
var ErrCodec = errors.New("transport: codec error")

const statePayloadLen = 13

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. The payload must fit MaxPayload (internal callers only ever
// encode fixed, small payloads).
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	if len(payload) > MaxPayload {
		panic(fmt.Sprintf("transport: payload %d exceeds MaxPayload", len(payload)))
	}
	start := len(dst)
	dst = append(dst, magicByte, typ, byte(len(payload)>>8), byte(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.BigEndian.AppendUint32(dst, crc)
}

// ReadFrame reads one frame from br and returns its type and payload (a
// fresh slice). Any violation — bad magic, oversized length, truncated
// frame, CRC mismatch — is a codec error wrapping ErrCodec; the caller
// must drop the connection, mapping the failure onto message loss.
func ReadFrame(br *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err // connection-level error (EOF, reset, timeout)
	}
	if hdr[0] != magicByte {
		return 0, nil, fmt.Errorf("%w: bad magic 0x%02x", ErrCodec, hdr[0])
	}
	n := int(hdr[2])<<8 | int(hdr[3])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: oversized payload length %d", ErrCodec, n)
	}
	body := make([]byte, n+trailerLen)
	if _, err := io.ReadFull(br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("%w: truncated frame: %v", ErrCodec, err)
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body[:n])
	if got := binary.BigEndian.Uint32(body[n:]); got != crc {
		return 0, nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrCodec, got, crc)
	}
	return hdr[1], body[:n:n], nil
}

// AppendState appends a FrameState carrying m.
func AppendState(dst []byte, m runtime.Message) []byte {
	var p [statePayloadLen]byte
	binary.BigEndian.PutUint32(p[0:4], uint32(int32(m.SN)))
	p[4] = byte(m.CP)
	binary.BigEndian.PutUint32(p[5:9], uint32(int32(m.PH)))
	binary.BigEndian.PutUint32(p[9:13], m.Sum)
	return AppendFrame(dst, FrameState, p[:])
}

// DecodeState decodes a FrameState payload. The control position is
// range-checked here (a malformed cp could confuse the protocol engine);
// the end-to-end Message.Sum is verified by the receiver's protocol layer,
// not here, so that injected corruption travels the wire like real damage.
func DecodeState(payload []byte) (runtime.Message, error) {
	if len(payload) != statePayloadLen {
		return runtime.Message{}, fmt.Errorf("%w: state payload length %d, want %d", ErrCodec, len(payload), statePayloadLen)
	}
	m := runtime.Message{
		SN:  tokenring.SN(int32(binary.BigEndian.Uint32(payload[0:4]))),
		CP:  core.CP(payload[4]),
		PH:  int(int32(binary.BigEndian.Uint32(payload[5:9]))),
		Sum: binary.BigEndian.Uint32(payload[9:13]),
	}
	if int(m.CP) >= core.NumCP {
		return runtime.Message{}, fmt.Errorf("%w: control position %d out of range", ErrCodec, m.CP)
	}
	return m, nil
}

// AppendHello appends a FrameHello announcing the dialer's member id.
func AppendHello(dst []byte, id int) []byte {
	var p [5]byte
	p[0] = helloVersion
	binary.BigEndian.PutUint32(p[1:5], uint32(id))
	return AppendFrame(dst, FrameHello, p[:])
}

// DecodeHello decodes a FrameHello payload into the dialer's member id.
func DecodeHello(payload []byte) (int, error) {
	if len(payload) != 5 {
		return 0, fmt.Errorf("%w: hello payload length %d, want 5", ErrCodec, len(payload))
	}
	if payload[0] != helloVersion {
		return 0, fmt.Errorf("%w: hello version %d, want %d", ErrCodec, payload[0], helloVersion)
	}
	return int(binary.BigEndian.Uint32(payload[1:5])), nil
}
