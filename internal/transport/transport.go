// Package transport provides network ring links for the runtime barrier:
// an implementation of runtime.Transport over TCP connections, so a
// fault-tolerant barrier can span OS processes and machines.
//
// Topology: ring edge (j, j+1) is one TCP connection, dialed by j to
// j+1's listener and opened with a hello frame naming the dialer. On that
// connection j writes state frames (the MB (sn, cp, ph) wire triple) and
// j+1 writes ⊤ restart markers back, matching the protocol's two message
// flows. Each member therefore maintains one outgoing connection (to its
// successor, re-dialed forever with capped exponential backoff plus
// jitter) and accepts one incoming connection (from its predecessor; a
// newly accepted connection replaces the old one, which is how a
// restarted predecessor reattaches).
//
// Fault mapping: the transport adds no recovery logic of its own. Every
// socket failure is translated into a fault class the barrier protocol
// already masks (see Table 1 of the paper):
//
//   - connection reset, partial write, dial failure → message loss: the
//     damaged connection is dropped and redialed; the barrier's periodic
//     retransmission re-delivers current state;
//   - frame decode error (bad magic, truncated frame, CRC mismatch,
//     oversized length) → detected corruption, which the paper reduces to
//     loss: the frame is discarded and the connection dropped rather than
//     attempting to resynchronize the byte stream;
//   - a slow or dead peer → delay: sends are latest-state-wins mailboxes
//     and never block a protocol goroutine.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
	"repro/internal/prng"
	"repro/internal/runtime"
)

// TCPConfig parameterizes a TCP transport.
type TCPConfig struct {
	// Peers[j] is member j's listen address (host:port); the ring size is
	// len(Peers).
	Peers []string
	// BaseBackoff and MaxBackoff bound the reconnect backoff (defaults
	// 10ms and 1s). Each failed dial doubles the delay up to MaxBackoff,
	// with up to 50% random jitter subtracted so that members restarting
	// together do not reconnect in lockstep.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the wait for a dialer's hello frame
	// (default 5s).
	HandshakeTimeout time.Duration
	// Group tags every frame this transport sends and is verified on every
	// frame it receives. A single-group deployment leaves it 0; the Mux
	// speaks for many groups on one connection and bypasses this field.
	Group uint32
	// MaxPending bounds concurrent un-handshaken incoming connections
	// (default 64). Each pre-handshake connection holds a goroutine and a
	// frame buffer for up to HandshakeTimeout; beyond the bound new
	// connections are closed immediately and counted as accept overflows,
	// so a dial flood or reconnect storm cannot pile up unbounded state.
	MaxPending int
	// Logf, if non-nil, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
	// Registry, if non-nil, receives the transport's metric series
	// (dials, reconnect backoff state, CRC drops, frames). The counters
	// are read at scrape time from the atomics the transport maintains
	// anyway, so exporting costs the data path nothing.
	Registry *obsv.Registry
}

// Option mutates a TCPConfig (used by NewLoopbackRing).
type Option func(*TCPConfig)

// TCPStats is a snapshot of a transport's counters.
type TCPStats struct {
	Dials             int64 // successful outgoing connections
	FailedDials       int64 // dial attempts that ended in backoff
	Accepts           int64 // accepted incoming connections
	HandshakeRejects  int64 // incoming connections rejected at hello
	DigestRejects     int64 // hello rejects caused by a config digest mismatch
	AcceptOverflows   int64 // connections closed at accept: too many un-handshaken
	ConnDrops         int64 // established connections dropped after an error
	DecodeErrors      int64 // frames rejected by the codec
	FramesSent        int64
	FramesRecv        int64
	ConnectedOut      int64 // outgoing connections currently established (gauge)
	BackingOff        int64 // dialers currently sleeping in reconnect backoff (gauge)
	PendingHandshakes int64 // accepted connections awaiting their hello (gauge)
}

// tcpStats holds the counters shared by the ring, tree and mux TCP
// transports.
type tcpStats struct {
	dials, failedDials, accepts, handshakeRejects atomic.Int64
	digestRejects, acceptOverflows                atomic.Int64
	connDrops, decodeErrors                       atomic.Int64
	framesSent, framesRecv                        atomic.Int64
	connectedOut, backingOff, pendingHandshakes   atomic.Int64 // gauges

	// Registry bookkeeping: the series registered on behalf of this
	// transport, so Close can unregister them and a successor transport
	// can register the same names on the same registry. Written at
	// construction and Close only.
	reg      *obsv.Registry
	regNames []string
}

func (s *tcpStats) snapshot() TCPStats {
	return TCPStats{
		Dials:             s.dials.Load(),
		FailedDials:       s.failedDials.Load(),
		Accepts:           s.accepts.Load(),
		HandshakeRejects:  s.handshakeRejects.Load(),
		DigestRejects:     s.digestRejects.Load(),
		AcceptOverflows:   s.acceptOverflows.Load(),
		ConnDrops:         s.connDrops.Load(),
		DecodeErrors:      s.decodeErrors.Load(),
		FramesSent:        s.framesSent.Load(),
		FramesRecv:        s.framesRecv.Load(),
		ConnectedOut:      s.connectedOut.Load(),
		BackingOff:        s.backingOff.Load(),
		PendingHandshakes: s.pendingHandshakes.Load(),
	}
}

// register installs the transport's metric series on r. Every series is a
// scrape-time read of a counter the data path maintains regardless.
func (s *tcpStats) register(r *obsv.Registry) error {
	return s.registerAll(r, s.standardMetrics()...)
}

// registerAll registers ms on r, recording every accepted name so
// unregister can remove them at Close. On a name collision it rolls back
// everything this transport has registered so far (this call and earlier
// ones), leaving the registry as if the transport never existed.
func (s *tcpStats) registerAll(r *obsv.Registry, ms ...obsv.Metric) error {
	for _, m := range ms {
		if err := r.Register(m); err != nil {
			s.unregister()
			return err
		}
		s.reg = r
		s.regNames = append(s.regNames, m.Name())
	}
	return nil
}

// unregister removes every series this transport registered. Idempotent;
// called from the transport's Close so a bounded-lifetime transport (one
// tenant deployment among many sharing a registry) leaves no series
// behind — the leak class the barriervet metricpair analyzer rejects.
func (s *tcpStats) unregister() {
	if s.reg == nil {
		return
	}
	for _, n := range s.regNames {
		s.reg.Unregister(n)
	}
	s.reg = nil
	s.regNames = nil
}

func (s *tcpStats) standardMetrics() []obsv.Metric {
	return []obsv.Metric{
		obsv.NewCounterFunc("transport_dials_total",
			"Successful outgoing connections (reconnects included).", s.dials.Load),
		obsv.NewCounterFunc("transport_failed_dials_total",
			"Dial attempts that ended in reconnect backoff.", s.failedDials.Load),
		obsv.NewCounterFunc("transport_accepts_total",
			"Accepted incoming connections.", s.accepts.Load),
		obsv.NewCounterFunc("transport_handshake_rejects_total",
			"Incoming connections rejected at the hello handshake.", s.handshakeRejects.Load),
		obsv.NewCounterFunc("transport_digest_rejects_total",
			"Hello rejects caused by a config digest mismatch (cluster cross-connect).", s.digestRejects.Load),
		obsv.NewCounterFunc("transport_accept_overflows_total",
			"Connections closed at accept because too many were awaiting their hello.", s.acceptOverflows.Load),
		obsv.NewCounterFunc("transport_conn_drops_total",
			"Established connections dropped after an error.", s.connDrops.Load),
		obsv.NewCounterFunc("transport_decode_errors_total",
			"Frames rejected by the codec (CRC mismatch, truncation, oversize).", s.decodeErrors.Load),
		obsv.NewCounterFunc(`transport_frames_total{dir="sent"}`,
			"Frames by direction.", s.framesSent.Load),
		obsv.NewCounterFunc(`transport_frames_total{dir="recv"}`,
			"Frames by direction.", s.framesRecv.Load),
		obsv.NewGaugeFunc("transport_connected_links",
			"Outgoing connections currently established.", s.connectedOut.Load),
		obsv.NewGaugeFunc("transport_backing_off_links",
			"Dialers currently sleeping in reconnect backoff.", s.backingOff.Load),
		obsv.NewGaugeFunc("transport_pending_handshakes",
			"Accepted connections currently awaiting their hello frame.", s.pendingHandshakes.Load),
	}
}

// TCP implements runtime.Transport over TCP ring links.
type TCP struct {
	cfg    TCPConfig
	digest uint64

	mu        sync.Mutex
	links     []*tcpLink
	listeners []net.Listener // pre-bound by NewLoopbackRing, else nil
	closed    bool

	stats tcpStats
}

// ringDigest fingerprints a ring configuration: topology kind, ring size,
// peer addresses and the group id. Members with any difference — a missing
// peer, a reordered list, a different group — reject each other at hello.
func ringDigest(cfg TCPConfig) uint64 {
	parts := make([]string, 0, len(cfg.Peers)+3)
	parts = append(parts, "ring", strconv.Itoa(len(cfg.Peers)))
	parts = append(parts, cfg.Peers...)
	parts = append(parts, strconv.FormatUint(uint64(cfg.Group), 10))
	return ConfigDigest(parts...)
}

// NewTCP creates a TCP transport for the given ring. Nothing is bound or
// dialed until Open.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	if len(cfg.Peers) < 2 {
		return nil, errors.New("transport: need at least 2 peers")
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 64
	}
	t := &TCP{
		cfg:       cfg,
		digest:    ringDigest(cfg),
		links:     make([]*tcpLink, len(cfg.Peers)),
		listeners: make([]net.Listener, len(cfg.Peers)),
	}
	if cfg.Registry != nil {
		if err := t.stats.register(cfg.Registry); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// NewLoopbackRing binds n ephemeral loopback listeners and returns a TCP
// transport for an all-local ring — the test, benchmark and conformance
// configuration. The backoff defaults are lowered (2ms base, 100ms cap) so
// in-process reconnect tests converge quickly; opts may override any
// field.
func NewLoopbackRing(n int, opts ...Option) (*TCP, error) {
	if n < 2 {
		return nil, errors.New("transport: need at least 2 members")
	}
	listeners, peers, err := bindLoopback(n)
	if err != nil {
		return nil, err
	}
	cfg := TCPConfig{Peers: peers, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	for _, opt := range opts {
		opt(&cfg)
	}
	t, err := NewTCP(cfg)
	if err != nil {
		for _, l := range listeners {
			l.Close()
		}
		return nil, err
	}
	t.listeners = listeners
	return t, nil
}

// bindLoopback binds n ephemeral loopback listeners and returns them with
// their addresses (shared by NewLoopbackRing and NewLoopbackTree).
func bindLoopback(n int) ([]net.Listener, []string, error) {
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for j := 0; j < n; j++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:j] {
				l.Close()
			}
			return nil, nil, fmt.Errorf("transport: bind loopback member %d: %w", j, err)
		}
		listeners[j] = ln
		peers[j] = ln.Addr().String()
	}
	return listeners, peers, nil
}

// Open binds member id's listener (unless pre-bound), starts its accept
// loop and its dialer to the ring successor, and returns the link.
func (t *TCP) Open(id int) (runtime.Link, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errors.New("transport: closed")
	}
	if id < 0 || id >= len(t.cfg.Peers) {
		return nil, fmt.Errorf("transport: member %d out of range [0,%d)", id, len(t.cfg.Peers))
	}
	if t.links[id] != nil {
		return nil, fmt.Errorf("transport: member %d already open", id)
	}
	ln := t.listeners[id]
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", t.cfg.Peers[id])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", t.cfg.Peers[id], err)
		}
		t.listeners[id] = ln
	}
	dialCtx, dialCancel := context.WithCancel(context.Background())
	l := &tcpLink{
		t:          t,
		id:         id,
		ln:         ln,
		state:      make(chan runtime.Message, 1),
		top:        make(chan struct{}, 1),
		outState:   make(chan runtime.Message, 1),
		outTop:     make(chan struct{}, 1),
		done:       make(chan struct{}),
		dialCtx:    dialCtx,
		dialCancel: dialCancel,
	}
	t.links[id] = l
	l.wg.Add(2)
	go l.acceptLoop()
	go l.dialLoop()
	return l, nil
}

// Close tears down every link, listener and connection.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	links := append([]*tcpLink(nil), t.links...)
	listeners := append([]net.Listener(nil), t.listeners...)
	t.mu.Unlock()
	for _, l := range links {
		if l != nil {
			l.Close()
		}
	}
	for _, ln := range listeners {
		if ln != nil {
			ln.Close() // pre-bound listeners of never-opened members
		}
	}
	t.stats.unregister()
	return nil
}

// Stats returns a snapshot of the transport's counters.
func (t *TCP) Stats() TCPStats { return t.stats.snapshot() }

// Digest returns the configuration digest this transport sends (and
// expects) in hello frames.
func (t *TCP) Digest() uint64 { return t.digest }

// BreakLinks force-closes member id's current connections (incoming and
// outgoing), simulating a network blip. The dialer redials with backoff;
// in-flight frames are lost and masked by retransmission. Test hook.
func (t *TCP) BreakLinks(id int) {
	t.mu.Lock()
	var l *tcpLink
	if id >= 0 && id < len(t.links) {
		l = t.links[id]
	}
	t.mu.Unlock()
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.inConn != nil {
		l.inConn.Close()
	}
	if l.outConn != nil {
		l.outConn.Close()
	}
	l.mu.Unlock()
}

// tcpLink is one member's attachment to the ring over sockets.
type tcpLink struct {
	t  *TCP
	id int
	ln net.Listener

	state    chan runtime.Message // from predecessor, latest wins
	top      chan struct{}        // from successor
	outState chan runtime.Message // to successor, latest wins
	outTop   chan struct{}        // to predecessor, pending-⊤ flag

	mu      sync.Mutex
	inConn  net.Conn // accepted, from predecessor
	outConn net.Conn // dialed, to successor

	done       chan struct{}
	dialCtx    context.Context
	dialCancel context.CancelFunc
	closeOnce  sync.Once
	wg         sync.WaitGroup
}

func (l *tcpLink) SendState(m runtime.Message) {
	// Latest-state-wins mailbox: the writer goroutine picks up whatever is
	// newest once the connection is up; anything superseded in between is
	// indistinguishable from loss.
	select {
	case <-l.outState:
	default:
	}
	select {
	case l.outState <- m:
	default:
	}
}

func (l *tcpLink) SendTop() {
	select {
	case l.outTop <- struct{}{}:
	default: // a ⊤ is already pending; it is idempotent
	}
}

func (l *tcpLink) State() <-chan runtime.Message { return l.state }
func (l *tcpLink) Top() <-chan struct{}          { return l.top }

func (l *tcpLink) InjectState(m runtime.Message) bool {
	select {
	case l.state <- m:
		return true
	default:
		return false
	}
}

func (l *tcpLink) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.dialCancel()
		l.ln.Close()
		l.mu.Lock()
		if l.inConn != nil {
			l.inConn.Close()
		}
		if l.outConn != nil {
			l.outConn.Close()
		}
		l.mu.Unlock()
	})
	l.wg.Wait()
	return nil
}

func (l *tcpLink) closedNow() bool {
	select {
	case <-l.done:
		return true
	default:
		return false
	}
}

func (l *tcpLink) ringSize() int { return len(l.t.cfg.Peers) }

// --- shared handshake machinery (ring, tree and mux accept sides) ---

// admitPending reserves a pre-handshake slot; it reports false (counting
// an accept overflow) when max un-handshaken connections already exist, in
// which case the caller must close the connection without spawning
// anything — the bound is what keeps a dial flood or a reconnect storm
// from piling up goroutines and frame buffers.
func (s *tcpStats) admitPending(max int) bool {
	if s.pendingHandshakes.Add(1) > int64(max) {
		s.pendingHandshakes.Add(-1)
		s.acceptOverflows.Add(1)
		return false
	}
	return true
}

func (s *tcpStats) releasePending() { s.pendingHandshakes.Add(-1) }

// readHello reads and verifies the hello frame on an accepted connection:
// frame type, wire version, and the config digest (a mismatch means
// another cluster — different peers, topology or group set — dialed us,
// and is counted separately from plain identity rejects). The returned id
// is the dialer's claim; whether that id belongs on this edge is the
// caller's check. The read deadline is cleared only on success.
func readHello(fr *FrameReader, c net.Conn, timeout time.Duration, digest uint64, s *tcpStats) (from int, err error) {
	c.SetReadDeadline(time.Now().Add(timeout))
	typ, payload, err := fr.Read()
	if err != nil {
		return 0, err
	}
	if typ != FrameHello {
		return 0, fmt.Errorf("%w: first frame type %d, want hello", ErrCodec, typ)
	}
	from, peerDigest, err := DecodeHello(payload)
	if err != nil {
		return 0, err
	}
	if peerDigest != digest {
		s.digestRejects.Add(1)
		return from, fmt.Errorf("%w: config digest mismatch (peer %016x, ours %016x)", ErrCodec, peerDigest, digest)
	}
	c.SetReadDeadline(time.Time{})
	return from, nil
}

// keepAlive enables TCP keep-alive on verified connections.
func keepAlive(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(15 * time.Second)
	}
}

// --- incoming side: the predecessor's connection ---

// acceptLoop owns the listener: every accepted connection is handled in
// its own goroutine so the hello handshake can reject strangers (and admit
// a restarted predecessor's replacement connection) even while an older
// connection still looks alive. Un-handshaken connections are bounded by
// MaxPending.
func (l *tcpLink) acceptLoop() {
	defer l.wg.Done()
	for {
		c, err := l.ln.Accept()
		if err != nil {
			if l.closedNow() {
				return
			}
			// Transient accept failure (e.g. EMFILE): brief pause, retry.
			select {
			case <-l.done:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		if !l.t.stats.admitPending(l.t.cfg.MaxPending) {
			c.Close()
			continue
		}
		l.wg.Add(1)
		go l.handleIn(c)
	}
}

// handleIn verifies the hello handshake, then serves state frames from the
// predecessor until the connection dies. A successfully verified connection
// replaces (closes) the previous one, which is how a restarted predecessor
// reattaches without waiting for the stale connection to time out.
func (l *tcpLink) handleIn(c net.Conn) {
	defer l.wg.Done()
	expectPred := (l.id - 1 + l.ringSize()) % l.ringSize()
	fr := NewFrameReader(c, 256)
	from, err := readHello(fr, c, l.t.cfg.HandshakeTimeout, l.t.digest, &l.t.stats)
	l.t.stats.releasePending()
	if err != nil || from != expectPred {
		l.t.stats.handshakeRejects.Add(1)
		l.t.cfg.Logf("transport: member %d rejected connection from %v: from=%d err=%v", l.id, c.RemoteAddr(), from, err)
		c.Close()
		return
	}
	keepAlive(c)
	l.t.stats.accepts.Add(1)
	l.setInConn(c)
	dead := make(chan struct{})
	l.wg.Add(1)
	go l.inWriter(c, dead)
	l.serveIn(c, fr, dead) // returns when the connection dies
}

func (l *tcpLink) setInConn(c net.Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closedNow() {
		// Close already swept the registered connections; registering now
		// would leave this connection open and serveIn blocked forever
		// (Close's sweep runs under this mutex after done is closed, so
		// the check cannot be stale).
		c.Close()
		return
	}
	if l.inConn != nil {
		l.inConn.Close() // replaced by the newer connection
	}
	l.inConn = c
}

// serveIn reads state frames from the predecessor until the connection
// errors, then closes it (dead tells the ⊤ writer to stop). Frames that
// arrived back-to-back (a retransmission burst, or the peer outpacing us)
// are decoded in one pass and only the newest state is delivered — the
// protocol mailbox is latest-state-wins anyway, so the superseded frames
// would be discarded there at the cost of extra channel operations.
func (l *tcpLink) serveIn(c net.Conn, fr *FrameReader, dead chan struct{}) {
	defer close(dead)
	defer c.Close()
	for {
		typ, payload, err := fr.Read()
		if err != nil {
			l.connFailed("read from predecessor", err)
			return
		}
		var m runtime.Message
		have := false
		for {
			switch typ {
			case FrameState:
				g, mm, err := DecodeState(payload)
				if err == nil && g != l.t.cfg.Group {
					err = fmt.Errorf("%w: state frame for group %d on a group-%d link", ErrCodec, g, l.t.cfg.Group)
				}
				if err != nil {
					l.connFailed("decode state", err)
					return
				}
				l.t.stats.framesRecv.Add(1)
				m, have = mm, true
			case FrameHello:
				// Redundant hello: harmless, ignore.
			default:
				l.connFailed("unexpected frame", fmt.Errorf("%w: type %d from predecessor", ErrCodec, typ))
				return
			}
			if !fr.FrameBuffered() {
				break
			}
			if typ, payload, err = fr.Read(); err != nil {
				l.connFailed("read from predecessor", err)
				return
			}
		}
		if !have {
			continue
		}
		// Latest-state-wins delivery into the protocol mailbox.
		select {
		case <-l.state:
		default:
		}
		select {
		case l.state <- m:
		default:
		}
	}
}

// inWriter writes pending ⊤ markers back to the predecessor.
func (l *tcpLink) inWriter(c net.Conn, dead chan struct{}) {
	defer l.wg.Done()
	var buf []byte
	for {
		select {
		case <-l.done:
			return
		case <-dead:
			return
		case <-l.outTop:
			buf = AppendTop(buf[:0], l.t.cfg.Group)
			if _, err := c.Write(buf); err != nil {
				l.connFailed("write ⊤ to predecessor", err)
				c.Close()
				return
			}
			l.t.stats.framesSent.Add(1)
		}
	}
}

// --- outgoing side: the connection to the successor ---

// dialLoop maintains the connection to the ring successor: dial, hello,
// serve until it dies, then redial with capped exponential backoff plus
// jitter. The backoff resets after every successful dial.
//
// The jitter source is a goroutine-owned splitmix64 PRNG (internal/prng):
// single ownership is structural, not a comment — there is no shared
// generator to race on — and the per-link seed keeps restarting members
// from reconnecting in lockstep.
func (l *tcpLink) dialLoop() {
	defer l.wg.Done()
	succ := l.t.cfg.Peers[(l.id+1)%l.ringSize()]
	rng := prng.New(int64(l.id)*1315423911 + 17)
	backoff := l.t.cfg.BaseBackoff
	for {
		if l.closedNow() {
			return
		}
		d := net.Dialer{Timeout: l.t.cfg.DialTimeout}
		c, err := d.DialContext(l.dialCtx, "tcp", succ)
		if err != nil {
			if l.closedNow() {
				return
			}
			l.t.stats.failedDials.Add(1)
			// Full jitter on the upper half of the window: sleep in
			// [backoff/2, backoff), then double up to the cap.
			sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
			l.t.stats.backingOff.Add(1)
			select {
			case <-l.done:
				l.t.stats.backingOff.Add(-1)
				return
			case <-time.After(sleep):
			}
			l.t.stats.backingOff.Add(-1)
			if backoff *= 2; backoff > l.t.cfg.MaxBackoff {
				backoff = l.t.cfg.MaxBackoff
			}
			continue
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(15 * time.Second)
		}
		if _, err := c.Write(AppendHello(nil, l.id, l.t.digest)); err != nil {
			l.connFailed("write hello", err)
			c.Close()
			continue
		}
		l.t.stats.dials.Add(1)
		l.t.stats.connectedOut.Add(1)
		backoff = l.t.cfg.BaseBackoff
		l.mu.Lock()
		l.outConn = c
		l.mu.Unlock()
		dead := make(chan struct{})
		l.wg.Add(1)
		go l.outReader(c, dead)
		l.outWriter(c, dead) // returns when the connection dies or the link closes
		c.Close()
		l.t.stats.connectedOut.Add(-1)
	}
}

// outWriter streams the latest pending state to the successor, encoding
// into one reused buffer. If a newer state was mailed while this goroutine
// was between receives, it supersedes the one just taken — coalescing the
// pair into a single encode and a single Write.
func (l *tcpLink) outWriter(c net.Conn, dead chan struct{}) {
	var buf []byte
	for {
		select {
		case <-l.done:
			return
		case <-dead:
			return
		case m := <-l.outState:
			select {
			case m = <-l.outState:
			default:
			}
			buf = AppendState(buf[:0], l.t.cfg.Group, m)
			if _, err := c.Write(buf); err != nil {
				l.connFailed("write state to successor", err)
				return
			}
			l.t.stats.framesSent.Add(1)
		}
	}
}

// outReader receives ⊤ markers from the successor; its exit (on any read
// error) marks the connection dead.
func (l *tcpLink) outReader(c net.Conn, dead chan struct{}) {
	defer l.wg.Done()
	defer close(dead)
	fr := NewFrameReader(c, 64)
	for {
		typ, payload, err := fr.Read()
		if err != nil {
			l.connFailed("read from successor", err)
			return
		}
		switch typ {
		case FrameTop:
			g, err := DecodeTop(payload)
			if err == nil && g != l.t.cfg.Group {
				err = fmt.Errorf("%w: ⊤ frame for group %d on a group-%d link", ErrCodec, g, l.t.cfg.Group)
			}
			if err != nil {
				l.connFailed("decode ⊤", err)
				return
			}
			l.t.stats.framesRecv.Add(1)
			select {
			case l.top <- struct{}{}:
			default:
			}
		case FrameHello:
			// Harmless, ignore.
		default:
			l.connFailed("unexpected frame", fmt.Errorf("%w: type %d from successor", ErrCodec, typ))
			return
		}
	}
}

// connFailed accounts one connection failure. Decode errors are counted
// separately from plain connection drops, but both end the connection:
// the reconnect plus the barrier's retransmission are the only recovery.
func (l *tcpLink) connFailed(what string, err error) {
	if l.closedNow() {
		return
	}
	if errors.Is(err, ErrCodec) {
		l.t.stats.decodeErrors.Add(1)
	}
	l.t.stats.connDrops.Add(1)
	l.t.cfg.Logf("transport: member %d: %s: %v", l.id, what, err)
}
