package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/tokenring"
)

// openRing opens every member of a loopback ring and returns the links.
func openRing(t *testing.T, n int, opts ...Option) (*TCP, []runtime.Link) {
	t.Helper()
	tr, err := NewLoopbackRing(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	links := make([]runtime.Link, n)
	for j := 0; j < n; j++ {
		links[j], err = tr.Open(j)
		if err != nil {
			t.Fatalf("Open(%d): %v", j, err)
		}
	}
	return tr, links
}

func waitState(t *testing.T, l runtime.Link, timeout time.Duration) runtime.Message {
	t.Helper()
	select {
	case m := <-l.State():
		return m
	case <-time.After(timeout):
		t.Fatal("no state frame arrived")
		return runtime.Message{}
	}
}

// State frames flow dialer→acceptor around the ring; ⊤ markers flow back.
func TestRingDelivery(t *testing.T) {
	const n = 3
	_, links := openRing(t, n)

	for j := 0; j < n; j++ {
		m := runtime.Message{SN: tokenring.SN(j), CP: core.Execute, PH: j}
		m.Sum = m.Checksum()
		// Resend until the connection is up, like the barrier's ticker does.
		succ := links[(j+1)%n]
		deadline := time.Now().Add(5 * time.Second)
		var got runtime.Message
		for {
			links[j].SendState(m)
			select {
			case got = <-succ.State():
			case <-time.After(2 * time.Millisecond):
				if time.Now().Before(deadline) {
					continue
				}
				t.Fatalf("member %d: state never reached successor", j)
			}
			break
		}
		if got != m {
			t.Errorf("member %d: successor received %+v, want %+v", (j+1)%n, got, m)
		}
	}

	// ⊤ flows backward on the same edge: member 1's SendTop reaches member 0.
	deadline := time.Now().Add(5 * time.Second)
	for {
		links[1].SendTop()
		select {
		case <-links[0].Top():
		case <-time.After(2 * time.Millisecond):
			if time.Now().Before(deadline) {
				continue
			}
			t.Fatal("⊤ marker never reached predecessor")
		}
		break
	}
}

// Latest-state-wins: when sends outpace the connection, the successor sees
// the newest state, not a backlog.
func TestLatestStateWins(t *testing.T) {
	_, links := openRing(t, 2)

	final := runtime.Message{SN: 99, CP: core.Execute, PH: 1}
	final.Sum = final.Checksum()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for sn := tokenring.SN(0); sn < 99; sn++ {
			m := runtime.Message{SN: sn, CP: core.Execute, PH: 0}
			m.Sum = m.Checksum()
			links[0].SendState(m)
		}
		links[0].SendState(final)
		// Drain until the final state shows up; anything else must be a
		// valid earlier message, never a torn or reordered-past-final one.
		got := waitState(t, links[1], 5*time.Second)
		if got == final {
			return
		}
		if got.Sum != got.Checksum() {
			t.Fatalf("received damaged message %+v", got)
		}
		if time.Now().After(deadline) {
			t.Fatal("final state never arrived")
		}
	}
}

// A forcibly broken connection redials and delivery resumes — the blip is
// pure message loss, masked by resending.
func TestReconnectAfterBreak(t *testing.T) {
	tr, links := openRing(t, 2)

	m := runtime.Message{SN: 1, CP: core.Execute, PH: 0}
	m.Sum = m.Checksum()
	send := func(sn tokenring.SN) runtime.Message {
		mm := runtime.Message{SN: sn, CP: core.Execute, PH: 0}
		mm.Sum = mm.Checksum()
		links[0].SendState(mm)
		return mm
	}
	// Establish the connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		send(1)
		select {
		case <-links[1].State():
		case <-time.After(2 * time.Millisecond):
			if time.Now().Before(deadline) {
				continue
			}
			t.Fatal("initial connection never delivered")
		}
		break
	}
	dialsBefore := tr.Stats().Dials

	tr.BreakLinks(0)

	// Delivery must resume on a fresh connection.
	deadline = time.Now().Add(10 * time.Second)
	for {
		want := send(7)
		select {
		case got := <-links[1].State():
			if got == want {
				if redials := tr.Stats().Dials - dialsBefore; redials == 0 {
					t.Error("delivery resumed without a redial being counted")
				}
				return
			}
		case <-time.After(2 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("delivery did not resume after the link was broken")
		}
	}
}

// A stranger that connects without a valid hello (or with the wrong id) is
// rejected and does not disturb the ring.
func TestHandshakeRejectsStrangers(t *testing.T) {
	tr, links := openRing(t, 3)

	addr1 := tr.cfg.Peers[1] // member 1 expects its predecessor, member 0
	intruders := [][]byte{
		AppendHello(nil, 2, tr.Digest()),                    // right digest, wrong ring position
		AppendHello(nil, 0, tr.Digest()^0xbad),              // right position, wrong config digest
		AppendFrame(nil, FrameHello, []byte{1, 0, 0, 0, 0}), // v1 hello: wire version mismatch
		AppendTop(nil, 0),                                   // not a hello at all
		{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02},                // garbage bytes
	}
	for _, intruder := range intruders {
		c, err := net.Dial("tcp", addr1)
		if err != nil {
			t.Fatal(err)
		}
		c.Write(intruder)
		// The acceptor must close on us.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			t.Error("acceptor kept an unauthenticated connection open")
		}
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	want := int64(len(intruders))
	for tr.Stats().HandshakeRejects < want {
		if time.Now().After(deadline) {
			t.Fatalf("handshake rejects = %d, want %d", tr.Stats().HandshakeRejects, want)
		}
		time.Sleep(time.Millisecond)
	}
	// The digest mismatch must be distinguishable from identity rejects.
	if got := tr.Stats().DigestRejects; got != 1 {
		t.Errorf("digest rejects = %d, want 1", got)
	}

	// The legitimate edge still works.
	m := runtime.Message{SN: 5, CP: core.Execute, PH: 2}
	m.Sum = m.Checksum()
	deadline = time.Now().Add(5 * time.Second)
	for {
		links[0].SendState(m)
		select {
		case got := <-links[1].State():
			if got != m {
				t.Fatalf("got %+v, want %+v", got, m)
			}
			return
		case <-time.After(2 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("legitimate traffic blocked after intruders")
			}
		}
	}
}

// A connection carrying garbage after a valid hello is dropped (decode
// error ≡ loss) and replaced by a clean reconnect.
func TestDecodeErrorDropsConnection(t *testing.T) {
	tr, _ := openRing(t, 2)

	// Pose as member 0 dialing member 1, then send garbage.
	c, err := net.Dial("tcp", tr.cfg.Peers[1])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write(AppendHello(nil, 0, tr.Digest()))
	c.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Error("acceptor survived a garbage frame")
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Stats().DecodeErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("decode error not accounted")
		}
		time.Sleep(time.Millisecond)
	}
}

// Sends before any connection exists must not block: the mailbox absorbs
// and supersedes them.
func TestSendNeverBlocks(t *testing.T) {
	// Reserve a port for member 0, then pick a dead successor address by
	// binding and immediately closing a second listener.
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln0.Close()
	lnDead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := lnDead.Addr().String()
	lnDead.Close()
	ln0.Close()

	tr, err := NewTCP(TCPConfig{
		Peers:       []string{ln0.Addr().String(), deadAddr}, // successor never listens
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only open member 0; its dialer can never succeed.
	l, err := tr.Open(0)
	if err != nil {
		t.Fatalf("Open(0): %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			m := runtime.Message{SN: tokenring.SN(i % 50), CP: core.Execute, PH: 0}
			m.Sum = m.Checksum()
			l.SendState(m)
			l.SendTop()
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SendState/SendTop blocked with no connection up")
	}
	tr.Close()
}

// Close is prompt and idempotent even while dialers are in backoff against
// an unreachable peer, and Open after Close fails.
func TestClosePromptAndIdempotent(t *testing.T) {
	tr, err := NewLoopbackRing(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Open(0); err != nil {
		t.Fatal(err)
	}
	// Member 1 is never opened, so member 0's dialer can connect to the
	// pre-bound listener but nothing accepts its frames beyond the backlog;
	// more importantly Close must cancel an in-flight dial/backoff.
	done := make(chan struct{})
	go func() {
		tr.Close()
		tr.Close() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return promptly")
	}
	if _, err := tr.Open(1); err == nil {
		t.Error("Open succeeded on a closed transport")
	}
}

// Double Open of the same member is rejected; out-of-range ids are rejected.
func TestOpenValidation(t *testing.T) {
	tr, _ := openRing(t, 2)
	if _, err := tr.Open(0); err == nil {
		t.Error("double Open(0) succeeded")
	}
	if _, err := tr.Open(-1); err == nil {
		t.Error("Open(-1) succeeded")
	}
	if _, err := tr.Open(2); err == nil {
		t.Error("Open(2) succeeded")
	}
	if _, err := NewTCP(TCPConfig{Peers: []string{"x"}}); err == nil {
		t.Error("NewTCP with 1 peer succeeded")
	}
	if _, err := NewLoopbackRing(1); err == nil {
		t.Error("NewLoopbackRing(1) succeeded")
	}
}

// An end-to-end barrier over the TCP transport: the real protocol engine
// drives loopback sockets and completes barriers, including under injected
// corruption and a mid-run connection break.
func TestBarrierOverTCP(t *testing.T) {
	const (
		n       = 3
		nPhases = 2
		passes  = 30
	)
	tr, err := NewLoopbackRing(n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runtime.New(runtime.Config{
		Participants: n,
		NPhases:      nPhases,
		Transport:    tr,
		Resend:       200 * time.Microsecond,
		CorruptRate:  0.01,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		b.Stop()
		tr.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < passes; k++ {
				if k == passes/2 && id == 0 {
					tr.BreakLinks(1) // mid-run network blip
				}
				ph, err := b.Await(ctx, id)
				if errors.Is(err, runtime.ErrReset) {
					k--
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("member %d pass %d: %w", id, k, err)
					return
				}
				if want := (k + 1) % nPhases; ph != want {
					errs <- fmt.Errorf("member %d pass %d: phase %d, want %d", id, k, ph, want)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.FramesRecv == 0 {
		t.Error("barrier completed without any TCP frames — transport not exercised")
	}
	t.Logf("transport stats: %+v", st)
}

// The acceptor bounds how many connections may sit in the handshake at
// once: overflow connections are closed on arrival and counted, and the
// legitimate edge still comes up once the flood drains.
func TestAcceptCapBoundsPendingHandshakes(t *testing.T) {
	tr, links := openRing(t, 2, func(c *TCPConfig) {
		c.MaxPending = 2
		c.HandshakeTimeout = 250 * time.Millisecond
	})

	// Flood member 1's listener with connections that never send a hello.
	addr1 := tr.cfg.Peers[1]
	var conns []net.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < 10; i++ {
		c, err := net.Dial("tcp", addr1)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}

	deadline := time.Now().Add(10 * time.Second)
	for tr.Stats().AcceptOverflows == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no accept overflows counted; stats %+v", tr.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if p := tr.Stats().PendingHandshakes; p > 2 {
		t.Errorf("pending handshakes = %d, exceeds cap 2", p)
	}

	// The ring edge 0→1 must still deliver after the silent connections
	// time out and free their slots.
	m := runtime.Message{SN: 9, CP: core.Execute, PH: 1}
	m.Sum = m.Checksum()
	recvDeadline := time.Now().Add(10 * time.Second)
	for {
		links[0].SendState(m)
		select {
		case got := <-links[1].State():
			if got != m {
				t.Fatalf("received %+v, want %+v", got, m)
			}
			return
		case <-time.After(2 * time.Millisecond):
			if time.Now().After(recvDeadline) {
				t.Fatal("legitimate edge never recovered from the flood")
			}
		}
	}
}
