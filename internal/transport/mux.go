// Multi-group connection multiplexer: one TCP connection per peer-process
// pair carries every barrier group crossing that edge. The single-group
// transports (TCP, TCPTree) open one connection per protocol edge, which
// is the right shape for one group — and the wrong one for a daemon
// hosting thousands: the connection count would scale with groups, and a
// reconnect storm would multiply by the group count. The Mux collapses
// that to O(peers) connections, with wire-format v2's per-frame group id
// providing the demultiplexing key.
//
// Model: len(Peers) OS processes, each hosting member j of every group
// (a group's member ids are process indices). Each group is a ring over
// all processes or a k-ary heap tree over all processes; the set of
// groups is declared up front and fingerprinted into the hello digest, so
// both ends of every connection provably agree on the multiplexing map.
//
// Connections are symmetric (both ends read and write protocol frames),
// so one connection per unordered pair suffices; the lower process index
// dials, the higher accepts. Outgoing frames go through per-(group, kind,
// edge) latest-state-wins slots — exactly the mailbox discipline of the
// single-group transports, so a slow connection never blocks a protocol
// goroutine and superseded states coalesce. One writer per connection
// drains every dirty slot bound for that peer into a single Write,
// batching frames of many groups into one syscall.
//
// Lifecycle isolation: a group's link can be closed (its barrier halted,
// stopped, or restarted for rejoin) without touching the shared
// connections; its slots just stop being marked and its incoming frames
// are dropped as loss. No group can stall another: every delivery is
// non-blocking, every send is a slot overwrite.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	goruntime "runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
	"repro/internal/prng"
	"repro/internal/runtime"
	"repro/internal/topo"
)

// Group topologies understood by the Mux (and the groups registry).
const (
	GroupRing   = "ring"
	GroupTree   = "tree"
	GroupHybrid = "hybrid"
)

// GroupSpec declares one barrier group hosted over the mux. For ring and
// tree groups the group spans all processes and member ids are process
// indices. For hybrid groups each process fuses a whole host's members
// locally and the mux carries only the cross-HOST tree: node ids on the
// wire are process (= host) indices.
type GroupSpec struct {
	// ID tags the group's frames on the wire. Unique per mux.
	ID uint32
	// Name labels the group's metric series ({group="..."}) and
	// strengthens the config digest. Letters, digits, '_', '.', '-'.
	Name string
	// Topology is GroupRing (default), GroupTree or GroupHybrid.
	Topology string
	// TreeArity is the heap arity for GroupTree and for GroupHybrid's
	// host tree (default 2), matching the shape a TopologyTree barrier
	// builds for the same member count.
	TreeArity int
	// Hosts is GroupHybrid's member grouping: Hosts[j] lists the barrier
	// members fused on process j, exactly as in the runtime's
	// Config.Hosts. Required for hybrid (one roster per process),
	// forbidden otherwise. Folded into the config digest so every
	// process must declare the identical grouping.
	Hosts [][]int
}

// MuxConfig parameterizes a Mux.
type MuxConfig struct {
	// Self is this process's index into Peers.
	Self int
	// Peers[j] is process j's listen address (host:port).
	Peers []string
	// Groups declares every group multiplexed over the shared
	// connections. All muxes of a deployment must declare identical
	// groups (the hello digest enforces it).
	Groups []GroupSpec

	// Backoff/timeout knobs, defaulted as in TCPConfig.
	BaseBackoff      time.Duration
	MaxBackoff       time.Duration
	DialTimeout      time.Duration
	HandshakeTimeout time.Duration
	// MaxPending bounds concurrent un-handshaken incoming connections
	// (default 64), as in TCPConfig.
	MaxPending int
	// Logf, if non-nil, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
	// Registry, if non-nil, receives the transport counters plus one
	// per-group frame counter pair labelled {group="..."}.
	Registry *obsv.Registry
}

// MuxOption mutates a MuxConfig (used by NewLoopbackMuxes).
type MuxOption func(*MuxConfig)

// muxDigest fingerprints a mux configuration: peer list plus the full
// group set (ids, names, topologies, tree shapes).
func muxDigest(cfg MuxConfig) uint64 {
	parts := make([]string, 0, len(cfg.Peers)+4*len(cfg.Groups)+2)
	parts = append(parts, "mux", strconv.Itoa(len(cfg.Peers)))
	parts = append(parts, cfg.Peers...)
	for _, g := range cfg.Groups {
		arity := g.TreeArity
		if arity == 0 {
			arity = 2
		}
		parts = append(parts,
			strconv.FormatUint(uint64(g.ID), 10),
			g.Name,
			g.Topology,
			strconv.Itoa(arity))
		for _, roster := range g.Hosts {
			parts = append(parts, "h"+strconv.Itoa(len(roster)))
			for _, member := range roster {
				parts = append(parts, strconv.Itoa(member))
			}
		}
	}
	return ConfigDigest(parts...)
}

func validGroupName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '_', c == '.', c == '-':
		default:
			return false
		}
	}
	return len(s) > 0
}

// Mux is one process's multiplexed attachment to every group. Create it
// with NewMux, obtain per-group transports with Ring/Tree, and Close it
// after the barriers are stopped (barriers close only the links they
// open; the shared connections belong to the mux).
type Mux struct {
	cfg    MuxConfig
	digest uint64

	groups map[uint32]*muxGroup
	order  []*muxGroup // declaration order
	peers  []*muxPeer  // indexed by process id; nil where no shared edge
	routes map[routeKey]route

	ln         net.Listener
	done       chan struct{}
	dialCtx    context.Context
	dialCancel context.CancelFunc
	closeOnce  sync.Once
	wg         sync.WaitGroup
	mu         sync.Mutex // guards peer conn registration against Close

	stats tcpStats
}

// muxGroup is one group's demux endpoint: exactly one of ring/tree is
// non-nil, matching the declared topology.
type muxGroup struct {
	spec muxGroupShape
	ring *muxRingLink
	tree *muxTreeLink

	sent, recv atomic.Int64 // per-group frame counters
	// dropped counts frames that arrived for this group after its links
	// were torn down (stop/churn). The drop is correct — a closed group's
	// frames are loss, masked by retransmission on the sender — but it
	// must not be silent: a rejoin that keeps receiving old-incarnation
	// traffic, or a tenant wedged at teardown, shows up here first.
	dropped atomic.Int64
}

type muxGroupShape struct {
	GroupSpec
	parent   []int // tree parent vector (nil for ring)
	children []int // this process's children (tree)
}

type routeKey struct {
	group uint32
	typ   byte
	from  int
}

// route delivery kinds.
const (
	rState byte = iota // ring: state from the predecessor
	rTop               // ring: ⊤ from the successor
	rDown              // tree: broadcast state from the parent
	rUp                // tree: convergecast from a child
)

type route struct {
	kind byte
	g    *muxGroup
}

// NewMux validates the configuration, binds this process's listener (when
// any peer dials it) and starts the dialers for the peers it is
// responsible for. Per-group transports are obtained with Ring/Tree.
func NewMux(cfg MuxConfig) (*Mux, error) {
	m, err := newMux(cfg, nil)
	if err != nil {
		return nil, err
	}
	if err := m.start(); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// newMux builds the mux without touching the network; ln pre-binds the
// listener (loopback tests) or is nil.
func newMux(cfg MuxConfig, ln net.Listener) (*Mux, error) {
	n := len(cfg.Peers)
	if n < 2 {
		return nil, errors.New("transport: need at least 2 peers")
	}
	if cfg.Self < 0 || cfg.Self >= n {
		return nil, fmt.Errorf("transport: self %d out of range [0,%d)", cfg.Self, n)
	}
	if len(cfg.Groups) == 0 {
		return nil, errors.New("transport: mux needs at least one group")
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 64
	}
	dialCtx, dialCancel := context.WithCancel(context.Background())
	m := &Mux{
		cfg:        cfg,
		digest:     muxDigest(cfg),
		groups:     make(map[uint32]*muxGroup, len(cfg.Groups)),
		peers:      make([]*muxPeer, n),
		routes:     make(map[routeKey]route),
		ln:         ln,
		done:       make(chan struct{}),
		dialCtx:    dialCtx,
		dialCancel: dialCancel,
	}
	peerOf := func(j int) *muxPeer {
		if p := m.peers[j]; p != nil {
			return p
		}
		p := &muxPeer{m: m, id: j, addr: cfg.Peers[j], kick: make(chan struct{}, 1)}
		m.peers[j] = p
		return p
	}
	slot := func(dst int, g *muxGroup, typ byte) *muxSlot {
		p := peerOf(dst)
		s := &muxSlot{p: p, g: g, typ: typ}
		p.slots = append(p.slots, s)
		return s
	}
	self := cfg.Self
	for _, spec := range cfg.Groups {
		if _, dup := m.groups[spec.ID]; dup {
			dialCancel()
			return nil, fmt.Errorf("transport: duplicate group id %d", spec.ID)
		}
		if spec.Name != "" && !validGroupName(spec.Name) {
			dialCancel()
			return nil, fmt.Errorf("transport: invalid group name %q", spec.Name)
		}
		g := &muxGroup{spec: muxGroupShape{GroupSpec: spec}}
		if spec.Topology != GroupHybrid && spec.Hosts != nil {
			dialCancel()
			return nil, fmt.Errorf("transport: group %d: Hosts is only for hybrid groups", spec.ID)
		}
		switch spec.Topology {
		case GroupRing, "":
			pred, succ := (self-1+n)%n, (self+1)%n
			g.ring = &muxRingLink{
				g:     g,
				state: make(chan runtime.Message, 1),
				top:   make(chan struct{}, 1),
			}
			g.ring.stateSlot = slot(succ, g, FrameState)
			g.ring.topSlot = slot(pred, g, FrameTop)
			m.routes[routeKey{spec.ID, FrameState, pred}] = route{rState, g}
			m.routes[routeKey{spec.ID, FrameTop, succ}] = route{rTop, g}
		case GroupTree, GroupHybrid:
			arity := spec.TreeArity
			if arity == 0 {
				arity = 2
			}
			var shape *topo.Tree
			if spec.Topology == GroupHybrid {
				// One process per host; the mux carries the host tree.
				hy, err := topo.NewHybridTree(spec.Hosts, arity)
				if err != nil {
					dialCancel()
					return nil, fmt.Errorf("transport: group %d: %w", spec.ID, err)
				}
				if len(hy.Hosts) != n {
					dialCancel()
					return nil, fmt.Errorf("transport: group %d: %d hosts for %d processes", spec.ID, len(hy.Hosts), n)
				}
				shape = hy.HostTree
			} else {
				s, err := topo.NewKAryTree(n, arity)
				if err != nil {
					dialCancel()
					return nil, fmt.Errorf("transport: group %d: %w", spec.ID, err)
				}
				shape = s
			}
			g.spec.parent = shape.Parent
			g.spec.children = shape.Children[self]
			tl := &muxTreeLink{
				g:      g,
				parent: shape.Parent[self],
				kidIdx: make(map[int]int, len(g.spec.children)),
				down:   make(chan runtime.Message, 1),
				up:     make(chan runtime.UpMessage, 2*len(g.spec.children)+2),
			}
			if tl.parent >= 0 {
				tl.upSlot = slot(tl.parent, g, FrameUp)
				m.routes[routeKey{spec.ID, FrameState, tl.parent}] = route{rDown, g}
			}
			tl.downSlots = make([]*muxSlot, len(g.spec.children))
			for i, kid := range g.spec.children {
				tl.kidIdx[kid] = i
				tl.downSlots[i] = slot(kid, g, FrameState)
				m.routes[routeKey{spec.ID, FrameUp, kid}] = route{rUp, g}
			}
			g.tree = tl
		default:
			dialCancel()
			return nil, fmt.Errorf("transport: group %d: unknown topology %q", spec.ID, spec.Topology)
		}
		m.groups[spec.ID] = g
		m.order = append(m.order, g)
	}
	if cfg.Registry != nil {
		if err := m.stats.register(cfg.Registry); err != nil {
			dialCancel()
			return nil, err
		}
		for _, g := range m.order {
			if g.spec.Name == "" {
				continue
			}
			g := g
			err := m.stats.registerAll(cfg.Registry,
				obsv.NewCounterFunc(`transport_group_frames_total{group="`+g.spec.Name+`",dir="sent"}`,
					"Frames by group and direction.", g.sent.Load),
				obsv.NewCounterFunc(`transport_group_frames_total{group="`+g.spec.Name+`",dir="recv"}`,
					"Frames by group and direction.", g.recv.Load),
				obsv.NewCounterFunc(`transport_group_frames_dropped_total{group="`+g.spec.Name+`"}`,
					"Frames that arrived for this group after its links were torn down (dropped as loss).", g.dropped.Load))
			if err != nil {
				// registerAll already rolled back every series the mux had
				// registered so far.
				dialCancel()
				return nil, err
			}
		}
	}
	return m, nil
}

// start binds the listener (if any peer dials this process) and launches
// the accept loop and the dial loops.
func (m *Mux) start() error {
	accepts := false
	for j, p := range m.peers {
		if p != nil && j < m.cfg.Self {
			accepts = true
		}
	}
	if accepts && m.ln == nil {
		ln, err := net.Listen("tcp", m.cfg.Peers[m.cfg.Self])
		if err != nil {
			return fmt.Errorf("transport: listen %s: %w", m.cfg.Peers[m.cfg.Self], err)
		}
		m.ln = ln
	}
	if m.ln != nil {
		m.wg.Add(1)
		go m.acceptLoop()
	}
	for j, p := range m.peers {
		if p != nil && j > m.cfg.Self {
			m.wg.Add(1)
			go p.dialLoop()
		}
	}
	return nil
}

// Close tears down the listener, every connection and every goroutine.
// Group links opened through Ring/Tree views become inert (their channels
// fall silent); close the barriers first.
func (m *Mux) Close() error {
	m.closeOnce.Do(func() {
		close(m.done)
		m.dialCancel()
		if m.ln != nil {
			m.ln.Close()
		}
		m.mu.Lock()
		for _, p := range m.peers {
			if p != nil && p.conn != nil {
				p.conn.Close()
			}
		}
		m.mu.Unlock()
		m.stats.unregister()
	})
	m.wg.Wait()
	return nil
}

// Stats returns a snapshot of the mux's counters.
func (m *Mux) Stats() TCPStats { return m.stats.snapshot() }

// Digest returns the configuration digest this mux sends (and expects) in
// hello frames.
func (m *Mux) Digest() uint64 { return m.digest }

// PeerCount returns the number of processes in the deployment — the
// member count of every hosted group.
func (m *Mux) PeerCount() int { return len(m.cfg.Peers) }

// GroupStats returns the (sent, recv, dropped) frame counts of one group:
// frames sent on its behalf, frames received for it, and received frames
// discarded because the group's links were already torn down.
func (m *Mux) GroupStats(id uint32) (sent, recv, dropped int64) {
	g := m.groups[id]
	if g == nil {
		return 0, 0, 0
	}
	return g.sent.Load(), g.recv.Load(), g.dropped.Load()
}

// BreakConns force-closes every live connection, simulating a network
// blip across all groups at once. Dialers redial with backoff; in-flight
// frames of every group are lost and masked by retransmission. Test hook.
func (m *Mux) BreakConns() {
	m.mu.Lock()
	for _, p := range m.peers {
		if p != nil && p.conn != nil {
			p.conn.Close()
		}
	}
	m.mu.Unlock()
}

// SetPartition injects (or heals) a network partition between this
// process and peer j: the live connection is closed, the dialer parks
// instead of redialing, and incoming connections from j are rejected at
// handshake until the partition heals. Frames posted meanwhile coalesce
// in their latest-wins slots and flow on the next connection, so to the
// protocol a partition is indistinguishable from a long network blip —
// retransmission masks the gap for every hosted group at once. A no-op
// when j is out of range or shares no edge with this process. Chaos/test
// hook (barrierbench's partition op).
func (m *Mux) SetPartition(j int, partitioned bool) {
	if j < 0 || j >= len(m.peers) || m.peers[j] == nil {
		return
	}
	p := m.peers[j]
	p.partitioned.Store(partitioned)
	if partitioned {
		m.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		m.mu.Unlock()
	}
}

func (m *Mux) closedNow() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

// Ring returns the runtime.Transport view of one ring group. Open accepts
// only this process's index and at most one open link at a time; closing
// the link (Barrier.Stop does) detaches the group so it can be reopened —
// the rejoin path. The view's Close is a no-op: connections are shared,
// the mux owns them.
func (m *Mux) Ring(id uint32) runtime.Transport { return &muxRingView{m: m, id: id} }

// Tree returns the runtime.TreeTransport view of one tree or hybrid
// group (see Ring for the lifecycle contract). For hybrid groups the
// view's node space is host (= process) indices: OpenTree(Self) yields
// the edge set a TopologyHybrid barrier plugs in as its Transport.
func (m *Mux) Tree(id uint32) runtime.Transport { return &muxTreeView{m: m, id: id} }

type muxRingView struct {
	m  *Mux
	id uint32
}

func (v *muxRingView) Open(j int) (runtime.Link, error) {
	g := v.m.groups[v.id]
	if g == nil {
		return nil, fmt.Errorf("transport: unknown group %d", v.id)
	}
	if g.ring == nil {
		return nil, fmt.Errorf("transport: group %d is not a ring group", v.id)
	}
	if j != v.m.cfg.Self {
		return nil, fmt.Errorf("transport: member %d is not this process (%d)", j, v.m.cfg.Self)
	}
	if !g.ring.open.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("transport: group %d already open", v.id)
	}
	return g.ring, nil
}

func (v *muxRingView) Close() error { return nil }

type muxTreeView struct {
	m  *Mux
	id uint32
}

func (v *muxTreeView) Open(j int) (runtime.Link, error) {
	return nil, errors.New("transport: tree group requires Config.Topology == TopologyTree")
}

func (v *muxTreeView) OpenTree(j int) (runtime.TreeLink, error) {
	g := v.m.groups[v.id]
	if g == nil {
		return nil, fmt.Errorf("transport: unknown group %d", v.id)
	}
	if g.tree == nil {
		return nil, fmt.Errorf("transport: group %d is not a tree group", v.id)
	}
	if j != v.m.cfg.Self {
		return nil, fmt.Errorf("transport: member %d is not this process (%d)", j, v.m.cfg.Self)
	}
	if !g.tree.open.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("transport: group %d already open", v.id)
	}
	return g.tree, nil
}

func (v *muxTreeView) Close() error { return nil }

// --- outgoing: per-peer slots and writers ---

// muxSlot is one latest-state-wins outgoing mailbox: a protocol send
// overwrites the slot and kicks the peer's writer; the writer takes the
// newest value. Superseded states coalesce exactly as in the single-group
// transports' channel mailboxes.
type muxSlot struct {
	p   *muxPeer
	g   *muxGroup
	typ byte

	mu      sync.Mutex
	pending bool
	state   runtime.Message
	up      runtime.UpMessage
}

func (s *muxSlot) postState(m runtime.Message) {
	s.mu.Lock()
	s.state = m
	s.pending = true
	s.mu.Unlock()
	s.p.kickWriter()
}

func (s *muxSlot) postUp(m runtime.UpMessage) {
	s.mu.Lock()
	s.up = m
	s.pending = true
	s.mu.Unlock()
	s.p.kickWriter()
}

func (s *muxSlot) postTop() {
	s.mu.Lock()
	s.pending = true
	s.mu.Unlock()
	s.p.kickWriter()
}

func (s *muxSlot) clear() {
	s.mu.Lock()
	s.pending = false
	s.mu.Unlock()
}

// takeInto appends the slot's frame to buf if one is pending, clearing
// the slot, and reports whether it did.
func (s *muxSlot) takeInto(buf []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.pending {
		return buf, false
	}
	s.pending = false
	switch s.typ {
	case FrameState:
		buf = AppendState(buf, s.g.spec.ID, s.state)
	case FrameTop:
		buf = AppendTop(buf, s.g.spec.ID)
	case FrameUp:
		buf = AppendUp(buf, s.g.spec.ID, s.up)
	}
	s.g.sent.Add(1)
	return buf, true
}

// muxPeer is the shared edge to one peer process: the single connection
// (dialed or accepted per the lower-index-dials rule) plus every outgoing
// slot bound for that peer.
type muxPeer struct {
	m     *Mux
	id    int
	addr  string
	slots []*muxSlot
	kick  chan struct{} // cap 1: writer wake-up

	// partitioned is the chaos-injection gate (SetPartition): while set,
	// no connection to this peer is kept, dialed, or accepted.
	partitioned atomic.Bool

	conn net.Conn // guarded by m.mu
}

func (p *muxPeer) kickWriter() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// setConn registers a new live connection, replacing (closing) the
// previous one. It reports false when the mux is already closed.
func (p *muxPeer) setConn(c net.Conn) bool {
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	if p.m.closedNow() {
		// Close already swept registered connections; registering now would
		// leak the connection past the sweep.
		c.Close()
		return false
	}
	if p.partitioned.Load() {
		// A partition landed while this connection was being established;
		// registering it would tunnel through the injected fault.
		c.Close()
		return false
	}
	if p.conn != nil {
		p.conn.Close() // replaced by the newer connection
	}
	p.conn = c
	return true
}

// writeLoop drains dirty slots into single batched writes until the
// connection dies or the mux closes. Frames of many groups that went
// pending together leave in one Write.
func (p *muxPeer) writeLoop(c net.Conn, dead chan struct{}) {
	p.kickWriter() // flush anything posted while no connection existed
	var buf []byte
	batching := 0
	for {
		select {
		case <-p.m.done:
			return
		case <-dead:
			return
		case <-p.kick:
		}
		// While this edge has recently carried multi-frame drains, yield
		// once between the kick and the drain: other protocol goroutines
		// runnable right now (concurrent groups, pipelined lanes) post
		// into their slots first — superseded states coalesce in the
		// slots and the survivors leave in this Write instead of the next
		// one. The regime is sticky for a few drains because batches
		// alternate with single-frame drains even under sustained
		// multi-lane load; a workload that never batches stops yielding
		// and keeps the minimum-latency single-frame path.
		if batching > 0 {
			goruntime.Gosched()
		}
		buf = buf[:0]
		took := 0
		for _, s := range p.slots {
			var ok bool
			if buf, ok = s.takeInto(buf); ok {
				took++
			}
		}
		if took > 1 {
			batching = 8
		} else if batching > 0 {
			batching--
		}
		if took == 0 {
			continue
		}
		if _, err := c.Write(buf); err != nil {
			p.m.connFailed(p, "write", err)
			c.Close()
			return
		}
		p.m.stats.framesSent.Add(int64(took))
	}
}

// dialLoop maintains the connection to a higher-indexed peer: dial,
// hello, serve until it dies, redial with capped exponential backoff plus
// jitter (the single-group transports' discipline; the jitter source is
// a goroutine-owned splitmix64 PRNG, so single ownership is structural).
func (p *muxPeer) dialLoop() {
	defer p.m.wg.Done()
	rng := prng.New(int64(p.m.cfg.Self)*1315423911 + int64(p.id)*2654435761 + 41)
	backoff := p.m.cfg.BaseBackoff
	for {
		if p.m.closedNow() {
			return
		}
		if p.partitioned.Load() {
			// Injected partition: park instead of redialing; heal is polled
			// so the dialer needs no extra wake-up channel.
			select {
			case <-p.m.done:
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		d := net.Dialer{Timeout: p.m.cfg.DialTimeout}
		c, err := d.DialContext(p.m.dialCtx, "tcp", p.addr)
		if err != nil {
			if p.m.closedNow() {
				return
			}
			p.m.stats.failedDials.Add(1)
			sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
			p.m.stats.backingOff.Add(1)
			select {
			case <-p.m.done:
				p.m.stats.backingOff.Add(-1)
				return
			case <-time.After(sleep):
			}
			p.m.stats.backingOff.Add(-1)
			if backoff *= 2; backoff > p.m.cfg.MaxBackoff {
				backoff = p.m.cfg.MaxBackoff
			}
			continue
		}
		keepAlive(c)
		if _, err := c.Write(AppendHello(nil, p.m.cfg.Self, p.m.digest)); err != nil {
			p.m.connFailed(p, "write hello", err)
			c.Close()
			continue
		}
		p.m.stats.dials.Add(1)
		p.m.stats.connectedOut.Add(1)
		backoff = p.m.cfg.BaseBackoff
		if !p.setConn(c) {
			p.m.stats.connectedOut.Add(-1)
			if p.m.closedNow() {
				return
			}
			continue // partition raced the dial; park above until it heals
		}
		dead := make(chan struct{})
		p.m.wg.Add(1)
		go func() {
			defer p.m.wg.Done()
			defer close(dead)
			p.m.serveConn(p, c, NewFrameReader(c, 4096))
		}()
		p.writeLoop(c, dead) // returns when the connection dies or the mux closes
		c.Close()
		p.m.stats.connectedOut.Add(-1)
	}
}

// --- incoming: accept, handshake, demux ---

func (m *Mux) acceptLoop() {
	defer m.wg.Done()
	for {
		c, err := m.ln.Accept()
		if err != nil {
			if m.closedNow() {
				return
			}
			select {
			case <-m.done:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		if !m.stats.admitPending(m.cfg.MaxPending) {
			c.Close()
			continue
		}
		m.wg.Add(1)
		go m.handleIn(c)
	}
}

// handleIn verifies the hello handshake — the dialer must be a
// lower-indexed peer sharing an edge with this process, with a matching
// config digest — then serves frames until the connection dies.
func (m *Mux) handleIn(c net.Conn) {
	defer m.wg.Done()
	fr := NewFrameReader(c, 4096)
	from, err := readHello(fr, c, m.cfg.HandshakeTimeout, m.digest, &m.stats)
	m.stats.releasePending()
	var p *muxPeer
	if err == nil {
		if from >= 0 && from < len(m.peers) && from < m.cfg.Self {
			p = m.peers[from]
		}
		if p == nil {
			err = fmt.Errorf("transport: process %d does not dial %d", from, m.cfg.Self)
		} else if p.partitioned.Load() {
			err = fmt.Errorf("transport: peer %d is partitioned (injected)", from)
			p = nil
		}
	}
	if err != nil {
		m.stats.handshakeRejects.Add(1)
		m.cfg.Logf("transport: mux %d rejected connection from %v: from=%d err=%v", m.cfg.Self, c.RemoteAddr(), from, err)
		c.Close()
		return
	}
	keepAlive(c)
	m.stats.accepts.Add(1)
	if !p.setConn(c) {
		return
	}
	dead := make(chan struct{})
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		p.writeLoop(c, dead)
	}()
	m.serveConn(p, c, fr) // returns when the connection dies
	close(dead)
	c.Close()
}

// serveConn reads and demultiplexes frames from one peer until the
// connection errors. A codec violation — including a frame for a group or
// direction the route table does not expect from this peer — drops the
// connection; every group's retransmission masks the loss.
func (m *Mux) serveConn(p *muxPeer, c net.Conn, fr *FrameReader) {
	for {
		typ, payload, err := fr.Read()
		if err != nil {
			m.connFailed(p, "read", err)
			c.Close()
			return
		}
		switch typ {
		case FrameHello:
			// Redundant hello: harmless, ignore.
			continue
		case FrameState:
			g, msg, err := DecodeState(payload)
			if err == nil {
				err = m.deliverState(p, g, msg)
			}
			if err != nil {
				m.connFailed(p, "decode state", err)
				c.Close()
				return
			}
		case FrameTop:
			g, err := DecodeTop(payload)
			if err == nil {
				err = m.deliverTop(p, g)
			}
			if err != nil {
				m.connFailed(p, "decode ⊤", err)
				c.Close()
				return
			}
		case FrameUp:
			g, msg, err := DecodeUp(payload)
			if err == nil {
				err = m.deliverUp(p, g, msg)
			}
			if err != nil {
				m.connFailed(p, "decode up", err)
				c.Close()
				return
			}
		default:
			m.connFailed(p, "unexpected frame", fmt.Errorf("%w: type %d from peer %d", ErrCodec, typ, p.id))
			c.Close()
			return
		}
	}
}

func (m *Mux) routeMiss(typ byte, id uint32, from int) error {
	return fmt.Errorf("%w: no route for frame type %d group %d from peer %d", ErrCodec, typ, id, from)
}

// deliverState routes a FrameState: a ring predecessor's announcement or
// a tree parent's broadcast. Delivery is latest-wins and drops silently
// when the group's link is closed (teardown isolation: a stopped group
// must not affect the shared connection).
func (m *Mux) deliverState(p *muxPeer, id uint32, msg runtime.Message) error {
	r, ok := m.routes[routeKey{id, FrameState, p.id}]
	if !ok {
		return m.routeMiss(FrameState, id, p.id)
	}
	m.stats.framesRecv.Add(1)
	r.g.recv.Add(1)
	var dst chan runtime.Message
	var openFlag *atomic.Bool
	switch r.kind {
	case rState:
		dst, openFlag = r.g.ring.state, &r.g.ring.open
	case rDown:
		dst, openFlag = r.g.tree.down, &r.g.tree.open
	}
	if !openFlag.Load() {
		// Group torn down: the frame is loss, not an error — but counted,
		// so late traffic into a closed group is visible.
		r.g.dropped.Add(1)
		return nil
	}
	select {
	case <-dst:
	default:
	}
	select {
	case dst <- msg:
	default:
	}
	return nil
}

func (m *Mux) deliverTop(p *muxPeer, id uint32) error {
	r, ok := m.routes[routeKey{id, FrameTop, p.id}]
	if !ok {
		return m.routeMiss(FrameTop, id, p.id)
	}
	m.stats.framesRecv.Add(1)
	r.g.recv.Add(1)
	if !r.g.ring.open.Load() {
		r.g.dropped.Add(1)
		return nil
	}
	select {
	case r.g.ring.top <- struct{}{}:
	default:
	}
	return nil
}

func (m *Mux) deliverUp(p *muxPeer, id uint32, msg runtime.UpMessage) error {
	r, ok := m.routes[routeKey{id, FrameUp, p.id}]
	if !ok {
		return m.routeMiss(FrameUp, id, p.id)
	}
	if msg.Child != p.id {
		// The in-band child id must match the connection's verified peer —
		// a mismatch is detected corruption, as in the tree transport.
		return fmt.Errorf("%w: in-band child %d on connection from %d", ErrCodec, msg.Child, p.id)
	}
	m.stats.framesRecv.Add(1)
	r.g.recv.Add(1)
	tl := r.g.tree
	if !tl.open.Load() {
		r.g.dropped.Add(1)
		return nil
	}
	// Shared-mailbox delivery, the channel transport's discipline: send;
	// if full, displace the oldest and retry; losing that race is loss.
	select {
	case tl.up <- msg:
		return nil
	default:
	}
	select {
	case <-tl.up:
	default:
	}
	select {
	case tl.up <- msg:
	default:
	}
	return nil
}

// connFailed accounts one connection failure (see tcpLink.connFailed).
func (m *Mux) connFailed(p *muxPeer, what string, err error) {
	if m.closedNow() {
		return
	}
	if errors.Is(err, ErrCodec) {
		m.stats.decodeErrors.Add(1)
	}
	m.stats.connDrops.Add(1)
	m.cfg.Logf("transport: mux %d: peer %d: %s: %v", m.cfg.Self, p.id, what, err)
}

// --- per-group links ---

// muxRingLink is one group's ring attachment for this process. Closing it
// detaches the group from the shared connections without touching them;
// reopening (via the Ring view) reattaches — the teardown/rejoin path.
type muxRingLink struct {
	g     *muxGroup
	state chan runtime.Message
	top   chan struct{}

	stateSlot *muxSlot // to the ring successor
	topSlot   *muxSlot // to the ring predecessor
	open      atomic.Bool
}

func (l *muxRingLink) SendState(m runtime.Message) {
	if l.open.Load() {
		l.stateSlot.postState(m)
	}
}

func (l *muxRingLink) SendTop() {
	if l.open.Load() {
		l.topSlot.postTop()
	}
}

func (l *muxRingLink) State() <-chan runtime.Message { return l.state }
func (l *muxRingLink) Top() <-chan struct{}          { return l.top }

func (l *muxRingLink) InjectState(m runtime.Message) bool {
	select {
	case l.state <- m:
		return true
	default:
		return false
	}
}

func (l *muxRingLink) Close() error {
	l.open.Store(false)
	l.stateSlot.clear()
	l.topSlot.clear()
	return nil
}

// muxTreeLink is one group's tree attachment for this process (see
// muxRingLink for the lifecycle contract).
type muxTreeLink struct {
	g      *muxGroup
	parent int         // -1 at the root
	kidIdx map[int]int // child id → index into downSlots

	down chan runtime.Message
	up   chan runtime.UpMessage

	upSlot    *muxSlot // nil at the root
	downSlots []*muxSlot
	open      atomic.Bool
}

func (l *muxTreeLink) SendDown(child int, m runtime.Message) {
	if !l.open.Load() {
		return
	}
	if i, ok := l.kidIdx[child]; ok {
		l.downSlots[i].postState(m)
	}
}

func (l *muxTreeLink) SendUp(m runtime.UpMessage) {
	if l.upSlot != nil && l.open.Load() {
		l.upSlot.postUp(m)
	}
}

func (l *muxTreeLink) Down() <-chan runtime.Message { return l.down }
func (l *muxTreeLink) Up() <-chan runtime.UpMessage { return l.up }

func (l *muxTreeLink) InjectDown(m runtime.Message) bool {
	select {
	case l.down <- m:
		return true
	default:
		return false
	}
}

func (l *muxTreeLink) InjectUp(m runtime.UpMessage) bool {
	select {
	case l.up <- m:
		return true
	default:
		return false
	}
}

func (l *muxTreeLink) Close() error {
	l.open.Store(false)
	if l.upSlot != nil {
		l.upSlot.clear()
	}
	for _, s := range l.downSlots {
		s.clear()
	}
	return nil
}

// --- loopback set: every process in one test binary ---

// MuxSet is an all-local collection of muxes, one per process, sharing a
// loopback peer list — the test and conformance configuration. Its
// Ring/Tree views accept any process index and route Open to that
// process's mux.
type MuxSet struct {
	Muxes []*Mux
}

// NewLoopbackMuxes binds n ephemeral loopback listeners and returns n
// started muxes declaring the given groups. Backoff defaults are lowered
// (2ms base, 100ms cap) as in NewLoopbackRing; opts may override any
// field except Self and Peers.
func NewLoopbackMuxes(n int, groups []GroupSpec, opts ...MuxOption) (*MuxSet, error) {
	if n < 2 {
		return nil, errors.New("transport: need at least 2 members")
	}
	listeners, peers, err := bindLoopback(n)
	if err != nil {
		return nil, err
	}
	closeAll := func(ms []*Mux) {
		for _, m := range ms {
			if m != nil {
				m.Close()
			}
		}
		for _, ln := range listeners {
			if ln != nil {
				ln.Close()
			}
		}
	}
	set := &MuxSet{Muxes: make([]*Mux, n)}
	for j := 0; j < n; j++ {
		cfg := MuxConfig{
			Self:        j,
			Peers:       peers,
			Groups:      groups,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  100 * time.Millisecond,
		}
		for _, opt := range opts {
			opt(&cfg)
		}
		cfg.Self, cfg.Peers = j, peers
		m, err := newMux(cfg, listeners[j])
		if err != nil {
			closeAll(set.Muxes)
			return nil, err
		}
		listeners[j] = nil // owned by the mux now
		set.Muxes[j] = m
		if err := m.start(); err != nil {
			closeAll(set.Muxes)
			return nil, err
		}
	}
	return set, nil
}

// PartitionProc isolates (or heals) process j from every other process
// in the set — the loopback analogue of unplugging one machine's network
// cable. Both sides of every edge are gated, so neither dial direction
// can tunnel through.
func (s *MuxSet) PartitionProc(j int, partitioned bool) {
	if j < 0 || j >= len(s.Muxes) {
		return
	}
	for k, m := range s.Muxes {
		if k == j {
			continue
		}
		m.SetPartition(j, partitioned)
		s.Muxes[j].SetPartition(k, partitioned)
	}
}

// Close closes every mux in the set.
func (s *MuxSet) Close() error {
	for _, m := range s.Muxes {
		if m != nil {
			m.Close()
		}
	}
	return nil
}

// Ring returns a runtime.Transport for one ring group whose Open accepts
// any process index, routing to that process's mux.
func (s *MuxSet) Ring(id uint32) runtime.Transport { return &muxSetRing{s: s, id: id} }

// Tree returns a runtime transport for one tree group (implements
// runtime.TreeTransport).
func (s *MuxSet) Tree(id uint32) runtime.Transport { return &muxSetTree{s: s, id: id} }

type muxSetRing struct {
	s  *MuxSet
	id uint32
}

func (v *muxSetRing) Open(j int) (runtime.Link, error) {
	if j < 0 || j >= len(v.s.Muxes) {
		return nil, fmt.Errorf("transport: member %d out of range [0,%d)", j, len(v.s.Muxes))
	}
	return v.s.Muxes[j].Ring(v.id).Open(j)
}

func (v *muxSetRing) Close() error { return nil }

type muxSetTree struct {
	s  *MuxSet
	id uint32
}

func (v *muxSetTree) Open(j int) (runtime.Link, error) {
	return nil, errors.New("transport: tree group requires Config.Topology == TopologyTree")
}

func (v *muxSetTree) OpenTree(j int) (runtime.TreeLink, error) {
	if j < 0 || j >= len(v.s.Muxes) {
		return nil, fmt.Errorf("transport: member %d out of range [0,%d)", j, len(v.s.Muxes))
	}
	t := v.s.Muxes[j].Tree(v.id).(*muxTreeView)
	return t.OpenTree(j)
}

func (v *muxSetTree) Close() error { return nil }
